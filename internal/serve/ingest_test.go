package serve

import (
	"fmt"
	"math/rand"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"loadimb/internal/monitor"
	"loadimb/internal/trace"
)

// ingestEvents generates a well-formed random event stream across ranks,
// each rank's events contiguous in time.
func ingestEvents(rng *rand.Rand, n, ranks int) []trace.Event {
	regions := []string{"loop 1", "loop 2", "halo"}
	activities := []string{"computation", "point-to-point", "collective"}
	events := make([]trace.Event, 0, n)
	cursors := make([]float64, ranks)
	for len(events) < n {
		r := rng.Intn(ranks)
		e := trace.Event{
			Rank:     r,
			Region:   regions[rng.Intn(len(regions))],
			Activity: activities[rng.Intn(len(activities))],
			Start:    cursors[r],
			End:      cursors[r] + rng.Float64()*0.2,
		}
		cursors[r] = e.End
		events = append(events, e)
	}
	return events
}

// TestIngestMetrics: the handler built WithIngest exposes the
// loadimb_ingest_* counters, and they account for the shipped stream.
func TestIngestMetrics(t *testing.T) {
	c := monitor.NewCollector(monitor.Options{})
	srv := monitor.NewIngestServer(c, monitor.IngestOptions{})
	defer srv.Close()
	sock := filepath.Join(t.TempDir(), "m.sock")
	if _, err := srv.Listen("unix:" + sock); err != nil {
		t.Fatal(err)
	}
	cl, err := monitor.DialIngest("unix:"+sock, monitor.ClientOptions{Batch: 64})
	if err != nil {
		t.Fatal(err)
	}
	events := ingestEvents(rand.New(rand.NewSource(3)), 640, 4)
	cl.RecordBatch(events)
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for c.Events() < uint64(len(events)) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	h := NewHandler(c, WithIngest(srv))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		monitor.MetricIngestConnsTotal + " 1",
		monitor.MetricIngestConnsActive + " 1",
		fmt.Sprintf("%s %d", monitor.MetricIngestEventsTotal, len(events)),
		fmt.Sprintf("%s %d", monitor.MetricIngestBatchesTotal, len(events)/64),
		monitor.MetricIngestDroppedTotal + " 0",
		monitor.MetricIngestConnEvents + "{conn=\"1\"",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if !strings.Contains(body, monitor.MetricEventsTotal) {
		t.Error("/metrics lost the collector families")
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
}
