// Package serve is the shared HTTP exposition layer: the endpoint set a
// live collector (imbamon) and a federator (imbafed) both mount over
// their snapshot source. Extracting it from the monitor package makes the
// two paths one implementation — a federator is scrapable exactly like a
// collector, including the binary /delta endpoint, which is what lets
// federators scrape federators and tiers compose.
package serve

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strings"

	"loadimb/internal/majorize"
	"loadimb/internal/monitor"
	"loadimb/internal/rebalance"
	"loadimb/internal/temporal"
	"loadimb/internal/tracefmt"
)

// A Source yields the freshest snapshot of a live measurement: the
// monitor.Collector is one (it folds its buffered events on demand), and
// the federation scraper (internal/federate) is another (it merges the
// states most recently fetched from many collectors). Every handler in
// this package serves any source, so one exposition path covers both the
// per-process and the cluster-wide view.
type Source interface {
	// Snapshot returns the current snapshot; it must never return nil.
	Snapshot() *monitor.Snapshot
}

// serveCached stamps the snapshot's ETag on the response and, when the
// request's If-None-Match already names it, answers 304 Not Modified and
// reports true — the incremental-scrape fast path: a federation poll of
// an idle endpoint costs a header exchange, not a reserialization of the
// whole document.
func serveCached(w http.ResponseWriter, r *http.Request, snap *monitor.Snapshot) bool {
	tag := snap.ETag()
	if tag == "" {
		return false
	}
	w.Header().Set("ETag", tag)
	if r.Header.Get("If-None-Match") == tag {
		w.WriteHeader(http.StatusNotModified)
		return true
	}
	return false
}

// acceptsGzip reports whether the request negotiates gzip content coding.
// A plain scraper (curl, a browser devtool, the tests' default client)
// gets identity bytes; only a client that explicitly asks pays the
// decompression.
func acceptsGzip(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept-Encoding"), ",") {
		coding, params, _ := strings.Cut(strings.TrimSpace(part), ";")
		if strings.TrimSpace(coding) != "gzip" {
			continue
		}
		q := strings.TrimSpace(params)
		if q == "q=0" || strings.HasPrefix(q, "q=0,") || q == "q=0.0" {
			return false
		}
		return true
	}
	return false
}

// jsonBody negotiates the response encoding for a JSON endpoint and
// returns the writer the document should go to plus a flush func. The
// Vary header is always set: caches must key on Accept-Encoding.
func jsonBody(w http.ResponseWriter, r *http.Request) (io.Writer, func()) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Vary", "Accept-Encoding")
	if !acceptsGzip(r) {
		return w, func() {}
	}
	w.Header().Set("Content-Encoding", "gzip")
	gz := gzip.NewWriter(w)
	return gz, func() { _ = gz.Close() }
}

// writeJSON writes v as indented JSON, gzip-encoded when the client asked
// for it.
func writeJSON(w http.ResponseWriter, r *http.Request, v any) {
	body, done := jsonBody(w, r)
	defer done()
	enc := json.NewEncoder(body)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// MetricsHandler serves the Prometheus text exposition of the source's
// snapshot: every paper index (ID_ij, ID_A/SID_A, ID_C/SID_C, ID_P), the
// Gini coefficient, the cube marginals and the collector counters.
func MetricsHandler(src Source) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		snap := src.Snapshot()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := monitor.WriteMetrics(w, snap); err != nil {
			// Headers are already sent; the scraper will see a
			// truncated body and retry.
			return
		}
	}
}

// CubeHandler serves the snapshot cube as tracefmt JSON, answering 503
// until the first event has been folded.
func CubeHandler(src Source) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		snap := src.Snapshot()
		if snap.Cube == nil {
			http.Error(w, "no events collected yet", http.StatusServiceUnavailable)
			return
		}
		if serveCached(w, r, snap) {
			return
		}
		body, done := jsonBody(w, r)
		defer done()
		_ = tracefmt.WriteCubeJSON(body, snap.Cube)
	}
}

// LorenzHandler serves the Lorenz curve and Gini coefficient of the
// snapshot's per-processor total times.
func LorenzHandler(src Source) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		snap := src.Snapshot()
		totals := snap.ProcTotals()
		if totals == nil {
			http.Error(w, "no events collected yet", http.StatusServiceUnavailable)
			return
		}
		points, err := majorize.Lorenz(totals)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, r, lorenzPayload{
			Procs:  len(totals),
			Points: points,
			Gini:   temporal.GiniOf(totals),
		})
	}
}

// TimelineHandler serves the windowed imbalance trajectory of the
// snapshot; window is the configured window width echoed in the payload
// (0 when windowing is disabled). A source whose width is only known at
// scrape time — the federation merger inherits it from its endpoints —
// passes 0 and the snapshot's own series width is echoed instead.
func TimelineHandler(src Source, window float64) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		snap := src.Snapshot()
		if window == 0 && snap.Series != nil {
			window = snap.Series.Window
		}
		if serveCached(w, r, snap) {
			return
		}
		p := timelinePayload{
			Window:  window,
			Windows: snap.Windows,
		}
		if snap.Series != nil && snap.Series.CoarseWindow > 0 {
			p.CoarseWindow = snap.Series.CoarseWindow
			p.RingStart = snap.Series.RingStart
			p.Coarse = snap.Coarse
		}
		writeJSON(w, r, p)
	}
}

// WindowsHandler serves the snapshot's raw window series — per-window
// per-processor busy vectors rather than summaries. This is the document
// the federation layer scrapes and merges (when the binary /delta path is
// unavailable): summaries cannot be combined across jobs, busy vectors
// can, so cluster-wide per-window indices come out exact. It answers 503
// while windowing is disabled.
func WindowsHandler(src Source) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		snap := src.Snapshot()
		if snap.Series == nil {
			http.Error(w, "windowing disabled", http.StatusServiceUnavailable)
			return
		}
		if serveCached(w, r, snap) {
			return
		}
		writeJSON(w, r, snap.Series)
	}
}

// PhasesHandler serves the live phase segmentation of the snapshot's
// window trajectory: every detected phase with its time bounds, label,
// per-phase dispersion indices and hot activities, plus the phase the
// run is currently in. The phases are the exact PELT optimum of the
// trajectory so far — the same segmentation `imba -phases` finds on the
// saved trace — maintained incrementally by the collector. It answers
// 503 while windowing is disabled and an empty phase list before the
// first non-empty window.
func PhasesHandler(src Source) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		snap := src.Snapshot()
		if snap.Series == nil {
			http.Error(w, "windowing disabled", http.StatusServiceUnavailable)
			return
		}
		if serveCached(w, r, snap) {
			return
		}
		p := phasesPayload{
			Window: snap.Series.Window,
			Phases: snap.Phases,
		}
		if n := len(snap.Phases); n > 0 {
			p.Current = &snap.Phases[n-1]
			p.Changes = n - 1
		}
		writeJSON(w, r, p)
	}
}

// DiagnoseHandler serves the automatic performance diagnosis of the
// snapshot: per-phase rank-similarity cohorts and divergence findings
// ("rank 17 diverged from its 63-rank cohort in phase 3 ..."), the
// programmatic root-cause layer over the phase segmentation. The report
// is memoized per fold generation, so scraping it is as cheap as the
// other endpoints while the run is quiet. It answers 503 while
// windowing is disabled.
func DiagnoseHandler(src Source) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		snap := src.Snapshot()
		if snap.Series == nil {
			http.Error(w, "windowing disabled", http.StatusServiceUnavailable)
			return
		}
		if serveCached(w, r, snap) {
			return
		}
		writeJSON(w, r, snap.Diagnosis())
	}
}

// An Option customizes the endpoint set Mux and NewHandler build.
type Option func(*config)

type config struct {
	ingest        *monitor.IngestServer
	window        float64
	health        http.HandlerFunc
	index         http.HandlerFunc
	metricsPrefix func(w io.Writer)
	pprof         bool
	rebalance     RebalanceSource
}

// A RebalanceSource yields the live statistics of an adaptive
// rebalancing controller; *rebalance.Controller is one.
type RebalanceSource interface {
	Snapshot() rebalance.Stats
}

// WithIngest attaches an ingest server's counters to the handler's
// /metrics exposition (the loadimb_ingest_* families).
func WithIngest(s *monitor.IngestServer) Option {
	return func(cfg *config) { cfg.ingest = s }
}

// WithWindow sets the configured window width echoed by /timeline.json;
// 0 (the default) echoes the snapshot's own series width.
func WithWindow(w float64) Option {
	return func(cfg *config) { cfg.window = w }
}

// WithHealth replaces the default always-200 /healthz with a custom
// probe (the federator reports per-endpoint scrape state there).
func WithHealth(h http.HandlerFunc) Option {
	return func(cfg *config) { cfg.health = h }
}

// WithIndex replaces the default "/" page (the embedded dashboard).
func WithIndex(h http.HandlerFunc) Option {
	return func(cfg *config) { cfg.index = h }
}

// WithMetricsPrefix prepends extra Prometheus families to the /metrics
// exposition, ahead of the snapshot's index families (the federator's
// scrape-state gauges use this).
func WithMetricsPrefix(f func(w io.Writer)) Option {
	return func(cfg *config) { cfg.metricsPrefix = f }
}

// WithPprof mounts the Go runtime profile endpoints under /debug/pprof/.
func WithPprof() Option {
	return func(cfg *config) { cfg.pprof = true }
}

// WithRebalance mounts /rebalance.json over the controller's statistics
// and appends the loadimb_rebalance_* families to /metrics, so the
// closed loop (measure, decide, migrate) is observable on the same
// surface as the imbalance it corrects.
func WithRebalance(src RebalanceSource) Option {
	return func(cfg *config) { cfg.rebalance = src }
}

// RebalanceHandler serves the controller's statistics — policy, per-round
// history, migration counts and the achieved ID_P — as JSON.
func RebalanceHandler(src RebalanceSource) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, r, src.Snapshot())
	}
}

// writeRebalanceMetrics writes the loadimb_rebalance_* Prometheus
// families for the controller's current statistics.
func writeRebalanceMetrics(w io.Writer, s rebalance.Stats) {
	label := fmt.Sprintf("{policy=%q}", s.Policy)
	fmt.Fprintf(w, "# HELP loadimb_rebalance_rounds_total Boundaries at which the controller planned migrations.\n")
	fmt.Fprintf(w, "# TYPE loadimb_rebalance_rounds_total counter\n")
	fmt.Fprintf(w, "loadimb_rebalance_rounds_total%s %d\n", label, s.Rounds)
	fmt.Fprintf(w, "# HELP loadimb_rebalance_migrations_total Individual work moves shipped by the rebalancer.\n")
	fmt.Fprintf(w, "# TYPE loadimb_rebalance_migrations_total counter\n")
	fmt.Fprintf(w, "loadimb_rebalance_migrations_total%s %d\n", label, s.Migrations)
	fmt.Fprintf(w, "# HELP loadimb_rebalance_migrated_seconds_total Load shipped by the rebalancer, in virtual seconds.\n")
	fmt.Fprintf(w, "# TYPE loadimb_rebalance_migrated_seconds_total counter\n")
	fmt.Fprintf(w, "loadimb_rebalance_migrated_seconds_total%s %g\n", label, s.Migrated)
	fmt.Fprintf(w, "# HELP loadimb_rebalance_achieved_id Latest measured Euclidean ID_P at a rebalancing boundary.\n")
	fmt.Fprintf(w, "# TYPE loadimb_rebalance_achieved_id gauge\n")
	fmt.Fprintf(w, "loadimb_rebalance_achieved_id%s %g\n", label, s.AchievedID)
	fmt.Fprintf(w, "# HELP loadimb_rebalance_target Target ID_P the controller drives toward.\n")
	fmt.Fprintf(w, "# TYPE loadimb_rebalance_target gauge\n")
	fmt.Fprintf(w, "loadimb_rebalance_target%s %g\n", label, s.Target)
	converged := 0
	if s.Converged {
		converged = 1
	}
	fmt.Fprintf(w, "# HELP loadimb_rebalance_converged Whether a boundary measurement has reached the target (1) yet.\n")
	fmt.Fprintf(w, "# TYPE loadimb_rebalance_converged gauge\n")
	fmt.Fprintf(w, "loadimb_rebalance_converged%s %d\n", label, converged)
	fmt.Fprintf(w, "# HELP loadimb_rebalance_rounds_to_target Rebalancing rounds needed to first reach the target; -1 until then.\n")
	fmt.Fprintf(w, "# TYPE loadimb_rebalance_rounds_to_target gauge\n")
	fmt.Fprintf(w, "loadimb_rebalance_rounds_to_target%s %d\n", label, s.RoundsToTarget)
}

// Mux assembles the exposition endpoint set over an arbitrary source:
//
//	/metrics        Prometheus text exposition of every paper index
//	/cube.json      the measurement cube (tracefmt JSON)
//	/lorenz.json    Lorenz curve of the per-processor total times
//	/timeline.json  windowed imbalance trajectory (temporal analysis)
//	/windows.json   raw per-window busy vectors (federation merge input)
//	/phases.json    phase detection over the window trajectory
//	/diagnose.json  automatic diagnosis (rank cohorts + divergence findings)
//	/delta          binary LIFP snapshot transfer (incremental scrapes)
//	/healthz        liveness probe (always 200 unless WithHealth overrides)
//	/               index page (404-on-subpath; WithIndex overrides)
//
// JSON endpoints answer 304 on a matching If-None-Match and gzip their
// bodies when the client sends Accept-Encoding: gzip. The same mux serves
// a live collector and a federator, which is what makes federation trees
// compose: every tier exposes the identical surface.
func Mux(src Source, opts ...Option) *http.ServeMux {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	mux := http.NewServeMux()
	health := cfg.health
	if health == nil {
		health = func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write([]byte("ok\n"))
		}
	}
	mux.HandleFunc("/healthz", health)
	switch {
	case cfg.ingest == nil && cfg.metricsPrefix == nil && cfg.rebalance == nil:
		mux.Handle("/metrics", MetricsHandler(src))
	default:
		ing, prefix, reb := cfg.ingest, cfg.metricsPrefix, cfg.rebalance
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			snap := src.Snapshot()
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if prefix != nil {
				prefix(w)
			}
			if err := monitor.WriteMetrics(w, snap); err != nil {
				return
			}
			if reb != nil {
				writeRebalanceMetrics(w, reb.Snapshot())
			}
			if ing != nil {
				_ = ing.WriteMetrics(w)
			}
		})
	}
	if cfg.rebalance != nil {
		mux.Handle("/rebalance.json", RebalanceHandler(cfg.rebalance))
	}
	mux.Handle("/cube.json", CubeHandler(src))
	mux.Handle("/lorenz.json", LorenzHandler(src))
	mux.Handle("/timeline.json", TimelineHandler(src, cfg.window))
	mux.Handle("/windows.json", WindowsHandler(src))
	mux.Handle("/phases.json", PhasesHandler(src))
	mux.Handle("/diagnose.json", DiagnoseHandler(src))
	mux.Handle("/delta", NewDeltaServer(src))
	index := cfg.index
	if index == nil {
		index = func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/html; charset=utf-8")
			_, _ = w.Write([]byte(dashboardHTML))
		}
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		index(w, r)
	})
	if cfg.pprof {
		// Explicit pprof wiring: the handler set must work on any mux,
		// not just http.DefaultServeMux.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// NewHandler returns the monitoring endpoint set for a live collector:
// Mux over the collector plus the embedded dashboard at "/" and the
// pprof profiles of the monitored process.
func NewHandler(c *monitor.Collector, opts ...Option) http.Handler {
	base := []Option{WithWindow(c.Window()), WithPprof()}
	return Mux(c, append(base, opts...)...)
}

// lorenzPayload is the /lorenz.json document.
type lorenzPayload struct {
	// Procs is the number of processors.
	Procs int `json:"procs"`
	// Points holds the Lorenz curve: Points[k] is the fraction of the
	// total time accounted for by the k least-loaded processors.
	Points []float64 `json:"points"`
	// Gini is the Gini coefficient of the same vector.
	Gini float64 `json:"gini"`
}

// timelinePayload is the /timeline.json document.
type timelinePayload struct {
	// Window is the configured window width in virtual seconds; 0 when
	// windowing is disabled.
	Window float64 `json:"window"`
	// Windows is the per-window imbalance trajectory. For a bounded run
	// that outgrew its window cap this is the retained full-resolution
	// ring; the fields below carry the decimated history. They are
	// omitted while nothing has been decimated, keeping the wire format
	// byte-identical to the pre-retention one for bounded-fit runs.
	Windows []monitor.WindowStat `json:"windows"`
	// CoarseWindow is the decimated tail's window width in virtual
	// seconds; 0 while nothing has been decimated.
	CoarseWindow float64 `json:"coarse_window,omitempty"`
	// RingStart is the base window index where full resolution begins.
	RingStart int `json:"ring_start,omitempty"`
	// Coarse is the pre-ring trajectory at CoarseWindow resolution.
	Coarse []monitor.WindowStat `json:"coarse,omitempty"`
}

// phasesPayload is the /phases.json document.
type phasesPayload struct {
	// Window is the window width in virtual seconds.
	Window float64 `json:"window"`
	// Current is the phase the run is in right now — the last detected
	// phase; null before the first non-empty window.
	Current *temporal.PhaseSummary `json:"current"`
	// Changes is the number of phase boundaries detected so far.
	Changes int `json:"changes"`
	// Phases is the full segmentation of the trajectory so far, in time
	// order — the boundary history.
	Phases []temporal.PhaseSummary `json:"phases"`
}
