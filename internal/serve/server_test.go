package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"loadimb/internal/apps"
	"loadimb/internal/monitor"
	"loadimb/internal/mpi"
	"loadimb/internal/tracefmt"
)

func newTestServer(t *testing.T) (*httptest.Server, *monitor.Collector) {
	t.Helper()
	c := monitor.NewCollector(monitor.Options{Window: 0.25, Activities: mpi.Activities()})
	srv := httptest.NewServer(NewHandler(c))
	t.Cleanup(srv.Close)
	return srv, c
}

// testClient bounds every test request: a hung server must fail the test
// fast instead of stalling the whole CI run.
var testClient = &http.Client{Timeout: 10 * time.Second}

func get(t *testing.T, url string) (int, string, string) {
	t.Helper()
	resp, err := testClient.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
}

func runWorkloadInto(t *testing.T, c *monitor.Collector) *apps.Result {
	t.Helper()
	cfg := apps.DefaultAMR()
	cfg.Procs = 4
	cfg.Phases = 3
	cfg.Sink = c
	res, err := apps.AMR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestServerHealthz(t *testing.T) {
	srv, _ := newTestServer(t)
	code, body, _ := get(t, srv.URL+"/healthz")
	if code != http.StatusOK || body != "ok\n" {
		t.Fatalf("healthz = %d %q", code, body)
	}
}

func TestServerEmptyCollector(t *testing.T) {
	srv, _ := newTestServer(t)
	if code, _, _ := get(t, srv.URL+"/cube.json"); code != http.StatusServiceUnavailable {
		t.Errorf("/cube.json on empty collector = %d, want 503", code)
	}
	if code, _, _ := get(t, srv.URL+"/lorenz.json"); code != http.StatusServiceUnavailable {
		t.Errorf("/lorenz.json on empty collector = %d, want 503", code)
	}
	code, body, ctype := get(t, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	if !strings.HasPrefix(ctype, "text/plain") || !strings.Contains(ctype, "version=0.0.4") {
		t.Errorf("metrics content type = %q", ctype)
	}
	parseExposition(t, body) // must still be well formed
}

func TestServerCubeRoundTrip(t *testing.T) {
	srv, c := newTestServer(t)
	res := runWorkloadInto(t, c)
	code, body, ctype := get(t, srv.URL+"/cube.json")
	if code != http.StatusOK || ctype != "application/json" {
		t.Fatalf("/cube.json = %d %q", code, ctype)
	}
	cube, err := tracefmt.ReadCubeJSON(strings.NewReader(body))
	if err != nil {
		t.Fatalf("served cube does not parse back: %v", err)
	}
	if !cube.EqualWithin(res.Cube, 1e-9) {
		t.Error("served cube differs from the run's aggregate")
	}
}

func TestServerLorenz(t *testing.T) {
	srv, c := newTestServer(t)
	runWorkloadInto(t, c)
	code, body, _ := get(t, srv.URL+"/lorenz.json")
	if code != http.StatusOK {
		t.Fatalf("/lorenz.json = %d", code)
	}
	var payload lorenzPayload
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatal(err)
	}
	if payload.Procs != 4 || len(payload.Points) != payload.Procs+1 {
		t.Fatalf("lorenz shape: procs=%d points=%d", payload.Procs, len(payload.Points))
	}
	if payload.Points[0] != 0 || payload.Points[len(payload.Points)-1] != 1 {
		t.Errorf("lorenz endpoints %g..%g, want 0..1", payload.Points[0], payload.Points[len(payload.Points)-1])
	}
	for i := 1; i < len(payload.Points); i++ {
		if payload.Points[i] < payload.Points[i-1] {
			t.Fatalf("lorenz curve not monotone at %d: %v", i, payload.Points)
		}
	}
	if payload.Gini < 0 || payload.Gini >= 1 {
		t.Errorf("gini = %g out of range", payload.Gini)
	}
}

func TestServerTimeline(t *testing.T) {
	srv, c := newTestServer(t)
	runWorkloadInto(t, c)
	code, body, _ := get(t, srv.URL+"/timeline.json")
	if code != http.StatusOK {
		t.Fatalf("/timeline.json = %d", code)
	}
	var payload timelinePayload
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatal(err)
	}
	if payload.Window != 0.25 {
		t.Errorf("window width = %g, want 0.25", payload.Window)
	}
	if len(payload.Windows) == 0 {
		t.Fatal("no windows in timeline")
	}
	prev := -1
	for _, w := range payload.Windows {
		if w.Index <= prev {
			t.Fatalf("windows out of order: %+v", payload.Windows)
		}
		prev = w.Index
		if w.Busy < 0 || (w.ID != nil && *w.ID < 0) || w.Gini < 0 {
			t.Errorf("negative window stat: %+v", w)
		}
		if w.Busy > 0 && w.ID == nil {
			t.Errorf("busy window %d served a null ID", w.Index)
		}
	}
}

func TestServerDashboardAndPprof(t *testing.T) {
	srv, _ := newTestServer(t)
	code, body, ctype := get(t, srv.URL+"/")
	if code != http.StatusOK || !strings.HasPrefix(ctype, "text/html") {
		t.Fatalf("dashboard = %d %q", code, ctype)
	}
	if !strings.Contains(body, "loadimb live monitor") {
		t.Error("dashboard HTML missing title")
	}
	if code, _, _ := get(t, srv.URL+"/nope"); code != http.StatusNotFound {
		t.Errorf("unknown path = %d, want 404", code)
	}
	if code, _, _ := get(t, srv.URL+"/debug/pprof/"); code != http.StatusOK {
		t.Errorf("pprof index = %d, want 200", code)
	}
}

// TestServerMetricsDuringRun scrapes concurrently with a running
// workload: the exposition must always parse, whatever the progress.
func TestServerMetricsDuringRun(t *testing.T) {
	srv, c := newTestServer(t)
	done := make(chan struct{})
	go func() {
		defer close(done)
		cfg := apps.DefaultMasterWorker()
		cfg.Procs = 6
		cfg.Tasks = 60
		cfg.Sink = c
		if _, err := apps.MasterWorker(cfg); err != nil {
			t.Error(err)
		}
	}()
	for i := 0; i < 20; i++ {
		code, body, _ := get(t, srv.URL+"/metrics")
		if code != http.StatusOK {
			t.Fatalf("mid-run scrape %d = %d", i, code)
		}
		parseExposition(t, body)
	}
	<-done
	code, body, _ := get(t, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("final scrape = %d", code)
	}
	samples := parseExposition(t, body)
	final := indexSamples(samples)
	if final[sample{name: monitor.MetricEventsTotal, labels: map[string]string{}}.key()] == 0 {
		t.Error("no events after the run completed")
	}
}
