package serve

import (
	"fmt"
	"net/http"
	"sync"

	"loadimb/internal/monitor"
	"loadimb/internal/tracefmt"
)

// DeltaContentType is the media type of /delta response bodies (a LIFP
// document, see internal/tracefmt).
const DeltaContentType = "application/vnd.loadimb.delta"

// deltaRetain is how many past generations the /delta endpoint keeps per
// source. Each retained generation is a reference to an already-built
// immutable snapshot (copy-on-write under the collector), so the cost is
// a map entry, not a cube copy; the bound is what matters — a scraper
// that falls further behind than this gets a full document instead of a
// delta, it is never wrong, just bigger.
const deltaRetain = 8

// deltaFrames bounds the memoized encoded documents. Every concurrent
// scraper at the same lag shares one encoding; distinct lags encode once
// each and the oldest memo is dropped past the cap.
const deltaFrames = 16

// DeltaServer serves the binary LIFP snapshot-transfer endpoint. A
// client names the state it holds with ?since=b<boot-hex>-g<gen> (its
// ETag, unquoted); the server answers
//
//	304                client state is current (cheapest poll)
//	200 delta doc      the named generation is retained: only what
//	                   changed since then is on the wire
//	200 full doc       unknown/forgotten generation, other boot
//	                   incarnation, or no ?since — a complete snapshot
//
// Restart safety falls out of the boot nonce: after the publisher
// restarts, no ?since from the previous incarnation matches, so the
// client is forced through a full resync and can never merge deltas
// across the restart. Per-client cost is zero — the server keeps a small
// shared ring of recent generations and memoized frames, not per-client
// state, so ten thousand scrapers cost the same as one.
type DeltaServer struct {
	src Source

	mu       sync.Mutex
	boot     uint64
	retained map[uint64]*tracefmt.DeltaState // recent generations, this boot
	order    []uint64                        // retained insertion order (ascending gens)
	frames   map[[2]uint64][]byte            // (fromGen, toGen) -> encoded doc
	frameSeq [][2]uint64                     // frames insertion order
}

// NewDeltaServer returns the /delta handler for a snapshot source.
func NewDeltaServer(src Source) *DeltaServer {
	return &DeltaServer{src: src}
}

// state extracts the transferable part of a snapshot.
func deltaState(snap *monitor.Snapshot) *tracefmt.DeltaState {
	return &tracefmt.DeltaState{
		Boot:   snap.Boot,
		Gen:    snap.Gen,
		Cube:   snap.Cube,
		Series: snap.Series,
	}
}

// retain records the state under its generation, evicting the oldest
// past the cap. Caller holds s.mu.
func (s *DeltaServer) retain(cur *tracefmt.DeltaState) {
	if s.boot != cur.Boot {
		// New publisher incarnation: state from the old boot must never
		// seed a delta.
		s.boot = cur.Boot
		s.retained = nil
		s.order = nil
		s.frames = nil
		s.frameSeq = nil
	}
	if s.retained == nil {
		s.retained = make(map[uint64]*tracefmt.DeltaState, deltaRetain)
	}
	if _, ok := s.retained[cur.Gen]; ok {
		return
	}
	s.retained[cur.Gen] = cur
	s.order = append(s.order, cur.Gen)
	for len(s.order) > deltaRetain {
		delete(s.retained, s.order[0])
		s.order = s.order[1:]
	}
}

// frame returns the memoized encoding for (from, to), building it with
// encode on a miss. Caller holds s.mu.
func (s *DeltaServer) frame(from, to uint64, encode func() ([]byte, error)) ([]byte, error) {
	key := [2]uint64{from, to}
	if doc, ok := s.frames[key]; ok {
		return doc, nil
	}
	doc, err := encode()
	if err != nil {
		return nil, err
	}
	if s.frames == nil {
		s.frames = make(map[[2]uint64][]byte, deltaFrames)
	}
	s.frames[key] = doc
	s.frameSeq = append(s.frameSeq, key)
	for len(s.frameSeq) > deltaFrames {
		delete(s.frames, s.frameSeq[0])
		s.frameSeq = s.frameSeq[1:]
	}
	return doc, nil
}

// parseSince parses the ?since= value: "b<hex>-g<dec>", the ETag without
// its quotes.
func parseSince(v string) (boot, gen uint64, ok bool) {
	if v == "" {
		return 0, 0, false
	}
	n, err := fmt.Sscanf(v, "b%x-g%d", &boot, &gen)
	return boot, gen, err == nil && n == 2
}

func (s *DeltaServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	snap := s.src.Snapshot()
	cur := deltaState(snap)

	// A snapshot without a boot nonce (hand-built test sources) cannot be
	// identified across requests: serve a one-off full document.
	if cur.Boot == 0 {
		doc, err := tracefmt.EncodeSnapshotFull(cur)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", DeltaContentType)
		_, _ = w.Write(doc)
		return
	}

	sinceBoot, sinceGen, haveSince := parseSince(r.URL.Query().Get("since"))
	if haveSince && sinceBoot == cur.Boot && sinceGen == cur.Gen {
		w.Header().Set("ETag", snap.ETag())
		w.WriteHeader(http.StatusNotModified)
		return
	}

	s.mu.Lock()
	s.retain(cur)
	var doc []byte
	var err error
	if haveSince && sinceBoot == s.boot && sinceGen < cur.Gen {
		if prev, ok := s.retained[sinceGen]; ok {
			doc, err = s.frame(sinceGen, cur.Gen, func() ([]byte, error) {
				return tracefmt.EncodeSnapshotDelta(prev, cur)
			})
		}
	}
	if doc == nil && err == nil {
		// Unknown base (or none): full document, memoized under the
		// impossible from-gen ^0 so concurrent cold scrapers share it.
		doc, err = s.frame(^uint64(0), cur.Gen, func() ([]byte, error) {
			return tracefmt.EncodeSnapshotFull(cur)
		})
	}
	s.mu.Unlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", DeltaContentType)
	w.Header().Set("ETag", snap.ETag())
	_, _ = w.Write(doc)
}
