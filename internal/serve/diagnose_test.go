package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"sync"
	"testing"

	"loadimb/internal/cfd"
	"loadimb/internal/diagnose"
	"loadimb/internal/monitor"
	"loadimb/internal/temporal"
	"loadimb/internal/trace"
)

func TestServerDiagnose(t *testing.T) {
	srv, c := newTestServer(t)
	runWorkloadInto(t, c)
	code, body, ctype := get(t, srv.URL+"/diagnose.json")
	if code != http.StatusOK || ctype != "application/json" {
		t.Fatalf("/diagnose.json = %d %q", code, ctype)
	}
	var rep diagnose.Report
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Procs != 4 || rep.Window != 0.25 {
		t.Errorf("report shape: procs=%d window=%g", rep.Procs, rep.Window)
	}
	if len(rep.Dimensions) == 0 || len(rep.Phases) == 0 {
		t.Fatalf("empty report on a finished workload: %+v", rep)
	}
	for _, pd := range rep.Phases {
		covered := 0
		for _, co := range pd.Cohorts {
			covered += len(co.Ranks)
			if len(co.Centroid) != len(rep.Dimensions) {
				t.Errorf("phase %d: centroid dims %d, report dims %d",
					pd.Phase, len(co.Centroid), len(rep.Dimensions))
			}
		}
		if covered != rep.Procs {
			t.Errorf("phase %d cohorts cover %d of %d ranks", pd.Phase, covered, rep.Procs)
		}
	}
}

func TestServerDiagnoseWindowingDisabled(t *testing.T) {
	c := monitor.NewCollector(monitor.Options{})
	srv := httptest.NewServer(DiagnoseHandler(c))
	t.Cleanup(srv.Close)
	if code, _, _ := get(t, srv.URL); code != http.StatusServiceUnavailable {
		t.Errorf("/diagnose.json without windowing = %d, want 503", code)
	}
}

// TestDiagnoseGolden locks the live /diagnose.json document over the
// deterministic wavefront run: any change to the fingerprinting,
// clustering, scoring or wire format shows up in the golden bytes.
func TestDiagnoseGolden(t *testing.T) {
	c := goldenWorkload(t)
	srv := httptest.NewServer(NewHandler(c))
	defer srv.Close()
	code, body, ctype := get(t, srv.URL+"/diagnose.json")
	if code != http.StatusOK {
		t.Fatalf("/diagnose.json = %d", code)
	}
	if ctype != "application/json" {
		t.Fatalf("content type %q", ctype)
	}
	checkGolden(t, filepath.Join("testdata", "diagnose_live.golden.json"), []byte(body))
}

// closeEnough compares floats the way the phase property test does: the
// live fold sums events in drain order, so values can differ from the
// offline pipeline's in the last bits.
func closeEnough(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}

// sameReport checks the live report against the offline one: discrete
// structure (dimensions, cohort membership, finding ranks) exactly,
// floats to close tolerance.
func sameReport(t *testing.T, live, want *diagnose.Report) {
	t.Helper()
	if live.Procs != want.Procs || live.Window != want.Window {
		t.Fatalf("report head: live procs=%d window=%g, offline procs=%d window=%g",
			live.Procs, live.Window, want.Procs, want.Window)
	}
	if fmt.Sprint(live.Dimensions) != fmt.Sprint(want.Dimensions) {
		t.Fatalf("dimensions: live %v, offline %v", live.Dimensions, want.Dimensions)
	}
	if len(live.Phases) != len(want.Phases) {
		t.Fatalf("live %d phases, offline %d", len(live.Phases), len(want.Phases))
	}
	for i, lp := range live.Phases {
		wp := want.Phases[i]
		if lp.Phase != wp.Phase || lp.Label != wp.Label {
			t.Errorf("phase %d: live (%d, %q), offline (%d, %q)", i, lp.Phase, lp.Label, wp.Phase, wp.Label)
		}
		if !closeEnough(lp.Start, wp.Start) || !closeEnough(lp.End, wp.End) ||
			!closeEnough(lp.Scale, wp.Scale) || !closeEnough(lp.Silhouette, wp.Silhouette) {
			t.Errorf("phase %d floats: live %+v, offline %+v", i, lp, wp)
		}
		if len(lp.Cohorts) != len(wp.Cohorts) {
			t.Fatalf("phase %d: live %d cohorts, offline %d", i, len(lp.Cohorts), len(wp.Cohorts))
		}
		for c, lc := range lp.Cohorts {
			wc := wp.Cohorts[c]
			if fmt.Sprint(lc.Ranks) != fmt.Sprint(wc.Ranks) {
				t.Errorf("phase %d cohort %d ranks: live %v, offline %v", i, c, lc.Ranks, wc.Ranks)
			}
			if !closeEnough(lc.Spread, wc.Spread) {
				t.Errorf("phase %d cohort %d spread: live %g, offline %g", i, c, lc.Spread, wc.Spread)
			}
			for d := range lc.Centroid {
				if !closeEnough(lc.Centroid[d], wc.Centroid[d]) {
					t.Errorf("phase %d cohort %d centroid[%d]: live %g, offline %g",
						i, c, d, lc.Centroid[d], wc.Centroid[d])
				}
			}
		}
	}
	if len(live.Findings) != len(want.Findings) {
		t.Fatalf("live %d findings, offline %d:\nlive    %+v\noffline %+v",
			len(live.Findings), len(want.Findings), live.Findings, want.Findings)
	}
	for i, lf := range live.Findings {
		wf := want.Findings[i]
		if lf.Rank != wf.Rank || lf.Phase != wf.Phase || lf.Cohort != wf.Cohort ||
			lf.CohortSize != wf.CohortSize || lf.Lone != wf.Lone {
			t.Errorf("finding %d: live %+v, offline %+v", i, lf, wf)
		}
		if !closeEnough(lf.Distance, wf.Distance) || !closeEnough(lf.Score, wf.Score) {
			t.Errorf("finding %d score: live (%g, %g), offline (%g, %g)",
				i, lf.Distance, lf.Score, wf.Distance, wf.Score)
		}
		if lf.Summary != wf.Summary {
			t.Errorf("finding %d summary:\nlive    %q\noffline %q", i, lf.Summary, wf.Summary)
		}
	}
}

// TestDiagnoseMatchesOfflineCfd is the acceptance property: on a cfdsim
// run with one injected straggler, the live /diagnose.json equals the
// offline pipeline (`imba -diagnose` over the saved trace: FoldLog +
// Segment + Diagnose), and both name the slowed rank as the top finding
// with computation the dominant dimension.
func TestDiagnoseMatchesOfflineCfd(t *testing.T) {
	const window = 1.0
	c := monitor.NewCollector(monitor.Options{Window: window})
	srv := httptest.NewServer(NewHandler(c))
	t.Cleanup(srv.Close)

	cfg := cfd.Defaults()
	cfg.Procs = 8
	cfg.GridX = 128
	cfg.GridY = 128
	cfg.Iterations = 8
	cfg.SlowRank = 5
	cfg.SlowFactor = 3
	cfg.Sink = c
	res, err := cfd.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	code, body, _ := get(t, srv.URL+"/diagnose.json")
	if code != http.StatusOK {
		t.Fatalf("/diagnose.json = %d", code)
	}
	var live diagnose.Report
	if err := json.Unmarshal([]byte(body), &live); err != nil {
		t.Fatal(err)
	}

	ser, err := temporal.FoldLog(res.Log, temporal.Options{Window: window, PerActivity: true, PerRegion: true})
	if err != nil {
		t.Fatal(err)
	}
	want := diagnose.Diagnose(ser, temporal.Segment(ser.Stats(), 0), diagnose.Options{})
	sameReport(t, &live, want)

	// Both pipelines localize the injected fault: top finding names the
	// slowed rank and attributes the divergence to computation.
	for name, rep := range map[string]*diagnose.Report{"live": &live, "offline": want} {
		if len(rep.Findings) == 0 {
			t.Fatalf("%s: no findings on a run with a 3x straggler", name)
		}
		top := rep.Findings[0]
		if top.Rank != cfg.SlowRank {
			t.Errorf("%s: top finding names rank %d, want %d: %q", name, top.Rank, cfg.SlowRank, top.Summary)
		}
		if len(top.Dominant) == 0 || top.Dominant[0].Dimension != "computation" {
			t.Errorf("%s: top finding dominant = %+v, want computation", name, top.Dominant)
		}
		if top.Dominant[0].Delta <= 0 {
			t.Errorf("%s: straggler's computation delta = %g, want positive", name, top.Dominant[0].Delta)
		}
	}
}

// TestServerMetricsDiagFamilies checks the diagnosis metric families on
// the same straggler run: the outlier gauge flags the slowed rank and the
// per-phase cohort counts cover every diagnosed phase.
func TestServerMetricsDiagFamilies(t *testing.T) {
	c := monitor.NewCollector(monitor.Options{Window: 1.0})
	srv := httptest.NewServer(NewHandler(c))
	t.Cleanup(srv.Close)
	cfg := cfd.Defaults()
	cfg.Procs = 8
	cfg.GridX = 128
	cfg.GridY = 128
	cfg.Iterations = 6
	cfg.SlowRank = 2
	cfg.SlowFactor = 3
	cfg.Sink = c
	if _, err := cfd.Run(cfg); err != nil {
		t.Fatal(err)
	}
	code, body, _ := get(t, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	samples := parseExposition(t, body)
	idx := indexSamples(samples)
	outliers, ok := idx[sample{name: monitor.MetricDiagOutliers, labels: map[string]string{}}.key()]
	if !ok || outliers < 1 {
		t.Errorf("%s = %g, want >= 1 on a straggler run", monitor.MetricDiagOutliers, outliers)
	}
	rep := c.Snapshot().Diagnosis()
	if rep == nil {
		t.Fatal("nil diagnosis with windowing enabled")
	}
	for _, pd := range rep.Phases {
		key := sample{name: monitor.MetricDiagCohorts, labels: map[string]string{"phase": strconv.Itoa(pd.Phase)}}.key()
		if got, ok := idx[key]; !ok || got != float64(len(pd.Cohorts)) {
			t.Errorf("%s{phase=%d} = %g, want %d", monitor.MetricDiagCohorts, pd.Phase, got, len(pd.Cohorts))
		}
	}
	found := false
	for _, s := range samples {
		if s.name == monitor.MetricDiagScore && s.labels["rank"] == strconv.Itoa(cfg.SlowRank) {
			found = true
			if s.value < 1 {
				t.Errorf("straggler score gauge = %g, want >= 1", s.value)
			}
		}
	}
	if !found {
		t.Errorf("no %s sample for the slowed rank %d", monitor.MetricDiagScore, cfg.SlowRank)
	}
}

// TestConcurrentRecordDiagnose hammers the collector with concurrent
// recorders and /diagnose.json scrapes; under -race this verifies the
// memoized diagnosis is computed once per snapshot and the published
// report is immutable.
func TestConcurrentRecordDiagnose(t *testing.T) {
	c := monitor.NewCollector(monitor.Options{Window: 1})
	handler := DiagnoseHandler(c)
	var wg sync.WaitGroup
	const (
		recorders = 4
		scrapers  = 3
		rounds    = 50
	)
	errs := make(chan error, scrapers)
	for g := 0; g < recorders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				start := float64(r) * 0.3
				c.Record(trace.Event{Rank: g, Region: "loop0", Activity: "comp",
					Start: start, End: start + 0.3 + float64(g)*0.01})
			}
		}(g)
	}
	for g := 0; g < scrapers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				rec := httptest.NewRecorder()
				handler(rec, httptest.NewRequest("GET", "/diagnose.json", nil))
				if rec.Code != http.StatusOK {
					errs <- fmt.Errorf("scrape = %d", rec.Code)
					return
				}
				var rep diagnose.Report
				if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
