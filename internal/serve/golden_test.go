package serve

import (
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"loadimb/internal/apps"
	"loadimb/internal/monitor"
	"loadimb/internal/mpi"
)

// -update regenerates the golden files. Run it only to bless an
// intentional wire-format change; the whole point of the goldens is that
// refactors of the window fold keep /timeline.json byte-identical.
var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenWorkload streams a deterministic wavefront run (virtual time,
// seeded costs — no wall-clock anywhere) into a windowed collector, so
// the timeline document it serves is reproducible bit for bit. The
// pipelined sweep produces per-window busy sums and Gini values that
// differ from their neighbours by single ulps (4.799999999999997 vs
// …004, 2.22e-16 vs 0), which is the point: any change to the fold's
// clipping or accumulation order shows up in the golden bytes.
func goldenWorkload(t *testing.T) *monitor.Collector {
	t.Helper()
	c := monitor.NewCollector(monitor.Options{Window: 0.3, Activities: mpi.Activities()})
	cfg := apps.DefaultWavefront()
	cfg.Sink = c
	if _, err := apps.Wavefront(cfg); err != nil {
		t.Fatal(err)
	}
	return c
}

func checkGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create it): %v", err)
	}
	if string(want) != string(got) {
		t.Errorf("%s drifted from golden.\ngot:\n%s\nwant:\n%s", path, got, want)
	}
}

// TestTimelineGolden locks the live /timeline.json document: the window
// fold refactor onto internal/temporal must keep the served bytes
// identical to the pre-refactor collector's output, which this golden was
// generated from.
func TestTimelineGolden(t *testing.T) {
	c := goldenWorkload(t)
	srv := httptest.NewServer(NewHandler(c))
	defer srv.Close()
	code, body, ctype := get(t, srv.URL+"/timeline.json")
	if code != http.StatusOK {
		t.Fatalf("/timeline.json = %d", code)
	}
	if ctype != "application/json" {
		t.Fatalf("content type %q", ctype)
	}
	checkGolden(t, filepath.Join("testdata", "timeline_live.golden.json"), []byte(body))
}

// TestWindowsGolden locks the /windows.json document — the raw window
// series the federation layer scrapes and merges.
func TestWindowsGolden(t *testing.T) {
	c := goldenWorkload(t)
	srv := httptest.NewServer(NewHandler(c))
	defer srv.Close()
	code, body, ctype := get(t, srv.URL+"/windows.json")
	if code != http.StatusOK {
		t.Fatalf("/windows.json = %d", code)
	}
	if ctype != "application/json" {
		t.Fatalf("content type %q", ctype)
	}
	checkGolden(t, filepath.Join("testdata", "windows_live.golden.json"), []byte(body))
}
