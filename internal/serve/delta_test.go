package serve

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"loadimb/internal/monitor"
	"loadimb/internal/trace"
	"loadimb/internal/tracefmt"
)

// deltaCollector returns a collector with a windowed event history and a
// handler server mounting /delta over it.
func deltaCollector(t *testing.T) (*monitor.Collector, *httptest.Server) {
	t.Helper()
	c := monitor.NewCollector(monitor.Options{Window: 0.5})
	for _, e := range ingestEvents(rand.New(rand.NewSource(11)), 200, 4) {
		c.Record(e)
	}
	srv := httptest.NewServer(NewHandler(c))
	t.Cleanup(srv.Close)
	return c, srv
}

// getDelta fetches /delta with an optional since value and returns the
// response; the caller owns the body.
func getDelta(t *testing.T, url, since string) *http.Response {
	t.Helper()
	u := url + "/delta"
	if since != "" {
		u += "?since=" + since
	}
	resp, err := http.Get(u)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// sinceOf turns a snapshot ETag into the ?since= value (the tag without
// its quotes).
func sinceOf(etag string) string { return strings.Trim(etag, `"`) }

// stateEquals checks that a decoded transfer state matches a snapshot.
func stateEquals(t *testing.T, state *tracefmt.DeltaState, snap *monitor.Snapshot) {
	t.Helper()
	if state.Boot != snap.Boot || state.Gen != snap.Gen {
		t.Fatalf("identity (%x,%d), want (%x,%d)", state.Boot, state.Gen, snap.Boot, snap.Gen)
	}
	if (state.Cube == nil) != (snap.Cube == nil) {
		t.Fatalf("cube nil = %v, want %v", state.Cube == nil, snap.Cube == nil)
	}
	if state.Cube != nil && !state.Cube.EqualWithin(snap.Cube, 0) {
		t.Fatal("decoded cube differs from the snapshot cube")
	}
	if !reflect.DeepEqual(state.Series, snap.Series) {
		t.Fatalf("decoded series differs:\n got %+v\nwant %+v", state.Series, snap.Series)
	}
}

// TestDeltaEndpoint covers the /delta state machine against a live
// collector: full document for a cold client, 304 for a current one,
// a real delta for a retained generation (it must refuse to decode
// without its base — proof it is not a full document in disguise), and
// full-document fallbacks for unknown generations and foreign boot
// nonces.
func TestDeltaEndpoint(t *testing.T) {
	c, srv := deltaCollector(t)
	snap1 := c.Snapshot()

	// Cold client: full document, decodable without any base.
	resp := getDelta(t, srv.URL, "")
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold GET /delta: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != DeltaContentType {
		t.Fatalf("content type %q, want %q", ct, DeltaContentType)
	}
	if got := resp.Header.Get("ETag"); got != snap1.ETag() {
		t.Fatalf("ETag %q, want %q", got, snap1.ETag())
	}
	state1, err := tracefmt.DecodeSnapshot(body, nil)
	if err != nil {
		t.Fatalf("decoding full document: %v", err)
	}
	stateEquals(t, state1, snap1)

	// Current client: 304, no body.
	resp = getDelta(t, srv.URL, sinceOf(snap1.ETag()))
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("current GET /delta: %d, want 304", resp.StatusCode)
	}
	if got := resp.Header.Get("ETag"); got != snap1.ETag() {
		t.Fatalf("304 ETag %q, want %q", got, snap1.ETag())
	}

	// Advance the collector one generation and ask for the diff.
	c.Record(trace.Event{Rank: 1, Region: "halo", Activity: "collective", Start: 50, End: 51})
	snap2 := c.Snapshot()
	if snap2.Gen <= snap1.Gen {
		t.Fatal("recording did not advance the fold generation")
	}
	resp = getDelta(t, srv.URL, sinceOf(snap1.ETag()))
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("lagging GET /delta: %d", resp.StatusCode)
	}
	// A true delta cannot decode without its base...
	if _, err := tracefmt.DecodeSnapshot(body, nil); !errors.Is(err, tracefmt.ErrDeltaBase) {
		t.Fatalf("delta decoded without a base (err=%v): server sent a full document", err)
	}
	// ...and applied to the base it reproduces the current snapshot.
	state2, err := tracefmt.DecodeSnapshot(body, state1)
	if err != nil {
		t.Fatalf("applying delta: %v", err)
	}
	stateEquals(t, state2, snap2)

	// Unknown generation: full-document fallback.
	resp = getDelta(t, srv.URL, fmt.Sprintf("b%x-g%d", snap2.Boot, snap2.Gen+100))
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if state, err := tracefmt.DecodeSnapshot(body, nil); err != nil {
		t.Fatalf("unknown-gen response is not a full document: %v", err)
	} else {
		stateEquals(t, state, snap2)
	}

	// Foreign boot nonce (a client that scraped a previous incarnation):
	// full-document fallback, never a delta across boots.
	resp = getDelta(t, srv.URL, fmt.Sprintf("b%x-g%d", snap2.Boot+1, snap2.Gen))
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if state, err := tracefmt.DecodeSnapshot(body, nil); err != nil {
		t.Fatalf("foreign-boot response is not a full document: %v", err)
	} else {
		stateEquals(t, state, snap2)
	}
}

// bootlessSource serves hand-built snapshots without a boot nonce.
type bootlessSource struct{ snap *monitor.Snapshot }

func (s bootlessSource) Snapshot() *monitor.Snapshot { return s.snap }

// TestDeltaEndpointBootless: a source without a boot nonce cannot be
// identified across requests, so every response is a complete document.
func TestDeltaEndpointBootless(t *testing.T) {
	cube, err := trace.NewCube([]string{"r"}, []string{"a"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := cube.Set(0, 0, 0, 1.5); err != nil {
		t.Fatal(err)
	}
	src := bootlessSource{snap: &monitor.Snapshot{Cube: cube, Gen: 3}}
	srv := httptest.NewServer(NewDeltaServer(src))
	defer srv.Close()
	for i := 0; i < 2; i++ {
		resp, err := http.Get(srv.URL + "?since=b0-g3")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("bootless GET: %d", resp.StatusCode)
		}
		state, err := tracefmt.DecodeSnapshot(body, nil)
		if err != nil {
			t.Fatalf("bootless response is not a full document: %v", err)
		}
		if !state.Cube.EqualWithin(cube, 0) {
			t.Fatal("bootless full document lost the cube")
		}
	}
}

// TestDeltaEndpointConcurrent hammers /delta from many clients while the
// collector keeps folding: each client tracks its own acked generation
// (so it sees a mix of 304s, deltas and fulls depending on how far it
// lags) and applies every document to its local state. At the end, every
// client resyncs once more and must hold exactly the server's final
// snapshot — under -race this is also the locking test for the shared
// retain ring and frame memo.
func TestDeltaEndpointConcurrent(t *testing.T) {
	c, srv := deltaCollector(t)

	const clients = 8
	const rounds = 20
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	states := make([]*tracefmt.DeltaState, clients)

	// Writer: keep advancing the fold while the scrapers run — paced, so
	// the series stays small and scrapers see a mix of lags rather than
	// an endless stream of giant documents.
	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		at := 100.0
		for {
			select {
			case <-stop:
				return
			default:
			}
			c.Record(trace.Event{Rank: 2, Region: "loop 1", Activity: "computation", Start: at, End: at + 0.3})
			at += 0.3
			time.Sleep(200 * time.Microsecond)
		}
	}()

	scrape := func(state *tracefmt.DeltaState) (*tracefmt.DeltaState, error) {
		since := ""
		if state != nil {
			since = fmt.Sprintf("b%x-g%d", state.Boot, state.Gen)
		}
		u := srv.URL + "/delta"
		if since != "" {
			u += "?since=" + since
		}
		resp, err := http.Get(u)
		if err != nil {
			return nil, err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		switch resp.StatusCode {
		case http.StatusNotModified:
			return state, nil
		case http.StatusOK:
			next, err := tracefmt.DecodeSnapshot(body, state)
			if errors.Is(err, tracefmt.ErrDeltaBase) {
				return nil, fmt.Errorf("server sent a delta for a base we did not ack (since=%s)", since)
			}
			return next, err
		default:
			return nil, fmt.Errorf("GET /delta: %d", resp.StatusCode)
		}
	}

	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var state *tracefmt.DeltaState
			var err error
			for r := 0; r < rounds; r++ {
				if state, err = scrape(state); err != nil {
					errs <- fmt.Errorf("client %d round %d: %w", i, r, err)
					return
				}
			}
			states[i] = state
		}(i)
	}
	wg.Wait()
	close(stop)
	writer.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The fold is quiet now: one more scrape per client must converge
	// every one of them on the server's final snapshot.
	final := c.Snapshot()
	for i := range states {
		state, err := scrape(states[i])
		if err != nil {
			t.Fatalf("client %d resync: %v", i, err)
		}
		stateEquals(t, state, final)
	}
}
