package serve

// dashboardHTML is the embedded live dashboard served at "/": a single
// self-contained page (no external assets, so it works on an air-gapped
// cluster) that polls the JSON endpoints and renders the headline
// indices, the per-region SID_C bars and the windowed imbalance
// trajectory as text sparklines.
const dashboardHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>loadimb live monitor</title>
<style>
  body { font-family: ui-monospace, SFMono-Regular, Menlo, monospace;
         margin: 2rem; background: #101418; color: #d8dee4; }
  h1 { font-size: 1.1rem; } h2 { font-size: 0.95rem; margin-top: 1.5rem; }
  table { border-collapse: collapse; }
  td, th { padding: 0.15rem 0.9rem 0.15rem 0; text-align: left;
           font-variant-numeric: tabular-nums; }
  .bar { color: #d9a05b; } .dim { color: #7a8490; }
  #err { color: #e06c75; }
  a { color: #7aa2f7; }
</style>
</head>
<body>
<h1>loadimb live monitor</h1>
<p class="dim">
  <span id="summary">waiting for data…</span><span id="err"></span><br>
  raw: <a href="/metrics">/metrics</a> · <a href="/cube.json">/cube.json</a> ·
  <a href="/lorenz.json">/lorenz.json</a> · <a href="/timeline.json">/timeline.json</a> ·
  <a href="/phases.json">/phases.json</a> · <a href="/diagnose.json">/diagnose.json</a> ·
  <a href="/debug/pprof/">pprof</a>
</p>
<h2>code regions (SID_C = share × ID_C)</h2>
<table id="regions"><tbody></tbody></table>
<h2>activities (SID_A)</h2>
<table id="activities"><tbody></tbody></table>
<h2>imbalance over time (window ID; ^ marks a live-detected phase boundary)</h2>
<pre id="timeline" class="bar"></pre>
<h2>phases (streaming change-point detection)</h2>
<pre id="phases"></pre>
<h2>findings (automatic diagnosis — diverged ranks)</h2>
<pre id="findings" class="dim"></pre>
<script>
const BLOCKS = "▁▂▃▄▅▆▇█";
function bar(frac, width) {
  const n = Math.max(0, Math.min(width, Math.round(frac * width)));
  return "█".repeat(n) + "░".repeat(width - n);
}
function parseMetrics(text) {
  const out = [];
  for (const line of text.split("\n")) {
    if (!line || line.startsWith("#")) continue;
    const m = line.match(/^(\w+)(?:\{(.*)\})? (.+)$/);
    if (!m) continue;
    const labels = {};
    if (m[2]) for (const kv of m[2].match(/\w+="(?:[^"\\]|\\.)*"/g) || []) {
      const eq = kv.indexOf("=");
      labels[kv.slice(0, eq)] = kv.slice(eq + 2, -1);
    }
    out.push({ name: m[1], labels: labels, value: parseFloat(m[3]) });
  }
  return out;
}
function fill(tableId, rows, key) {
  const body = document.querySelector(tableId + " tbody");
  const max = Math.max(...rows.map(r => r.value), 1e-12);
  body.innerHTML = rows.map(r =>
    "<tr><td>" + r.labels[key] + "</td><td>" + r.value.toFixed(5) +
    '</td><td class="bar">' + bar(r.value / max, 30) + "</td></tr>").join("");
}
async function tick() {
  try {
    const [mres, tres, pres, dres] =
      await Promise.all([fetch("/metrics"), fetch("/timeline.json"),
                         fetch("/phases.json"), fetch("/diagnose.json")]);
    const metrics = parseMetrics(await mres.text());
    const pick = n => metrics.filter(s => s.name === n);
    const one = n => { const s = pick(n)[0]; return s ? s.value : NaN; };
    document.getElementById("summary").textContent =
      "P=" + one("loadimb_procs") +
      "  T=" + one("loadimb_program_time_seconds").toFixed(2) + "s" +
      "  events=" + one("loadimb_events_total") +
      "  gini=" + one("loadimb_gini").toFixed(4);
    fill("#regions", pick("loadimb_sid_c"), "region");
    fill("#activities", pick("loadimb_sid_a"), "activity");
    const tl = await tres.json();
    // /phases.json answers 503 while windowing is off; the sparkline and
    // phase list simply stay empty then.
    const phases = pres.ok ? (await pres.json()).phases || [] : [];
    const ws = tl.windows || [];
    // A bounded run that outgrew its window cap carries its older
    // trajectory decimated to a coarser width: render it before the
    // full-resolution ring, separated by a ┆ resolution break.
    const coarse = tl.coarse || [];
    if (ws.length) {
      // id is null for all-idle windows (undefined dispersion): render
      // them as gaps instead of pretending they are balanced.
      const ids = ws.concat(coarse).map(w => w.id).filter(x => x != null);
      const max = Math.max(...ids, 1e-12);
      const spark = a =>
        a.map(w => w.id == null ? "·" : BLOCKS[Math.min(7, Math.floor(w.id / max * 7.999))]).join("");
      const prefix = coarse.length ? spark(coarse) + "┆" : "";
      let text = prefix + spark(ws);
      if (phases.length > 1) {
        // Align a ^ under the first window of every phase after the first:
        // the boundaries the streaming segmenter has committed to so far.
        const row = new Array(ws.length).fill(" ");
        for (const ph of phases.slice(1)) {
          const p = ph.first_window - ws[0].index;
          if (p >= 0 && p < row.length) row[p] = "^";
        }
        text += "\n" + " ".repeat(prefix.length) + row.join("");
      }
      document.getElementById("timeline").textContent = text +
        "\nwindows " + ws[0].index + "…" + ws[ws.length - 1].index +
        " (width " + tl.window + "s), peak ID " + max.toFixed(4) +
        (coarse.length ? "\ndecimated history before window " + tl.ring_start +
          ": " + coarse.length + " windows at " + tl.coarse_window + "s" : "");
    }
    if (phases.length) {
      const cur = phases[phases.length - 1];
      document.getElementById("phases").textContent =
        "current: " + cur.label + " since t=" + cur.start.toFixed(2) + "s" +
        " (" + (phases.length - 1) + " changes so far)\n" +
        phases.map((ph, k) =>
          (k + 1) + ". [" + ph.start.toFixed(2) + "s, " + ph.end.toFixed(2) + "s) " + ph.label +
          (ph.id != null ? "  ID_P=" + ph.id.toFixed(4) : "") +
          (ph.hot_activities ? "  hot: " + ph.hot_activities.join(", ") : "")).join("\n");
    }
    // /diagnose.json answers 503 while windowing is off.
    const diag = dres.ok ? await dres.json() : null;
    const findings = (diag && diag.findings) || [];
    if (findings.length) {
      document.getElementById("findings").textContent =
        findings.map(f => "‣ " + f.summary).join("\n");
    } else if (diag) {
      const cohorts = (diag.phases || []).map(p => (p.cohorts || []).length);
      document.getElementById("findings").textContent =
        "no diverged ranks — cohorts per phase: " + (cohorts.join(", ") || "n/a");
    }
    document.getElementById("err").textContent = "";
  } catch (e) {
    document.getElementById("err").textContent = "  (" + e + ")";
  }
}
tick();
setInterval(tick, 2000);
</script>
</body>
</html>
`
