package serve

import (
	"compress/gzip"
	"encoding/json"
	"io"
	"math/rand"
	"net/http/httptest"
	"testing"

	"loadimb/internal/monitor"
)

// TestGzipNegotiation: JSON endpoints compress exactly when the client
// asks — Accept-Encoding: gzip gets a gzip body (that decodes to the
// same document a plain request gets), an absent or q=0 gzip preference
// gets identity, and every response varies on Accept-Encoding so caches
// never cross the streams.
func TestGzipNegotiation(t *testing.T) {
	c := monitor.NewCollector(monitor.Options{Window: 0.5})
	for _, e := range ingestEvents(rand.New(rand.NewSource(7)), 300, 4) {
		c.Record(e)
	}
	h := NewHandler(c)

	get := func(accept string) *httptest.ResponseRecorder {
		req := httptest.NewRequest("GET", "/cube.json", nil)
		if accept != "" {
			req.Header.Set("Accept-Encoding", accept)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec
	}

	plain := get("")
	if enc := plain.Header().Get("Content-Encoding"); enc != "" {
		t.Fatalf("uninvited Content-Encoding %q", enc)
	}
	if vary := plain.Header().Get("Vary"); vary != "Accept-Encoding" {
		t.Fatalf("Vary = %q, want Accept-Encoding", vary)
	}

	zipped := get("gzip")
	if enc := zipped.Header().Get("Content-Encoding"); enc != "gzip" {
		t.Fatalf("Content-Encoding = %q, want gzip", enc)
	}
	if zipped.Body.Len() >= plain.Body.Len() {
		t.Fatalf("gzip body (%d bytes) not smaller than identity (%d bytes)",
			zipped.Body.Len(), plain.Body.Len())
	}
	zr, err := gzip.NewReader(zipped.Body)
	if err != nil {
		t.Fatal(err)
	}
	unzipped, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	var a, b any
	if err := json.Unmarshal(unzipped, &a); err != nil {
		t.Fatalf("gzip body is not the JSON document: %v", err)
	}
	if err := json.Unmarshal(plain.Body.Bytes(), &b); err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Fatal("gzip and identity responses decode to different documents")
	}

	// An explicit q=0 is a refusal, not a request.
	refused := get("gzip;q=0")
	if enc := refused.Header().Get("Content-Encoding"); enc != "" {
		t.Fatalf("gzip served despite q=0 (Content-Encoding %q)", enc)
	}
}
