package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"loadimb/internal/cfd"
	"loadimb/internal/monitor"
	"loadimb/internal/temporal"
	"loadimb/internal/trace"
)

func TestServerPhases(t *testing.T) {
	srv, c := newTestServer(t)
	runWorkloadInto(t, c)
	code, body, _ := get(t, srv.URL+"/phases.json")
	if code != http.StatusOK {
		t.Fatalf("/phases.json = %d", code)
	}
	var payload phasesPayload
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatal(err)
	}
	if payload.Window != 0.25 {
		t.Errorf("window = %g, want 0.25", payload.Window)
	}
	if len(payload.Phases) == 0 {
		t.Fatal("no phases detected on a finished workload")
	}
	if payload.Changes != len(payload.Phases)-1 {
		t.Errorf("changes = %d with %d phases", payload.Changes, len(payload.Phases))
	}
	if payload.Current == nil || !reflect.DeepEqual(*payload.Current, payload.Phases[len(payload.Phases)-1]) {
		t.Error("current is not the last phase")
	}
	prevEnd := payload.Phases[0].Start
	for i, ph := range payload.Phases {
		if ph.Start != prevEnd {
			t.Errorf("phase %d starts at %g, previous ended at %g", i, ph.Start, prevEnd)
		}
		prevEnd = ph.End
		switch ph.Label {
		case temporal.LabelIdle, temporal.LabelQuiet, temporal.LabelHot:
		default:
			t.Errorf("phase %d label = %q", i, ph.Label)
		}
		if ph.Label != temporal.LabelIdle && ph.ID == nil {
			t.Errorf("busy phase %d has null ID", i)
		}
	}
}

func TestServerPhasesWindowingDisabled(t *testing.T) {
	c := monitor.NewCollector(monitor.Options{})
	srv := httptest.NewServer(PhasesHandler(c))
	t.Cleanup(srv.Close)
	if code, _, _ := get(t, srv.URL); code != http.StatusServiceUnavailable {
		t.Errorf("/phases.json without windowing = %d, want 503", code)
	}
}

// TestPhasesMatchOfflineCfd is the tentpole acceptance property: the
// phases /phases.json reports on a live cfdsim run equal the phases the
// offline pipeline (`imba -phases` over the saved trace: FoldLog +
// Segment with the automatic penalty) finds — same boundaries, same
// labels. The live path folds events in drain order rather than log
// order, so float sums can differ in the last bits; boundaries and
// labels are discrete and must match exactly, the means to close
// tolerance.
func TestPhasesMatchOfflineCfd(t *testing.T) {
	const window = 1.0
	c := monitor.NewCollector(monitor.Options{Window: window})
	srv := httptest.NewServer(NewHandler(c))
	t.Cleanup(srv.Close)

	cfg := cfd.Defaults()
	cfg.Procs = 8
	cfg.GridX = 128
	cfg.GridY = 128
	cfg.Iterations = 8
	cfg.Sink = c
	res, err := cfd.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	code, body, _ := get(t, srv.URL+"/phases.json")
	if code != http.StatusOK {
		t.Fatalf("/phases.json = %d", code)
	}
	var payload phasesPayload
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatal(err)
	}

	ser, err := temporal.FoldLog(res.Log, temporal.Options{Window: window})
	if err != nil {
		t.Fatal(err)
	}
	want := temporal.Segment(ser.Stats(), 0)
	if len(payload.Phases) != len(want) {
		t.Fatalf("live %d phases, offline %d:\nlive    %+v\noffline %+v",
			len(payload.Phases), len(want), payload.Phases, want)
	}
	for i, got := range payload.Phases {
		w := want[i]
		if got.FirstWindow != w.FirstWindow || got.LastWindow != w.LastWindow {
			t.Errorf("phase %d = windows [%d, %d], offline [%d, %d]",
				i, got.FirstWindow, got.LastWindow, w.FirstWindow, w.LastWindow)
		}
		if got.Label != w.Label {
			t.Errorf("phase %d label = %q, offline %q", i, got.Label, w.Label)
		}
		if diff := got.MeanID - w.MeanID; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("phase %d mean ID = %g, offline %g", i, got.MeanID, w.MeanID)
		}
	}
}

// TestPhasesIncrementalMatchesOffline drives the collector through many
// snapshot cycles (the segmenter syncing and rewinding its DP each time)
// and checks every intermediate segmentation against a fresh offline
// Segment of the same trajectory — the monitor-side counterpart of the
// temporal package's prefix-equality property.
func TestPhasesIncrementalMatchesOffline(t *testing.T) {
	c := monitor.NewCollector(monitor.Options{Window: 0.5})
	var lg trace.Log
	record := func(e trace.Event) {
		c.Record(e)
		if err := lg.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	// A run with a quiet stretch, a hot stretch, an idle gap and a
	// recovery, recorded in small bursts with a snapshot after each.
	step := 0
	burst := func(loads ...float64) {
		start := float64(step) * 0.5
		for r, d := range loads {
			if d > 0 {
				record(trace.Event{Rank: r, Region: "r", Activity: "a",
					Start: start, End: start + d})
			}
		}
		step++
		snap := c.Snapshot()
		ser, err := temporal.FoldLog(&lg, temporal.Options{Window: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		want := temporal.Segment(ser.Stats(), 0)
		if len(snap.Phases) != len(want) {
			t.Fatalf("step %d: live %d phases, offline %d", step, len(snap.Phases), len(want))
		}
		for i := range want {
			if snap.Phases[i].FirstWindow != want[i].FirstWindow ||
				snap.Phases[i].LastWindow != want[i].LastWindow ||
				snap.Phases[i].Label != want[i].Label {
				t.Fatalf("step %d phase %d: live %+v, offline %+v",
					step, i, snap.Phases[i], want[i])
			}
		}
	}
	for i := 0; i < 8; i++ {
		burst(0.4, 0.41, 0.39, 0.4)
	}
	for i := 0; i < 6; i++ {
		burst(0.45, 0.05, 0.05, 0.05)
	}
	for i := 0; i < 4; i++ {
		burst() // idle gap: no events, windows stay empty
	}
	for i := 0; i < 6; i++ {
		burst(0.3, 0.31, 0.3, 0.29)
	}
}

// TestConcurrentRecordPhases hammers the collector with concurrent
// recorders and /phases.json scrapes; under -race this verifies the
// streaming segmenter stays inside the fold mutex and the published
// phases are immutable.
func TestConcurrentRecordPhases(t *testing.T) {
	c := monitor.NewCollector(monitor.Options{Window: 1})
	handler := PhasesHandler(c)
	var wg sync.WaitGroup
	const (
		recorders = 4
		scrapers  = 3
		rounds    = 50
	)
	errs := make(chan error, scrapers)
	for g := 0; g < recorders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				start := float64(r) * 0.3
				c.Record(trace.Event{Rank: g, Region: "loop0", Activity: "comp",
					Start: start, End: start + 0.3 + float64(g)*0.01})
			}
		}(g)
	}
	for g := 0; g < scrapers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				rec := httptest.NewRecorder()
				handler(rec, httptest.NewRequest("GET", "/phases.json", nil))
				if rec.Code != http.StatusOK {
					errs <- fmt.Errorf("scrape = %d", rec.Code)
					return
				}
				var payload phasesPayload
				if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
