package serve

// Strict Prometheus text-format parser shared by the handler tests. A
// copy of the monitor package's test helper: both packages verify the
// exposition they serve, and test helpers cannot be imported across
// package boundaries.

import (
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// sample is one parsed exposition line.
type sample struct {
	name   string
	labels map[string]string
	value  float64
}

var (
	lineRe  = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})? (\S+)$`)
	labelRe = regexp.MustCompile(`([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"`)
)

func unescapeLabel(s string) string {
	r := strings.NewReplacer(`\\`, "\x00", `\"`, `"`, `\n`, "\n")
	return strings.ReplaceAll(r.Replace(s), "\x00", `\`)
}

// parseExposition parses Prometheus text format strictly: every
// non-comment line must be a well-formed sample with a finite value, and
// every sample must be preceded by a TYPE declaration of its family.
func parseExposition(t *testing.T, text string) []sample {
	t.Helper()
	typed := map[string]string{}
	var out []sample
	for n, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 || (fields[3] != "gauge" && fields[3] != "counter") {
				t.Fatalf("line %d: malformed TYPE: %q", n+1, line)
			}
			typed[fields[2]] = fields[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			if !strings.HasPrefix(line, "# HELP ") {
				t.Fatalf("line %d: unexpected comment %q", n+1, line)
			}
			continue
		}
		m := lineRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: not a valid sample: %q", n+1, line)
		}
		typ, ok := typed[m[1]]
		if !ok {
			t.Fatalf("line %d: sample %q has no TYPE declaration", n+1, m[1])
		}
		if typ == "counter" && !strings.HasSuffix(m[1], "_total") {
			t.Errorf("counter %q does not end in _total", m[1])
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", n+1, m[3], err)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("line %d: non-finite value %g", n+1, v)
		}
		s := sample{name: m[1], labels: map[string]string{}, value: v}
		if m[2] != "" {
			rest := m[2]
			for _, lm := range labelRe.FindAllStringSubmatch(rest, -1) {
				s.labels[lm[1]] = unescapeLabel(lm[2])
			}
		}
		out = append(out, s)
	}
	return out
}

// key canonicalizes a sample identity for lookup.
func (s sample) key() string {
	pairs := make([]string, 0, len(s.labels))
	for k, v := range s.labels {
		pairs = append(pairs, k+"="+v)
	}
	sort.Strings(pairs)
	return s.name + "|" + strings.Join(pairs, ",")
}

// indexSamples maps each sample's canonical identity to its value.
func indexSamples(samples []sample) map[string]float64 {
	out := make(map[string]float64, len(samples))
	for _, s := range samples {
		out[s.key()] = s.value
	}
	return out
}
