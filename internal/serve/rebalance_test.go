package serve

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"loadimb/internal/monitor"
	"loadimb/internal/mpi"
	"loadimb/internal/rebalance"
)

// TestRebalanceEndpointAndMetrics drives a controller through a few
// boundaries and checks both surfaces: /rebalance.json mirrors
// Controller.Snapshot and /metrics grows the loadimb_rebalance_*
// families.
func TestRebalanceEndpointAndMetrics(t *testing.T) {
	ctrl, err := rebalance.New(rebalance.PolicyReactive, rebalance.Options{Target: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	loads := []float64{10, 1, 1, 1}
	for boundary := 0; boundary < 10; boundary++ {
		plan, err := ctrl.Decide(boundary, loads)
		if err != nil {
			t.Fatal(err)
		}
		if plan.MeasuredID <= 0.1 {
			break
		}
		for _, m := range plan.Moves {
			loads[m.From] -= m.Amount
			loads[m.To] += m.Amount
		}
	}
	want := ctrl.Snapshot()
	if !want.Converged {
		t.Fatalf("controller did not converge: %+v", want)
	}

	c := monitor.NewCollector(monitor.Options{Window: 0.25, Activities: mpi.Activities()})
	srv := httptest.NewServer(NewHandler(c, WithRebalance(ctrl)))
	defer srv.Close()

	status, body, ctype := get(t, srv.URL+"/rebalance.json")
	if status != 200 {
		t.Fatalf("/rebalance.json status %d", status)
	}
	if !strings.HasPrefix(ctype, "application/json") {
		t.Errorf("content type %q", ctype)
	}
	var got rebalance.Stats
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatal(err)
	}
	if got.Policy != want.Policy || got.Rounds != want.Rounds || got.Migrations != want.Migrations ||
		got.AchievedID != want.AchievedID || !got.Converged {
		t.Errorf("payload %+v != snapshot %+v", got, want)
	}
	if len(got.History) != want.Boundaries {
		t.Errorf("history has %d entries for %d boundaries", len(got.History), want.Boundaries)
	}

	status, metrics, _ := get(t, srv.URL+"/metrics")
	if status != 200 {
		t.Fatalf("/metrics status %d", status)
	}
	for _, family := range []string{
		`loadimb_rebalance_rounds_total{policy="reactive"}`,
		`loadimb_rebalance_migrations_total{policy="reactive"}`,
		`loadimb_rebalance_migrated_seconds_total{policy="reactive"}`,
		`loadimb_rebalance_achieved_id{policy="reactive"}`,
		`loadimb_rebalance_target{policy="reactive"} 0.1`,
		`loadimb_rebalance_converged{policy="reactive"} 1`,
		`loadimb_rebalance_rounds_to_target{policy="reactive"}`,
	} {
		if !strings.Contains(metrics, family) {
			t.Errorf("metrics missing %s", family)
		}
	}
}

// TestNoRebalanceEndpointByDefault: without WithRebalance the endpoint
// stays absent and the exposition carries no rebalance families.
func TestNoRebalanceEndpointByDefault(t *testing.T) {
	srv, _ := newTestServer(t)
	status, _, _ := get(t, srv.URL+"/rebalance.json")
	if status != 404 {
		t.Errorf("/rebalance.json status %d without WithRebalance, want 404", status)
	}
	_, metrics, _ := get(t, srv.URL+"/metrics")
	if strings.Contains(metrics, "loadimb_rebalance_") {
		t.Error("rebalance families exposed without WithRebalance")
	}
}
