package mpi

import (
	"errors"
	"fmt"
	"testing"
)

// runClocks runs a one-region program on 4 ranks under the unit cost
// model and returns the final clocks.
func runClocks(t *testing.T, body func(c *Comm) error) []float64 {
	t.Helper()
	w, err := NewWorld(4, unitCost())
	if err != nil {
		t.Fatal(err)
	}
	clocks := make([]float64, 4)
	run := w.Run(func(c *Comm) error {
		if err := c.EnterRegion("r"); err != nil {
			return err
		}
		if err := body(c); err != nil {
			return err
		}
		clocks[c.Rank()] = c.Now()
		return c.ExitRegion()
	})
	if run != nil {
		t.Fatal(run)
	}
	return clocks
}

func TestGatherCost(t *testing.T) {
	clocks := runClocks(t, func(c *Comm) error { return c.Gather(0, 2) })
	// stages(4)*1 + 3*2 = 8 for everyone (all arrive at 0).
	for r, clk := range clocks {
		if clk != 8 {
			t.Errorf("rank %d clock = %g, want 8", r, clk)
		}
	}
}

func TestScatterCost(t *testing.T) {
	clocks := runClocks(t, func(c *Comm) error { return c.Scatter(0, 2) })
	for r, clk := range clocks {
		if clk != 8 {
			t.Errorf("rank %d clock = %g, want 8", r, clk)
		}
	}
}

func TestAllgatherCost(t *testing.T) {
	clocks := runClocks(t, func(c *Comm) error { return c.Allgather(2) })
	// (P-1)*(latency + transfer) = 3*(1+2) = 9.
	for r, clk := range clocks {
		if clk != 9 {
			t.Errorf("rank %d clock = %g, want 9", r, clk)
		}
	}
}

func TestCollectiveValidation(t *testing.T) {
	w, err := NewWorld(2, unitCost())
	if err != nil {
		t.Fatal(err)
	}
	run := w.Run(func(c *Comm) error {
		if c.Rank() != 0 {
			return nil
		}
		if err := c.EnterRegion("r"); err != nil {
			return err
		}
		if err := c.Gather(9, 1); !errors.Is(err, ErrBadArgument) {
			return errorsJoin("gather root", err)
		}
		if err := c.Gather(0, -1); !errors.Is(err, ErrBadArgument) {
			return errorsJoin("gather bytes", err)
		}
		if err := c.Scatter(-1, 1); !errors.Is(err, ErrBadArgument) {
			return errorsJoin("scatter root", err)
		}
		if err := c.Scatter(0, -1); !errors.Is(err, ErrBadArgument) {
			return errorsJoin("scatter bytes", err)
		}
		if err := c.Allgather(-1); !errors.Is(err, ErrBadArgument) {
			return errorsJoin("allgather bytes", err)
		}
		return c.ExitRegion()
	})
	if run != nil {
		t.Fatal(run)
	}
}

func errorsJoin(what string, err error) error {
	return errors.New(what + " validation failed: " + errString(err))
}

func errString(err error) string {
	if err == nil {
		return "<nil>"
	}
	return err.Error()
}

func TestCollectiveBytesCounted(t *testing.T) {
	w, err := NewWorld(4, unitCost())
	if err != nil {
		t.Fatal(err)
	}
	run := w.Run(func(c *Comm) error {
		if err := c.EnterRegion("r"); err != nil {
			return err
		}
		if err := c.Allgather(10); err != nil {
			return err
		}
		return c.ExitRegion()
	})
	if run != nil {
		t.Fatal(run)
	}
	cube, err := w.BytesCube(nil)
	if err != nil {
		t.Fatal(err)
	}
	v, err := cube.At(0, cube.ActivityIndex(ActCollective), 0)
	if err != nil || v != 40 {
		t.Errorf("allgather bytes = %g, %v; want P*10", v, err)
	}
}

func TestBcastCost(t *testing.T) {
	clocks := runClocks(t, func(c *Comm) error { return c.Bcast(0, 2) })
	// stages(4)*(1+2) = 6.
	for r, clk := range clocks {
		if clk != 6 {
			t.Errorf("rank %d clock = %g, want 6", r, clk)
		}
	}
}

func TestReduceCost(t *testing.T) {
	clocks := runClocks(t, func(c *Comm) error { return c.Reduce(0, 2) })
	for r, clk := range clocks {
		if clk != 6 {
			t.Errorf("rank %d clock = %g, want 6", r, clk)
		}
	}
}

func TestReduceSumCarriesData(t *testing.T) {
	w, err := NewWorld(4, unitCost())
	if err != nil {
		t.Fatal(err)
	}
	run := w.Run(func(c *Comm) error {
		if err := c.EnterRegion("r"); err != nil {
			return err
		}
		sum, err := c.ReduceSum(0, float64(c.Rank()+1), 8)
		if err != nil {
			return err
		}
		if sum != 10 { // 1+2+3+4
			t.Errorf("rank %d sum = %g", c.Rank(), sum)
		}
		return c.ExitRegion()
	})
	if run != nil {
		t.Fatal(run)
	}
}

func TestBcastValidation(t *testing.T) {
	w, err := NewWorld(2, unitCost())
	if err != nil {
		t.Fatal(err)
	}
	run := w.Run(func(c *Comm) error {
		if c.Rank() != 0 {
			return nil
		}
		if err := c.Bcast(9, 1); !errors.Is(err, ErrBadArgument) {
			return errorsJoin("bcast root", err)
		}
		if err := c.Bcast(0, -1); !errors.Is(err, ErrBadArgument) {
			return errorsJoin("bcast bytes", err)
		}
		return nil
	})
	if run != nil {
		t.Fatal(run)
	}
}

func TestAllgatherValues(t *testing.T) {
	w, err := NewWorld(4, unitCost())
	if err != nil {
		t.Fatal(err)
	}
	run := w.Run(func(c *Comm) error {
		if err := c.EnterRegion("r"); err != nil {
			return err
		}
		vals, err := c.AllgatherValues(float64(c.Rank()+1)*10, 8)
		if err != nil {
			return err
		}
		for r, v := range vals {
			if v != float64(r+1)*10 {
				return fmt.Errorf("rank %d: vals[%d] = %g, want %g", c.Rank(), r, v, float64(r+1)*10)
			}
		}
		// Same ring cost as Allgather: (P-1)*(latency + transfer) = 3*(1+8).
		if c.Now() != 27 {
			return fmt.Errorf("rank %d clock = %g, want 27", c.Rank(), c.Now())
		}
		return c.ExitRegion()
	})
	if run != nil {
		t.Fatal(run)
	}
}

func TestAllgatherValuesValidation(t *testing.T) {
	w, err := NewWorld(2, unitCost())
	if err != nil {
		t.Fatal(err)
	}
	run := w.Run(func(c *Comm) error {
		if err := c.EnterRegion("r"); err != nil {
			return err
		}
		if _, err := c.AllgatherValues(1, -1); !errors.Is(err, ErrBadArgument) {
			return fmt.Errorf("negative size err = %v", err)
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		return c.ExitRegion()
	})
	if run != nil {
		t.Fatal(run)
	}
}
