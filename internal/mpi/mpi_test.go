package mpi

import (
	"errors"
	"fmt"
	"math"
	"testing"
)

// unitCost makes hand-computation easy: latency 1, bandwidth 1 byte/s,
// overhead 0, collective latency 1.
func unitCost() CostModel {
	return CostModel{Latency: 1, Bandwidth: 1, SendOverhead: 0, CollectiveLatency: 1}
}

func TestNewWorldValidation(t *testing.T) {
	if _, err := NewWorld(0, DefaultCostModel()); err == nil {
		t.Error("zero procs should fail")
	}
	if _, err := NewWorld(2, CostModel{Bandwidth: 0}); !errors.Is(err, ErrBadArgument) {
		t.Errorf("bad cost model err = %v", err)
	}
	w, err := NewWorld(3, DefaultCostModel())
	if err != nil || w.Procs() != 3 {
		t.Fatalf("NewWorld = %v, %v", w, err)
	}
}

func TestComputeRecordsEvents(t *testing.T) {
	w, err := NewWorld(2, unitCost())
	if err != nil {
		t.Fatal(err)
	}
	run := w.Run(func(c *Comm) error {
		if err := c.EnterRegion("loop"); err != nil {
			return err
		}
		if err := c.Compute(float64(c.Rank()) + 1); err != nil {
			return err
		}
		return c.ExitRegion()
	})
	if run != nil {
		t.Fatal(run)
	}
	cube, err := w.Cube(nil)
	if err != nil {
		t.Fatal(err)
	}
	v0, err := cube.At(0, 0, 0)
	if err != nil || v0 != 1 {
		t.Errorf("rank 0 compute = %g, %v", v0, err)
	}
	v1, err := cube.At(0, 0, 1)
	if err != nil || v1 != 2 {
		t.Errorf("rank 1 compute = %g, %v", v1, err)
	}
}

func TestSendRecvTiming(t *testing.T) {
	w, err := NewWorld(2, unitCost())
	if err != nil {
		t.Fatal(err)
	}
	clocks := make([]float64, 2)
	run := w.Run(func(c *Comm) error {
		if err := c.EnterRegion("xchg"); err != nil {
			return err
		}
		defer func() { clocks[c.Rank()] = c.Now() }()
		if c.Rank() == 0 {
			// Send 10 bytes at t=0: sender pays transfer 10 -> clock 10.
			if err := c.Send(1, 0, 10); err != nil {
				return err
			}
		} else {
			// Message arrives at 0 + latency 1 + transfer 10 = 11.
			n, err := c.Recv(0, 0)
			if err != nil {
				return err
			}
			if n != 10 {
				return fmt.Errorf("recv %d bytes", n)
			}
		}
		return c.ExitRegion()
	})
	if run != nil {
		t.Fatal(run)
	}
	if clocks[0] != 10 {
		t.Errorf("sender clock = %g, want 10", clocks[0])
	}
	if clocks[1] != 11 {
		t.Errorf("receiver clock = %g, want 11", clocks[1])
	}
}

func TestRecvAfterArrival(t *testing.T) {
	// A receiver that is late pays only its own time: the clock does not
	// move backward.
	w, err := NewWorld(2, unitCost())
	if err != nil {
		t.Fatal(err)
	}
	var late float64
	run := w.Run(func(c *Comm) error {
		if err := c.EnterRegion("r"); err != nil {
			return err
		}
		if c.Rank() == 0 {
			if err := c.Send(1, 0, 1); err != nil {
				return err
			}
		} else {
			if err := c.Compute(100); err != nil {
				return err
			}
			if _, err := c.Recv(0, 0); err != nil {
				return err
			}
			late = c.Now()
		}
		return c.ExitRegion()
	})
	if run != nil {
		t.Fatal(run)
	}
	if late != 100 {
		t.Errorf("late receiver clock = %g, want 100", late)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	w, err := NewWorld(4, unitCost())
	if err != nil {
		t.Fatal(err)
	}
	clocks := make([]float64, 4)
	run := w.Run(func(c *Comm) error {
		if err := c.EnterRegion("r"); err != nil {
			return err
		}
		if err := c.Compute(float64(c.Rank())); err != nil {
			return err
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		clocks[c.Rank()] = c.Now()
		return c.ExitRegion()
	})
	if run != nil {
		t.Fatal(run)
	}
	// Last arrival 3, stages(4) = 2, cost 2 -> everyone at 5.
	for r, clk := range clocks {
		if clk != 5 {
			t.Errorf("rank %d clock = %g, want 5", r, clk)
		}
	}
}

func TestBarrierWaitIsSynchronizationTime(t *testing.T) {
	w, err := NewWorld(2, unitCost())
	if err != nil {
		t.Fatal(err)
	}
	run := w.Run(func(c *Comm) error {
		if err := c.EnterRegion("r"); err != nil {
			return err
		}
		if err := c.Compute(float64(10 * c.Rank())); err != nil {
			return err
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		return c.ExitRegion()
	})
	if run != nil {
		t.Fatal(run)
	}
	cube, err := w.Cube(nil)
	if err != nil {
		t.Fatal(err)
	}
	j := cube.ActivityIndex(ActSynchronization)
	// Rank 0 waits 10 + 1 stage = 11; rank 1 waits 1.
	w0, err := cube.At(0, j, 0)
	if err != nil || w0 != 11 {
		t.Errorf("rank 0 sync = %g, %v", w0, err)
	}
	w1, err := cube.At(0, j, 1)
	if err != nil || w1 != 1 {
		t.Errorf("rank 1 sync = %g, %v", w1, err)
	}
}

func TestCollectivesAdvanceTogether(t *testing.T) {
	w, err := NewWorld(4, unitCost())
	if err != nil {
		t.Fatal(err)
	}
	clocks := make([]float64, 4)
	run := w.Run(func(c *Comm) error {
		if err := c.EnterRegion("r"); err != nil {
			return err
		}
		if err := c.Allreduce(8); err != nil {
			return err
		}
		clocks[c.Rank()] = c.Now()
		return c.ExitRegion()
	})
	if run != nil {
		t.Fatal(run)
	}
	// All arrive at 0; cost 2*2*(1+8) = 36.
	for r, clk := range clocks {
		if clk != 36 {
			t.Errorf("rank %d clock = %g, want 36", r, clk)
		}
	}
}

func TestAlltoallCost(t *testing.T) {
	w, err := NewWorld(4, unitCost())
	if err != nil {
		t.Fatal(err)
	}
	var clock float64
	run := w.Run(func(c *Comm) error {
		if err := c.EnterRegion("r"); err != nil {
			return err
		}
		if err := c.Alltoall(2); err != nil {
			return err
		}
		if c.Rank() == 0 {
			clock = c.Now()
		}
		return c.ExitRegion()
	})
	if run != nil {
		t.Fatal(run)
	}
	// (P-1)*(latency + transfer) = 3*(1+2) = 9.
	if clock != 9 {
		t.Errorf("alltoall clock = %g, want 9", clock)
	}
}

func TestSendrecvExchangesBothWays(t *testing.T) {
	w, err := NewWorld(2, unitCost())
	if err != nil {
		t.Fatal(err)
	}
	run := w.Run(func(c *Comm) error {
		if err := c.EnterRegion("halo"); err != nil {
			return err
		}
		other := 1 - c.Rank()
		n, err := c.Sendrecv(other, 5, other, 0)
		if err != nil {
			return err
		}
		if n != 5 {
			return fmt.Errorf("rank %d received %d bytes", c.Rank(), n)
		}
		return c.ExitRegion()
	})
	if run != nil {
		t.Fatal(run)
	}
}

func TestOperationValidation(t *testing.T) {
	w, err := NewWorld(2, unitCost())
	if err != nil {
		t.Fatal(err)
	}
	run := w.Run(func(c *Comm) error {
		if c.Rank() != 0 {
			return nil
		}
		if err := c.Compute(1); !errors.Is(err, ErrNoRegion) {
			return fmt.Errorf("compute outside region: %v", err)
		}
		if err := c.EnterRegion(""); !errors.Is(err, ErrBadArgument) {
			return fmt.Errorf("empty region: %v", err)
		}
		if err := c.EnterRegion("r"); err != nil {
			return err
		}
		if err := c.EnterRegion("nested"); !errors.Is(err, ErrBadArgument) {
			return fmt.Errorf("nested region: %v", err)
		}
		if err := c.Compute(-1); !errors.Is(err, ErrBadArgument) {
			return fmt.Errorf("negative compute: %v", err)
		}
		if err := c.Send(0, 0, 1); !errors.Is(err, ErrBadArgument) {
			return fmt.Errorf("send to self: %v", err)
		}
		if err := c.Send(1, 0, -1); !errors.Is(err, ErrBadArgument) {
			return fmt.Errorf("negative bytes: %v", err)
		}
		if _, err := c.Recv(0, 0); !errors.Is(err, ErrBadArgument) {
			return fmt.Errorf("recv from self: %v", err)
		}
		if err := c.Reduce(9, 1); !errors.Is(err, ErrBadArgument) {
			return fmt.Errorf("bad root: %v", err)
		}
		if err := c.Skew(-1); !errors.Is(err, ErrBadArgument) {
			return fmt.Errorf("negative skew: %v", err)
		}
		if err := c.ExitRegion(); err != nil {
			return err
		}
		if err := c.ExitRegion(); !errors.Is(err, ErrNoRegion) {
			return fmt.Errorf("double exit: %v", err)
		}
		return nil
	})
	// Rank 1 never enters the collectives rank 0 validated, so the run
	// is fine; only argument errors were exercised.
	if run != nil {
		t.Fatal(run)
	}
}

func TestRunFailsInsideRegion(t *testing.T) {
	w, err := NewWorld(1, unitCost())
	if err != nil {
		t.Fatal(err)
	}
	run := w.Run(func(c *Comm) error {
		return c.EnterRegion("never closed")
	})
	if run == nil {
		t.Error("finishing inside a region should fail")
	}
}

func TestSkewIsUninstrumented(t *testing.T) {
	w, err := NewWorld(1, unitCost())
	if err != nil {
		t.Fatal(err)
	}
	run := w.Run(func(c *Comm) error {
		if err := c.Skew(5); err != nil {
			return err
		}
		if err := c.EnterRegion("r"); err != nil {
			return err
		}
		if err := c.Compute(1); err != nil {
			return err
		}
		return c.ExitRegion()
	})
	if run != nil {
		t.Fatal(run)
	}
	cube, err := w.Cube(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Instrumented time is 1 but the program span is 6.
	if got := cube.RegionsTotal(); got != 1 {
		t.Errorf("instrumented = %g", got)
	}
	if got := cube.ProgramTime(); got != 6 {
		t.Errorf("program time = %g", got)
	}
}

func TestWorldDeterministic(t *testing.T) {
	program := func() []float64 {
		w, err := NewWorld(8, DefaultCostModel())
		if err != nil {
			t.Fatal(err)
		}
		clocks := make([]float64, 8)
		run := w.Run(func(c *Comm) error {
			if err := c.EnterRegion("ring"); err != nil {
				return err
			}
			for step := 0; step < 10; step++ {
				if err := c.Compute(0.001 * float64(c.Rank()+1)); err != nil {
					return err
				}
				right := (c.Rank() + 1) % c.Size()
				left := (c.Rank() + c.Size() - 1) % c.Size()
				if _, err := c.Sendrecv(right, 4096, left, step); err != nil {
					return err
				}
				if err := c.Allreduce(8); err != nil {
					return err
				}
			}
			clocks[c.Rank()] = c.Now()
			return c.ExitRegion()
		})
		if run != nil {
			t.Fatal(run)
		}
		return clocks
	}
	first := program()
	for trial := 0; trial < 5; trial++ {
		got := program()
		for r := range got {
			if got[r] != first[r] {
				t.Fatalf("trial %d rank %d: clock %g != %g", trial, r, got[r], first[r])
			}
		}
	}
}

func TestStages(t *testing.T) {
	cases := []struct {
		p    int
		want float64
	}{{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {16, 4}}
	for _, c := range cases {
		if got := stages(c.p); got != c.want {
			t.Errorf("stages(%d) = %g, want %g", c.p, got, c.want)
		}
	}
}

func TestDefaultCostModelSane(t *testing.T) {
	c := DefaultCostModel()
	if err := c.validate(); err != nil {
		t.Fatal(err)
	}
	// 1 MB at 35 MB/s is about 29 ms.
	if got := c.transfer(1 << 20); math.Abs(got-0.02995) > 0.005 {
		t.Errorf("transfer(1MB) = %g", got)
	}
}

func TestNonFiniteArgumentsRejected(t *testing.T) {
	nan := math.NaN()
	inf := math.Inf(1)
	// A NaN cost model field sails through plain range checks (x < 0 is
	// false for NaN); validate must reject it explicitly.
	for _, cm := range []CostModel{
		{Latency: nan, Bandwidth: 1, CollectiveLatency: 1},
		{Latency: 1, Bandwidth: nan, CollectiveLatency: 1},
		{Latency: 1, Bandwidth: 1, SendOverhead: nan, CollectiveLatency: 1},
		{Latency: 1, Bandwidth: 1, CollectiveLatency: nan},
		{Latency: inf, Bandwidth: 1, CollectiveLatency: 1},
	} {
		if _, err := NewWorld(2, cm); !errors.Is(err, ErrBadArgument) {
			t.Errorf("NewWorld(%+v) err = %v, want ErrBadArgument", cm, err)
		}
	}
	w, err := NewWorld(1, unitCost())
	if err != nil {
		t.Fatal(err)
	}
	run := w.Run(func(c *Comm) error {
		if err := c.EnterRegion("r"); err != nil {
			return err
		}
		for _, s := range []float64{nan, inf} {
			if err := c.Compute(s); !errors.Is(err, ErrBadArgument) {
				return fmt.Errorf("Compute(%g) err = %v, want ErrBadArgument", s, err)
			}
			if err := c.Skew(s); !errors.Is(err, ErrBadArgument) {
				return fmt.Errorf("Skew(%g) err = %v, want ErrBadArgument", s, err)
			}
		}
		return c.ExitRegion()
	})
	if run != nil {
		t.Fatal(run)
	}
}
