package mpi

import (
	"loadimb/internal/trace"
)

// The paper's measurement model covers counting parameters (number of
// I/O operations, bytes read/written, memory accesses, ...) alongside
// timings. This file instruments the communication volume: every send,
// receive and collective credits its byte count to the current (region,
// activity, rank) cell of a counter ledger, which aggregates into a cube
// exactly like the timing events — so the whole methodology (dispersion
// indices, views, scaling) applies unchanged to bytes.

// countEntry is one counter increment.
type countEntry struct {
	region   string
	activity string
	bytes    float64
}

// addBytes credits n bytes to the current region under the activity. It
// is a no-op outside a region (uninstrumented communication) or for
// nonpositive counts.
func (c *Comm) addBytes(activity string, n int) {
	if c.region == "" || n <= 0 {
		return
	}
	c.counts = append(c.counts, countEntry{region: c.region, activity: activity, bytes: float64(n)})
}

// BytesCube aggregates the byte counters of the last successful Run into
// a cube whose "times" are byte counts: t[region][activity][rank] is the
// number of bytes rank moved in that activity of that region. Regions
// are ordered as given (nil means order of first appearance). The cube
// has no separate program total; shares are relative to the total bytes
// moved in the instrumented regions.
func (w *World) BytesCube(regionOrder []string) (*trace.Cube, error) {
	// Reuse the event-log aggregation by encoding each increment as a
	// zero-length "event" carrying the byte count as duration.
	var log trace.Log
	for rank, entries := range w.counts {
		for _, e := range entries {
			ev := trace.Event{
				Rank:     rank,
				Region:   e.region,
				Activity: e.activity,
				Start:    0,
				End:      e.bytes,
			}
			if err := log.Append(ev); err != nil {
				return nil, err
			}
		}
	}
	if log.Len() == 0 {
		// A run that moved no bytes still has a meaningful (empty)
		// counter cube if we know the shape; without events we cannot
		// name the dimensions, so report it as an error the caller can
		// distinguish.
		return nil, ErrNoCounters
	}
	cube, err := log.Aggregate(regionOrder, Activities())
	if err != nil {
		return nil, err
	}
	// The aggregation sets the program time to the log span, which for
	// counters is just the largest single increment — meaningless.
	// Reset to the derived total.
	if err := cube.SetProgramTime(0); err != nil {
		return nil, err
	}
	return cube, nil
}
