// Package mpi is a small message-passing library in the style of MPI,
// executing on the virtual-time engine of internal/sim instead of a real
// machine. It provides the operations the paper's CFD study measures —
// point-to-point communication (Send/Recv/Sendrecv), collective
// communication (Reduce, Allreduce, Alltoall, Bcast), synchronization
// (Barrier) and computation (Compute) — under a configurable
// latency/bandwidth cost model, and instruments every operation into a
// trace of (region, activity, rank, interval) events that aggregates into
// the measurement cube consumed by the analysis.
package mpi

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"loadimb/internal/sim"
	"loadimb/internal/trace"
)

// Activity names recorded by the instrumentation, matching the paper's
// taxonomy.
const (
	ActComputation     = "computation"
	ActPointToPoint    = "point-to-point"
	ActCollective      = "collective"
	ActSynchronization = "synchronization"
)

// Activities lists the four instrumented activities in table order.
func Activities() []string {
	return []string{ActComputation, ActPointToPoint, ActCollective, ActSynchronization}
}

// Common errors.
var (
	// ErrNoRegion is returned when a timed operation runs outside any
	// EnterRegion scope.
	ErrNoRegion = errors.New("mpi: operation outside a code region")
	// ErrBadArgument is returned for invalid operation arguments.
	ErrBadArgument = errors.New("mpi: bad argument")
	// ErrNoCounters is returned by BytesCube when the run recorded no
	// byte counters (no communication inside any region).
	ErrNoCounters = errors.New("mpi: no byte counters recorded")
)

// CostModel parameterizes the virtual machine's communication costs. The
// defaults (DefaultCostModel) roughly follow the published MPI
// point-to-point characteristics of the IBM SP2 era: ~40 us latency and
// ~35 MB/s sustained bandwidth, with log2(P) latency terms for the
// tree-based collectives.
type CostModel struct {
	// Latency is the end-to-end latency of one message, in seconds.
	Latency float64
	// Bandwidth is the sustained point-to-point bandwidth, in bytes/s.
	Bandwidth float64
	// SendOverhead is the CPU time the sender spends per message.
	SendOverhead float64
	// CollectiveLatency is the per-stage latency of tree collectives.
	CollectiveLatency float64
}

// DefaultCostModel returns an SP2-era cost model.
func DefaultCostModel() CostModel {
	return CostModel{
		Latency:           40e-6,
		Bandwidth:         35e6,
		SendOverhead:      10e-6,
		CollectiveLatency: 40e-6,
	}
}

func (c CostModel) validate() error {
	// The explicit finiteness checks matter: `x < 0` is false for NaN, so
	// without them a NaN latency would slip through and poison every
	// virtual clock in the run.
	if !finite(c.Latency) || !finite(c.Bandwidth) || !finite(c.SendOverhead) || !finite(c.CollectiveLatency) {
		return fmt.Errorf("%w: non-finite cost model field in %+v", ErrBadArgument, c)
	}
	if c.Latency < 0 || c.Bandwidth <= 0 || c.SendOverhead < 0 || c.CollectiveLatency < 0 {
		return fmt.Errorf("%w: cost model %+v", ErrBadArgument, c)
	}
	return nil
}

// finite reports whether x is neither NaN nor an infinity.
func finite(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0)
}

// transfer returns the wire time of a message of the given size.
func (c CostModel) transfer(bytes int) float64 {
	return float64(bytes) / c.Bandwidth
}

// stages returns the number of stages of a tree collective over p ranks.
func stages(p int) float64 {
	if p <= 1 {
		return 0
	}
	return math.Ceil(math.Log2(float64(p)))
}

// World is one simulated program run: an engine, a cost model and the
// per-rank recorders.
type World struct {
	engine *sim.Engine
	cost   CostModel
	// events[rank] and counts[rank] are appended only by that rank's
	// goroutine during Run, so no locking is needed until the merge.
	events [][]trace.Event
	counts [][]countEntry
	// sink, when set, additionally receives every event as it is
	// recorded, concurrently from the rank goroutines.
	sink trace.Sink
}

// NewWorld creates a world of procs ranks under the cost model.
func NewWorld(procs int, cost CostModel) (*World, error) {
	if err := cost.validate(); err != nil {
		return nil, err
	}
	engine, err := sim.NewEngine(procs)
	if err != nil {
		return nil, err
	}
	return &World{
		engine: engine,
		cost:   cost,
		events: make([][]trace.Event, procs),
		counts: make([][]countEntry, procs),
	}, nil
}

// Procs returns the number of ranks.
func (w *World) Procs() int { return w.engine.Procs() }

// SetSink attaches a live event sink: every instrumented operation is
// forwarded to it at the moment it is recorded, in addition to the
// per-rank logs. The sink must be safe for concurrent use (each rank
// records from its own goroutine) and must be set before Run.
func (w *World) SetSink(s trace.Sink) { w.sink = s }

// Run executes program once per rank concurrently; each invocation
// receives a Comm bound to its rank with the clock at zero. After a
// successful run the recorded events are available via Log.
func (w *World) Run(program func(c *Comm) error) error {
	var mu sync.Mutex
	return w.engine.Run(func(rank int) error {
		c := &Comm{world: w, rank: rank}
		if err := program(c); err != nil {
			return err
		}
		if c.region != "" {
			return fmt.Errorf("mpi: rank %d finished inside region %q", rank, c.region)
		}
		mu.Lock()
		w.events[rank] = c.events
		w.counts[rank] = c.counts
		mu.Unlock()
		return nil
	})
}

// Log merges the per-rank event streams of the last successful Run into a
// single trace log.
func (w *World) Log() (*trace.Log, error) {
	var log trace.Log
	for _, evs := range w.events {
		for _, e := range evs {
			if err := log.Append(e); err != nil {
				return nil, err
			}
		}
	}
	log.SortByStart()
	return &log, nil
}

// Cube aggregates the recorded events into a measurement cube, with
// regions and activities ordered as given (pass nil for order of first
// appearance).
func (w *World) Cube(regionOrder []string) (*trace.Cube, error) {
	log, err := w.Log()
	if err != nil {
		return nil, err
	}
	return log.Aggregate(regionOrder, Activities())
}

// Comm is one rank's communicator: its identity, virtual clock, current
// code region and event recorder. A Comm must only be used from the
// goroutine of the program invocation that received it.
type Comm struct {
	world  *World
	rank   int
	clock  float64
	region string
	events []trace.Event
	counts []countEntry
}

// Rank returns this processor's rank in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.world.engine.Procs() }

// Now returns the rank's virtual clock, in seconds.
func (c *Comm) Now() float64 { return c.clock }

// EnterRegion opens an instrumented code region; timed operations record
// their activity under it. Regions do not nest.
func (c *Comm) EnterRegion(name string) error {
	if name == "" {
		return fmt.Errorf("%w: empty region name", ErrBadArgument)
	}
	if c.region != "" {
		return fmt.Errorf("%w: region %q already open", ErrBadArgument, c.region)
	}
	c.region = name
	return nil
}

// ExitRegion closes the current region.
func (c *Comm) ExitRegion() error {
	if c.region == "" {
		return ErrNoRegion
	}
	c.region = ""
	return nil
}

// record appends an event for the half-open interval [start, c.clock).
func (c *Comm) record(activity string, start float64) error {
	if c.region == "" {
		return ErrNoRegion
	}
	e := trace.Event{
		Rank:     c.rank,
		Region:   c.region,
		Activity: activity,
		Start:    start,
		End:      c.clock,
	}
	c.events = append(c.events, e)
	if c.world.sink != nil {
		c.world.sink.Record(e)
	}
	return nil
}

// Compute advances the rank's clock by seconds of computation and records
// it.
func (c *Comm) Compute(seconds float64) error {
	if seconds < 0 || !finite(seconds) {
		return fmt.Errorf("%w: compute time %g", ErrBadArgument, seconds)
	}
	start := c.clock
	c.clock += seconds
	return c.record(ActComputation, start)
}

// Send transmits bytes to rank dst with the given tag. The sender is
// charged the send overhead plus the wire time (eager protocol); the
// message arrives at dst after the latency and wire time have elapsed.
func (c *Comm) Send(dst, tag, bytes int) error {
	return c.SendData(dst, tag, bytes, nil)
}

// SendData is Send with an application payload attached to the message
// (e.g. a halo row), letting simulated programs compute real results.
func (c *Comm) SendData(dst, tag, bytes int, payload any) error {
	if bytes < 0 {
		return fmt.Errorf("%w: negative message size %d", ErrBadArgument, bytes)
	}
	if dst == c.rank {
		return fmt.Errorf("%w: send to self", ErrBadArgument)
	}
	cost := c.world.cost
	start := c.clock
	arrival := c.clock + cost.Latency + cost.transfer(bytes)
	msg := sim.Message{Arrival: arrival, Bytes: bytes, Payload: payload}
	if err := c.world.engine.Post(c.rank, dst, tag, msg); err != nil {
		return err
	}
	c.clock += cost.SendOverhead + cost.transfer(bytes)
	c.addBytes(ActPointToPoint, bytes)
	return c.record(ActPointToPoint, start)
}

// Recv blocks until a message from src with the given tag arrives and
// advances the clock to the arrival time (or just past the call time when
// the message was already waiting). The whole wait is recorded as
// point-to-point time.
func (c *Comm) Recv(src, tag int) (bytes int, err error) {
	bytes, _, err = c.RecvData(src, tag)
	return bytes, err
}

// RecvData is Recv returning the message payload as well.
func (c *Comm) RecvData(src, tag int) (bytes int, payload any, err error) {
	if src == c.rank {
		return 0, nil, fmt.Errorf("%w: receive from self", ErrBadArgument)
	}
	start := c.clock
	msg, err := c.world.engine.Fetch(src, c.rank, tag)
	if err != nil {
		return 0, nil, err
	}
	if msg.Arrival > c.clock {
		c.clock = msg.Arrival
	}
	c.addBytes(ActPointToPoint, msg.Bytes)
	return msg.Bytes, msg.Payload, c.record(ActPointToPoint, start)
}

// Sendrecv performs the send and the receive of a neighbor exchange as
// one operation, the idiom of halo exchanges.
func (c *Comm) Sendrecv(dst, sendBytes, src, tag int) (recvBytes int, err error) {
	if err := c.Send(dst, tag, sendBytes); err != nil {
		return 0, err
	}
	return c.Recv(src, tag)
}

// SendrecvData is Sendrecv with payloads.
func (c *Comm) SendrecvData(dst, sendBytes int, sendPayload any, src, tag int) (recvPayload any, err error) {
	if err := c.SendData(dst, tag, sendBytes, sendPayload); err != nil {
		return nil, err
	}
	_, recvPayload, err = c.RecvData(src, tag)
	return recvPayload, err
}

// collective runs one rendezvous with exit time max(arrivals) + cost and
// records the rank's time in it under the activity, contributing value to
// the round's global sum.
func (c *Comm) collective(op, activity string, cost, value float64) (sum float64, err error) {
	res, err := c.collectiveFull(op, activity, cost, value)
	return res.Sum, err
}

// collectiveFull is collective returning the full rendezvous result, for
// operations that need the per-rank vectors (allgather).
func (c *Comm) collectiveFull(op, activity string, cost, value float64) (sim.CollectiveResult, error) {
	start := c.clock
	res, err := c.world.engine.Collective(c.rank, op, c.clock, value)
	if err != nil {
		return sim.CollectiveResult{}, err
	}
	c.clock = res.Max + cost
	return res, c.record(activity, start)
}

// Barrier synchronizes all ranks: everyone leaves at the time the last
// rank arrived plus the tree latency. The wait is recorded as
// synchronization time — the activity the paper found most imbalanced.
func (c *Comm) Barrier() error {
	_, err := c.collective("barrier", ActSynchronization, stages(c.Size())*c.world.cost.CollectiveLatency, 0)
	return err
}

// Allreduce combines bytes from every rank and distributes the result:
// a reduce tree followed by a broadcast tree.
func (c *Comm) Allreduce(bytes int) error {
	_, err := c.AllreduceSum(0, bytes)
	return err
}

// AllreduceSum is Allreduce carrying one float64 of application data: it
// returns the global sum of the values contributed by all ranks (e.g. a
// residual norm).
func (c *Comm) AllreduceSum(value float64, bytes int) (float64, error) {
	if bytes < 0 {
		return 0, fmt.Errorf("%w: negative size %d", ErrBadArgument, bytes)
	}
	cost := 2 * stages(c.Size()) * (c.world.cost.CollectiveLatency + c.world.cost.transfer(bytes))
	c.addBytes(ActCollective, 2*bytes)
	return c.collective("allreduce", ActCollective, cost, value)
}

// Reduce combines bytes from every rank at a root.
func (c *Comm) Reduce(root, bytes int) error {
	_, err := c.ReduceSum(root, 0, bytes)
	return err
}

// ReduceSum is Reduce carrying one float64 of application data; every rank
// receives the global sum (the simulation does not model root-only
// visibility).
func (c *Comm) ReduceSum(root int, value float64, bytes int) (float64, error) {
	if bytes < 0 {
		return 0, fmt.Errorf("%w: negative size %d", ErrBadArgument, bytes)
	}
	if root < 0 || root >= c.Size() {
		return 0, fmt.Errorf("%w: root %d", ErrBadArgument, root)
	}
	cost := stages(c.Size()) * (c.world.cost.CollectiveLatency + c.world.cost.transfer(bytes))
	c.addBytes(ActCollective, bytes)
	return c.collective("reduce", ActCollective, cost, value)
}

// Bcast distributes bytes from a root to every rank.
func (c *Comm) Bcast(root, bytes int) error {
	if bytes < 0 {
		return fmt.Errorf("%w: negative size %d", ErrBadArgument, bytes)
	}
	if root < 0 || root >= c.Size() {
		return fmt.Errorf("%w: root %d", ErrBadArgument, root)
	}
	cost := stages(c.Size()) * (c.world.cost.CollectiveLatency + c.world.cost.transfer(bytes))
	c.addBytes(ActCollective, bytes)
	_, err := c.collective("bcast", ActCollective, cost, 0)
	return err
}

// Alltoall exchanges bytes between every pair of ranks: each rank sends
// and receives P-1 messages' worth of data.
func (c *Comm) Alltoall(bytes int) error {
	if bytes < 0 {
		return fmt.Errorf("%w: negative size %d", ErrBadArgument, bytes)
	}
	p := float64(c.Size())
	cost := (p - 1) * (c.world.cost.Latency + c.world.cost.transfer(bytes))
	c.addBytes(ActCollective, (c.Size()-1)*bytes)
	_, err := c.collective("alltoall", ActCollective, cost, 0)
	return err
}

// Skew advances the rank's clock without recording an activity, modeling
// uninstrumented program parts (initialization, I/O outside the measured
// loops). The paper's program spends ~7% of its wall clock time outside
// the instrumented regions.
func (c *Comm) Skew(seconds float64) error {
	if seconds < 0 || !finite(seconds) {
		return fmt.Errorf("%w: skew %g", ErrBadArgument, seconds)
	}
	c.clock += seconds
	return nil
}
