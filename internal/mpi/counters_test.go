package mpi

import (
	"errors"
	"math"
	"testing"
)

func TestBytesCube(t *testing.T) {
	w, err := NewWorld(2, unitCost())
	if err != nil {
		t.Fatal(err)
	}
	run := w.Run(func(c *Comm) error {
		if err := c.EnterRegion("xchg"); err != nil {
			return err
		}
		other := 1 - c.Rank()
		// Rank 0 sends 100 bytes, rank 1 sends 50; both receive.
		bytes := 100
		if c.Rank() == 1 {
			bytes = 50
		}
		if err := c.Send(other, c.Rank(), bytes); err != nil {
			return err
		}
		if _, err := c.Recv(other, other); err != nil {
			return err
		}
		if err := c.Allreduce(8); err != nil {
			return err
		}
		return c.ExitRegion()
	})
	if run != nil {
		t.Fatal(run)
	}
	cube, err := w.BytesCube(nil)
	if err != nil {
		t.Fatal(err)
	}
	jp2p := cube.ActivityIndex(ActPointToPoint)
	// Rank 0: sent 100 + received 50 = 150.
	v0, err := cube.At(0, jp2p, 0)
	if err != nil || v0 != 150 {
		t.Errorf("rank 0 p2p bytes = %g, %v; want 150", v0, err)
	}
	v1, err := cube.At(0, jp2p, 1)
	if err != nil || v1 != 150 {
		t.Errorf("rank 1 p2p bytes = %g, %v; want 150", v1, err)
	}
	// Allreduce credits 2*bytes per rank.
	jcoll := cube.ActivityIndex(ActCollective)
	vc, err := cube.At(0, jcoll, 0)
	if err != nil || vc != 16 {
		t.Errorf("collective bytes = %g, %v; want 16", vc, err)
	}
	// Counter cubes have no separate program time.
	if cube.ProgramTime() != cube.RegionsTotal() {
		t.Errorf("program total %g != regions total %g", cube.ProgramTime(), cube.RegionsTotal())
	}
}

func TestBytesCubeNoCounters(t *testing.T) {
	w, err := NewWorld(1, unitCost())
	if err != nil {
		t.Fatal(err)
	}
	run := w.Run(func(c *Comm) error {
		if err := c.EnterRegion("r"); err != nil {
			return err
		}
		if err := c.Compute(1); err != nil {
			return err
		}
		return c.ExitRegion()
	})
	if run != nil {
		t.Fatal(run)
	}
	if _, err := w.BytesCube(nil); !errors.Is(err, ErrNoCounters) {
		t.Errorf("no-counter err = %v", err)
	}
}

func TestBytesOutsideRegionNotCounted(t *testing.T) {
	// Communication outside regions fails with ErrNoRegion for the
	// timing record, so only in-region traffic can be counted; verify
	// the ledger agrees with the timing events on region scoping.
	w, err := NewWorld(2, unitCost())
	if err != nil {
		t.Fatal(err)
	}
	run := w.Run(func(c *Comm) error {
		if err := c.EnterRegion("a"); err != nil {
			return err
		}
		other := 1 - c.Rank()
		if err := c.Send(other, 0, 10); err != nil {
			return err
		}
		if _, err := c.Recv(other, 0); err != nil {
			return err
		}
		return c.ExitRegion()
	})
	if run != nil {
		t.Fatal(run)
	}
	cube, err := w.BytesCube(nil)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for p := 0; p < 2; p++ {
		v, err := cube.ProcTotalTime(p)
		if err != nil {
			t.Fatal(err)
		}
		total += v
	}
	// 2 sends of 10 + 2 receives of 10.
	if math.Abs(total-40) > 1e-12 {
		t.Errorf("total bytes = %g, want 40", total)
	}
}

func TestBytesCubeImbalance(t *testing.T) {
	// A rank that sends more shows up in the byte cube's dispersion.
	w, err := NewWorld(4, unitCost())
	if err != nil {
		t.Fatal(err)
	}
	run := w.Run(func(c *Comm) error {
		if err := c.EnterRegion("r"); err != nil {
			return err
		}
		// Everyone sends to rank 0; rank 1 sends 10x more.
		if c.Rank() == 0 {
			for src := 1; src < c.Size(); src++ {
				if _, err := c.Recv(src, src); err != nil {
					return err
				}
			}
		} else {
			bytes := 100
			if c.Rank() == 1 {
				bytes = 1000
			}
			if err := c.Send(0, c.Rank(), bytes); err != nil {
				return err
			}
		}
		return c.ExitRegion()
	})
	if run != nil {
		t.Fatal(run)
	}
	cube, err := w.BytesCube(nil)
	if err != nil {
		t.Fatal(err)
	}
	jp2p := cube.ActivityIndex(ActPointToPoint)
	v1, err := cube.At(0, jp2p, 1)
	if err != nil || v1 != 1000 {
		t.Errorf("rank 1 bytes = %g, %v", v1, err)
	}
	v2, err := cube.At(0, jp2p, 2)
	if err != nil || v2 != 100 {
		t.Errorf("rank 2 bytes = %g, %v", v2, err)
	}
	// Rank 0 received everything: 1200.
	v0, err := cube.At(0, jp2p, 0)
	if err != nil || v0 != 1200 {
		t.Errorf("rank 0 bytes = %g, %v", v0, err)
	}
}
