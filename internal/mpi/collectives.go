package mpi

import "fmt"

// Additional collective operations beyond the four the paper's CFD study
// measures, completing the common MPI collective set. All are recorded
// under the collective activity and follow the same tree cost model.

// Gather collects bytes from every rank at a root: a reduce-shaped tree
// whose data volume grows toward the root. Each rank contributes bytes;
// the cost charges the root's total receive volume spread over the tree
// stages.
func (c *Comm) Gather(root, bytes int) error {
	if bytes < 0 {
		return fmt.Errorf("%w: negative size %d", ErrBadArgument, bytes)
	}
	if root < 0 || root >= c.Size() {
		return fmt.Errorf("%w: root %d", ErrBadArgument, root)
	}
	p := c.Size()
	cost := stages(p)*c.world.cost.CollectiveLatency + float64(p-1)*c.world.cost.transfer(bytes)
	c.addBytes(ActCollective, bytes)
	_, err := c.collective("gather", ActCollective, cost, 0)
	return err
}

// Scatter distributes bytes from a root to every rank: the mirror image
// of Gather.
func (c *Comm) Scatter(root, bytes int) error {
	if bytes < 0 {
		return fmt.Errorf("%w: negative size %d", ErrBadArgument, bytes)
	}
	if root < 0 || root >= c.Size() {
		return fmt.Errorf("%w: root %d", ErrBadArgument, root)
	}
	p := c.Size()
	cost := stages(p)*c.world.cost.CollectiveLatency + float64(p-1)*c.world.cost.transfer(bytes)
	c.addBytes(ActCollective, bytes)
	_, err := c.collective("scatter", ActCollective, cost, 0)
	return err
}

// Allgather collects bytes from every rank at every rank: a gather
// followed by a broadcast of the concatenation (ring or recursive
// doubling; the cost model charges the ring's (P-1) exchange steps).
func (c *Comm) Allgather(bytes int) error {
	if bytes < 0 {
		return fmt.Errorf("%w: negative size %d", ErrBadArgument, bytes)
	}
	p := c.Size()
	cost := float64(p-1) * (c.world.cost.Latency + c.world.cost.transfer(bytes))
	c.addBytes(ActCollective, p*bytes)
	_, err := c.collective("allgather", ActCollective, cost, 0)
	return err
}

// AllgatherValues is Allgather carrying one float64 of application data
// per rank: it returns the full per-rank vector, indexed by rank. This is
// the primitive adaptive rebalancing uses to share per-rank load
// measurements at a phase boundary.
func (c *Comm) AllgatherValues(value float64, bytes int) ([]float64, error) {
	if bytes < 0 {
		return nil, fmt.Errorf("%w: negative size %d", ErrBadArgument, bytes)
	}
	p := c.Size()
	cost := float64(p-1) * (c.world.cost.Latency + c.world.cost.transfer(bytes))
	c.addBytes(ActCollective, p*bytes)
	res, err := c.collectiveFull("allgather", ActCollective, cost, value)
	if err != nil {
		return nil, err
	}
	return res.Values, nil
}
