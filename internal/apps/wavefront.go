package apps

import (
	"fmt"

	"loadimb/internal/mpi"
	"loadimb/internal/trace"
)

// Wavefront region names.
var wfRegions = []string{"sweep east", "sweep west", "convergence"}

// WavefrontConfig parameterizes a pipelined sweep run (the communication
// structure of Sweep3D-style transport codes): each rank owns a column
// block; a sweep propagates a dependency from rank 0 to the last rank
// (east) and back (west), so the pipeline fill and drain make the
// boundary ranks wait — an imbalance that is structural, not a work
// distribution defect.
type WavefrontConfig struct {
	// Procs is the number of ranks in the pipeline.
	Procs int
	// Sweeps is the number of east+west sweep pairs.
	Sweeps int
	// CellCost is the per-rank computation per sweep step, in virtual
	// seconds.
	CellCost float64
	// FaceBytes is the size of the face exchanged between neighbors.
	FaceBytes int
	// Cost is the communication cost model; zero selects the default.
	Cost mpi.CostModel
	// Sink, when non-nil, receives every instrumented event live while
	// the run executes; it must be concurrency-safe.
	Sink trace.Sink
}

// DefaultWavefront returns a 16-rank pipeline with 20 sweep pairs.
func DefaultWavefront() WavefrontConfig {
	return WavefrontConfig{
		Procs:     16,
		Sweeps:    20,
		CellCost:  0.02,
		FaceBytes: 1 << 15,
		Cost:      mpi.DefaultCostModel(),
	}
}

// Wavefront runs the pipelined sweep and returns its measurements. The
// wave carries a running value through the pipeline (each rank adds its
// rank+1), so the checksum proves the dependency chain really executed in
// order.
func Wavefront(cfg WavefrontConfig) (*Result, error) {
	if cfg.Procs < 2 {
		return nil, fmt.Errorf("apps: need at least 2 processors, got %d", cfg.Procs)
	}
	if cfg.Sweeps < 1 {
		return nil, fmt.Errorf("apps: need at least 1 sweep, got %d", cfg.Sweeps)
	}
	if cfg.CellCost <= 0 {
		return nil, fmt.Errorf("apps: cell cost %g must be positive", cfg.CellCost)
	}
	if cfg.FaceBytes < 0 {
		return nil, fmt.Errorf("apps: negative face bytes %d", cfg.FaceBytes)
	}
	if cfg.Cost == (mpi.CostModel{}) {
		cfg.Cost = mpi.DefaultCostModel()
	}
	world, err := mpi.NewWorld(cfg.Procs, cfg.Cost)
	if err != nil {
		return nil, err
	}
	if cfg.Sink != nil {
		world.SetSink(cfg.Sink)
	}
	var checksum float64
	runErr := world.Run(func(c *mpi.Comm) error {
		rank, size := c.Rank(), c.Size()
		wave := 0.0
		for sweep := 0; sweep < cfg.Sweeps; sweep++ {
			// East sweep: 0 -> size-1.
			if err := c.EnterRegion(wfRegions[0]); err != nil {
				return err
			}
			if rank > 0 {
				_, payload, err := c.RecvData(rank-1, sweep*4)
				if err != nil {
					return err
				}
				v, ok := payload.(float64)
				if !ok {
					return fmt.Errorf("apps: bad east wave payload %T", payload)
				}
				wave = v
			}
			if err := c.Compute(cfg.CellCost); err != nil {
				return err
			}
			wave += float64(rank + 1)
			if rank+1 < size {
				if err := c.SendData(rank+1, sweep*4, cfg.FaceBytes, wave); err != nil {
					return err
				}
			}
			if err := c.ExitRegion(); err != nil {
				return err
			}
			// West sweep: size-1 -> 0.
			if err := c.EnterRegion(wfRegions[1]); err != nil {
				return err
			}
			if rank+1 < size {
				_, payload, err := c.RecvData(rank+1, sweep*4+1)
				if err != nil {
					return err
				}
				v, ok := payload.(float64)
				if !ok {
					return fmt.Errorf("apps: bad west wave payload %T", payload)
				}
				wave = v
			}
			if err := c.Compute(cfg.CellCost); err != nil {
				return err
			}
			wave += float64(rank + 1)
			if rank > 0 {
				if err := c.SendData(rank-1, sweep*4+1, cfg.FaceBytes, wave); err != nil {
					return err
				}
			}
			if err := c.ExitRegion(); err != nil {
				return err
			}
		}
		// Convergence check: a global reduction of the wave values.
		if err := c.EnterRegion(wfRegions[2]); err != nil {
			return err
		}
		sum, err := c.AllreduceSum(wave, 8)
		if err != nil {
			return err
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if rank == 0 {
			checksum = sum
		}
		return c.ExitRegion()
	})
	if runErr != nil {
		return nil, runErr
	}
	return finish(world, wfRegions, checksum)
}

// ExpectedWavefrontChecksum returns the analytically expected checksum of
// a run: the wave value accumulated through every sweep, summed over
// ranks at the end. Tests compare it with the measured checksum to prove
// the dependency chain executed.
func ExpectedWavefrontChecksum(procs, sweeps int) float64 {
	waves := make([]float64, procs)
	for s := 0; s < sweeps; s++ {
		// East: rank r receives rank r-1's wave, adds r+1.
		carry := 0.0
		for r := 0; r < procs; r++ {
			if r > 0 {
				waves[r] = carry
			}
			waves[r] += float64(r + 1)
			carry = waves[r]
		}
		// West: rank r receives rank r+1's wave, adds r+1.
		carry = 0.0
		for r := procs - 1; r >= 0; r-- {
			if r < procs-1 {
				waves[r] = carry
			}
			waves[r] += float64(r + 1)
			carry = waves[r]
		}
	}
	total := 0.0
	for _, w := range waves {
		total += w
	}
	return total
}
