package apps

import (
	"math"
	"testing"

	"loadimb/internal/rebalance"
)

// TestTagSchemeCollisionFree is the regression test for the old tag
// derivation (worker*100000 + round*2), which aliased worker w at round
// 50000 with worker w+1 at round 0. The old scheme fails this test; the
// interleaved scheme is a bijection and passes.
func TestTagSchemeCollisionFree(t *testing.T) {
	oldTagFor := func(worker, round int) int { return worker*100000 + round*2 }
	collides := func(tag func(worker, round int) int) bool {
		seen := make(map[int]struct{})
		for worker := 0; worker < 4; worker++ {
			for _, round := range []int{0, 1, 2, 49999, 50000, 50001, 100000} {
				k := tag(worker, round)
				if _, dup := seen[k]; dup {
					return true
				}
				seen[k] = struct{}{}
			}
		}
		return false
	}
	if !collides(oldTagFor) {
		t.Error("the old scheme should collide at round >= 50000 (the bug this guards against)")
	}
	const workers = 4
	if collides(func(w, r int) int { return tagFor(workers, w, r) }) {
		t.Error("tagFor collides")
	}
	if collides(func(w, r int) int { return resultTag(workers, w, r) }) {
		t.Error("resultTag collides")
	}
	// Task and result tags must also never collide with each other.
	for worker := 0; worker < workers; worker++ {
		for _, round := range []int{0, 50000, 1 << 20} {
			if tagFor(workers, worker, round)%2 != 0 || resultTag(workers, worker, round)%2 != 1 {
				t.Fatalf("parity separation broken at worker %d round %d", worker, round)
			}
		}
	}
}

func TestMasterWorkerTagSpaceBound(t *testing.T) {
	cfg := fastMW(StaticSchedule)
	cfg.Tasks = math.MaxInt/2 - 1
	if _, err := MasterWorker(cfg); err == nil {
		t.Error("tag-space overflow accepted")
	}
}

// TestMasterWorkerManyRoundsPerWorker crosses the old scheme's collision
// boundary structurally: with tiny messages the tag space is exercised
// round by round; under the old derivation dispatch and results would
// alias across workers long before the run ends.
func TestMasterWorkerManyRoundsPerWorker(t *testing.T) {
	cfg := fastMW(StaticSchedule)
	cfg.Procs = 3 // 2 workers, so rounds per worker = Tasks/2
	cfg.Tasks = 600
	cfg.TaskBase = 1e-4
	cfg.TaskBytes = 8
	res, err := MasterWorker(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * sum(cfg.costs())
	if math.Abs(res.Checksum-want) > 1e-9*want {
		t.Errorf("checksum %g, want %g", res.Checksum, want)
	}
}

func sum(xs []float64) float64 {
	total := 0.0
	for _, x := range xs {
		total += x
	}
	return total
}

func TestMasterWorkerValidationNonFinite(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name string
		mut  func(*MasterWorkerConfig)
	}{
		{"nan base", func(c *MasterWorkerConfig) { c.TaskBase = nan }},
		{"inf base", func(c *MasterWorkerConfig) { c.TaskBase = math.Inf(1) }},
		{"nan spread", func(c *MasterWorkerConfig) { c.TaskSpread = nan }},
		{"nan straggler", func(c *MasterWorkerConfig) { c.StragglerFactor = nan }},
		{"straggler master", func(c *MasterWorkerConfig) { c.StragglerFactor = 5; c.Straggler = 0 }},
		{"straggler range", func(c *MasterWorkerConfig) { c.StragglerFactor = 5; c.Straggler = c.Procs }},
		{"negative rounds", func(c *MasterWorkerConfig) { c.Rounds = -1 }},
	}
	for _, c := range cases {
		cfg := fastMW(StaticSchedule)
		c.mut(&cfg)
		if _, err := MasterWorker(cfg); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

// stragglerMW is the farm's straggler scenario: static contiguous
// blocks, worker rank 2 five times slower. The spread is kept modest so
// a round's measured load reflects queue balance rather than the random
// task-cost draw.
func stragglerMW() MasterWorkerConfig {
	cfg := fastMW(StaticSchedule)
	cfg.Tasks = 280
	cfg.TaskSpread = 1
	cfg.Straggler = 2
	cfg.StragglerFactor = 5
	return cfg
}

func TestMasterWorkerStragglerChecksumUnchanged(t *testing.T) {
	res, err := MasterWorker(stragglerMW())
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * sum(stragglerMW().costs())
	if math.Abs(res.Checksum-want) > 1e-9*want {
		t.Errorf("checksum %g, want %g (a straggler is slow, not wrong)", res.Checksum, want)
	}
	clean := stragglerMW()
	clean.StragglerFactor = 0
	base, err := MasterWorker(clean)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= base.Makespan {
		t.Errorf("straggler makespan %g not above clean %g", res.Makespan, base.Makespan)
	}
}

func TestMasterWorkerRebalanceConverges(t *testing.T) {
	cfg := stragglerMW()
	ctrl, err := rebalance.New(rebalance.PolicyReactive, rebalance.Options{Target: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Rebalance = ctrl
	res, err := MasterWorker(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * sum(cfg.costs())
	if math.Abs(res.Checksum-want) > 1e-9*want {
		t.Errorf("checksum %g, want %g (reassignment must conserve results)", res.Checksum, want)
	}
	s := ctrl.Snapshot()
	if !s.Converged {
		t.Fatalf("never reached target: %+v", s)
	}
	baseline, err := MasterWorker(stragglerMW())
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan >= baseline.Makespan {
		t.Errorf("rebalanced makespan %g not below baseline %g", res.Makespan, baseline.Makespan)
	}
	regions := res.Cube.Regions()
	if regions[len(regions)-1] != MWRebalanceRegion {
		t.Errorf("last region %q, want %q", regions[len(regions)-1], MWRebalanceRegion)
	}
}

func TestMasterWorkerRebalanceDeterministic(t *testing.T) {
	run := func() (*Result, rebalance.Stats) {
		cfg := stragglerMW()
		ctrl, err := rebalance.New(rebalance.PolicyPredictive, rebalance.Options{Target: 0.15})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Rebalance = ctrl
		res, err := MasterWorker(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res, ctrl.Snapshot()
	}
	a, sa := run()
	b, sb := run()
	if a.Makespan != b.Makespan || a.Checksum != b.Checksum {
		t.Errorf("non-deterministic: %g/%g vs %g/%g", a.Makespan, a.Checksum, b.Makespan, b.Checksum)
	}
	if sa.Rounds != sb.Rounds || sa.Migrations != sb.Migrations {
		t.Errorf("non-deterministic stats: %+v vs %+v", sa, sb)
	}
}
