package apps

import (
	"math"
	"testing"

	"loadimb/internal/core"
	"loadimb/internal/mpi"
	"loadimb/internal/rebalance"
)

func fastAMR() AMRConfig {
	cfg := DefaultAMR()
	cfg.Procs = 8
	cfg.Phases = 4
	return cfg
}

func TestAMRValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*AMRConfig)
	}{
		{"procs", func(c *AMRConfig) { c.Procs = 1 }},
		{"phases", func(c *AMRConfig) { c.Phases = 0 }},
		{"base", func(c *AMRConfig) { c.BaseWork = 0 }},
		{"refine", func(c *AMRConfig) { c.RefineFactor = 0.5 }},
		{"width zero", func(c *AMRConfig) { c.FeatureWidth = 0 }},
		{"width huge", func(c *AMRConfig) { c.FeatureWidth = 99 }},
		{"bytes", func(c *AMRConfig) { c.FaceBytes = -1 }},
		{"straggler factor", func(c *AMRConfig) { c.StragglerFactor = -1 }},
		{"straggler rank", func(c *AMRConfig) { c.StragglerFactor = 4; c.Straggler = -1 }},
		{"straggler rank high", func(c *AMRConfig) { c.StragglerFactor = 4; c.Straggler = c.Procs }},
	}
	for _, c := range cases {
		cfg := fastAMR()
		c.mut(&cfg)
		if _, err := AMR(cfg); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestAMRChecksum(t *testing.T) {
	cfg := fastAMR()
	res, err := AMR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := ExpectedAMRWork(cfg)
	if math.Abs(res.Checksum-want) > 1e-9 {
		t.Errorf("checksum = %g, want %g", res.Checksum, want)
	}
}

func TestAMRStragglerChecksumAndWork(t *testing.T) {
	cfg := fastAMR()
	cfg.Straggler = 2
	cfg.StragglerFactor = 6
	res, err := AMR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// ExpectedAMRWork sums the same amrWork the run charges, so the
	// analytic checksum tracks the injection automatically.
	want := ExpectedAMRWork(cfg)
	if math.Abs(res.Checksum-want) > 1e-9 {
		t.Errorf("checksum = %g, want %g", res.Checksum, want)
	}
	base := fastAMR()
	if got, plain := want, ExpectedAMRWork(base); got <= plain {
		t.Errorf("straggler run work %g not above baseline %g", got, plain)
	}
	// The straggler's whole-run computation exceeds every other rank's:
	// the moving feature refines different ranks in different phases, but
	// the injected slowdown sticks to one rank — the persistent signature
	// the diagnosis keys on.
	j := res.Cube.ActivityIndex("computation")
	if j < 0 {
		t.Fatalf("no computation activity in %v", res.Cube.Activities())
	}
	totals := make([]float64, res.Cube.NumProcs())
	for i := 0; i < res.Cube.NumRegions(); i++ {
		for p := range totals {
			v, err := res.Cube.At(i, j, p)
			if err != nil {
				t.Fatal(err)
			}
			totals[p] += v
		}
	}
	for p, v := range totals {
		if p != cfg.Straggler && totals[cfg.Straggler] <= v {
			t.Fatalf("straggler computation %g not above rank %d's %g", totals[cfg.Straggler], p, v)
		}
	}
}

func TestAMRFeatureMoves(t *testing.T) {
	cfg := fastAMR()
	// First phase centered at rank 0, last at the final rank.
	if featureCenter(0, cfg.Phases, cfg.Procs) != 0 {
		t.Error("first phase center wrong")
	}
	if featureCenter(cfg.Phases-1, cfg.Phases, cfg.Procs) != cfg.Procs-1 {
		t.Error("last phase center wrong")
	}
	// Single-phase degenerate case centers at 0.
	if featureCenter(0, 1, 8) != 0 {
		t.Error("single-phase center wrong")
	}
	res, err := AMR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	jc := res.Cube.ActivityIndex(mpi.ActComputation)
	// In phase 1 rank 0 is refined; in the last phase the last rank is.
	early0, err := res.Cube.At(0, jc, 0)
	if err != nil {
		t.Fatal(err)
	}
	earlyLast, err := res.Cube.At(0, jc, cfg.Procs-1)
	if err != nil {
		t.Fatal(err)
	}
	if early0 <= earlyLast {
		t.Errorf("phase 1: rank 0 work %g should exceed last rank's %g", early0, earlyLast)
	}
	late0, err := res.Cube.At(cfg.Phases-1, jc, 0)
	if err != nil {
		t.Fatal(err)
	}
	lateLast, err := res.Cube.At(cfg.Phases-1, jc, cfg.Procs-1)
	if err != nil {
		t.Fatal(err)
	}
	if lateLast <= late0 {
		t.Errorf("last phase: last rank work %g should exceed rank 0's %g", lateLast, late0)
	}
}

func TestAMRProcessorViewTracksFeature(t *testing.T) {
	cfg := fastAMR()
	res, err := AMR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(res.Cube, core.AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Every phase has positive computation dispersion (the feature is
	// always narrower than the machine).
	for i := range a.Cells {
		cell := a.Cells[i][res.Cube.ActivityIndex(mpi.ActComputation)]
		if !cell.Defined || cell.ID <= 0 {
			t.Errorf("phase %d: computation dispersion = %+v", i+1, cell)
		}
	}
	// The per-phase most-imbalanced processors differ across phases —
	// the signature of a moving feature that a whole-run average hides.
	winners := map[int]bool{}
	for i := range a.Processors.ByRegion {
		best, bestVal := -1, 0.0
		for p, d := range a.Processors.ByRegion[i] {
			if d.Defined && (best == -1 || d.ID > bestVal) {
				best, bestVal = p, d.ID
			}
		}
		winners[best] = true
	}
	if len(winners) < 2 {
		t.Errorf("moving feature should shift the most-imbalanced processor; winners = %v", winners)
	}
}

func TestAMRDeterministic(t *testing.T) {
	a, err := AMR(fastAMR())
	if err != nil {
		t.Fatal(err)
	}
	b, err := AMR(fastAMR())
	if err != nil {
		t.Fatal(err)
	}
	if !a.Cube.EqualWithin(b.Cube, 0) {
		t.Error("AMR runs should be deterministic")
	}
}

func TestAMRValidationNonFinite(t *testing.T) {
	nan := math.NaN()
	inf := math.Inf(1)
	cases := []struct {
		name string
		mut  func(*AMRConfig)
	}{
		{"nan base", func(c *AMRConfig) { c.BaseWork = nan }},
		{"inf base", func(c *AMRConfig) { c.BaseWork = inf }},
		{"nan refine", func(c *AMRConfig) { c.RefineFactor = nan }},
		{"nan straggler factor", func(c *AMRConfig) { c.StragglerFactor = nan }},
		{"inf straggler factor", func(c *AMRConfig) { c.StragglerFactor = inf }},
		{"negative sweeps", func(c *AMRConfig) { c.Sweeps = -1 }},
		{"negative cells", func(c *AMRConfig) { c.CellsPerRank = -1 }},
		{"negative migrate bytes", func(c *AMRConfig) { c.MigrateBytes = -1 }},
	}
	for _, c := range cases {
		cfg := fastAMR()
		c.mut(&cfg)
		if _, err := AMR(cfg); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

// stragglerAMR is the acceptance scenario: a persistent 5x straggler and
// no moving feature (width 1 covers only the feature rank; refinement
// off isolates the straggler as the only imbalance source).
func stragglerAMR(sweeps int) AMRConfig {
	cfg := DefaultAMR()
	cfg.Procs = 8
	cfg.Phases = 4
	cfg.Sweeps = sweeps
	cfg.RefineFactor = 1
	cfg.Straggler = 3
	cfg.StragglerFactor = 5
	return cfg
}

func TestAMRRebalanceConvergesOnStraggler(t *testing.T) {
	cfg := stragglerAMR(3)
	ctrl, err := rebalance.New(rebalance.PolicyReactive, rebalance.Options{Target: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Rebalance = ctrl
	res, err := AMR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := ctrl.Snapshot()
	if !s.Converged {
		t.Fatalf("reactive never reached target: %+v", s)
	}
	if s.AchievedID > 0.1 {
		t.Errorf("final measured ID %g above target", s.AchievedID)
	}
	// The run must beat the no-rebalance baseline on makespan: the
	// straggler sheds cells, so the critical path shortens.
	base := stragglerAMR(3)
	baseline, err := AMR(base)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan >= baseline.Makespan {
		t.Errorf("rebalanced makespan %g not below baseline %g", res.Makespan, baseline.Makespan)
	}
	// Migration conserves the base-work checksum.
	want := ExpectedAMRBaseWork(cfg)
	if math.Abs(res.Checksum-want) > 1e-6*want {
		t.Errorf("checksum %g, want %g", res.Checksum, want)
	}
	if math.Abs(baseline.Checksum-want) > 1e-6*want {
		t.Errorf("baseline checksum %g, want %g", baseline.Checksum, want)
	}
}

func TestAMRPredictiveNoSlowerThanReactive(t *testing.T) {
	run := func(policy string) (rounds int, makespan float64) {
		cfg := stragglerAMR(3)
		ctrl, err := rebalance.New(policy, rebalance.Options{Target: 0.1})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Rebalance = ctrl
		res, err := AMR(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s := ctrl.Snapshot()
		if !s.Converged {
			t.Fatalf("%s never reached target: %+v", policy, s)
		}
		return s.RoundsToTarget, res.Makespan
	}
	reactiveRounds, reactiveSpan := run(rebalance.PolicyReactive)
	predictiveRounds, predictiveSpan := run(rebalance.PolicyPredictive)
	if predictiveRounds > reactiveRounds {
		t.Errorf("predictive took %d rounds, reactive %d", predictiveRounds, reactiveRounds)
	}
	// Pre-migration must never worsen the makespan vs reacting.
	if predictiveSpan > reactiveSpan*1.001 {
		t.Errorf("predictive makespan %g worse than reactive %g", predictiveSpan, reactiveSpan)
	}
}

func TestAMRMultiSweepWithoutRebalance(t *testing.T) {
	cfg := fastAMR()
	cfg.Sweeps = 2
	res, err := AMR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := ExpectedAMRBaseWork(cfg)
	if math.Abs(res.Checksum-want) > 1e-6*want {
		t.Errorf("checksum %g, want %g", res.Checksum, want)
	}
	if got := res.Cube.Regions(); len(got) != cfg.Sweeps*cfg.Phases {
		t.Errorf("regions = %d, want %d", len(got), cfg.Sweeps*cfg.Phases)
	}
}

func TestAMRRebalanceCubeHasRebalanceRegion(t *testing.T) {
	cfg := stragglerAMR(2)
	ctrl, err := rebalance.New(rebalance.PolicyReactive, rebalance.Options{Target: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Rebalance = ctrl
	res, err := AMR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	regions := res.Cube.Regions()
	if regions[len(regions)-1] != AMRRebalanceRegion {
		t.Errorf("last region %q, want %q", regions[len(regions)-1], AMRRebalanceRegion)
	}
}
