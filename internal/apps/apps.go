// Package apps provides additional simulated message-passing applications
// beyond the CFD study, in the spirit of the paper's future-work plan to
// "analyze measurements collected ... for a large variety of scientific
// programs". Each application runs on the internal/mpi virtual machine and
// produces a measurement cube with a characteristic imbalance signature:
//
//   - MasterWorker: a task farm with heterogeneous task costs, runnable
//     with static (contiguous blocks) or dynamic (greedy list scheduling)
//     assignment — the textbook case where dynamic scheduling repairs load
//     imbalance.
//   - Wavefront: a pipelined sweep (Sweep3D-like) where the pipeline fill
//     and drain concentrate point-to-point waiting on the boundary ranks.
package apps

import (
	"errors"
	"fmt"

	"loadimb/internal/mpi"
	"loadimb/internal/rebalance"
	"loadimb/internal/trace"
)

// A Rebalancer is the work-migration hook the adaptive workloads call at
// phase boundaries. boundary is the global phase index that just ended
// and loads the allgathered per-rank compute seconds of that phase;
// every rank of the SPMD program calls Decide with identical arguments
// and must receive the identical plan (rebalance.Controller memoizes per
// boundary to guarantee this). The workload owns the mechanism: it turns
// each planned Move's load amount into its own work units — AMR cells,
// queued tasks, grid rows — and ships them before the next phase starts.
type Rebalancer interface {
	Decide(boundary int, loads []float64) (rebalance.Plan, error)
}

// Result is a run's measurements.
type Result struct {
	// Cube is the aggregated measurement cube.
	Cube *trace.Cube
	// Log is the raw event trace.
	Log *trace.Log
	// Makespan is the longest rank timeline, in virtual seconds.
	Makespan float64
	// Checksum is an application-defined result (sum of task outputs,
	// final wavefront value) evidencing real computation.
	Checksum float64
}

func finish(world *mpi.World, regionOrder []string, checksum float64) (*Result, error) {
	log, err := world.Log()
	if err != nil {
		return nil, err
	}
	cube, err := log.Aggregate(regionOrder, mpi.Activities())
	if err != nil {
		return nil, err
	}
	return &Result{Cube: cube, Log: log, Makespan: log.Span(), Checksum: checksum}, nil
}

// splitMix64 is the deterministic PRNG used for task costs.
type splitMix64 struct{ state uint64 }

func (s *splitMix64) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitMix64) float64() float64 {
	return float64(s.next()>>11) / (1 << 53)
}

// taskCosts generates n task costs in [base, base*(1+spread)] from seed.
func taskCosts(n int, base, spread float64, seed uint64) []float64 {
	rng := splitMix64{state: seed}
	out := make([]float64, n)
	for i := range out {
		out[i] = base * (1 + spread*rng.float64())
	}
	return out
}

func validateCommon(procs, tasks int) error {
	if procs < 2 {
		return errors.New("apps: need at least 2 processors")
	}
	if tasks < procs {
		return fmt.Errorf("apps: %d tasks for %d processors", tasks, procs)
	}
	return nil
}
