package apps

import (
	"fmt"
	"math"

	"loadimb/internal/mpi"
	"loadimb/internal/trace"
)

// Master-worker region names.
var mwRegions = []string{"dispatch", "work", "collect"}

// MWRebalanceRegion is the region the adaptive farm's boundary machinery
// (load allgather, queue reassignment barrier) is attributed to.
const MWRebalanceRegion = "rebalance"

// Schedule selects the master-worker assignment policy.
type Schedule int

// Assignment policies.
const (
	// StaticSchedule pre-partitions tasks into contiguous blocks, one
	// per worker: with heterogeneous costs, some workers finish early
	// and the imbalance shows in the collect phase.
	StaticSchedule Schedule = iota
	// DynamicSchedule assigns each task to the worker that would finish
	// it earliest (greedy list scheduling over the known costs), the
	// classic repair for heterogeneous tasks.
	DynamicSchedule
)

// String returns the schedule name.
func (s Schedule) String() string {
	switch s {
	case StaticSchedule:
		return "static"
	case DynamicSchedule:
		return "dynamic"
	}
	return fmt.Sprintf("Schedule(%d)", int(s))
}

// TaskShape selects how task costs vary.
type TaskShape int

// Task cost shapes.
const (
	// RandomTasks draws costs uniformly in [base, base*(1+spread)].
	RandomTasks TaskShape = iota
	// TriangularTasks makes cost decrease linearly with task index, as
	// in a triangular solve: task 0 costs base*(1+spread), the last
	// task costs base. Contiguous static blocks are then maximally
	// imbalanced.
	TriangularTasks
)

// String returns the shape name.
func (s TaskShape) String() string {
	switch s {
	case RandomTasks:
		return "random"
	case TriangularTasks:
		return "triangular"
	}
	return fmt.Sprintf("TaskShape(%d)", int(s))
}

// MasterWorkerConfig parameterizes a task-farm run.
type MasterWorkerConfig struct {
	// Procs is the total number of ranks; rank 0 is the master, the
	// rest are workers.
	Procs int
	// Tasks is the number of tasks.
	Tasks int
	// TaskBase is the minimum task cost in virtual seconds; TaskSpread
	// scales the heterogeneity (cost in [base, base*(1+spread)]).
	TaskBase, TaskSpread float64
	// TaskBytes is the size of a task and of a result message.
	TaskBytes int
	// Shape selects the task-cost distribution.
	Shape TaskShape
	// Schedule is the assignment policy.
	Schedule Schedule
	// Seed selects the task-cost stream.
	Seed uint64
	// Cost is the communication cost model; zero selects the default.
	Cost mpi.CostModel
	// Sink, when non-nil, receives every instrumented event live while
	// the run executes; it must be concurrency-safe.
	Sink trace.Sink
	// Straggler and StragglerFactor inject a persistent straggler: when
	// StragglerFactor > 0, worker rank Straggler computes each task
	// StragglerFactor times slower. Task results (and the checksum) are
	// unchanged — the worker is slow, not wrong. 0 disables.
	Straggler       int
	StragglerFactor float64
	// Rebalance, when non-nil, runs the farm adaptively: the run splits
	// into Rounds dispatch rounds, each dispatching an equal fraction of
	// every worker's remaining queue; after every round the ranks
	// allgather their measured compute time and the controller reassigns
	// queued (not yet dispatched) tasks between workers' queues.
	// Reassignment is free — the master simply dispatches a queued task
	// to a different worker — which is exactly why task farms are the
	// easiest workloads to rebalance. When nil the dispatch-all-then-
	// collect legacy path runs, bit-identical to previous versions.
	Rebalance Rebalancer
	// Rounds is how many dispatch rounds the adaptive mode uses. 0
	// means 8.
	Rounds int
}

// DefaultMasterWorker returns a 16-rank farm with 120 heterogeneous
// tasks.
func DefaultMasterWorker() MasterWorkerConfig {
	return MasterWorkerConfig{
		Procs:      16,
		Tasks:      120,
		TaskBase:   0.05,
		TaskSpread: 4,
		TaskBytes:  1 << 16,
		Seed:       42,
		Cost:       mpi.DefaultCostModel(),
	}
}

// costs generates the task cost vector of the configuration.
func (cfg MasterWorkerConfig) costs() []float64 {
	if cfg.Shape == TriangularTasks {
		out := make([]float64, cfg.Tasks)
		for i := range out {
			frac := 1 - float64(i)/float64(cfg.Tasks-1)
			out[i] = cfg.TaskBase * (1 + cfg.TaskSpread*frac)
		}
		return out
	}
	return taskCosts(cfg.Tasks, cfg.TaskBase, cfg.TaskSpread, cfg.Seed)
}

// assign plans which worker executes each task. Workers are numbered
// 0..workers-1 (rank = worker + 1).
func assign(costs []float64, workers int, schedule Schedule) [][]int {
	plan := make([][]int, workers)
	switch schedule {
	case DynamicSchedule:
		// Greedy list scheduling: each task goes to the worker with the
		// smallest accumulated load.
		load := make([]float64, workers)
		for t, cost := range costs {
			best := 0
			for w := 1; w < workers; w++ {
				if load[w] < load[best] {
					best = w
				}
			}
			plan[best] = append(plan[best], t)
			load[best] += cost
		}
	default: // StaticSchedule
		per := (len(costs) + workers - 1) / workers
		for t := range costs {
			w := t / per
			if w >= workers {
				w = workers - 1
			}
			plan[w] = append(plan[w], t)
		}
	}
	return plan
}

// MasterWorker runs the task farm and returns its measurements. The
// master dispatches task descriptors (cost as payload), workers compute
// for the task's cost and return a result; a final barrier and reduce
// close the run.
func MasterWorker(cfg MasterWorkerConfig) (*Result, error) {
	if err := validateCommon(cfg.Procs, cfg.Tasks); err != nil {
		return nil, err
	}
	// Finiteness checks are explicit: `TaskBase <= 0` is false for NaN,
	// which would otherwise flow into every task cost.
	if cfg.TaskBase <= 0 || !isFinite(cfg.TaskBase) {
		return nil, fmt.Errorf("apps: bad task base %g", cfg.TaskBase)
	}
	if cfg.TaskSpread < 0 || !isFinite(cfg.TaskSpread) {
		return nil, fmt.Errorf("apps: bad task spread %g", cfg.TaskSpread)
	}
	if cfg.TaskBytes < 0 {
		return nil, fmt.Errorf("apps: negative task bytes %d", cfg.TaskBytes)
	}
	if cfg.StragglerFactor < 0 || !isFinite(cfg.StragglerFactor) {
		return nil, fmt.Errorf("apps: bad straggler factor %g", cfg.StragglerFactor)
	}
	if cfg.StragglerFactor > 0 && (cfg.Straggler < 1 || cfg.Straggler >= cfg.Procs) {
		return nil, fmt.Errorf("apps: straggler rank %d is not a worker in [1, %d)", cfg.Straggler, cfg.Procs)
	}
	if cfg.Rounds < 0 {
		return nil, fmt.Errorf("apps: negative rounds %d", cfg.Rounds)
	}
	workers := cfg.Procs - 1
	// Tags are derived as (round*workers + worker)*2 (+1 for results);
	// reject configurations whose tag space would overflow int before a
	// silent wraparound can alias two in-flight messages.
	if cfg.Tasks > (math.MaxInt-2*workers)/(2*workers)-1 {
		return nil, fmt.Errorf("apps: %d tasks on %d workers exhausts the tag space", cfg.Tasks, workers)
	}
	if cfg.Cost == (mpi.CostModel{}) {
		cfg.Cost = mpi.DefaultCostModel()
	}
	world, err := mpi.NewWorld(cfg.Procs, cfg.Cost)
	if err != nil {
		return nil, err
	}
	if cfg.Sink != nil {
		world.SetSink(cfg.Sink)
	}
	costs := cfg.costs()
	plan := assign(costs, workers, cfg.Schedule)
	if cfg.Rebalance != nil {
		return masterWorkerAdaptive(cfg, world, costs, plan)
	}

	var checksum float64
	runErr := world.Run(func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			return master(c, costs, plan, cfg.TaskBytes, &checksum)
		}
		return worker(c, cfg.TaskBytes, mwMult(cfg, c.Rank()))
	})
	if runErr != nil {
		return nil, runErr
	}
	return finish(world, mwRegions, checksum)
}

// mwMult returns the rank's execution-speed multiplier.
func mwMult(cfg MasterWorkerConfig, rank int) float64 {
	if cfg.StragglerFactor > 0 && rank == cfg.Straggler {
		return cfg.StragglerFactor
	}
	return 1
}

// masterWorkerAdaptive is the rebalancing farm: the run splits into
// rounds, each dispatching 1/(rounds-left) of every worker's remaining
// queue, and after each round every rank joins a boundary — allgather
// the measured compute times, ask the controller for a plan, and
// reassign queued tasks between the (SPMD-replicated) worker queues.
// Dispatching a fraction of the queue (rather than a fixed count) is
// what couples queue load to per-round load, so moving queued tasks
// changes what the next measurement sees. Reassignment costs nothing on
// the wire: a queued task has not left the master yet, it is simply
// dispatched elsewhere next round.
func masterWorkerAdaptive(cfg MasterWorkerConfig, world *mpi.World, costs []float64, plan [][]int) (*Result, error) {
	workers := cfg.Procs - 1
	rounds := cfg.Rounds
	if rounds == 0 {
		rounds = 8
	}
	regions := append(append([]string(nil), mwRegions...), MWRebalanceRegion)
	var checksum float64
	runErr := world.Run(func(c *mpi.Comm) error {
		// Every rank replays the same queue bookkeeping, so dispatch
		// counts, tags and reassignments agree without extra messages.
		queues := make([][]int, workers)
		remaining := 0
		for w, tasks := range plan {
			queues[w] = append([]int(nil), tasks...)
			remaining += len(tasks)
		}
		sent := make([]int, workers) // per-worker dispatch counters, for tags
		mult := mwMult(cfg, c.Rank())
		total := 0.0
		for phase := 0; remaining > 0; phase++ {
			left := rounds - phase
			if left < 1 {
				left = 1
			}
			take := make([]int, workers)
			for w := range queues {
				take[w] = (len(queues[w]) + left - 1) / left
			}
			busy := 0.0
			if c.Rank() == 0 {
				if err := c.EnterRegion(mwRegions[0]); err != nil {
					return err
				}
				for w, n := range take {
					for i := 0; i < n; i++ {
						t := queues[w][i]
						if err := c.SendData(w+1, tagFor(workers, w, sent[w]+i), cfg.TaskBytes, costs[t]); err != nil {
							return err
						}
					}
				}
				if err := c.ExitRegion(); err != nil {
					return err
				}
				if err := c.EnterRegion(mwRegions[2]); err != nil {
					return err
				}
				for w, n := range take {
					for i := 0; i < n; i++ {
						_, payload, err := c.RecvData(w+1, resultTag(workers, w, sent[w]+i))
						if err != nil {
							return err
						}
						v, ok := payload.(float64)
						if !ok {
							return fmt.Errorf("apps: bad result payload %T", payload)
						}
						total += v
					}
				}
				if err := c.ExitRegion(); err != nil {
					return err
				}
			} else {
				w := c.Rank() - 1
				if err := c.EnterRegion(mwRegions[1]); err != nil {
					return err
				}
				for i := 0; i < take[w]; i++ {
					_, payload, err := c.RecvData(0, tagFor(workers, w, sent[w]+i))
					if err != nil {
						return err
					}
					cost, ok := payload.(float64)
					if !ok {
						return fmt.Errorf("apps: bad task payload %T", payload)
					}
					if err := c.Compute(cost * mult); err != nil {
						return err
					}
					busy += cost * mult
					if err := c.SendData(0, resultTag(workers, w, sent[w]+i), cfg.TaskBytes, cost*2); err != nil {
						return err
					}
				}
				if err := c.ExitRegion(); err != nil {
					return err
				}
			}
			for w := range queues {
				queues[w] = queues[w][take[w]:]
				sent[w] += take[w]
				remaining -= take[w]
			}
			// Boundary: measure, decide, reassign queued tasks.
			if err := c.EnterRegion(MWRebalanceRegion); err != nil {
				return err
			}
			loads, err := c.AllgatherValues(busy, 8)
			if err != nil {
				return err
			}
			// The master does no task work; the plan is over workers only.
			decided, err := cfg.Rebalance.Decide(phase, loads[1:])
			if err != nil {
				return err
			}
			// A planned amount is one round's worth of load; the queue
			// holds rounds-left more of them, so scale the queue-side
			// transfer to change the *next* round's load by the amount.
			if after := left - 1; after > 0 {
				for _, m := range decided.Moves {
					moveTasks(queues, costs, m.From, m.To, m.Amount/mwMult(cfg, m.From+1)*float64(after))
				}
			}
			if err := c.Barrier(); err != nil {
				return err
			}
			if err := c.ExitRegion(); err != nil {
				return err
			}
		}
		// Close the run together, as the legacy path does.
		if err := c.EnterRegion(mwRegions[2]); err != nil {
			return err
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if c.Rank() == 0 {
			checksum = total
		}
		if _, err := c.ReduceSum(0, total, 8); err != nil {
			return err
		}
		return c.ExitRegion()
	})
	if runErr != nil {
		return nil, runErr
	}
	return finish(world, regions, checksum)
}

// moveTasks reassigns queued tasks from the tail of one worker's queue
// to another until about amount base-cost seconds have moved. Every rank
// applies the identical reassignment, keeping the queues SPMD-coherent.
func moveTasks(queues [][]int, costs []float64, from, to int, amount float64) {
	if from < 0 || from >= len(queues) || to < 0 || to >= len(queues) || from == to {
		return
	}
	moved := 0.0
	for len(queues[from]) > 0 && moved < amount {
		last := len(queues[from]) - 1
		t := queues[from][last]
		c := costs[t]
		if moved+c/2 > amount {
			break
		}
		queues[from] = queues[from][:last]
		queues[to] = append(queues[to], t)
		moved += c
	}
}

// master dispatches each worker's task list, collects the results, and
// verifies the checksum.
func master(c *mpi.Comm, costs []float64, plan [][]int, bytes int, checksum *float64) error {
	// Dispatch: one message per task, in plan order interleaved across
	// workers so early tasks reach every worker quickly.
	if err := c.EnterRegion(mwRegions[0]); err != nil {
		return err
	}
	maxTasks := 0
	for _, tasks := range plan {
		if len(tasks) > maxTasks {
			maxTasks = len(tasks)
		}
	}
	workers := len(plan)
	for round := 0; round < maxTasks; round++ {
		for w, tasks := range plan {
			if round >= len(tasks) {
				continue
			}
			t := tasks[round]
			if err := c.SendData(w+1, tagFor(workers, w, round), bytes, costs[t]); err != nil {
				return err
			}
		}
	}
	// Termination: an end-of-tasks marker per worker, on the tag the
	// worker will poll right after its last task.
	for w, tasks := range plan {
		if err := c.SendData(w+1, tagFor(workers, w, len(tasks)), 0, nil); err != nil {
			return err
		}
	}
	if err := c.ExitRegion(); err != nil {
		return err
	}
	// Collect: one result per task, in the same order.
	if err := c.EnterRegion(mwRegions[2]); err != nil {
		return err
	}
	total := 0.0
	for round := 0; round < maxTasks; round++ {
		for w, tasks := range plan {
			if round >= len(tasks) {
				continue
			}
			_, payload, err := c.RecvData(w+1, resultTag(workers, w, round))
			if err != nil {
				return err
			}
			v, ok := payload.(float64)
			if !ok {
				return fmt.Errorf("apps: bad result payload %T", payload)
			}
			total += v
		}
	}
	*checksum = total
	// Close the run together with the workers.
	if err := c.Barrier(); err != nil {
		return err
	}
	if _, err := c.ReduceSum(0, total, 8); err != nil {
		return err
	}
	return c.ExitRegion()
}

// worker receives tasks until the termination marker, computing each
// (mult times slower for a straggler) and returning a result.
func worker(c *mpi.Comm, bytes int, mult float64) error {
	w := c.Rank() - 1
	workers := c.Size() - 1
	if err := c.EnterRegion(mwRegions[1]); err != nil {
		return err
	}
	for round := 0; ; round++ {
		_, payload, err := c.RecvData(0, tagFor(workers, w, round))
		if err != nil {
			return err
		}
		cost, ok := payload.(float64)
		if !ok { // termination marker
			break
		}
		if err := c.Compute(cost * mult); err != nil {
			return err
		}
		// The "result" is a deterministic function of the cost.
		if err := c.SendData(0, resultTag(workers, w, round), bytes, cost*2); err != nil {
			return err
		}
	}
	if err := c.ExitRegion(); err != nil {
		return err
	}
	if err := c.EnterRegion(mwRegions[2]); err != nil {
		return err
	}
	if err := c.Barrier(); err != nil {
		return err
	}
	if _, err := c.ReduceSum(0, 0, 8); err != nil {
		return err
	}
	return c.ExitRegion()
}

// tagFor and resultTag derive collision-free message tags from (worker,
// round). Interleaving by round — (round*workers + worker)*2, +1 for the
// result direction — is a bijection for 0 <= worker < workers, so no two
// (worker, round) pairs ever share a tag. The previous scheme,
// worker*100000 + round*2, silently aliased worker w at round 50000 with
// worker w+1 at round 0 (and overflowed for large worker counts);
// MasterWorker bounds Tasks so these never overflow int.
func tagFor(workers, worker, round int) int {
	return (round*workers + worker) * 2
}

func resultTag(workers, worker, round int) int {
	return (round*workers+worker)*2 + 1
}
