package apps

import (
	"fmt"

	"loadimb/internal/mpi"
	"loadimb/internal/trace"
)

// Master-worker region names.
var mwRegions = []string{"dispatch", "work", "collect"}

// Schedule selects the master-worker assignment policy.
type Schedule int

// Assignment policies.
const (
	// StaticSchedule pre-partitions tasks into contiguous blocks, one
	// per worker: with heterogeneous costs, some workers finish early
	// and the imbalance shows in the collect phase.
	StaticSchedule Schedule = iota
	// DynamicSchedule assigns each task to the worker that would finish
	// it earliest (greedy list scheduling over the known costs), the
	// classic repair for heterogeneous tasks.
	DynamicSchedule
)

// String returns the schedule name.
func (s Schedule) String() string {
	switch s {
	case StaticSchedule:
		return "static"
	case DynamicSchedule:
		return "dynamic"
	}
	return fmt.Sprintf("Schedule(%d)", int(s))
}

// TaskShape selects how task costs vary.
type TaskShape int

// Task cost shapes.
const (
	// RandomTasks draws costs uniformly in [base, base*(1+spread)].
	RandomTasks TaskShape = iota
	// TriangularTasks makes cost decrease linearly with task index, as
	// in a triangular solve: task 0 costs base*(1+spread), the last
	// task costs base. Contiguous static blocks are then maximally
	// imbalanced.
	TriangularTasks
)

// String returns the shape name.
func (s TaskShape) String() string {
	switch s {
	case RandomTasks:
		return "random"
	case TriangularTasks:
		return "triangular"
	}
	return fmt.Sprintf("TaskShape(%d)", int(s))
}

// MasterWorkerConfig parameterizes a task-farm run.
type MasterWorkerConfig struct {
	// Procs is the total number of ranks; rank 0 is the master, the
	// rest are workers.
	Procs int
	// Tasks is the number of tasks.
	Tasks int
	// TaskBase is the minimum task cost in virtual seconds; TaskSpread
	// scales the heterogeneity (cost in [base, base*(1+spread)]).
	TaskBase, TaskSpread float64
	// TaskBytes is the size of a task and of a result message.
	TaskBytes int
	// Shape selects the task-cost distribution.
	Shape TaskShape
	// Schedule is the assignment policy.
	Schedule Schedule
	// Seed selects the task-cost stream.
	Seed uint64
	// Cost is the communication cost model; zero selects the default.
	Cost mpi.CostModel
	// Sink, when non-nil, receives every instrumented event live while
	// the run executes; it must be concurrency-safe.
	Sink trace.Sink
}

// DefaultMasterWorker returns a 16-rank farm with 120 heterogeneous
// tasks.
func DefaultMasterWorker() MasterWorkerConfig {
	return MasterWorkerConfig{
		Procs:      16,
		Tasks:      120,
		TaskBase:   0.05,
		TaskSpread: 4,
		TaskBytes:  1 << 16,
		Seed:       42,
		Cost:       mpi.DefaultCostModel(),
	}
}

// costs generates the task cost vector of the configuration.
func (cfg MasterWorkerConfig) costs() []float64 {
	if cfg.Shape == TriangularTasks {
		out := make([]float64, cfg.Tasks)
		for i := range out {
			frac := 1 - float64(i)/float64(cfg.Tasks-1)
			out[i] = cfg.TaskBase * (1 + cfg.TaskSpread*frac)
		}
		return out
	}
	return taskCosts(cfg.Tasks, cfg.TaskBase, cfg.TaskSpread, cfg.Seed)
}

// assign plans which worker executes each task. Workers are numbered
// 0..workers-1 (rank = worker + 1).
func assign(costs []float64, workers int, schedule Schedule) [][]int {
	plan := make([][]int, workers)
	switch schedule {
	case DynamicSchedule:
		// Greedy list scheduling: each task goes to the worker with the
		// smallest accumulated load.
		load := make([]float64, workers)
		for t, cost := range costs {
			best := 0
			for w := 1; w < workers; w++ {
				if load[w] < load[best] {
					best = w
				}
			}
			plan[best] = append(plan[best], t)
			load[best] += cost
		}
	default: // StaticSchedule
		per := (len(costs) + workers - 1) / workers
		for t := range costs {
			w := t / per
			if w >= workers {
				w = workers - 1
			}
			plan[w] = append(plan[w], t)
		}
	}
	return plan
}

// MasterWorker runs the task farm and returns its measurements. The
// master dispatches task descriptors (cost as payload), workers compute
// for the task's cost and return a result; a final barrier and reduce
// close the run.
func MasterWorker(cfg MasterWorkerConfig) (*Result, error) {
	if err := validateCommon(cfg.Procs, cfg.Tasks); err != nil {
		return nil, err
	}
	if cfg.TaskBase <= 0 || cfg.TaskSpread < 0 {
		return nil, fmt.Errorf("apps: bad task costs base %g spread %g", cfg.TaskBase, cfg.TaskSpread)
	}
	if cfg.TaskBytes < 0 {
		return nil, fmt.Errorf("apps: negative task bytes %d", cfg.TaskBytes)
	}
	if cfg.Cost == (mpi.CostModel{}) {
		cfg.Cost = mpi.DefaultCostModel()
	}
	world, err := mpi.NewWorld(cfg.Procs, cfg.Cost)
	if err != nil {
		return nil, err
	}
	if cfg.Sink != nil {
		world.SetSink(cfg.Sink)
	}
	costs := cfg.costs()
	workers := cfg.Procs - 1
	plan := assign(costs, workers, cfg.Schedule)

	var checksum float64
	runErr := world.Run(func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			return master(c, costs, plan, cfg.TaskBytes, &checksum)
		}
		return worker(c, cfg.TaskBytes)
	})
	if runErr != nil {
		return nil, runErr
	}
	return finish(world, mwRegions, checksum)
}

// master dispatches each worker's task list, collects the results, and
// verifies the checksum.
func master(c *mpi.Comm, costs []float64, plan [][]int, bytes int, checksum *float64) error {
	// Dispatch: one message per task, in plan order interleaved across
	// workers so early tasks reach every worker quickly.
	if err := c.EnterRegion(mwRegions[0]); err != nil {
		return err
	}
	maxTasks := 0
	for _, tasks := range plan {
		if len(tasks) > maxTasks {
			maxTasks = len(tasks)
		}
	}
	for round := 0; round < maxTasks; round++ {
		for w, tasks := range plan {
			if round >= len(tasks) {
				continue
			}
			t := tasks[round]
			if err := c.SendData(w+1, tagFor(w, round), bytes, costs[t]); err != nil {
				return err
			}
		}
	}
	// Termination: an end-of-tasks marker per worker, on the tag the
	// worker will poll right after its last task.
	for w, tasks := range plan {
		if err := c.SendData(w+1, tagFor(w, len(tasks)), 0, nil); err != nil {
			return err
		}
	}
	if err := c.ExitRegion(); err != nil {
		return err
	}
	// Collect: one result per task, in the same order.
	if err := c.EnterRegion(mwRegions[2]); err != nil {
		return err
	}
	total := 0.0
	for round := 0; round < maxTasks; round++ {
		for w, tasks := range plan {
			if round >= len(tasks) {
				continue
			}
			_, payload, err := c.RecvData(w+1, resultTag(w, round))
			if err != nil {
				return err
			}
			v, ok := payload.(float64)
			if !ok {
				return fmt.Errorf("apps: bad result payload %T", payload)
			}
			total += v
		}
	}
	*checksum = total
	// Close the run together with the workers.
	if err := c.Barrier(); err != nil {
		return err
	}
	if _, err := c.ReduceSum(0, total, 8); err != nil {
		return err
	}
	return c.ExitRegion()
}

// worker receives tasks until the termination marker, computing each and
// returning a result.
func worker(c *mpi.Comm, bytes int) error {
	w := c.Rank() - 1
	if err := c.EnterRegion(mwRegions[1]); err != nil {
		return err
	}
	for round := 0; ; round++ {
		_, payload, err := c.RecvData(0, tagFor(w, round))
		if err != nil {
			return err
		}
		cost, ok := payload.(float64)
		if !ok { // termination marker
			break
		}
		if err := c.Compute(cost); err != nil {
			return err
		}
		// The "result" is a deterministic function of the cost.
		if err := c.SendData(0, resultTag(w, round), bytes, cost*2); err != nil {
			return err
		}
	}
	if err := c.ExitRegion(); err != nil {
		return err
	}
	if err := c.EnterRegion(mwRegions[2]); err != nil {
		return err
	}
	if err := c.Barrier(); err != nil {
		return err
	}
	if _, err := c.ReduceSum(0, 0, 8); err != nil {
		return err
	}
	return c.ExitRegion()
}

func tagFor(worker, round int) int    { return worker*100000 + round*2 }
func resultTag(worker, round int) int { return worker*100000 + round*2 + 1 }
