package apps

import (
	"testing"

	"loadimb/internal/rebalance"
)

// The rebalance benchmarks drive the acceptance scenarios end to end —
// a persistent 5x straggler under each policy — and report the numbers
// the paper's closed loop is judged by: makespan, the achieved ID_P,
// and how many decision rounds the controller needed to reach its
// target. scripts/bench_rebalance.sh turns these into
// BENCH_rebalance.json and checks the acceptance floors.

func benchAMR(b *testing.B, policy string, target float64) {
	b.ReportAllocs()
	var makespan float64
	var stats rebalance.Stats
	for i := 0; i < b.N; i++ {
		cfg := stragglerAMR(3)
		var ctrl *rebalance.Controller
		if policy != "" {
			var err error
			ctrl, err = rebalance.New(policy, rebalance.Options{Target: target})
			if err != nil {
				b.Fatal(err)
			}
			cfg.Rebalance = ctrl
		}
		res, err := AMR(cfg)
		if err != nil {
			b.Fatal(err)
		}
		makespan = res.Makespan
		if ctrl != nil {
			stats = ctrl.Snapshot()
		}
	}
	b.ReportMetric(makespan, "makespan_s")
	if policy != "" {
		b.ReportMetric(stats.AchievedID, "id_p")
		b.ReportMetric(float64(stats.RoundsToTarget), "rounds_to_target")
		b.ReportMetric(float64(stats.Migrations), "migrations")
	}
}

func benchMW(b *testing.B, policy string, target float64) {
	b.ReportAllocs()
	var makespan float64
	var stats rebalance.Stats
	for i := 0; i < b.N; i++ {
		cfg := stragglerMW()
		var ctrl *rebalance.Controller
		if policy != "" {
			var err error
			ctrl, err = rebalance.New(policy, rebalance.Options{Target: target})
			if err != nil {
				b.Fatal(err)
			}
			cfg.Rebalance = ctrl
		}
		res, err := MasterWorker(cfg)
		if err != nil {
			b.Fatal(err)
		}
		makespan = res.Makespan
		if ctrl != nil {
			stats = ctrl.Snapshot()
		}
	}
	b.ReportMetric(makespan, "makespan_s")
	if policy != "" {
		b.ReportMetric(stats.AchievedID, "id_p")
		b.ReportMetric(float64(stats.RoundsToTarget), "rounds_to_target")
		b.ReportMetric(float64(stats.Migrations), "migrations")
	}
}

func BenchmarkRebalanceAMR(b *testing.B) {
	b.Run("baseline", func(b *testing.B) { benchAMR(b, "", 0) })
	b.Run("reactive", func(b *testing.B) { benchAMR(b, rebalance.PolicyReactive, 0.1) })
	b.Run("predictive", func(b *testing.B) { benchAMR(b, rebalance.PolicyPredictive, 0.1) })
}

func BenchmarkRebalanceMW(b *testing.B) {
	b.Run("baseline", func(b *testing.B) { benchMW(b, "", 0) })
	b.Run("reactive", func(b *testing.B) { benchMW(b, rebalance.PolicyReactive, 0.15) })
	b.Run("predictive", func(b *testing.B) { benchMW(b, rebalance.PolicyPredictive, 0.15) })
}
