package apps

import (
	"fmt"
	"math"

	"loadimb/internal/mpi"
	"loadimb/internal/trace"
)

// AMRConfig parameterizes the adaptive-mesh-refinement-style application:
// a moving refined feature concentrates extra work on a shifting subset
// of ranks, so each phase has a different imbalance pattern — the
// time-varying case static decompositions handle worst. Each phase is
// instrumented as its own code region, so the methodology localizes the
// imbalance phase by phase.
type AMRConfig struct {
	// Procs is the number of ranks.
	Procs int
	// Phases is the number of refinement phases (each one region).
	Phases int
	// BaseWork is the per-rank computation per phase outside the
	// feature, in virtual seconds.
	BaseWork float64
	// RefineFactor multiplies the work of ranks inside the feature.
	RefineFactor float64
	// FeatureWidth is how many ranks the feature covers.
	FeatureWidth int
	// FaceBytes is the halo size exchanged each phase.
	FaceBytes int
	// Cost is the communication cost model; zero selects the default.
	Cost mpi.CostModel
	// Sink, when non-nil, receives every instrumented event live while
	// the run executes; it must be concurrency-safe.
	Sink trace.Sink
	// Straggler and StragglerFactor inject a persistent straggler: when
	// StragglerFactor > 0, rank Straggler's computation is multiplied by
	// the factor in every phase, on top of any refinement. Unlike the
	// moving feature, the slowdown sticks to one rank for the whole run —
	// the localized fault rank-similarity diagnosis names while whole-run
	// ID_P only reports that imbalance exists. 0 disables the injection.
	Straggler       int
	StragglerFactor float64
	// Sweeps repeats the feature's traversal: the run executes
	// Sweeps×Phases global phases, the feature restarting its sweep each
	// time. A recurring trajectory is what the predictive rebalancer's
	// phase matching anticipates. 0 means 1.
	Sweeps int
	// Rebalance, when non-nil, closes the loop: work is held as
	// migratable cells (CellsPerRank per rank initially, each carrying
	// 1/CellsPerRank of the rank's legacy work), and at every phase
	// boundary the ranks allgather their measured compute time, ask the
	// controller for a plan, and ship cells hottest→coldest inside the
	// AMRRebalanceRegion region. When nil the run takes the legacy
	// fixed-ownership path, bit-identical to previous versions.
	Rebalance Rebalancer
	// CellsPerRank is the migration granularity: how many equal cells
	// each rank's per-phase work is split into. Only used when Rebalance
	// is set; 0 means 64.
	CellsPerRank int
	// MigrateBytes is the wire size of one migrated cell, charging the
	// migration's communication cost. Only used when Rebalance is set;
	// 0 means 4 KiB.
	MigrateBytes int
}

// DefaultAMR returns a 16-rank run with 6 phases and a 3-rank feature
// refined 8x.
func DefaultAMR() AMRConfig {
	return AMRConfig{
		Procs:        16,
		Phases:       6,
		BaseWork:     0.05,
		RefineFactor: 8,
		FeatureWidth: 3,
		FaceBytes:    1 << 15,
		Cost:         mpi.DefaultCostModel(),
	}
}

// AMRRegionName returns the region name of phase i (0-based).
func AMRRegionName(i int) string { return fmt.Sprintf("phase %d", i+1) }

// AMRRebalanceRegion is the region the migration machinery (load
// allgather, cell transfers, the boundary barrier) is attributed to when
// rebalancing is enabled, so its overhead shows up in the cube instead
// of hiding inside the phases.
const AMRRebalanceRegion = "rebalance"

// featureCenter returns the rank at the feature's center during phase i:
// the feature sweeps across the ranks over the run.
func featureCenter(phase, phases, procs int) int {
	if phases <= 1 {
		return 0
	}
	return phase * (procs - 1) / (phases - 1)
}

// amrWork returns rank's computation for the phase. ExpectedAMRWork sums
// the same function, so the analytic checksum tracks every injection
// automatically.
func amrWork(cfg AMRConfig, phase, rank int) float64 {
	center := featureCenter(phase, cfg.Phases, cfg.Procs)
	dist := int(math.Abs(float64(rank - center)))
	work := cfg.BaseWork
	if dist <= cfg.FeatureWidth/2 {
		work *= cfg.RefineFactor
	}
	if cfg.StragglerFactor > 0 && rank == cfg.Straggler {
		work *= cfg.StragglerFactor
	}
	return work
}

// amrCellWork returns the machine-independent base work of one cell
// whose home is rank home during the (in-sweep) phase: refinement
// follows the cell's position in the domain, so a migrated cell keeps
// its refinement wherever it executes.
func amrCellWork(cfg AMRConfig, phase, home int) float64 {
	center := featureCenter(phase, cfg.Phases, cfg.Procs)
	dist := int(math.Abs(float64(home - center)))
	w := cfg.BaseWork
	if dist <= cfg.FeatureWidth/2 {
		w *= cfg.RefineFactor
	}
	return w / float64(cfg.CellsPerRank)
}

// amrMult returns the rank's execution-speed multiplier: the straggler
// pays StragglerFactor per unit of base work, wherever that work came
// from.
func amrMult(cfg AMRConfig, rank int) float64 {
	if cfg.StragglerFactor > 0 && rank == cfg.Straggler {
		return cfg.StragglerFactor
	}
	return 1
}

// cellGroup is one migrated batch: Count cells whose home is rank Home.
type cellGroup struct {
	Home, Count int
}

// pickCells drains up to amount load (at the sender's cost rate, using
// the finished phase's per-cell costs) from the ownership vector,
// hottest home first, and returns the migrated groups. The ownership is
// updated in place.
func pickCells(own []int, costs []float64, amount float64) []cellGroup {
	var groups []cellGroup
	for amount > 0 {
		best := -1
		for h, n := range own {
			if n > 0 && (best < 0 || costs[h] > costs[best]) {
				best = h
			}
		}
		if best < 0 || costs[best] <= 0 {
			break
		}
		k := int(amount/costs[best] + 0.5)
		if k <= 0 {
			break
		}
		if k > own[best] {
			k = own[best]
		}
		own[best] -= k
		amount -= float64(k) * costs[best]
		groups = append(groups, cellGroup{Home: best, Count: k})
	}
	return groups
}

func cellCount(groups []cellGroup) int {
	n := 0
	for _, g := range groups {
		n += g.Count
	}
	return n
}

// validateAMR normalizes defaults and rejects degenerate configurations
// — including non-finite float parameters, which plain range comparisons
// let through (NaN fails every <, so `BaseWork <= 0` does not catch a
// NaN BaseWork), and which the rebalancer would otherwise iterate on
// forever.
func validateAMR(cfg *AMRConfig) error {
	if cfg.Procs < 2 {
		return fmt.Errorf("apps: need at least 2 processors, got %d", cfg.Procs)
	}
	if cfg.Phases < 1 {
		return fmt.Errorf("apps: need at least 1 phase, got %d", cfg.Phases)
	}
	if cfg.BaseWork <= 0 || !isFinite(cfg.BaseWork) {
		return fmt.Errorf("apps: bad base work %g", cfg.BaseWork)
	}
	if cfg.RefineFactor < 1 || !isFinite(cfg.RefineFactor) {
		return fmt.Errorf("apps: bad refine factor %g", cfg.RefineFactor)
	}
	if cfg.FeatureWidth < 1 || cfg.FeatureWidth > cfg.Procs {
		return fmt.Errorf("apps: feature width %d out of [1, %d]", cfg.FeatureWidth, cfg.Procs)
	}
	if cfg.FaceBytes < 0 {
		return fmt.Errorf("apps: negative face bytes %d", cfg.FaceBytes)
	}
	if cfg.StragglerFactor < 0 || !isFinite(cfg.StragglerFactor) {
		return fmt.Errorf("apps: bad straggler factor %g", cfg.StragglerFactor)
	}
	if cfg.StragglerFactor > 0 && (cfg.Straggler < 0 || cfg.Straggler >= cfg.Procs) {
		return fmt.Errorf("apps: straggler rank %d out of [0, %d)", cfg.Straggler, cfg.Procs)
	}
	if cfg.Sweeps < 0 {
		return fmt.Errorf("apps: negative sweeps %d", cfg.Sweeps)
	}
	if cfg.Sweeps == 0 {
		cfg.Sweeps = 1
	}
	if cfg.CellsPerRank < 0 || cfg.MigrateBytes < 0 {
		return fmt.Errorf("apps: bad migration parameters cells %d bytes %d", cfg.CellsPerRank, cfg.MigrateBytes)
	}
	if cfg.Rebalance != nil {
		if cfg.CellsPerRank == 0 {
			cfg.CellsPerRank = 64
		}
		if cfg.MigrateBytes == 0 {
			cfg.MigrateBytes = 4 << 10
		}
	}
	if cfg.Cost == (mpi.CostModel{}) {
		cfg.Cost = mpi.DefaultCostModel()
	}
	return nil
}

func isFinite(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0)
}

// AMR runs the application and returns its measurements. The checksum is
// the total computation performed — with rebalancing enabled, the total
// machine-independent base work, which migration conserves — verified
// against the analytic value by the tests.
func AMR(cfg AMRConfig) (*Result, error) {
	if err := validateAMR(&cfg); err != nil {
		return nil, err
	}
	if cfg.Rebalance != nil || cfg.Sweeps > 1 {
		return amrAdaptive(cfg)
	}
	world, err := mpi.NewWorld(cfg.Procs, cfg.Cost)
	if err != nil {
		return nil, err
	}
	if cfg.Sink != nil {
		world.SetSink(cfg.Sink)
	}
	regions := make([]string, cfg.Phases)
	for i := range regions {
		regions[i] = AMRRegionName(i)
	}
	var checksum float64
	runErr := world.Run(func(c *mpi.Comm) error {
		for phase := 0; phase < cfg.Phases; phase++ {
			if err := c.EnterRegion(regions[phase]); err != nil {
				return err
			}
			work := amrWork(cfg, phase, c.Rank())
			if err := c.Compute(work); err != nil {
				return err
			}
			// Neighbor halo exchange, as in the CFD solver.
			if c.Rank()+1 < c.Size() {
				if err := c.Send(c.Rank()+1, phase*2, cfg.FaceBytes); err != nil {
					return err
				}
			}
			if c.Rank() > 0 {
				if err := c.Send(c.Rank()-1, phase*2+1, cfg.FaceBytes); err != nil {
					return err
				}
				if _, err := c.Recv(c.Rank()-1, phase*2); err != nil {
					return err
				}
			}
			if c.Rank()+1 < c.Size() {
				if _, err := c.Recv(c.Rank()+1, phase*2+1); err != nil {
					return err
				}
			}
			// Regrid: exchange load information and synchronize before
			// the next phase (where the feature moves).
			sum, err := c.AllreduceSum(work, 8)
			if err != nil {
				return err
			}
			if err := c.Barrier(); err != nil {
				return err
			}
			if err := c.ExitRegion(); err != nil {
				return err
			}
			if c.Rank() == 0 {
				checksum += sum // every rank sees the global phase work
			}
		}
		return nil
	})
	if runErr != nil {
		return nil, runErr
	}
	return finish(world, regions, checksum)
}

// amrAdaptive is the cell-ownership path: work is held as migratable
// cells and the Rebalance hook is consulted at every phase boundary. It
// also serves plain multi-sweep runs (Rebalance nil, Sweeps > 1), which
// simply never migrate.
func amrAdaptive(cfg AMRConfig) (*Result, error) {
	if cfg.CellsPerRank == 0 {
		cfg.CellsPerRank = 64
	}
	world, err := mpi.NewWorld(cfg.Procs, cfg.Cost)
	if err != nil {
		return nil, err
	}
	if cfg.Sink != nil {
		world.SetSink(cfg.Sink)
	}
	total := cfg.Sweeps * cfg.Phases
	regions := make([]string, total, total+1)
	for g := range regions {
		regions[g] = AMRRegionName(g)
	}
	if cfg.Rebalance != nil {
		regions = append(regions, AMRRebalanceRegion)
	}
	// Migration tags live above the halo tag space ([0, 2*total)); one
	// tag per boundary is enough because mailboxes are FIFO per
	// (src, dst, tag).
	migTag := func(boundary int) int { return 2*total + boundary }
	var checksum float64
	runErr := world.Run(func(c *mpi.Comm) error {
		// own[h] is how many cells homed at rank h this rank executes.
		own := make([]int, cfg.Procs)
		own[c.Rank()] = cfg.CellsPerRank
		costs := make([]float64, cfg.Procs) // per-cell base cost, by home
		for g := 0; g < total; g++ {
			phase := g % cfg.Phases
			for h := range costs {
				costs[h] = amrCellWork(cfg, phase, h)
			}
			baseWork := 0.0
			for h, n := range own {
				baseWork += float64(n) * costs[h]
			}
			work := baseWork * amrMult(cfg, c.Rank())
			if err := c.EnterRegion(regions[g]); err != nil {
				return err
			}
			if err := c.Compute(work); err != nil {
				return err
			}
			if c.Rank()+1 < c.Size() {
				if err := c.Send(c.Rank()+1, g*2, cfg.FaceBytes); err != nil {
					return err
				}
			}
			if c.Rank() > 0 {
				if err := c.Send(c.Rank()-1, g*2+1, cfg.FaceBytes); err != nil {
					return err
				}
				if _, err := c.Recv(c.Rank()-1, g*2); err != nil {
					return err
				}
			}
			if c.Rank()+1 < c.Size() {
				if _, err := c.Recv(c.Rank()+1, g*2+1); err != nil {
					return err
				}
			}
			// The checksum conserves under migration: it sums the
			// machine-independent base work, not the straggler-inflated
			// execution time.
			sum, err := c.AllreduceSum(baseWork, 8)
			if err != nil {
				return err
			}
			if err := c.Barrier(); err != nil {
				return err
			}
			if err := c.ExitRegion(); err != nil {
				return err
			}
			if c.Rank() == 0 {
				checksum += sum
			}
			if cfg.Rebalance == nil {
				continue
			}
			// Phase boundary: measure, decide, migrate.
			if err := c.EnterRegion(AMRRebalanceRegion); err != nil {
				return err
			}
			loads, err := c.AllgatherValues(work, 8)
			if err != nil {
				return err
			}
			plan, err := cfg.Rebalance.Decide(g, loads)
			if err != nil {
				return err
			}
			if g < total-1 { // nothing left to balance after the last phase
				for _, m := range plan.Moves {
					switch c.Rank() {
					case m.From:
						groups := pickCells(own, costs, m.Amount/amrMult(cfg, c.Rank()))
						bytes := cellCount(groups) * cfg.MigrateBytes
						if err := c.SendData(m.To, migTag(g), bytes, groups); err != nil {
							return err
						}
					case m.To:
						_, payload, err := c.RecvData(m.From, migTag(g))
						if err != nil {
							return err
						}
						groups, ok := payload.([]cellGroup)
						if !ok {
							return fmt.Errorf("apps: bad migration payload %T", payload)
						}
						for _, gr := range groups {
							own[gr.Home] += gr.Count
						}
					}
				}
			}
			if err := c.Barrier(); err != nil {
				return err
			}
			if err := c.ExitRegion(); err != nil {
				return err
			}
		}
		return nil
	})
	if runErr != nil {
		return nil, runErr
	}
	return finish(world, regions, checksum)
}

// ExpectedAMRWork returns the analytic total computation of a run: the
// sum over phases and ranks of the per-rank work.
func ExpectedAMRWork(cfg AMRConfig) float64 {
	total := 0.0
	for phase := 0; phase < cfg.Phases; phase++ {
		for rank := 0; rank < cfg.Procs; rank++ {
			total += amrWork(cfg, phase, rank)
		}
	}
	return total
}

// ExpectedAMRBaseWork returns the analytic checksum of an adaptive run:
// the total machine-independent base work over all sweeps, which cell
// migration conserves (a migrated cell keeps its refinement; only the
// straggler multiplier — excluded here — depends on where it runs).
func ExpectedAMRBaseWork(cfg AMRConfig) float64 {
	sweeps := cfg.Sweeps
	if sweeps == 0 {
		sweeps = 1
	}
	noStraggler := cfg
	noStraggler.StragglerFactor = 0
	return float64(sweeps) * ExpectedAMRWork(noStraggler)
}
