package apps

import (
	"fmt"
	"math"

	"loadimb/internal/mpi"
	"loadimb/internal/trace"
)

// AMRConfig parameterizes the adaptive-mesh-refinement-style application:
// a moving refined feature concentrates extra work on a shifting subset
// of ranks, so each phase has a different imbalance pattern — the
// time-varying case static decompositions handle worst. Each phase is
// instrumented as its own code region, so the methodology localizes the
// imbalance phase by phase.
type AMRConfig struct {
	// Procs is the number of ranks.
	Procs int
	// Phases is the number of refinement phases (each one region).
	Phases int
	// BaseWork is the per-rank computation per phase outside the
	// feature, in virtual seconds.
	BaseWork float64
	// RefineFactor multiplies the work of ranks inside the feature.
	RefineFactor float64
	// FeatureWidth is how many ranks the feature covers.
	FeatureWidth int
	// FaceBytes is the halo size exchanged each phase.
	FaceBytes int
	// Cost is the communication cost model; zero selects the default.
	Cost mpi.CostModel
	// Sink, when non-nil, receives every instrumented event live while
	// the run executes; it must be concurrency-safe.
	Sink trace.Sink
	// Straggler and StragglerFactor inject a persistent straggler: when
	// StragglerFactor > 0, rank Straggler's computation is multiplied by
	// the factor in every phase, on top of any refinement. Unlike the
	// moving feature, the slowdown sticks to one rank for the whole run —
	// the localized fault rank-similarity diagnosis names while whole-run
	// ID_P only reports that imbalance exists. 0 disables the injection.
	Straggler       int
	StragglerFactor float64
}

// DefaultAMR returns a 16-rank run with 6 phases and a 3-rank feature
// refined 8x.
func DefaultAMR() AMRConfig {
	return AMRConfig{
		Procs:        16,
		Phases:       6,
		BaseWork:     0.05,
		RefineFactor: 8,
		FeatureWidth: 3,
		FaceBytes:    1 << 15,
		Cost:         mpi.DefaultCostModel(),
	}
}

// AMRRegionName returns the region name of phase i (0-based).
func AMRRegionName(i int) string { return fmt.Sprintf("phase %d", i+1) }

// featureCenter returns the rank at the feature's center during phase i:
// the feature sweeps across the ranks over the run.
func featureCenter(phase, phases, procs int) int {
	if phases <= 1 {
		return 0
	}
	return phase * (procs - 1) / (phases - 1)
}

// amrWork returns rank's computation for the phase. ExpectedAMRWork sums
// the same function, so the analytic checksum tracks every injection
// automatically.
func amrWork(cfg AMRConfig, phase, rank int) float64 {
	center := featureCenter(phase, cfg.Phases, cfg.Procs)
	dist := int(math.Abs(float64(rank - center)))
	work := cfg.BaseWork
	if dist <= cfg.FeatureWidth/2 {
		work *= cfg.RefineFactor
	}
	if cfg.StragglerFactor > 0 && rank == cfg.Straggler {
		work *= cfg.StragglerFactor
	}
	return work
}

// AMR runs the application and returns its measurements. The checksum is
// the total computation performed, verified against the analytic value.
func AMR(cfg AMRConfig) (*Result, error) {
	if cfg.Procs < 2 {
		return nil, fmt.Errorf("apps: need at least 2 processors, got %d", cfg.Procs)
	}
	if cfg.Phases < 1 {
		return nil, fmt.Errorf("apps: need at least 1 phase, got %d", cfg.Phases)
	}
	if cfg.BaseWork <= 0 || cfg.RefineFactor < 1 {
		return nil, fmt.Errorf("apps: bad work parameters base %g refine %g", cfg.BaseWork, cfg.RefineFactor)
	}
	if cfg.FeatureWidth < 1 || cfg.FeatureWidth > cfg.Procs {
		return nil, fmt.Errorf("apps: feature width %d out of [1, %d]", cfg.FeatureWidth, cfg.Procs)
	}
	if cfg.FaceBytes < 0 {
		return nil, fmt.Errorf("apps: negative face bytes %d", cfg.FaceBytes)
	}
	if cfg.StragglerFactor < 0 {
		return nil, fmt.Errorf("apps: negative straggler factor %g", cfg.StragglerFactor)
	}
	if cfg.StragglerFactor > 0 && (cfg.Straggler < 0 || cfg.Straggler >= cfg.Procs) {
		return nil, fmt.Errorf("apps: straggler rank %d out of [0, %d)", cfg.Straggler, cfg.Procs)
	}
	if cfg.Cost == (mpi.CostModel{}) {
		cfg.Cost = mpi.DefaultCostModel()
	}
	world, err := mpi.NewWorld(cfg.Procs, cfg.Cost)
	if err != nil {
		return nil, err
	}
	if cfg.Sink != nil {
		world.SetSink(cfg.Sink)
	}
	regions := make([]string, cfg.Phases)
	for i := range regions {
		regions[i] = AMRRegionName(i)
	}
	var checksum float64
	runErr := world.Run(func(c *mpi.Comm) error {
		for phase := 0; phase < cfg.Phases; phase++ {
			if err := c.EnterRegion(regions[phase]); err != nil {
				return err
			}
			work := amrWork(cfg, phase, c.Rank())
			if err := c.Compute(work); err != nil {
				return err
			}
			// Neighbor halo exchange, as in the CFD solver.
			if c.Rank()+1 < c.Size() {
				if err := c.Send(c.Rank()+1, phase*2, cfg.FaceBytes); err != nil {
					return err
				}
			}
			if c.Rank() > 0 {
				if err := c.Send(c.Rank()-1, phase*2+1, cfg.FaceBytes); err != nil {
					return err
				}
				if _, err := c.Recv(c.Rank()-1, phase*2); err != nil {
					return err
				}
			}
			if c.Rank()+1 < c.Size() {
				if _, err := c.Recv(c.Rank()+1, phase*2+1); err != nil {
					return err
				}
			}
			// Regrid: exchange load information and synchronize before
			// the next phase (where the feature moves).
			sum, err := c.AllreduceSum(work, 8)
			if err != nil {
				return err
			}
			if err := c.Barrier(); err != nil {
				return err
			}
			if err := c.ExitRegion(); err != nil {
				return err
			}
			if c.Rank() == 0 {
				checksum += sum // every rank sees the global phase work
			}
		}
		return nil
	})
	if runErr != nil {
		return nil, runErr
	}
	return finish(world, regions, checksum)
}

// ExpectedAMRWork returns the analytic total computation of a run: the
// sum over phases and ranks of the per-rank work.
func ExpectedAMRWork(cfg AMRConfig) float64 {
	total := 0.0
	for phase := 0; phase < cfg.Phases; phase++ {
		for rank := 0; rank < cfg.Procs; rank++ {
			total += amrWork(cfg, phase, rank)
		}
	}
	return total
}
