package apps

import (
	"math"
	"testing"

	"loadimb/internal/baseline"
	"loadimb/internal/core"
	"loadimb/internal/mpi"
)

func fastMW(schedule Schedule) MasterWorkerConfig {
	cfg := DefaultMasterWorker()
	cfg.Procs = 8
	cfg.Tasks = 40
	cfg.Schedule = schedule
	return cfg
}

func TestMasterWorkerValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*MasterWorkerConfig)
	}{
		{"procs", func(c *MasterWorkerConfig) { c.Procs = 1 }},
		{"tasks", func(c *MasterWorkerConfig) { c.Tasks = 2 }},
		{"base", func(c *MasterWorkerConfig) { c.TaskBase = 0 }},
		{"spread", func(c *MasterWorkerConfig) { c.TaskSpread = -1 }},
		{"bytes", func(c *MasterWorkerConfig) { c.TaskBytes = -1 }},
	}
	for _, c := range cases {
		cfg := fastMW(StaticSchedule)
		c.mut(&cfg)
		if _, err := MasterWorker(cfg); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestMasterWorkerChecksum(t *testing.T) {
	cfg := fastMW(StaticSchedule)
	res, err := MasterWorker(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The checksum is 2x the sum of the task costs.
	want := 0.0
	for _, c := range taskCosts(cfg.Tasks, cfg.TaskBase, cfg.TaskSpread, cfg.Seed) {
		want += 2 * c
	}
	if math.Abs(res.Checksum-want) > 1e-9 {
		t.Errorf("checksum = %g, want %g", res.Checksum, want)
	}
}

func TestMasterWorkerRegions(t *testing.T) {
	res, err := MasterWorker(fastMW(StaticSchedule))
	if err != nil {
		t.Fatal(err)
	}
	cube := res.Cube
	if cube.NumRegions() != 3 {
		t.Fatalf("regions = %v", cube.Regions())
	}
	// The master computes nothing; workers compute in "work".
	jc := cube.ActivityIndex(mpi.ActComputation)
	v, err := cube.At(cube.RegionIndex("work"), jc, 0)
	if err != nil || v != 0 {
		t.Errorf("master compute = %g, %v", v, err)
	}
	w1, err := cube.At(cube.RegionIndex("work"), jc, 1)
	if err != nil || w1 <= 0 {
		t.Errorf("worker 1 compute = %g, %v", w1, err)
	}
}

func TestDynamicBeatsStatic(t *testing.T) {
	static, err := MasterWorker(fastMW(StaticSchedule))
	if err != nil {
		t.Fatal(err)
	}
	dynamic, err := MasterWorker(fastMW(DynamicSchedule))
	if err != nil {
		t.Fatal(err)
	}
	// Same work, same results.
	if math.Abs(static.Checksum-dynamic.Checksum) > 1e-9 {
		t.Fatalf("checksums differ: %g vs %g", static.Checksum, dynamic.Checksum)
	}
	// Dynamic scheduling finishes sooner...
	if dynamic.Makespan >= static.Makespan {
		t.Errorf("dynamic makespan %g should beat static %g", dynamic.Makespan, static.Makespan)
	}
	// ...and its computation is less imbalanced across the workers.
	imbalance := func(r *Result) float64 {
		cells, err := core.Dispersions(r.Cube, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		j := r.Cube.ActivityIndex(mpi.ActComputation)
		i := r.Cube.RegionIndex("work")
		if !cells[i][j].Defined {
			t.Fatal("work computation undefined")
		}
		return cells[i][j].ID
	}
	si, di := imbalance(static), imbalance(dynamic)
	if di >= si {
		t.Errorf("dynamic dispersion %g should beat static %g", di, si)
	}
}

func TestMasterWorkerDeterministic(t *testing.T) {
	a, err := MasterWorker(fastMW(DynamicSchedule))
	if err != nil {
		t.Fatal(err)
	}
	b, err := MasterWorker(fastMW(DynamicSchedule))
	if err != nil {
		t.Fatal(err)
	}
	if !a.Cube.EqualWithin(b.Cube, 0) || a.Makespan != b.Makespan {
		t.Error("master-worker runs should be deterministic")
	}
}

func TestScheduleString(t *testing.T) {
	for _, s := range []Schedule{StaticSchedule, DynamicSchedule, Schedule(9)} {
		if s.String() == "" {
			t.Errorf("empty String for %d", int(s))
		}
	}
}

func TestAssign(t *testing.T) {
	costs := []float64{5, 1, 1, 1, 1, 1}
	static := assign(costs, 2, StaticSchedule)
	if len(static[0]) != 3 || len(static[1]) != 3 {
		t.Errorf("static plan = %v", static)
	}
	dynamic := assign(costs, 2, DynamicSchedule)
	// Task 0 (cost 5) goes to worker 0; the five unit tasks to worker 1.
	if len(dynamic[0]) != 1 || dynamic[0][0] != 0 {
		t.Errorf("dynamic plan = %v", dynamic)
	}
	// Every task assigned exactly once.
	seen := map[int]bool{}
	for _, tasks := range dynamic {
		for _, task := range tasks {
			if seen[task] {
				t.Fatalf("task %d assigned twice", task)
			}
			seen[task] = true
		}
	}
	if len(seen) != len(costs) {
		t.Errorf("assigned %d of %d tasks", len(seen), len(costs))
	}
}

func fastWF() WavefrontConfig {
	cfg := DefaultWavefront()
	cfg.Procs = 6
	cfg.Sweeps = 5
	return cfg
}

func TestWavefrontValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*WavefrontConfig)
	}{
		{"procs", func(c *WavefrontConfig) { c.Procs = 1 }},
		{"sweeps", func(c *WavefrontConfig) { c.Sweeps = 0 }},
		{"cost", func(c *WavefrontConfig) { c.CellCost = 0 }},
		{"bytes", func(c *WavefrontConfig) { c.FaceBytes = -1 }},
	}
	for _, c := range cases {
		cfg := fastWF()
		c.mut(&cfg)
		if _, err := Wavefront(cfg); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestWavefrontChecksum(t *testing.T) {
	cfg := fastWF()
	res, err := Wavefront(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := ExpectedWavefrontChecksum(cfg.Procs, cfg.Sweeps)
	if math.Abs(res.Checksum-want) > 1e-9 {
		t.Errorf("checksum = %g, want %g", res.Checksum, want)
	}
}

func TestWavefrontBoundaryRanksWaitMost(t *testing.T) {
	cfg := fastWF()
	res, err := Wavefront(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cube := res.Cube
	jp2p := cube.ActivityIndex(mpi.ActPointToPoint)
	// In the east sweep, rank 0 never waits to receive (it starts the
	// wave) while the last rank waits through the whole pipeline fill.
	east := cube.RegionIndex("sweep east")
	first, err := cube.At(east, jp2p, 0)
	if err != nil {
		t.Fatal(err)
	}
	last, err := cube.At(east, jp2p, cfg.Procs-1)
	if err != nil {
		t.Fatal(err)
	}
	if last <= first {
		t.Errorf("pipeline fill: last rank p2p %g should exceed first rank's %g", last, first)
	}
	// The methodology flags the sweep regions' p2p as imbalanced.
	cells, err := core.Dispersions(cube, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !cells[east][jp2p].Defined || cells[east][jp2p].ID < 0.05 {
		t.Errorf("east sweep p2p dispersion = %+v, want clearly imbalanced", cells[east][jp2p])
	}
}

func TestWavefrontDeterministic(t *testing.T) {
	a, err := Wavefront(fastWF())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Wavefront(fastWF())
	if err != nil {
		t.Fatal(err)
	}
	if !a.Cube.EqualWithin(b.Cube, 0) {
		t.Error("wavefront runs should be deterministic")
	}
}

func TestAppsBaselineComparison(t *testing.T) {
	// The baseline imbalance-time metric agrees with the dispersion
	// index that static scheduling is worse.
	static, err := MasterWorker(fastMW(StaticSchedule))
	if err != nil {
		t.Fatal(err)
	}
	dynamic, err := MasterWorker(fastMW(DynamicSchedule))
	if err != nil {
		t.Fatal(err)
	}
	score := func(r *Result) float64 {
		ranked, err := baseline.RankRegions(r.Cube, baseline.ImbalanceTime)
		if err != nil {
			t.Fatal(err)
		}
		for _, rs := range ranked {
			if rs.Name == "work" {
				return rs.Score
			}
		}
		t.Fatal("work region not ranked")
		return 0
	}
	if score(dynamic) >= score(static) {
		t.Errorf("dynamic imbalance time %g should beat static %g", score(dynamic), score(static))
	}
}

func TestTriangularTasks(t *testing.T) {
	cfg := fastMW(StaticSchedule)
	cfg.Shape = TriangularTasks
	costs := cfg.costs()
	if len(costs) != cfg.Tasks {
		t.Fatalf("%d costs", len(costs))
	}
	// Strictly decreasing, from base*(1+spread) to base.
	for i := 1; i < len(costs); i++ {
		if costs[i] >= costs[i-1] {
			t.Fatalf("costs not decreasing at %d: %g >= %g", i, costs[i], costs[i-1])
		}
	}
	if math.Abs(costs[0]-cfg.TaskBase*(1+cfg.TaskSpread)) > 1e-12 {
		t.Errorf("first cost = %g", costs[0])
	}
	if math.Abs(costs[len(costs)-1]-cfg.TaskBase) > 1e-12 {
		t.Errorf("last cost = %g", costs[len(costs)-1])
	}
}

func TestTriangularStaticIsWorseThanRandom(t *testing.T) {
	random := fastMW(StaticSchedule)
	triangular := fastMW(StaticSchedule)
	triangular.Shape = TriangularTasks
	resR, err := MasterWorker(random)
	if err != nil {
		t.Fatal(err)
	}
	resT, err := MasterWorker(triangular)
	if err != nil {
		t.Fatal(err)
	}
	imb := func(r *Result) float64 {
		cells, err := core.Dispersions(r.Cube, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return cells[r.Cube.RegionIndex("work")][r.Cube.ActivityIndex(mpi.ActComputation)].ID
	}
	if imb(resT) <= imb(resR) {
		t.Errorf("triangular static dispersion %g should exceed random %g", imb(resT), imb(resR))
	}
}

func TestTaskShapeString(t *testing.T) {
	for _, s := range []TaskShape{RandomTasks, TriangularTasks, TaskShape(9)} {
		if s.String() == "" {
			t.Errorf("empty String for %d", int(s))
		}
	}
}
