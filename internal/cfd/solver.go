package cfd

import (
	"fmt"
	"math"

	"loadimb/internal/mpi"
	"loadimb/internal/rebalance"
)

// solver holds one rank's share of the distributed grid: rows interior
// rows of cols points each, plus one halo row above and below. The field
// u is relaxed toward the solution of a Laplace problem with fixed hot
// boundaries, so the residual gives the program a real numerical result.
type solver struct {
	comm *mpi.Comm
	spec []LoopSpec
	// rows is this rank's interior row count; cols the row width.
	rows, cols int
	// u[r][x] with r in [0, rows+1]: r = 0 and r = rows+1 are halos.
	u [][]float64
	// scratch holds the next sweep's values.
	scratch [][]float64
	// shares[p] is processor p's row fraction times P: the factor by
	// which its calibrated compute time deviates from the balanced
	// share. Each loop rotates the assignment (loop l charges this rank
	// shares[(rank+l) mod P]) — different kernels stress different
	// processors, and the partial cancellation keeps straggler waits
	// from piling up across loops, as the paper's measurements show.
	shares []float64
	// slowdown multiplies this rank's computation times when positive —
	// the injected straggler of Config.SlowRank/SlowFactor. Unlike the
	// rotated decomposition shares it sticks to one rank across all
	// loops, which is what makes it localizable by rank similarity.
	slowdown float64
	// adaptive switches compute to the rank's own row share (no loop
	// rotation): row migration then directly changes what the next
	// measurement sees. Set when the run has a Rebalancer.
	adaptive bool
	// allRows is the current full decomposition, identical on every rank
	// (migration flows are derived SPMD-deterministically); totalRows its
	// sum.
	allRows   []int
	totalRows int
	// busy accumulates this rank's charged compute seconds since the last
	// rebalance boundary.
	busy float64
}

func newSolver(c *mpi.Comm, spec []LoopSpec, allRows []int, cols, totalRows int) *solver {
	rows := allRows[c.Rank()]
	shares := make([]float64, len(allRows))
	for p, r := range allRows {
		shares[p] = float64(r) / float64(totalRows) * float64(len(allRows))
	}
	s := &solver{
		comm: c,
		spec: spec,
		rows: rows,
		cols: cols,
		u:    makeGrid(rows+2, cols),
		// The top and bottom global boundaries are hot (1.0); interior
		// starts cold. Rank 0's upper halo and the last rank's lower
		// halo act as the fixed boundary.
		scratch:   makeGrid(rows+2, cols),
		shares:    shares,
		allRows:   append([]int(nil), allRows...),
		totalRows: totalRows,
	}
	if c.Rank() == 0 {
		for x := 0; x < cols; x++ {
			s.u[0][x] = 1
			s.scratch[0][x] = 1
		}
	}
	if c.Rank() == c.Size()-1 {
		for x := 0; x < cols; x++ {
			s.u[rows+1][x] = 1
			s.scratch[rows+1][x] = 1
		}
	}
	return s
}

func makeGrid(rows, cols int) [][]float64 {
	g := make([][]float64, rows)
	flat := make([]float64, rows*cols)
	for r := range g {
		g[r], flat = flat[:cols:cols], flat[cols:]
	}
	return g
}

// compute charges the rank's calibrated computation time for loop li: the
// balanced per-iteration time scaled by the rank's (loop-rotated) share —
// or, in adaptive runs, by the rank's own row share, so that migrating
// rows changes the charged time.
func (s *solver) compute(li int, spec LoopSpec) error {
	share := s.shares[(s.comm.Rank()+li*7)%len(s.shares)]
	if s.adaptive {
		share = s.shares[s.comm.Rank()]
	}
	t := spec.ComputePerIter * share
	if s.slowdown > 0 {
		t *= s.slowdown
	}
	s.busy += t
	return s.comm.Compute(t)
}

// sweep performs one Jacobi relaxation over the interior rows and returns
// the local residual (sum of squared updates). It is real arithmetic; the
// virtual time it takes is charged by compute.
func (s *solver) sweep() float64 {
	res := 0.0
	for r := 1; r <= s.rows; r++ {
		for x := 0; x < s.cols; x++ {
			left, right := x-1, x+1
			if left < 0 {
				left = 0
			}
			if right >= s.cols {
				right = s.cols - 1
			}
			next := 0.25 * (s.u[r-1][x] + s.u[r+1][x] + s.u[r][left] + s.u[r][right])
			d := next - s.u[r][x]
			res += d * d
			s.scratch[r][x] = next
		}
	}
	for r := 1; r <= s.rows; r++ {
		copy(s.u[r], s.scratch[r])
	}
	return res
}

// exchangeHalo swaps boundary rows with the neighbor ranks, carrying the
// actual row data, and installs the received rows as halos. Messages
// traveling down the rank order use tag base; messages traveling up use
// base+1, so both partners of an exchange agree on the channel.
func (s *solver) exchangeHalo(bytes, base int) error {
	c := s.comm
	rank, size := c.Rank(), c.Size()
	tagDown, tagUp := base, base+1
	// Exchange with the lower neighbor: my last interior row goes down,
	// its first interior row comes up and becomes my lower halo.
	if rank+1 < size {
		if err := c.SendData(rank+1, tagDown, bytes, rowCopy(s.u[s.rows])); err != nil {
			return err
		}
	}
	// Exchange with the upper neighbor: my first interior row goes up,
	// its last interior row comes down and becomes my upper halo.
	if rank > 0 {
		if err := c.SendData(rank-1, tagUp, bytes, rowCopy(s.u[1])); err != nil {
			return err
		}
		_, payload, err := c.RecvData(rank-1, tagDown)
		if err != nil {
			return err
		}
		row, ok := payload.([]float64)
		if !ok || len(row) != s.cols {
			return fmt.Errorf("cfd: rank %d: bad upper halo payload %T", rank, payload)
		}
		copy(s.u[0], row)
	}
	if rank+1 < size {
		_, payload, err := c.RecvData(rank+1, tagUp)
		if err != nil {
			return err
		}
		row, ok := payload.([]float64)
		if !ok || len(row) != s.cols {
			return fmt.Errorf("cfd: rank %d: bad lower halo payload %T", rank, payload)
		}
		copy(s.u[s.rows+1], row)
	}
	return nil
}

func rowCopy(row []float64) []float64 {
	return append([]float64(nil), row...)
}

// iteration runs the seven loops once and returns the global residual of
// the pressure solve.
func (s *solver) iteration(iter int) (float64, error) {
	c := s.comm
	var globalResidual float64
	for li, spec := range s.spec {
		if err := c.EnterRegion(spec.Name); err != nil {
			return 0, err
		}
		if err := s.compute(li, spec); err != nil {
			return 0, err
		}
		// The pressure loop (first loop) performs the real sweep; its
		// residual is reduced globally below.
		var localRes float64
		if li == 0 {
			localRes = s.sweep()
		}
		if spec.P2PBytes > 0 {
			if err := s.exchangeHalo(spec.P2PBytes, iter*100+li*2); err != nil {
				return 0, err
			}
		}
		switch spec.Collective {
		case CollAllreduce:
			sum, err := c.AllreduceSum(localRes, spec.CollectiveBytes)
			if err != nil {
				return 0, err
			}
			if li == 0 {
				globalResidual = sum
			}
		case CollAlltoall:
			if err := c.Alltoall(spec.CollectiveBytes); err != nil {
				return 0, err
			}
		case CollReduce:
			if _, err := c.ReduceSum(0, localRes, spec.CollectiveBytes); err != nil {
				return 0, err
			}
		}
		if spec.Barrier {
			if err := c.Barrier(); err != nil {
				return 0, err
			}
		}
		if err := c.ExitRegion(); err != nil {
			return 0, err
		}
	}
	if math.IsNaN(globalResidual) {
		return 0, fmt.Errorf("cfd: residual diverged at iteration %d", iter)
	}
	return globalResidual, nil
}

// rebalanceStep is the adaptive run's iteration boundary: allgather the
// measured compute seconds, ask the controller for a plan, translate the
// plan into adjacent-rank row flows (rows only ever move between
// neighbors, keeping the decomposition contiguous) and ship the actual
// row data. Every rank derives the identical flows, so the transfers
// pair up without negotiation.
func (s *solver) rebalanceStep(iter int, reb Rebalancer) error {
	c := s.comm
	if err := c.EnterRegion(RebalanceRegion); err != nil {
		return err
	}
	busy := s.busy
	s.busy = 0
	loads, err := c.AllgatherValues(busy, 8)
	if err != nil {
		return err
	}
	plan, err := reb.Decide(iter, loads)
	if err != nil {
		return err
	}
	if err := s.migrateRows(rowFlows(s.allRows, loads, plan.Moves), iter); err != nil {
		return err
	}
	for p, r := range s.allRows {
		s.shares[p] = float64(r) / float64(s.totalRows) * float64(len(s.allRows))
	}
	if err := c.Barrier(); err != nil {
		return err
	}
	return c.ExitRegion()
}

// rowFlows converts a migration plan into per-boundary row flows.
// flows[b] > 0 moves that many rows from rank b down to rank b+1;
// flows[b] < 0 moves them up. The plan's load amounts are turned into
// whole rows at the source rank's measured per-row cost, the desired
// decomposition is clamped to keep every rank at least one row, and the
// boundaries are then settled top-down: once boundary b-1 is done, rank
// b's entire remaining surplus must cross boundary b.
func rowFlows(rows []int, loads []float64, moves []rebalance.Move) []int {
	next := append([]int(nil), rows...)
	// Round cumulatively per source rank: a straggler's rows are
	// expensive, so a single damped move can be worth less than one row —
	// accumulating across its moves still releases round(total) rows.
	running := make([]float64, len(rows))
	given := make([]int, len(rows))
	for _, m := range moves {
		if m.From < 0 || m.From >= len(rows) || m.To < 0 || m.To >= len(rows) {
			continue
		}
		perRow := loads[m.From] / float64(rows[m.From])
		if !(perRow > 0) {
			continue
		}
		running[m.From] += m.Amount / perRow
		k := int(running[m.From]+0.5) - given[m.From]
		if k > next[m.From]-1 {
			k = next[m.From] - 1
		}
		if k <= 0 {
			continue
		}
		given[m.From] += k
		next[m.From] -= k
		next[m.To] += k
	}
	cur := append([]int(nil), rows...)
	flows := make([]int, len(rows)-1)
	for b := range flows {
		f := cur[b] - next[b]
		if max := cur[b] - 1; f > max {
			f = max
		}
		if min := -(cur[b+1] - 1); f < min {
			f = min
		}
		flows[b] = f
		cur[b] -= f
		cur[b+1] += f
	}
	return flows
}

// migrateRows ships the flows' row data between adjacent ranks and
// rebuilds the local grid. Each rank settles its upper boundary before
// its lower one; a receive therefore only ever waits on an upper
// neighbor that is one step ahead, so the waiting chain runs strictly
// toward rank 0 and cannot cycle. Halos are refreshed afterwards so the
// next sweep sees exactly the same global grid as an unmigrated run.
func (s *solver) migrateRows(flows []int, iter int) error {
	changed := false
	for _, f := range flows {
		if f != 0 {
			changed = true
			break
		}
	}
	if !changed {
		return nil
	}
	c := s.comm
	rank := c.Rank()
	rowBytes := s.cols * 8
	tagDown, tagUp := iter*100+50, iter*100+51
	rows := append([][]float64(nil), s.u[1:s.rows+1]...)
	if rank > 0 {
		switch f := flows[rank-1]; {
		case f > 0: // rows arrive from above
			in, err := s.recvRows(rank-1, tagDown, f)
			if err != nil {
				return err
			}
			rows = append(in, rows...)
		case f < 0: // my first -f rows go up
			k := -f
			if err := c.SendData(rank-1, tagUp, k*rowBytes, copyRows(rows[:k])); err != nil {
				return err
			}
			rows = rows[k:]
		}
	}
	if rank+1 < c.Size() {
		switch f := flows[rank]; {
		case f > 0: // my last f rows go down
			if err := c.SendData(rank+1, tagDown, f*rowBytes, copyRows(rows[len(rows)-f:])); err != nil {
				return err
			}
			rows = rows[:len(rows)-f]
		case f < 0: // rows arrive from below
			in, err := s.recvRows(rank+1, tagUp, -f)
			if err != nil {
				return err
			}
			rows = append(rows, in...)
		}
	}
	for b, f := range flows {
		s.allRows[b] -= f
		s.allRows[b+1] += f
	}
	s.rows = len(rows)
	s.u = makeGrid(s.rows+2, s.cols)
	s.scratch = makeGrid(s.rows+2, s.cols)
	for i, row := range rows {
		copy(s.u[i+1], row)
	}
	if rank == 0 {
		for x := 0; x < s.cols; x++ {
			s.u[0][x] = 1
			s.scratch[0][x] = 1
		}
	}
	if rank == c.Size()-1 {
		for x := 0; x < s.cols; x++ {
			s.u[s.rows+1][x] = 1
			s.scratch[s.rows+1][x] = 1
		}
	}
	return s.exchangeHalo(rowBytes, iter*100+60)
}

// recvRows receives a migration payload and validates its shape.
func (s *solver) recvRows(from, tag, want int) ([][]float64, error) {
	_, payload, err := s.comm.RecvData(from, tag)
	if err != nil {
		return nil, err
	}
	in, ok := payload.([][]float64)
	if !ok || len(in) != want {
		return nil, fmt.Errorf("cfd: rank %d: bad migration payload %T (want %d rows)", s.comm.Rank(), payload, want)
	}
	for _, row := range in {
		if len(row) != s.cols {
			return nil, fmt.Errorf("cfd: rank %d: migrated row has %d cols, want %d", s.comm.Rank(), len(row), s.cols)
		}
	}
	return in, nil
}

func copyRows(rows [][]float64) [][]float64 {
	out := make([][]float64, len(rows))
	for i, row := range rows {
		out[i] = rowCopy(row)
	}
	return out
}
