package cfd

import (
	"fmt"
	"math"

	"loadimb/internal/mpi"
)

// solver holds one rank's share of the distributed grid: rows interior
// rows of cols points each, plus one halo row above and below. The field
// u is relaxed toward the solution of a Laplace problem with fixed hot
// boundaries, so the residual gives the program a real numerical result.
type solver struct {
	comm *mpi.Comm
	spec []LoopSpec
	// rows is this rank's interior row count; cols the row width.
	rows, cols int
	// u[r][x] with r in [0, rows+1]: r = 0 and r = rows+1 are halos.
	u [][]float64
	// scratch holds the next sweep's values.
	scratch [][]float64
	// shares[p] is processor p's row fraction times P: the factor by
	// which its calibrated compute time deviates from the balanced
	// share. Each loop rotates the assignment (loop l charges this rank
	// shares[(rank+l) mod P]) — different kernels stress different
	// processors, and the partial cancellation keeps straggler waits
	// from piling up across loops, as the paper's measurements show.
	shares []float64
	// slowdown multiplies this rank's computation times when positive —
	// the injected straggler of Config.SlowRank/SlowFactor. Unlike the
	// rotated decomposition shares it sticks to one rank across all
	// loops, which is what makes it localizable by rank similarity.
	slowdown float64
}

func newSolver(c *mpi.Comm, spec []LoopSpec, allRows []int, cols, totalRows int) *solver {
	rows := allRows[c.Rank()]
	shares := make([]float64, len(allRows))
	for p, r := range allRows {
		shares[p] = float64(r) / float64(totalRows) * float64(len(allRows))
	}
	s := &solver{
		comm: c,
		spec: spec,
		rows: rows,
		cols: cols,
		u:    makeGrid(rows+2, cols),
		// The top and bottom global boundaries are hot (1.0); interior
		// starts cold. Rank 0's upper halo and the last rank's lower
		// halo act as the fixed boundary.
		scratch: makeGrid(rows+2, cols),
		shares:  shares,
	}
	if c.Rank() == 0 {
		for x := 0; x < cols; x++ {
			s.u[0][x] = 1
			s.scratch[0][x] = 1
		}
	}
	if c.Rank() == c.Size()-1 {
		for x := 0; x < cols; x++ {
			s.u[rows+1][x] = 1
			s.scratch[rows+1][x] = 1
		}
	}
	return s
}

func makeGrid(rows, cols int) [][]float64 {
	g := make([][]float64, rows)
	flat := make([]float64, rows*cols)
	for r := range g {
		g[r], flat = flat[:cols:cols], flat[cols:]
	}
	return g
}

// compute charges the rank's calibrated computation time for loop li: the
// balanced per-iteration time scaled by the rank's (loop-rotated) share.
func (s *solver) compute(li int, spec LoopSpec) error {
	share := s.shares[(s.comm.Rank()+li*7)%len(s.shares)]
	t := spec.ComputePerIter * share
	if s.slowdown > 0 {
		t *= s.slowdown
	}
	return s.comm.Compute(t)
}

// sweep performs one Jacobi relaxation over the interior rows and returns
// the local residual (sum of squared updates). It is real arithmetic; the
// virtual time it takes is charged by compute.
func (s *solver) sweep() float64 {
	res := 0.0
	for r := 1; r <= s.rows; r++ {
		for x := 0; x < s.cols; x++ {
			left, right := x-1, x+1
			if left < 0 {
				left = 0
			}
			if right >= s.cols {
				right = s.cols - 1
			}
			next := 0.25 * (s.u[r-1][x] + s.u[r+1][x] + s.u[r][left] + s.u[r][right])
			d := next - s.u[r][x]
			res += d * d
			s.scratch[r][x] = next
		}
	}
	for r := 1; r <= s.rows; r++ {
		copy(s.u[r], s.scratch[r])
	}
	return res
}

// exchangeHalo swaps boundary rows with the neighbor ranks, carrying the
// actual row data, and installs the received rows as halos. Messages
// traveling down the rank order use tag base; messages traveling up use
// base+1, so both partners of an exchange agree on the channel.
func (s *solver) exchangeHalo(bytes, base int) error {
	c := s.comm
	rank, size := c.Rank(), c.Size()
	tagDown, tagUp := base, base+1
	// Exchange with the lower neighbor: my last interior row goes down,
	// its first interior row comes up and becomes my lower halo.
	if rank+1 < size {
		if err := c.SendData(rank+1, tagDown, bytes, rowCopy(s.u[s.rows])); err != nil {
			return err
		}
	}
	// Exchange with the upper neighbor: my first interior row goes up,
	// its last interior row comes down and becomes my upper halo.
	if rank > 0 {
		if err := c.SendData(rank-1, tagUp, bytes, rowCopy(s.u[1])); err != nil {
			return err
		}
		_, payload, err := c.RecvData(rank-1, tagDown)
		if err != nil {
			return err
		}
		row, ok := payload.([]float64)
		if !ok || len(row) != s.cols {
			return fmt.Errorf("cfd: rank %d: bad upper halo payload %T", rank, payload)
		}
		copy(s.u[0], row)
	}
	if rank+1 < size {
		_, payload, err := c.RecvData(rank+1, tagUp)
		if err != nil {
			return err
		}
		row, ok := payload.([]float64)
		if !ok || len(row) != s.cols {
			return fmt.Errorf("cfd: rank %d: bad lower halo payload %T", rank, payload)
		}
		copy(s.u[s.rows+1], row)
	}
	return nil
}

func rowCopy(row []float64) []float64 {
	return append([]float64(nil), row...)
}

// iteration runs the seven loops once and returns the global residual of
// the pressure solve.
func (s *solver) iteration(iter int) (float64, error) {
	c := s.comm
	var globalResidual float64
	for li, spec := range s.spec {
		if err := c.EnterRegion(spec.Name); err != nil {
			return 0, err
		}
		if err := s.compute(li, spec); err != nil {
			return 0, err
		}
		// The pressure loop (first loop) performs the real sweep; its
		// residual is reduced globally below.
		var localRes float64
		if li == 0 {
			localRes = s.sweep()
		}
		if spec.P2PBytes > 0 {
			if err := s.exchangeHalo(spec.P2PBytes, iter*100+li*2); err != nil {
				return 0, err
			}
		}
		switch spec.Collective {
		case CollAllreduce:
			sum, err := c.AllreduceSum(localRes, spec.CollectiveBytes)
			if err != nil {
				return 0, err
			}
			if li == 0 {
				globalResidual = sum
			}
		case CollAlltoall:
			if err := c.Alltoall(spec.CollectiveBytes); err != nil {
				return 0, err
			}
		case CollReduce:
			if _, err := c.ReduceSum(0, localRes, spec.CollectiveBytes); err != nil {
				return 0, err
			}
		}
		if spec.Barrier {
			if err := c.Barrier(); err != nil {
				return 0, err
			}
		}
		if err := c.ExitRegion(); err != nil {
			return 0, err
		}
	}
	if math.IsNaN(globalResidual) {
		return 0, fmt.Errorf("cfd: residual diverged at iteration %d", iter)
	}
	return globalResidual, nil
}
