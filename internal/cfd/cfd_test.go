package cfd

import (
	"math"
	"testing"

	"loadimb/internal/core"
	"loadimb/internal/mpi"
)

// fastConfig returns a reduced-size configuration for quick tests.
func fastConfig() Config {
	cfg := Defaults()
	cfg.GridX = 64
	cfg.GridY = 64
	cfg.Iterations = 6
	return cfg
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"procs", func(c *Config) { c.Procs = 1 }},
		{"grid", func(c *Config) { c.GridY = 8 }},
		{"iterations", func(c *Config) { c.Iterations = 0 }},
		{"imbalance low", func(c *Config) { c.Imbalance = -0.1 }},
		{"imbalance high", func(c *Config) { c.Imbalance = 1.5 }},
		{"warmup", func(c *Config) { c.InitWarmup = -1 }},
		{"loops", func(c *Config) { c.Loops = []LoopSpec{} }},
		{"slow factor", func(c *Config) { c.SlowFactor = -2 }},
		{"slow rank", func(c *Config) { c.SlowFactor = 2; c.SlowRank = c.Procs }},
	}
	for _, c := range cases {
		cfg := fastConfig()
		c.mut(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestSlowRankDominatesComputation(t *testing.T) {
	cfg := fastConfig()
	cfg.SlowRank = 5
	cfg.SlowFactor = 3
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cube := res.Cube
	j := cube.ActivityIndex("computation")
	if j < 0 {
		t.Fatalf("no computation activity in %v", cube.Activities())
	}
	comp := make([]float64, cube.NumProcs())
	for i := 0; i < cube.NumRegions(); i++ {
		for p := range comp {
			v, err := cube.At(i, j, p)
			if err != nil {
				t.Fatal(err)
			}
			comp[p] += v
		}
	}
	for p, v := range comp {
		if p != cfg.SlowRank && comp[cfg.SlowRank] <= v {
			t.Fatalf("slow rank %d computation %g not above rank %d's %g",
				cfg.SlowRank, comp[cfg.SlowRank], p, v)
		}
	}
	// The injection must be a pure compute multiplier: the baseline run's
	// computation total times the factor, on the slowed rank only.
	base, err := Run(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	baseComp := 0.0
	for i := 0; i < cube.NumRegions(); i++ {
		v, err := base.Cube.At(i, j, cfg.SlowRank)
		if err != nil {
			t.Fatal(err)
		}
		baseComp += v
	}
	if got, want := comp[cfg.SlowRank], baseComp*cfg.SlowFactor; math.Abs(got-want) > 1e-9*want {
		t.Errorf("slow rank computation = %g, want %g (baseline x factor)", got, want)
	}
}

func TestRowDecomposition(t *testing.T) {
	rows, err := rowDecomposition(100, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, r := range rows {
		if r != 25 {
			t.Errorf("balanced rows = %v", rows)
		}
		total += r
	}
	if total != 100 {
		t.Errorf("total = %d", total)
	}
	skewed, err := rowDecomposition(100, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	total = 0
	for p, r := range skewed {
		if r < 1 {
			t.Errorf("rank %d has %d rows", p, r)
		}
		total += r
	}
	if total != 100 {
		t.Errorf("skewed total = %d", total)
	}
	if skewed[3] <= skewed[0] {
		t.Errorf("skew should load later ranks: %v", skewed)
	}
}

func TestRunProducesConvergingResiduals(t *testing.T) {
	res, err := Run(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Residuals) != 6 {
		t.Fatalf("residuals = %v", res.Residuals)
	}
	for i, r := range res.Residuals {
		if r <= 0 || math.IsNaN(r) {
			t.Fatalf("residual %d = %g", i, r)
		}
	}
	if res.Residuals[len(res.Residuals)-1] >= res.Residuals[0] {
		t.Errorf("Jacobi residual should decrease: %v", res.Residuals)
	}
}

func TestRunActivityShape(t *testing.T) {
	res, err := Run(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	cube := res.Cube
	if cube.NumRegions() != 7 || cube.NumProcs() != 16 {
		t.Fatalf("cube dims: %d regions, %d procs", cube.NumRegions(), cube.NumProcs())
	}
	p, err := core.NewProfile(cube)
	if err != nil {
		t.Fatal(err)
	}
	// Loop 1 is the heaviest region and computation the dominant
	// activity, as in Table 1.
	if got := p.Regions[p.HeaviestRegion].Region; got != "loop 1" {
		t.Errorf("heaviest region = %s", got)
	}
	if got := p.Activities[p.DominantActivity].Activity; got != mpi.ActComputation {
		t.Errorf("dominant activity = %s", got)
	}
	// Point-to-point is absent from loops 1, 2 and 7, present in 3-6;
	// loop 3 spends the longest time in it.
	jp2p := cube.ActivityIndex(mpi.ActPointToPoint)
	for i, want := range []bool{false, false, true, true, true, true, false} {
		has, err := cube.HasActivity(i, jp2p)
		if err != nil {
			t.Fatal(err)
		}
		if has != want {
			t.Errorf("loop %d p2p present = %v, want %v", i+1, has, want)
		}
	}
	if got := p.WorstRegion[jp2p].Region; got != 2 {
		t.Errorf("p2p-heaviest loop = %d, want 2 (loop 3)", got)
	}
	// Synchronization only in loops 1, 5, 6.
	jsync := cube.ActivityIndex(mpi.ActSynchronization)
	for i, want := range []bool{true, false, false, false, true, true, false} {
		has, err := cube.HasActivity(i, jsync)
		if err != nil {
			t.Fatal(err)
		}
		if has != want {
			t.Errorf("loop %d sync present = %v, want %v", i+1, has, want)
		}
	}
	// Collectives in loops 1, 2, 5, 7.
	jcoll := cube.ActivityIndex(mpi.ActCollective)
	for i, want := range []bool{true, true, false, false, true, false, true} {
		has, err := cube.HasActivity(i, jcoll)
		if err != nil {
			t.Fatal(err)
		}
		if has != want {
			t.Errorf("loop %d collective present = %v, want %v", i+1, has, want)
		}
	}
	// The warmup keeps the program time above the instrumented total.
	if cube.ProgramTime() <= cube.RegionsTotal() {
		t.Errorf("program %g should exceed instrumented %g", cube.ProgramTime(), cube.RegionsTotal())
	}
}

func TestRunImbalanceShowsInDispersion(t *testing.T) {
	balanced := fastConfig()
	balanced.Imbalance = 0
	skewed := fastConfig()
	skewed.Imbalance = 0.6

	resB, err := Run(balanced)
	if err != nil {
		t.Fatal(err)
	}
	resS, err := Run(skewed)
	if err != nil {
		t.Fatal(err)
	}
	cellsB, err := core.Dispersions(resB.Cube, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cellsS, err := core.Dispersions(resS.Cube, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Loop 1 computation: balanced run nearly zero, skewed clearly
	// positive and larger.
	b, s := cellsB[0][0], cellsS[0][0]
	if !b.Defined || !s.Defined {
		t.Fatal("computation cells undefined")
	}
	if b.ID > 0.01 {
		t.Errorf("balanced dispersion = %g, want ~0", b.ID)
	}
	if s.ID < 5*b.ID || s.ID < 0.05 {
		t.Errorf("skewed dispersion = %g (balanced %g), want clearly larger", s.ID, b.ID)
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !a.Cube.EqualWithin(b.Cube, 0) {
		t.Error("two runs of the same config should produce identical cubes")
	}
	for i := range a.Residuals {
		if a.Residuals[i] != b.Residuals[i] {
			t.Fatalf("residual %d differs: %g vs %g", i, a.Residuals[i], b.Residuals[i])
		}
	}
}

func TestRunFullAnalysisPipeline(t *testing.T) {
	res, err := Run(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(res.Cube, core.AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Regions) != 7 || len(a.Activities) != 4 {
		t.Fatalf("analysis shapes: %d regions, %d activities", len(a.Regions), len(a.Activities))
	}
	if cands := a.TuningCandidates(core.MaxCriterion{}); len(cands) != 1 {
		t.Errorf("tuning candidates = %v", cands)
	}
}

func TestDefaultLoopsCoverPaperStructure(t *testing.T) {
	loops := DefaultLoops()
	if len(loops) != 7 {
		t.Fatalf("%d loops", len(loops))
	}
	for i, l := range loops {
		if l.Name != LoopNames[i] {
			t.Errorf("loop %d name = %q", i, l.Name)
		}
		if l.ComputePerIter <= 0 {
			t.Errorf("loop %d has no computation", i)
		}
	}
	if loops[0].Collective != CollAllreduce || !loops[0].Barrier || loops[0].P2PBytes != 0 {
		t.Error("loop 1 spec does not match the paper's structure")
	}
	if loops[1].Collective != CollAlltoall || loops[1].Barrier {
		t.Error("loop 2 spec does not match")
	}
	if loops[2].P2PBytes == 0 || loops[2].Collective != CollNone {
		t.Error("loop 3 spec does not match")
	}
}

func TestRunBytesCube(t *testing.T) {
	res, err := Run(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	bc := res.BytesCube
	if bc == nil || bc.NumRegions() != 7 {
		t.Fatalf("bytes cube = %v", bc)
	}
	// Loop 3 moves the most point-to-point bytes (the big halo).
	jp2p := bc.ActivityIndex(mpi.ActPointToPoint)
	heaviest, heaviestBytes := -1, 0.0
	for i := 0; i < bc.NumRegions(); i++ {
		v, err := bc.CellTime(i, jp2p)
		if err != nil {
			t.Fatal(err)
		}
		if v > heaviestBytes {
			heaviest, heaviestBytes = i, v
		}
	}
	if heaviest != 2 {
		t.Errorf("p2p byte-heaviest loop = %d, want 2 (loop 3)", heaviest)
	}
	// Interior ranks move twice the boundary ranks' halo bytes.
	top, err := bc.At(2, jp2p, 0)
	if err != nil {
		t.Fatal(err)
	}
	mid, err := bc.At(2, jp2p, 8)
	if err != nil {
		t.Fatal(err)
	}
	if mid <= top {
		t.Errorf("interior rank bytes %g should exceed boundary rank's %g", mid, top)
	}
}

func TestRunNoWarmup(t *testing.T) {
	cfg := fastConfig()
	cfg.InitWarmup = 0
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Without warmup the program time tracks the instrumented span
	// closely (collective exits keep the ranks aligned).
	if res.Cube.ProgramTime() < res.Cube.RegionsTotal() {
		t.Errorf("program %g below instrumented %g", res.Cube.ProgramTime(), res.Cube.RegionsTotal())
	}
}
