// Package cfd is a synthetic message-passing computational fluid dynamics
// program: the application substrate standing in for the (unavailable)
// production code of the paper's case study. It runs on the simulated
// machine of internal/mpi and is structured exactly as the paper describes
// the measured program: seven main loops, each mixing the four measured
// activities —
//
//	loop 1  pressure solve      computation + collective (allreduce) + barrier
//	loop 2  spectral transform  computation + collective (alltoall)
//	loop 3  flux exchange       computation + point-to-point (halo)
//	loop 4  advection           computation + point-to-point
//	loop 5  residual check      computation + small p2p + collective + barrier
//	loop 6  boundary update     small computation + p2p + barrier
//	loop 7  diagnostics         tiny computation + collective (reduce)
//
// The solver performs genuine distributed numerics: a Jacobi relaxation on
// a 1-D row decomposition of a 2-D grid, with real halo exchanges carrying
// row data and a global residual reduction, so the simulated activities
// are driven by an actual computation. Virtual compute durations are
// calibrated per loop so the aggregate activity mix reproduces the shape
// of the paper's Table 1; load imbalance is injected through an uneven row
// decomposition controlled by Config.Imbalance.
package cfd

import (
	"errors"
	"fmt"
	"math"

	"loadimb/internal/mpi"
	"loadimb/internal/rebalance"
	"loadimb/internal/trace"
	"loadimb/internal/workload"
)

// LoopNames are the region names recorded in the trace, in program order.
var LoopNames = []string{
	"loop 1", "loop 2", "loop 3", "loop 4", "loop 5", "loop 6", "loop 7",
}

// RebalanceRegion is the region the adaptive run's boundary machinery
// (load allgather, row migration, halo refresh) is attributed to.
const RebalanceRegion = "rebalance"

// A Rebalancer decides work migration at iteration boundaries; it is the
// same contract as apps.Rebalancer, satisfied by rebalance.Controller.
// Every rank calls Decide with identical arguments and must receive the
// identical plan.
type Rebalancer interface {
	Decide(boundary int, loads []float64) (rebalance.Plan, error)
}

// LoopSpec calibrates one of the seven loops: how much virtual computation
// it performs per iteration and how big its messages are. Zero-valued
// communication fields mean the loop does not perform that activity.
type LoopSpec struct {
	// Name is the region name.
	Name string
	// ComputePerIter is the balanced per-rank computation time per
	// iteration, in virtual seconds.
	ComputePerIter float64
	// P2PBytes is the halo message size; 0 disables point-to-point.
	P2PBytes int
	// CollectiveBytes is the collective payload size; meaningful when
	// Collective is not CollNone.
	CollectiveBytes int
	// Collective selects the collective operation of the loop.
	Collective CollKind
	// Barrier appends a barrier synchronization to each iteration.
	Barrier bool
}

// CollKind enumerates the collective operation of a loop.
type CollKind int

// Collective kinds.
const (
	// CollNone performs no collective.
	CollNone CollKind = iota
	// CollAllreduce performs a global sum.
	CollAllreduce
	// CollAlltoall performs a total exchange.
	CollAlltoall
	// CollReduce performs a rooted reduction.
	CollReduce
)

// DefaultLoops returns the seven loop specs calibrated so that a run with
// Config.Defaults (P = 16, 30 iterations, the SP2-era cost model) produces
// an activity mix with the shape of the paper's Table 1: loop 1 heaviest
// and computation-dominant with a large collective share, loop 3 the
// point-to-point-heaviest, synchronization present only in loops 1, 5
// and 6 and negligible overall.
func DefaultLoops() []LoopSpec {
	// Message sizes are calibrated jointly with the decomposition skew:
	// part of each collective's measured time is waiting for stragglers
	// (the imbalance the methodology is meant to expose), so the wire
	// sizes are chosen smaller than a naive cost-model inversion of
	// Table 1 would suggest.
	return []LoopSpec{
		{Name: LoopNames[0], ComputePerIter: 0.408, CollectiveBytes: 1 << 19, Collective: CollAllreduce, Barrier: true},
		{Name: LoopNames[1], ComputePerIter: 0.263, CollectiveBytes: 340_000, Collective: CollAlltoall},
		{Name: LoopNames[2], ComputePerIter: 0.174, P2PBytes: 3 << 20},
		{Name: LoopNames[3], ComputePerIter: 0.268, P2PBytes: 1_179_648},
		{Name: LoopNames[4], ComputePerIter: 0.251, P2PBytes: 1 << 14, CollectiveBytes: 1 << 14, Collective: CollReduce, Barrier: true},
		{Name: LoopNames[5], ComputePerIter: 0.012, P2PBytes: 1 << 17, Barrier: true},
		{Name: LoopNames[6], ComputePerIter: 0.0093, CollectiveBytes: 1 << 13, Collective: CollReduce},
	}
}

// Config parameterizes a CFD run.
type Config struct {
	// Procs is the number of simulated processors.
	Procs int
	// GridX and GridY are the global grid dimensions; rows (GridY) are
	// distributed across the ranks.
	GridX, GridY int
	// Iterations is the number of outer solver iterations.
	Iterations int
	// Imbalance in [0, 1] skews the row decomposition (0 = even split).
	Imbalance float64
	// Cost is the communication cost model; the zero value selects
	// mpi.DefaultCostModel.
	Cost mpi.CostModel
	// Loops are the calibrated loop specs; nil selects DefaultLoops.
	Loops []LoopSpec
	// InitWarmup adds uninstrumented startup time (seconds) before the
	// measured loops, reproducing the gap between the program wall clock
	// time and the instrumented total.
	InitWarmup float64
	// SlowRank and SlowFactor inject a straggler: when SlowFactor > 0,
	// rank SlowRank's computation times are multiplied by SlowFactor in
	// every loop — a contended node or a thermally throttled core, the
	// localized fault the automatic diagnosis is meant to name. 0
	// disables the injection; factors below 1 speed the rank up instead.
	SlowRank   int
	SlowFactor float64
	// Sink, when non-nil, receives every instrumented event live while
	// the run executes (see trace.Sink); it must be concurrency-safe.
	Sink trace.Sink
	// Rebalance, when non-nil, runs the solver adaptively: after every
	// iteration the ranks allgather their measured compute time, ask the
	// controller for a plan, and migrate grid rows between adjacent ranks
	// (real row data on the wire) to follow it. Adaptive runs charge each
	// loop by the rank's own row share — migration targets the
	// decomposition itself — instead of the legacy loop-rotated shares.
	Rebalance Rebalancer
}

// Defaults returns the configuration of the reproduction run: 16
// processors, a 512 x 512 grid, 30 iterations, mild decomposition skew and
// ~7% uninstrumented warmup, mirroring the paper's setting.
func Defaults() Config {
	return Config{
		Procs:      16,
		GridX:      512,
		GridY:      512,
		Iterations: 30,
		Imbalance:  0.2,
		Cost:       mpi.DefaultCostModel(),
		InitWarmup: 5.2,
	}
}

func (cfg *Config) normalize() error {
	if cfg.Procs < 2 {
		return errors.New("cfd: need at least 2 processors")
	}
	if cfg.GridX < 4 || cfg.GridY < 2*cfg.Procs {
		return fmt.Errorf("cfd: grid %dx%d too small for %d processors", cfg.GridX, cfg.GridY, cfg.Procs)
	}
	if cfg.Iterations < 1 {
		return errors.New("cfd: need at least 1 iteration")
	}
	// The range checks are written to reject NaN too: `Imbalance < 0 ||
	// Imbalance > 1` is false for NaN, which would otherwise skew every
	// row share.
	if !(cfg.Imbalance >= 0 && cfg.Imbalance <= 1) {
		return fmt.Errorf("cfd: imbalance %g out of [0, 1]", cfg.Imbalance)
	}
	if !(cfg.InitWarmup >= 0) || math.IsInf(cfg.InitWarmup, 1) {
		return fmt.Errorf("cfd: bad warmup %g", cfg.InitWarmup)
	}
	if !(cfg.SlowFactor >= 0) || math.IsInf(cfg.SlowFactor, 1) {
		return fmt.Errorf("cfd: bad slow factor %g", cfg.SlowFactor)
	}
	if cfg.SlowFactor > 0 && (cfg.SlowRank < 0 || cfg.SlowRank >= cfg.Procs) {
		return fmt.Errorf("cfd: slow rank %d out of [0, %d)", cfg.SlowRank, cfg.Procs)
	}
	if cfg.Cost == (mpi.CostModel{}) {
		cfg.Cost = mpi.DefaultCostModel()
	}
	if cfg.Loops == nil {
		cfg.Loops = DefaultLoops()
	}
	if len(cfg.Loops) == 0 {
		return errors.New("cfd: no loops configured")
	}
	for i, l := range cfg.Loops {
		if !(l.ComputePerIter >= 0) || math.IsInf(l.ComputePerIter, 1) {
			return fmt.Errorf("cfd: loop %d: bad compute per iteration %g", i, l.ComputePerIter)
		}
		if l.P2PBytes < 0 || l.CollectiveBytes < 0 {
			return fmt.Errorf("cfd: loop %d: negative message size", i)
		}
	}
	return nil
}

// Result is the outcome of a run.
type Result struct {
	// Cube is the aggregated measurement cube, ready for analysis.
	Cube *trace.Cube
	// BytesCube holds the communication-volume counters (bytes per
	// region, activity and rank) — the paper's "counting parameters",
	// analyzable with the same methodology.
	BytesCube *trace.Cube
	// Log is the raw event trace.
	Log *trace.Log
	// Residuals holds the global residual after each iteration; it
	// decreases monotonically for a diffusive problem, evidencing that
	// the simulated program computes something real.
	Residuals []float64
	// Rows is the final row decomposition — equal to the initial one
	// unless the run rebalanced.
	Rows []int
}

// Run executes the CFD program on the simulated machine and returns the
// measurements.
func Run(cfg Config) (*Result, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	world, err := mpi.NewWorld(cfg.Procs, cfg.Cost)
	if err != nil {
		return nil, err
	}
	if cfg.Sink != nil {
		world.SetSink(cfg.Sink)
	}
	rows, err := rowDecomposition(cfg.GridY, cfg.Procs, cfg.Imbalance)
	if err != nil {
		return nil, err
	}
	totalRows := 0
	for _, r := range rows {
		totalRows += r
	}
	// Rank 0 records the per-iteration global residuals; every rank
	// observes the same values through the allreduce. finalRows is the
	// decomposition after any row migration, reported by rank 0.
	residuals := make([]float64, cfg.Iterations)
	finalRows := append([]int(nil), rows...)
	if err := world.Run(func(c *mpi.Comm) error {
		if err := c.Skew(cfg.InitWarmup); err != nil {
			return err
		}
		s := newSolver(c, cfg.Loops, rows, cfg.GridX, totalRows)
		s.adaptive = cfg.Rebalance != nil
		if cfg.SlowFactor > 0 && c.Rank() == cfg.SlowRank {
			s.slowdown = cfg.SlowFactor
		}
		for iter := 0; iter < cfg.Iterations; iter++ {
			res, err := s.iteration(iter)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				residuals[iter] = res
			}
			if cfg.Rebalance != nil {
				if err := s.rebalanceStep(iter, cfg.Rebalance); err != nil {
					return err
				}
			}
		}
		if c.Rank() == 0 {
			copy(finalRows, s.allRows)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	log, err := world.Log()
	if err != nil {
		return nil, err
	}
	names := make([]string, len(cfg.Loops))
	for i, l := range cfg.Loops {
		names[i] = l.Name
	}
	if cfg.Rebalance != nil {
		names = append(names, RebalanceRegion)
	}
	cube, err := log.Aggregate(names, mpi.Activities())
	if err != nil {
		return nil, err
	}
	bytesCube, err := world.BytesCube(names)
	if err != nil {
		return nil, err
	}
	return &Result{Cube: cube, BytesCube: bytesCube, Log: log, Residuals: residuals, Rows: finalRows}, nil
}

// rowDecomposition splits gridY rows across procs ranks with a linear skew
// of the given severity, guaranteeing every rank at least one row.
func rowDecomposition(gridY, procs int, severity float64) ([]int, error) {
	shares, err := workload.LinearProfile{}.Shares(procs, severity)
	if err != nil {
		return nil, err
	}
	rows := make([]int, procs)
	assigned := 0
	for p, s := range shares {
		rows[p] = int(math.Max(1, math.Round(s*float64(gridY))))
		assigned += rows[p]
	}
	// Fix rounding drift on the last rank, keeping it at least one row.
	drift := gridY - assigned
	for i := procs - 1; drift != 0 && i >= 0; i-- {
		adj := drift
		if rows[i]+adj < 1 {
			adj = 1 - rows[i]
		}
		rows[i] += adj
		drift -= adj
	}
	return rows, nil
}
