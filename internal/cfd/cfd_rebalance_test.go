package cfd

import (
	"math"
	"testing"

	"loadimb/internal/rebalance"
)

// stragglerCFD is the solver's straggler scenario: rank 5 computes four
// times slower in every loop.
func stragglerCFD() Config {
	cfg := fastConfig()
	cfg.GridY = 128
	cfg.Iterations = 12
	cfg.SlowRank = 5
	cfg.SlowFactor = 4
	return cfg
}

// noopRebalancer measures but never moves: the adaptive-mode baseline.
type noopRebalancer struct{}

func (noopRebalancer) Decide(boundary int, loads []float64) (rebalance.Plan, error) {
	id, err := rebalance.LoadID(loads)
	if err != nil {
		return rebalance.Plan{}, err
	}
	return rebalance.Plan{MeasuredID: id, PlannedID: id}, nil
}

func TestConfigValidationNonFinite(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"nan imbalance", func(c *Config) { c.Imbalance = nan }},
		{"nan warmup", func(c *Config) { c.InitWarmup = nan }},
		{"inf warmup", func(c *Config) { c.InitWarmup = math.Inf(1) }},
		{"nan slow factor", func(c *Config) { c.SlowFactor = nan }},
		{"nan loop compute", func(c *Config) {
			c.Loops = DefaultLoops()
			c.Loops[2].ComputePerIter = nan
		}},
		{"negative loop bytes", func(c *Config) {
			c.Loops = DefaultLoops()
			c.Loops[1].CollectiveBytes = -1
		}},
	}
	for _, c := range cases {
		cfg := fastConfig()
		c.mut(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestCFDRebalanceConverges(t *testing.T) {
	cfg := stragglerCFD()
	ctrl, err := rebalance.New(rebalance.PolicyReactive, rebalance.Options{Target: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Rebalance = ctrl
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := ctrl.Snapshot()
	if !s.Converged {
		t.Fatalf("never reached target: %+v", s)
	}
	if s.AchievedID > 0.1 {
		t.Errorf("achieved ID %g above target", s.AchievedID)
	}
	// The decomposition stays a full, contiguous cover of the grid.
	total := 0
	for p, r := range res.Rows {
		if r < 1 {
			t.Errorf("rank %d left with %d rows", p, r)
		}
		total += r
	}
	if total != cfg.GridY {
		t.Errorf("rows sum to %d, want %d", total, cfg.GridY)
	}
	if res.Rows[cfg.SlowRank] >= cfg.GridY/cfg.Procs {
		t.Errorf("slow rank kept %d rows, want fewer than the even share %d",
			res.Rows[cfg.SlowRank], cfg.GridY/cfg.Procs)
	}
	regions := res.Cube.Regions()
	if regions[len(regions)-1] != RebalanceRegion {
		t.Errorf("last region %q, want %q", regions[len(regions)-1], RebalanceRegion)
	}

	// Against an adaptive run that measures but never migrates, moving
	// rows away from the straggler must shorten the run.
	base := stragglerCFD()
	base.Rebalance = noopRebalancer{}
	baseline, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if res.Log.Span() >= baseline.Log.Span() {
		t.Errorf("rebalanced makespan %g not below baseline %g", res.Log.Span(), baseline.Log.Span())
	}
}

// TestCFDRebalancePreservesNumerics pins the key property of row
// migration: it moves data, not values. The residual sequence of a
// rebalanced run matches the plain run on the same grid to floating
// round-off (partial sums regroup across ranks).
func TestCFDRebalancePreservesNumerics(t *testing.T) {
	plain := stragglerCFD()
	want, err := Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	cfg := stragglerCFD()
	ctrl, err := rebalance.New(rebalance.PolicyReactive, rebalance.Options{Target: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Rebalance = ctrl
	got, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Residuals) != len(want.Residuals) {
		t.Fatalf("residual count %d != %d", len(got.Residuals), len(want.Residuals))
	}
	for i := range want.Residuals {
		if diff := math.Abs(got.Residuals[i] - want.Residuals[i]); diff > 1e-9*math.Abs(want.Residuals[i]) {
			t.Errorf("iteration %d: residual %g != %g", i, got.Residuals[i], want.Residuals[i])
		}
	}
}

func TestCFDRebalanceDeterministic(t *testing.T) {
	run := func() (*Result, rebalance.Stats) {
		cfg := stragglerCFD()
		ctrl, err := rebalance.New(rebalance.PolicyPredictive, rebalance.Options{Target: 0.1})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Rebalance = ctrl
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res, ctrl.Snapshot()
	}
	a, sa := run()
	b, sb := run()
	if a.Log.Span() != b.Log.Span() {
		t.Errorf("non-deterministic makespan: %g vs %g", a.Log.Span(), b.Log.Span())
	}
	for p := range a.Rows {
		if a.Rows[p] != b.Rows[p] {
			t.Fatalf("non-deterministic rows: %v vs %v", a.Rows, b.Rows)
		}
	}
	if sa.Rounds != sb.Rounds || sa.Migrations != sb.Migrations {
		t.Errorf("non-deterministic stats: %+v vs %+v", sa, sb)
	}
}
