package rebalance

import (
	"fmt"
	"sync"
)

// RoundStat records one phase boundary's decision.
type RoundStat struct {
	// Boundary is the phase-boundary index the decision was made at.
	Boundary int `json:"boundary"`
	// MeasuredID is the ID_P of the loads measured over the phase that
	// just ended.
	MeasuredID float64 `json:"measured_id"`
	// PlannedID is the ID_P the planner expects after the moves.
	PlannedID float64 `json:"planned_id"`
	// Moves is the number of migrations planned.
	Moves int `json:"moves"`
	// Migrated is the total load shifted, in virtual seconds.
	Migrated float64 `json:"migrated"`
}

// Stats is a snapshot of a controller's progress, the source of the
// loadimb_rebalance_* metrics and /rebalance.json.
type Stats struct {
	// Policy is the active policy's name.
	Policy string `json:"policy"`
	// Target is the ID_P the controller drives toward.
	Target float64 `json:"target"`
	// Boundaries is the number of phase boundaries decided.
	Boundaries int `json:"boundaries"`
	// Rounds is the number of boundaries at which moves were planned —
	// the SetLoad-style iteration count.
	Rounds int `json:"rounds"`
	// Migrations is the total number of moves across all rounds.
	Migrations int `json:"migrations"`
	// Migrated is the total load shifted, in virtual seconds.
	Migrated float64 `json:"migrated"`
	// AchievedID is the most recent measured ID_P.
	AchievedID float64 `json:"achieved_id"`
	// RoundsToTarget is the number of planning rounds that had happened
	// when the measured ID_P first reached the target, or -1 while it
	// never has.
	RoundsToTarget int `json:"rounds_to_target"`
	// Converged reports whether the measured ID_P has reached the
	// target at least once.
	Converged bool `json:"converged"`
	// History lists every boundary's decision in order.
	History []RoundStat `json:"history"`
}

// A Controller runs one policy over a workload's phase boundaries. The
// simulated workloads are SPMD — every rank reaches a boundary with the
// identical allgathered load vector — so Decide memoizes per boundary:
// the first caller computes and records the plan, the other P-1 get the
// same plan back, and the stats count the round once.
type Controller struct {
	mu     sync.Mutex
	policy Policy
	opts   Options
	memo   map[int]decision
	stats  Stats
}

type decision struct {
	plan Plan
	err  error
}

// New creates a controller running the named policy (PolicyReactive or
// PolicyPredictive) — the form the -rebalance flags use.
func New(policy string, opts Options) (*Controller, error) {
	var p Policy
	var err error
	switch policy {
	case PolicyReactive:
		p, err = NewReactive(opts)
	case PolicyPredictive:
		p, err = NewPredictive(opts)
	default:
		return nil, fmt.Errorf("%w: unknown policy %q", ErrBadOptions, policy)
	}
	if err != nil {
		return nil, err
	}
	return NewController(p, opts)
}

// NewController creates a controller running the given policy.
func NewController(p Policy, opts Options) (*Controller, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	return &Controller{
		policy: p,
		opts:   opts,
		memo:   make(map[int]decision),
		stats: Stats{
			Policy:         p.Name(),
			Target:         opts.Target,
			RoundsToTarget: -1,
		},
	}, nil
}

// Target returns the configured ID_P target.
func (c *Controller) Target() float64 { return c.opts.Target }

// Decide returns the migration plan for the phase boundary, computing it
// on the first call and replaying it to the boundary's other SPMD
// callers. measured is the allgathered per-rank load vector of the phase
// that just ended; every caller for one boundary must pass the same
// vector.
func (c *Controller) Decide(boundary int, measured []float64) (Plan, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d, ok := c.memo[boundary]; ok {
		return d.plan, d.err
	}
	plan, err := c.decideLocked(boundary, measured)
	c.memo[boundary] = decision{plan: plan, err: err}
	return plan, err
}

func (c *Controller) decideLocked(boundary int, measured []float64) (Plan, error) {
	if c.opts.MaxRounds >= 0 && c.stats.Rounds >= c.opts.MaxRounds {
		// Round cap hit: stop planning, keep recording the measurements.
		id, err := LoadID(measured)
		if err != nil {
			return Plan{}, err
		}
		plan := Plan{MeasuredID: id, PlannedID: id}
		c.recordLocked(boundary, plan)
		return plan, nil
	}
	plan, err := c.policy.Plan(boundary, measured)
	if err != nil {
		return Plan{}, err
	}
	c.recordLocked(boundary, plan)
	return plan, nil
}

func (c *Controller) recordLocked(boundary int, plan Plan) {
	c.stats.Boundaries++
	c.stats.AchievedID = plan.MeasuredID
	// Convergence is judged before counting this boundary's plan: the
	// measurement reflects the phase that already ran, so the rounds
	// that produced it are the ones planned at earlier boundaries.
	if !c.stats.Converged && plan.MeasuredID <= c.opts.Target {
		c.stats.Converged = true
		c.stats.RoundsToTarget = c.stats.Rounds
	}
	if len(plan.Moves) > 0 {
		c.stats.Rounds++
		c.stats.Migrations += len(plan.Moves)
		c.stats.Migrated += plan.Migrated()
	}
	c.stats.History = append(c.stats.History, RoundStat{
		Boundary:   boundary,
		MeasuredID: plan.MeasuredID,
		PlannedID:  plan.PlannedID,
		Moves:      len(plan.Moves),
		Migrated:   plan.Migrated(),
	})
}

// Snapshot returns a copy of the controller's stats; safe to call
// concurrently with Decide.
func (c *Controller) Snapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.History = append([]RoundStat(nil), c.stats.History...)
	return s
}
