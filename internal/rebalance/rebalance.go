// Package rebalance closes the measurement loop: it consumes the
// per-rank load vectors the dispersion indices are computed from and
// plans work migrations that drive the processor imbalance ID_P below a
// target.
//
// The package is deliberately mechanism-free. A planner round takes a
// per-rank load vector and produces Moves — "shift this much load from
// rank a to rank b" — in load units (virtual seconds); the workload owns
// the mechanism that turns a Move into migrated work units (AMR cells,
// master-worker tasks, CFD grid rows) at its next phase boundary. Two
// policies decide which vector to plan against: the reactive policy
// replays the classic iterate-until-load-below-target loop (huji-rich
// SetLoad) against the loads just measured, damped because a single
// measurement may be transient; the predictive policy forecasts the next
// phase's loads from the temporal.StreamSegmenter phase trajectory
// (Boulmier et al., "Anticipating Load Imbalance") and pre-migrates the
// full correction before the phase starts.
//
// Simulated workloads run SPMD: every rank reaches the same phase
// boundary with the same allgathered load vector. The Controller
// memoizes each boundary's decision so P identical calls produce one
// plan, recorded once in the stats that the loadimb_rebalance_* metrics
// and /rebalance.json surface.
package rebalance

import (
	"errors"
	"fmt"
	"math"

	"loadimb/internal/stats"
)

// Common errors.
var (
	// ErrBadOptions is returned for invalid rebalancing options.
	ErrBadOptions = errors.New("rebalance: bad options")
	// ErrBadLoads is returned when a load vector contains negative or
	// non-finite entries.
	ErrBadLoads = errors.New("rebalance: bad load vector")
)

// A Move shifts Amount load units (virtual seconds of work) from rank
// From to rank To. The workload converts the amount into its own work
// units — cells, tasks, grid rows — rounding as its granularity demands.
type Move struct {
	From   int     `json:"from"`
	To     int     `json:"to"`
	Amount float64 `json:"amount"`
}

// A Plan is one round's migration schedule with the imbalance the
// planner expects after it is applied.
type Plan struct {
	// Moves is the migration schedule, hottest pair first. Empty when
	// the input is already at or below target (or nothing can move).
	Moves []Move `json:"moves"`
	// MeasuredID is the ID_P of the load vector the plan was computed
	// from.
	MeasuredID float64 `json:"measured_id"`
	// PlannedID is the ID_P of the load vector after applying Moves —
	// what the next measurement would show if the loads were fully
	// migratable and static.
	PlannedID float64 `json:"planned_id"`
}

// Migrated returns the total load shifted by the plan.
func (p Plan) Migrated() float64 {
	total := 0.0
	for _, m := range p.Moves {
		total += m.Amount
	}
	return total
}

// Options parameterizes the planner and policies.
type Options struct {
	// Target is the ID_P at or below which the load is considered
	// balanced. Default 0.1.
	Target float64
	// Damping is the fraction of each rank-pair's computed excess the
	// reactive policy moves per round, in (0, 1]. Values below 1 hedge
	// against transient measurements at the cost of more rounds.
	// Default 0.5. The predictive policy ignores it and applies the
	// full correction to its forecast.
	Damping float64
	// MaxRounds caps the number of boundaries at which the controller
	// plans moves; afterwards it returns empty plans (the SetLoad-style
	// round cap). Default 64. Negative means unlimited.
	MaxRounds int
	// MaxMoves caps the moves per plan. Default: one fewer than the
	// number of ranks.
	MaxMoves int
}

// withDefaults fills zero fields with the documented defaults.
func (o Options) withDefaults() Options {
	if o.Target == 0 {
		o.Target = 0.1
	}
	if o.Damping == 0 {
		o.Damping = 0.5
	}
	if o.MaxRounds == 0 {
		o.MaxRounds = 64
	}
	return o
}

// validate rejects out-of-range and non-finite options. The explicit
// finiteness checks matter: a plain range comparison is false for NaN,
// so a NaN target would otherwise disable convergence silently.
func (o Options) validate() error {
	if !finite(o.Target) || o.Target < 0 {
		return fmt.Errorf("%w: target %g", ErrBadOptions, o.Target)
	}
	if !finite(o.Damping) || o.Damping <= 0 || o.Damping > 1 {
		return fmt.Errorf("%w: damping %g not in (0, 1]", ErrBadOptions, o.Damping)
	}
	return nil
}

func finite(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0)
}

// LoadID computes ID_P of a per-rank load vector: the paper's Euclidean
// index of dispersion of the standardized loads. An all-zero vector has
// nothing to disperse and reports 0.
func LoadID(loads []float64) (float64, error) {
	id, err := stats.EuclideanFromBalance(loads)
	if errors.Is(err, stats.ErrZeroSum) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadLoads, err)
	}
	return id, nil
}

// checkLoads rejects vectors the planner cannot reason about.
func checkLoads(loads []float64) error {
	if len(loads) == 0 {
		return fmt.Errorf("%w: empty", ErrBadLoads)
	}
	for i, l := range loads {
		if !finite(l) || l < 0 {
			return fmt.Errorf("%w: load[%d] = %g", ErrBadLoads, i, l)
		}
	}
	return nil
}

// PlanMoves computes one round's migration plan for the load vector: it
// repeatedly pairs the hottest rank with the coldest and moves
// damping·min(hot−mean, mean−cold) between them, until the planned
// vector's ID_P has margin below target, no improving move remains, or
// the move cap is hit. Because every move shifts at most the smaller of
// the pair's distances from the mean (which moves preserve), each move
// strictly decreases the sum of squared deviations — the planned ID_P is
// always at most the measured one, which is what makes the reactive loop
// monotone-convergent on a static workload.
func PlanMoves(loads []float64, opts Options) (Plan, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return Plan{}, err
	}
	if err := checkLoads(loads); err != nil {
		return Plan{}, err
	}
	measured, err := LoadID(loads)
	if err != nil {
		return Plan{}, err
	}
	plan := Plan{MeasuredID: measured, PlannedID: measured}
	if measured <= opts.Target || len(loads) < 2 {
		return plan, nil
	}
	maxMoves := opts.MaxMoves
	if maxMoves <= 0 {
		maxMoves = len(loads) - 1
	}
	l := append([]float64(nil), loads...)
	mean := stats.Mean(l)
	// Plan to margin below target (not to exact balance): migration has
	// real cost, and workloads whose units move at different effective
	// rates (a straggler's seconds are cheaper elsewhere) land near —
	// not exactly on — the planned vector.
	stopAt := opts.Target / 2
	for len(plan.Moves) < maxMoves {
		hot, cold := 0, 0
		for i, v := range l {
			if v > l[hot] {
				hot = i
			}
			if v < l[cold] {
				cold = i
			}
		}
		amt := opts.Damping * math.Min(l[hot]-mean, mean-l[cold])
		if amt <= 0 {
			break
		}
		l[hot] -= amt
		l[cold] += amt
		plan.Moves = append(plan.Moves, Move{From: hot, To: cold, Amount: amt})
		if plan.PlannedID, err = LoadID(l); err != nil {
			return Plan{}, err
		}
		if plan.PlannedID <= stopAt {
			break
		}
	}
	return plan, nil
}
