package rebalance

import (
	"errors"
	"math"
	"testing"
)

// applyPlan returns the load vector after the plan's moves, modeling a
// workload whose load is fully migratable.
func applyPlan(loads []float64, plan Plan) []float64 {
	out := append([]float64(nil), loads...)
	for _, m := range plan.Moves {
		out[m.From] -= m.Amount
		out[m.To] += m.Amount
	}
	return out
}

// lcg is a tiny deterministic PRNG for property tests.
type lcg uint64

func (l *lcg) next() float64 {
	*l = *l*6364136223846793005 + 1442695040888963407
	return float64(*l>>11) / float64(1<<53)
}

func TestPlanMovesBalances(t *testing.T) {
	loads := []float64{10, 1, 1, 1}
	plan, err := PlanMoves(loads, Options{Target: 0.1, Damping: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Moves) == 0 {
		t.Fatal("no moves planned for a 10x hot rank")
	}
	if plan.Moves[0].From != 0 {
		t.Errorf("first move from rank %d, want 0 (the hot one)", plan.Moves[0].From)
	}
	if plan.PlannedID >= plan.MeasuredID {
		t.Errorf("planned ID %g not below measured %g", plan.PlannedID, plan.MeasuredID)
	}
	after, err := LoadID(applyPlan(loads, plan))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(after-plan.PlannedID) > 1e-12 {
		t.Errorf("applied ID %g != planned %g", after, plan.PlannedID)
	}
}

func TestPlanMovesAtTargetNoMoves(t *testing.T) {
	plan, err := PlanMoves([]float64{1, 1, 1, 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Moves) != 0 || plan.MeasuredID != 0 {
		t.Errorf("balanced loads planned %v (ID %g)", plan.Moves, plan.MeasuredID)
	}
	// Single rank: nothing to move, never an error.
	if plan, err = PlanMoves([]float64{5}, Options{}); err != nil || len(plan.Moves) != 0 {
		t.Errorf("single rank: plan %v, err %v", plan.Moves, err)
	}
	// All-zero loads: nothing to disperse.
	if plan, err = PlanMoves([]float64{0, 0}, Options{}); err != nil || len(plan.Moves) != 0 {
		t.Errorf("zero loads: plan %v, err %v", plan.Moves, err)
	}
}

func TestPlanMovesValidation(t *testing.T) {
	nan := math.NaN()
	if _, err := PlanMoves([]float64{1, nan}, Options{}); !errors.Is(err, ErrBadLoads) {
		t.Errorf("NaN load err = %v", err)
	}
	if _, err := PlanMoves([]float64{1, -1}, Options{}); !errors.Is(err, ErrBadLoads) {
		t.Errorf("negative load err = %v", err)
	}
	if _, err := PlanMoves(nil, Options{}); !errors.Is(err, ErrBadLoads) {
		t.Errorf("empty loads err = %v", err)
	}
	// NaN options sail through plain range checks; they must be
	// rejected explicitly.
	if _, err := PlanMoves([]float64{1, 2}, Options{Target: nan}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("NaN target err = %v", err)
	}
	if _, err := PlanMoves([]float64{1, 2}, Options{Damping: nan}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("NaN damping err = %v", err)
	}
	if _, err := PlanMoves([]float64{1, 2}, Options{Damping: 2}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("damping 2 err = %v", err)
	}
}

func TestNewRejectsBadPolicyAndOptions(t *testing.T) {
	if _, err := New("random", Options{}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("unknown policy err = %v", err)
	}
	if _, err := New(PolicyReactive, Options{Target: math.NaN()}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("NaN target err = %v", err)
	}
	if _, err := New(PolicyPredictive, Options{Target: math.Inf(1)}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("Inf target err = %v", err)
	}
}

// TestReactiveMonotoneConvergent is the property test of the satellite:
// on a static fully-migratable workload the reactive loop's measured
// ID_P never increases between rounds and reaches the target.
func TestReactiveMonotoneConvergent(t *testing.T) {
	rng := lcg(1)
	for trial := 0; trial < 50; trial++ {
		procs := 2 + int(rng.next()*30)
		loads := make([]float64, procs)
		for i := range loads {
			loads[i] = 0.1 + rng.next()*10
		}
		// Inject a straggler every other trial.
		if trial%2 == 0 {
			loads[int(rng.next()*float64(procs))] *= 5
		}
		ctrl, err := New(PolicyReactive, Options{Target: 0.1, MaxRounds: 100})
		if err != nil {
			t.Fatal(err)
		}
		prev := math.Inf(1)
		converged := false
		for boundary := 0; boundary < 100; boundary++ {
			plan, err := ctrl.Decide(boundary, loads)
			if err != nil {
				t.Fatal(err)
			}
			if plan.MeasuredID > prev+1e-12 {
				t.Fatalf("trial %d: ID rose %g -> %g at boundary %d",
					trial, prev, plan.MeasuredID, boundary)
			}
			prev = plan.MeasuredID
			if plan.MeasuredID <= 0.1 {
				converged = true
				break
			}
			loads = applyPlan(loads, plan)
		}
		if !converged {
			t.Fatalf("trial %d: never reached target, final ID %g", trial, prev)
		}
	}
}

// TestPredictiveNoSlowerThanReactive: on the same static workload the
// predictive policy (full correction on a regime-certified forecast)
// needs no more rounds to the target than the damped reactive loop.
func TestPredictiveNoSlowerThanReactive(t *testing.T) {
	rng := lcg(7)
	for trial := 0; trial < 20; trial++ {
		procs := 4 + int(rng.next()*28)
		base := make([]float64, procs)
		for i := range base {
			base[i] = 1 + rng.next()*3
		}
		base[int(rng.next()*float64(procs))] *= 5
		rounds := func(policy string) int {
			ctrl, err := New(policy, Options{Target: 0.1, MaxRounds: 100})
			if err != nil {
				t.Fatal(err)
			}
			loads := append([]float64(nil), base...)
			for boundary := 0; boundary < 100; boundary++ {
				plan, err := ctrl.Decide(boundary, loads)
				if err != nil {
					t.Fatal(err)
				}
				if plan.MeasuredID <= 0.1 {
					return ctrl.Snapshot().RoundsToTarget
				}
				loads = applyPlan(loads, plan)
			}
			t.Fatalf("trial %d: %s never converged", trial, policy)
			return -1
		}
		reactive := rounds(PolicyReactive)
		predictive := rounds(PolicyPredictive)
		if predictive > reactive {
			t.Errorf("trial %d (P=%d): predictive took %d rounds, reactive %d",
				trial, procs, predictive, reactive)
		}
	}
}

func TestControllerMemoizesBoundaries(t *testing.T) {
	ctrl, err := New(PolicyReactive, Options{Target: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	loads := []float64{10, 1, 1, 1}
	first, err := ctrl.Decide(3, loads)
	if err != nil {
		t.Fatal(err)
	}
	// The other SPMD ranks arrive at the same boundary.
	for rank := 1; rank < 4; rank++ {
		again, err := ctrl.Decide(3, loads)
		if err != nil {
			t.Fatal(err)
		}
		if len(again.Moves) != len(first.Moves) || again.PlannedID != first.PlannedID {
			t.Fatalf("rank %d got a different plan: %+v vs %+v", rank, again, first)
		}
	}
	s := ctrl.Snapshot()
	if s.Boundaries != 1 || s.Rounds != 1 {
		t.Errorf("stats counted boundary %d times (rounds %d), want once", s.Boundaries, s.Rounds)
	}
	if s.Migrations != len(first.Moves) {
		t.Errorf("migrations = %d, want %d", s.Migrations, len(first.Moves))
	}
}

func TestControllerRoundCap(t *testing.T) {
	ctrl, err := New(PolicyReactive, Options{Target: 0.01, MaxRounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	loads := []float64{10, 1, 1, 1}
	plan, err := ctrl.Decide(0, loads)
	if err != nil || len(plan.Moves) == 0 {
		t.Fatalf("first round: plan %v, err %v", plan.Moves, err)
	}
	plan, err = ctrl.Decide(1, loads)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Moves) != 0 {
		t.Errorf("round cap ignored: %d moves planned", len(plan.Moves))
	}
	s := ctrl.Snapshot()
	if s.Rounds != 1 || s.Boundaries != 2 {
		t.Errorf("rounds = %d boundaries = %d, want 1 and 2", s.Rounds, s.Boundaries)
	}
}

func TestForecasterEpochExcludesStaleWindows(t *testing.T) {
	f := NewForecaster()
	f.Observe([]float64{8, 1, 1})
	f.MarkMigration()
	f.Observe([]float64{2, 2, 2})
	fc, ok := f.Forecast()
	if !ok {
		t.Fatal("no forecast after two observations")
	}
	// Only the post-migration window may contribute: equal shares.
	for i, v := range fc {
		if math.Abs(v-2) > 1e-12 {
			t.Errorf("forecast[%d] = %g, want 2 (stale pre-migration window leaked in)", i, v)
		}
	}
}

func TestForecasterIdleWindows(t *testing.T) {
	f := NewForecaster()
	f.Observe([]float64{0, 0, 0})
	if _, ok := f.Forecast(); ok {
		t.Error("forecast from an all-idle trajectory")
	}
}

func TestControllerConvergenceAccounting(t *testing.T) {
	ctrl, err := New(PolicyReactive, Options{Target: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	loads := []float64{10, 1, 1, 1}
	for boundary := 0; boundary < 50; boundary++ {
		plan, err := ctrl.Decide(boundary, loads)
		if err != nil {
			t.Fatal(err)
		}
		if plan.MeasuredID <= 0.1 {
			break
		}
		loads = applyPlan(loads, plan)
	}
	s := ctrl.Snapshot()
	if !s.Converged {
		t.Fatalf("not converged: %+v", s)
	}
	if s.RoundsToTarget < 1 || s.RoundsToTarget > s.Rounds {
		t.Errorf("rounds to target = %d with %d rounds", s.RoundsToTarget, s.Rounds)
	}
	if len(s.History) != s.Boundaries {
		t.Errorf("history has %d entries for %d boundaries", len(s.History), s.Boundaries)
	}
	if s.AchievedID > 0.1 {
		t.Errorf("achieved ID %g above target", s.AchievedID)
	}
}
