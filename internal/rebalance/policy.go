package rebalance

import (
	"loadimb/internal/temporal"
)

// Policy names, as accepted by New and the -rebalance flags.
const (
	PolicyReactive   = "reactive"
	PolicyPredictive = "predictive"
)

// A Policy turns the measured per-rank loads of the phase that just
// ended into the migration plan to apply before the next phase begins.
// A Policy is not concurrency-safe; the Controller serializes calls.
type Policy interface {
	// Name identifies the policy in stats and metrics.
	Name() string
	// Plan produces the round's migration plan. boundary is the index
	// of the phase boundary (0 after the first phase), measured the
	// allgathered per-rank loads of the finished phase.
	Plan(boundary int, measured []float64) (Plan, error)
}

// Reactive is the SetLoad-style feedback loop: plan against the loads
// just measured, damped, and let the next measurement correct the
// residual. It needs no model of the workload, but pays for that in
// rounds — each one recovers only Damping of the remaining excess.
type Reactive struct {
	opts Options
}

// NewReactive creates the reactive policy.
func NewReactive(opts Options) (*Reactive, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	return &Reactive{opts: opts}, nil
}

// Name returns "reactive".
func (r *Reactive) Name() string { return PolicyReactive }

// Plan plans against the measured loads with the configured damping.
func (r *Reactive) Plan(_ int, measured []float64) (Plan, error) {
	return PlanMoves(measured, r.opts)
}

// Predictive forecasts the next phase's per-rank loads from the phase
// trajectory and pre-migrates the full correction. The forecaster feeds
// each boundary's measurement into a temporal.StreamSegmenter as one
// window of an ID trajectory; the segmenter's change-point fit groups
// boundaries into regimes, and the forecast for the next phase is the
// fingerprint (mean per-rank load share) of the current regime's
// windows, pooled with the most recent earlier regime carrying the same
// label when one exists — so a recurring phase is anticipated from its
// last occurrence the moment the regime flips. Because the forecast is
// regime-averaged rather than a single possibly-transient measurement,
// the policy applies it undamped; when nothing has been observed yet it
// falls back to the damped reactive plan.
type Predictive struct {
	opts Options
	f    *Forecaster
}

// NewPredictive creates the predictive policy.
func NewPredictive(opts Options) (*Predictive, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	return &Predictive{opts: opts, f: NewForecaster()}, nil
}

// Name returns "predictive".
func (p *Predictive) Name() string { return PolicyPredictive }

// Plan observes the measurement and plans the full correction against
// the forecast next-phase loads.
func (p *Predictive) Plan(_ int, measured []float64) (Plan, error) {
	p.f.Observe(measured)
	forecast, ok := p.f.Forecast()
	if !ok {
		return PlanMoves(measured, p.opts)
	}
	full := p.opts
	full.Damping = 1
	plan, err := PlanMoves(forecast, full)
	if err != nil {
		return Plan{}, err
	}
	// Report the real measurement, not the forecast's: the controller
	// tracks convergence of what actually happened.
	if plan.MeasuredID, err = LoadID(measured); err != nil {
		return Plan{}, err
	}
	if len(plan.Moves) > 0 {
		p.f.MarkMigration()
	}
	return plan, nil
}

// A Forecaster accumulates per-boundary load measurements and predicts
// the next phase's per-rank loads from the segmented trajectory.
type Forecaster struct {
	seg    *temporal.StreamSegmenter
	shares [][]float64 // per boundary: normalized per-rank load shares (nil for all-idle)
	totals []float64   // per boundary: total load
	// epoch is the first window index measured after the last applied
	// migration. Earlier windows describe a different work ownership and
	// would poison the fingerprint — a share vector from before a
	// migration predicts loads that the migration already changed.
	epoch int
}

// NewForecaster creates an empty forecaster with the segmenter's
// automatic change-point penalty.
func NewForecaster() *Forecaster {
	return &Forecaster{seg: temporal.NewStreamSegmenter(0)}
}

// Observe feeds one boundary's measured per-rank loads.
func (f *Forecaster) Observe(measured []float64) {
	n := len(f.totals)
	total := 0.0
	for _, l := range measured {
		total += l
	}
	w := temporal.WindowStat{
		Index:  n,
		Start:  float64(n),
		End:    float64(n + 1),
		Events: len(measured),
		Busy:   total,
	}
	var share []float64
	if total > 0 {
		id, err := LoadID(measured)
		if err == nil {
			w.ID = &id
		}
		share = make([]float64, len(measured))
		for i, l := range measured {
			share[i] = l / total
		}
	}
	f.seg.Append(w)
	f.shares = append(f.shares, share)
	f.totals = append(f.totals, total)
}

// MarkMigration records that the plan just produced will be applied:
// windows observed before this point describe the old work ownership
// and are excluded from future fingerprints.
func (f *Forecaster) MarkMigration() { f.epoch = len(f.totals) }

// Forecast predicts the next phase's per-rank loads: the pooled mean
// share vector of the current regime (and its last same-labeled
// predecessor, if any) scaled by the most recent total load, considering
// only windows from the current ownership epoch. ok is false while no
// usable measurement has been observed.
func (f *Forecaster) Forecast() ([]float64, bool) {
	phases := f.seg.Phases()
	if len(phases) == 0 {
		return nil, false
	}
	cur := phases[len(phases)-1]
	pool := [][2]int{{cur.FirstWindow, cur.LastWindow}}
	for j := len(phases) - 2; j >= 0; j-- {
		if phases[j].Label == cur.Label {
			pool = append(pool, [2]int{phases[j].FirstWindow, phases[j].LastWindow})
			break
		}
	}
	var sum []float64
	windows := 0
	for _, span := range pool {
		for i := span[0]; i <= span[1] && i < len(f.shares); i++ {
			s := f.shares[i]
			if s == nil || i < f.epoch {
				continue
			}
			if sum == nil {
				sum = make([]float64, len(s))
			}
			for r, v := range s {
				sum[r] += v
			}
			windows++
		}
	}
	if windows == 0 {
		return nil, false
	}
	scale := f.totals[len(f.totals)-1] / float64(windows)
	if scale <= 0 {
		scale = 1 / float64(windows)
	}
	for r := range sum {
		sum[r] *= scale
	}
	return sum, true
}
