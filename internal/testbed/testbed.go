// Package testbed implements a tracefile repository in the spirit of the
// Tracefile Testbed (Ferschweiler, Harrah, Keon, Calzarossa, Tessera,
// Pancake, ICPP 2002 — reference [3] of the paper): a catalog of
// performance traces with searchable metadata, so that analyses can be
// run over "measurements collected on different parallel systems for a
// large variety of scientific programs" (the paper's future-work plan).
//
// A repository is a directory holding an index.json plus one binary cube
// file per entry. Add computes derived metadata — dimensions, program
// time, and the maximum scaled region index SID_C — so entries can be
// retrieved by imbalance level as well as by system, program or tag.
package testbed

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"loadimb/internal/core"
	"loadimb/internal/trace"
	"loadimb/internal/tracefmt"
)

// Repository errors.
var (
	// ErrNotFound is returned when an entry does not exist.
	ErrNotFound = errors.New("testbed: entry not found")
	// ErrExists is returned when adding an entry whose name is taken.
	ErrExists = errors.New("testbed: entry already exists")
	// ErrBadName is returned for unusable entry names.
	ErrBadName = errors.New("testbed: bad entry name")
)

// indexFile is the repository's catalog file name.
const indexFile = "index.json"

// Meta is the user-supplied description of a trace.
type Meta struct {
	// System names the machine the trace was collected on.
	System string `json:"system"`
	// Program names the traced application.
	Program string `json:"program"`
	// Description is free text.
	Description string `json:"description,omitempty"`
	// Tags are free-form labels for retrieval.
	Tags []string `json:"tags,omitempty"`
}

// Entry is one cataloged trace: the user metadata plus derived fields
// computed when the trace was added.
type Entry struct {
	// Name is the unique entry name (also the cube file's base name).
	Name string `json:"name"`
	// Meta is the user-supplied description.
	Meta Meta `json:"meta"`
	// Procs, Regions, Activities are the cube dimensions.
	Procs      int `json:"procs"`
	Regions    int `json:"regions"`
	Activities int `json:"activities"`
	// ProgramTime is the trace's wall clock time T.
	ProgramTime float64 `json:"program_time"`
	// MaxSID is the largest scaled region index SID_C of the trace: its
	// headline imbalance level.
	MaxSID float64 `json:"max_sid"`
}

// Repository is an open tracefile catalog.
type Repository struct {
	dir     string
	entries map[string]Entry
}

// Open opens (or initializes) a repository in dir, creating the directory
// if needed.
func Open(dir string) (*Repository, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	r := &Repository{dir: dir, entries: make(map[string]Entry)}
	data, err := os.ReadFile(filepath.Join(dir, indexFile))
	if errors.Is(err, os.ErrNotExist) {
		return r, nil
	}
	if err != nil {
		return nil, err
	}
	var list []Entry
	if err := json.Unmarshal(data, &list); err != nil {
		return nil, fmt.Errorf("testbed: corrupt index: %w", err)
	}
	for _, e := range list {
		r.entries[e.Name] = e
	}
	return r, nil
}

// Dir returns the repository directory.
func (r *Repository) Dir() string { return r.dir }

// Len returns the number of cataloged entries.
func (r *Repository) Len() int { return len(r.entries) }

func (r *Repository) save() error {
	list := r.list()
	data, err := json.MarshalIndent(list, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(r.dir, indexFile+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(r.dir, indexFile))
}

func (r *Repository) list() []Entry {
	list := make([]Entry, 0, len(r.entries))
	for _, e := range r.entries {
		list = append(list, e)
	}
	sort.Slice(list, func(a, b int) bool { return list[a].Name < list[b].Name })
	return list
}

func validName(name string) error {
	if name == "" || strings.ContainsAny(name, "/\\") || strings.HasPrefix(name, ".") {
		return fmt.Errorf("%w: %q", ErrBadName, name)
	}
	return nil
}

func (r *Repository) cubePath(name string) string {
	return filepath.Join(r.dir, name+".limb")
}

// Add catalogs a cube under the given name, computing the derived
// metadata, writing the cube file and updating the index atomically (the
// index is rewritten via a temp file; a failed Add leaves no index entry).
func (r *Repository) Add(name string, meta Meta, cube *trace.Cube) (Entry, error) {
	if err := validName(name); err != nil {
		return Entry{}, err
	}
	if _, ok := r.entries[name]; ok {
		return Entry{}, fmt.Errorf("%w: %q", ErrExists, name)
	}
	if cube == nil {
		return Entry{}, errors.New("testbed: nil cube")
	}
	regs, err := core.CodeRegionView(cube, core.Options{})
	if err != nil {
		return Entry{}, err
	}
	maxSID := 0.0
	for _, s := range regs {
		if s.Defined && s.SID > maxSID {
			maxSID = s.SID
		}
	}
	entry := Entry{
		Name:        name,
		Meta:        meta,
		Procs:       cube.NumProcs(),
		Regions:     cube.NumRegions(),
		Activities:  cube.NumActivities(),
		ProgramTime: cube.ProgramTime(),
		MaxSID:      maxSID,
	}
	if err := tracefmt.SaveCube(r.cubePath(name), cube); err != nil {
		return Entry{}, err
	}
	r.entries[name] = entry
	if err := r.save(); err != nil {
		delete(r.entries, name)
		return Entry{}, err
	}
	return entry, nil
}

// Get retrieves an entry and loads its cube.
func (r *Repository) Get(name string) (Entry, *trace.Cube, error) {
	e, ok := r.entries[name]
	if !ok {
		return Entry{}, nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	cube, err := tracefmt.OpenCube(r.cubePath(name))
	if err != nil {
		return Entry{}, nil, err
	}
	return e, cube, nil
}

// Remove deletes an entry and its cube file.
func (r *Repository) Remove(name string) error {
	if _, ok := r.entries[name]; !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	delete(r.entries, name)
	if err := r.save(); err != nil {
		return err
	}
	if err := os.Remove(r.cubePath(name)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return err
	}
	return nil
}

// List returns all entries, sorted by name.
func (r *Repository) List() []Entry { return r.list() }

// Filter selects entries in a Query. Zero-valued fields do not constrain.
type Filter struct {
	// System and Program match exactly when nonempty.
	System, Program string
	// Tag must appear among the entry's tags when nonempty.
	Tag string
	// MinProcs / MaxProcs bound the processor count (0 = unbounded).
	MinProcs, MaxProcs int
	// MinSID retrieves traces at least this imbalanced (by MaxSID).
	MinSID float64
}

// Match reports whether the entry satisfies the filter.
func (f Filter) Match(e Entry) bool {
	if f.System != "" && e.Meta.System != f.System {
		return false
	}
	if f.Program != "" && e.Meta.Program != f.Program {
		return false
	}
	if f.Tag != "" {
		found := false
		for _, t := range e.Meta.Tags {
			if t == f.Tag {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	if f.MinProcs > 0 && e.Procs < f.MinProcs {
		return false
	}
	if f.MaxProcs > 0 && e.Procs > f.MaxProcs {
		return false
	}
	if e.MaxSID < f.MinSID {
		return false
	}
	return true
}

// Query returns the entries matching the filter, most imbalanced first.
func (r *Repository) Query(f Filter) []Entry {
	var out []Entry
	for _, e := range r.list() {
		if f.Match(e) {
			out = append(out, e)
		}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].MaxSID > out[b].MaxSID })
	return out
}
