package testbed

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"loadimb/internal/trace"
	"loadimb/internal/workload"
)

func paperCube(t *testing.T) *trace.Cube {
	t.Helper()
	cube, err := workload.ReconstructCube()
	if err != nil {
		t.Fatal(err)
	}
	return cube
}

func balancedCube(t *testing.T, procs int) *trace.Cube {
	t.Helper()
	cube, err := workload.Synthesize(workload.Uniform(3, 2, procs))
	if err != nil {
		t.Fatal(err)
	}
	return cube
}

func openRepo(t *testing.T) *Repository {
	t.Helper()
	r, err := Open(filepath.Join(t.TempDir(), "repo"))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestAddGetRoundTrip(t *testing.T) {
	r := openRepo(t)
	cube := paperCube(t)
	meta := Meta{System: "IBM SP2", Program: "cfd", Tags: []string{"paper", "mpi"}}
	entry, err := r.Add("cfd-16", meta, cube)
	if err != nil {
		t.Fatal(err)
	}
	if entry.Procs != 16 || entry.Regions != 7 || entry.Activities != 4 {
		t.Errorf("derived dims = %+v", entry)
	}
	if entry.MaxSID < 0.013 || entry.MaxSID > 0.014 {
		t.Errorf("MaxSID = %g, want ~0.0131 (loop 1)", entry.MaxSID)
	}
	got, loaded, err := r.Get("cfd-16")
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta.System != "IBM SP2" {
		t.Errorf("meta = %+v", got.Meta)
	}
	if !cube.EqualWithin(loaded, 0) {
		t.Error("loaded cube differs")
	}
}

func TestAddValidation(t *testing.T) {
	r := openRepo(t)
	if _, err := r.Add("", Meta{}, paperCube(t)); !errors.Is(err, ErrBadName) {
		t.Errorf("empty name err = %v", err)
	}
	if _, err := r.Add("a/b", Meta{}, paperCube(t)); !errors.Is(err, ErrBadName) {
		t.Errorf("slash name err = %v", err)
	}
	if _, err := r.Add(".hidden", Meta{}, paperCube(t)); !errors.Is(err, ErrBadName) {
		t.Errorf("dot name err = %v", err)
	}
	if _, err := r.Add("x", Meta{}, nil); err == nil {
		t.Error("nil cube should fail")
	}
	if _, err := r.Add("dup", Meta{}, paperCube(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Add("dup", Meta{}, paperCube(t)); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate err = %v", err)
	}
}

func TestPersistenceAcrossOpens(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "repo")
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Add("one", Meta{Program: "p"}, paperCube(t)); err != nil {
		t.Fatal(err)
	}
	reopened, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Len() != 1 {
		t.Fatalf("reopened has %d entries", reopened.Len())
	}
	e, cube, err := reopened.Get("one")
	if err != nil || e.Meta.Program != "p" || cube.NumProcs() != 16 {
		t.Errorf("reopened Get = %+v, %v", e, err)
	}
}

func TestGetMissing(t *testing.T) {
	r := openRepo(t)
	if _, _, err := r.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing err = %v", err)
	}
}

func TestRemove(t *testing.T) {
	r := openRepo(t)
	if _, err := r.Add("x", Meta{}, paperCube(t)); err != nil {
		t.Fatal(err)
	}
	if err := r.Remove("x"); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 {
		t.Errorf("Len = %d after remove", r.Len())
	}
	if _, err := os.Stat(r.cubePath("x")); !errors.Is(err, os.ErrNotExist) {
		t.Error("cube file should be gone")
	}
	if err := r.Remove("x"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double remove err = %v", err)
	}
}

func TestCorruptIndex(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "repo")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, indexFile), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Error("corrupt index should fail")
	}
}

func populate(t *testing.T, r *Repository) {
	t.Helper()
	adds := []struct {
		name string
		meta Meta
		cube *trace.Cube
	}{
		{"cfd-16", Meta{System: "sp2", Program: "cfd", Tags: []string{"paper"}}, paperCube(t)},
		{"flat-8", Meta{System: "cluster", Program: "flat", Tags: []string{"synthetic"}}, balancedCube(t, 8)},
		{"flat-64", Meta{System: "cluster", Program: "flat", Tags: []string{"synthetic", "big"}}, balancedCube(t, 64)},
	}
	for _, a := range adds {
		if _, err := r.Add(a.name, a.meta, a.cube); err != nil {
			t.Fatal(err)
		}
	}
}

func TestListSorted(t *testing.T) {
	r := openRepo(t)
	populate(t, r)
	list := r.List()
	if len(list) != 3 || list[0].Name != "cfd-16" || list[2].Name != "flat-8" {
		t.Errorf("List = %v", names(list))
	}
}

func TestQuery(t *testing.T) {
	r := openRepo(t)
	populate(t, r)
	cases := []struct {
		name   string
		filter Filter
		want   []string
	}{
		{"all", Filter{}, []string{"cfd-16", "flat-64", "flat-8"}},
		{"by system", Filter{System: "cluster"}, []string{"flat-64", "flat-8"}},
		{"by program", Filter{Program: "cfd"}, []string{"cfd-16"}},
		{"by tag", Filter{Tag: "big"}, []string{"flat-64"}},
		{"min procs", Filter{MinProcs: 32}, []string{"flat-64"}},
		{"max procs", Filter{MaxProcs: 10}, []string{"flat-8"}},
		{"imbalanced", Filter{MinSID: 0.01}, []string{"cfd-16"}},
		{"none", Filter{System: "nowhere"}, nil},
	}
	for _, c := range cases {
		got := names(r.Query(c.filter))
		if len(got) != len(c.want) {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
			continue
		}
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Errorf("%s: got %v, want %v", c.name, got, c.want)
				break
			}
		}
	}
	// "all" is ordered most-imbalanced first: cfd-16 leads.
	if all := r.Query(Filter{}); all[0].Name != "cfd-16" {
		t.Errorf("query order = %v", names(all))
	}
}

func names(entries []Entry) []string {
	var out []string
	for _, e := range entries {
		out = append(out, e.Name)
	}
	return out
}
