package report

import (
	"strings"
	"testing"

	"loadimb/internal/core"
	"loadimb/internal/workload"
)

func analysis(t *testing.T) *core.Analysis {
	t.Helper()
	cube, err := workload.ReconstructCube()
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(cube, core.AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestTable1Layout(t *testing.T) {
	a := analysis(t)
	out := Table1(a.Profile)
	for _, want := range []string{
		"Table 1", "region", "overall", "computation", "point-to-point",
		"loop 1", "19.051", "12.24", "6.75", "0.061",
		"loop 7", "0.31",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q:\n%s", want, out)
		}
	}
	// Loop 1 performs no point-to-point: its row contains a "-".
	line := lineContaining(out, "loop 1")
	if !strings.Contains(line, "-") {
		t.Errorf("loop 1 row should contain -: %q", line)
	}
}

func TestTable2Layout(t *testing.T) {
	out := Table2(analysis(t))
	for _, want := range []string{"Table 2", "0.03674", "0.30571", "0.23200"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2 missing %q:\n%s", want, out)
		}
	}
}

func TestTable3Layout(t *testing.T) {
	out := Table3(analysis(t))
	for _, want := range []string{"Table 3", "ID_A", "SID_A", "synchronization"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table3 missing %q:\n%s", want, out)
		}
	}
	// The published headline values survive rounding to 5 decimals.
	if !strings.Contains(out, "0.0190") {
		t.Errorf("Table3 missing computation ID:\n%s", out)
	}
}

func TestTable4Layout(t *testing.T) {
	out := Table4(analysis(t))
	for _, want := range []string{"Table 4", "ID_C", "SID_C", "loop 6", "0.1372"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table4 missing %q:\n%s", want, out)
		}
	}
}

func TestSummary(t *testing.T) {
	out := Summary(analysis(t))
	for _, want := range []string{
		"heaviest region: loop 1",
		"dominant activity: computation",
		"most imbalanced activity: synchronization",
		"most imbalanced region: loop 6",
		"tuning candidate (largest SID_C): loop 1",
		"region clusters:",
		"imbalanced processor",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Summary missing %q:\n%s", want, out)
		}
	}
}

func TestCSV(t *testing.T) {
	out := CSV(analysis(t))
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "section,region,activity,value" {
		t.Errorf("CSV header = %q", lines[0])
	}
	for _, want := range []string{
		"region_time,loop 1,,19.051",
		"dispersion,loop 5,synchronization,0.3057",
		"activity_ID,,computation,",
		"region_SID,loop 1,,",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing %q", want)
		}
	}
	// 7 region_time + 18 cell_time + 18 dispersion + 8 activity + 14 region rows + header.
	if len(lines) != 1+7+18+18+8+14 {
		t.Errorf("CSV has %d lines", len(lines))
	}
}

func TestCSVEscape(t *testing.T) {
	if got := csvEscape(`a,b`); got != `"a,b"` {
		t.Errorf("escape comma = %q", got)
	}
	if got := csvEscape(`say "hi"`); got != `"say ""hi"""` {
		t.Errorf("escape quote = %q", got)
	}
	if got := csvEscape("plain"); got != "plain" {
		t.Errorf("escape plain = %q", got)
	}
}

func TestFormatHelpers(t *testing.T) {
	if got := formatTime(19.051); got != "19.051" {
		t.Errorf("formatTime = %q", got)
	}
	if got := formatTime(0.31); got != "0.31" {
		t.Errorf("formatTime trims = %q", got)
	}
	if got := formatTime(5); got != "5" {
		t.Errorf("formatTime integer = %q", got)
	}
	if got := formatID(0.03674); got != "0.03674" {
		t.Errorf("formatID = %q", got)
	}
}

func lineContaining(s, sub string) string {
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, sub) {
			return line
		}
	}
	return ""
}

func TestHeatmap(t *testing.T) {
	out := Heatmap(analysis(t))
	if !strings.Contains(out, "heat map") || !strings.Contains(out, "scale:") {
		t.Errorf("heat map missing header/scale:\n%s", out)
	}
	// 7 loop rows plus header and scale.
	if strings.Count(out, "|") != 14 {
		t.Errorf("heat map row delimiters = %d:\n%s", strings.Count(out, "|"), out)
	}
	// Loop 5's sync (0.30571, the max) renders as the hottest shade.
	line := lineContaining(out, "loop 5")
	if !strings.Contains(line, "@") {
		t.Errorf("loop 5 row should contain the hottest shade: %q", line)
	}
	// Loop 1 has an absent point-to-point cell (blank column).
	l1 := lineContaining(out, "loop 1")
	if !strings.Contains(l1, " ") {
		t.Errorf("loop 1 row should contain a blank for the absent cell: %q", l1)
	}
}

func TestHeatRune(t *testing.T) {
	if heatRune(0, 0) != '.' {
		t.Error("zero max should give the coolest shade")
	}
	if heatRune(1, 1) != '@' {
		t.Error("max value should give the hottest shade")
	}
	if heatRune(-1, 1) != '.' {
		t.Error("negative value clamps to coolest")
	}
}

func TestMarkdown(t *testing.T) {
	out := Markdown(analysis(t))
	for _, want := range []string{
		"### Table 1", "### Table 2", "### Table 3", "### Table 4",
		"| region | overall | computation |",
		"| loop 1 | 19.051 | 12.24 |",
		"| synchronization | 0.15590 | 0.00016 |",
		"| loop 6 | 0.13720 |",
		"| --- |",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Markdown missing %q:\n%s", want, out)
		}
	}
	// Absent cells render as dashes inside rows.
	if !strings.Contains(out, "| loop 1 | 19.051 | 12.24 | - |") {
		t.Errorf("absent cell rendering wrong:\n%s", out)
	}
}
