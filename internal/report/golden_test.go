package report

import (
	"testing"
)

// Golden outputs for the paper case study: the rendered tables are
// deterministic, so any change to the analysis pipeline or the layouts
// shows up here verbatim.

const goldenTable1 = `Table 1: wall clock time of the regions and breakdown by activity (seconds)
region  overall  computation  point-to-point  collective  synchronization
-------------------------------------------------------------------------
loop 1   19.051        12.24               -        6.75            0.061
loop 2    14.22          7.9               -        6.32                -
loop 3     10.9         5.22            5.68           -                -
loop 4    10.54         8.03            2.51           -                -
loop 5    9.041         7.53            0.07        1.43            0.011
loop 6    0.692         0.36            0.33           -            0.002
loop 7     0.31         0.28               -        0.03                -
`

const goldenTable2 = `Table 2: indices of dispersion ID_ij of the activities performed by the regions
region  computation  point-to-point  collective  synchronization
----------------------------------------------------------------
loop 1      0.03674               -     0.06793          0.12870
loop 2      0.01095               -     0.00318                -
loop 3      0.00672         0.02833           -                -
loop 4      0.01615         0.10742           -                -
loop 5      0.00933         0.08872     0.04907          0.30571
loop 6      0.05017         0.23200           -          0.16163
loop 7      0.00719               -     0.01138                -
`

const goldenTable3 = `Table 3: summary of the indices of dispersion of the activity view
       activity     ID_A    SID_A
---------------------------------
    computation  0.01904  0.01132
 point-to-point  0.05976  0.00734
     collective  0.03779  0.00785
synchronization  0.15590  0.00016
`

const goldenTable4 = `Table 4: summary of the indices of dispersion of the code region view
region     ID_C    SID_C
------------------------
loop 1  0.04809  0.01310
loop 2  0.00750  0.00152
loop 3  0.01798  0.00280
loop 4  0.03789  0.00571
loop 5  0.01659  0.00214
loop 6  0.13720  0.00136
loop 7  0.00760  0.00003
`

func TestGoldenTables(t *testing.T) {
	a := analysis(t)
	cases := []struct {
		name, got, want string
	}{
		{"Table1", Table1(a.Profile), goldenTable1},
		{"Table2", Table2(a), goldenTable2},
		{"Table3", Table3(a), goldenTable3},
		{"Table4", Table4(a), goldenTable4},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s drifted from golden output:\n--- got ---\n%s--- want ---\n%s", c.name, c.got, c.want)
		}
	}
}
