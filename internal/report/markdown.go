package report

import (
	"fmt"
	"strings"

	"loadimb/internal/core"
)

// Markdown renders the four tables of an analysis as GitHub-flavored
// Markdown, ready to paste into issue trackers or EXPERIMENTS-style
// documents.
func Markdown(a *core.Analysis) string {
	var sb strings.Builder

	sb.WriteString("### Table 1 — wall clock time per region (seconds)\n\n")
	header := []string{"region", "overall"}
	for _, act := range a.Activities {
		header = append(header, act.Name)
	}
	writeMarkdownHeader(&sb, header)
	for _, r := range a.Profile.Regions {
		cols := []string{r.Region, formatTime(r.Time)}
		for j, t := range r.ByActivity {
			if r.Performed[j] {
				cols = append(cols, formatTime(t))
			} else {
				cols = append(cols, absent)
			}
		}
		writeMarkdownRow(&sb, cols)
	}

	sb.WriteString("\n### Table 2 — indices of dispersion ID_ij\n\n")
	writeMarkdownHeader(&sb, header[:1+len(a.Activities)][0:1], activityNames(a)...)
	for i, r := range a.Profile.Regions {
		cols := []string{r.Region}
		for j := range a.Activities {
			if c := a.Cells[i][j]; c.Defined {
				cols = append(cols, formatID(c.ID))
			} else {
				cols = append(cols, absent)
			}
		}
		writeMarkdownRow(&sb, cols)
	}

	sb.WriteString("\n### Table 3 — activity view\n\n")
	writeMarkdownHeader(&sb, []string{"activity", "ID_A", "SID_A"})
	for _, s := range a.Activities {
		if !s.Defined {
			writeMarkdownRow(&sb, []string{s.Name, absent, absent})
			continue
		}
		writeMarkdownRow(&sb, []string{s.Name, formatID(s.ID), formatID(s.SID)})
	}

	sb.WriteString("\n### Table 4 — code region view\n\n")
	writeMarkdownHeader(&sb, []string{"region", "ID_C", "SID_C"})
	for _, s := range a.Regions {
		if !s.Defined {
			writeMarkdownRow(&sb, []string{s.Name, absent, absent})
			continue
		}
		writeMarkdownRow(&sb, []string{s.Name, formatID(s.ID), formatID(s.SID)})
	}
	return sb.String()
}

func activityNames(a *core.Analysis) []string {
	out := make([]string, len(a.Activities))
	for j, s := range a.Activities {
		out[j] = s.Name
	}
	return out
}

func writeMarkdownHeader(sb *strings.Builder, first []string, rest ...string) {
	cols := append(append([]string(nil), first...), rest...)
	writeMarkdownRow(sb, cols)
	seps := make([]string, len(cols))
	for i := range seps {
		seps[i] = "---"
	}
	writeMarkdownRow(sb, seps)
}

func writeMarkdownRow(sb *strings.Builder, cols []string) {
	fmt.Fprintf(sb, "| %s |\n", strings.Join(cols, " | "))
}
