// Package report renders the methodology's results in the layouts of the
// paper's Tables 1-4, plus CSV exports for downstream tooling.
package report

import (
	"fmt"
	"strings"

	"loadimb/internal/core"
)

// absent is printed for undefined cells, as in the paper.
const absent = "-"

// formatTime prints a wall clock time with the paper's mixed precision
// (two or three decimals depending on magnitude is overkill; three
// significant decimals is faithful enough and unambiguous).
func formatTime(t float64) string {
	return trimZeros(fmt.Sprintf("%.3f", t))
}

func trimZeros(s string) string {
	if !strings.Contains(s, ".") {
		return s
	}
	s = strings.TrimRight(s, "0")
	return strings.TrimSuffix(s, ".")
}

func formatID(v float64) string {
	return fmt.Sprintf("%.5f", v)
}

// row renders one table row with fixed-width columns.
func row(cols []string, widths []int) string {
	var sb strings.Builder
	for c, s := range cols {
		if c > 0 {
			sb.WriteString("  ")
		}
		fmt.Fprintf(&sb, "%*s", widths[c], s)
	}
	return sb.String()
}

// widthsFor computes column widths from a header and rows.
func widthsFor(header []string, rows [][]string) []int {
	widths := make([]int, len(header))
	for c, h := range header {
		widths[c] = len(h)
	}
	for _, r := range rows {
		for c, s := range r {
			if len(s) > widths[c] {
				widths[c] = len(s)
			}
		}
	}
	return widths
}

func render(title string, header []string, rows [][]string) string {
	widths := widthsFor(header, rows)
	var sb strings.Builder
	sb.WriteString(title)
	sb.WriteString("\n")
	sb.WriteString(row(header, widths))
	sb.WriteString("\n")
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total-2))
	sb.WriteString("\n")
	for _, r := range rows {
		sb.WriteString(row(r, widths))
		sb.WriteString("\n")
	}
	return sb.String()
}

// Table1 renders the coarse-grain profile in the layout of the paper's
// Table 1: one row per region with the overall wall clock time and its
// breakdown into the activities.
func Table1(p *core.Profile) string {
	header := []string{"region", "overall"}
	for _, a := range p.Activities {
		header = append(header, a.Activity)
	}
	var rows [][]string
	for _, r := range p.Regions {
		cols := []string{r.Region, formatTime(r.Time)}
		for j, t := range r.ByActivity {
			if r.Performed[j] {
				cols = append(cols, formatTime(t))
			} else {
				cols = append(cols, absent)
			}
		}
		rows = append(rows, cols)
	}
	return render("Table 1: wall clock time of the regions and breakdown by activity (seconds)", header, rows)
}

// Table2 renders the dispersion matrix ID_ij in the layout of the paper's
// Table 2.
func Table2(a *core.Analysis) string {
	header := []string{"region"}
	for _, s := range a.Activities {
		header = append(header, s.Name)
	}
	var rows [][]string
	for i, r := range a.Profile.Regions {
		cols := []string{r.Region}
		for j := range a.Activities {
			cell := a.Cells[i][j]
			if cell.Defined {
				cols = append(cols, formatID(cell.ID))
			} else {
				cols = append(cols, absent)
			}
		}
		rows = append(rows, cols)
	}
	return render("Table 2: indices of dispersion ID_ij of the activities performed by the regions", header, rows)
}

// Table3 renders the activity view in the layout of the paper's Table 3.
func Table3(a *core.Analysis) string {
	header := []string{"activity", "ID_A", "SID_A"}
	var rows [][]string
	for _, s := range a.Activities {
		if !s.Defined {
			rows = append(rows, []string{s.Name, absent, absent})
			continue
		}
		rows = append(rows, []string{s.Name, formatID(s.ID), formatID(s.SID)})
	}
	return render("Table 3: summary of the indices of dispersion of the activity view", header, rows)
}

// Table4 renders the code-region view in the layout of the paper's
// Table 4.
func Table4(a *core.Analysis) string {
	header := []string{"region", "ID_C", "SID_C"}
	var rows [][]string
	for _, s := range a.Regions {
		if !s.Defined {
			rows = append(rows, []string{s.Name, absent, absent})
			continue
		}
		rows = append(rows, []string{s.Name, formatID(s.ID), formatID(s.SID)})
	}
	return render("Table 4: summary of the indices of dispersion of the code region view", header, rows)
}

// Summary renders the headline findings of an analysis in prose, mirroring
// the narrative of the paper's Section 4.
func Summary(a *core.Analysis) string {
	var sb strings.Builder
	p := a.Profile
	heavy := p.Regions[p.HeaviestRegion]
	fmt.Fprintf(&sb, "program wall clock time: %s s (instrumented: %s s)\n",
		formatTime(p.ProgramTime), formatTime(p.InstrumentedTime))
	fmt.Fprintf(&sb, "heaviest region: %s (%.1f%% of the program)\n", heavy.Region, heavy.Share*100)
	fmt.Fprintf(&sb, "dominant activity: %s (%.1f%%)\n",
		p.Activities[p.DominantActivity].Activity, p.Activities[p.DominantActivity].Share*100)
	mostImbA := mostImbalancedActivity(a)
	if mostImbA >= 0 {
		s := a.Activities[mostImbA]
		fmt.Fprintf(&sb, "most imbalanced activity: %s (ID_A %s, share %.2f%%, SID_A %s)\n",
			s.Name, formatID(s.ID), s.Share*100, formatID(s.SID))
	}
	mostImbC := mostImbalancedRegion(a)
	if mostImbC >= 0 {
		s := a.Regions[mostImbC]
		fmt.Fprintf(&sb, "most imbalanced region: %s (ID_C %s, SID_C %s)\n",
			s.Name, formatID(s.ID), formatID(s.SID))
	}
	if cands := a.TuningCandidates(core.MaxCriterion{}); len(cands) > 0 {
		s := a.Regions[cands[0].Pos]
		fmt.Fprintf(&sb, "tuning candidate (largest SID_C): %s (SID_C %s)\n", s.Name, formatID(s.SID))
	}
	if len(a.Clusters) > 0 {
		fmt.Fprintf(&sb, "region clusters:")
		for _, g := range a.Clusters {
			names := make([]string, len(g))
			for k, i := range g {
				names[k] = a.Profile.Regions[i].Region
			}
			fmt.Fprintf(&sb, " {%s}", strings.Join(names, ", "))
		}
		sb.WriteString("\n")
	}
	v := a.Processors
	fmt.Fprintf(&sb, "most frequently imbalanced processor: %d (on %d regions); longest imbalanced: %d (%s s)\n",
		v.MostFrequentlyImbalanced,
		len(v.Summaries[v.MostFrequentlyImbalanced].MostImbalancedOn),
		v.LongestImbalanced,
		formatTime(v.Summaries[v.LongestImbalanced].ImbalancedTime))
	return sb.String()
}

func mostImbalancedActivity(a *core.Analysis) int {
	best, bestVal := -1, 0.0
	for j, s := range a.Activities {
		if s.Defined && (best == -1 || s.ID > bestVal) {
			best, bestVal = j, s.ID
		}
	}
	return best
}

func mostImbalancedRegion(a *core.Analysis) int {
	best, bestVal := -1, 0.0
	for i, s := range a.Regions {
		if s.Defined && (best == -1 || s.ID > bestVal) {
			best, bestVal = i, s.ID
		}
	}
	return best
}

// CSV renders the full analysis as comma-separated records with a section
// column, convenient for plotting.
func CSV(a *core.Analysis) string {
	var sb strings.Builder
	sb.WriteString("section,region,activity,value\n")
	for _, r := range a.Profile.Regions {
		fmt.Fprintf(&sb, "region_time,%s,,%g\n", csvEscape(r.Region), r.Time)
		for j, t := range r.ByActivity {
			if r.Performed[j] {
				fmt.Fprintf(&sb, "cell_time,%s,%s,%g\n", csvEscape(r.Region), csvEscape(a.Activities[j].Name), t)
			}
		}
	}
	for i := range a.Cells {
		for j := range a.Cells[i] {
			c := a.Cells[i][j]
			if c.Defined {
				fmt.Fprintf(&sb, "dispersion,%s,%s,%g\n",
					csvEscape(a.Profile.Regions[i].Region), csvEscape(a.Activities[j].Name), c.ID)
			}
		}
	}
	for _, s := range a.Activities {
		if s.Defined {
			fmt.Fprintf(&sb, "activity_ID,,%s,%g\n", csvEscape(s.Name), s.ID)
			fmt.Fprintf(&sb, "activity_SID,,%s,%g\n", csvEscape(s.Name), s.SID)
		}
	}
	for _, s := range a.Regions {
		if s.Defined {
			fmt.Fprintf(&sb, "region_ID,%s,,%g\n", csvEscape(s.Name), s.ID)
			fmt.Fprintf(&sb, "region_SID,%s,,%g\n", csvEscape(s.Name), s.SID)
		}
	}
	return sb.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
