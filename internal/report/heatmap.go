package report

import (
	"fmt"
	"strings"

	"loadimb/internal/core"
)

// heatRunes shade dispersion magnitudes from negligible to extreme.
var heatRunes = []rune{'.', '-', '=', '#', '@'}

// Heatmap renders the ID_ij dispersion matrix as an ASCII heat map: one
// row per region, one column per activity, shaded by each cell's index
// relative to the largest index in the matrix. It is the at-a-glance
// companion of Table 2 for wide cubes where the numeric table does not
// fit.
func Heatmap(a *core.Analysis) string {
	maxID := 0.0
	for i := range a.Cells {
		for j := range a.Cells[i] {
			if c := a.Cells[i][j]; c.Defined && c.ID > maxID {
				maxID = c.ID
			}
		}
	}
	width := 0
	for _, r := range a.Profile.Regions {
		if len(r.Region) > width {
			width = len(r.Region)
		}
	}
	var sb strings.Builder
	sb.WriteString("dispersion heat map (columns: ")
	for j, s := range a.Activities {
		if j > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%d=%s", j+1, s.Name)
	}
	sb.WriteString(")\n")
	for i, r := range a.Profile.Regions {
		fmt.Fprintf(&sb, "%-*s |", width, r.Region)
		for j := range a.Activities {
			c := a.Cells[i][j]
			if !c.Defined {
				sb.WriteRune(' ')
				continue
			}
			sb.WriteRune(heatRune(c.ID, maxID))
		}
		sb.WriteString("|\n")
	}
	fmt.Fprintf(&sb, "scale: '%c' ~0", heatRunes[0])
	for k := 1; k < len(heatRunes); k++ {
		fmt.Fprintf(&sb, ", '%c' <= %.5f", heatRunes[k], maxID*float64(k)/float64(len(heatRunes)-1))
	}
	sb.WriteString("\n")
	return sb.String()
}

// heatRune maps a value in [0, max] to a shade.
func heatRune(v, max float64) rune {
	if max <= 0 {
		return heatRunes[0]
	}
	idx := int(v / max * float64(len(heatRunes)-1))
	if idx >= len(heatRunes) {
		idx = len(heatRunes) - 1
	}
	if idx < 0 {
		idx = 0
	}
	return heatRunes[idx]
}
