// Package diagnose turns window series into root-cause reports: which
// ranks behave unlike their peers, in which phase, and where the extra
// (or missing) time went. It is the programmatic layer Liu et al.
// ("Similarity Analysis in Automatic Performance Debugging of SPMD
// Parallel Programs") and Cankur & Karavanic argue for on top of the
// paper's dispersion indices — ID_P says a run is imbalanced, the
// diagnosis names the rank and the activity.
//
// The mechanism: per detected phase, each rank gets a behavioral
// fingerprint — its per-activity and per-region busy time inside the
// phase, normalized by the phase duration so every dimension is a
// utilization in [0, 1] and phases of different lengths are comparable.
// Fingerprints are clustered into cohorts with silhouette-selected
// k-means (internal/cluster); each rank's divergence is its distance to
// the cohort it is read against, expressed in units of the pooled cohort
// scatter. Ranks isolated in a singleton cohort are scored against the
// nearest real cohort — a lone diverged rank is the most interesting
// finding, not a degenerate case to drop — and are reported at a lower
// score bar than cohort members, since the partition itself is evidence.
//
// Diagnose is deterministic and never fails: degenerate inputs (no
// series, one rank, all-idle phases) produce an empty report, the
// shape the wire endpoints serve unconditionally.
package diagnose

import (
	"fmt"
	"math"
	"sort"

	"loadimb/internal/cluster"
	"loadimb/internal/temporal"
)

// Dimension kinds a fingerprint coordinate can carry.
const (
	// KindActivity marks a coordinate measuring one activity class's
	// utilization (computation, p2p, ...).
	KindActivity = "activity"
	// KindRegion marks a coordinate measuring one code region's
	// utilization; in federated reports region names are job-namespaced.
	KindRegion = "region"
	// KindTotal marks the single aggregate-busy-time coordinate used when
	// the series carries neither per-activity nor per-region vectors.
	KindTotal = "total"
)

// Options tunes a diagnosis. The zero value is the served default.
type Options struct {
	// MaxCohorts caps the number of cohorts tried per phase; 0 means 4.
	// The silhouette criterion picks the best k in [2, MaxCohorts], or
	// one cohort when no split scores better.
	MaxCohorts int
	// Threshold is the divergence score, in pooled-scatter units, at or
	// above which a cohort member becomes a finding; 0 means 3. Ranks the
	// clustering already isolated in a singleton cohort are held to the
	// lower loneThreshold instead — the partition itself is evidence —
	// but still need a divergence exceeding the pooled scatter, or an
	// arbitrary split of identical fingerprints would read as a finding.
	Threshold float64
	// TopDims caps the dominant contributions attached to a finding;
	// 0 means 3.
	TopDims int
	// RankLabels optionally names each rank for display (index = rank).
	// The federation layer passes job-namespaced labels ("job/3") so
	// findings name ranks the way the merged cube does.
	RankLabels []string
}

// loneThreshold is the minimum divergence score (in pooled-scatter
// units) a singleton-cohort rank must reach to be reported. k-means
// happily splits a set of identical fingerprints, so the isolation alone
// is not evidence; a distance beyond the surviving cohorts' own scatter
// is.
const loneThreshold = 1

func (o Options) maxCohorts() int {
	if o.MaxCohorts <= 0 {
		return 4
	}
	return o.MaxCohorts
}

func (o Options) threshold() float64 {
	if o.Threshold <= 0 {
		return 3
	}
	return o.Threshold
}

func (o Options) topDims() int {
	if o.TopDims <= 0 {
		return 3
	}
	return o.TopDims
}

// Dimension names one fingerprint coordinate.
type Dimension struct {
	// Name is the activity, region, or "busy" for the aggregate
	// coordinate.
	Name string `json:"name"`
	// Kind is KindActivity, KindRegion or KindTotal.
	Kind string `json:"kind"`
}

// Cohort is one group of behaviorally similar ranks within a phase.
type Cohort struct {
	// Ranks lists the member ranks, ascending.
	Ranks []int `json:"ranks"`
	// Centroid is the cohort's mean fingerprint, indexed like the
	// report's Dimensions.
	Centroid []float64 `json:"centroid"`
	// Spread is the root-mean-square member-to-centroid distance; 0 for
	// a singleton cohort.
	Spread float64 `json:"spread"`
}

// PhaseDiagnosis is the clustering of one phase's fingerprints.
type PhaseDiagnosis struct {
	// Phase is the 1-based phase ordinal, matching /phases.json order.
	Phase int `json:"phase"`
	// Start and End are the phase's virtual-time bounds; Label its
	// idle/quiet/hot classification.
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	Label string  `json:"label"`
	// Cohorts are the rank groups, largest first.
	Cohorts []Cohort `json:"cohorts"`
	// Silhouette is the clustering's mean silhouette coefficient; 0 when
	// the phase has a single cohort (the score needs two groups).
	Silhouette float64 `json:"silhouette"`
	// Scale is the pooled RMS member-to-centroid distance the phase's
	// divergence scores are expressed in.
	Scale float64 `json:"scale"`
}

// Contribution attributes part of a divergence to one dimension.
type Contribution struct {
	// Dimension and Kind name the coordinate (see Dimension).
	Dimension string `json:"dimension"`
	Kind      string `json:"kind"`
	// Delta is the rank's utilization minus the reference cohort's, in
	// absolute utilization units (fraction of the phase duration).
	Delta float64 `json:"delta"`
	// Percent is Delta as a percentage of the cohort's utilization;
	// omitted when the cohort's utilization is ~0 (the ratio would be
	// infinite, which JSON cannot carry).
	Percent *float64 `json:"percent,omitempty"`
}

// Finding is one diverged rank in one phase.
type Finding struct {
	// Rank is the diverged processor; RankLabel its display name when
	// Options.RankLabels was set.
	Rank      int    `json:"rank"`
	RankLabel string `json:"rank_label,omitempty"`
	// Phase is the 1-based phase ordinal; Start and End its bounds.
	Phase int     `json:"phase"`
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	// Cohort indexes the reference cohort in the phase's Cohorts list —
	// the rank's own cohort, or the nearest other cohort when the rank
	// was isolated in a singleton (Lone true).
	Cohort int `json:"cohort"`
	// CohortSize is the reference cohort's member count.
	CohortSize int `json:"cohort_size"`
	// Lone marks a rank the clustering isolated in its own cohort.
	Lone bool `json:"lone,omitempty"`
	// Distance is the Euclidean fingerprint distance to the reference
	// centroid; Score is Distance in units of the phase's pooled scatter.
	Distance float64 `json:"distance"`
	Score    float64 `json:"score"`
	// Dominant lists the largest contributions to the divergence, by
	// absolute delta.
	Dominant []Contribution `json:"dominant,omitempty"`
	// Summary is the human-readable one-liner.
	Summary string `json:"summary"`
}

// Report is the full diagnosis — the /diagnose.json document and the
// imba -diagnose payload.
type Report struct {
	// Window is the window width; Procs the rank count.
	Window float64 `json:"window"`
	Procs  int     `json:"procs"`
	// Dimensions names the fingerprint coordinates; every centroid is
	// indexed by it.
	Dimensions []Dimension `json:"dimensions"`
	// Phases holds one diagnosis per detected phase, in phase order.
	Phases []PhaseDiagnosis `json:"phases"`
	// Findings holds every diverged rank across all phases, by
	// descending score.
	Findings []Finding `json:"findings"`
}

// Diagnose clusters per-rank fingerprints phase by phase and reports
// diverged ranks. phases must be a segmentation of ser's own trajectory
// (Segment output over ser.Stats(), or the live path's summarized
// phases); opts zero value serves the defaults.
func Diagnose(ser *temporal.Series, phases []temporal.Phase, opts Options) *Report {
	rep := &Report{}
	if ser == nil {
		return rep
	}
	rep.Window = ser.Window
	rep.Procs = ser.Procs
	rep.Dimensions = dimensions(ser)
	if ser.Procs < 2 || len(phases) == 0 || len(rep.Dimensions) == 0 {
		return rep
	}
	// Member windows are contiguous in the series: phases partition the
	// window sequence in order, so one cursor walks it once.
	pos := 0
	for i, ph := range phases {
		for pos < len(ser.Windows) && ser.Windows[pos].Index < ph.FirstWindow {
			pos++
		}
		first := pos
		for pos < len(ser.Windows) && ser.Windows[pos].Index <= ph.LastWindow {
			pos++
		}
		pd := PhaseDiagnosis{Phase: i + 1, Start: ph.Start, End: ph.End, Label: ph.Label}
		points := fingerprints(ser, rep.Dimensions, first, pos, ph)
		diagnosePhase(rep, &pd, points, opts)
		rep.Phases = append(rep.Phases, pd)
	}
	sort.SliceStable(rep.Findings, func(a, b int) bool {
		fa, fb := rep.Findings[a], rep.Findings[b]
		if fa.Score != fb.Score {
			return fa.Score > fb.Score
		}
		if fa.Phase != fb.Phase {
			return fa.Phase < fb.Phase
		}
		return fa.Rank < fb.Rank
	})
	return rep
}

// dimensions derives the fingerprint coordinate list from what the
// series tracked: activities, then regions, both sorted; the aggregate
// busy time alone when neither was recorded.
func dimensions(ser *temporal.Series) []Dimension {
	var dims []Dimension
	for _, a := range ser.ActivityNames() {
		dims = append(dims, Dimension{Name: a, Kind: KindActivity})
	}
	for _, r := range ser.RegionNames() {
		dims = append(dims, Dimension{Name: r, Kind: KindRegion})
	}
	if dims == nil && len(ser.Windows) > 0 {
		dims = []Dimension{{Name: "busy", Kind: KindTotal}}
	}
	return dims
}

// fingerprints builds the phase's rank-by-dimension utilization matrix
// from the series windows in [first, last).
func fingerprints(ser *temporal.Series, dims []Dimension, first, last int, ph temporal.Phase) [][]float64 {
	points := make([][]float64, ser.Procs)
	for p := range points {
		points[p] = make([]float64, len(dims))
	}
	dur := ph.End - ph.Start
	if dur <= 0 || first >= last {
		return points
	}
	for w := first; w < last; w++ {
		v := &ser.Windows[w]
		for d, dim := range dims {
			var vec []float64
			switch dim.Kind {
			case KindActivity:
				vec = v.PerActivity[dim.Name]
			case KindRegion:
				vec = v.PerRegion[dim.Name]
			default:
				vec = v.ProcSeconds
			}
			for p, t := range vec {
				if p < len(points) {
					points[p][d] += t
				}
			}
		}
	}
	for p := range points {
		for d := range points[p] {
			points[p][d] /= dur
		}
	}
	return points
}

// diagnosePhase clusters one phase's fingerprints into pd and appends
// the phase's findings to rep.
func diagnosePhase(rep *Report, pd *PhaseDiagnosis, points [][]float64, opts Options) {
	// An all-idle phase has no behavior to compare: one empty-handed
	// cohort of everyone, no findings.
	allZero := true
	for _, p := range points {
		for _, v := range p {
			if v != 0 {
				allZero = false
				break
			}
		}
	}
	if allZero {
		pd.Cohorts = []Cohort{{Ranks: rankList(len(points)), Centroid: make([]float64, len(rep.Dimensions))}}
		return
	}
	maxK := opts.maxCohorts()
	if maxK > len(points) {
		maxK = len(points)
	}
	res, k, err := cluster.BestK(points, maxK, cluster.Options{})
	if err != nil {
		return // unreachable for validated non-empty points; degrade to no cohorts
	}
	dists, err := cluster.Distances(points, res.Centroids, res.Assign)
	if err != nil {
		return
	}
	groups := res.Groups()
	spreads, err := cluster.SpreadByCluster(dists, res.Assign, k)
	if err != nil {
		return
	}
	// Pooled scatter over ranks in real (multi-member) cohorts, floored
	// so perfectly tight cohorts still divide cleanly: the floor is tiny
	// against any real utilization signal but keeps scores finite and
	// deterministic.
	sumSq, n := 0.0, 0
	for p, d := range dists {
		if len(groups[res.Assign[p]]) >= 2 {
			sumSq += d * d
			n++
		}
	}
	scale := 0.0
	if n > 0 {
		scale = math.Sqrt(sumSq / float64(n))
	}
	if floor := scaleFloor(points); scale < floor {
		scale = floor
	}
	pd.Scale = scale
	// Cohorts largest first; order[c] maps cluster id to cohort index.
	order := make([]int, k)
	idx := make([]int, k)
	for c := range idx {
		idx[c] = c
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if len(groups[idx[a]]) != len(groups[idx[b]]) {
			return len(groups[idx[a]]) > len(groups[idx[b]])
		}
		return firstRank(groups[idx[a]]) < firstRank(groups[idx[b]])
	})
	for pos, c := range idx {
		order[c] = pos
		pd.Cohorts = append(pd.Cohorts, Cohort{
			Ranks:    append([]int(nil), groups[c]...),
			Centroid: append([]float64(nil), res.Centroids[c]...),
			Spread:   spreads[c],
		})
	}
	if k >= 2 {
		if s, err := cluster.Silhouette(points, res.Assign); err == nil {
			pd.Silhouette = s
		}
	}
	for p := range points {
		own := res.Assign[p]
		ref := own
		lone := len(groups[own]) == 1
		if lone {
			ref = cluster.NearestOther(points[p], res.Centroids, own)
			if ref < 0 || len(groups[ref]) < 2 {
				// No real cohort to read the lone rank against (e.g. two
				// ranks, each its own cohort): divergence is undefined.
				continue
			}
		}
		d := math.Sqrt(sqDist(points[p], res.Centroids[ref]))
		score := d / scale
		if lone {
			if score < loneThreshold {
				continue
			}
		} else if score < opts.threshold() {
			continue
		}
		f := Finding{
			Rank:       p,
			Phase:      pd.Phase,
			Start:      pd.Start,
			End:        pd.End,
			Cohort:     order[ref],
			CohortSize: len(groups[ref]),
			Lone:       lone,
			Distance:   d,
			Score:      score,
		}
		if p < len(opts.RankLabels) {
			f.RankLabel = opts.RankLabels[p]
		}
		f.Dominant = attribute(points[p], res.Centroids[ref], rep.Dimensions, opts.topDims())
		f.Summary = summarize(f)
		rep.Findings = append(rep.Findings, f)
	}
}

// scaleFloor is the deterministic lower bound on a phase's score scale:
// a millionth of the fingerprints' RMS magnitude (plus an absolute
// epsilon for all-but-zero phases), so identical-cohort phases score
// their outlier enormously instead of dividing by zero.
func scaleFloor(points [][]float64) float64 {
	sumSq, n := 0.0, 0
	for _, p := range points {
		for _, v := range p {
			sumSq += v * v
			n++
		}
	}
	rms := 0.0
	if n > 0 {
		rms = math.Sqrt(sumSq / float64(n))
	}
	return 1e-12 + 1e-6*rms
}

// attribute ranks the reference-relative utilization deltas and keeps
// the top contributions.
func attribute(x, ref []float64, dims []Dimension, top int) []Contribution {
	var out []Contribution
	for d := range x {
		delta := x[d] - ref[d]
		if delta == 0 {
			continue
		}
		c := Contribution{Dimension: dims[d].Name, Kind: dims[d].Kind, Delta: delta}
		if ref[d] > 1e-12 {
			pct := 100 * delta / ref[d]
			c.Percent = &pct
		}
		out = append(out, c)
	}
	sort.SliceStable(out, func(a, b int) bool {
		da, db := math.Abs(out[a].Delta), math.Abs(out[b].Delta)
		if da != db {
			return da > db
		}
		return out[a].Dimension < out[b].Dimension
	})
	if len(out) > top {
		out = out[:top]
	}
	return out
}

// summarize renders the finding's one-liner, e.g.
//
//	rank 17 diverged from its 63-rank cohort in phase 3 (4.2σ), dominated by p2p (+38%)
func summarize(f Finding) string {
	rank := fmt.Sprintf("rank %d", f.Rank)
	if f.RankLabel != "" {
		rank = "rank " + f.RankLabel
	}
	verb := "diverged from"
	if f.Lone {
		verb = "split off from"
	}
	s := fmt.Sprintf("%s %s its %d-rank cohort in phase %d (%.1fσ)", rank, verb, f.CohortSize, f.Phase, f.Score)
	if len(f.Dominant) > 0 {
		c := f.Dominant[0]
		dim := c.Dimension
		if c.Kind == KindRegion {
			dim = fmt.Sprintf("region %q", c.Dimension)
		}
		if c.Percent != nil {
			s += fmt.Sprintf(", dominated by %s (%+.0f%%)", dim, *c.Percent)
		} else {
			s += fmt.Sprintf(", dominated by %s (Δ%+.3f util)", dim, c.Delta)
		}
	}
	return s
}

func rankList(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func firstRank(g []int) int {
	if len(g) == 0 {
		return math.MaxInt
	}
	return g[0]
}

// sqDist is the squared Euclidean distance (duplicated from
// internal/cluster, which keeps it unexported).
func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
