package diagnose

import (
	"math"
	"reflect"
	"testing"

	"loadimb/internal/temporal"
	"loadimb/internal/trace"
)

// stragglerSeries folds a synthetic two-phase run over procs ranks:
// phase A (4 windows) is balanced computation; in phase B (4 windows)
// every rank adds p2p time, with rank `culprit` spending extra seconds
// in it per window. The imbalance level shift makes the segmentation
// cut between the phases.
func stragglerSeries(t *testing.T, procs, culprit int, extra float64) (*temporal.Series, []temporal.Phase) {
	t.Helper()
	f := temporal.NewFold(temporal.Options{Window: 1.0, PerActivity: true, PerRegion: true, Procs: procs})
	for w := 0; w < 8; w++ {
		lo := float64(w)
		for p := 0; p < procs; p++ {
			f.Add(trace.Event{Rank: p, Region: "solve", Activity: "computation", Start: lo, End: lo + 0.5})
			if w >= 4 {
				d := 0.2
				if p == culprit {
					d += extra
				}
				f.Add(trace.Event{Rank: p, Region: "halo", Activity: "p2p", Start: lo + 0.5, End: lo + 0.5 + d})
			}
		}
	}
	ser := f.Series()
	phases := temporal.Segment(ser.Stats(), 0)
	return ser, phases
}

func TestDiagnoseLocalizesStraggler(t *testing.T) {
	ser, phases := stragglerSeries(t, 16, 5, 0.25)
	rep := Diagnose(ser, phases, Options{})
	if rep.Procs != 16 || rep.Window != 1.0 {
		t.Fatalf("report header: procs=%d window=%g", rep.Procs, rep.Window)
	}
	wantDims := []Dimension{
		{Name: "computation", Kind: KindActivity},
		{Name: "p2p", Kind: KindActivity},
		{Name: "halo", Kind: KindRegion},
		{Name: "solve", Kind: KindRegion},
	}
	if !reflect.DeepEqual(rep.Dimensions, wantDims) {
		t.Fatalf("dimensions = %+v", rep.Dimensions)
	}
	if len(rep.Findings) == 0 {
		t.Fatal("no findings for an injected straggler")
	}
	top := rep.Findings[0]
	if top.Rank != 5 {
		t.Fatalf("top finding rank = %d, want 5 (findings: %+v)", top.Rank, rep.Findings)
	}
	if len(top.Dominant) == 0 {
		t.Fatal("top finding has no attribution")
	}
	lead := top.Dominant[0]
	if lead.Dimension != "p2p" && lead.Dimension != "halo" {
		t.Errorf("dominant dimension = %s/%s, want p2p or halo", lead.Kind, lead.Dimension)
	}
	if lead.Delta <= 0 {
		t.Errorf("dominant delta = %g, want positive (extra time)", lead.Delta)
	}
	if lead.Percent == nil || *lead.Percent <= 0 {
		t.Errorf("dominant percent = %v, want positive", lead.Percent)
	}
	if top.Summary == "" {
		t.Error("empty summary")
	}
	// The straggler must not be flagged in the balanced phase.
	for _, f := range rep.Findings {
		if f.Phase == 1 {
			t.Errorf("finding in the balanced phase: %+v", f)
		}
	}
}

func TestDiagnoseSingletonCohortReported(t *testing.T) {
	// A huge divergence isolates the culprit in its own cohort; it must
	// be reported against the nearest real cohort, not dropped.
	ser, phases := stragglerSeries(t, 16, 13, 0.3)
	rep := Diagnose(ser, phases, Options{})
	var hit *Finding
	for i := range rep.Findings {
		if rep.Findings[i].Rank == 13 {
			hit = &rep.Findings[i]
			break
		}
	}
	if hit == nil {
		t.Fatalf("rank 13 not in findings: %+v", rep.Findings)
	}
	if !hit.Lone {
		t.Skipf("clustering kept rank 13 in the main cohort (score %.1f); lone path not exercised", hit.Score)
	}
	if hit.CohortSize < 2 {
		t.Errorf("lone finding's reference cohort size = %d, want >= 2", hit.CohortSize)
	}
	if math.IsNaN(hit.Score) || math.IsInf(hit.Score, 0) || hit.Score <= 0 {
		t.Errorf("lone finding score = %v", hit.Score)
	}
}

func TestDiagnoseDegenerateInputs(t *testing.T) {
	if rep := Diagnose(nil, nil, Options{}); rep == nil || len(rep.Findings) != 0 {
		t.Fatalf("nil series: %+v", rep)
	}
	empty := &temporal.Series{Window: 1, Procs: 0}
	if rep := Diagnose(empty, nil, Options{}); len(rep.Findings) != 0 || len(rep.Phases) != 0 {
		t.Fatalf("empty series: %+v", rep)
	}
	// Single rank: nothing to compare against.
	f := temporal.NewFold(temporal.Options{Window: 1, PerActivity: true})
	f.Add(trace.Event{Rank: 0, Region: "r", Activity: "a", Start: 0, End: 3})
	ser := f.Series()
	rep := Diagnose(ser, temporal.Segment(ser.Stats(), 0), Options{})
	if len(rep.Findings) != 0 {
		t.Fatalf("single-rank findings: %+v", rep.Findings)
	}
	// All-idle phase: one cohort of everyone, no findings, no NaN.
	f2 := temporal.NewFold(temporal.Options{Window: 1, Procs: 4, PerActivity: true})
	f2.Add(trace.Event{Rank: 3, Region: "r", Activity: "a", Start: 0.5, End: 0.5})
	ser2 := f2.Series()
	rep2 := Diagnose(ser2, temporal.Segment(ser2.Stats(), 0), Options{})
	if len(rep2.Findings) != 0 {
		t.Fatalf("all-idle findings: %+v", rep2.Findings)
	}
	for _, pd := range rep2.Phases {
		if len(pd.Cohorts) != 1 || len(pd.Cohorts[0].Ranks) != 4 {
			t.Fatalf("all-idle phase cohorts: %+v", pd.Cohorts)
		}
	}
}

func TestDiagnoseTwoRanksNoFalseFinding(t *testing.T) {
	// With two ranks a split makes both singletons; neither has a real
	// cohort to be read against, so divergence is undefined — no
	// findings rather than two arbitrary ones.
	ser, phases := stragglerSeries(t, 2, 1, 0.25)
	rep := Diagnose(ser, phases, Options{})
	for _, f := range rep.Findings {
		if f.Lone {
			t.Fatalf("lone finding without a real reference cohort: %+v", f)
		}
	}
}

func TestDiagnoseRankLabels(t *testing.T) {
	ser, phases := stragglerSeries(t, 8, 2, 0.25)
	labels := []string{"a/0", "a/1", "a/2", "a/3", "b/0", "b/1", "b/2", "b/3"}
	rep := Diagnose(ser, phases, Options{RankLabels: labels})
	if len(rep.Findings) == 0 {
		t.Fatal("no findings")
	}
	top := rep.Findings[0]
	if top.RankLabel != "a/2" {
		t.Errorf("rank label = %q, want a/2", top.RankLabel)
	}
	if want := "rank a/2 "; len(top.Summary) < len(want) || top.Summary[:len(want)] != want {
		t.Errorf("summary = %q, want it to open with %q", top.Summary, want)
	}
}

func TestDiagnoseDeterministic(t *testing.T) {
	ser, phases := stragglerSeries(t, 16, 9, 0.2)
	a := Diagnose(ser, phases, Options{})
	b := Diagnose(ser, phases, Options{})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two identical diagnoses differ")
	}
}

func TestDiagnoseAggregateFallback(t *testing.T) {
	// A series without per-activity/per-region vectors still diagnoses
	// on the aggregate busy dimension.
	f := temporal.NewFold(temporal.Options{Window: 1, Procs: 8})
	for w := 0; w < 6; w++ {
		lo := float64(w)
		for p := 0; p < 8; p++ {
			d := 0.4
			if w >= 3 && p == 6 {
				d = 0.9
			}
			f.Add(trace.Event{Rank: p, Region: "r", Activity: "a", Start: lo, End: lo + d})
		}
	}
	ser := f.Series()
	rep := Diagnose(ser, temporal.Segment(ser.Stats(), 0), Options{})
	if want := []Dimension{{Name: "busy", Kind: KindTotal}}; !reflect.DeepEqual(rep.Dimensions, want) {
		t.Fatalf("dimensions = %+v", rep.Dimensions)
	}
	if len(rep.Findings) == 0 || rep.Findings[0].Rank != 6 {
		t.Fatalf("findings = %+v, want rank 6 on top", rep.Findings)
	}
}
