package diagnose

import (
	"math"
	"testing"

	"loadimb/internal/temporal"
)

// FuzzDiagnose drives Diagnose with arbitrary window series shapes —
// including the degenerate all-zero, single-rank and single-phase ones —
// and asserts the report invariants: no panic, every score finite and
// nonnegative, ranks and phase ordinals in range, findings sorted by
// descending score, and cohorts partitioning the rank set of every
// diagnosed phase.
func FuzzDiagnose(f *testing.F) {
	f.Add(uint8(4), uint8(8), uint16(0), false, false)      // all-zero fingerprints
	f.Add(uint8(1), uint8(6), uint16(0xBEEF), true, true)   // single rank
	f.Add(uint8(8), uint8(1), uint16(0x1234), true, false)  // single window / single phase
	f.Add(uint8(16), uint8(12), uint16(0xCAFE), true, true) // generic shape
	f.Add(uint8(3), uint8(20), uint16(0x00FF), false, true) // regions only
	f.Fuzz(func(t *testing.T, nprocs, nwins uint8, seed uint16, withAct, withReg bool) {
		procs := int(nprocs%32) + 1
		wins := int(nwins % 64)
		// A cheap deterministic generator (xorshift) drives the busy
		// values; the fuzzer explores shape + seed space.
		state := uint32(seed) | 1
		next := func() float64 {
			state ^= state << 13
			state ^= state >> 17
			state ^= state << 5
			return float64(state%1000) / 1000.0
		}
		ser := &temporal.Series{Window: 0.5, Procs: procs}
		for w := 0; w < wins; w++ {
			v := temporal.WindowVector{Index: w, Events: 1, ProcSeconds: make([]float64, procs)}
			for p := 0; p < procs; p++ {
				v.ProcSeconds[p] = next() * ser.Window
			}
			if withAct {
				v.PerActivity = map[string][]float64{"compute": make([]float64, procs), "wait": make([]float64, procs)}
				for p := 0; p < procs; p++ {
					split := next()
					v.PerActivity["compute"][p] = v.ProcSeconds[p] * split
					v.PerActivity["wait"][p] = v.ProcSeconds[p] * (1 - split)
				}
			}
			if withReg {
				v.PerRegion = map[string][]float64{"main": append([]float64(nil), v.ProcSeconds...)}
			}
			ser.Windows = append(ser.Windows, v)
		}
		phases := temporal.Segment(ser.Stats(), 0)
		rep := Diagnose(ser, phases, Options{})
		if rep == nil {
			t.Fatal("nil report")
		}
		if len(rep.Phases) > len(phases) {
			t.Fatalf("%d diagnosed phases for %d segmented", len(rep.Phases), len(phases))
		}
		prev := math.Inf(1)
		for i, fd := range rep.Findings {
			if fd.Rank < 0 || fd.Rank >= procs {
				t.Fatalf("finding %d rank %d out of [0, %d)", i, fd.Rank, procs)
			}
			if fd.Phase < 1 || fd.Phase > len(rep.Phases) {
				t.Fatalf("finding %d phase %d out of range", i, fd.Phase)
			}
			if math.IsNaN(fd.Score) || math.IsInf(fd.Score, 0) || fd.Score < 0 {
				t.Fatalf("finding %d score %v", i, fd.Score)
			}
			if math.IsNaN(fd.Distance) || fd.Distance < 0 {
				t.Fatalf("finding %d distance %v", i, fd.Distance)
			}
			if fd.Score > prev {
				t.Fatalf("findings not sorted: score %g after %g", fd.Score, prev)
			}
			prev = fd.Score
			if fd.CohortSize < 1 || fd.Cohort < 0 {
				t.Fatalf("finding %d cohort ref %d size %d", i, fd.Cohort, fd.CohortSize)
			}
			for _, c := range fd.Dominant {
				if math.IsNaN(c.Delta) || math.IsInf(c.Delta, 0) {
					t.Fatalf("finding %d contribution delta %v", i, c.Delta)
				}
				if c.Percent != nil && (math.IsNaN(*c.Percent) || math.IsInf(*c.Percent, 0)) {
					t.Fatalf("finding %d contribution percent %v", i, *c.Percent)
				}
			}
		}
		for _, pd := range rep.Phases {
			if len(pd.Cohorts) == 0 {
				continue // clustering degraded; no cohort claims made
			}
			seen := make(map[int]bool)
			for _, c := range pd.Cohorts {
				for _, r := range c.Ranks {
					if r < 0 || r >= procs || seen[r] {
						t.Fatalf("phase %d cohorts are not a partition: rank %d", pd.Phase, r)
					}
					seen[r] = true
				}
				if len(c.Centroid) != len(rep.Dimensions) {
					t.Fatalf("phase %d centroid has %d dims, report has %d", pd.Phase, len(c.Centroid), len(rep.Dimensions))
				}
				if math.IsNaN(pd.Scale) || pd.Scale < 0 || math.IsNaN(c.Spread) || c.Spread < 0 {
					t.Fatalf("phase %d scale %v spread %v", pd.Phase, pd.Scale, c.Spread)
				}
			}
			if len(seen) != procs {
				t.Fatalf("phase %d cohorts cover %d of %d ranks", pd.Phase, len(seen), procs)
			}
		}
	})
}
