package tracefmt

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"loadimb/internal/temporal"
	"loadimb/internal/trace"
)

// deltaCube builds a small cube with a few nonzero cells.
func deltaCube(t *testing.T) *trace.Cube {
	t.Helper()
	c, err := trace.NewCube([]string{"solve", "exchange"}, []string{"comp", "comm"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		for p := 0; p < 4; p++ {
			if err := c.Set(i, 0, p, float64(10+i)+0.25*float64(p)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := c.Set(1, 1, 2, 3.5); err != nil {
		t.Fatal(err)
	}
	return c
}

// deltaSeries folds a handful of events into a window series with every
// optional field populated.
func deltaSeries(t *testing.T, extra ...trace.Event) *temporal.Series {
	t.Helper()
	fold := temporal.NewFold(temporal.Options{
		Window:          1.0,
		Procs:           4,
		TrackActivities: true,
		PerActivity:     true,
		PerRegion:       true,
		WindowCap:       8,
	})
	events := []trace.Event{
		{Rank: 0, Region: "solve", Activity: "comp", Start: 0, End: 2.5},
		{Rank: 1, Region: "solve", Activity: "comp", Start: 0.5, End: 2},
		{Rank: 2, Region: "exchange", Activity: "comm", Start: 2, End: 4},
		{Rank: 3, Region: "solve", Activity: "comp", Start: 3, End: 3.75},
	}
	for _, e := range append(events, extra...) {
		fold.Add(e)
	}
	return fold.Series()
}

// cubesEqual compares two cubes bit-for-bit including names and resolved
// program time.
func cubesEqual(t *testing.T, want, got *trace.Cube) {
	t.Helper()
	if want == nil || got == nil {
		if want != got {
			t.Fatalf("cube nil mismatch: want %v got %v", want == nil, got == nil)
		}
		return
	}
	if !reflect.DeepEqual(want.Regions(), got.Regions()) {
		t.Fatalf("regions %v != %v", got.Regions(), want.Regions())
	}
	if !reflect.DeepEqual(want.Activities(), got.Activities()) {
		t.Fatalf("activities %v != %v", got.Activities(), want.Activities())
	}
	if want.NumProcs() != got.NumProcs() {
		t.Fatalf("procs %d != %d", got.NumProcs(), want.NumProcs())
	}
	for i := 0; i < want.NumRegions(); i++ {
		for j := 0; j < want.NumActivities(); j++ {
			wv, _ := want.ProcTimes(i, j)
			gv, _ := got.ProcTimes(i, j)
			for p := range wv {
				if math.Float64bits(wv[p]) != math.Float64bits(gv[p]) {
					t.Fatalf("cell (%d,%d,%d): got %v want %v", i, j, p, gv[p], wv[p])
				}
			}
		}
	}
	if math.Float64bits(want.ProgramTime()) != math.Float64bits(got.ProgramTime()) {
		t.Fatalf("program time: got %v want %v", got.ProgramTime(), want.ProgramTime())
	}
}

func statesEqual(t *testing.T, want, got *DeltaState) {
	t.Helper()
	if got.Boot != want.Boot || got.Gen != want.Gen {
		t.Fatalf("identity: got (%x,%d) want (%x,%d)", got.Boot, got.Gen, want.Boot, want.Gen)
	}
	cubesEqual(t, want.Cube, got.Cube)
	if !reflect.DeepEqual(want.Series, got.Series) {
		t.Fatalf("series mismatch:\n got %+v\nwant %+v", got.Series, want.Series)
	}
}

func TestDeltaFullRoundTrip(t *testing.T) {
	cases := []struct {
		name  string
		state *DeltaState
	}{
		{"cube and series", &DeltaState{Boot: 0xdead, Gen: 7, Cube: deltaCube(t), Series: deltaSeries(t)}},
		{"cube only", &DeltaState{Boot: 1, Gen: 1, Cube: deltaCube(t)}},
		{"series only", &DeltaState{Boot: 2, Gen: 3, Series: deltaSeries(t)}},
		{"empty", &DeltaState{Boot: 9, Gen: 0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			doc, err := EncodeSnapshotFull(tc.state)
			if err != nil {
				t.Fatal(err)
			}
			got, err := DecodeSnapshot(doc, nil)
			if err != nil {
				t.Fatal(err)
			}
			statesEqual(t, tc.state, got)
		})
	}
}

func TestDeltaFullExplicitProgramTime(t *testing.T) {
	c := deltaCube(t)
	if err := c.SetProgramTime(1000); err != nil {
		t.Fatal(err)
	}
	state := &DeltaState{Boot: 1, Gen: 1, Cube: c}
	doc, err := EncodeSnapshotFull(state)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSnapshot(doc, nil)
	if err != nil {
		t.Fatal(err)
	}
	cubesEqual(t, c, got.Cube)
}

func TestDeltaPatchRoundTrip(t *testing.T) {
	base := &DeltaState{Boot: 5, Gen: 10, Cube: deltaCube(t), Series: deltaSeries(t)}
	// Next generation: a couple of cells move, one new window appears,
	// an old window's vector changes.
	cube := base.Cube.Clone()
	if err := cube.Add(0, 0, 1, 0.125); err != nil {
		t.Fatal(err)
	}
	if err := cube.Set(1, 1, 3, 42); err != nil {
		t.Fatal(err)
	}
	series := deltaSeries(t,
		trace.Event{Rank: 1, Region: "solve", Activity: "comp", Start: 3.1, End: 5.5},
	)
	cur := &DeltaState{Boot: 5, Gen: 11, Cube: cube, Series: series}

	doc, err := EncodeSnapshotDelta(base, cur)
	if err != nil {
		t.Fatal(err)
	}
	full, err := EncodeSnapshotFull(cur)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc) >= len(full) {
		t.Errorf("delta (%d bytes) not smaller than full (%d bytes)", len(doc), len(full))
	}
	got, err := DecodeSnapshot(doc, base)
	if err != nil {
		t.Fatal(err)
	}
	statesEqual(t, cur, got)
	// The base must be untouched by the patch application.
	if v, _ := base.Cube.At(1, 1, 3); v == 42 {
		t.Fatal("patch mutated the base cube")
	}
}

func TestDeltaPatchUnchanged(t *testing.T) {
	base := &DeltaState{Boot: 5, Gen: 10, Cube: deltaCube(t), Series: deltaSeries(t)}
	cur := &DeltaState{Boot: 5, Gen: 10, Cube: base.Cube, Series: base.Series}
	doc, err := EncodeSnapshotDelta(base, cur)
	if err != nil {
		t.Fatal(err)
	}
	// Header + fromGen + two unchanged ops: a dozen-odd bytes.
	if len(doc) > 32 {
		t.Errorf("unchanged delta is %d bytes", len(doc))
	}
	got, err := DecodeSnapshot(doc, base)
	if err != nil {
		t.Fatal(err)
	}
	statesEqual(t, cur, got)
}

func TestDeltaShapeChangeReplaces(t *testing.T) {
	base := &DeltaState{Boot: 5, Gen: 10, Cube: deltaCube(t), Series: deltaSeries(t)}
	// New region appears: cube shape changes, patch impossible.
	cube, err := trace.NewCube([]string{"solve", "exchange", "io"}, []string{"comp", "comm"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := cube.Set(2, 1, 0, 1.5); err != nil {
		t.Fatal(err)
	}
	// Processor count grows: series shape changes too.
	fold := temporal.NewFold(temporal.Options{Window: 1.0, Procs: 6})
	fold.Add(trace.Event{Rank: 5, Region: "io", Activity: "comm", Start: 0, End: 1.5})
	cur := &DeltaState{Boot: 5, Gen: 11, Cube: cube, Series: fold.Series()}
	doc, err := EncodeSnapshotDelta(base, cur)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSnapshot(doc, base)
	if err != nil {
		t.Fatal(err)
	}
	statesEqual(t, cur, got)
}

func TestDeltaClearedSections(t *testing.T) {
	base := &DeltaState{Boot: 5, Gen: 10, Cube: deltaCube(t), Series: deltaSeries(t)}
	cur := &DeltaState{Boot: 5, Gen: 11}
	doc, err := EncodeSnapshotDelta(base, cur)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSnapshot(doc, base)
	if err != nil {
		t.Fatal(err)
	}
	statesEqual(t, cur, got)
}

func TestDeltaSeriesShrinks(t *testing.T) {
	// A federated series can lose windows (an endpoint went stale). The
	// patch must carry removals, not just upserts.
	big := deltaSeries(t,
		trace.Event{Rank: 0, Region: "solve", Activity: "comp", Start: 5, End: 7},
	)
	small := deltaSeries(t)
	if len(big.Windows) <= len(small.Windows) {
		t.Fatalf("want big (%d windows) > small (%d)", len(big.Windows), len(small.Windows))
	}
	base := &DeltaState{Boot: 5, Gen: 10, Series: big}
	cur := &DeltaState{Boot: 5, Gen: 11, Series: small}
	doc, err := EncodeSnapshotDelta(base, cur)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSnapshot(doc, base)
	if err != nil {
		t.Fatal(err)
	}
	statesEqual(t, cur, got)
}

func TestDeltaBaseMismatch(t *testing.T) {
	base := &DeltaState{Boot: 5, Gen: 10, Cube: deltaCube(t)}
	cur := &DeltaState{Boot: 5, Gen: 11, Cube: base.Cube}
	doc, err := EncodeSnapshotDelta(base, cur)
	if err != nil {
		t.Fatal(err)
	}
	for name, wrong := range map[string]*DeltaState{
		"nil base":  nil,
		"wrong gen": {Boot: 5, Gen: 9, Cube: base.Cube},
		"ahead gen": {Boot: 5, Gen: 11, Cube: base.Cube},
		"new boot":  {Boot: 6, Gen: 10, Cube: base.Cube},
	} {
		if _, err := DecodeSnapshot(doc, wrong); !errors.Is(err, ErrDeltaBase) {
			t.Errorf("%s: got %v, want ErrDeltaBase", name, err)
		}
	}
	if _, err := DecodeSnapshot(doc, base); err != nil {
		t.Errorf("matching base rejected: %v", err)
	}
}

func TestDeltaAcrossBootsRefused(t *testing.T) {
	a := &DeltaState{Boot: 1, Gen: 10}
	b := &DeltaState{Boot: 2, Gen: 3}
	if _, err := EncodeSnapshotDelta(a, b); err == nil {
		t.Fatal("delta across boot nonces encoded")
	}
}

func TestDeltaDecodeRejectsGarbage(t *testing.T) {
	state := &DeltaState{Boot: 1, Gen: 2, Cube: deltaCube(t), Series: deltaSeries(t)}
	doc, err := EncodeSnapshotFull(state)
	if err != nil {
		t.Fatal(err)
	}
	// Truncations at every length must error, never panic.
	for n := 0; n < len(doc); n++ {
		if _, err := DecodeSnapshot(doc[:n], nil); err == nil {
			t.Fatalf("truncation to %d bytes decoded", n)
		}
	}
	// Trailing junk is rejected.
	if _, err := DecodeSnapshot(append(append([]byte(nil), doc...), 0), nil); err == nil {
		t.Fatal("trailing byte accepted")
	}
	// Wrong magic and version.
	bad := append([]byte(nil), doc...)
	bad[0] = 'X'
	if _, err := DecodeSnapshot(bad, nil); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: %v", err)
	}
	bad = append([]byte(nil), doc...)
	bad[4] = 99
	if _, err := DecodeSnapshot(bad, nil); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("bad version: %v", err)
	}
}
