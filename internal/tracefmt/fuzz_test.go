package tracefmt

import (
	"bytes"
	"strings"
	"testing"

	"loadimb/internal/workload"
)

// FuzzReadCube hardens the binary decoder: arbitrary input must either
// produce a valid cube or a clean error — never a panic or an invalid
// cube.
func FuzzReadCube(f *testing.F) {
	cube, err := workload.ReconstructCube()
	if err != nil {
		f.Fatal(err)
	}
	var valid bytes.Buffer
	if err := WriteCube(&valid, cube); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte(Magic))
	f.Add([]byte("LIMB\x01\x00\x00\x00\xff\xff\xff\xff"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadCube(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successfully decoded cube must be internally consistent.
		if got.NumRegions() < 1 || got.NumActivities() < 1 || got.NumProcs() < 1 {
			t.Fatalf("decoded cube with bad dimensions: %d %d %d",
				got.NumRegions(), got.NumActivities(), got.NumProcs())
		}
		if got.ProgramTime() < 0 {
			t.Fatalf("decoded negative program time %g", got.ProgramTime())
		}
		// Round-tripping the decoded cube must succeed.
		var buf bytes.Buffer
		if err := WriteCube(&buf, got); err != nil {
			t.Fatalf("re-encoding decoded cube: %v", err)
		}
	})
}

// FuzzReadEvents hardens the JSON-Lines event decoder.
func FuzzReadEvents(f *testing.F) {
	f.Add(`{"rank":0,"region":"r","activity":"a","start":0,"end":1}`)
	f.Add(`{"rank":-1,"region":"r","activity":"a","start":0,"end":1}`)
	f.Add("")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, data string) {
		log, err := ReadEvents(strings.NewReader(data))
		if err != nil {
			return
		}
		for _, e := range log.Events() {
			if err := e.Validate(); err != nil {
				t.Fatalf("decoder admitted invalid event: %v", err)
			}
		}
	})
}

// FuzzReadCubeCSV hardens the CSV decoder.
func FuzzReadCubeCSV(f *testing.F) {
	f.Add("region,activity,proc,seconds\nr,a,0,1\n")
	f.Add("region,activity,proc,seconds\n__program__,,0,9\nr,a,0,1\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, data string) {
		cube, err := ReadCubeCSV(strings.NewReader(data))
		if err != nil {
			return
		}
		if cube.RegionsTotal() < 0 || cube.ProgramTime() < cube.RegionsTotal()-1e-9 {
			t.Fatalf("decoded inconsistent cube: total %g, program %g",
				cube.RegionsTotal(), cube.ProgramTime())
		}
	})
}
