package tracefmt

import (
	"bytes"
	"io"
	"math"
	"strings"
	"testing"

	"loadimb/internal/trace"
	"loadimb/internal/workload"
)

// FuzzReadCube hardens the binary decoder: arbitrary input must either
// produce a valid cube or a clean error — never a panic or an invalid
// cube.
func FuzzReadCube(f *testing.F) {
	cube, err := workload.ReconstructCube()
	if err != nil {
		f.Fatal(err)
	}
	var valid bytes.Buffer
	if err := WriteCube(&valid, cube); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte(Magic))
	f.Add([]byte("LIMB\x01\x00\x00\x00\xff\xff\xff\xff"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadCube(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successfully decoded cube must be internally consistent.
		if got.NumRegions() < 1 || got.NumActivities() < 1 || got.NumProcs() < 1 {
			t.Fatalf("decoded cube with bad dimensions: %d %d %d",
				got.NumRegions(), got.NumActivities(), got.NumProcs())
		}
		if got.ProgramTime() < 0 {
			t.Fatalf("decoded negative program time %g", got.ProgramTime())
		}
		// Round-tripping the decoded cube must succeed.
		var buf bytes.Buffer
		if err := WriteCube(&buf, got); err != nil {
			t.Fatalf("re-encoding decoded cube: %v", err)
		}
	})
}

// FuzzReadEvents hardens the JSON-Lines event decoder.
func FuzzReadEvents(f *testing.F) {
	f.Add(`{"rank":0,"region":"r","activity":"a","start":0,"end":1}`)
	f.Add(`{"rank":-1,"region":"r","activity":"a","start":0,"end":1}`)
	f.Add("")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, data string) {
		log, err := ReadEvents(strings.NewReader(data))
		if err != nil {
			return
		}
		for _, e := range log.Events() {
			if err := e.Validate(); err != nil {
				t.Fatalf("decoder admitted invalid event: %v", err)
			}
		}
	})
}

// FuzzIngestDecode hardens the event wire-protocol decoder against
// arbitrary bytes: it must never panic, never allocate unbounded state,
// and any stream it fully accepts must re-encode and re-decode to the
// identical event sequence (valid round trips are the identity).
func FuzzIngestDecode(f *testing.F) {
	seed := func(events []trace.Event) []byte {
		var buf bytes.Buffer
		enc := NewWireEncoder(&buf)
		if err := enc.EncodeBatch(events); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(seed([]trace.Event{{Rank: 0, Region: "loop 1", Activity: "computation", Start: 0, End: 1}}))
	f.Add(seed([]trace.Event{
		{Rank: 3, Region: "a", Activity: "x", Start: 1.5, End: 2.25},
		{Rank: 3, Region: "a", Activity: "x", Start: 2.25, End: 2.5},
		{Rank: 4, Region: "b", Activity: "y", Start: 0, End: 0.125},
	}))
	f.Add([]byte(WireMagic))
	f.Add([]byte("LIWP\x01\x01\x01"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewWireDecoder(bytes.NewReader(data))
		var events []trace.Event
		clean := false
		for {
			var err error
			events, err = dec.DecodeBatch(events)
			if err == io.EOF {
				clean = true
				break
			}
			if err != nil {
				break
			}
		}
		if !clean || len(events) == 0 {
			return
		}
		// The stream decoded cleanly: re-encoding the events and decoding
		// again must reproduce them bit for bit.
		var buf bytes.Buffer
		if err := NewWireEncoder(&buf).EncodeBatch(events); err != nil {
			// Re-encoding may legitimately refuse pathological inputs the
			// decoder tolerated (e.g. table overflow across many frames
			// versus one); it must still be a clean error.
			return
		}
		redec := NewWireDecoder(&buf)
		var got []trace.Event
		for {
			var err error
			got, err = redec.DecodeBatch(got)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("re-decoding re-encoded stream: %v", err)
			}
		}
		if len(got) != len(events) {
			t.Fatalf("round trip changed event count: %d -> %d", len(events), len(got))
		}
		for i := range events {
			if got[i].Rank != events[i].Rank || got[i].Region != events[i].Region ||
				got[i].Activity != events[i].Activity ||
				math.Float64bits(got[i].Start) != math.Float64bits(events[i].Start) ||
				math.Float64bits(got[i].End) != math.Float64bits(events[i].End) {
				t.Fatalf("round trip changed event %d: %+v -> %+v", i, events[i], got[i])
			}
		}
	})
}

// FuzzReadCubeCSV hardens the CSV decoder.
func FuzzReadCubeCSV(f *testing.F) {
	f.Add("region,activity,proc,seconds\nr,a,0,1\n")
	f.Add("region,activity,proc,seconds\n__program__,,0,9\nr,a,0,1\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, data string) {
		cube, err := ReadCubeCSV(strings.NewReader(data))
		if err != nil {
			return
		}
		if cube.RegionsTotal() < 0 || cube.ProgramTime() < cube.RegionsTotal()-1e-9 {
			t.Fatalf("decoded inconsistent cube: total %g, program %g",
				cube.RegionsTotal(), cube.ProgramTime())
		}
	})
}
