package tracefmt

import (
	"bytes"
	"io"
	"math"
	"strings"
	"testing"

	"loadimb/internal/temporal"
	"loadimb/internal/trace"
	"loadimb/internal/workload"
)

// FuzzReadCube hardens the binary decoder: arbitrary input must either
// produce a valid cube or a clean error — never a panic or an invalid
// cube.
func FuzzReadCube(f *testing.F) {
	cube, err := workload.ReconstructCube()
	if err != nil {
		f.Fatal(err)
	}
	var valid bytes.Buffer
	if err := WriteCube(&valid, cube); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte(Magic))
	f.Add([]byte("LIMB\x01\x00\x00\x00\xff\xff\xff\xff"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadCube(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successfully decoded cube must be internally consistent.
		if got.NumRegions() < 1 || got.NumActivities() < 1 || got.NumProcs() < 1 {
			t.Fatalf("decoded cube with bad dimensions: %d %d %d",
				got.NumRegions(), got.NumActivities(), got.NumProcs())
		}
		if got.ProgramTime() < 0 {
			t.Fatalf("decoded negative program time %g", got.ProgramTime())
		}
		// Round-tripping the decoded cube must succeed.
		var buf bytes.Buffer
		if err := WriteCube(&buf, got); err != nil {
			t.Fatalf("re-encoding decoded cube: %v", err)
		}
	})
}

// FuzzReadEvents hardens the JSON-Lines event decoder.
func FuzzReadEvents(f *testing.F) {
	f.Add(`{"rank":0,"region":"r","activity":"a","start":0,"end":1}`)
	f.Add(`{"rank":-1,"region":"r","activity":"a","start":0,"end":1}`)
	f.Add("")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, data string) {
		log, err := ReadEvents(strings.NewReader(data))
		if err != nil {
			return
		}
		for _, e := range log.Events() {
			if err := e.Validate(); err != nil {
				t.Fatalf("decoder admitted invalid event: %v", err)
			}
		}
	})
}

// FuzzIngestDecode hardens the event wire-protocol decoder against
// arbitrary bytes: it must never panic, never allocate unbounded state,
// and any stream it fully accepts must re-encode and re-decode to the
// identical event sequence (valid round trips are the identity).
func FuzzIngestDecode(f *testing.F) {
	seed := func(events []trace.Event) []byte {
		var buf bytes.Buffer
		enc := NewWireEncoder(&buf)
		if err := enc.EncodeBatch(events); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(seed([]trace.Event{{Rank: 0, Region: "loop 1", Activity: "computation", Start: 0, End: 1}}))
	f.Add(seed([]trace.Event{
		{Rank: 3, Region: "a", Activity: "x", Start: 1.5, End: 2.25},
		{Rank: 3, Region: "a", Activity: "x", Start: 2.25, End: 2.5},
		{Rank: 4, Region: "b", Activity: "y", Start: 0, End: 0.125},
	}))
	f.Add([]byte(WireMagic))
	f.Add([]byte("LIWP\x01\x01\x01"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewWireDecoder(bytes.NewReader(data))
		var events []trace.Event
		clean := false
		for {
			var err error
			events, err = dec.DecodeBatch(events)
			if err == io.EOF {
				clean = true
				break
			}
			if err != nil {
				break
			}
		}
		if !clean || len(events) == 0 {
			return
		}
		// The stream decoded cleanly: re-encoding the events and decoding
		// again must reproduce them bit for bit.
		var buf bytes.Buffer
		if err := NewWireEncoder(&buf).EncodeBatch(events); err != nil {
			// Re-encoding may legitimately refuse pathological inputs the
			// decoder tolerated (e.g. table overflow across many frames
			// versus one); it must still be a clean error.
			return
		}
		redec := NewWireDecoder(&buf)
		var got []trace.Event
		for {
			var err error
			got, err = redec.DecodeBatch(got)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("re-decoding re-encoded stream: %v", err)
			}
		}
		if len(got) != len(events) {
			t.Fatalf("round trip changed event count: %d -> %d", len(events), len(got))
		}
		for i := range events {
			if got[i].Rank != events[i].Rank || got[i].Region != events[i].Region ||
				got[i].Activity != events[i].Activity ||
				math.Float64bits(got[i].Start) != math.Float64bits(events[i].Start) ||
				math.Float64bits(got[i].End) != math.Float64bits(events[i].End) {
				t.Fatalf("round trip changed event %d: %+v -> %+v", i, events[i], got[i])
			}
		}
	})
}

// FuzzDeltaDecode hardens the LIFP snapshot delta decoder: arbitrary
// bytes must never panic, and any document that decodes cleanly must
// survive a full re-encode/decode cycle as the identity.
func FuzzDeltaDecode(f *testing.F) {
	cube, err := trace.NewCube([]string{"solve", "halo"}, []string{"comp", "comm"}, 3)
	if err != nil {
		f.Fatal(err)
	}
	for p := 0; p < 3; p++ {
		if err := cube.Set(0, 0, p, 1.5+float64(p)); err != nil {
			f.Fatal(err)
		}
	}
	fold := NewSeedFold()
	state := &DeltaState{Boot: 0xbeef, Gen: 4, Cube: cube, Series: fold}
	full, err := EncodeSnapshotFull(state)
	if err != nil {
		f.Fatal(err)
	}
	next := &DeltaState{Boot: 0xbeef, Gen: 5, Cube: cube.Clone(), Series: fold}
	if err := next.Cube.Set(1, 1, 2, 7.25); err != nil {
		f.Fatal(err)
	}
	delta, err := EncodeSnapshotDelta(state, next)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(full)
	f.Add(delta)
	f.Add([]byte(DeltaMagic))
	f.Add([]byte("LIFP\x01\x01\x00\x00"))
	f.Add([]byte("LIFP\x01\x02\x00\x01\x00\x00\x00"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, base := range []*DeltaState{nil, state} {
			got, err := DecodeSnapshot(data, base)
			if err != nil {
				continue
			}
			if got.Cube != nil {
				if got.Cube.ProgramTime() < 0 || got.Cube.RegionsTotal() < 0 {
					t.Fatalf("decoded invalid cube: program %g total %g",
						got.Cube.ProgramTime(), got.Cube.RegionsTotal())
				}
			}
			// Anything accepted must re-encode as a full document and
			// decode back without error.
			re, err := EncodeSnapshotFull(got)
			if err != nil {
				t.Fatalf("re-encoding accepted state: %v", err)
			}
			if _, err := DecodeSnapshot(re, nil); err != nil {
				t.Fatalf("re-decoding re-encoded state: %v", err)
			}
		}
	})
}

// NewSeedFold builds a tiny window series for fuzz seeds.
func NewSeedFold() *temporal.Series {
	fold := temporal.NewFold(temporal.Options{Window: 1.0, Procs: 3, PerActivity: true})
	fold.Add(trace.Event{Rank: 0, Region: "solve", Activity: "comp", Start: 0, End: 2.5})
	fold.Add(trace.Event{Rank: 2, Region: "halo", Activity: "comm", Start: 1, End: 1.75})
	return fold.Series()
}

// FuzzReadCubeCSV hardens the CSV decoder.
func FuzzReadCubeCSV(f *testing.F) {
	f.Add("region,activity,proc,seconds\nr,a,0,1\n")
	f.Add("region,activity,proc,seconds\n__program__,,0,9\nr,a,0,1\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, data string) {
		cube, err := ReadCubeCSV(strings.NewReader(data))
		if err != nil {
			return
		}
		if cube.RegionsTotal() < 0 || cube.ProgramTime() < cube.RegionsTotal()-1e-9 {
			t.Fatalf("decoded inconsistent cube: total %g, program %g",
				cube.RegionsTotal(), cube.ProgramTime())
		}
	})
}
