package tracefmt

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"loadimb/internal/trace"
	"loadimb/internal/workload"
)

func paperCube(t *testing.T) *trace.Cube {
	t.Helper()
	cube, err := workload.ReconstructCube()
	if err != nil {
		t.Fatal(err)
	}
	return cube
}

func TestBinaryRoundTrip(t *testing.T) {
	cube := paperCube(t)
	var buf bytes.Buffer
	if err := WriteCube(&buf, cube); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCube(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !cube.EqualWithin(got, 0) {
		t.Error("binary round trip changed the cube")
	}
}

func TestBinaryRoundTripNoProgramTime(t *testing.T) {
	cube, err := trace.NewCube([]string{"r"}, []string{"a"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := cube.Set(0, 0, 0, 1.5); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCube(&buf, cube); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCube(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !cube.EqualWithin(got, 1e-15) {
		t.Error("round trip without explicit program time failed")
	}
}

func TestWriteCubeNil(t *testing.T) {
	if err := WriteCube(&bytes.Buffer{}, nil); err == nil {
		t.Error("nil cube should fail")
	}
	if err := WriteCubeJSON(&bytes.Buffer{}, nil); err == nil {
		t.Error("nil cube should fail (JSON)")
	}
}

func TestReadCubeBadMagic(t *testing.T) {
	if _, err := ReadCube(strings.NewReader("NOPE....")); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic err = %v", err)
	}
	if _, err := ReadCube(strings.NewReader("LI")); !errors.Is(err, ErrBadMagic) {
		t.Errorf("short magic err = %v", err)
	}
}

func TestReadCubeBadVersion(t *testing.T) {
	cube := paperCube(t)
	var buf bytes.Buffer
	if err := WriteCube(&buf, cube); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[4] = 99 // little-endian version field
	if _, err := ReadCube(bytes.NewReader(data)); !errors.Is(err, ErrBadVersion) {
		t.Errorf("bad version err = %v", err)
	}
}

func TestReadCubeTruncated(t *testing.T) {
	cube := paperCube(t)
	var buf bytes.Buffer
	if err := WriteCube(&buf, cube); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{6, 20, 60, len(data) - 8} {
		if _, err := ReadCube(bytes.NewReader(data[:cut])); !errors.Is(err, ErrCorrupt) {
			t.Errorf("truncated at %d: err = %v", cut, err)
		}
	}
}

func TestReadCubeHugeDimensions(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(Magic)
	// version 1, then absurd dimensions.
	buf.Write([]byte{1, 0, 0, 0})
	buf.Write([]byte{255, 255, 255, 255})
	buf.Write([]byte{1, 0, 0, 0})
	buf.Write([]byte{1, 0, 0, 0})
	if _, err := ReadCube(&buf); !errors.Is(err, ErrCorrupt) {
		t.Errorf("huge dims err = %v", err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	cube := paperCube(t)
	var buf bytes.Buffer
	if err := WriteCubeJSON(&buf, cube); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCubeJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !cube.EqualWithin(got, 0) {
		t.Error("JSON round trip changed the cube")
	}
}

func TestJSONBadInput(t *testing.T) {
	cases := []string{
		`not json`,
		`{"regions":["r"],"activities":["a"],"procs":1,"program_time":0,"times":[]}`,
		`{"regions":["r"],"activities":["a"],"procs":1,"program_time":0,"times":[[]]}`,
		`{"regions":["r"],"activities":["a"],"procs":2,"program_time":0,"times":[[[1]]]}`,
		`{"regions":["r"],"activities":["a"],"procs":1,"program_time":0,"times":[[[-1]]]}`,
		`{"regions":[],"activities":["a"],"procs":1,"program_time":0,"times":[]}`,
		`{"regions":["r"],"activities":["a"],"procs":1,"unknown_field":1,"times":[[[1]]]}`,
	}
	for i, c := range cases {
		if _, err := ReadCubeJSON(strings.NewReader(c)); !errors.Is(err, ErrCorrupt) {
			t.Errorf("case %d: err = %v", i, err)
		}
	}
}

func TestEventsRoundTrip(t *testing.T) {
	var log trace.Log
	events := []trace.Event{
		{Rank: 0, Region: "l1", Activity: "comp", Start: 0, End: 2},
		{Rank: 1, Region: "l1", Activity: "p2p", Start: 0.5, End: 1.25},
		{Rank: 0, Region: "l2", Activity: "sync", Start: 2, End: 2.0625},
	}
	for _, e := range events {
		if err := log.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := WriteEvents(&buf, &log); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != len(events) {
		t.Fatalf("round trip lost events: %d of %d", got.Len(), len(events))
	}
	for i, e := range got.Events() {
		if e != events[i] {
			t.Errorf("event %d = %+v, want %+v", i, e, events[i])
		}
	}
}

func TestWriteEventsNil(t *testing.T) {
	if err := WriteEvents(&bytes.Buffer{}, nil); err == nil {
		t.Error("nil log should fail")
	}
}

func TestReadEventsBad(t *testing.T) {
	if _, err := ReadEvents(strings.NewReader(`{"rank":-1,"region":"r","activity":"a","start":0,"end":1}`)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("invalid event err = %v", err)
	}
	if _, err := ReadEvents(strings.NewReader(`garbage`)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("garbage err = %v", err)
	}
	log, err := ReadEvents(strings.NewReader(""))
	if err != nil || log.Len() != 0 {
		t.Errorf("empty input = %d events, %v", log.Len(), err)
	}
}

func TestEventsAggregateAfterRoundTrip(t *testing.T) {
	// The full pipeline: events -> file -> events -> cube.
	var log trace.Log
	for _, e := range []trace.Event{
		{Rank: 0, Region: "l", Activity: "a", Start: 0, End: 3},
		{Rank: 1, Region: "l", Activity: "a", Start: 0, End: 1},
	} {
		if err := log.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := WriteEvents(&buf, &log); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cube, err := got.Aggregate(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, err := cube.CellTime(0, 0)
	if err != nil || v != 2 {
		t.Errorf("cell time = %g, %v", v, err)
	}
}

// TestAllFormatsRoundTripProperty: random cubes survive every format.
func TestAllFormatsRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 25; trial++ {
		n, k, p := 1+rng.Intn(5), 1+rng.Intn(4), 1+rng.Intn(8)
		regions := make([]string, n)
		for i := range regions {
			regions[i] = fmt.Sprintf("region-%d", i)
		}
		activities := make([]string, k)
		for j := range activities {
			activities[j] = fmt.Sprintf("act-%d", j)
		}
		cube, err := trace.NewCube(regions, activities, p)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < k; j++ {
				for q := 0; q < p; q++ {
					if err := cube.Set(i, j, q, rng.Float64()*100); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		if rng.Intn(2) == 0 {
			if err := cube.SetProgramTime(cube.RegionsTotal() + rng.Float64()*10); err != nil {
				t.Fatal(err)
			}
		}
		// Binary and JSON are bit-exact; CSV goes through decimal text.
		var bin, js, cs bytes.Buffer
		if err := WriteCube(&bin, cube); err != nil {
			t.Fatal(err)
		}
		gotBin, err := ReadCube(&bin)
		if err != nil || !cube.EqualWithin(gotBin, 0) {
			t.Fatalf("trial %d: binary round trip failed: %v", trial, err)
		}
		if err := WriteCubeJSON(&js, cube); err != nil {
			t.Fatal(err)
		}
		gotJS, err := ReadCubeJSON(&js)
		if err != nil || !cube.EqualWithin(gotJS, 0) {
			t.Fatalf("trial %d: JSON round trip failed: %v", trial, err)
		}
		if err := WriteCubeCSV(&cs, cube); err != nil {
			t.Fatal(err)
		}
		gotCS, err := ReadCubeCSV(&cs)
		if err != nil || !cube.EqualWithin(gotCS, 1e-9) {
			t.Fatalf("trial %d: CSV round trip failed: %v", trial, err)
		}
	}
}
