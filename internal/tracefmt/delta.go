package tracefmt

// This file defines the LIFP snapshot *delta* format: the document a live
// endpoint serves at /delta so a federator can bring its cached copy of
// the endpoint's state up to date without re-shipping the whole cube and
// window series every interval. It reuses the LIWP event wire protocol's
// primitive vocabulary — uvarints, zigzag varints, IEEE-754 bit-pattern
// deltas, interned strings — but where LIWP is an endless stream of raw
// events, a LIFP document is one self-contained message framed by its
// transport (an HTTP response body): it carries no cross-document state,
// so any document can be decoded in isolation given only the base
// snapshot it names.
//
// # Document layout
//
//	doc    := "LIFP" uvarint(version) byte(kind) uvarint(boot) uvarint(gen) body
//	kind   := 0x01 full | 0x02 delta
//
// Boot and gen identify the snapshot the document brings the receiver to
// — exactly the (Boot, Gen) pair of the publisher's snapshot ETag. A
// *full* document carries the complete cube and series and needs no
// prior state. A *delta* document additionally names the base generation
// it applies to:
//
//	full body  := cubeSection seriesSection
//	delta body := uvarint(fromGen) cubeOp seriesOp
//
// A receiver whose cached state is not exactly (boot, fromGen) must
// discard the delta and resynchronize with a full fetch (ErrDeltaBase);
// the serving side guarantees a changed boot nonce — an endpoint restart
// — is answered with a full document, never a delta across incarnations.
//
// # Sections and operations
//
//	cubeSection   := byte(0)                   // absent (no events yet)
//	               | byte(1) cubeFull
//	seriesSection := byte(0)                   // absent (windowing off)
//	               | byte(1) seriesFull
//	cubeOp        := byte(0)                   // unchanged
//	               | byte(1) cubePatch         // same shape, cells changed
//	               | byte(2) cubeFull          // shape changed: replace
//	               | byte(3)                   // cleared (now absent)
//	seriesOp      := byte(0) | byte(1) seriesPatch | byte(2) seriesFull | byte(3)
//
// A patch is only valid against an identical shape (cube: same region and
// activity tables and processor count; series: same window width and
// processor count); any growth or reshape — new ranks appearing, a region
// union changing under a federator — is transmitted as a replace. At
// steady state shapes are stable and every interval ships a patch whose
// size is proportional to what actually changed, which is the entire
// point.
//
//	cubeFull  := uvarint(N) uvarint(K) uvarint(P)
//	             N*stringRef K*stringRef            // region, activity names
//	             uvarint(bits(programTime))
//	             uvarint(nonzeroCells)
//	             nonzeroCells * (uvarint(gap) varint(Δbits))
//	cubePatch := varint(Δbits(programTime))
//	             uvarint(changedCells)
//	             changedCells * (uvarint(gap) varint(Δbits))
//
// Cells walk the cube in ascending flattened index (i*K*P + j*P + p);
// gap is the distance from the previous emitted cell (starting at -1),
// so runs of untouched cells cost nothing. In a full document Δbits
// chains each value against the previously emitted one (cold start 0);
// in a patch Δbits is against the receiver's *current* value of that
// very cell, which the encoder knows because it diffs two snapshots.
//
//	seriesFull  := uvarint(bits(window)) uvarint(procs)
//	               varint(ringStart) uvarint(bits(coarseWindow))
//	               uvarint(len(windows))  windows*
//	               uvarint(len(coarse))   coarse*
//	seriesPatch := varint(ΔringStart)
//	               byte(coarseTag)                  // 0 unchanged | 1 replace
//	               [uvarint(bits(coarseWindow)) uvarint(len) coarse*]
//	               uvarint(removed)  removed * varint(Δindex)
//	               uvarint(changed)  windows*       // upserts, by index
//
// A patched receiver deletes the removed window indices, upserts the
// changed vectors, then — when a coarse tail exists — drops ring windows
// whose index fell below the new ring start (they were decimated into the
// tail). Removals carry the case a federator's merged series shrinks when
// an endpoint goes stale.
//
//	window    := varint(Δindex) uvarint(events) byte(flags)
//	             [stringRef(dominant)]              // flags bit0
//	             vec                                // busy
//	             [uvarint(n) n*(stringRef vec)]     // flags bit1: per-activity
//	             [uvarint(n) n*(stringRef vec)]     // flags bit2: per-region
//	vec       := uvarint(len) len*varint(Δbits)
//
// Window indices delta-chain within their list; float bits chain across
// every vector element of the document (wprev), since consecutive busy
// values share magnitude. Per-activity and per-region entries are sorted
// by name so encoding is deterministic.
//
// # Strings
//
// All names — regions, activities, dominant activities, per-dimension
// keys — share one intern table per document, encoded exactly like LIWP
// string references: uvarint(0) uvarint(len) bytes introduces a new
// entry, uvarint(index+1) references a known one. The table is bounded
// (MaxWireStrings entries, maxWireTableBytes bytes) against hostile
// input.
//
// # Safety
//
// DecodeSnapshot never panics on arbitrary input: every structural
// violation returns an error wrapping ErrWire (or ErrBadMagic /
// ErrBadVersion), decoded values are validated (no NaN/Inf/negative
// times), and decoder allocation is proportional to the input size —
// dimension products are bounded by maxDeltaCells before the cube is
// allocated, and every vector element must be present in the input.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"loadimb/internal/temporal"
	"loadimb/internal/trace"
)

// Delta format constants.
const (
	// DeltaMagic opens every snapshot delta document.
	DeltaMagic = "LIFP"
	// DeltaVersion is the delta format version this package speaks.
	DeltaVersion = 1

	// Document kinds.
	deltaKindFull  = 0x01
	deltaKindDelta = 0x02

	// Section / delta operations.
	deltaOpAbsent    = 0x00 // full: section absent; delta: unchanged
	deltaOpPresent   = 0x01 // full: section present; delta: patch
	deltaOpReplace   = 0x02 // delta: full re-encoding follows
	deltaOpCleared   = 0x03 // delta: the section is now absent
	deltaOpUnchanged = deltaOpAbsent

	// Window vector flags.
	deltaFlagDominant    = 1 << 0
	deltaFlagPerActivity = 1 << 1
	deltaFlagPerRegion   = 1 << 2

	// maxDeltaCells bounds N*K*P before a decoded cube is allocated, so a
	// handful of hostile header bytes cannot demand gigabytes. 2^26 cells
	// (512 MiB of float64s) is far beyond any realistic federated cube.
	maxDeltaCells = 1 << 26
	// maxDeltaWindows bounds the declared window counts of one series
	// section.
	maxDeltaWindows = 1 << 22
)

// ErrDeltaBase is returned by DecodeSnapshot when a delta document names
// a base snapshot other than the one the caller holds: the receiver must
// resynchronize with a full fetch. It wraps nothing — a base mismatch is
// a protocol-level state divergence, not input corruption.
var ErrDeltaBase = errors.New("tracefmt: delta base snapshot mismatch")

// DeltaState is the decoded endpoint state a LIFP document transfers: the
// snapshot identity (the ETag pair) plus the two mergeable documents the
// federation layer consumes. Counters (event totals, drop counts) are
// deliberately not part of the format — they are per-process diagnostics,
// not mergeable state.
type DeltaState struct {
	// Boot and Gen identify the snapshot, exactly as in the HTTP ETag.
	Boot, Gen uint64
	// Cube is the measurement cube; nil before any event was folded.
	Cube *trace.Cube
	// Series is the raw window series; nil when windowing is disabled.
	Series *temporal.Series
}

// deltaEnc assembles one document; its intern table and float chains are
// document-local.
type deltaEnc struct {
	buf     []byte
	strings map[string]uint64
	tblLen  int
	wprev   uint64 // float bit chain across window vector elements
}

func (e *deltaEnc) uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *deltaEnc) varint(v int64)   { e.buf = binary.AppendUvarint(e.buf, zigzag(v)) }
func (e *deltaEnc) byte(b byte)      { e.buf = append(e.buf, b) }

// stringRef appends a reference to name, interning it on first use.
func (e *deltaEnc) stringRef(name string) error {
	if idx, ok := e.strings[name]; ok {
		e.uvarint(idx + 1)
		return nil
	}
	if len(name) > maxNameLen {
		return fmt.Errorf("%w: name %d bytes exceeds %d", ErrWire, len(name), maxNameLen)
	}
	if len(e.strings) >= MaxWireStrings {
		return fmt.Errorf("%w: string table full (%d names)", ErrWire, MaxWireStrings)
	}
	if e.tblLen+len(name) > maxWireTableBytes {
		return fmt.Errorf("%w: string table byte budget exceeded", ErrWire)
	}
	idx := uint64(len(e.strings))
	e.strings[name] = idx
	e.tblLen += len(name)
	e.uvarint(0)
	e.uvarint(uint64(len(name)))
	e.buf = append(e.buf, name...)
	return nil
}

// vec appends one float vector as a length plus bit-delta chain.
func (e *deltaEnc) vec(vals []float64) {
	e.uvarint(uint64(len(vals)))
	for _, v := range vals {
		bits := math.Float64bits(v)
		e.varint(int64(bits) - int64(e.wprev))
		e.wprev = bits
	}
}

func newDeltaEnc() *deltaEnc {
	return &deltaEnc{strings: make(map[string]uint64)}
}

func (e *deltaEnc) header(kind byte, boot, gen uint64) {
	e.buf = append(e.buf, DeltaMagic...)
	e.uvarint(DeltaVersion)
	e.byte(kind)
	e.uvarint(boot)
	e.uvarint(gen)
}

// EncodeSnapshotFull encodes the state as a self-contained full document.
func EncodeSnapshotFull(cur *DeltaState) ([]byte, error) {
	if cur == nil {
		return nil, errors.New("tracefmt: nil snapshot state")
	}
	e := newDeltaEnc()
	e.header(deltaKindFull, cur.Boot, cur.Gen)
	if cur.Cube == nil {
		e.byte(deltaOpAbsent)
	} else {
		e.byte(deltaOpPresent)
		if err := e.cubeFull(cur.Cube); err != nil {
			return nil, err
		}
	}
	if cur.Series == nil {
		e.byte(deltaOpAbsent)
	} else {
		e.byte(deltaOpPresent)
		if err := e.seriesFull(cur.Series); err != nil {
			return nil, err
		}
	}
	return e.buf, nil
}

// EncodeSnapshotDelta encodes the difference from prev to cur as a delta
// document: only cells and windows whose content changed are carried, and
// sections whose shape changed are re-encoded whole. Both states must
// come from the same publisher incarnation (equal Boot); the caller is
// expected to serve a full document instead when the boot nonce moved.
func EncodeSnapshotDelta(prev, cur *DeltaState) ([]byte, error) {
	if prev == nil || cur == nil {
		return nil, errors.New("tracefmt: nil snapshot state")
	}
	if prev.Boot != cur.Boot {
		return nil, fmt.Errorf("tracefmt: delta across boot nonces (%x -> %x)", prev.Boot, cur.Boot)
	}
	e := newDeltaEnc()
	e.header(deltaKindDelta, cur.Boot, cur.Gen)
	e.uvarint(prev.Gen)
	if err := e.cubeDelta(prev.Cube, cur.Cube); err != nil {
		return nil, err
	}
	if err := e.seriesDelta(prev.Series, cur.Series); err != nil {
		return nil, err
	}
	return e.buf, nil
}

// cubeFull encodes a complete cube: dimensions, names, program time, and
// the nonzero cells as a gap/bit-delta list.
func (e *deltaEnc) cubeFull(c *trace.Cube) error {
	n, k, p := c.NumRegions(), c.NumActivities(), c.NumProcs()
	e.uvarint(uint64(n))
	e.uvarint(uint64(k))
	e.uvarint(uint64(p))
	for i := 0; i < n; i++ {
		if err := e.stringRef(c.RegionName(i)); err != nil {
			return err
		}
	}
	for j := 0; j < k; j++ {
		if err := e.stringRef(c.ActivityName(j)); err != nil {
			return err
		}
	}
	e.uvarint(math.Float64bits(c.ProgramTime()))
	// First pass counts, second emits; both walk ascending flat index.
	count := uint64(0)
	var scratch []float64
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			scratch, _ = c.ProcTimesInto(i, j, scratch)
			for _, t := range scratch {
				if t != 0 {
					count++
				}
			}
		}
	}
	e.uvarint(count)
	prevFlat := int64(-1)
	prevBits := uint64(0)
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			scratch, _ = c.ProcTimesInto(i, j, scratch)
			base := int64(i)*int64(k)*int64(p) + int64(j)*int64(p)
			for q, t := range scratch {
				if t == 0 {
					continue
				}
				flat := base + int64(q)
				e.uvarint(uint64(flat - prevFlat))
				bits := math.Float64bits(t)
				e.varint(int64(bits) - int64(prevBits))
				prevFlat, prevBits = flat, bits
			}
		}
	}
	return nil
}

// sameShape reports whether two cubes have identical dimension tables, so
// a cell patch can be applied index-for-index.
func sameShape(a, b *trace.Cube) bool {
	n, k, p := a.NumRegions(), a.NumActivities(), a.NumProcs()
	if n != b.NumRegions() || k != b.NumActivities() || p != b.NumProcs() {
		return false
	}
	for i := 0; i < n; i++ {
		if a.RegionName(i) != b.RegionName(i) {
			return false
		}
	}
	for j := 0; j < k; j++ {
		if a.ActivityName(j) != b.ActivityName(j) {
			return false
		}
	}
	return true
}

// cubeDelta emits the cube operation: unchanged, patch, replace or
// cleared.
func (e *deltaEnc) cubeDelta(prev, cur *trace.Cube) error {
	switch {
	case cur == nil && prev == nil:
		e.byte(deltaOpUnchanged)
		return nil
	case cur == nil:
		e.byte(deltaOpCleared)
		return nil
	case prev == nil || !sameShape(prev, cur):
		e.byte(deltaOpReplace)
		return e.cubeFull(cur)
	}
	// Same shape: walk both cubes and collect changed cells.
	n, k, p := cur.NumRegions(), cur.NumActivities(), cur.NumProcs()
	type change struct {
		flat     int64
		old, new uint64
	}
	var changes []change
	var oldRow, newRow []float64
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			oldRow, _ = prev.ProcTimesInto(i, j, oldRow)
			newRow, _ = cur.ProcTimesInto(i, j, newRow)
			base := int64(i)*int64(k)*int64(p) + int64(j)*int64(p)
			for q := range newRow {
				ob, nb := math.Float64bits(oldRow[q]), math.Float64bits(newRow[q])
				if ob != nb {
					changes = append(changes, change{base + int64(q), ob, nb})
				}
			}
		}
	}
	ob, nb := math.Float64bits(prev.ProgramTime()), math.Float64bits(cur.ProgramTime())
	if len(changes) == 0 && ob == nb {
		e.byte(deltaOpUnchanged)
		return nil
	}
	e.byte(deltaOpPresent)
	e.varint(int64(nb) - int64(ob))
	e.uvarint(uint64(len(changes)))
	prevFlat := int64(-1)
	for _, ch := range changes {
		e.uvarint(uint64(ch.flat - prevFlat))
		e.varint(int64(ch.new) - int64(ch.old))
		prevFlat = ch.flat
	}
	return nil
}

// windowVec encodes one window vector.
func (e *deltaEnc) windowVec(v *temporal.WindowVector, prevIdx int64) (int64, error) {
	e.varint(int64(v.Index) - prevIdx)
	e.uvarint(uint64(v.Events))
	var flags byte
	if v.Dominant != "" {
		flags |= deltaFlagDominant
	}
	if v.PerActivity != nil {
		flags |= deltaFlagPerActivity
	}
	if v.PerRegion != nil {
		flags |= deltaFlagPerRegion
	}
	e.byte(flags)
	if flags&deltaFlagDominant != 0 {
		if err := e.stringRef(v.Dominant); err != nil {
			return 0, err
		}
	}
	e.vec(v.ProcSeconds)
	for _, dim := range []map[string][]float64{v.PerActivity, v.PerRegion} {
		if dim == nil {
			continue
		}
		names := make([]string, 0, len(dim))
		for name := range dim {
			names = append(names, name)
		}
		sort.Strings(names)
		e.uvarint(uint64(len(names)))
		for _, name := range names {
			if err := e.stringRef(name); err != nil {
				return 0, err
			}
			e.vec(dim[name])
		}
	}
	return int64(v.Index), nil
}

// seriesFull encodes a complete window series.
func (e *deltaEnc) seriesFull(s *temporal.Series) error {
	e.uvarint(math.Float64bits(s.Window))
	e.uvarint(uint64(s.Procs))
	e.varint(int64(s.RingStart))
	e.uvarint(math.Float64bits(s.CoarseWindow))
	for _, list := range [][]temporal.WindowVector{s.Windows, s.Coarse} {
		e.uvarint(uint64(len(list)))
		prevIdx := int64(0)
		for i := range list {
			var err error
			if prevIdx, err = e.windowVec(&list[i], prevIdx); err != nil {
				return err
			}
		}
	}
	return nil
}

// windowEqual reports whether two window vectors are bit-identical.
func windowEqual(a, b *temporal.WindowVector) bool {
	if a.Index != b.Index || a.Events != b.Events || a.Dominant != b.Dominant {
		return false
	}
	if !vecEqual(a.ProcSeconds, b.ProcSeconds) {
		return false
	}
	return dimEqual(a.PerActivity, b.PerActivity) && dimEqual(a.PerRegion, b.PerRegion)
}

func vecEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func dimEqual(a, b map[string][]float64) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for k, av := range a {
		bv, ok := b[k]
		if !ok || !vecEqual(av, bv) {
			return false
		}
	}
	return true
}

// seriesDelta emits the series operation.
func (e *deltaEnc) seriesDelta(prev, cur *temporal.Series) error {
	switch {
	case cur == nil && prev == nil:
		e.byte(deltaOpUnchanged)
		return nil
	case cur == nil:
		e.byte(deltaOpCleared)
		return nil
	case prev == nil,
		math.Float64bits(prev.Window) != math.Float64bits(cur.Window),
		prev.Procs != cur.Procs:
		e.byte(deltaOpReplace)
		return e.seriesFull(cur)
	}
	oldByIdx := make(map[int]*temporal.WindowVector, len(prev.Windows))
	for i := range prev.Windows {
		oldByIdx[prev.Windows[i].Index] = &prev.Windows[i]
	}
	var changed []*temporal.WindowVector
	curIdx := make(map[int]bool, len(cur.Windows))
	for i := range cur.Windows {
		v := &cur.Windows[i]
		curIdx[v.Index] = true
		if old, ok := oldByIdx[v.Index]; !ok || !windowEqual(old, v) {
			changed = append(changed, v)
		}
	}
	var removed []int
	for i := range prev.Windows {
		if !curIdx[prev.Windows[i].Index] {
			removed = append(removed, prev.Windows[i].Index)
		}
	}
	sort.Ints(removed)
	coarseChanged := math.Float64bits(prev.CoarseWindow) != math.Float64bits(cur.CoarseWindow) ||
		len(prev.Coarse) != len(cur.Coarse)
	if !coarseChanged {
		for i := range cur.Coarse {
			if !windowEqual(&prev.Coarse[i], &cur.Coarse[i]) {
				coarseChanged = true
				break
			}
		}
	}
	if len(changed) == 0 && len(removed) == 0 && !coarseChanged && prev.RingStart == cur.RingStart {
		e.byte(deltaOpUnchanged)
		return nil
	}
	e.byte(deltaOpPresent)
	e.varint(int64(cur.RingStart) - int64(prev.RingStart))
	if coarseChanged {
		e.byte(1)
		e.uvarint(math.Float64bits(cur.CoarseWindow))
		e.uvarint(uint64(len(cur.Coarse)))
		prevIdx := int64(0)
		for i := range cur.Coarse {
			var err error
			if prevIdx, err = e.windowVec(&cur.Coarse[i], prevIdx); err != nil {
				return err
			}
		}
	} else {
		e.byte(0)
	}
	e.uvarint(uint64(len(removed)))
	prevIdx := int64(0)
	for _, idx := range removed {
		e.varint(int64(idx) - prevIdx)
		prevIdx = int64(idx)
	}
	e.uvarint(uint64(len(changed)))
	prevIdx = 0
	for _, v := range changed {
		var err error
		if prevIdx, err = e.windowVec(v, prevIdx); err != nil {
			return err
		}
	}
	return nil
}
