package tracefmt

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	cube := paperCube(t)
	var buf bytes.Buffer
	if err := WriteCubeCSV(&buf, cube); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCubeCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !cube.EqualWithin(got, 1e-12) {
		t.Error("CSV round trip changed the cube")
	}
}

func TestCSVHeaderAndMarker(t *testing.T) {
	cube := paperCube(t)
	var buf bytes.Buffer
	if err := WriteCubeCSV(&buf, cube); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "region,activity,proc,seconds\n") {
		t.Errorf("missing header: %q", out[:40])
	}
	if !strings.Contains(out, "__program__") {
		t.Error("missing program-time marker (paper cube has uninstrumented time)")
	}
}

func TestCSVNoMarkerWhenFullyInstrumented(t *testing.T) {
	// A cube without explicit program time needs no marker.
	var buf bytes.Buffer
	in := "region,activity,proc,seconds\nr,a,0,1\nr,a,1,3\n"
	cube, err := ReadCubeCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteCubeCSV(&buf, cube); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "__program__") {
		t.Error("unexpected program marker")
	}
	if cube.ProgramTime() != 2 {
		t.Errorf("program time = %g (mean of 1 and 3 is 2)", cube.ProgramTime())
	}
}

func TestCSVWriteNil(t *testing.T) {
	if err := WriteCubeCSV(&bytes.Buffer{}, nil); err == nil {
		t.Error("nil cube should fail")
	}
}

func TestReadCubeCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"wrong,header,row,here\n",
		"region,activity,proc,seconds\n", // no data
		"region,activity,proc,seconds\nr,a,x,1\n",          // bad proc
		"region,activity,proc,seconds\nr,a,-1,1\n",         // negative proc
		"region,activity,proc,seconds\nr,a,0,abc\n",        // bad seconds
		"region,activity,proc,seconds\nr,a,0,-5\n",         // negative seconds
		"region,activity,proc,seconds\n,a,0,1\n",           // empty region
		"region,activity,proc,seconds\nr,,0,1\n",           // empty activity
		"region,activity,proc,seconds\nr,a,0\n",            // short record
		"region,activity,proc,seconds\n__program__,,0,1\n", // marker only
	}
	for i, c := range cases {
		if _, err := ReadCubeCSV(strings.NewReader(c)); !errors.Is(err, ErrCorrupt) {
			t.Errorf("case %d: err = %v", i, err)
		}
	}
}

func TestCSVAccumulatesDuplicates(t *testing.T) {
	in := "region,activity,proc,seconds\nr,a,0,1\nr,a,0,2\nr,a,1,1\n"
	cube, err := ReadCubeCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	v, err := cube.At(0, 0, 0)
	if err != nil || v != 3 {
		t.Errorf("duplicate records should accumulate: %g, %v", v, err)
	}
}

func TestCSVSparseProcs(t *testing.T) {
	// A gap in processor ids reads as zero time.
	in := "region,activity,proc,seconds\nr,a,0,1\nr,a,3,1\n"
	cube, err := ReadCubeCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if cube.NumProcs() != 4 {
		t.Fatalf("procs = %d", cube.NumProcs())
	}
	if v, _ := cube.At(0, 0, 1); v != 0 {
		t.Errorf("gap proc time = %g", v)
	}
}
