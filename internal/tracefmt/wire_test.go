package tracefmt

import (
	"bytes"
	"errors"
	"io"
	"math"
	"math/rand"
	"testing"

	"loadimb/internal/trace"
)

// randomEvents builds a pseudo-random event stream shaped like real
// instrumentation: mostly monotone timestamps, a handful of region and
// activity names, multiple ranks.
func randomEvents(rng *rand.Rand, n int) []trace.Event {
	regions := []string{"loop 1", "loop 2", "loop 3", "init", "halo-exchange"}
	activities := []string{"computation", "point-to-point", "collective", "synchronization"}
	events := make([]trace.Event, n)
	cursors := make([]float64, 8)
	for i := range events {
		r := rng.Intn(len(cursors))
		d := rng.Float64() * 0.25
		start := cursors[r]
		if rng.Intn(10) == 0 {
			// Occasional out-of-order start, as concurrent ranks produce.
			start *= rng.Float64()
		}
		events[i] = trace.Event{
			Rank:     r,
			Region:   regions[rng.Intn(len(regions))],
			Activity: activities[rng.Intn(len(activities))],
			Start:    start,
			End:      start + d,
		}
		cursors[r] = start + d
	}
	return events
}

// decodeAll drains a stream through a decoder until EOF.
func decodeAll(t *testing.T, r io.Reader) []trace.Event {
	t.Helper()
	dec := NewWireDecoder(r)
	var out []trace.Event
	for {
		var err error
		out, err = dec.DecodeBatch(out)
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("decoding stream: %v", err)
		}
	}
}

// TestWireRoundTrip checks that encode->decode is the exact identity on
// the event stream, bit for bit, across many batch split points.
func TestWireRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		events := randomEvents(rng, 1+rng.Intn(500))
		var buf bytes.Buffer
		enc := NewWireEncoder(&buf)
		rest := events
		for len(rest) > 0 {
			n := 1 + rng.Intn(len(rest))
			if err := enc.EncodeBatch(rest[:n]); err != nil {
				t.Fatalf("encoding: %v", err)
			}
			rest = rest[n:]
		}
		got := decodeAll(t, &buf)
		if len(got) != len(events) {
			t.Fatalf("trial %d: decoded %d events, want %d", trial, len(got), len(events))
		}
		for i := range events {
			if got[i].Rank != events[i].Rank || got[i].Region != events[i].Region ||
				got[i].Activity != events[i].Activity ||
				math.Float64bits(got[i].Start) != math.Float64bits(events[i].Start) ||
				math.Float64bits(got[i].End) != math.Float64bits(events[i].End) {
				t.Fatalf("trial %d event %d: got %+v, want %+v", trial, i, got[i], events[i])
			}
		}
	}
}

// TestWireRoundTripSpecialFloats checks that non-finite and denormal
// timestamps survive the bit-delta encoding exactly. The wire carries
// whatever the producer sends — validation is the collector's job — so
// the codec must be lossless even for garbage values.
func TestWireRoundTripSpecialFloats(t *testing.T) {
	weird := []float64{0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1),
		math.NaN(), math.SmallestNonzeroFloat64, -math.MaxFloat64, 1e-300}
	var events []trace.Event
	for _, s := range weird {
		for _, e := range weird {
			events = append(events, trace.Event{Rank: 0, Region: "r", Activity: "a", Start: s, End: e})
		}
	}
	var buf bytes.Buffer
	enc := NewWireEncoder(&buf)
	if err := enc.EncodeBatch(events); err != nil {
		t.Fatalf("encoding: %v", err)
	}
	got := decodeAll(t, &buf)
	if len(got) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if math.Float64bits(got[i].Start) != math.Float64bits(events[i].Start) ||
			math.Float64bits(got[i].End) != math.Float64bits(events[i].End) {
			t.Fatalf("event %d: got bits (%x, %x), want (%x, %x)", i,
				math.Float64bits(got[i].Start), math.Float64bits(got[i].End),
				math.Float64bits(events[i].Start), math.Float64bits(events[i].End))
		}
	}
}

// TestWireInterning checks that a repeated name costs a 1-byte reference
// after its first transmission: the steady-state wire cost per event must
// be far below a naive strings-every-time encoding.
func TestWireInterning(t *testing.T) {
	e := trace.Event{Rank: 3, Region: "loop 1", Activity: "computation", Start: 1, End: 2}
	var one, many bytes.Buffer
	if err := NewWireEncoder(&one).EncodeBatch([]trace.Event{e}); err != nil {
		t.Fatal(err)
	}
	batch := make([]trace.Event, 1000)
	for i := range batch {
		batch[i] = e
		batch[i].Start = float64(i)
		batch[i].End = float64(i) + 0.5
	}
	if err := NewWireEncoder(&many).EncodeBatch(batch); err != nil {
		t.Fatal(err)
	}
	// Steady state: 1-byte rank delta + two 1-byte name refs + two varint
	// timestamp deltas (up to ~9 bytes each for arbitrary floats). Names
	// re-sent every event would cost ~20 bytes more.
	perEvent := float64(many.Len()-one.Len()) / float64(len(batch)-1)
	if perEvent > 21 {
		t.Fatalf("steady-state wire cost %.1f bytes/event, want <= 21 (interning broken?)", perEvent)
	}
}

// TestWireEmptyStream: a connection that closes without sending anything
// is an empty trace, not an error.
func TestWireEmptyStream(t *testing.T) {
	dec := NewWireDecoder(bytes.NewReader(nil))
	if _, err := dec.DecodeBatch(nil); err != io.EOF {
		t.Fatalf("empty stream: got %v, want io.EOF", err)
	}
}

// TestWireBadHandshake rejects wrong magic and unsupported versions with
// the sentinel errors.
func TestWireBadHandshake(t *testing.T) {
	if _, err := NewWireDecoder(bytes.NewReader([]byte("LIMB"))).DecodeBatch(nil); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("wrong magic: got %v, want ErrBadMagic", err)
	}
	if _, err := NewWireDecoder(bytes.NewReader([]byte("LIWP\x02"))).DecodeBatch(nil); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("future version: got %v, want ErrBadVersion", err)
	}
	if _, err := NewWireDecoder(bytes.NewReader([]byte("LI"))).DecodeBatch(nil); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("truncated magic: got %v, want ErrBadMagic", err)
	}
}

// TestWireCorruptFrames: structurally broken frames after a valid
// handshake yield ErrWire, never a panic or a silent truncation.
func TestWireCorruptFrames(t *testing.T) {
	valid := func() []byte {
		var buf bytes.Buffer
		enc := NewWireEncoder(&buf)
		if err := enc.EncodeBatch([]trace.Event{{Rank: 1, Region: "r", Activity: "a", Start: 0, End: 1}}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()
	cases := map[string][]byte{
		"zero frame length":  append([]byte("LIWP\x01"), 0x00),
		"oversized frame":    append([]byte("LIWP\x01"), 0xff, 0xff, 0xff, 0x7f),
		"unknown frame type": append([]byte("LIWP\x01"), 0x02, 0x7f, 0x01),
		"truncated body":     valid[:len(valid)-2],
		"trailing bytes": func() []byte {
			b := append([]byte(nil), valid...)
			// Grow the declared frame length by appending junk and fixing
			// the length byte (frame starts after the 5-byte handshake).
			b = append(b, 0xee)
			b[5]++
			return b
		}(),
		"bad string ref": append([]byte("LIWP\x01"), 0x04, FrameEvents, 0x01, 0x00, 0x05),
	}
	for name, data := range cases {
		dec := NewWireDecoder(bytes.NewReader(data))
		var err error
		var out []trace.Event
		for err == nil {
			out, err = dec.DecodeBatch(out)
		}
		if err == io.EOF || err == nil {
			t.Errorf("%s: decoder accepted corrupt input", name)
		}
	}
}

// TestWireDecoderReuseAfterBatches: intern tables and deltas persist
// across frames of one stream but never leak between streams.
func TestWireDecoderReuseAfterBatches(t *testing.T) {
	e := trace.Event{Rank: 2, Region: "loop 9", Activity: "collective", Start: 4, End: 5}
	var buf bytes.Buffer
	enc := NewWireEncoder(&buf)
	for i := 0; i < 3; i++ {
		if err := enc.EncodeBatch([]trace.Event{e}); err != nil {
			t.Fatal(err)
		}
	}
	firstStream := buf.Len()
	got := decodeAll(t, bytes.NewReader(buf.Bytes()))
	if len(got) != 3 {
		t.Fatalf("decoded %d events, want 3", len(got))
	}
	// A second, independent stream must re-intern from scratch: reusing
	// the old decoder tables would mis-resolve its references.
	var buf2 bytes.Buffer
	if err := NewWireEncoder(&buf2).EncodeBatch([]trace.Event{e}); err != nil {
		t.Fatal(err)
	}
	got2 := decodeAll(t, &buf2)
	if len(got2) != 1 || got2[0] != e {
		t.Fatalf("second stream decoded %+v", got2)
	}
	_ = firstStream
}

// TestWireFrameSplit: a single batch dense with newly interned
// near-maximum-length names encodes to more than MaxWireFrame bytes of
// payload. The encoder must split it across frames instead of erroring
// out — the stream is legitimate, just name-heavy — and the round trip
// must stay the identity, because intern tables and timestamp/rank
// deltas are stream state, not frame state. decodeAll doubles as the
// frame-size check: the decoder rejects any frame above MaxWireFrame.
func TestWireFrameSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	events := make([]trace.Event, 2048)
	cursor := 0.0
	for i := range events {
		name := make([]byte, maxNameLen)
		for j := range name {
			name[j] = byte('a' + rng.Intn(26))
		}
		d := rng.Float64() * 0.1
		events[i] = trace.Event{
			Rank:     i % 4,
			Region:   string(name),
			Activity: "compute",
			Start:    cursor,
			End:      cursor + d,
		}
		cursor += d
	}
	var buf bytes.Buffer
	enc := NewWireEncoder(&buf)
	if err := enc.EncodeBatch(events); err != nil {
		t.Fatalf("encoding a name-heavy batch: %v", err)
	}
	if buf.Len() <= MaxWireFrame {
		t.Fatalf("stream is %d bytes; the test needs more than MaxWireFrame (%d) to force a split", buf.Len(), MaxWireFrame)
	}
	got := decodeAll(t, bytes.NewReader(buf.Bytes()))
	if len(got) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d corrupted across the split: got %+v, want %+v", i, got[i], events[i])
		}
	}
}
