package tracefmt

import (
	"fmt"
	"os"
	"strings"

	"loadimb/internal/trace"
)

// OpenCube reads a cube from the named file, selecting the format by
// extension: ".json" is the JSON format, ".csv" the CSV interchange
// format, anything else the binary LIMB format.
func OpenCube(path string) (*trace.Cube, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var cube *trace.Cube
	switch {
	case strings.HasSuffix(path, ".json"):
		cube, err = ReadCubeJSON(f)
	case strings.HasSuffix(path, ".csv"):
		cube, err = ReadCubeCSV(f)
	default:
		cube, err = ReadCube(f)
	}
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return cube, nil
}

// SaveCube writes a cube to the named file, selecting the format by
// extension like OpenCube. The file is created or truncated.
func SaveCube(path string, cube *trace.Cube) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var werr error
	switch {
	case strings.HasSuffix(path, ".json"):
		werr = WriteCubeJSON(f, cube)
	case strings.HasSuffix(path, ".csv"):
		werr = WriteCubeCSV(f, cube)
	default:
		werr = WriteCube(f, cube)
	}
	cerr := f.Close()
	if werr != nil {
		return fmt.Errorf("%s: %w", path, werr)
	}
	if cerr != nil {
		return fmt.Errorf("%s: %w", path, cerr)
	}
	return nil
}

// OpenEvents reads a JSON-Lines event trace from the named file.
func OpenEvents(path string) (*trace.Log, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	log, err := ReadEvents(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return log, nil
}

// SaveEvents writes a JSON-Lines event trace to the named file.
func SaveEvents(path string, log *trace.Log) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := WriteEvents(f, log)
	cerr := f.Close()
	if werr != nil {
		return fmt.Errorf("%s: %w", path, werr)
	}
	if cerr != nil {
		return fmt.Errorf("%s: %w", path, cerr)
	}
	return nil
}
