package tracefmt

// This file defines the binary event *wire* protocol: the format producers
// (instrumented programs, possibly not written in Go) use to stream trace
// events over a socket into a live collector (internal/monitor's ingest
// listener). It is a streaming format — unlike the LIMB cube file, which
// holds a finished aggregation, a wire stream carries raw events in
// arrival order and never ends until the connection closes.
//
// # Stream layout
//
// A stream opens with a fixed handshake and then carries frames until the
// writer closes the connection:
//
//	handshake := "LIWP" uvarint(version)
//	stream    := handshake frame*
//
// The version is currently 1; a decoder must reject versions it does not
// speak (ErrBadVersion) so both sides fail loudly instead of trading
// garbage. All varints are the unsigned (uvarint) and zigzag-signed
// (varint) encodings of encoding/binary.
//
// # Frames
//
// Each frame is length-prefixed so a decoder can bound its reads and a
// relay can skip frames without parsing them:
//
//	frame := uvarint(len(body)) body          // 1 <= len <= MaxWireFrame
//	body  := frameType(1 byte) payload
//
// The only frame type is FrameEvents (0x01): a batch of events.
//
//	payload := uvarint(count) event*          // 1 <= count <= MaxWireBatch
//
// The encoder splits a batch across several frames when its payload
// would exceed MaxWireFrame (possible only for batches dense with newly
// interned near-maximum-length names); splitting is invisible to the
// decoder because intern tables and deltas are stream state, not frame
// state.
//
//	event   := varint(rank - prevRank)
//	           stringRef(region)
//	           stringRef(activity)
//	           varint(bits(start) - bits(prevStart))   // signed delta of the
//	           varint(bits(end)   - bits(start))       // IEEE-754 bit patterns
//
// # Timestamps
//
// Timestamps are float64 virtual seconds. Sending raw floats would cost 8
// bytes each; sending decimal deltas would lose bits. The wire instead
// delta-encodes the *IEEE-754 bit patterns* (interpreted as int64,
// Gorilla-style): consecutive timestamps of a monotone stream share sign,
// exponent and high mantissa bits, so the signed bit-pattern delta is
// small and varints compress it to 1-4 bytes — while the round trip stays
// exact to the last bit, which the equivalence guarantee (a wire-fed
// collector folds bit-identically to an in-process one) depends on.
// prevStart is the previous event's start in the same stream (an implicit
// 0.0 before the first event); each event's end is encoded relative to
// its own start, i.e. as a compressed duration.
//
// # String interning
//
// Region and activity names repeat constantly, so each stream direction
// maintains two append-only string tables (regions, activities) shared by
// all frames of the connection:
//
//	stringRef := uvarint(0) uvarint(len) bytes   // new: append to table
//	           | uvarint(index+1)                // known: table reference
//
// A name is transmitted once and referenced by index (1 byte for the
// first 127 names) afterwards. Tables are bounded (MaxWireStrings entries,
// maxWireTableBytes total) so a hostile stream cannot grow decoder state
// without limit; an encoder that overflows the table errors out, which in
// practice means the producer is generating unbounded distinct names.
//
// # Rank deltas
//
// The rank is zigzag-delta encoded against the previous event's rank in
// the stream. A connection typically carries one rank (one producer
// thread), making the delta a single 0x00 byte.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"loadimb/internal/trace"
)

// Wire protocol constants.
const (
	// WireMagic opens every event wire stream.
	WireMagic = "LIWP"
	// WireVersion is the protocol version this package speaks.
	WireVersion = 1
	// FrameEvents is the frame type carrying a batch of events.
	FrameEvents = 0x01
	// MaxWireFrame bounds a frame body; larger declared lengths are
	// rejected before any allocation.
	MaxWireFrame = 1 << 22
	// MaxWireBatch bounds the event count of one frame.
	MaxWireBatch = 1 << 16
	// MaxWireStrings bounds each intern table of a connection.
	MaxWireStrings = 1 << 16
	// maxWireTableBytes bounds the total interned name bytes per table, so
	// a hostile stream cannot balloon decoder memory with maximum-length
	// names.
	maxWireTableBytes = 1 << 24
)

// ErrWire is wrapped by every wire-protocol corruption error, so callers
// can distinguish a malformed stream from an I/O failure.
var ErrWire = errors.New("tracefmt: corrupt wire stream")

// zigzag maps a signed delta onto the unsigned varint space.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// WireEncoder encodes event batches as wire frames. It is not safe for
// concurrent use; a connection has one encoder. The zero cost path is the
// steady state: after names are interned, EncodeBatch performs no heap
// allocations (the frame is assembled in a reused scratch buffer).
//
// A write error leaves the stream state (intern tables, deltas)
// unsynchronized with whatever the receiver got; the error is sticky and
// the connection must be abandoned.
type WireEncoder struct {
	w          io.Writer
	started    bool
	err        error
	regions    map[string]uint64
	activities map[string]uint64
	prevRank   int64
	prevStart  uint64 // IEEE-754 bits of the previous event's start
	scratch    []byte // frame body assembly buffer
	hdr        []byte // frame header assembly buffer

	// lastRegion/lastActivity memoize the previous event's name and its
	// wire reference: real streams repeat the same names in long runs, so
	// the hot path is a string comparison (usually a pointer equality)
	// instead of a map lookup. A zero ref marks the memo invalid — 0 is
	// never a table reference (references are index+1).
	lastRegion      string
	lastRegionRef   uint64
	lastActivity    string
	lastActivityRef uint64
}

// NewWireEncoder returns an encoder writing the wire protocol to w. The
// handshake is emitted in front of the first frame.
func NewWireEncoder(w io.Writer) *WireEncoder {
	return &WireEncoder{
		w:          w,
		regions:    make(map[string]uint64),
		activities: make(map[string]uint64),
	}
}

// EncodeBatch writes one or more event frames carrying the batch, in
// order. An empty batch writes nothing. Events are passed through
// verbatim — validation (and malformed-event accounting) is the
// receiving collector's job, exactly as for in-process recording.
func (enc *WireEncoder) EncodeBatch(events []trace.Event) error {
	if enc.err != nil {
		return enc.err
	}
	if len(events) == 0 {
		return nil
	}
	if !enc.started {
		hs := append(enc.hdr[:0], WireMagic...)
		hs = binary.AppendUvarint(hs, WireVersion)
		if _, err := enc.w.Write(hs); err != nil {
			enc.err = err
			return err
		}
		enc.hdr = hs[:0]
		enc.started = true
	}
	for len(events) > 0 {
		n := len(events)
		if n > MaxWireBatch {
			n = MaxWireBatch
		}
		if err := enc.encodeFrame(events[:n]); err != nil {
			return err
		}
		events = events[n:]
	}
	return nil
}

// maxEventWire is a conservative bound on one encoded event: the rank
// delta and two timestamp deltas (≤ MaxVarintLen64 each) plus two string
// refs, each at worst a freshly interned maximum-length name (marker +
// length varint + bytes).
const maxEventWire = 3*binary.MaxVarintLen64 + 2*(1+binary.MaxVarintLen64+maxNameLen)

// maxFramePayload is the event-payload budget of one frame: MaxWireFrame
// minus the frame type byte and the worst-case count varint.
const maxFramePayload = MaxWireFrame - 1 - binary.MaxVarintLen64

// encodeFrame writes the batch (already capped at MaxWireBatch events)
// as one or more frames. A frame normally carries the whole batch, but a
// batch dense with newly interned names — the only way events get big —
// is split across frames so no frame body exceeds MaxWireFrame: splitting
// is invisible to the receiver (the intern tables and deltas are stream
// state, not frame state), whereas erroring out would kill a legitimate
// stream.
func (enc *WireEncoder) encodeFrame(events []trace.Event) error {
	payload := enc.scratch[:0]
	count := uint64(0)
	for _, e := range events {
		if count > 0 && len(payload)+maxEventWire > maxFramePayload {
			if err := enc.flushFrame(payload, count); err != nil {
				enc.scratch = payload[:0]
				return err
			}
			payload = payload[:0]
			count = 0
		}
		rank := int64(e.Rank)
		payload = binary.AppendUvarint(payload, zigzag(rank-enc.prevRank))
		enc.prevRank = rank
		var err error
		if payload, err = enc.ref(payload, enc.regions, e.Region, &enc.lastRegion, &enc.lastRegionRef); err != nil {
			enc.scratch = payload[:0]
			enc.err = err
			return err
		}
		if payload, err = enc.ref(payload, enc.activities, e.Activity, &enc.lastActivity, &enc.lastActivityRef); err != nil {
			enc.scratch = payload[:0]
			enc.err = err
			return err
		}
		start := math.Float64bits(e.Start)
		end := math.Float64bits(e.End)
		payload = binary.AppendUvarint(payload, zigzag(int64(start)-int64(enc.prevStart)))
		payload = binary.AppendUvarint(payload, zigzag(int64(end)-int64(start)))
		enc.prevStart = start
		count++
	}
	err := enc.flushFrame(payload, count)
	enc.scratch = payload[:0] // keep the grown buffer for the next frame
	return err
}

// flushFrame emits one frame carrying count events whose encoded payload
// is already assembled. The frame body is written in two parts (type +
// count, then the payload) so the count — unknown until a split point is
// reached — never forces re-copying the payload.
func (enc *WireEncoder) flushFrame(payload []byte, count uint64) error {
	if count == 0 {
		return nil
	}
	var cnt [binary.MaxVarintLen64]byte
	cn := binary.PutUvarint(cnt[:], count)
	hdr := binary.AppendUvarint(enc.hdr[:0], uint64(1+cn+len(payload)))
	hdr = append(hdr, FrameEvents)
	hdr = append(hdr, cnt[:cn]...)
	enc.hdr = hdr[:0]
	if _, err := enc.w.Write(hdr); err != nil {
		enc.err = err
		return err
	}
	if _, err := enc.w.Write(payload); err != nil {
		enc.err = err
		return err
	}
	return nil
}

// ref appends the string reference for name, interning it in table on
// first use and keeping the (last, lastRef) memo current.
func (enc *WireEncoder) ref(dst []byte, table map[string]uint64, name string, last *string, lastRef *uint64) ([]byte, error) {
	if *lastRef != 0 && name == *last {
		return binary.AppendUvarint(dst, *lastRef), nil
	}
	if idx, ok := table[name]; ok {
		*last, *lastRef = name, idx+1
		return binary.AppendUvarint(dst, idx+1), nil
	}
	if len(name) > maxNameLen {
		return dst, fmt.Errorf("%w: name %d bytes exceeds %d", ErrWire, len(name), maxNameLen)
	}
	if len(table) >= MaxWireStrings {
		return dst, fmt.Errorf("%w: string table full (%d names)", ErrWire, MaxWireStrings)
	}
	idx := uint64(len(table))
	table[name] = idx
	*last, *lastRef = name, idx+1
	dst = binary.AppendUvarint(dst, 0)
	dst = binary.AppendUvarint(dst, uint64(len(name)))
	return append(dst, name...), nil
}

// WireDecoder decodes an event wire stream. It is not safe for concurrent
// use; a connection has one decoder. Arbitrary input never panics: every
// structural violation returns an error wrapping ErrWire (or ErrBadMagic /
// ErrBadVersion for handshake failures), and decoder memory is bounded by
// the frame and table limits regardless of input.
type WireDecoder struct {
	br         *bufio.Reader
	started    bool
	version    uint64
	regions    []string
	activities []string
	tableBytes [2]int
	prevRank   int64
	prevStart  uint64
	frame      []byte // reused frame body buffer
}

// NewWireDecoder returns a decoder reading the wire protocol from r.
func NewWireDecoder(r io.Reader) *WireDecoder {
	return &WireDecoder{br: bufio.NewReaderSize(r, 1<<16)}
}

// Version reports the negotiated protocol version; 0 before the handshake
// has been read.
func (d *WireDecoder) Version() uint64 { return d.version }

// DecodeBatch reads the next event frame and appends its events to dst,
// returning the extended slice. It returns io.EOF when the stream ends
// cleanly at a frame boundary (including the empty stream), and an error
// wrapping ErrWire / ErrBadMagic / ErrBadVersion on malformed input. A
// decoder that returned an error must not be used again.
func (d *WireDecoder) DecodeBatch(dst []trace.Event) ([]trace.Event, error) {
	if !d.started {
		if err := d.handshake(); err != nil {
			return dst, err
		}
		d.started = true
	}
	bodyLen, err := binary.ReadUvarint(d.br)
	if err == io.EOF {
		return dst, io.EOF // clean end between frames
	}
	if err != nil {
		return dst, fmt.Errorf("%w: frame length: %v", ErrWire, err)
	}
	if bodyLen == 0 || bodyLen > MaxWireFrame {
		return dst, fmt.Errorf("%w: frame length %d", ErrWire, bodyLen)
	}
	if cap(d.frame) < int(bodyLen) {
		d.frame = make([]byte, bodyLen)
	}
	body := d.frame[:bodyLen]
	if _, err := io.ReadFull(d.br, body); err != nil {
		return dst, fmt.Errorf("%w: frame body: %v", ErrWire, err)
	}
	return d.decodeFrame(dst, body)
}

func (d *WireDecoder) handshake() error {
	magic := make([]byte, len(WireMagic))
	if _, err := io.ReadFull(d.br, magic); err != nil {
		if err == io.EOF {
			// An empty stream is a connection that opened and closed
			// without sending anything: an empty trace, not corruption.
			return io.EOF
		}
		return fmt.Errorf("%w: handshake: %v", ErrBadMagic, err)
	}
	if string(magic) != WireMagic {
		return fmt.Errorf("%w: got %q, want %q", ErrBadMagic, magic, WireMagic)
	}
	v, err := binary.ReadUvarint(d.br)
	if err != nil {
		return fmt.Errorf("%w: handshake version: %v", ErrWire, err)
	}
	if v != WireVersion {
		return fmt.Errorf("%w: wire version %d (decoder speaks %d)", ErrBadVersion, v, WireVersion)
	}
	d.version = v
	return nil
}

func (d *WireDecoder) decodeFrame(dst []trace.Event, body []byte) ([]trace.Event, error) {
	if body[0] != FrameEvents {
		return dst, fmt.Errorf("%w: unknown frame type 0x%02x", ErrWire, body[0])
	}
	body = body[1:]
	count, body, err := takeUvarint(body)
	if err != nil {
		return dst, fmt.Errorf("%w: event count: %v", ErrWire, err)
	}
	if count == 0 || count > MaxWireBatch {
		return dst, fmt.Errorf("%w: event count %d", ErrWire, count)
	}
	for n := uint64(0); n < count; n++ {
		var e trace.Event
		var u uint64
		if u, body, err = takeUvarint(body); err != nil {
			return dst, fmt.Errorf("%w: rank delta: %v", ErrWire, err)
		}
		d.prevRank += unzigzag(u)
		e.Rank = int(d.prevRank)
		if e.Region, body, err = d.takeRef(body, &d.regions, 0); err != nil {
			return dst, err
		}
		if e.Activity, body, err = d.takeRef(body, &d.activities, 1); err != nil {
			return dst, err
		}
		if u, body, err = takeUvarint(body); err != nil {
			return dst, fmt.Errorf("%w: start delta: %v", ErrWire, err)
		}
		start := uint64(int64(d.prevStart) + unzigzag(u))
		e.Start = math.Float64frombits(start)
		d.prevStart = start
		if u, body, err = takeUvarint(body); err != nil {
			return dst, fmt.Errorf("%w: end delta: %v", ErrWire, err)
		}
		e.End = math.Float64frombits(uint64(int64(start) + unzigzag(u)))
		dst = append(dst, e)
	}
	if len(body) != 0 {
		return dst, fmt.Errorf("%w: %d trailing bytes in frame", ErrWire, len(body))
	}
	return dst, nil
}

// takeRef decodes one string reference against the given intern table
// (which == 0 selects the region byte budget, 1 the activity one).
func (d *WireDecoder) takeRef(body []byte, table *[]string, which int) (string, []byte, error) {
	ref, body, err := takeUvarint(body)
	if err != nil {
		return "", body, fmt.Errorf("%w: string ref: %v", ErrWire, err)
	}
	if ref > 0 {
		if ref > uint64(len(*table)) {
			return "", body, fmt.Errorf("%w: string ref %d beyond table of %d", ErrWire, ref, len(*table))
		}
		return (*table)[ref-1], body, nil
	}
	n, body, err := takeUvarint(body)
	if err != nil {
		return "", body, fmt.Errorf("%w: string length: %v", ErrWire, err)
	}
	if n > maxNameLen {
		return "", body, fmt.Errorf("%w: string length %d", ErrWire, n)
	}
	if uint64(len(body)) < n {
		return "", body, fmt.Errorf("%w: string body truncated", ErrWire)
	}
	if len(*table) >= MaxWireStrings {
		return "", body, fmt.Errorf("%w: string table full", ErrWire)
	}
	if d.tableBytes[which]+int(n) > maxWireTableBytes {
		return "", body, fmt.Errorf("%w: string table byte budget exceeded", ErrWire)
	}
	s := string(body[:n])
	*table = append(*table, s)
	d.tableBytes[which] += int(n)
	return s, body[n:], nil
}

// takeUvarint reads one uvarint from the front of body.
func takeUvarint(body []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(body)
	if n <= 0 {
		return 0, body, errors.New("truncated or overlong varint")
	}
	return v, body[n:], nil
}
