package tracefmt

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"loadimb/internal/trace"
)

func TestSaveOpenCubeBinary(t *testing.T) {
	cube := paperCube(t)
	path := filepath.Join(t.TempDir(), "run.limb")
	if err := SaveCube(path, cube); err != nil {
		t.Fatal(err)
	}
	got, err := OpenCube(path)
	if err != nil {
		t.Fatal(err)
	}
	if !cube.EqualWithin(got, 0) {
		t.Error("binary file round trip changed the cube")
	}
}

func TestSaveOpenCubeJSON(t *testing.T) {
	cube := paperCube(t)
	path := filepath.Join(t.TempDir(), "run.json")
	if err := SaveCube(path, cube); err != nil {
		t.Fatal(err)
	}
	// The file really is JSON.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 || data[0] != '{' {
		t.Errorf("file does not look like JSON: %q...", data[:20])
	}
	got, err := OpenCube(path)
	if err != nil {
		t.Fatal(err)
	}
	if !cube.EqualWithin(got, 0) {
		t.Error("JSON file round trip changed the cube")
	}
}

func TestOpenCubeMissing(t *testing.T) {
	if _, err := OpenCube(filepath.Join(t.TempDir(), "missing.limb")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestOpenCubeCorruptMentionsPath(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.limb")
	if err := os.WriteFile(path, []byte("garbage data here"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := OpenCube(path)
	if err == nil {
		t.Fatal("corrupt file should fail")
	}
	if !strings.Contains(err.Error(), "bad.limb") {
		t.Errorf("error should mention the path: %v", err)
	}
}

func TestSaveCubeBadDir(t *testing.T) {
	cube := paperCube(t)
	if err := SaveCube(filepath.Join(t.TempDir(), "no", "such", "dir.limb"), cube); err == nil {
		t.Error("unwritable path should fail")
	}
}

func TestSaveOpenEvents(t *testing.T) {
	var log trace.Log
	if err := log.Append(trace.Event{Rank: 0, Region: "r", Activity: "a", Start: 0, End: 1}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "events.jsonl")
	if err := SaveEvents(path, &log); err != nil {
		t.Fatal(err)
	}
	got, err := OpenEvents(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || got.Events()[0].Region != "r" {
		t.Errorf("events round trip = %+v", got.Events())
	}
}

func TestOpenEventsMissing(t *testing.T) {
	if _, err := OpenEvents(filepath.Join(t.TempDir(), "missing.jsonl")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestSaveOpenCubeCSV(t *testing.T) {
	cube := paperCube(t)
	path := filepath.Join(t.TempDir(), "run.csv")
	if err := SaveCube(path, cube); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "region,activity,proc,seconds") {
		t.Error("file does not look like the CSV format")
	}
	got, err := OpenCube(path)
	if err != nil {
		t.Fatal(err)
	}
	if !cube.EqualWithin(got, 1e-12) {
		t.Error("CSV file round trip changed the cube")
	}
}
