package tracefmt

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"loadimb/internal/trace"
)

// The CSV cube format is the interchange format for tools that are not
// Go programs: one record per (region, activity, processor) cell,
//
//	region,activity,proc,seconds
//
// with a header row, plus an optional pseudo-record
//
//	__program__,,0,<seconds>
//
// carrying the program wall clock time. Region and activity dimension
// orders follow first appearance. Missing cells default to zero (absent
// activities simply have no records).

// programMarker is the reserved region name carrying the program time.
const programMarker = "__program__"

// WriteCubeCSV encodes the cube as CSV records.
func WriteCubeCSV(w io.Writer, cube *trace.Cube) error {
	if cube == nil {
		return fmt.Errorf("tracefmt: nil cube")
	}
	bw := bufio.NewWriter(w)
	cw := csv.NewWriter(bw)
	if err := cw.Write([]string{"region", "activity", "proc", "seconds"}); err != nil {
		return err
	}
	regions, activities := cube.Regions(), cube.Activities()
	for i, region := range regions {
		for j, activity := range activities {
			for p := 0; p < cube.NumProcs(); p++ {
				t, err := cube.At(i, j, p)
				if err != nil {
					return err
				}
				rec := []string{region, activity, strconv.Itoa(p), strconv.FormatFloat(t, 'g', -1, 64)}
				if err := cw.Write(rec); err != nil {
					return err
				}
			}
		}
	}
	if pt := cube.ProgramTime(); pt > cube.RegionsTotal() {
		rec := []string{programMarker, "", "0", strconv.FormatFloat(pt, 'g', -1, 64)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadCubeCSV decodes a CSV cube. The processor dimension is sized by the
// largest processor id seen (ids must be dense from 0 for a meaningful
// cube, but gaps simply read as zero time).
func ReadCubeCSV(r io.Reader) (*trace.Cube, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 4
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("%w: missing header: %v", ErrCorrupt, err)
	}
	if header[0] != "region" || header[1] != "activity" || header[2] != "proc" || header[3] != "seconds" {
		return nil, fmt.Errorf("%w: unexpected header %v", ErrCorrupt, header)
	}
	type cell struct {
		region, activity string
		proc             int
		seconds          float64
	}
	var cells []cell
	var regions, activities []string
	seenRegion := map[string]bool{}
	seenActivity := map[string]bool{}
	maxProc := -1
	programTime := 0.0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		proc, err := strconv.Atoi(rec[2])
		if err != nil || proc < 0 {
			return nil, fmt.Errorf("%w: bad proc %q", ErrCorrupt, rec[2])
		}
		seconds, err := strconv.ParseFloat(rec[3], 64)
		if err != nil || seconds < 0 {
			return nil, fmt.Errorf("%w: bad seconds %q", ErrCorrupt, rec[3])
		}
		if rec[0] == programMarker {
			programTime = seconds
			continue
		}
		if rec[0] == "" || rec[1] == "" {
			return nil, fmt.Errorf("%w: empty region or activity", ErrCorrupt)
		}
		if !seenRegion[rec[0]] {
			seenRegion[rec[0]] = true
			regions = append(regions, rec[0])
		}
		if !seenActivity[rec[1]] {
			seenActivity[rec[1]] = true
			activities = append(activities, rec[1])
		}
		if proc > maxProc {
			maxProc = proc
		}
		cells = append(cells, cell{rec[0], rec[1], proc, seconds})
	}
	if len(cells) == 0 {
		return nil, fmt.Errorf("%w: no data records", ErrCorrupt)
	}
	cube, err := trace.NewCube(regions, activities, maxProc+1)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	for _, c := range cells {
		i, j := cube.RegionIndex(c.region), cube.ActivityIndex(c.activity)
		if err := cube.Add(i, j, c.proc, c.seconds); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
	}
	if programTime > cube.RegionsTotal() {
		if err := cube.SetProgramTime(programTime); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
	}
	return cube, nil
}
