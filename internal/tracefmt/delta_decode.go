package tracefmt

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"loadimb/internal/temporal"
	"loadimb/internal/trace"
)

// deltaDec consumes one LIFP document. Like the encoder its intern table
// and float chain are document-local; every read is bounds-checked so
// arbitrary input produces an error, never a panic or an allocation
// disproportionate to the input size.
type deltaDec struct {
	body    []byte
	strings []string
	tblLen  int
	wprev   uint64
}

func (d *deltaDec) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.body)
	if n <= 0 {
		return 0, fmt.Errorf("%w: truncated uvarint", ErrWire)
	}
	d.body = d.body[n:]
	return v, nil
}

func (d *deltaDec) varint() (int64, error) {
	u, err := d.uvarint()
	return unzigzag(u), err
}

func (d *deltaDec) takeByte() (byte, error) {
	if len(d.body) == 0 {
		return 0, fmt.Errorf("%w: truncated byte", ErrWire)
	}
	b := d.body[0]
	d.body = d.body[1:]
	return b, nil
}

// count reads a count whose every element consumes at least min bytes of
// input, rejecting counts the remaining input cannot possibly satisfy —
// the proportionality bound that keeps decoder allocation tied to input
// size.
func (d *deltaDec) count(min int) (int, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(len(d.body)/min) {
		return 0, fmt.Errorf("%w: count %d exceeds remaining input", ErrWire, v)
	}
	return int(v), nil
}

// stringRef reads one interned string reference.
func (d *deltaDec) stringRef() (string, error) {
	ref, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if ref != 0 {
		if ref > uint64(len(d.strings)) {
			return "", fmt.Errorf("%w: string ref %d beyond table of %d", ErrWire, ref, len(d.strings))
		}
		return d.strings[ref-1], nil
	}
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > maxNameLen || n > uint64(len(d.body)) {
		return "", fmt.Errorf("%w: name length %d", ErrWire, n)
	}
	if len(d.strings) >= MaxWireStrings {
		return "", fmt.Errorf("%w: string table full", ErrWire)
	}
	if d.tblLen+int(n) > maxWireTableBytes {
		return "", fmt.Errorf("%w: string table byte budget exceeded", ErrWire)
	}
	name := string(d.body[:n])
	d.body = d.body[n:]
	d.strings = append(d.strings, name)
	d.tblLen += int(n)
	return name, nil
}

// floatBits reads one finite float off the document-global chain.
func (d *deltaDec) floatBits() (float64, error) {
	delta, err := d.varint()
	if err != nil {
		return 0, err
	}
	d.wprev = uint64(int64(d.wprev) + delta)
	v := math.Float64frombits(d.wprev)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("%w: non-finite value", ErrWire)
	}
	return v, nil
}

// vec reads one float vector; maxLen bounds the declared length.
func (d *deltaDec) vec(maxLen int) ([]float64, error) {
	n, err := d.count(1)
	if err != nil {
		return nil, err
	}
	if n > maxLen {
		return nil, fmt.Errorf("%w: vector length %d exceeds %d", ErrWire, n, maxLen)
	}
	out := make([]float64, n)
	for i := range out {
		if out[i], err = d.floatBits(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// finiteWidth validates a decoded window width (or program time) pattern.
func finiteNonneg(bits uint64, what string) (float64, error) {
	v := math.Float64frombits(bits)
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return 0, fmt.Errorf("%w: invalid %s %g", ErrWire, what, v)
	}
	return v, nil
}

// DecodeSnapshot decodes one LIFP document. For a full document base is
// ignored and may be nil. For a delta document base must hold exactly the
// (boot, fromGen) state the delta was encoded against, or ErrDeltaBase is
// returned and the caller should resynchronize with a full fetch.
// Patched sections are built on clones — base is never mutated, so the
// caller's cached state stays valid if decoding fails midway — but a
// section the delta marks unchanged is returned as base's own pointer;
// callers must treat decoded states as immutable.
func DecodeSnapshot(data []byte, base *DeltaState) (*DeltaState, error) {
	if len(data) < len(DeltaMagic) || string(data[:len(DeltaMagic)]) != DeltaMagic {
		return nil, fmt.Errorf("%w: want %q", ErrBadMagic, DeltaMagic)
	}
	d := &deltaDec{body: data[len(DeltaMagic):]}
	ver, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if ver != DeltaVersion {
		return nil, fmt.Errorf("%w: delta version %d, support %d", ErrBadVersion, ver, DeltaVersion)
	}
	kind, err := d.takeByte()
	if err != nil {
		return nil, err
	}
	boot, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	gen, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	out := &DeltaState{Boot: boot, Gen: gen}
	switch kind {
	case deltaKindFull:
		if out.Cube, err = d.cubeSection(); err != nil {
			return nil, err
		}
		if out.Series, err = d.seriesSection(); err != nil {
			return nil, err
		}
	case deltaKindDelta:
		fromGen, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if base == nil || base.Boot != boot || base.Gen != fromGen {
			return nil, ErrDeltaBase
		}
		if out.Cube, err = d.cubeOp(base.Cube); err != nil {
			return nil, err
		}
		if out.Series, err = d.seriesOp(base.Series); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("%w: document kind %#x", ErrWire, kind)
	}
	if len(d.body) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrWire, len(d.body))
	}
	return out, nil
}

// cubeSection reads the full-document cube section (absent or full).
func (d *deltaDec) cubeSection() (*trace.Cube, error) {
	tag, err := d.takeByte()
	if err != nil {
		return nil, err
	}
	switch tag {
	case deltaOpAbsent:
		return nil, nil
	case deltaOpPresent:
		return d.cubeFull()
	}
	return nil, fmt.Errorf("%w: cube section tag %#x", ErrWire, tag)
}

// seriesSection reads the full-document series section.
func (d *deltaDec) seriesSection() (*temporal.Series, error) {
	tag, err := d.takeByte()
	if err != nil {
		return nil, err
	}
	switch tag {
	case deltaOpAbsent:
		return nil, nil
	case deltaOpPresent:
		return d.seriesFull()
	}
	return nil, fmt.Errorf("%w: series section tag %#x", ErrWire, tag)
}

// cubeOp applies a delta-document cube operation against base.
func (d *deltaDec) cubeOp(base *trace.Cube) (*trace.Cube, error) {
	tag, err := d.takeByte()
	if err != nil {
		return nil, err
	}
	switch tag {
	case deltaOpUnchanged:
		return base, nil
	case deltaOpCleared:
		return nil, nil
	case deltaOpReplace:
		return d.cubeFull()
	case deltaOpPresent:
		if base == nil {
			return nil, fmt.Errorf("%w: cube patch with no base cube", ErrWire)
		}
		return d.cubePatch(base)
	}
	return nil, fmt.Errorf("%w: cube op %#x", ErrWire, tag)
}

// seriesOp applies a delta-document series operation against base.
func (d *deltaDec) seriesOp(base *temporal.Series) (*temporal.Series, error) {
	tag, err := d.takeByte()
	if err != nil {
		return nil, err
	}
	switch tag {
	case deltaOpUnchanged:
		return base, nil
	case deltaOpCleared:
		return nil, nil
	case deltaOpReplace:
		return d.seriesFull()
	case deltaOpPresent:
		if base == nil {
			return nil, fmt.Errorf("%w: series patch with no base series", ErrWire)
		}
		return d.seriesPatch(base)
	}
	return nil, fmt.Errorf("%w: series op %#x", ErrWire, tag)
}

// setProgram applies a decoded resolved program time: an explicit wall
// clock only when it exceeds the instrumented total, the implicit sum
// otherwise (mirroring how the encoder emitted the resolved value).
func setProgram(c *trace.Cube, pt float64) error {
	if pt > c.RegionsTotal() {
		return c.SetProgramTime(pt)
	}
	return nil
}

// cubeFull decodes a complete cube.
func (d *deltaDec) cubeFull() (*trace.Cube, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	k, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	p, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n == 0 || k == 0 || p == 0 || n > maxDeltaCells || k > maxDeltaCells || p > maxDeltaCells ||
		n*k > maxDeltaCells/p {
		return nil, fmt.Errorf("%w: cube dims %dx%dx%d", ErrWire, n, k, p)
	}
	if n+k > uint64(len(d.body)) {
		return nil, fmt.Errorf("%w: name count exceeds remaining input", ErrWire)
	}
	regions := make([]string, n)
	for i := range regions {
		if regions[i], err = d.stringRef(); err != nil {
			return nil, err
		}
	}
	activities := make([]string, k)
	for j := range activities {
		if activities[j], err = d.stringRef(); err != nil {
			return nil, err
		}
	}
	cube, err := trace.NewCube(regions, activities, int(p))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrWire, err)
	}
	ptBits, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	pt, err := finiteNonneg(ptBits, "program time")
	if err != nil {
		return nil, err
	}
	total := int64(n * k * p)
	cells, err := d.count(2)
	if err != nil {
		return nil, err
	}
	prevFlat := int64(-1)
	prevBits := uint64(0)
	for c := 0; c < cells; c++ {
		gap, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		delta, err := d.varint()
		if err != nil {
			return nil, err
		}
		if gap == 0 || gap > uint64(total) {
			return nil, fmt.Errorf("%w: cell gap %d", ErrWire, gap)
		}
		flat := prevFlat + int64(gap)
		if flat >= total {
			return nil, fmt.Errorf("%w: cell index %d beyond %d", ErrWire, flat, total)
		}
		prevBits = uint64(int64(prevBits) + delta)
		t := math.Float64frombits(prevBits)
		if math.IsNaN(t) || math.IsInf(t, 0) {
			return nil, fmt.Errorf("%w: non-finite cell time", ErrWire)
		}
		kp := int64(k) * int64(p)
		if err := cube.Set(int(flat/kp), int(flat%kp)/int(p), int(flat%int64(p)), t); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrWire, err)
		}
		prevFlat = flat
	}
	if err := setProgram(cube, pt); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrWire, err)
	}
	return cube, nil
}

// cubePatch applies changed cells and the program-time delta to a clone
// of base.
func (d *deltaDec) cubePatch(base *trace.Cube) (*trace.Cube, error) {
	cube := base.Clone()
	n, k, p := cube.NumRegions(), cube.NumActivities(), cube.NumProcs()
	total := int64(n) * int64(k) * int64(p)
	ptDelta, err := d.varint()
	if err != nil {
		return nil, err
	}
	ptBits := uint64(int64(math.Float64bits(base.ProgramTime())) + ptDelta)
	pt, err := finiteNonneg(ptBits, "program time")
	if err != nil {
		return nil, err
	}
	cells, err := d.count(2)
	if err != nil {
		return nil, err
	}
	prevFlat := int64(-1)
	for c := 0; c < cells; c++ {
		gap, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		delta, err := d.varint()
		if err != nil {
			return nil, err
		}
		if gap == 0 || gap > uint64(total) {
			return nil, fmt.Errorf("%w: cell gap %d", ErrWire, gap)
		}
		flat := prevFlat + int64(gap)
		if flat >= total {
			return nil, fmt.Errorf("%w: cell index %d beyond %d", ErrWire, flat, total)
		}
		kp := int64(k) * int64(p)
		i, j, q := int(flat/kp), int(flat%kp)/p, int(flat%int64(p))
		old, err := cube.At(i, j, q)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrWire, err)
		}
		bits := uint64(int64(math.Float64bits(old)) + delta)
		t := math.Float64frombits(bits)
		if math.IsNaN(t) || math.IsInf(t, 0) {
			return nil, fmt.Errorf("%w: non-finite cell time", ErrWire)
		}
		if err := cube.Set(i, j, q, t); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrWire, err)
		}
		prevFlat = flat
	}
	// Clear any stale explicit program time before re-resolving: the
	// patched instrumented total may have grown past the old wall clock.
	if err := cube.SetProgramTime(0); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrWire, err)
	}
	if err := setProgram(cube, pt); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrWire, err)
	}
	return cube, nil
}

// windowVec decodes one window vector; procs bounds vector lengths.
func (d *deltaDec) windowVec(prevIdx int64, procs int) (temporal.WindowVector, int64, error) {
	var v temporal.WindowVector
	idxDelta, err := d.varint()
	if err != nil {
		return v, 0, err
	}
	idx := prevIdx + idxDelta
	if idx < 0 || idx > maxDeltaWindows {
		return v, 0, fmt.Errorf("%w: window index %d", ErrWire, idx)
	}
	v.Index = int(idx)
	events, err := d.uvarint()
	if err != nil {
		return v, 0, err
	}
	if events > math.MaxInt32 {
		return v, 0, fmt.Errorf("%w: window event count %d", ErrWire, events)
	}
	v.Events = int(events)
	flags, err := d.takeByte()
	if err != nil {
		return v, 0, err
	}
	if flags&^(deltaFlagDominant|deltaFlagPerActivity|deltaFlagPerRegion) != 0 {
		return v, 0, fmt.Errorf("%w: window flags %#x", ErrWire, flags)
	}
	if flags&deltaFlagDominant != 0 {
		if v.Dominant, err = d.stringRef(); err != nil {
			return v, 0, err
		}
	}
	if v.ProcSeconds, err = d.vec(procs); err != nil {
		return v, 0, err
	}
	for _, dim := range []struct {
		flag byte
		dst  *map[string][]float64
	}{
		{deltaFlagPerActivity, &v.PerActivity},
		{deltaFlagPerRegion, &v.PerRegion},
	} {
		if flags&dim.flag == 0 {
			continue
		}
		n, err := d.count(2)
		if err != nil {
			return v, 0, err
		}
		m := make(map[string][]float64, n)
		for e := 0; e < n; e++ {
			name, err := d.stringRef()
			if err != nil {
				return v, 0, err
			}
			if _, dup := m[name]; dup {
				return v, 0, fmt.Errorf("%w: duplicate window key %q", ErrWire, name)
			}
			if m[name], err = d.vec(procs); err != nil {
				return v, 0, err
			}
		}
		*dim.dst = m
	}
	return v, idx, nil
}

// windowList decodes a delta-chained list of window vectors.
func (d *deltaDec) windowList(procs int) ([]temporal.WindowVector, error) {
	n, err := d.count(3)
	if err != nil {
		return nil, err
	}
	if n > maxDeltaWindows {
		return nil, fmt.Errorf("%w: %d windows", ErrWire, n)
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]temporal.WindowVector, 0, n)
	prevIdx := int64(0)
	for i := 0; i < n; i++ {
		var v temporal.WindowVector
		if v, prevIdx, err = d.windowVec(prevIdx, procs); err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// seriesFull decodes a complete window series.
func (d *deltaDec) seriesFull() (*temporal.Series, error) {
	winBits, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	window, err := finiteNonneg(winBits, "window width")
	if err != nil {
		return nil, err
	}
	if window <= 0 {
		return nil, fmt.Errorf("%w: window width %g", ErrWire, window)
	}
	procs, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if procs == 0 || procs > maxDim {
		return nil, fmt.Errorf("%w: series procs %d", ErrWire, procs)
	}
	ringStart, err := d.varint()
	if err != nil {
		return nil, err
	}
	if ringStart < 0 || ringStart > maxDeltaWindows {
		return nil, fmt.Errorf("%w: ring start %d", ErrWire, ringStart)
	}
	coarseBits, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	coarseWindow, err := finiteNonneg(coarseBits, "coarse window width")
	if err != nil {
		return nil, err
	}
	s := &temporal.Series{
		Window:       window,
		Procs:        int(procs),
		RingStart:    int(ringStart),
		CoarseWindow: coarseWindow,
	}
	if s.Windows, err = d.windowList(s.Procs); err != nil {
		return nil, err
	}
	if s.Coarse, err = d.windowList(s.Procs); err != nil {
		return nil, err
	}
	return s, nil
}

// seriesPatch applies window upserts and removals to a copy of base.
func (d *deltaDec) seriesPatch(base *temporal.Series) (*temporal.Series, error) {
	s := &temporal.Series{
		Window:       base.Window,
		Procs:        base.Procs,
		CoarseWindow: base.CoarseWindow,
		Coarse:       base.Coarse,
	}
	ringDelta, err := d.varint()
	if err != nil {
		return nil, err
	}
	ringStart := int64(base.RingStart) + ringDelta
	if ringStart < 0 || ringStart > maxDeltaWindows {
		return nil, fmt.Errorf("%w: ring start %d", ErrWire, ringStart)
	}
	s.RingStart = int(ringStart)
	coarseTag, err := d.takeByte()
	if err != nil {
		return nil, err
	}
	switch coarseTag {
	case 0:
	case 1:
		coarseBits, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if s.CoarseWindow, err = finiteNonneg(coarseBits, "coarse window width"); err != nil {
			return nil, err
		}
		if s.Coarse, err = d.windowList(s.Procs); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("%w: coarse tag %#x", ErrWire, coarseTag)
	}
	removedCount, err := d.count(1)
	if err != nil {
		return nil, err
	}
	removed := make(map[int]bool, removedCount)
	prevIdx := int64(0)
	for i := 0; i < removedCount; i++ {
		delta, err := d.varint()
		if err != nil {
			return nil, err
		}
		idx := prevIdx + delta
		if idx < 0 || idx > maxDeltaWindows {
			return nil, fmt.Errorf("%w: removed window index %d", ErrWire, idx)
		}
		removed[int(idx)] = true
		prevIdx = idx
	}
	changed, err := d.windowList(base.Procs)
	if err != nil {
		return nil, err
	}
	merged := make(map[int]temporal.WindowVector, len(base.Windows)+len(changed))
	for _, v := range base.Windows {
		if !removed[v.Index] {
			merged[v.Index] = v
		}
	}
	for _, v := range changed {
		merged[v.Index] = v
	}
	if len(merged) > 0 {
		s.Windows = make([]temporal.WindowVector, 0, len(merged))
		for _, v := range merged {
			s.Windows = append(s.Windows, v)
		}
		sort.Slice(s.Windows, func(i, j int) bool { return s.Windows[i].Index < s.Windows[j].Index })
	}
	return s, nil
}
