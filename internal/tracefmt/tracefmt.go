// Package tracefmt defines the on-disk formats for measurement cubes and
// event traces: a compact versioned binary format (magic "LIMB") and a JSON
// format for interoperability. Both round-trip losslessly through the
// in-memory types of internal/trace.
package tracefmt

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"loadimb/internal/trace"
)

// Binary format constants.
const (
	// Magic identifies a binary cube file.
	Magic = "LIMB"
	// Version is the current binary format version.
	Version = 1
	// maxNameLen bounds string fields against corrupt or hostile input.
	maxNameLen = 4096
	// maxDim bounds the cube dimensions when decoding.
	maxDim = 1 << 20
)

// Format errors.
var (
	// ErrBadMagic is returned when the input does not start with Magic.
	ErrBadMagic = errors.New("tracefmt: bad magic (not a LIMB file)")
	// ErrBadVersion is returned for unsupported format versions.
	ErrBadVersion = errors.New("tracefmt: unsupported format version")
	// ErrCorrupt is returned for structurally invalid input.
	ErrCorrupt = errors.New("tracefmt: corrupt input")
)

// byteOrder is the file byte order.
var byteOrder = binary.LittleEndian

// WriteCube encodes the cube in the binary format:
//
//	magic[4] version[u32] N[u32] K[u32] P[u32]
//	programTime[f64]
//	N regions names, K activity names (u32 length + UTF-8 bytes)
//	N*K*P f64 times, region-major then activity then processor
func WriteCube(w io.Writer, cube *trace.Cube) error {
	if cube == nil {
		return errors.New("tracefmt: nil cube")
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(Magic); err != nil {
		return err
	}
	n, k, p := cube.NumRegions(), cube.NumActivities(), cube.NumProcs()
	for _, v := range []uint32{Version, uint32(n), uint32(k), uint32(p)} {
		if err := binary.Write(bw, byteOrder, v); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, byteOrder, cube.ProgramTime()); err != nil {
		return err
	}
	for _, name := range cube.Regions() {
		if err := writeString(bw, name); err != nil {
			return err
		}
	}
	for _, name := range cube.Activities() {
		if err := writeString(bw, name); err != nil {
			return err
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			for q := 0; q < p; q++ {
				t, err := cube.At(i, j, q)
				if err != nil {
					return err
				}
				if err := binary.Write(bw, byteOrder, t); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// ReadCube decodes a binary cube.
func ReadCube(r io.Reader) (*trace.Cube, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMagic, err)
	}
	if string(magic) != Magic {
		return nil, ErrBadMagic
	}
	var version, n, k, p uint32
	for _, dst := range []*uint32{&version, &n, &k, &p} {
		if err := binary.Read(br, byteOrder, dst); err != nil {
			return nil, fmt.Errorf("%w: header: %v", ErrCorrupt, err)
		}
	}
	if version != Version {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, version)
	}
	if n == 0 || k == 0 || p == 0 || n > maxDim || k > maxDim || p > maxDim {
		return nil, fmt.Errorf("%w: dimensions %d x %d x %d", ErrCorrupt, n, k, p)
	}
	var programTime float64
	if err := binary.Read(br, byteOrder, &programTime); err != nil {
		return nil, fmt.Errorf("%w: program time: %v", ErrCorrupt, err)
	}
	if math.IsNaN(programTime) || math.IsInf(programTime, 0) || programTime < 0 {
		return nil, fmt.Errorf("%w: program time %g", ErrCorrupt, programTime)
	}
	regions := make([]string, n)
	for i := range regions {
		s, err := readString(br)
		if err != nil {
			return nil, err
		}
		regions[i] = s
	}
	activities := make([]string, k)
	for j := range activities {
		s, err := readString(br)
		if err != nil {
			return nil, err
		}
		activities[j] = s
	}
	cube, err := trace.NewCube(regions, activities, int(p))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	for i := 0; i < int(n); i++ {
		for j := 0; j < int(k); j++ {
			for q := 0; q < int(p); q++ {
				var t float64
				if err := binary.Read(br, byteOrder, &t); err != nil {
					return nil, fmt.Errorf("%w: times: %v", ErrCorrupt, err)
				}
				if math.IsNaN(t) || math.IsInf(t, 0) {
					return nil, fmt.Errorf("%w: time %g at (%d,%d,%d)", ErrCorrupt, t, i, j, q)
				}
				if err := cube.Set(i, j, q, t); err != nil {
					return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
				}
			}
		}
	}
	// Restore the explicit program time only when it exceeds the derived
	// total (SetProgramTime would reject smaller values caused by
	// float rounding of an implicit total).
	if programTime > cube.RegionsTotal() {
		if err := cube.SetProgramTime(programTime); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
	}
	return cube, nil
}

func writeString(w io.Writer, s string) error {
	if len(s) > maxNameLen {
		return fmt.Errorf("tracefmt: name longer than %d bytes", maxNameLen)
	}
	if err := binary.Write(w, byteOrder, uint32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint32
	if err := binary.Read(r, byteOrder, &n); err != nil {
		return "", fmt.Errorf("%w: string length: %v", ErrCorrupt, err)
	}
	if n > maxNameLen {
		return "", fmt.Errorf("%w: string length %d", ErrCorrupt, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", fmt.Errorf("%w: string body: %v", ErrCorrupt, err)
	}
	return string(buf), nil
}

// jsonCube is the JSON wire representation of a cube.
type jsonCube struct {
	Regions     []string      `json:"regions"`
	Activities  []string      `json:"activities"`
	Procs       int           `json:"procs"`
	ProgramTime float64       `json:"program_time"`
	Times       [][][]float64 `json:"times"` // [region][activity][proc]
}

// WriteCubeJSON encodes the cube as indented JSON.
func WriteCubeJSON(w io.Writer, cube *trace.Cube) error {
	if cube == nil {
		return errors.New("tracefmt: nil cube")
	}
	jc := jsonCube{
		Regions:     cube.Regions(),
		Activities:  cube.Activities(),
		Procs:       cube.NumProcs(),
		ProgramTime: cube.ProgramTime(),
	}
	jc.Times = make([][][]float64, cube.NumRegions())
	for i := range jc.Times {
		jc.Times[i] = make([][]float64, cube.NumActivities())
		for j := range jc.Times[i] {
			ts, err := cube.ProcTimes(i, j)
			if err != nil {
				return err
			}
			jc.Times[i][j] = ts
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jc)
}

// ReadCubeJSON decodes a JSON cube.
func ReadCubeJSON(r io.Reader) (*trace.Cube, error) {
	var jc jsonCube
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&jc); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	cube, err := trace.NewCube(jc.Regions, jc.Activities, jc.Procs)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if len(jc.Times) != len(jc.Regions) {
		return nil, fmt.Errorf("%w: %d time rows for %d regions", ErrCorrupt, len(jc.Times), len(jc.Regions))
	}
	for i := range jc.Times {
		if len(jc.Times[i]) != len(jc.Activities) {
			return nil, fmt.Errorf("%w: region %d has %d activity rows", ErrCorrupt, i, len(jc.Times[i]))
		}
		for j := range jc.Times[i] {
			if len(jc.Times[i][j]) != jc.Procs {
				return nil, fmt.Errorf("%w: cell (%d,%d) has %d times", ErrCorrupt, i, j, len(jc.Times[i][j]))
			}
			for p, t := range jc.Times[i][j] {
				if err := cube.Set(i, j, p, t); err != nil {
					return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
				}
			}
		}
	}
	if jc.ProgramTime > cube.RegionsTotal() {
		if err := cube.SetProgramTime(jc.ProgramTime); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
	}
	return cube, nil
}

// jsonEvent is the JSON wire representation of one trace event.
type jsonEvent struct {
	Rank     int     `json:"rank"`
	Region   string  `json:"region"`
	Activity string  `json:"activity"`
	Start    float64 `json:"start"`
	End      float64 `json:"end"`
}

// WriteEvents encodes an event log as JSON Lines (one event per line), the
// streaming-friendly format tools exchange.
func WriteEvents(w io.Writer, log *trace.Log) error {
	if log == nil {
		return errors.New("tracefmt: nil log")
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	var encErr error
	log.Each(func(e trace.Event) {
		if encErr != nil {
			return
		}
		je := jsonEvent{Rank: e.Rank, Region: e.Region, Activity: e.Activity, Start: e.Start, End: e.End}
		encErr = enc.Encode(je)
	})
	if encErr != nil {
		return encErr
	}
	return bw.Flush()
}

// ReadEvents decodes a JSON Lines event log.
func ReadEvents(r io.Reader) (*trace.Log, error) {
	var log trace.Log
	dec := json.NewDecoder(r)
	for {
		var je jsonEvent
		if err := dec.Decode(&je); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		e := trace.Event{Rank: je.Rank, Region: je.Region, Activity: je.Activity, Start: je.Start, End: je.End}
		if err := log.Append(e); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
	}
	return &log, nil
}
