package sim

import (
	"fmt"
	"testing"
)

func TestMessagePayloadDelivered(t *testing.T) {
	e, err := NewEngine(2)
	if err != nil {
		t.Fatal(err)
	}
	type halo struct{ rows []float64 }
	run := e.Run(func(rank int) error {
		if rank == 0 {
			return e.Post(0, 1, 0, Message{Arrival: 1, Bytes: 24, Payload: halo{rows: []float64{1, 2, 3}}})
		}
		msg, err := e.Fetch(0, 1, 0)
		if err != nil {
			return err
		}
		h, ok := msg.Payload.(halo)
		if !ok {
			return fmt.Errorf("payload type %T", msg.Payload)
		}
		if len(h.rows) != 3 || h.rows[2] != 3 {
			return fmt.Errorf("payload = %+v", h)
		}
		return nil
	})
	if run != nil {
		t.Fatal(run)
	}
}

func TestNilPayload(t *testing.T) {
	e, err := NewEngine(2)
	if err != nil {
		t.Fatal(err)
	}
	run := e.Run(func(rank int) error {
		if rank == 0 {
			return e.Post(0, 1, 0, Message{Arrival: 1})
		}
		msg, err := e.Fetch(0, 1, 0)
		if err != nil {
			return err
		}
		if msg.Payload != nil {
			return fmt.Errorf("payload = %v", msg.Payload)
		}
		return nil
	})
	if run != nil {
		t.Fatal(run)
	}
}

// BenchmarkPointToPoint measures the engine's message throughput: one
// sender, one receiver, b.N messages.
func BenchmarkPointToPoint(b *testing.B) {
	e, err := NewEngine(2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	run := e.Run(func(rank int) error {
		if rank == 0 {
			for i := 0; i < b.N; i++ {
				if err := e.Post(0, 1, 0, Message{Arrival: float64(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < b.N; i++ {
			if _, err := e.Fetch(0, 1, 0); err != nil {
				return err
			}
		}
		return nil
	})
	if run != nil {
		b.Fatal(run)
	}
}

// BenchmarkCollective measures the rendezvous cost across 8 ranks.
func BenchmarkCollective(b *testing.B) {
	e, err := NewEngine(8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	run := e.Run(func(rank int) error {
		for i := 0; i < b.N; i++ {
			if _, err := e.Collective(rank, "bench", float64(i), 0); err != nil {
				return err
			}
		}
		return nil
	})
	if run != nil {
		b.Fatal(run)
	}
}
