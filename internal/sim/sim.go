// Package sim is a deterministic virtual-time engine for simulating
// message-passing programs: the substrate that stands in for the paper's
// IBM SP2. P ranks run concurrently as goroutines, each owning a virtual
// clock; the engine provides the two coordination primitives every
// message-passing model needs — point-to-point mailboxes and collective
// rendezvous — exchanging *virtual timestamps* rather than data.
//
// Determinism: all virtual times are pure functions of the timestamps the
// ranks exchange, never of real time or of the goroutine schedule. Message
// matching is FIFO per (src, dst, tag) channel and each rank is a single
// goroutine, so repeated runs of the same program produce identical
// virtual-time traces.
//
// The cost model (how long a send, a reduction or a barrier takes) lives in
// the layer above (internal/mpi); sim only coordinates.
package sim

import (
	"errors"
	"fmt"
	"sync"
)

// Common engine errors.
var (
	// ErrBadRanks is returned when an engine is created with no ranks.
	ErrBadRanks = errors.New("sim: need at least one rank")
	// ErrCanceled is returned by blocking operations when another rank
	// failed and the run is being torn down.
	ErrCanceled = errors.New("sim: run canceled by another rank's failure")
	// ErrCollectiveMismatch is returned when ranks disagree on which
	// collective operation they are executing.
	ErrCollectiveMismatch = errors.New("sim: collective operation mismatch")
	// ErrLeftoverMessages is returned by Run when messages were posted
	// but never received.
	ErrLeftoverMessages = errors.New("sim: unreceived messages at end of run")
	// ErrRankRange is returned for out-of-range rank ids.
	ErrRankRange = errors.New("sim: rank out of range")
)

// Message is a point-to-point virtual message: its timing and size drive
// the simulation, and an optional payload carries application data (halo
// rows, boundary values) for programs that compute real results.
type Message struct {
	// Arrival is the virtual time at which the message is available at
	// the destination.
	Arrival float64
	// Bytes is the message size, carried for accounting.
	Bytes int
	// Payload is opaque application data.
	Payload any
}

// mailboxKey identifies one FIFO message channel.
type mailboxKey struct {
	src, dst, tag int
}

// mailbox is an unbounded FIFO queue of messages with blocking Fetch.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Message
	closed bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) post(msg Message) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.queue = append(m.queue, msg)
	m.cond.Signal()
}

// fetch blocks until a message is available or the mailbox is closed by
// cancellation.
func (m *mailbox) fetch() (Message, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.queue) == 0 && !m.closed {
		m.cond.Wait()
	}
	if len(m.queue) == 0 {
		return Message{}, ErrCanceled
	}
	msg := m.queue[0]
	m.queue = m.queue[1:]
	return msg, nil
}

func (m *mailbox) close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.cond.Broadcast()
}

func (m *mailbox) pending() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queue)
}

// round is one collective rendezvous: it completes when all ranks have
// entered, at which point every participant observes the same maximum
// arrival time.
type round struct {
	op      string
	count   int
	max     float64
	sum     float64
	done    chan struct{}
	err     error
	arrival []float64 // per-rank arrival times, for reductions that need them
	values  []float64 // per-rank contributed values, for allgather-style ops
}

// Engine coordinates one simulated run.
type Engine struct {
	procs int

	mu        sync.Mutex
	mailboxes map[mailboxKey]*mailbox
	current   *round

	cancel    chan struct{}
	cancelMu  sync.Mutex
	cancelled bool
}

// NewEngine creates an engine for the given number of ranks.
func NewEngine(procs int) (*Engine, error) {
	if procs < 1 {
		return nil, ErrBadRanks
	}
	return &Engine{
		procs:     procs,
		mailboxes: make(map[mailboxKey]*mailbox),
		cancel:    make(chan struct{}),
	}, nil
}

// Procs returns the number of ranks.
func (e *Engine) Procs() int { return e.procs }

func (e *Engine) checkRank(r int) error {
	if r < 0 || r >= e.procs {
		return fmt.Errorf("%w: %d of %d", ErrRankRange, r, e.procs)
	}
	return nil
}

func (e *Engine) box(k mailboxKey) *mailbox {
	e.mu.Lock()
	defer e.mu.Unlock()
	b, ok := e.mailboxes[k]
	if !ok {
		b = newMailbox()
		e.mailboxes[k] = b
	}
	return b
}

// Post delivers a message from src to dst on the tag channel. It never
// blocks (eager buffered communication).
func (e *Engine) Post(src, dst, tag int, msg Message) error {
	if err := e.checkRank(src); err != nil {
		return err
	}
	if err := e.checkRank(dst); err != nil {
		return err
	}
	e.box(mailboxKey{src, dst, tag}).post(msg)
	return nil
}

// Fetch blocks until a message from src to dst on the tag channel is
// available and returns it. It fails with ErrCanceled when the run is torn
// down while waiting.
func (e *Engine) Fetch(src, dst, tag int) (Message, error) {
	if err := e.checkRank(src); err != nil {
		return Message{}, err
	}
	if err := e.checkRank(dst); err != nil {
		return Message{}, err
	}
	b := e.box(mailboxKey{src, dst, tag})
	// Wake the fetch if cancellation happens while blocked.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-e.cancel:
			b.close()
		case <-done:
		}
	}()
	return b.fetch()
}

// CollectiveResult is what every participant of a collective rendezvous
// observes once the last rank has entered.
type CollectiveResult struct {
	// Max is the maximum arrival time over all ranks: the virtual time
	// at which the collective can logically complete.
	Max float64
	// Sum is the sum of the values contributed by the ranks, supporting
	// global reductions of application data (e.g. residual norms).
	Sum float64
	// Arrivals holds each rank's arrival time, indexed by rank.
	Arrivals []float64
	// Values holds each rank's contributed value, indexed by rank —
	// the payload of allgather-style collectives (e.g. per-rank load
	// vectors for rebalancing decisions).
	Values []float64
}

// Collective enters rank into the collective rendezvous named op at the
// given virtual arrival time, contributing value to the round's global
// sum, and blocks until all ranks have entered. All ranks must call the
// same op in the same order; a mismatch fails the round for every
// participant.
func (e *Engine) Collective(rank int, op string, arrival, value float64) (CollectiveResult, error) {
	if err := e.checkRank(rank); err != nil {
		return CollectiveResult{}, err
	}
	e.mu.Lock()
	if e.current == nil {
		e.current = &round{
			op:      op,
			done:    make(chan struct{}),
			arrival: make([]float64, e.procs),
			values:  make([]float64, e.procs),
		}
	}
	r := e.current
	if r.op != op && r.err == nil {
		r.err = fmt.Errorf("%w: %q vs %q", ErrCollectiveMismatch, r.op, op)
	}
	r.count++
	r.arrival[rank] = arrival
	r.values[rank] = value
	r.sum += value
	if arrival > r.max {
		r.max = arrival
	}
	if r.count == e.procs {
		e.current = nil
		close(r.done)
	}
	e.mu.Unlock()

	select {
	case <-r.done:
	case <-e.cancel:
		return CollectiveResult{}, ErrCanceled
	}
	if r.err != nil {
		return CollectiveResult{}, r.err
	}
	return CollectiveResult{
		Max:      r.max,
		Sum:      r.sum,
		Arrivals: append([]float64(nil), r.arrival...),
		Values:   append([]float64(nil), r.values...),
	}, nil
}

// abort tears down the run, waking every blocked rank with ErrCanceled.
func (e *Engine) abort() {
	e.cancelMu.Lock()
	defer e.cancelMu.Unlock()
	if !e.cancelled {
		e.cancelled = true
		close(e.cancel)
	}
}

// Run executes program once per rank, concurrently, and waits for all
// ranks to finish. The first error aborts the run (unblocking every rank)
// and is returned. A successful run additionally verifies that no posted
// message went unreceived.
func (e *Engine) Run(program func(rank int) error) error {
	errs := make([]error, e.procs)
	var wg sync.WaitGroup
	for r := 0; r < e.procs; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = fmt.Errorf("sim: rank %d panicked: %v", rank, p)
					e.abort()
				}
			}()
			if err := program(rank); err != nil {
				errs[rank] = fmt.Errorf("sim: rank %d: %w", rank, err)
				e.abort()
			}
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	leftover := 0
	for _, b := range e.mailboxes {
		leftover += b.pending()
	}
	if leftover > 0 {
		return fmt.Errorf("%w: %d", ErrLeftoverMessages, leftover)
	}
	return nil
}
