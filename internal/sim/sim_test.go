package sim

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestNewEngine(t *testing.T) {
	if _, err := NewEngine(0); !errors.Is(err, ErrBadRanks) {
		t.Errorf("zero ranks err = %v", err)
	}
	e, err := NewEngine(4)
	if err != nil || e.Procs() != 4 {
		t.Fatalf("NewEngine = %v, %v", e, err)
	}
}

func TestPostFetch(t *testing.T) {
	e, err := NewEngine(2)
	if err != nil {
		t.Fatal(err)
	}
	run := e.Run(func(rank int) error {
		switch rank {
		case 0:
			return e.Post(0, 1, 7, Message{Arrival: 1.5, Bytes: 64})
		case 1:
			msg, err := e.Fetch(0, 1, 7)
			if err != nil {
				return err
			}
			if msg.Arrival != 1.5 || msg.Bytes != 64 {
				return fmt.Errorf("msg = %+v", msg)
			}
			return nil
		}
		return nil
	})
	if run != nil {
		t.Fatal(run)
	}
}

func TestFIFOOrder(t *testing.T) {
	e, err := NewEngine(2)
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	run := e.Run(func(rank int) error {
		if rank == 0 {
			for i := 0; i < n; i++ {
				if err := e.Post(0, 1, 0, Message{Arrival: float64(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < n; i++ {
			msg, err := e.Fetch(0, 1, 0)
			if err != nil {
				return err
			}
			if msg.Arrival != float64(i) {
				return fmt.Errorf("message %d arrived as %g", i, msg.Arrival)
			}
		}
		return nil
	})
	if run != nil {
		t.Fatal(run)
	}
}

func TestTagsAreIndependent(t *testing.T) {
	e, err := NewEngine(2)
	if err != nil {
		t.Fatal(err)
	}
	run := e.Run(func(rank int) error {
		if rank == 0 {
			if err := e.Post(0, 1, 1, Message{Arrival: 10}); err != nil {
				return err
			}
			return e.Post(0, 1, 2, Message{Arrival: 20})
		}
		// Receive tag 2 first even though tag 1 was posted first.
		m2, err := e.Fetch(0, 1, 2)
		if err != nil {
			return err
		}
		m1, err := e.Fetch(0, 1, 1)
		if err != nil {
			return err
		}
		if m2.Arrival != 20 || m1.Arrival != 10 {
			return fmt.Errorf("tag routing wrong: %v %v", m1, m2)
		}
		return nil
	})
	if run != nil {
		t.Fatal(run)
	}
}

func TestRankValidation(t *testing.T) {
	e, err := NewEngine(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Post(-1, 0, 0, Message{}); !errors.Is(err, ErrRankRange) {
		t.Errorf("bad src err = %v", err)
	}
	if err := e.Post(0, 5, 0, Message{}); !errors.Is(err, ErrRankRange) {
		t.Errorf("bad dst err = %v", err)
	}
	if _, err := e.Fetch(9, 0, 0); !errors.Is(err, ErrRankRange) {
		t.Errorf("bad fetch src err = %v", err)
	}
	if _, err := e.Collective(7, "x", 0, 0); !errors.Is(err, ErrRankRange) {
		t.Errorf("bad collective rank err = %v", err)
	}
}

func TestCollective(t *testing.T) {
	e, err := NewEngine(4)
	if err != nil {
		t.Fatal(err)
	}
	run := e.Run(func(rank int) error {
		arrival := float64(rank) * 2
		res, err := e.Collective(rank, "barrier", arrival, float64(rank))
		if err != nil {
			return err
		}
		if res.Max != 6 {
			return fmt.Errorf("max = %g, want 6", res.Max)
		}
		if res.Sum != 6 {
			return fmt.Errorf("sum = %g, want 0+1+2+3", res.Sum)
		}
		if res.Arrivals[3] != 6 || res.Arrivals[0] != 0 {
			return fmt.Errorf("arrivals = %v", res.Arrivals)
		}
		return nil
	})
	if run != nil {
		t.Fatal(run)
	}
}

func TestConsecutiveCollectives(t *testing.T) {
	e, err := NewEngine(3)
	if err != nil {
		t.Fatal(err)
	}
	run := e.Run(func(rank int) error {
		clock := float64(rank)
		for round := 0; round < 50; round++ {
			res, err := e.Collective(rank, "step", clock, 0)
			if err != nil {
				return err
			}
			// Everyone leaves at the same max; clocks re-diverge.
			clock = res.Max + float64(rank)
		}
		return nil
	})
	if run != nil {
		t.Fatal(run)
	}
}

func TestCollectiveMismatch(t *testing.T) {
	e, err := NewEngine(2)
	if err != nil {
		t.Fatal(err)
	}
	run := e.Run(func(rank int) error {
		op := "reduce"
		if rank == 1 {
			op = "barrier"
		}
		_, err := e.Collective(rank, op, 0, 0)
		return err
	})
	if !errors.Is(run, ErrCollectiveMismatch) {
		t.Errorf("mismatch err = %v", run)
	}
}

func TestRunPropagatesError(t *testing.T) {
	e, err := NewEngine(3)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	run := e.Run(func(rank int) error {
		if rank == 1 {
			return boom
		}
		// Other ranks block on a message that never comes; the abort
		// must unblock them.
		_, err := e.Fetch((rank+2)%3, rank, 0)
		return err
	})
	if !errors.Is(run, ErrCanceled) && !errors.Is(run, boom) {
		t.Errorf("run err = %v", run)
	}
}

func TestRunRecoversPanic(t *testing.T) {
	e, err := NewEngine(2)
	if err != nil {
		t.Fatal(err)
	}
	run := e.Run(func(rank int) error {
		if rank == 0 {
			panic("kaboom")
		}
		_, err := e.Collective(rank, "x", 0, 0)
		return err
	})
	if run == nil {
		t.Fatal("panic should surface as an error")
	}
}

func TestRunLeftoverMessages(t *testing.T) {
	e, err := NewEngine(2)
	if err != nil {
		t.Fatal(err)
	}
	run := e.Run(func(rank int) error {
		if rank == 0 {
			return e.Post(0, 1, 0, Message{Arrival: 1})
		}
		return nil // never fetches
	})
	if !errors.Is(run, ErrLeftoverMessages) {
		t.Errorf("leftover err = %v", run)
	}
}

// TestDeterminism runs the same program many times and checks the final
// virtual clocks are identical despite goroutine scheduling differences.
func TestDeterminism(t *testing.T) {
	program := func() []float64 {
		const procs = 8
		e, err := NewEngine(procs)
		if err != nil {
			t.Fatal(err)
		}
		clocks := make([]float64, procs)
		var mu sync.Mutex
		run := e.Run(func(rank int) error {
			clock := float64(rank) * 0.1
			for step := 0; step < 20; step++ {
				// Ring exchange: send to the right, receive from
				// the left.
				right := (rank + 1) % procs
				left := (rank + procs - 1) % procs
				if err := e.Post(rank, right, step, Message{Arrival: clock + 0.01}); err != nil {
					return err
				}
				msg, err := e.Fetch(left, rank, step)
				if err != nil {
					return err
				}
				if msg.Arrival > clock {
					clock = msg.Arrival
				}
				clock += 0.005 * float64(rank%3)
				res, err := e.Collective(rank, "step", clock, 0)
				if err != nil {
					return err
				}
				clock = res.Max
			}
			mu.Lock()
			clocks[rank] = clock
			mu.Unlock()
			return nil
		})
		if run != nil {
			t.Fatal(run)
		}
		return clocks
	}
	first := program()
	for trial := 0; trial < 10; trial++ {
		if got := program(); fmt.Sprint(got) != fmt.Sprint(first) {
			t.Fatalf("trial %d: clocks %v != %v", trial, got, first)
		}
	}
}

func TestCollectiveValues(t *testing.T) {
	e, err := NewEngine(4)
	if err != nil {
		t.Fatal(err)
	}
	run := e.Run(func(rank int) error {
		res, err := e.Collective(rank, "allgather", 0, float64(rank)*10)
		if err != nil {
			return err
		}
		if len(res.Values) != 4 {
			return fmt.Errorf("values len = %d, want 4", len(res.Values))
		}
		for r, v := range res.Values {
			if v != float64(r)*10 {
				return fmt.Errorf("values[%d] = %g, want %g", r, v, float64(r)*10)
			}
		}
		// Each participant must get its own copy: mutating one rank's
		// slice must not be visible to the others.
		res.Values[rank] = -1
		return nil
	})
	if run != nil {
		t.Fatal(run)
	}
}
