package cluster

import (
	"math"
	"testing"
)

// straggler16 is a 16-point set where point 13 sits far from the tight
// cohort at the origin — the lone-diverged-rank shape the diagnosis
// layer feeds these helpers.
func straggler16() [][]float64 {
	points := make([][]float64, 16)
	for i := range points {
		points[i] = []float64{0.5, 0.1}
	}
	points[13] = []float64{2.5, 0.1}
	return points
}

func TestDistancesSingletonClusterIsZeroNotNaN(t *testing.T) {
	points := straggler16()
	res, k, err := BestK(points, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if k != 2 {
		t.Fatalf("BestK chose k=%d, want 2 (cohort + singleton)", k)
	}
	dists, err := Distances(points, res.Centroids, res.Assign)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range dists {
		if math.IsNaN(d) || math.IsInf(d, 0) || d < 0 {
			t.Fatalf("distance[%d] = %v", i, d)
		}
	}
	if dists[13] != 0 {
		t.Errorf("singleton member's own-centroid distance = %g, want 0", dists[13])
	}
}

func TestSpreadByClusterSingletonAndEmpty(t *testing.T) {
	// Cluster 0 has two members at distances 3 and 4 (RMS √12.5), cluster
	// 1 is a singleton, cluster 2 is empty: both must be 0, never NaN.
	spread, err := SpreadByCluster([]float64{3, 4, 0}, []int{0, 0, 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if want := math.Sqrt(12.5); math.Abs(spread[0]-want) > 1e-12 {
		t.Errorf("spread[0] = %g, want %g", spread[0], want)
	}
	for c := 1; c < 3; c++ {
		if spread[c] != 0 || math.IsNaN(spread[c]) {
			t.Errorf("spread[%d] = %v, want exactly 0", c, spread[c])
		}
	}
}

func TestSpreadByClusterValidates(t *testing.T) {
	if _, err := SpreadByCluster([]float64{1}, []int{0, 1}, 2); err == nil {
		t.Error("length mismatch not rejected")
	}
	if _, err := SpreadByCluster([]float64{1}, []int{5}, 2); err == nil {
		t.Error("out-of-range assignment not rejected")
	}
}

func TestNearestOther(t *testing.T) {
	cents := [][]float64{{0, 0}, {1, 0}, {10, 0}}
	if got := NearestOther([]float64{0.9, 0}, cents, 1); got != 0 {
		t.Errorf("NearestOther = %d, want 0", got)
	}
	if got := NearestOther([]float64{9, 0}, cents, 2); got != 1 {
		t.Errorf("NearestOther = %d, want 1", got)
	}
	if got := NearestOther([]float64{0, 0}, [][]float64{{0, 0}}, 0); got != -1 {
		t.Errorf("NearestOther with a single centroid = %d, want -1", got)
	}
}

func TestSilhouetteSingletonClusterFinite(t *testing.T) {
	// Regression: a partition with a singleton cluster must score finite
	// (singleton members contribute 0 by convention), so BestK can pick a
	// cohort+outlier split instead of dropping it to a NaN comparison.
	points := straggler16()
	assign := make([]int, 16)
	assign[13] = 1
	s, err := Silhouette(points, assign)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(s) || math.IsInf(s, 0) {
		t.Fatalf("silhouette = %v", s)
	}
	if s <= 0 {
		t.Errorf("silhouette = %g, want > 0 for a tight cohort + far outlier", s)
	}
	// Identical points in one cluster plus a singleton: all a/b terms
	// degenerate, still no NaN.
	flat := make([][]float64, 3)
	for i := range flat {
		flat[i] = []float64{1, 1}
	}
	s, err = Silhouette(flat, []int{0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(s) {
		t.Fatal("silhouette NaN on identical points with a singleton cluster")
	}
}

func TestDistancesValidates(t *testing.T) {
	if _, err := Distances(nil, nil, nil); err == nil {
		t.Error("empty input not rejected")
	}
	if _, err := Distances([][]float64{{1}}, [][]float64{{1}}, []int{0, 0}); err == nil {
		t.Error("length mismatch not rejected")
	}
	if _, err := Distances([][]float64{{1}}, [][]float64{{1}}, []int{3}); err == nil {
		t.Error("out-of-range assignment not rejected")
	}
	if _, err := Distances([][]float64{{1, 2}}, [][]float64{{1}}, []int{0}); err == nil {
		t.Error("ragged centroid not rejected")
	}
}
