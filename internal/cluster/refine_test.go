package cluster

import (
	"testing"

	"loadimb/internal/paper"
)

// loopVectors returns the paper's Table 1 activity-time vectors, the
// feature space of the Section 4 clustering.
func loopVectors() [][]float64 {
	out := make([][]float64, paper.NumLoops)
	for i := range out {
		v := make([]float64, paper.NumActivities)
		for j := range v {
			if t, ok := paper.CellTime(i, j); ok {
				v[j] = t
			}
		}
		out[i] = v
	}
	return out
}

// TestPaperClusteringFirstK: with first-k seeding, k-means reproduces the
// published partition {loops 1, 2} vs {loops 3..7}.
func TestPaperClusteringFirstK(t *testing.T) {
	res, err := KMeans(loopVectors(), 2, Options{Init: InitFirstK})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0, 1}, {2, 3, 4, 5, 6}}
	if !SameParts(res.Groups(), want) {
		t.Errorf("groups = %v, want %v", res.Groups(), want)
	}
}

// TestRefinementBeatsPaperPartition documents the initialization ablation:
// Hartigan refinement finds a partition with strictly lower SSE than the
// paper's — the published clustering is a local optimum of Lloyd's
// algorithm under in-order seeding.
func TestRefinementBeatsPaperPartition(t *testing.T) {
	points := loopVectors()
	published, err := KMeans(points, 2, Options{Init: InitFirstK})
	if err != nil {
		t.Fatal(err)
	}
	refined, err := KMeans(points, 2, Options{Init: InitFarthest, Refine: true})
	if err != nil {
		t.Fatal(err)
	}
	if refined.Inertia >= published.Inertia {
		t.Errorf("refined inertia %g should beat published partition's %g", refined.Inertia, published.Inertia)
	}
	if SameParts(refined.Groups(), published.Groups()) {
		t.Error("refined partition should differ from the published one")
	}
}

// TestRefineNeverWorse: on random-ish data, refinement never increases
// inertia relative to plain Lloyd with the same initialization.
func TestRefineNeverWorse(t *testing.T) {
	points := loopVectors()
	for _, init := range []Init{InitFirstK, InitFarthest} {
		for k := 2; k <= 4; k++ {
			plain, err := KMeans(points, k, Options{Init: init})
			if err != nil {
				t.Fatal(err)
			}
			refined, err := KMeans(points, k, Options{Init: init, Refine: true})
			if err != nil {
				t.Fatal(err)
			}
			if refined.Inertia > plain.Inertia+1e-9 {
				t.Errorf("init %d k=%d: refined %g worse than plain %g", init, k, refined.Inertia, plain.Inertia)
			}
		}
	}
}

// TestRefineKeepsClustersNonempty verifies refinement never empties a
// cluster.
func TestRefineKeepsClustersNonempty(t *testing.T) {
	points := loopVectors()
	res, err := KMeans(points, 4, Options{Refine: true})
	if err != nil {
		t.Fatal(err)
	}
	for c, g := range res.Groups() {
		if len(g) == 0 {
			t.Errorf("cluster %d empty", c)
		}
	}
}
