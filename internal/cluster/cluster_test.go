package cluster

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// twoBlobs returns two well-separated groups of points.
func twoBlobs() ([][]float64, []int) {
	points := [][]float64{
		{0, 0}, {0.1, 0.2}, {0.2, 0.1}, // blob A
		{10, 10}, {10.1, 9.9}, {9.8, 10.2}, {10.2, 10.1}, // blob B
	}
	want := []int{0, 0, 0, 1, 1, 1, 1}
	return points, want
}

func sameClustering(assign, want []int) bool {
	// Compare up to relabeling via pairwise co-membership.
	for i := range assign {
		for j := i + 1; j < len(assign); j++ {
			if (assign[i] == assign[j]) != (want[i] == want[j]) {
				return false
			}
		}
	}
	return true
}

func TestKMeansTwoBlobs(t *testing.T) {
	points, want := twoBlobs()
	for _, init := range []Init{InitFarthest, InitFirstK} {
		res, err := KMeans(points, 2, Options{Init: init})
		if err != nil {
			t.Fatalf("init %d: %v", init, err)
		}
		if !sameClustering(res.Assign, want) {
			t.Errorf("init %d: assign = %v", init, res.Assign)
		}
		if res.Inertia < 0 {
			t.Errorf("init %d: negative inertia %g", init, res.Inertia)
		}
		if res.K() != 2 {
			t.Errorf("init %d: K = %d", init, res.K())
		}
	}
}

func TestKMeansValidation(t *testing.T) {
	if _, err := KMeans(nil, 2, Options{}); !errors.Is(err, ErrNoPoints) {
		t.Errorf("empty err = %v", err)
	}
	pts := [][]float64{{1}, {2}}
	if _, err := KMeans(pts, 0, Options{}); !errors.Is(err, ErrBadK) {
		t.Errorf("k=0 err = %v", err)
	}
	if _, err := KMeans(pts, 3, Options{}); !errors.Is(err, ErrBadK) {
		t.Errorf("k>n err = %v", err)
	}
	if _, err := KMeans([][]float64{{1}, {1, 2}}, 1, Options{}); !errors.Is(err, ErrRagged) {
		t.Errorf("ragged err = %v", err)
	}
}

func TestKMeansK1(t *testing.T) {
	points, _ := twoBlobs()
	res, err := KMeans(points, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Assign {
		if c != 0 {
			t.Fatalf("k=1 assign = %v", res.Assign)
		}
	}
}

func TestKMeansKEqualsN(t *testing.T) {
	points := [][]float64{{0}, {5}, {10}}
	res, err := KMeans(points, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, c := range res.Assign {
		seen[c] = true
	}
	if len(seen) != 3 {
		t.Errorf("k=n should give singleton clusters: %v", res.Assign)
	}
	if res.Inertia > 1e-12 {
		t.Errorf("k=n inertia = %g, want 0", res.Inertia)
	}
}

func TestKMeansIdenticalPoints(t *testing.T) {
	points := [][]float64{{1, 1}, {1, 1}, {1, 1}}
	res, err := KMeans(points, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// No crash; all clusters nonempty after the empty-cluster fix.
	groups := res.Groups()
	for c, g := range groups {
		if len(g) == 0 {
			t.Errorf("cluster %d empty: %v", c, groups)
		}
	}
}

func TestKMeansGroups(t *testing.T) {
	points, _ := twoBlobs()
	res, err := KMeans(points, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, g := range res.Groups() {
		total += len(g)
	}
	if total != len(points) {
		t.Errorf("groups cover %d of %d points", total, len(points))
	}
}

func TestKMeansDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	points := make([][]float64, 40)
	for i := range points {
		points[i] = []float64{rng.Float64() * 10, rng.Float64() * 10}
	}
	a, err := KMeans(points, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(points, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("k-means is not deterministic")
		}
	}
}

func TestKMeansInertiaImprovesWithK(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	points := make([][]float64, 30)
	for i := range points {
		points[i] = []float64{rng.Float64() * 10}
	}
	prev := math.Inf(1)
	for k := 1; k <= 5; k++ {
		res, err := KMeans(points, k, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Inertia > prev+1e-9 {
			t.Errorf("k=%d inertia %g worse than k-1's %g", k, res.Inertia, prev)
		}
		prev = res.Inertia
	}
}

func TestSilhouette(t *testing.T) {
	points, want := twoBlobs()
	good, err := Silhouette(points, want)
	if err != nil {
		t.Fatal(err)
	}
	if good < 0.8 {
		t.Errorf("good clustering silhouette = %g, want > 0.8", good)
	}
	// A deliberately bad split scores lower.
	bad := []int{0, 1, 0, 1, 0, 1, 0}
	worse, err := Silhouette(points, bad)
	if err != nil {
		t.Fatal(err)
	}
	if worse >= good {
		t.Errorf("bad clustering silhouette %g >= good %g", worse, good)
	}
	if _, err := Silhouette(nil, nil); !errors.Is(err, ErrNoPoints) {
		t.Errorf("empty err = %v", err)
	}
	if _, err := Silhouette(points, []int{0}); err == nil {
		t.Error("length mismatch should fail")
	}
	// Single cluster: silhouette undefined, returns 0.
	one, err := Silhouette(points, make([]int, len(points)))
	if err != nil || one != 0 {
		t.Errorf("single-cluster silhouette = %g, %v", one, err)
	}
}

func TestBestK(t *testing.T) {
	points, want := twoBlobs()
	res, k, err := BestK(points, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if k != 2 {
		t.Errorf("BestK chose k=%d, want 2", k)
	}
	if !sameClustering(res.Assign, want) {
		t.Errorf("BestK assign = %v", res.Assign)
	}
	if _, _, err := BestK(nil, 3, Options{}); !errors.Is(err, ErrNoPoints) {
		t.Errorf("empty err = %v", err)
	}
	// maxK < 2 degenerates to one cluster.
	res, k, err = BestK(points, 1, Options{})
	if err != nil || k != 1 || res.K() != 1 {
		t.Errorf("BestK(1) = k %d, %v", k, err)
	}
}

func TestAgglomerate(t *testing.T) {
	points, want := twoBlobs()
	for _, linkage := range []Linkage{SingleLinkage, CompleteLinkage, AverageLinkage} {
		den, err := Agglomerate(points, linkage)
		if err != nil {
			t.Fatalf("%v: %v", linkage, err)
		}
		if got := len(den.Merges()); got != len(points)-1 {
			t.Fatalf("%v: %d merges, want %d", linkage, got, len(points)-1)
		}
		groups, err := den.Cut(2)
		if err != nil {
			t.Fatal(err)
		}
		assign := make([]int, len(points))
		for c, g := range groups {
			for _, i := range g {
				assign[i] = c
			}
		}
		if !sameClustering(assign, want) {
			t.Errorf("%v: cut(2) = %v", linkage, groups)
		}
	}
}

func TestAgglomerateCutBounds(t *testing.T) {
	points, _ := twoBlobs()
	den, err := Agglomerate(points, SingleLinkage)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := den.Cut(0); !errors.Is(err, ErrBadK) {
		t.Errorf("cut(0) err = %v", err)
	}
	if _, err := den.Cut(len(points) + 1); !errors.Is(err, ErrBadK) {
		t.Errorf("cut(n+1) err = %v", err)
	}
	groups, err := den.Cut(len(points))
	if err != nil || len(groups) != len(points) {
		t.Errorf("cut(n) = %v, %v", groups, err)
	}
	groups, err = den.Cut(1)
	if err != nil || len(groups) != 1 || len(groups[0]) != len(points) {
		t.Errorf("cut(1) = %v, %v", groups, err)
	}
}

func TestAgglomerateErrors(t *testing.T) {
	if _, err := Agglomerate(nil, SingleLinkage); !errors.Is(err, ErrNoPoints) {
		t.Errorf("empty err = %v", err)
	}
}

func TestLinkageString(t *testing.T) {
	for _, l := range []Linkage{SingleLinkage, CompleteLinkage, AverageLinkage, Linkage(9)} {
		if l.String() == "" {
			t.Errorf("empty String for %d", int(l))
		}
	}
}

func TestSameParts(t *testing.T) {
	a := [][]int{{0, 1}, {2, 3}}
	b := [][]int{{3, 2}, {1, 0}}
	if !SameParts(a, b) {
		t.Error("relabeled partitions should match")
	}
	c := [][]int{{0, 2}, {1, 3}}
	if SameParts(a, c) {
		t.Error("different partitions should not match")
	}
	if SameParts(a, [][]int{{0, 1, 2, 3}}) {
		t.Error("different group counts should not match")
	}
	if SameParts([][]int{{0, 1}}, [][]int{{0, 1, 2}}) {
		t.Error("different group sizes should not match")
	}
}
