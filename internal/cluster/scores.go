package cluster

import (
	"fmt"
	"math"
)

// Distances returns each point's Euclidean distance to its assigned
// centroid. Every assignment must index a centroid; a singleton cluster
// is fine — its member sits on its own centroid at distance zero, never
// NaN.
func Distances(points, centroids [][]float64, assign []int) ([]float64, error) {
	if len(points) == 0 {
		return nil, ErrNoPoints
	}
	if len(assign) != len(points) {
		return nil, fmt.Errorf("cluster: %d assignments for %d points", len(assign), len(points))
	}
	out := make([]float64, len(points))
	for i, p := range points {
		c := assign[i]
		if c < 0 || c >= len(centroids) {
			return nil, fmt.Errorf("cluster: point %d assigned to cluster %d of %d", i, c, len(centroids))
		}
		if len(centroids[c]) != len(p) {
			return nil, fmt.Errorf("%w: point %d has %d dims, centroid %d has %d", ErrRagged, i, len(p), c, len(centroids[c]))
		}
		out[i] = math.Sqrt(sqDist(p, centroids[c]))
	}
	return out, nil
}

// SpreadByCluster returns the root-mean-square member-to-centroid
// distance of each of k clusters — the cohort tightness a divergence
// score is read against. Dividing by the member count (not count-1, the
// sample-variance convention that would make a single-member cohort NaN)
// keeps every value finite: empty and singleton clusters spread to
// exactly 0 and a lone diverged rank stays reportable.
func SpreadByCluster(dists []float64, assign []int, k int) ([]float64, error) {
	if len(assign) != len(dists) {
		return nil, fmt.Errorf("cluster: %d assignments for %d distances", len(assign), len(dists))
	}
	sums := make([]float64, k)
	counts := make([]int, k)
	for i, d := range dists {
		c := assign[i]
		if c < 0 || c >= k {
			return nil, fmt.Errorf("cluster: point %d assigned to cluster %d of %d", i, c, k)
		}
		sums[c] += d * d
		counts[c]++
	}
	out := make([]float64, k)
	for c := range out {
		if counts[c] > 0 {
			out[c] = math.Sqrt(sums[c] / float64(counts[c]))
		}
	}
	return out, nil
}

// NearestOther returns the index of the centroid nearest to p other than
// own, or -1 when no other centroid exists. A point stranded in a
// singleton cluster is scored against this neighbour cohort instead of
// its own zero-distance centroid.
func NearestOther(p []float64, centroids [][]float64, own int) int {
	best, bestDist := -1, math.Inf(1)
	for c, cent := range centroids {
		if c == own {
			continue
		}
		if dd := sqDist(p, cent); dd < bestDist {
			best, bestDist = c, dd
		}
	}
	return best
}
