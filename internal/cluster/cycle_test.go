package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

// naiveLloyd is the pre-cycle-detector main loop, verbatim: it always runs
// out the iteration budget when the empty-cluster re-seeding cycles.
func naiveLloyd(points [][]float64, k, maxIter int, init Init) ([]int, [][]float64, int) {
	centroids := initialize(points, k, init)
	assign := make([]int, len(points))
	iters := 0
	for iter := 0; iter < maxIter; iter++ {
		iters = iter + 1
		changed := assignPoints(points, centroids, assign)
		recomputeCentroids(points, centroids, assign)
		fixEmptyClusters(points, centroids, assign)
		if !changed && iter > 0 {
			break
		}
	}
	return assign, centroids, iters
}

// TestKMeansCycleDetectorTriggers pins the canonical cycling input —
// identical points, where ties make the assignment step and the
// empty-cluster re-seeding fight forever — and checks the detector leaves
// the result bit-identical to running the full budget. The naive loop must
// exhaust the budget here, or the case would not exercise the jump at all.
func TestKMeansCycleDetectorTriggers(t *testing.T) {
	for _, n := range []int{4, 7, 128} {
		for _, k := range []int{2, 3} {
			if k >= n {
				continue
			}
			for _, maxIter := range []int{99, 100} {
				t.Run(fmt.Sprintf("n%d/k%d/maxIter%d", n, k, maxIter), func(t *testing.T) {
					points := make([][]float64, n)
					for i := range points {
						points[i] = []float64{0.25, 0.5, 0.25}
					}
					wantAssign, wantCent, wantIters := naiveLloyd(points, k, maxIter, InitFirstK)
					if wantIters != maxIter {
						t.Fatalf("naive loop converged in %d iterations; the case no longer cycles", wantIters)
					}
					res, err := KMeans(points, k, Options{Init: InitFirstK, MaxIter: maxIter})
					if err != nil {
						t.Fatal(err)
					}
					if res.Iterations != wantIters {
						t.Errorf("Iterations = %d, naive %d", res.Iterations, wantIters)
					}
					for i := range wantAssign {
						if res.Assign[i] != wantAssign[i] {
							t.Fatalf("Assign[%d] = %d, naive %d", i, res.Assign[i], wantAssign[i])
						}
					}
					for c := range wantCent {
						for d := range wantCent[c] {
							if res.Centroids[c][d] != wantCent[c][d] {
								t.Fatalf("Centroids[%d][%d] = %g, naive %g",
									c, d, res.Centroids[c][d], wantCent[c][d])
							}
						}
					}
				})
			}
		}
	}
}

// TestKMeansCycleJumpMatchesFullRun checks the cycle detector is
// invisible: whatever KMeans returns must be bit-identical — assignments,
// centroids and reported iteration count — to naively running every Lloyd
// iteration, across random inputs, cluster counts and iteration budgets.
// Odd and even budgets land on opposite states of a period-two cycle, so
// both parities are exercised.
func TestKMeansCycleJumpMatchesFullRun(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(60)
		dim := 1 + rng.Intn(8)
		k := 2 + rng.Intn(3)
		if k > n {
			k = n
		}
		points := make([][]float64, n)
		for i := range points {
			points[i] = make([]float64, dim)
			for d := range points[i] {
				points[i][d] = rng.Float64()
			}
		}
		for _, maxIter := range []int{99, 100} {
			t.Run(fmt.Sprintf("trial%d/maxIter%d", trial, maxIter), func(t *testing.T) {
				wantAssign, wantCent, wantIters := naiveLloyd(points, k, maxIter, InitFirstK)
				res, err := KMeans(points, k, Options{Init: InitFirstK, MaxIter: maxIter})
				if err != nil {
					t.Fatal(err)
				}
				if res.Iterations != wantIters {
					t.Errorf("Iterations = %d, naive %d", res.Iterations, wantIters)
				}
				for i := range wantAssign {
					if res.Assign[i] != wantAssign[i] {
						t.Fatalf("Assign[%d] = %d, naive %d", i, res.Assign[i], wantAssign[i])
					}
				}
				for c := range wantCent {
					for d := range wantCent[c] {
						if res.Centroids[c][d] != wantCent[c][d] {
							t.Fatalf("Centroids[%d][%d] = %g, naive %g",
								c, d, res.Centroids[c][d], wantCent[c][d])
						}
					}
				}
			})
		}
	}
}
