package cluster

import (
	"fmt"
	"math"
)

// Linkage selects the inter-cluster distance used by agglomerative
// clustering.
type Linkage int

// Supported linkages.
const (
	// SingleLinkage merges by minimum pairwise distance.
	SingleLinkage Linkage = iota
	// CompleteLinkage merges by maximum pairwise distance.
	CompleteLinkage
	// AverageLinkage merges by mean pairwise distance (UPGMA).
	AverageLinkage
)

// String returns the linkage name.
func (l Linkage) String() string {
	switch l {
	case SingleLinkage:
		return "single"
	case CompleteLinkage:
		return "complete"
	case AverageLinkage:
		return "average"
	}
	return fmt.Sprintf("Linkage(%d)", int(l))
}

// Merge records one agglomeration step of the dendrogram.
type Merge struct {
	// A and B are the merged cluster ids: ids < n are singleton points;
	// id n+s is the cluster created by step s.
	A, B int
	// Distance is the linkage distance at which the merge happened.
	Distance float64
}

// Dendrogram is the full agglomeration history of n points: n-1 merges in
// nondecreasing distance order (for single linkage; other linkages may
// produce inversions, which are retained as computed).
type Dendrogram struct {
	n      int
	merges []Merge
}

// Merges returns a copy of the merge steps.
func (d *Dendrogram) Merges() []Merge { return append([]Merge(nil), d.merges...) }

// Agglomerate builds a hierarchical clustering of points with the given
// linkage, using the Lance-Williams update. It is O(n^3) — fine for the
// handfuls of code regions the methodology deals with.
func Agglomerate(points [][]float64, linkage Linkage) (*Dendrogram, error) {
	if _, err := validate(points, 1); err != nil {
		return nil, err
	}
	n := len(points)
	// dist[a][b] for active cluster ids; start with singletons.
	active := make(map[int][]int, n) // cluster id -> member points
	for i := range points {
		active[i] = []int{i}
	}
	dist := make(map[[2]int]float64)
	key := func(a, b int) [2]int {
		if a > b {
			a, b = b, a
		}
		return [2]int{a, b}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dist[key(i, j)] = math.Sqrt(sqDist(points[i], points[j]))
		}
	}
	d := &Dendrogram{n: n}
	nextID := n
	for len(active) > 1 {
		// Find the closest active pair.
		bestA, bestB, bestD := -1, -1, math.Inf(1)
		for a := range active {
			for b := range active {
				if a >= b {
					continue
				}
				if dd := dist[key(a, b)]; dd < bestD {
					bestA, bestB, bestD = a, b, dd
				}
			}
		}
		merged := append(append([]int(nil), active[bestA]...), active[bestB]...)
		// Linkage distance from the new cluster to every other.
		for c := range active {
			if c == bestA || c == bestB {
				continue
			}
			da, db := dist[key(bestA, c)], dist[key(bestB, c)]
			var nd float64
			switch linkage {
			case SingleLinkage:
				nd = math.Min(da, db)
			case CompleteLinkage:
				nd = math.Max(da, db)
			default: // AverageLinkage
				na, nb := float64(len(active[bestA])), float64(len(active[bestB]))
				nd = (na*da + nb*db) / (na + nb)
			}
			dist[key(nextID, c)] = nd
		}
		delete(active, bestA)
		delete(active, bestB)
		active[nextID] = merged
		d.merges = append(d.merges, Merge{A: bestA, B: bestB, Distance: bestD})
		nextID++
	}
	return d, nil
}

// Cut returns the partition obtained by stopping the agglomeration when
// exactly k clusters remain, as groups of point indices.
func (d *Dendrogram) Cut(k int) ([][]int, error) {
	if k < 1 || k > d.n {
		return nil, fmt.Errorf("%w: k=%d with %d points", ErrBadK, k, d.n)
	}
	members := make(map[int][]int, d.n)
	for i := 0; i < d.n; i++ {
		members[i] = []int{i}
	}
	steps := d.n - k
	for s := 0; s < steps; s++ {
		m := d.merges[s]
		merged := append(append([]int(nil), members[m.A]...), members[m.B]...)
		delete(members, m.A)
		delete(members, m.B)
		members[d.n+s] = merged
	}
	var groups [][]int
	for _, g := range members {
		groups = append(groups, g)
	}
	return sortGroups(groups), nil
}
