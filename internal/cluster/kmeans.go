// Package cluster implements the clustering techniques the methodology
// uses to group code regions with homogeneous behavior (Hartigan,
// "Clustering Algorithms", 1975): k-means with deterministic
// initialization, plus agglomerative hierarchical clustering and cluster
// quality scores.
//
// Each code region is a point in the K-dimensional space of its activity
// wall clock times; clustering partitions the regions into groups of
// similar activity mixes so that tuning candidates can be identified per
// group rather than per region.
package cluster

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Common clustering errors.
var (
	// ErrNoPoints is returned when the input is empty.
	ErrNoPoints = errors.New("cluster: no points")
	// ErrBadK is returned when k is not in [1, len(points)].
	ErrBadK = errors.New("cluster: k out of range")
	// ErrRagged is returned when points have different dimensions.
	ErrRagged = errors.New("cluster: points have different dimensions")
)

// Init selects the k-means initialization strategy.
type Init int

// Initialization strategies.
const (
	// InitFarthest seeds with the point closest to the centroid of all
	// points, then repeatedly adds the point farthest from its nearest
	// seed (a deterministic analogue of k-means++). This is the default.
	InitFarthest Init = iota
	// InitFirstK seeds with the first k points, in input order.
	InitFirstK
)

// Options configures KMeans. The zero value uses farthest-point
// initialization and at most 100 Lloyd iterations.
type Options struct {
	// Init is the initialization strategy.
	Init Init
	// MaxIter bounds the Lloyd iterations; 0 means 100.
	MaxIter int
	// Refine enables Hartigan-Wong single-point improvement after Lloyd
	// converges: points are moved between clusters whenever the move
	// strictly decreases the total within-cluster sum of squares
	// (accounting for the centroid shift). Refinement can escape Lloyd's
	// local optima; on the paper's case study it finds a strictly
	// better-SSE partition than the one the paper reports.
	Refine bool
}

// Result is a clustering of the input points.
type Result struct {
	// Assign[i] is the cluster of point i, in [0, k).
	Assign []int
	// Centroids holds the k cluster centers.
	Centroids [][]float64
	// Inertia is the total within-cluster sum of squared distances.
	Inertia float64
	// Iterations is the number of Lloyd iterations performed.
	Iterations int
}

// K returns the number of clusters.
func (r *Result) K() int { return len(r.Centroids) }

// Groups returns the cluster members as slices of point indices, ordered
// by cluster id; point order within a group follows input order.
func (r *Result) Groups() [][]int {
	out := make([][]int, len(r.Centroids))
	for i, c := range r.Assign {
		out[c] = append(out[c], i)
	}
	return out
}

func validate(points [][]float64, k int) (dim int, err error) {
	if len(points) == 0 {
		return 0, ErrNoPoints
	}
	if k < 1 || k > len(points) {
		return 0, fmt.Errorf("%w: k=%d with %d points", ErrBadK, k, len(points))
	}
	dim = len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return 0, fmt.Errorf("%w: point %d has %d dims, want %d", ErrRagged, i, len(p), dim)
		}
	}
	return dim, nil
}

// makeCentroidsLike allocates a centroid matrix of the same shape.
func makeCentroidsLike(centroids [][]float64) [][]float64 {
	out := make([][]float64, len(centroids))
	for c := range centroids {
		out[c] = make([]float64, len(centroids[c]))
	}
	return out
}

// equalAssign reports whether two assignment vectors are identical.
func equalAssign(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// equalCentroids reports whether two centroid matrices are bitwise equal
// (exact float comparison: the cycle detector needs identical states, not
// merely close ones).
func equalCentroids(a, b [][]float64) bool {
	for c := range a {
		for d := range a[c] {
			if a[c][d] != b[c][d] {
				return false
			}
		}
	}
	return true
}

// sqDist returns the squared Euclidean distance between two points.
func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// KMeans partitions points into k clusters by Lloyd's algorithm with
// deterministic initialization. It always converges (inertia is
// non-increasing and assignments are finite); empty clusters are re-seeded
// with the point farthest from its centroid.
func KMeans(points [][]float64, k int, opts Options) (*Result, error) {
	if _, err := validate(points, k); err != nil {
		return nil, err
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 100
	}
	centroids := initialize(points, k, opts.Init)
	assign := make([]int, len(points))
	res := &Result{Assign: assign, Centroids: centroids}
	// Lloyd's terminates when assignments stop changing, but the
	// empty-cluster re-seeding can fight the assignment step and lock the
	// state into a period-two cycle that would otherwise spin until
	// maxIter. The detector keeps the previous two states and, on seeing
	// state(t) == state(t-2), jumps straight to the state maxIter
	// iterations would have produced: the remaining steps only alternate
	// between the two cycle states, so the result is bit-identical to
	// running them all.
	prevAssign := make([]int, len(points))
	prev2Assign := make([]int, len(points))
	prevCent := makeCentroidsLike(centroids)
	prev2Cent := makeCentroidsLike(centroids)
	for iter := 0; iter < maxIter; iter++ {
		res.Iterations = iter + 1
		changed := assignPoints(points, centroids, assign)
		recomputeCentroids(points, centroids, assign)
		fixEmptyClusters(points, centroids, assign)
		if !changed && iter > 0 {
			break
		}
		if iter >= 2 && equalAssign(assign, prev2Assign) && equalCentroids(centroids, prev2Cent) {
			if (maxIter-1-iter)%2 == 1 {
				// An odd number of steps remains: the final state is the
				// other cycle state, i.e. the previous iteration's.
				copy(assign, prevAssign)
				for c := range centroids {
					copy(centroids[c], prevCent[c])
				}
			}
			res.Iterations = maxIter
			break
		}
		prevAssign, prev2Assign = prev2Assign, prevAssign
		copy(prevAssign, assign)
		prevCent, prev2Cent = prev2Cent, prevCent
		for c := range centroids {
			copy(prevCent[c], centroids[c])
		}
	}
	if opts.Refine {
		hartiganRefine(points, centroids, assign, maxIter)
	}
	res.Inertia = inertia(points, centroids, assign)
	return res, nil
}

// hartiganRefine applies Hartigan-Wong single-point moves: moving point x
// from cluster a (size na) to cluster b (size nb) changes the total SSE by
// nb/(nb+1)*d(x,cb)^2 - na/(na-1)*d(x,ca)^2; any strictly negative delta is
// taken. The loop repeats until no improving move exists (or maxIter
// sweeps, as a safety bound — each accepted move strictly decreases SSE, so
// termination is guaranteed anyway for exact arithmetic).
func hartiganRefine(points, centroids [][]float64, assign []int, maxIter int) {
	counts := make([]int, len(centroids))
	for _, c := range assign {
		counts[c]++
	}
	for sweep := 0; sweep < maxIter; sweep++ {
		improved := false
		for i, p := range points {
			from := assign[i]
			if counts[from] <= 1 {
				continue // never empty a cluster
			}
			na := float64(counts[from])
			removeGain := na / (na - 1) * sqDist(p, centroids[from])
			bestTo, bestDelta := -1, -1e-12
			for c := range centroids {
				if c == from {
					continue
				}
				nb := float64(counts[c])
				delta := nb/(nb+1)*sqDist(p, centroids[c]) - removeGain
				if delta < bestDelta {
					bestTo, bestDelta = c, delta
				}
			}
			if bestTo < 0 {
				continue
			}
			counts[from]--
			counts[bestTo]++
			assign[i] = bestTo
			recomputeCentroids(points, centroids, assign)
			improved = true
		}
		if !improved {
			return
		}
	}
}

func initialize(points [][]float64, k int, init Init) [][]float64 {
	centroids := make([][]float64, k)
	switch init {
	case InitFirstK:
		for c := 0; c < k; c++ {
			centroids[c] = append([]float64(nil), points[c]...)
		}
	default: // InitFarthest
		// First seed: the point nearest the global centroid.
		dim := len(points[0])
		global := make([]float64, dim)
		for _, p := range points {
			for d, v := range p {
				global[d] += v
			}
		}
		for d := range global {
			global[d] /= float64(len(points))
		}
		first, firstDist := 0, math.Inf(1)
		for i, p := range points {
			if dd := sqDist(p, global); dd < firstDist {
				first, firstDist = i, dd
			}
		}
		chosen := []int{first}
		for len(chosen) < k {
			far, farDist := -1, -1.0
			for i, p := range points {
				nearest := math.Inf(1)
				for _, c := range chosen {
					if dd := sqDist(p, points[c]); dd < nearest {
						nearest = dd
					}
				}
				if nearest > farDist {
					far, farDist = i, nearest
				}
			}
			chosen = append(chosen, far)
		}
		for c, idx := range chosen {
			centroids[c] = append([]float64(nil), points[idx]...)
		}
	}
	return centroids
}

func assignPoints(points, centroids [][]float64, assign []int) (changed bool) {
	for i, p := range points {
		best, bestDist := 0, math.Inf(1)
		for c, cent := range centroids {
			if dd := sqDist(p, cent); dd < bestDist {
				best, bestDist = c, dd
			}
		}
		if assign[i] != best {
			assign[i] = best
			changed = true
		}
	}
	return changed
}

func recomputeCentroids(points, centroids [][]float64, assign []int) {
	dim := len(points[0])
	counts := make([]int, len(centroids))
	for c := range centroids {
		for d := 0; d < dim; d++ {
			centroids[c][d] = 0
		}
	}
	for i, p := range points {
		c := assign[i]
		counts[c]++
		for d, v := range p {
			centroids[c][d] += v
		}
	}
	for c := range centroids {
		if counts[c] == 0 {
			continue
		}
		for d := 0; d < dim; d++ {
			centroids[c][d] /= float64(counts[c])
		}
	}
}

// fixEmptyClusters re-seeds any empty cluster with the point farthest from
// its current centroid, guaranteeing every cluster is nonempty when
// k <= len(points).
func fixEmptyClusters(points, centroids [][]float64, assign []int) {
	counts := make([]int, len(centroids))
	for _, c := range assign {
		counts[c]++
	}
	for c := range centroids {
		if counts[c] > 0 {
			continue
		}
		far, farDist := -1, -1.0
		for i, p := range points {
			if counts[assign[i]] <= 1 {
				continue // don't empty another cluster
			}
			if dd := sqDist(p, centroids[assign[i]]); dd > farDist {
				far, farDist = i, dd
			}
		}
		if far < 0 {
			continue
		}
		counts[assign[far]]--
		assign[far] = c
		counts[c] = 1
		copy(centroids[c], points[far])
	}
}

func inertia(points, centroids [][]float64, assign []int) float64 {
	s := 0.0
	for i, p := range points {
		s += sqDist(p, centroids[assign[i]])
	}
	return s
}

// Silhouette returns the mean silhouette coefficient of a clustering, in
// [-1, 1]; larger is better. Points in singleton clusters contribute 0.
func Silhouette(points [][]float64, assign []int) (float64, error) {
	if len(points) == 0 {
		return 0, ErrNoPoints
	}
	if len(assign) != len(points) {
		return 0, fmt.Errorf("cluster: %d assignments for %d points", len(assign), len(points))
	}
	k := 0
	for _, c := range assign {
		if c+1 > k {
			k = c + 1
		}
	}
	sizes := make([]int, k)
	for _, c := range assign {
		sizes[c]++
	}
	total := 0.0
	for i, p := range points {
		if sizes[assign[i]] <= 1 {
			continue
		}
		// Mean distance to own cluster (a) and to the nearest other
		// cluster (b).
		sums := make([]float64, k)
		for j, q := range points {
			if i == j {
				continue
			}
			sums[assign[j]] += math.Sqrt(sqDist(p, q))
		}
		a := sums[assign[i]] / float64(sizes[assign[i]]-1)
		b := math.Inf(1)
		for c := 0; c < k; c++ {
			if c == assign[i] || sizes[c] == 0 {
				continue
			}
			if m := sums[c] / float64(sizes[c]); m < b {
				b = m
			}
		}
		if math.IsInf(b, 1) {
			continue // only one nonempty cluster
		}
		if m := math.Max(a, b); m > 0 {
			total += (b - a) / m
		}
	}
	return total / float64(len(points)), nil
}

// BestK runs KMeans for every k in [2, maxK] and returns the clustering
// with the highest silhouette, along with its k. maxK is clamped to the
// number of points.
func BestK(points [][]float64, maxK int, opts Options) (*Result, int, error) {
	if len(points) == 0 {
		return nil, 0, ErrNoPoints
	}
	if maxK > len(points) {
		maxK = len(points)
	}
	if maxK < 2 {
		res, err := KMeans(points, 1, opts)
		return res, 1, err
	}
	var best *Result
	bestK, bestScore := 0, math.Inf(-1)
	for k := 2; k <= maxK; k++ {
		res, err := KMeans(points, k, opts)
		if err != nil {
			return nil, 0, err
		}
		score, err := Silhouette(points, res.Assign)
		if err != nil {
			return nil, 0, err
		}
		if score > bestScore {
			best, bestK, bestScore = res, k, score
		}
	}
	return best, bestK, nil
}

// sortGroups orders each group ascending and the groups by first element;
// tests use it to compare partitions ignoring cluster ids.
func sortGroups(groups [][]int) [][]int {
	out := make([][]int, len(groups))
	for i, g := range groups {
		out[i] = append([]int(nil), g...)
		sort.Ints(out[i])
	}
	sort.Slice(out, func(a, b int) bool {
		if len(out[a]) == 0 || len(out[b]) == 0 {
			return len(out[a]) > len(out[b])
		}
		return out[a][0] < out[b][0]
	})
	return out
}

// SameParts reports whether two partitions (as Groups slices) are equal up
// to cluster relabeling.
func SameParts(a, b [][]int) bool {
	sa, sb := sortGroups(a), sortGroups(b)
	if len(sa) != len(sb) {
		return false
	}
	for i := range sa {
		if len(sa[i]) != len(sb[i]) {
			return false
		}
		for j := range sa[i] {
			if sa[i][j] != sb[i][j] {
				return false
			}
		}
	}
	return true
}
