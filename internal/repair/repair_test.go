package repair

import (
	"testing"

	"loadimb/internal/cfd"
)

func fastConfig() cfd.Config {
	cfg := cfd.Defaults()
	cfg.GridX = 64
	cfg.GridY = 64
	cfg.Iterations = 4
	cfg.Imbalance = 0.6
	return cfg
}

func TestOptionsValidation(t *testing.T) {
	cases := []Options{
		{Rounds: -1},
		{TargetSID: -0.1},
		{Damp: 1.5},
		{Damp: -0.5},
	}
	for i, o := range cases {
		if _, err := Loop(fastConfig(), o); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestLoopReducesImbalance(t *testing.T) {
	res, err := Loop(fastConfig(), Options{Rounds: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) == 0 {
		t.Fatal("no steps recorded")
	}
	// The skew is damped every non-converged round.
	for i := 1; i < len(res.Steps); i++ {
		prev, cur := res.Steps[i-1], res.Steps[i]
		if !res.Converged || i < len(res.Steps)-1 {
			if cur.Imbalance > prev.Imbalance {
				t.Errorf("round %d: skew grew %g -> %g", cur.Round, prev.Imbalance, cur.Imbalance)
			}
		}
	}
	// The candidate's scaled index shrinks over the loop.
	first, last := res.Steps[0], res.Steps[len(res.Steps)-1]
	if last.CandidateSID >= first.CandidateSID {
		t.Errorf("SID did not improve: %g -> %g", first.CandidateSID, last.CandidateSID)
	}
	// And the program got faster overall.
	if res.TotalSpeedup() <= 1 {
		t.Errorf("total speedup = %g, want > 1", res.TotalSpeedup())
	}
	if res.Final == nil {
		t.Error("missing final cube")
	}
}

func TestLoopConvergesOnBalancedStart(t *testing.T) {
	cfg := fastConfig()
	cfg.Imbalance = 0
	res, err := Loop(cfg, Options{Rounds: 3, TargetSID: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Errorf("balanced start should converge immediately; steps = %+v", res.Steps)
	}
	if len(res.Steps) != 1 {
		t.Errorf("converged run took %d steps", len(res.Steps))
	}
	if res.Steps[0].Action == "" {
		t.Error("step should describe its action")
	}
}

func TestVerify(t *testing.T) {
	skewed := fastConfig()
	runBefore, err := cfd.Run(skewed)
	if err != nil {
		t.Fatal(err)
	}
	repaired := skewed
	repaired.Imbalance = 0.05
	runAfter, err := cfd.Run(repaired)
	if err != nil {
		t.Fatal(err)
	}
	improved, diff, err := Verify(runBefore.Cube, runAfter.Cube)
	if err != nil {
		t.Fatal(err)
	}
	if !improved {
		t.Errorf("repair should verify as improved (speedup %.3f)", diff.Speedup())
	}
	// Reversed comparison must not claim improvement.
	worse, _, err := Verify(runAfter.Cube, runBefore.Cube)
	if err != nil {
		t.Fatal(err)
	}
	if worse {
		t.Error("regression verified as improvement")
	}
	if _, _, err := Verify(runBefore.Cube, nil); err == nil {
		t.Error("nil cube should fail")
	}
}
