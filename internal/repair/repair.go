// Package repair closes the tuning loop the paper's Section 2 describes:
// "an iterative process consisting of several steps, dealing with the
// identification and localization of inefficiencies, their repair and the
// verification and validation of the achieved performance."
//
// The methodology (internal/core) performs identification and
// localization; this package adds repair and verification for the
// simulated CFD program: each round analyzes a run, picks the tuning
// candidate by scaled index, applies a repair action (damping the
// domain-decomposition skew), re-runs, and verifies the improvement by
// comparing the two measurement cubes.
package repair

import (
	"errors"
	"fmt"

	"loadimb/internal/cfd"
	"loadimb/internal/core"
	"loadimb/internal/trace"
)

// Step records one round of the tuning loop.
type Step struct {
	// Round is the 1-based iteration number.
	Round int
	// Candidate is the region flagged for tuning (largest SID_C).
	Candidate string
	// CandidateSID is the candidate's scaled index before the repair.
	CandidateSID float64
	// Action describes the applied repair.
	Action string
	// Imbalance is the decomposition skew used for the NEXT run.
	Imbalance float64
	// ProgramTime is this round's program wall clock time.
	ProgramTime float64
	// Speedup is this round's program time relative to the previous
	// round (1 for the first round).
	Speedup float64
}

// Result is the outcome of a tuning loop.
type Result struct {
	// Steps holds one record per executed round.
	Steps []Step
	// Final is the last run's measurement cube.
	Final *trace.Cube
	// Converged reports whether the loop stopped because the candidate
	// SID fell below the target (rather than exhausting the rounds).
	Converged bool
}

// TotalSpeedup returns first-round program time over last-round program
// time.
func (r *Result) TotalSpeedup() float64 {
	if len(r.Steps) == 0 || r.Steps[len(r.Steps)-1].ProgramTime == 0 {
		return 1
	}
	return r.Steps[0].ProgramTime / r.Steps[len(r.Steps)-1].ProgramTime
}

// Options configures the tuning loop.
type Options struct {
	// Rounds bounds the loop (0 means 5).
	Rounds int
	// TargetSID stops the loop once the top candidate's scaled index
	// falls below it (0 means 0.002).
	TargetSID float64
	// Damp is the factor applied to the decomposition skew each round
	// (0 means 0.5); must be in (0, 1).
	Damp float64
}

func (o *Options) normalize() error {
	if o.Rounds == 0 {
		o.Rounds = 5
	}
	if o.TargetSID == 0 {
		o.TargetSID = 0.002
	}
	if o.Damp == 0 {
		o.Damp = 0.5
	}
	if o.Rounds < 1 {
		return errors.New("repair: rounds must be positive")
	}
	if o.TargetSID < 0 {
		return errors.New("repair: negative target SID")
	}
	if o.Damp <= 0 || o.Damp >= 1 {
		return fmt.Errorf("repair: damp %g out of (0, 1)", o.Damp)
	}
	return nil
}

// Loop runs the identify-localize-repair-verify cycle on the simulated
// CFD program starting from cfg.
func Loop(cfg cfd.Config, opts Options) (*Result, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	result := &Result{}
	prevTime := 0.0
	for round := 1; round <= opts.Rounds; round++ {
		run, err := cfd.Run(cfg)
		if err != nil {
			return nil, err
		}
		analysis, err := core.Analyze(run.Cube, core.AnalyzeOptions{})
		if err != nil {
			return nil, err
		}
		cands := analysis.TuningCandidates(core.MaxCriterion{})
		if len(cands) == 0 {
			return nil, errors.New("repair: no tuning candidate")
		}
		cand := analysis.Regions[cands[0].Pos]
		step := Step{
			Round:        round,
			Candidate:    cand.Name,
			CandidateSID: cand.SID,
			ProgramTime:  run.Cube.ProgramTime(),
			Imbalance:    cfg.Imbalance,
			Speedup:      1,
		}
		if prevTime > 0 {
			step.Speedup = prevTime / run.Cube.ProgramTime()
		}
		prevTime = run.Cube.ProgramTime()
		result.Final = run.Cube
		if cand.SID < opts.TargetSID {
			step.Action = "target reached; no repair applied"
			result.Steps = append(result.Steps, step)
			result.Converged = true
			return result, nil
		}
		// Repair: damp the decomposition skew — the lever behind the
		// computation imbalance the candidate exposes.
		next := cfg.Imbalance * opts.Damp
		step.Action = fmt.Sprintf("damp decomposition skew %.3f -> %.3f", cfg.Imbalance, next)
		cfg.Imbalance = next
		step.Imbalance = next
		result.Steps = append(result.Steps, step)
	}
	return result, nil
}

// Verify compares a before/after pair of cubes and reports whether the
// repair helped: the program got faster and the candidate region's scaled
// index decreased.
func Verify(before, after *trace.Cube) (improved bool, diff *trace.Diff, err error) {
	diff, err = trace.Compare(before, after)
	if err != nil {
		return false, nil, err
	}
	beforeView, err := core.CodeRegionView(before, core.Options{})
	if err != nil {
		return false, nil, err
	}
	afterView, err := core.CodeRegionView(after, core.Options{})
	if err != nil {
		return false, nil, err
	}
	maxSID := func(view []core.RegionSummary) float64 {
		m := 0.0
		for _, s := range view {
			if s.Defined && s.SID > m {
				m = s.SID
			}
		}
		return m
	}
	improved = diff.Speedup() > 1 && maxSID(afterView) < maxSID(beforeView)
	return improved, diff, nil
}
