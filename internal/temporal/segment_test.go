package temporal

import (
	"math"
	"testing"
)

// statsFromIDs builds a WindowStat trajectory with the given ID values
// in consecutive unit windows; a NaN marks an all-idle window (null ID,
// zero busy).
func statsFromIDs(ids []float64) []WindowStat {
	out := make([]WindowStat, 0, len(ids))
	for i, v := range ids {
		w := WindowStat{Index: i, Start: float64(i), End: float64(i + 1), Events: 1, Busy: 1}
		if math.IsNaN(v) {
			w.Busy = 0
		} else {
			id := v
			w.ID = &id
		}
		out = append(out, w)
	}
	return out
}

func TestSegmentConstantTrajectoryIsOnePhase(t *testing.T) {
	ids := make([]float64, 40)
	for i := range ids {
		ids[i] = 0.25
	}
	phases := Segment(statsFromIDs(ids), 0)
	if len(phases) != 1 {
		t.Fatalf("%d phases, want 1: %+v", len(phases), phases)
	}
	ph := phases[0]
	if ph.FirstWindow != 0 || ph.LastWindow != 39 || ph.Windows != 40 {
		t.Errorf("phase bounds = %+v", ph)
	}
	if ph.Start != 0 || ph.End != 40 {
		t.Errorf("phase time bounds [%g, %g), want [0, 40)", ph.Start, ph.End)
	}
	if math.Abs(ph.MeanID-0.25) > 1e-12 {
		t.Errorf("mean ID = %g, want 0.25", ph.MeanID)
	}
	// A one-phase trajectory's phase sits exactly at the overall mean.
	if ph.Label != LabelHot {
		t.Errorf("label = %q, want %q", ph.Label, LabelHot)
	}
}

func TestSegmentRecoversPiecewiseConstantLevels(t *testing.T) {
	// Three clean regimes with mild deterministic ripple: balanced,
	// imbalanced, balanced again — the alternation the AMR workload
	// shows between bulk phases and refinement tails.
	var ids []float64
	ripple := []float64{0.003, -0.002, 0.001, -0.003, 0.002}
	addLevel := func(level float64, n int) {
		for i := 0; i < n; i++ {
			ids = append(ids, level+ripple[i%len(ripple)])
		}
	}
	addLevel(0.05, 15)
	addLevel(0.60, 10)
	addLevel(0.08, 15)
	phases := Segment(statsFromIDs(ids), 0)
	if len(phases) != 3 {
		t.Fatalf("%d phases, want 3: %+v", len(phases), phases)
	}
	wantFirst := []int{0, 15, 25}
	wantLast := []int{14, 24, 39}
	wantLabel := []string{LabelQuiet, LabelHot, LabelQuiet}
	wantMean := []float64{0.05, 0.60, 0.08}
	for i, ph := range phases {
		if ph.FirstWindow != wantFirst[i] || ph.LastWindow != wantLast[i] {
			t.Errorf("phase %d = windows [%d, %d], want [%d, %d]",
				i, ph.FirstWindow, ph.LastWindow, wantFirst[i], wantLast[i])
		}
		if ph.Label != wantLabel[i] {
			t.Errorf("phase %d label = %q, want %q", i, ph.Label, wantLabel[i])
		}
		if math.Abs(ph.MeanID-wantMean[i]) > 0.01 {
			t.Errorf("phase %d mean ID = %g, want ~%g", i, ph.MeanID, wantMean[i])
		}
	}
}

func TestSegmentExplicitPenaltySuppressesSplits(t *testing.T) {
	var ids []float64
	for i := 0; i < 10; i++ {
		ids = append(ids, 0.1)
	}
	for i := 0; i < 10; i++ {
		ids = append(ids, 0.5)
	}
	// The auto penalty splits the level shift…
	if got := len(Segment(statsFromIDs(ids), 0)); got != 2 {
		t.Errorf("auto penalty: %d phases, want 2", got)
	}
	// …a huge explicit penalty forbids any change point.
	if got := len(Segment(statsFromIDs(ids), 1e6)); got != 1 {
		t.Errorf("penalty 1e6: %d phases, want 1", got)
	}
}

func TestSegmentLabelsIdlePhases(t *testing.T) {
	nan := math.NaN()
	ids := []float64{0.3, 0.3, 0.3, 0.3, nan, nan, nan, nan, 0.3, 0.3, 0.3, 0.3}
	phases := Segment(statsFromIDs(ids), 0)
	if len(phases) != 3 {
		t.Fatalf("%d phases, want 3: %+v", len(phases), phases)
	}
	if phases[1].Label != LabelIdle {
		t.Errorf("middle phase label = %q, want %q", phases[1].Label, LabelIdle)
	}
	if phases[1].MeanID != 0 {
		t.Errorf("idle phase mean ID = %g, want 0", phases[1].MeanID)
	}
	if phases[0].Label != LabelHot || phases[2].Label != LabelHot {
		t.Errorf("busy phase labels = %q, %q, want %q", phases[0].Label, phases[2].Label, LabelHot)
	}
}

// TestSegmentMostlyConstantAbsorbsBlips is the defaultPenalty
// degeneracy regression: a trajectory where most windows repeat their
// neighbour's value has a zero median absolute difference, and the old
// fallback penalty of 1e-12 cut a phase at every blip — this trajectory
// exploded into a phase per blip. The variance-scaled floor absorbs
// the blips: one phase.
func TestSegmentMostlyConstantAbsorbsBlips(t *testing.T) {
	ids := make([]float64, 30)
	for i := range ids {
		ids[i] = 0.2
		if i%5 == 4 && i < 28 {
			ids[i] = 0.21 // isolated measurement blip, not a regime
		}
	}
	phases := Segment(statsFromIDs(ids), 0)
	if len(phases) != 1 {
		t.Fatalf("%d phases, want 1: %+v", len(phases), phases)
	}
	// The floor is a fraction of the variance, not an absolute value:
	// genuine level shifts in the same zero-MAD regime must still split.
	shift := make([]float64, 24)
	for i := range shift {
		shift[i] = 0.2
		if i >= 12 {
			shift[i] = 0.5
		}
	}
	if got := len(Segment(statsFromIDs(shift), 0)); got != 2 {
		t.Errorf("clean level shift: %d phases, want 2", got)
	}
}

// TestSegmentIdleHeavyHotTail is the hot/quiet-threshold regression:
// all-idle windows used to enter the trajectory mean as zeros, deflating
// the threshold until every busy phase of an idle-heavy run read as
// "hot". The threshold is now the mean over defined-ID windows only, so
// a genuinely balanced stretch after a long idle gap stays quiet and
// only the truly elevated tail is hot.
func TestSegmentIdleHeavyHotTail(t *testing.T) {
	nan := math.NaN()
	var ids []float64
	for i := 0; i < 20; i++ {
		ids = append(ids, nan)
	}
	for i := 0; i < 10; i++ {
		ids = append(ids, 0.2)
	}
	for i := 0; i < 10; i++ {
		ids = append(ids, 0.4)
	}
	phases := Segment(statsFromIDs(ids), 0)
	if len(phases) != 3 {
		t.Fatalf("%d phases, want 3: %+v", len(phases), phases)
	}
	wantLabels := []string{LabelIdle, LabelQuiet, LabelHot}
	for i, ph := range phases {
		if ph.Label != wantLabels[i] {
			// Pre-fix the threshold was (10·0.2+10·0.4)/40 = 0.15 and the
			// 0.2 stretch came out hot.
			t.Errorf("phase %d label = %q, want %q (%+v)", i, ph.Label, wantLabels[i], ph)
		}
	}
}

func TestSegmentEmptyAndSingle(t *testing.T) {
	if got := Segment(nil, 0); got != nil {
		t.Errorf("Segment(nil) = %+v, want nil", got)
	}
	phases := Segment(statsFromIDs([]float64{0.4}), 0)
	if len(phases) != 1 {
		t.Fatalf("%d phases, want 1", len(phases))
	}
	if phases[0].Windows != 1 || phases[0].MeanID != 0.4 {
		t.Errorf("phase = %+v", phases[0])
	}
}

// TestSegmentOptimalityBruteForce checks pelt against an exhaustive
// search over all segmentations of short trajectories: PELT's pruning
// must never change the optimum, only skip work.
func TestSegmentOptimalityBruteForce(t *testing.T) {
	cases := [][]float64{
		{0.1, 0.1, 0.9, 0.9, 0.1},
		{0.5, 0.5, 0.5, 0.5, 0.5, 0.5},
		{0, 1, 0, 1, 0, 1},
		{0.2, 0.21, 0.19, 0.8, 0.82, 0.78, 0.2, 0.18},
	}
	for _, x := range cases {
		for _, beta := range []float64{0.001, 0.01, 0.1, 1} {
			got := peltCost(x, pelt(x, beta), beta)
			best := math.Inf(1)
			n := len(x)
			// Enumerate segmentations as bitmasks of interior boundaries.
			for mask := 0; mask < 1<<(n-1); mask++ {
				var bounds []int
				for i := 0; i < n-1; i++ {
					if mask&(1<<i) != 0 {
						bounds = append(bounds, i+1)
					}
				}
				bounds = append(bounds, n)
				if c := peltCost(x, bounds, beta); c < best {
					best = c
				}
			}
			if math.Abs(got-best) > 1e-9 {
				t.Errorf("x=%v beta=%g: pelt cost %g, brute force %g", x, beta, got, best)
			}
		}
	}
}

// peltCost evaluates a segmentation's penalized cost under the same L2
// objective pelt minimizes.
func peltCost(x []float64, bounds []int, beta float64) float64 {
	total := 0.0
	prev := 0
	for _, b := range bounds {
		mean := 0.0
		for i := prev; i < b; i++ {
			mean += x[i]
		}
		mean /= float64(b - prev)
		for i := prev; i < b; i++ {
			d := x[i] - mean
			total += d * d
		}
		total += beta
		prev = b
	}
	return total - beta // pelt charges beta per change point, not per segment
}
