package temporal

import (
	"math"
	"testing"

	"loadimb/internal/trace"
)

func TestMergeOffsetsRanks(t *testing.T) {
	a := &Series{Window: 1, Procs: 2, Windows: []WindowVector{
		{Index: 0, Events: 2, ProcSeconds: []float64{0.5, 0.25}},
		{Index: 2, Events: 1, ProcSeconds: []float64{0, 0.75}},
	}}
	b := &Series{Window: 1, Procs: 3, Windows: []WindowVector{
		{Index: 0, Events: 1, ProcSeconds: []float64{0.1, 0.2, 0.3}},
	}}
	got, err := Merge([]JobWindows{{Series: a}, {Series: b}})
	if err != nil {
		t.Fatal(err)
	}
	if got.Procs != 5 || got.Window != 1 {
		t.Fatalf("merged procs=%d window=%g, want 5 and 1", got.Procs, got.Window)
	}
	if len(got.Windows) != 2 {
		t.Fatalf("%d windows, want 2", len(got.Windows))
	}
	w0 := got.Windows[0]
	if w0.Index != 0 || w0.Events != 3 {
		t.Errorf("window 0 = %+v", w0)
	}
	wantBusy := []float64{0.5, 0.25, 0.1, 0.2, 0.3}
	for p, v := range w0.ProcSeconds {
		if v != wantBusy[p] {
			t.Errorf("window 0 rank %d = %g, want %g", p, v, wantBusy[p])
		}
	}
	w2 := got.Windows[1]
	if w2.Index != 2 || w2.Events != 1 {
		t.Errorf("window 2 = %+v", w2)
	}
	if w2.ProcSeconds[1] != 0.75 || w2.ProcSeconds[4] != 0 {
		t.Errorf("window 2 busy = %v", w2.ProcSeconds)
	}
}

// TestMergeResamplesMixedWidths: jobs configured with different -window
// values used to make the whole federation tree error out. Commensurable
// widths now merge at their coarsest common multiple — each narrow
// window summing into the merged window covering it — so here the
// 0.5s-window job's windows 0..3 fold pairwise into 1s windows 0..1 and
// align with the 1s-window job.
func TestMergeResamplesMixedWidths(t *testing.T) {
	a := &Series{Window: 1, Procs: 1, Windows: []WindowVector{
		{Index: 0, Events: 1, ProcSeconds: []float64{1}},
		{Index: 1, Events: 1, ProcSeconds: []float64{2}},
	}}
	b := &Series{Window: 0.5, Procs: 1, Windows: []WindowVector{
		{Index: 0, Events: 1, ProcSeconds: []float64{0.1}},
		{Index: 1, Events: 1, ProcSeconds: []float64{0.2}},
		{Index: 2, Events: 1, ProcSeconds: []float64{0.3}},
		{Index: 3, Events: 1, ProcSeconds: []float64{0.4}},
	}}
	got, err := Merge([]JobWindows{{Series: a}, {Series: b}})
	if err != nil {
		t.Fatal(err)
	}
	if got.Window != 1 || got.Procs != 2 {
		t.Fatalf("merged window=%g procs=%d, want 1 and 2", got.Window, got.Procs)
	}
	if len(got.Windows) != 2 {
		t.Fatalf("%d windows, want 2", len(got.Windows))
	}
	w0, w1 := got.Windows[0], got.Windows[1]
	if w0.Index != 0 || w0.Events != 3 || w0.ProcSeconds[0] != 1 || math.Abs(w0.ProcSeconds[1]-0.3) > 1e-12 {
		t.Errorf("window 0 = %+v", w0)
	}
	if w1.Index != 1 || w1.Events != 3 || w1.ProcSeconds[0] != 2 || math.Abs(w1.ProcSeconds[1]-0.7) > 1e-12 {
		t.Errorf("window 1 = %+v", w1)
	}
}

// TestMergeRejectsNonCommensurableWidths: widths with no common multiple
// cover incompatible intervals; resampling cannot align them, and the
// merge must still say so rather than fabricate a timeline.
func TestMergeRejectsNonCommensurableWidths(t *testing.T) {
	a := &Series{Window: 1, Procs: 1}
	b := &Series{Window: math.Sqrt2, Procs: 1}
	if _, err := Merge([]JobWindows{{Series: a}, {Series: b}}); err == nil {
		t.Error("non-commensurable window widths accepted")
	}
	if _, err := Merge(nil); err == nil {
		t.Error("empty job list accepted")
	}
}

// TestMergeResampleAgreesWithCoarseFold is the resampling oracle: fold
// the same log twice, at 0.25s and at 1s, merge the fine series with a
// procless placeholder, and the fine series resampled by Merge must
// agree with the directly folded coarse series window by window.
func TestMergeResampleAgreesWithCoarseFold(t *testing.T) {
	log := synthLog(4, 600, 12345)
	fine := foldLog(t, log, Options{Window: 0.25, PerActivity: true, PerRegion: true})
	coarse := foldLog(t, log, Options{Window: 1, PerActivity: true, PerRegion: true})
	got, err := Merge([]JobWindows{
		{Series: fine},
		{Series: &Series{Window: 1, Procs: 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Window != 1 {
		t.Fatalf("merged window = %g, want 1", got.Window)
	}
	if len(got.Windows) != len(coarse.Windows) {
		t.Fatalf("%d merged windows, want %d", len(got.Windows), len(coarse.Windows))
	}
	for i := range got.Windows {
		g, w := got.Windows[i], coarse.Windows[i]
		// Events is not compared: the fold clips events at window
		// boundaries, so an event spanning three fine windows counts three
		// times in the fine series but once in the direct coarse fold.
		// Busy time is what resampling preserves exactly.
		if g.Index != w.Index {
			t.Fatalf("window %d: got index=%d, want index=%d", i, g.Index, w.Index)
		}
		for p := range w.ProcSeconds {
			if math.Abs(g.ProcSeconds[p]-w.ProcSeconds[p]) > 1e-9 {
				t.Errorf("window %d rank %d: %g vs %g", g.Index, p, g.ProcSeconds[p], w.ProcSeconds[p])
			}
		}
	}
}

// TestMergeNilSeriesAdvancesOffset: a job whose windows could not be
// scraped still occupies its rank slots, keeping later jobs aligned with
// the rank offsets trace.Federate applies to the cubes.
func TestMergeNilSeriesAdvancesOffset(t *testing.T) {
	b := &Series{Window: 1, Procs: 2, Windows: []WindowVector{
		{Index: 0, Events: 1, ProcSeconds: []float64{0.5, 0.5}},
	}}
	got, err := Merge([]JobWindows{{Procs: 3}, {Procs: 2, Series: b}})
	if err != nil {
		t.Fatal(err)
	}
	if got.Procs != 5 {
		t.Fatalf("merged procs = %d, want 5", got.Procs)
	}
	w := got.Windows[0]
	want := []float64{0, 0, 0, 0.5, 0.5}
	for p, v := range w.ProcSeconds {
		if v != want[p] {
			t.Errorf("rank %d = %g, want %g", p, v, want[p])
		}
	}
}

// TestMergeRejectsOverlongVectors: an explicit Procs below the vector
// length used to clip the vector silently, discarding rank 2's 3 busy
// seconds here without a trace. Inconsistent endpoint data must surface
// as an error instead — spilling into the next job's rank space would
// corrupt its processors, and dropping load would understate the very
// imbalance being measured.
func TestMergeRejectsOverlongVectors(t *testing.T) {
	a := &Series{Window: 1, Procs: 3, Windows: []WindowVector{
		{Index: 0, Events: 1, ProcSeconds: []float64{1, 2, 3}},
	}}
	b := &Series{Window: 1, Procs: 1, Windows: []WindowVector{
		{Index: 0, Events: 1, ProcSeconds: []float64{9}},
	}}
	if _, err := Merge([]JobWindows{{Procs: 2, Series: a}, {Series: b}}); err == nil {
		t.Fatal("nonzero busy time beyond the declared processor count merged without error")
	}
	// A tail of exact zeros is mere padding, not dropped load: trimming
	// it is safe and keeps a job that over-allocated its vectors mergeable.
	a.Windows[0].ProcSeconds[2] = 0
	got, err := Merge([]JobWindows{{Procs: 2, Series: a}, {Series: b}})
	if err != nil {
		t.Fatal(err)
	}
	if got.Procs != 3 {
		t.Fatalf("merged procs = %d, want 3", got.Procs)
	}
	want := []float64{1, 2, 9}
	for p, v := range got.Windows[0].ProcSeconds {
		if v != want[p] {
			t.Errorf("rank %d = %g, want %g", p, v, want[p])
		}
	}
}

// TestMergeAgreesWithWholeLogFold is the federation agreement property:
// splitting a run's log by rank prefix into per-"job" logs, folding each
// with its own rank space re-based to zero, and merging the series must
// reproduce the whole-log fold exactly — the same guarantee the
// federated /timeline.json makes against the live path.
func TestMergeAgreesWithWholeLogFold(t *testing.T) {
	var whole trace.Log
	events := []trace.Event{
		{Rank: 0, Region: "r", Activity: "a", Start: 0, End: 1.3},
		{Rank: 1, Region: "r", Activity: "b", Start: 0.4, End: 2.0},
		{Rank: 2, Region: "r", Activity: "a", Start: 0.2, End: 0.2},
		{Rank: 2, Region: "r", Activity: "a", Start: 1.1, End: 3.05},
		{Rank: 3, Region: "r", Activity: "b", Start: 2.5, End: 2.5},
		{Rank: 4, Region: "r", Activity: "a", Start: 0.9, End: 2.7},
	}
	for _, e := range events {
		if err := whole.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	const window = 0.7
	want, err := FoldLog(&whole, Options{Window: window})
	if err != nil {
		t.Fatal(err)
	}

	// Split ranks {0,1} to job A, {2,3,4} to job B, each re-based to its
	// own rank zero, exactly how independent jobs would record them.
	var jobA, jobB trace.Log
	for _, e := range events {
		if e.Rank < 2 {
			if err := jobA.Append(e); err != nil {
				t.Fatal(err)
			}
		} else {
			e.Rank -= 2
			if err := jobB.Append(e); err != nil {
				t.Fatal(err)
			}
		}
	}
	serA, err := FoldLog(&jobA, Options{Window: window})
	if err != nil {
		t.Fatal(err)
	}
	serB, err := FoldLog(&jobB, Options{Window: window})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Merge([]JobWindows{
		{Procs: 2, Series: serA},
		{Procs: 3, Series: serB},
	})
	if err != nil {
		t.Fatal(err)
	}

	if got.Procs != want.Procs || got.Window != want.Window {
		t.Fatalf("merged procs=%d window=%g, want %d and %g",
			got.Procs, got.Window, want.Procs, want.Window)
	}
	if len(got.Windows) != len(want.Windows) {
		t.Fatalf("%d windows, want %d", len(got.Windows), len(want.Windows))
	}
	for i, gw := range got.Windows {
		ww := want.Windows[i]
		if gw.Index != ww.Index || gw.Events != ww.Events {
			t.Errorf("window %d = idx %d events %d, want idx %d events %d",
				i, gw.Index, gw.Events, ww.Index, ww.Events)
		}
		for p, v := range gw.ProcSeconds {
			if v != ww.ProcSeconds[p] { // identical, not approximately
				t.Errorf("window %d rank %d = %g, want %g", gw.Index, p, v, ww.ProcSeconds[p])
			}
		}
	}

	// The trajectories computed from both series agree too.
	gs, ws := got.Stats(), want.Stats()
	for i := range gs {
		gID, wID := gs[i].ID, ws[i].ID
		switch {
		case (gID == nil) != (wID == nil):
			t.Errorf("window %d ID nilness differs", gs[i].Index)
		case gID != nil && math.Abs(*gID-*wID) > 1e-12:
			t.Errorf("window %d ID = %g, want %g", gs[i].Index, *gID, *wID)
		}
	}
}
