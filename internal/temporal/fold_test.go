package temporal

import (
	"math"
	"testing"

	"loadimb/internal/stats"
	"loadimb/internal/trace"
)

// oracleFold is the window-accumulation logic internal/monitor's
// foldState carried before the refactor onto this package, kept
// verbatim as a test oracle: the shared Fold must reproduce it bit for
// bit on every input the monitor accepts (nonnegative rank and start,
// nonnegative duration).
type oracleFold struct {
	procs   int
	windows map[int]*oracleAcc
}

type oracleAcc struct {
	procSeconds []float64
	events      int
}

func newOracleFold() *oracleFold {
	return &oracleFold{windows: make(map[int]*oracleAcc)}
}

func (s *oracleFold) fold(e trace.Event, window float64) {
	if e.Rank >= s.procs {
		s.procs = e.Rank + 1
	}
	d := e.End - e.Start
	if window <= 0 {
		return
	}
	if d == 0 {
		w := int(e.Start / window)
		if e.Start == float64(w)*window {
			return
		}
		acc := s.window(w)
		for len(acc.procSeconds) <= e.Rank {
			acc.procSeconds = append(acc.procSeconds, 0)
		}
		acc.events++
		return
	}
	first := int(e.Start / window)
	last := int(e.End / window)
	if e.End == float64(last)*window && last > first {
		last--
	}
	for w := first; w <= last; w++ {
		lo, hi := float64(w)*window, float64(w+1)*window
		if e.Start > lo {
			lo = e.Start
		}
		if e.End < hi {
			hi = e.End
		}
		if hi <= lo {
			continue
		}
		acc := s.window(w)
		for len(acc.procSeconds) <= e.Rank {
			acc.procSeconds = append(acc.procSeconds, 0)
		}
		acc.procSeconds[e.Rank] += hi - lo
		acc.events++
	}
}

func (s *oracleFold) window(w int) *oracleAcc {
	acc, ok := s.windows[w]
	if !ok {
		acc = &oracleAcc{}
		s.windows[w] = acc
	}
	return acc
}

// checkAgainstOracle folds the events through both implementations and
// requires bit-identical per-window vectors and event counts.
func checkAgainstOracle(t *testing.T, events []trace.Event, window float64) {
	t.Helper()
	f := NewFold(Options{Window: window})
	o := newOracleFold()
	for _, e := range events {
		f.Add(e)
		o.fold(e, window)
	}
	if f.Procs() != o.procs {
		t.Fatalf("procs = %d, oracle %d", f.Procs(), o.procs)
	}
	ser := f.Series()
	if len(ser.Windows) != len(o.windows) {
		t.Fatalf("%d windows, oracle %d", len(ser.Windows), len(o.windows))
	}
	for _, v := range ser.Windows {
		acc, ok := o.windows[v.Index]
		if !ok {
			t.Fatalf("window %d missing from oracle", v.Index)
		}
		if v.Events != acc.events {
			t.Errorf("window %d events = %d, oracle %d", v.Index, v.Events, acc.events)
		}
		for p, got := range v.ProcSeconds {
			want := 0.0
			if p < len(acc.procSeconds) {
				want = acc.procSeconds[p]
			}
			if got != want { // bit-identical, not approximately equal
				t.Errorf("window %d rank %d busy = %g, oracle %g", v.Index, p, got, want)
			}
		}
	}
}

func TestFoldMatchesOracleOnBoundaryShapes(t *testing.T) {
	events := []trace.Event{
		{Rank: 0, Region: "r", Activity: "a", Start: 0.5, End: 0.5},   // zero-duration, mid-window
		{Rank: 0, Region: "r", Activity: "a", Start: 1, End: 1},       // zero-duration, on a boundary: no window
		{Rank: 0, Region: "r", Activity: "a", Start: 0.25, End: 1},    // ends exactly on a boundary
		{Rank: 1, Region: "r", Activity: "a", Start: 1, End: 2},       // covers window 1 exactly
		{Rank: 0, Region: "r", Activity: "a", Start: 1.5, End: 4.75},  // spans windows 1..4
		{Rank: 2, Region: "r", Activity: "b", Start: 0, End: 3},       // spans 0..2, both ends on boundaries
		{Rank: 1, Region: "r", Activity: "a", Start: 4.25, End: 4.25}, // zero-duration in the last window
		{Rank: 5, Region: "r", Activity: "a", Start: 0.1, End: 0.2},   // rank gap: ranks 3, 4 stay idle
	}
	checkAgainstOracle(t, events, 1.0)
	checkAgainstOracle(t, events, 0.3)
	checkAgainstOracle(t, events, 10) // everything in window 0
}

// TestFoldMatchesLogWindowOracle asserts the fold against the offline
// Log.Window clipping: for every produced window, slicing the log to
// the window's bounds and summing durations per rank must give the same
// busy vector and event count.
func TestFoldMatchesLogWindowOracle(t *testing.T) {
	var lg trace.Log
	shapes := []trace.Event{
		{Rank: 0, Region: "r1", Activity: "a", Start: 0, End: 0.7},
		{Rank: 1, Region: "r1", Activity: "b", Start: 0.2, End: 2.6},
		{Rank: 2, Region: "r2", Activity: "a", Start: 0.8, End: 0.8},
		{Rank: 0, Region: "r2", Activity: "b", Start: 1.2, End: 1.2},
		{Rank: 3, Region: "r1", Activity: "a", Start: 2.4, End: 5.601},
		{Rank: 1, Region: "r2", Activity: "a", Start: 4.8, End: 4.8000001},
	}
	for _, e := range shapes {
		if err := lg.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	const window = 0.8
	ser, err := FoldLog(&lg, Options{Window: window})
	if err != nil {
		t.Fatal(err)
	}
	if ser.Procs != lg.Ranks() {
		t.Fatalf("series procs = %d, want %d", ser.Procs, lg.Ranks())
	}
	span := lg.Span()
	for w := 0; float64(w)*window < span; w++ {
		from, to := float64(w)*window, float64(w+1)*window
		oracle, err := lg.Window(from, to)
		if err != nil {
			t.Fatal(err)
		}
		var got *WindowVector
		for i := range ser.Windows {
			if ser.Windows[i].Index == w {
				got = &ser.Windows[i]
			}
		}
		if got == nil {
			if oracle.Len() != 0 {
				t.Errorf("window %d missing: oracle holds %d events", w, oracle.Len())
			}
			continue
		}
		if got.Events != oracle.Len() {
			t.Errorf("window %d events = %d, oracle %d", w, got.Events, oracle.Len())
		}
		perRank := make([]float64, lg.Ranks())
		oracle.Each(func(e trace.Event) { perRank[e.Rank] += e.Duration() })
		for p := range perRank {
			if math.Abs(got.ProcSeconds[p]-perRank[p]) > 1e-12 {
				t.Errorf("window %d rank %d busy = %g, oracle %g", w, p, got.ProcSeconds[p], perRank[p])
			}
		}
	}
}

// FuzzFoldOracle drives the shared fold against the pre-refactor
// foldState logic with generated event batches: identical windows,
// identical bits.
func FuzzFoldOracle(f *testing.F) {
	f.Add(uint64(1), 8, 1.0)
	f.Add(uint64(42), 100, 0.125)
	f.Add(uint64(7), 3, 3.7)
	f.Fuzz(func(t *testing.T, seed uint64, n int, window float64) {
		if n <= 0 || n > 512 {
			t.Skip()
		}
		if !(window > 1e-9) || window > 1e6 || math.IsInf(window, 0) || math.IsNaN(window) {
			t.Skip()
		}
		rng := seed
		next := func() float64 {
			// xorshift64*, plenty for shape generation.
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			return float64(rng%1_000_000) / 1_000_000
		}
		events := make([]trace.Event, 0, n)
		for i := 0; i < n; i++ {
			start := next() * 20
			dur := next() * 5
			switch int(rng % 5) {
			case 0:
				dur = 0 // zero-duration
			case 1:
				start = math.Floor(start/window) * window // start on a boundary
			case 2:
				end := math.Ceil((start+dur)/window) * window // end on a boundary
				if end > start {
					dur = end - start
				}
			}
			events = append(events, trace.Event{
				Rank:     int(rng % 17),
				Region:   "r",
				Activity: []string{"a", "b", "c"}[rng%3],
				Start:    start,
				End:      start + dur,
			})
		}
		checkAgainstOracle(t, events, window)
	})
}

func TestFoldActivityFilter(t *testing.T) {
	var lg trace.Log
	for _, e := range []trace.Event{
		{Rank: 0, Region: "r", Activity: "compute", Start: 0, End: 1},
		{Rank: 1, Region: "r", Activity: "wait", Start: 0, End: 1},
		{Rank: 2, Region: "r", Activity: "wait", Start: 0.5, End: 1},
	} {
		if err := lg.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	ser, err := FoldLog(&lg, Options{Window: 1, Activities: []string{"compute"}})
	if err != nil {
		t.Fatal(err)
	}
	// Filtered-out events still define the rank space.
	if ser.Procs != 3 {
		t.Fatalf("procs = %d, want 3", ser.Procs)
	}
	if len(ser.Windows) != 1 {
		t.Fatalf("%d windows, want 1", len(ser.Windows))
	}
	want := []float64{1, 0, 0}
	for p, v := range ser.Windows[0].ProcSeconds {
		if v != want[p] {
			t.Errorf("rank %d busy = %g, want %g", p, v, want[p])
		}
	}
	sts := ser.Stats()
	if sts[0].ID == nil {
		t.Fatal("ID undefined for a busy window")
	}
	wantID, err := stats.EuclideanFromBalance(want)
	if err != nil {
		t.Fatal(err)
	}
	if *sts[0].ID != wantID {
		t.Errorf("ID = %g, want %g", *sts[0].ID, wantID)
	}
}

func TestFoldTracksDominantActivity(t *testing.T) {
	var lg trace.Log
	for _, e := range []trace.Event{
		{Rank: 0, Region: "r", Activity: "compute", Start: 0, End: 0.9},
		{Rank: 0, Region: "r", Activity: "wait", Start: 0.9, End: 1.0},
		{Rank: 1, Region: "r", Activity: "wait", Start: 1.0, End: 2.0},
	} {
		if err := lg.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	ser, err := FoldLog(&lg, Options{Window: 1, TrackActivities: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := ser.Windows[0].Dominant; got != "compute" {
		t.Errorf("window 0 dominant = %q, want compute", got)
	}
	if got := ser.Windows[1].Dominant; got != "wait" {
		t.Errorf("window 1 dominant = %q, want wait", got)
	}
	sts := ser.Stats()
	if sts[0].Dominant != "compute" || sts[1].Dominant != "wait" {
		t.Errorf("stats dominants = %q, %q", sts[0].Dominant, sts[1].Dominant)
	}
}

// TestFoldNegativeStartFloors: the shared fold floors negative starts
// into the negative-index windows covering them instead of truncating
// them into window 0 — the bug that forced the monitor to reject
// negative starts at Record. The monitor still rejects them; offline
// logs may carry them.
func TestFoldNegativeStartFloors(t *testing.T) {
	f := NewFold(Options{Window: 1})
	f.Add(trace.Event{Rank: 0, Region: "r", Activity: "a", Start: -1.5, End: 0.5})
	ser := f.Series()
	if len(ser.Windows) != 3 {
		t.Fatalf("%d windows, want 3 (indices -2, -1, 0)", len(ser.Windows))
	}
	wantIdx := []int{-2, -1, 0}
	wantBusy := []float64{0.5, 1, 0.5}
	for i, v := range ser.Windows {
		if v.Index != wantIdx[i] {
			t.Errorf("window %d index = %d, want %d", i, v.Index, wantIdx[i])
		}
		if math.Abs(v.ProcSeconds[0]-wantBusy[i]) > 1e-12 {
			t.Errorf("window %d busy = %g, want %g", v.Index, v.ProcSeconds[0], wantBusy[i])
		}
	}
}

func TestSeriesStatsNullIDForIdleWindow(t *testing.T) {
	f := NewFold(Options{Window: 1})
	f.Add(trace.Event{Rank: 0, Region: "r", Activity: "a", Start: 0.5, End: 0.5})
	sts := f.Series().Stats()
	if len(sts) != 1 {
		t.Fatalf("%d windows, want 1", len(sts))
	}
	if sts[0].ID != nil {
		t.Errorf("all-idle window ID = %g, want null", *sts[0].ID)
	}
	if sts[0].Events != 1 || sts[0].Busy != 0 {
		t.Errorf("window = %+v, want 1 event and no busy time", sts[0])
	}
}

func TestFoldLogRejectsBadWindow(t *testing.T) {
	var lg trace.Log
	if _, err := FoldLog(&lg, Options{Window: 0}); err == nil {
		t.Error("window 0 accepted")
	}
	if _, err := FoldLog(nil, Options{Window: 1}); err == nil {
		t.Error("nil log accepted")
	}
}

// TestStatsMatchSummaries sanity-checks the trajectory arithmetic on a
// hand-computed example.
func TestStatsMatchSummaries(t *testing.T) {
	f := NewFold(Options{Window: 2})
	f.Add(trace.Event{Rank: 0, Region: "r", Activity: "a", Start: 0, End: 2})
	f.Add(trace.Event{Rank: 1, Region: "r", Activity: "a", Start: 0, End: 1})
	sts := f.Series().Stats()
	if len(sts) != 1 {
		t.Fatalf("%d windows, want 1", len(sts))
	}
	w := sts[0]
	if w.Busy != 3 {
		t.Errorf("busy = %g, want 3", w.Busy)
	}
	wantID, err := stats.EuclideanFromBalance([]float64{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if w.ID == nil || *w.ID != wantID {
		t.Errorf("ID = %v, want %g", w.ID, wantID)
	}
	if g := GiniOf([]float64{2, 1}); w.Gini != g {
		t.Errorf("gini = %g, want %g", w.Gini, g)
	}
}
