package temporal

import (
	"math"
	"sort"
)

// Phase labels returned by Segment.
const (
	// LabelIdle marks a phase whose windows recorded no busy time.
	LabelIdle = "idle"
	// LabelQuiet marks a phase whose mean ID is below the trajectory
	// mean — the balanced stretches of the run.
	LabelQuiet = "quiet"
	// LabelHot marks a phase whose mean ID is at or above the
	// trajectory mean — the stretches the whole-run indices dilute.
	LabelHot = "hot"
)

// Phase is one segment of a trajectory: a maximal run of windows whose
// imbalance level is homogeneous under the penalized change-point fit.
type Phase struct {
	// FirstWindow and LastWindow are the window indices of the phase's
	// first and last member windows (inclusive).
	FirstWindow, LastWindow int
	// Start and End are the phase's virtual-time bounds: the start of
	// the first member window and the end of the last.
	Start, End float64
	// Windows is the number of non-empty member windows.
	Windows int
	// MeanID is the mean of the member windows' IDs; windows with an
	// undefined (all-idle) ID count as zero.
	MeanID float64
	// Label classifies the phase relative to the whole trajectory:
	// LabelIdle, LabelQuiet or LabelHot.
	Label string
}

// Segment groups a trajectory's windows into phases with PELT-style
// change-point detection (Killick, Fearnhead, Eckley 2012): it minimizes
// the sum over segments of the within-segment squared deviation of the
// ID values from the segment mean, plus penalty per change point, with
// the pruned dynamic program that makes the exact optimum effectively
// linear-time. A penalty <= 0 selects a BIC-style default, 2·σ̂²·log n,
// with σ̂² estimated from the first differences of the trajectory so
// slow trends do not inflate it.
//
// Windows with a null ID enter the cost as zero — an idle window is its
// own regime, and the segmentation separates it just like any other
// level shift. The stats slice must be in ascending window order (as
// Series.Stats returns it); gaps between non-empty windows are allowed
// and stay interior to whichever phase spans them.
func Segment(stats []WindowStat, penalty float64) []Phase {
	n := len(stats)
	if n == 0 {
		return nil
	}
	x := make([]float64, n)
	for i, w := range stats {
		if w.ID != nil {
			x[i] = *w.ID
		}
	}
	return phasesFromBounds(stats, x, pelt(x, penalty))
}

// phasesFromBounds turns a segmentation's exclusive end positions into
// labeled phases; it is shared by the offline Segment and the streaming
// StreamSegmenter so both paths label identically. The hot/quiet
// threshold is the mean ID over the windows whose ID is defined: an
// all-idle window has no load to disperse, and averaging it in as zero
// would deflate the threshold on idle-heavy runs until balanced stretches
// read as hot.
func phasesFromBounds(stats []WindowStat, x []float64, bounds []int) []Phase {
	overall, defined := 0.0, 0
	for i, w := range stats {
		if w.ID != nil {
			overall += x[i]
			defined++
		}
	}
	if defined > 0 {
		overall /= float64(defined)
	}
	phases := make([]Phase, 0, len(bounds))
	prev := 0
	for _, b := range bounds {
		ph := Phase{
			FirstWindow: stats[prev].Index,
			LastWindow:  stats[b-1].Index,
			Start:       stats[prev].Start,
			End:         stats[b-1].End,
			Windows:     b - prev,
		}
		idle := true
		for i := prev; i < b; i++ {
			ph.MeanID += x[i]
			if stats[i].Busy > 0 {
				idle = false
			}
		}
		ph.MeanID /= float64(ph.Windows)
		switch {
		case idle:
			ph.Label = LabelIdle
		case ph.MeanID >= overall && ph.MeanID > 0:
			ph.Label = LabelHot
		default:
			ph.Label = LabelQuiet
		}
		phases = append(phases, ph)
		prev = b
	}
	return phases
}

// pelt returns the exclusive end positions of the optimal segments of x
// under an L2 cost with the given per-change-point penalty.
func pelt(x []float64, penalty float64) []int {
	n := len(x)
	// Prefix sums make any segment's squared-deviation cost O(1).
	s1 := make([]float64, n+1)
	s2 := make([]float64, n+1)
	for i, v := range x {
		s1[i+1] = s1[i] + v
		s2[i+1] = s2[i] + v*v
	}
	cost := func(a, b int) float64 {
		m := float64(b - a)
		d := s1[b] - s1[a]
		c := s2[b] - s2[a] - d*d/m
		if c < 0 {
			return 0 // cancellation noise on constant stretches
		}
		return c
	}
	beta := penalty
	if beta <= 0 {
		beta = defaultPenalty(sortedAbsDiffs(x), s1[n], s2[n], n)
	}
	// F[t] is the optimal penalized cost of x[:t]; cands holds the
	// change-point candidates PELT has not pruned.
	f := make([]float64, n+1)
	last := make([]int, n+1)
	f[0] = -beta
	cands := make([]int, 1, n+1)
	for t := 1; t <= n; t++ {
		best, arg := math.Inf(1), 0
		for _, s := range cands {
			if v := f[s] + cost(s, t) + beta; v < best {
				best, arg = v, s
			}
		}
		f[t] = best
		last[t] = arg
		keep := cands[:0]
		for _, s := range cands {
			// Standard PELT pruning: a candidate whose cost already
			// exceeds the optimum can never participate in a future
			// optimum (the L2 cost is concatenation-subadditive).
			if f[s]+cost(s, t) <= f[t] {
				keep = append(keep, s)
			}
		}
		cands = append(keep, t)
	}
	var bounds []int
	for t := n; t > 0; t = last[t] {
		bounds = append(bounds, t)
	}
	sort.Ints(bounds)
	return bounds
}

// sortedAbsDiffs returns the absolute first differences of x in
// ascending order — the multiset the automatic penalty estimates its
// noise scale from.
func sortedAbsDiffs(x []float64) []float64 {
	if len(x) < 2 {
		return nil
	}
	diffs := make([]float64, 0, len(x)-1)
	for i := 1; i < len(x); i++ {
		diffs = append(diffs, math.Abs(x[i]-x[i-1]))
	}
	sort.Float64s(diffs)
	return diffs
}

// varPenaltyFraction scales the variance-based penalty floor used when
// the median absolute difference is zero. In that regime the signal is
// piecewise constant, a k-cut segmentation fits it exactly, and the
// split-vs-merge decision reduces to k·c ≶ n (gain n·var against cost
// k·c·var): noise blips of density ρ need ~2ρn cuts and are absorbed
// when c > 1/(2ρ), while genuine level shifts need only one cut per
// regime and split whenever regimes average more than c windows. c = 4
// absorbs blips down to ~12% density and still resolves phases as short
// as a handful of windows.
const varPenaltyFraction = 4.0

// defaultPenalty is the BIC-style 2·σ̂²·log n with the noise variance
// estimated from first differences: under a piecewise-constant signal
// the differences are pure noise (variance 2σ²) except at the few
// change points, which the median absolute difference shrugs off.
//
// When the median absolute difference is zero — any trajectory where
// more than half the windows repeat their neighbour's value, common for
// constant or idle-heavy stretches — the MAD estimate degenerates and a
// near-zero penalty would cut a phase at every noise blip. The fallback
// is a scale-aware floor, a fraction of the trajectory's variance
// (computed from the DP's own prefix sums s1n = Σx, s2n = Σx², so the
// offline and streaming paths agree bit for bit).
func defaultPenalty(diffs []float64, s1n, s2n float64, n int) float64 {
	if n < 2 {
		return 1e-12
	}
	mad := diffs[len(diffs)/2]
	if mad > 0 {
		// σ ≈ MAD / (Φ⁻¹(3/4)·√2) for Gaussian differences.
		sigma := mad / (0.6744897501960817 * math.Sqrt2)
		if beta := 2 * sigma * sigma * math.Log(float64(n)); beta > 0 {
			return beta
		}
		return 1e-12
	}
	variance := (s2n - s1n*s1n/float64(n)) / float64(n)
	if beta := varPenaltyFraction * variance; beta > 0 {
		return beta
	}
	return 1e-12
}
