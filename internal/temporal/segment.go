package temporal

import (
	"math"
	"sort"
)

// Phase labels returned by Segment.
const (
	// LabelIdle marks a phase whose windows recorded no busy time.
	LabelIdle = "idle"
	// LabelQuiet marks a phase whose mean ID is below the trajectory
	// mean — the balanced stretches of the run.
	LabelQuiet = "quiet"
	// LabelHot marks a phase whose mean ID is at or above the
	// trajectory mean — the stretches the whole-run indices dilute.
	LabelHot = "hot"
)

// Phase is one segment of a trajectory: a maximal run of windows whose
// imbalance level is homogeneous under the penalized change-point fit.
type Phase struct {
	// FirstWindow and LastWindow are the window indices of the phase's
	// first and last member windows (inclusive).
	FirstWindow, LastWindow int
	// Start and End are the phase's virtual-time bounds: the start of
	// the first member window and the end of the last.
	Start, End float64
	// Windows is the number of non-empty member windows.
	Windows int
	// MeanID is the mean of the member windows' IDs; windows with an
	// undefined (all-idle) ID count as zero.
	MeanID float64
	// Label classifies the phase relative to the whole trajectory:
	// LabelIdle, LabelQuiet or LabelHot.
	Label string
}

// Segment groups a trajectory's windows into phases with PELT-style
// change-point detection (Killick, Fearnhead, Eckley 2012): it minimizes
// the sum over segments of the within-segment squared deviation of the
// ID values from the segment mean, plus penalty per change point, with
// the pruned dynamic program that makes the exact optimum effectively
// linear-time. A penalty <= 0 selects a BIC-style default, 2·σ̂²·log n,
// with σ̂² estimated from the first differences of the trajectory so
// slow trends do not inflate it.
//
// Windows with a null ID enter the cost as zero — an idle window is its
// own regime, and the segmentation separates it just like any other
// level shift. The stats slice must be in ascending window order (as
// Series.Stats returns it); gaps between non-empty windows are allowed
// and stay interior to whichever phase spans them.
func Segment(stats []WindowStat, penalty float64) []Phase {
	n := len(stats)
	if n == 0 {
		return nil
	}
	x := make([]float64, n)
	for i, w := range stats {
		if w.ID != nil {
			x[i] = *w.ID
		}
	}
	bounds := pelt(x, penalty)
	overall := 0.0
	for _, v := range x {
		overall += v
	}
	overall /= float64(n)
	phases := make([]Phase, 0, len(bounds))
	prev := 0
	for _, b := range bounds {
		ph := Phase{
			FirstWindow: stats[prev].Index,
			LastWindow:  stats[b-1].Index,
			Start:       stats[prev].Start,
			End:         stats[b-1].End,
			Windows:     b - prev,
		}
		idle := true
		for i := prev; i < b; i++ {
			ph.MeanID += x[i]
			if stats[i].Busy > 0 {
				idle = false
			}
		}
		ph.MeanID /= float64(ph.Windows)
		switch {
		case idle:
			ph.Label = LabelIdle
		case ph.MeanID >= overall && ph.MeanID > 0:
			ph.Label = LabelHot
		default:
			ph.Label = LabelQuiet
		}
		phases = append(phases, ph)
		prev = b
	}
	return phases
}

// pelt returns the exclusive end positions of the optimal segments of x
// under an L2 cost with the given per-change-point penalty.
func pelt(x []float64, penalty float64) []int {
	n := len(x)
	// Prefix sums make any segment's squared-deviation cost O(1).
	s1 := make([]float64, n+1)
	s2 := make([]float64, n+1)
	for i, v := range x {
		s1[i+1] = s1[i] + v
		s2[i+1] = s2[i] + v*v
	}
	cost := func(a, b int) float64 {
		m := float64(b - a)
		d := s1[b] - s1[a]
		c := s2[b] - s2[a] - d*d/m
		if c < 0 {
			return 0 // cancellation noise on constant stretches
		}
		return c
	}
	beta := penalty
	if beta <= 0 {
		beta = defaultPenalty(x)
	}
	// F[t] is the optimal penalized cost of x[:t]; cands holds the
	// change-point candidates PELT has not pruned.
	f := make([]float64, n+1)
	last := make([]int, n+1)
	f[0] = -beta
	cands := make([]int, 1, n+1)
	for t := 1; t <= n; t++ {
		best, arg := math.Inf(1), 0
		for _, s := range cands {
			if v := f[s] + cost(s, t) + beta; v < best {
				best, arg = v, s
			}
		}
		f[t] = best
		last[t] = arg
		keep := cands[:0]
		for _, s := range cands {
			// Standard PELT pruning: a candidate whose cost already
			// exceeds the optimum can never participate in a future
			// optimum (the L2 cost is concatenation-subadditive).
			if f[s]+cost(s, t) <= f[t] {
				keep = append(keep, s)
			}
		}
		cands = append(keep, t)
	}
	var bounds []int
	for t := n; t > 0; t = last[t] {
		bounds = append(bounds, t)
	}
	sort.Ints(bounds)
	return bounds
}

// defaultPenalty is the BIC-style 2·σ̂²·log n with the noise variance
// estimated from first differences: under a piecewise-constant signal
// the differences are pure noise (variance 2σ²) except at the few
// change points, which the median absolute difference shrugs off.
func defaultPenalty(x []float64) float64 {
	n := len(x)
	if n < 2 {
		return 1e-12
	}
	diffs := make([]float64, 0, n-1)
	for i := 1; i < n; i++ {
		diffs = append(diffs, math.Abs(x[i]-x[i-1]))
	}
	sort.Float64s(diffs)
	mad := diffs[len(diffs)/2]
	// σ ≈ MAD / (Φ⁻¹(3/4)·√2) for Gaussian differences.
	sigma := mad / (0.6744897501960817 * math.Sqrt2)
	beta := 2 * sigma * sigma * math.Log(float64(n))
	if beta <= 0 {
		return 1e-12
	}
	return beta
}
