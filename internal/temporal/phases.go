package temporal

import (
	"fmt"

	"loadimb/internal/core"
	"loadimb/internal/stats"
	"loadimb/internal/trace"
)

// PhaseReport is one phase of a run together with the paper's full
// index set computed over just that phase: the same cube-and-analysis
// pair the whole-run toolchain produces, so every downstream consumer —
// tables, drill-down, tuning-candidate ranking — runs per phase
// unchanged.
type PhaseReport struct {
	Phase
	// Cube is the phase's measurement cube: the run's events clipped to
	// [Start, End) and re-based to the phase start, so the phase's
	// program time is its own duration, not the run's.
	Cube *trace.Cube
	// Analysis is the complete methodology run on Cube.
	Analysis *core.Analysis
	// IDP is the phase's overall processor imbalance: the ID of the
	// per-processor total instrumented times within the phase. It is
	// nil when the phase has no instrumented time. Comparing it against
	// the run-wide value shows what the whole-run index averages away.
	IDP *float64
	// Gini is the Gini coefficient of the same per-processor totals.
	Gini float64
}

// AnalyzePhases runs the full methodology on each phase of a log: the
// phase's events are sliced out with the Log.Window clipping oracle,
// re-based to the phase start and aggregated with the whole log's
// region and activity orders, so tables from different phases share one
// layout. The cluster count of opts applies per phase; clustering is
// skipped automatically for phases visiting fewer regions.
func AnalyzePhases(lg *trace.Log, phases []Phase, opts core.AnalyzeOptions) ([]PhaseReport, error) {
	if lg == nil {
		return nil, fmt.Errorf("temporal: nil log")
	}
	// One stable dimension order and rank space across phases: tables
	// from different phases line up, and a processor idle for a whole
	// phase counts as zeros instead of vanishing.
	var regions, activities []string
	seenR := make(map[string]bool)
	seenA := make(map[string]bool)
	lg.Each(func(e trace.Event) {
		if !seenR[e.Region] {
			seenR[e.Region] = true
			regions = append(regions, e.Region)
		}
		if !seenA[e.Activity] {
			seenA[e.Activity] = true
			activities = append(activities, e.Activity)
		}
	})
	ranks := lg.Ranks()
	out := make([]PhaseReport, 0, len(phases))
	for _, ph := range phases {
		rep := PhaseReport{Phase: ph}
		win, err := lg.Window(ph.Start, ph.End)
		if err != nil {
			return nil, fmt.Errorf("temporal: phase [%g, %g): %w", ph.Start, ph.End, err)
		}
		if win.Len() == 0 {
			// A phase of all-idle windows (only zero-duration events)
			// can slice to nothing; report it without a cube.
			out = append(out, rep)
			continue
		}
		// Re-base to the phase start: the phase's wall clock is its own
		// duration, and shares t_i/T must be relative to it.
		var rebased trace.Log
		var appendErr error
		win.Each(func(e trace.Event) {
			if appendErr != nil {
				return
			}
			e.Start -= ph.Start
			e.End -= ph.Start
			appendErr = rebased.Append(e)
		})
		if appendErr != nil {
			return nil, fmt.Errorf("temporal: phase [%g, %g): %w", ph.Start, ph.End, appendErr)
		}
		cube, err := rebased.AggregateProcs(regions, activities, ranks)
		if err != nil {
			return nil, fmt.Errorf("temporal: phase [%g, %g): %w", ph.Start, ph.End, err)
		}
		analysis, err := core.Analyze(cube, opts)
		if err != nil {
			return nil, fmt.Errorf("temporal: phase [%g, %g): %w", ph.Start, ph.End, err)
		}
		rep.Cube = cube
		rep.Analysis = analysis
		totals := make([]float64, cube.NumProcs())
		for p := range totals {
			t, err := cube.ProcTotalTime(p)
			if err != nil {
				return nil, err
			}
			totals[p] = t
		}
		if id, err := stats.EuclideanFromBalance(totals); err == nil {
			rep.IDP = &id
		}
		rep.Gini = GiniOf(totals)
		out = append(out, rep)
	}
	return out, nil
}
