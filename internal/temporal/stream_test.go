package temporal

import (
	"math"
	"reflect"
	"testing"
)

// streamTrajectory is a workload-shaped trajectory for the streaming
// tests: quiet ramp-up with ripple, a hot plateau, an idle gap (NaN =
// all-idle window), and a quiet tail.
func streamTrajectory() []float64 {
	nan := math.NaN()
	var ids []float64
	ripple := []float64{0.004, -0.003, 0.001, -0.002, 0.005}
	for i := 0; i < 12; i++ {
		ids = append(ids, 0.07+ripple[i%len(ripple)])
	}
	for i := 0; i < 9; i++ {
		ids = append(ids, 0.55+ripple[(i+2)%len(ripple)])
	}
	ids = append(ids, nan, nan, nan)
	for i := 0; i < 10; i++ {
		ids = append(ids, 0.12+ripple[i%len(ripple)])
	}
	return ids
}

// TestStreamSegmenterMatchesOfflineOnEveryPrefix is the tentpole
// property: after feeding any prefix, the streaming segmenter's phases
// equal the offline Segment of that prefix — boundaries, labels, and
// float fields bit for bit — under both the automatic and an explicit
// penalty.
func TestStreamSegmenterMatchesOfflineOnEveryPrefix(t *testing.T) {
	stats := statsFromIDs(streamTrajectory())
	for _, penalty := range []float64{0, 0.05, 1e-6} {
		seg := NewStreamSegmenter(penalty)
		for i := range stats {
			seg.Append(stats[i])
			got := seg.Phases()
			want := Segment(stats[:i+1], penalty)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("penalty %g prefix %d:\nstream  %+v\noffline %+v",
					penalty, i+1, got, want)
			}
		}
		if seg.Len() != len(stats) {
			t.Errorf("penalty %g: Len = %d, want %d", penalty, seg.Len(), len(stats))
		}
	}
}

// TestStreamSegmenterQueriesAreIdempotent: querying twice without an
// Append must return the same phases, and interleaving queries at
// different densities must not change any answer (the lazy DP must not
// depend on when it is forced).
func TestStreamSegmenterQueriesAreIdempotent(t *testing.T) {
	stats := statsFromIDs(streamTrajectory())
	sparse := NewStreamSegmenter(0)
	dense := NewStreamSegmenter(0)
	for i := range stats {
		sparse.Append(stats[i])
		dense.Append(stats[i])
		a := dense.Phases()
		b := dense.Phases()
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("prefix %d: repeated query differs", i+1)
		}
	}
	// The sparse segmenter is queried once at the end; it must agree with
	// the one queried at every step.
	if !reflect.DeepEqual(sparse.Phases(), dense.Phases()) {
		t.Error("query density changed the segmentation")
	}
}

// TestStreamSegmenterSync models the monitor's snapshot loop: the last
// window keeps growing between snapshots, and a late event occasionally
// rewrites an older window. Sync must rewind exactly to the divergence
// and the result must equal the offline segmentation of every synced
// trajectory.
func TestStreamSegmenterSync(t *testing.T) {
	base := streamTrajectory()
	seg := NewStreamSegmenter(0)
	snapshot := func(upTo int, tailID float64, rewriteAt int, rewriteID float64) []WindowStat {
		ids := append([]float64(nil), base[:upTo]...)
		if upTo > 0 {
			ids[upTo-1] = tailID
		}
		if rewriteAt >= 0 && rewriteAt < upTo {
			ids[rewriteAt] = rewriteID
		}
		return statsFromIDs(ids)
	}

	// Growing tail: each snapshot extends the trajectory by one window
	// and moves the tail window's ID as more events land in it.
	prev := 0
	for upTo := 1; upTo <= len(base); upTo++ {
		stats := snapshot(upTo, base[upTo-1]*0.5, -1, 0)
		reused := seg.Sync(stats)
		if reused < prev-1 {
			t.Errorf("snapshot %d reused %d windows, want >= %d (only the tail changed)",
				upTo, reused, prev-1)
		}
		prev = upTo
		if want := Segment(stats, 0); !reflect.DeepEqual(seg.Phases(), want) {
			t.Fatalf("snapshot %d: stream %+v\noffline %+v", upTo, seg.Phases(), want)
		}
	}

	// A late event rewrites window 5: Sync must rewind deep and still
	// agree with offline.
	stats := snapshot(len(base), base[len(base)-1]*0.5, 5, 0.9)
	if reused := seg.Sync(stats); reused > 5 {
		t.Errorf("deep rewrite reused %d windows, want <= 5", reused)
	}
	if want := Segment(stats, 0); !reflect.DeepEqual(seg.Phases(), want) {
		t.Fatalf("after deep rewrite: stream %+v\noffline %+v", seg.Phases(), want)
	}

	// Shrinking trajectories (fewer windows than fed) must truncate.
	short := snapshot(7, base[6], -1, 0)
	seg.Sync(short)
	if seg.Len() != 7 {
		t.Fatalf("after shrink Len = %d, want 7", seg.Len())
	}
	if want := Segment(short, 0); !reflect.DeepEqual(seg.Phases(), want) {
		t.Fatalf("after shrink: stream %+v\noffline %+v", seg.Phases(), want)
	}
}

// TestStreamSegmenterEmpty: no windows, no phases, no panic.
func TestStreamSegmenterEmpty(t *testing.T) {
	seg := NewStreamSegmenter(0)
	if got := seg.Phases(); got != nil {
		t.Errorf("empty Phases = %+v, want nil", got)
	}
	if got := seg.Boundaries(); got != nil {
		t.Errorf("empty Boundaries = %+v, want nil", got)
	}
	seg.Sync(nil)
	seg.Truncate(0)
	if seg.Len() != 0 {
		t.Errorf("Len = %d, want 0", seg.Len())
	}
}

// FuzzStreamSegment fuzzes the prefix-equality property: an arbitrary
// byte string decodes into a trajectory (values, idle windows, and a
// penalty selector) and the streaming boundaries must equal the offline
// ones on every prefix.
func FuzzStreamSegment(f *testing.F) {
	f.Add([]byte{0x10, 0x80, 0xFF, 0x00, 0x42})
	f.Add([]byte{0x00, 0x00, 0x00, 0xF0, 0xF0, 0xF0, 0x00, 0x00})
	f.Add([]byte{0xAA, 0x55, 0xAA, 0x55, 0xAA, 0x55, 0xAA, 0x55, 0x13})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || len(data) > 96 {
			t.Skip()
		}
		// First byte selects the penalty; the rest are windows. 0xFF
		// marks an all-idle window, anything else an ID in [0, 1).
		penalty := 0.0
		if data[0]%3 == 1 {
			penalty = float64(data[0]) / 256
		}
		ids := make([]float64, 0, len(data)-1)
		for _, b := range data[1:] {
			if b == 0xFF {
				ids = append(ids, math.NaN())
			} else {
				ids = append(ids, float64(b)/256)
			}
		}
		if len(ids) == 0 {
			t.Skip()
		}
		stats := statsFromIDs(ids)
		seg := NewStreamSegmenter(penalty)
		for i := range stats {
			seg.Append(stats[i])
			got := seg.Phases()
			want := Segment(stats[:i+1], penalty)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("penalty %g prefix %d of %v:\nstream  %+v\noffline %+v",
					penalty, i+1, ids, got, want)
			}
		}
	})
}
