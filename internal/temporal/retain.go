package temporal

import (
	"math"
	"sort"
)

// BoundSeries re-bounds an already-built series to at most cap windows
// per resolution zone: the newest cap full-resolution windows stay in the
// ring, older ones are decimated into the coarse tail (2:1 against the
// base width, or folded into the series' existing coarse width when it
// already has one), and the coarse tail re-decimates — doubling its
// width — until it fits the cap too. It is the one-shot counterpart of
// the Fold's incremental retention, used by the federation layer to
// bound a merged series whose endpoints were themselves unbounded.
//
// The input series is never mutated; when it already fits the cap it is
// returned as is.
func BoundSeries(s *Series, cap int) *Series {
	if s == nil || cap <= 0 || (len(s.Windows) <= cap && len(s.Coarse) <= cap) {
		return s
	}
	out := &Series{Window: s.Window, Procs: s.Procs}
	factor := 0
	if s.CoarseWindow > 0 {
		factor = int(math.Round(s.CoarseWindow / s.Window))
	}
	coarse := make(map[int]*WindowVector, len(s.Coarse))
	for i := range s.Coarse {
		v := s.Coarse[i]
		coarse[v.Index] = cloneVector(&v)
	}
	ring := s.Windows
	ringStart := s.RingStart
	sealed := s.CoarseWindow > 0
	if len(ring) > cap {
		if factor == 0 {
			factor = 2
		}
		cut := ring[len(ring)-cap].Index
		for i := range ring[:len(ring)-cap] {
			v := &ring[i]
			c := floorDiv(v.Index, factor)
			if dst, ok := coarse[c]; ok {
				addVector(dst, v)
			} else {
				nv := cloneVector(v)
				nv.Index = c
				coarse[c] = nv
			}
		}
		ring = ring[len(ring)-cap:]
		ringStart = cut
		sealed = true
	}
	for len(coarse) > cap {
		factor *= 2
		idxs := sortedVecIdxs(coarse)
		next := make(map[int]*WindowVector, len(coarse)/2+1)
		for _, c := range idxs {
			nc := floorDiv(c, 2)
			if dst, ok := next[nc]; ok {
				addVector(dst, coarse[c])
			} else {
				v := coarse[c]
				v.Index = nc
				next[nc] = v
			}
		}
		coarse = next
	}
	out.Windows = append([]WindowVector(nil), ring...)
	if sealed {
		out.CoarseWindow = s.Window * float64(factor)
		out.RingStart = ringStart
		out.Coarse = make([]WindowVector, 0, len(coarse))
		for _, c := range sortedVecIdxs(coarse) {
			out.Coarse = append(out.Coarse, *coarse[c])
		}
	}
	return out
}

// cloneVector deep-copies a window vector so accumulation never mutates
// the (immutable, possibly shared) input series.
func cloneVector(v *WindowVector) *WindowVector {
	nv := &WindowVector{
		Index:       v.Index,
		Events:      v.Events,
		Dominant:    v.Dominant,
		ProcSeconds: append([]float64(nil), v.ProcSeconds...),
	}
	if len(v.PerActivity) > 0 {
		nv.PerActivity = make(map[string][]float64, len(v.PerActivity))
		for k, vec := range v.PerActivity {
			nv.PerActivity[k] = append([]float64(nil), vec...)
		}
	}
	if len(v.PerRegion) > 0 {
		nv.PerRegion = make(map[string][]float64, len(v.PerRegion))
		for k, vec := range v.PerRegion {
			nv.PerRegion[k] = append([]float64(nil), vec...)
		}
	}
	return nv
}

// addVector sums src into dst elementwise — the WindowVector counterpart
// of windowAcc.mergeFrom. Dominant is dropped on merge: a decimated
// window spans several base windows whose dominants may differ, and
// recovering one would need the per-activity totals the vector may not
// carry.
func addVector(dst *WindowVector, src *WindowVector) {
	for len(dst.ProcSeconds) < len(src.ProcSeconds) {
		dst.ProcSeconds = append(dst.ProcSeconds, 0)
	}
	for p, t := range src.ProcSeconds {
		dst.ProcSeconds[p] += t
	}
	dst.Events += src.Events
	dst.Dominant = ""
	dst.PerActivity = mergeVecMap(dst.PerActivity, src.PerActivity)
	dst.PerRegion = mergeVecMap(dst.PerRegion, src.PerRegion)
}

// sortedVecIdxs returns the map's window indices in ascending order, so
// every decimation pass accumulates in deterministic order.
func sortedVecIdxs(m map[int]*WindowVector) []int {
	idxs := make([]int, 0, len(m))
	for c := range m {
		idxs = append(idxs, c)
	}
	sort.Ints(idxs)
	return idxs
}
