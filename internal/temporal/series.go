package temporal

import (
	"sort"

	"loadimb/internal/stats"
)

// Series is the windowed decomposition of a run: one busy vector per
// non-empty window, in time order. It is the wire document the monitor
// serves at /windows.json and the unit the federation layer merges —
// unlike WindowStat it keeps the per-processor vectors, so merged
// cluster-wide indices can be computed exactly instead of being
// approximated from per-job summaries.
type Series struct {
	// Window is the window width in virtual seconds.
	Window float64 `json:"window"`
	// Procs is the processor count; every busy vector has this length.
	Procs int `json:"procs"`
	// Windows holds the non-empty windows in ascending index order. When
	// the series is bounded (CoarseWindow > 0) these are the retained
	// ring: the most recent windows at full resolution, bit-identical to
	// what an unbounded fold of the same events would hold for them.
	Windows []WindowVector `json:"windows"`

	// The retention fields below are only set for a bounded series whose
	// history exceeded its window cap; an unbounded (or not yet
	// decimated) series omits them, keeping the wire format unchanged.

	// CoarseWindow is the width, in virtual seconds, of the decimated
	// windows in Coarse: Window times a power of two, doubling every time
	// the coarse tail itself outgrows the cap. 0 while nothing has been
	// decimated.
	CoarseWindow float64 `json:"coarse_window,omitempty"`
	// Coarse holds the pre-ring trajectory at CoarseWindow resolution:
	// every base window older than RingStart folded 2:1 (repeatedly) into
	// coarser vectors. Each coarse window equals the exact windows of its
	// span resampled to the coarser width — busy time is additive over
	// window unions — except the last one, which may cover only the part
	// of its span below RingStart (the rest is still in the ring).
	Coarse []WindowVector `json:"coarse,omitempty"`
	// RingStart is the base window index where full resolution begins:
	// windows at or after it are exact ring members, everything before it
	// lives in Coarse. Meaningful only when CoarseWindow > 0.
	RingStart int `json:"ring_start,omitempty"`
}

// WindowVector is one window's raw accumulation.
type WindowVector struct {
	// Index is the window number; the window covers virtual time
	// [Index·dt, (Index+1)·dt).
	Index int `json:"index"`
	// Events is the number of (possibly clipped) events in the window.
	Events int `json:"events"`
	// ProcSeconds[p] is processor p's busy time within the window.
	ProcSeconds []float64 `json:"busy"`
	// Dominant is the activity with the largest busy time in the
	// window, when the fold tracked activities; "" otherwise.
	Dominant string `json:"dominant,omitempty"`
	// PerActivity[a][p] is processor p's busy time spent in activity a
	// within the window, when the fold recorded per-activity vectors
	// (Options.PerActivity); absent otherwise. Vectors have the series'
	// processor count, like ProcSeconds.
	PerActivity map[string][]float64 `json:"per_activity,omitempty"`
	// PerRegion[r][p] is processor p's busy time spent in code region r
	// within the window, when the fold recorded per-region vectors
	// (Options.PerRegion); absent otherwise. In a federated series the
	// keys are job-namespaced ("job/region"), matching the merged cube.
	PerRegion map[string][]float64 `json:"per_region,omitempty"`
}

// WindowStat summarizes one temporal window of the run: how busy each
// processor was within it and how dispersed those busy times are. A
// rising ID across windows is temporal imbalance the whole-run indices
// average away.
type WindowStat struct {
	// Index is the window number; the window covers virtual time
	// [Start, End).
	Index int     `json:"index"`
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	// Events is the number of (possibly clipped) events in the window.
	Events int `json:"events"`
	// Busy is the total processor-seconds spent in the window.
	Busy float64 `json:"busy"`
	// ID is the paper's Euclidean index of dispersion of the
	// standardized per-processor busy times within the window. It is nil
	// — served as an explicit JSON null — when the dispersion is
	// undefined, i.e. when the window recorded no busy time at all (only
	// zero-duration events): an all-idle window has no load to disperse,
	// which is not the same thing as a perfectly balanced one.
	ID *float64 `json:"id"`
	// Gini is the Gini coefficient of the per-processor busy times.
	Gini float64 `json:"gini"`
	// Dominant is the window's dominant activity when the fold tracked
	// activities; omitted from the JSON otherwise, keeping the live
	// monitor's wire format unchanged.
	Dominant string `json:"dominant,omitempty"`
}

// Stats computes the imbalance trajectory of the series: per window the
// total busy time, the ID of the per-processor busy vector (null for
// all-idle windows), the Gini coefficient, and the dominant activity
// when tracked. For a bounded series this is the trajectory of the
// retained full-resolution ring; CoarseStats covers the decimated tail.
func (s *Series) Stats() []WindowStat {
	if s == nil {
		return nil
	}
	return statsOf(s.Windows, s.Window)
}

// CoarseStats computes the trajectory of the decimated tail of a bounded
// series, at CoarseWindow resolution; nil while nothing has been
// decimated. Within each coarse window the indices are computed over the
// summed busy vectors — exactly the indices of the underlying exact
// windows resampled to the coarser width.
func (s *Series) CoarseStats() []WindowStat {
	if s == nil || s.CoarseWindow <= 0 {
		return nil
	}
	return statsOf(s.Coarse, s.CoarseWindow)
}

// statsOf summarizes one window sequence at the given width — the shared
// body of Stats and CoarseStats.
func statsOf(windows []WindowVector, width float64) []WindowStat {
	if len(windows) == 0 {
		return nil
	}
	out := make([]WindowStat, 0, len(windows))
	for _, v := range windows {
		ws := WindowStat{
			Index:    v.Index,
			Start:    float64(v.Index) * width,
			End:      float64(v.Index+1) * width,
			Events:   v.Events,
			Dominant: v.Dominant,
		}
		ws.Busy = stats.Sum(v.ProcSeconds)
		// Ranks idle for the whole window count as zeros: an idle
		// processor is the imbalance, not missing data.
		if id, err := stats.EuclideanFromBalance(v.ProcSeconds); err == nil {
			ws.ID = &id
		}
		ws.Gini = GiniOf(v.ProcSeconds)
		out = append(out, ws)
	}
	return out
}

// ActivityNames returns the sorted names of every activity any window
// recorded a per-activity vector for; nil when the fold did not track
// them.
func (s *Series) ActivityNames() []string {
	return s.dimNames(func(v *WindowVector) map[string][]float64 { return v.PerActivity })
}

// RegionNames returns the sorted names of every code region any window
// recorded a per-region vector for; nil when the fold did not track
// them.
func (s *Series) RegionNames() []string {
	return s.dimNames(func(v *WindowVector) map[string][]float64 { return v.PerRegion })
}

// dimNames collects the sorted key set of one of the window vectors'
// per-dimension maps.
func (s *Series) dimNames(get func(*WindowVector) map[string][]float64) []string {
	if s == nil {
		return nil
	}
	seen := make(map[string]bool)
	for i := range s.Windows {
		for d := range get(&s.Windows[i]) {
			seen[d] = true
		}
	}
	if len(seen) == 0 {
		return nil
	}
	names := make([]string, 0, len(seen))
	for d := range seen {
		names = append(names, d)
	}
	sort.Strings(names)
	return names
}

// ActivitySeries projects the series onto one activity: the same windows
// in the same order, each busy vector replaced by the activity's busy
// vector (all zeros for windows where the activity never ran, so its
// trajectory stays aligned with the aggregate one — a window the
// activity sat out gets a null ID, the idle semantics). The projection
// is what per-activity phase segmentation runs on.
func (s *Series) ActivitySeries(name string) *Series {
	return s.project(name, func(v *WindowVector) map[string][]float64 { return v.PerActivity })
}

// RegionSeries projects the series onto one code region, with the same
// alignment semantics as ActivitySeries.
func (s *Series) RegionSeries(name string) *Series {
	return s.project(name, func(v *WindowVector) map[string][]float64 { return v.PerRegion })
}

// project builds the single-dimension projection shared by
// ActivitySeries and RegionSeries.
func (s *Series) project(name string, get func(*WindowVector) map[string][]float64) *Series {
	if s == nil {
		return nil
	}
	out := &Series{Window: s.Window, Procs: s.Procs}
	out.Windows = make([]WindowVector, 0, len(s.Windows))
	for i := range s.Windows {
		v := &s.Windows[i]
		w := WindowVector{Index: v.Index, Events: v.Events}
		if vec, ok := get(v)[name]; ok {
			w.ProcSeconds = append([]float64(nil), vec...)
		} else {
			w.ProcSeconds = make([]float64, s.Procs)
		}
		for len(w.ProcSeconds) < s.Procs {
			w.ProcSeconds = append(w.ProcSeconds, 0)
		}
		out.Windows = append(out.Windows, w)
	}
	return out
}

// GiniOf is stats.Gini.Of with tiny negative cancellation noise clamped:
// perfectly balanced loads can come out as -1e-16, and a served Gini
// coefficient must stay in [0, 1).
func GiniOf(vals []float64) float64 {
	g := stats.Gini.Of(vals)
	if g < 0 {
		return 0
	}
	return g
}
