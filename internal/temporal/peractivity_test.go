package temporal

import (
	"math"
	"reflect"
	"testing"

	"loadimb/internal/stats"
	"loadimb/internal/trace"
)

// perActivityLog is a two-activity, two-rank log with a compute-heavy
// first half and a wait-heavy second half, unit windows.
func perActivityLog(t *testing.T) *trace.Log {
	t.Helper()
	var lg trace.Log
	events := []trace.Event{
		{Rank: 0, Region: "r", Activity: "compute", Start: 0, End: 2},
		{Rank: 1, Region: "r", Activity: "compute", Start: 0, End: 1},
		{Rank: 1, Region: "r", Activity: "wait", Start: 1, End: 2},
		{Rank: 0, Region: "r", Activity: "wait", Start: 2, End: 4},
		{Rank: 1, Region: "r", Activity: "compute", Start: 2, End: 2.5},
		{Rank: 1, Region: "r", Activity: "wait", Start: 2.5, End: 4},
	}
	for _, e := range events {
		if err := lg.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	return &lg
}

func TestFoldPerActivityVectors(t *testing.T) {
	ser, err := FoldLog(perActivityLog(t), Options{Window: 1, PerActivity: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := ser.ActivityNames(); !reflect.DeepEqual(got, []string{"compute", "wait"}) {
		t.Fatalf("ActivityNames = %v", got)
	}
	want := []map[string][]float64{
		{"compute": {1, 1}},
		{"compute": {1, 0}, "wait": {0, 1}},
		{"compute": {0, 0.5}, "wait": {1, 0.5}},
		{"wait": {1, 1}},
	}
	if len(ser.Windows) != len(want) {
		t.Fatalf("%d windows, want %d", len(ser.Windows), len(want))
	}
	for i, v := range ser.Windows {
		if !reflect.DeepEqual(v.PerActivity, want[i]) {
			t.Errorf("window %d per-activity = %v, want %v", i, v.PerActivity, want[i])
		}
		// The aggregate vector is the sum of the activity vectors.
		for p := range v.ProcSeconds {
			sum := 0.0
			for _, vec := range v.PerActivity {
				sum += vec[p]
			}
			if math.Abs(sum-v.ProcSeconds[p]) > 1e-12 {
				t.Errorf("window %d rank %d: activities sum to %g, aggregate %g",
					i, p, sum, v.ProcSeconds[p])
			}
		}
		// Dominant stays empty: PerActivity must not leak into the
		// monitor's /timeline.json wire format.
		if v.Dominant != "" {
			t.Errorf("window %d dominant = %q, want empty", i, v.Dominant)
		}
	}
}

func TestActivitySeriesProjection(t *testing.T) {
	ser, err := FoldLog(perActivityLog(t), Options{Window: 1, PerActivity: true})
	if err != nil {
		t.Fatal(err)
	}
	comp := ser.ActivitySeries("compute")
	if comp.Procs != 2 || len(comp.Windows) != 4 {
		t.Fatalf("projection = procs %d, %d windows", comp.Procs, len(comp.Windows))
	}
	st := comp.Stats()
	// Window 3 has no compute at all: zero vector, null ID — the idle
	// semantics, keeping the projected trajectory aligned with the
	// aggregate one.
	if st[3].ID != nil || st[3].Busy != 0 {
		t.Errorf("compute-free window stat = %+v, want null ID, zero busy", st[3])
	}
	// Window 1 is perfectly imbalanced for compute: rank 0 does all of it.
	if st[1].ID == nil || *st[1].ID <= 0 {
		t.Errorf("window 1 compute ID = %v, want > 0", st[1].ID)
	}
	if got := len(ser.ActivitySeries("nope").Windows); got != 4 {
		t.Errorf("unknown activity projection has %d windows, want 4 (all zero)", got)
	}
}

// TestMergePerActivityAgreesWithWholeLogFold extends the federation
// agreement property to the per-activity vectors: splitting by rank,
// folding per job with PerActivity on, and merging must reproduce the
// whole-log per-activity fold exactly.
func TestMergePerActivityAgreesWithWholeLogFold(t *testing.T) {
	lg := perActivityLog(t)
	want, err := FoldLog(lg, Options{Window: 1, PerActivity: true})
	if err != nil {
		t.Fatal(err)
	}
	var jobA, jobB trace.Log
	lg.Each(func(e trace.Event) {
		if e.Rank == 0 {
			jobA.Append(e)
		} else {
			e.Rank = 0
			jobB.Append(e)
		}
	})
	serA, err := FoldLog(&jobA, Options{Window: 1, PerActivity: true})
	if err != nil {
		t.Fatal(err)
	}
	serB, err := FoldLog(&jobB, Options{Window: 1, PerActivity: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Merge([]JobWindows{{Procs: 1, Series: serA}, {Procs: 1, Series: serB}})
	if err != nil {
		t.Fatal(err)
	}
	for i, gw := range got.Windows {
		if !reflect.DeepEqual(gw.PerActivity, want.Windows[i].PerActivity) {
			t.Errorf("window %d per-activity = %v, want %v",
				gw.Index, gw.PerActivity, want.Windows[i].PerActivity)
		}
	}
	// And an activity vector spilling past the declared processor count
	// is an error, like the aggregate case.
	serA.Windows[0].PerActivity["compute"] = []float64{1, 7}
	if _, err := Merge([]JobWindows{{Procs: 1, Series: serA}, {Procs: 1, Series: serB}}); err == nil {
		t.Error("overlong per-activity vector merged without error")
	}
}

func TestSummarizePhases(t *testing.T) {
	ser, err := FoldLog(perActivityLog(t), Options{Window: 1, PerActivity: true})
	if err != nil {
		t.Fatal(err)
	}
	phases := Segment(ser.Stats(), 0)
	sums := SummarizePhases(ser, phases)
	if len(sums) != len(phases) {
		t.Fatalf("%d summaries for %d phases", len(sums), len(phases))
	}
	totalWindows := 0
	for i, sum := range sums {
		ph := phases[i]
		if sum.FirstWindow != ph.FirstWindow || sum.LastWindow != ph.LastWindow ||
			sum.Label != ph.Label || sum.MeanID != ph.MeanID {
			t.Errorf("summary %d = %+v does not match phase %+v", i, sum, ph)
		}
		totalWindows += sum.Windows
		// Per-phase ID: recompute from the summed busy vectors by hand.
		busy := make([]float64, ser.Procs)
		for _, v := range ser.Windows {
			if v.Index >= ph.FirstWindow && v.Index <= ph.LastWindow {
				for p, tm := range v.ProcSeconds {
					busy[p] += tm
				}
			}
		}
		wantID, idErr := stats.EuclideanFromBalance(busy)
		switch {
		case (sum.ID == nil) != (idErr != nil):
			t.Errorf("summary %d ID nilness wrong: %+v", i, sum)
		case sum.ID != nil && *sum.ID != wantID:
			t.Errorf("summary %d ID = %g, want %g", i, *sum.ID, wantID)
		}
	}
	if totalWindows != len(ser.Windows) {
		t.Errorf("summaries cover %d windows, series has %d", totalWindows, len(ser.Windows))
	}
	// The whole-run compute trajectory means: compute is elevated early,
	// wait late — each phase's hot activities must be a subset of the
	// tracked names.
	for _, sum := range sums {
		for _, a := range sum.HotActivities {
			if a != "compute" && a != "wait" {
				t.Errorf("unknown hot activity %q", a)
			}
		}
	}
	// A series without per-activity vectors yields no hot activities.
	plain, err := FoldLog(perActivityLog(t), Options{Window: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, sum := range SummarizePhases(plain, Segment(plain.Stats(), 0)) {
		if sum.HotActivities != nil {
			t.Errorf("plain series summary has hot activities: %+v", sum)
		}
	}
}
