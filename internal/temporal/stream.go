package temporal

import (
	"math"
	"sort"
)

// StreamSegmenter maintains the PELT change-point optimum of a growing
// trajectory incrementally, so the live monitor can flag a phase change
// while the run executes instead of only in post-mortem segmentation.
// Its result is exactly the offline optimum: after feeding any prefix of
// a trajectory, Phases returns what Segment would return for that prefix
// (bit for bit — the property tests and the fuzz harness assert it).
//
// The dynamic program is the same pruned recursion Segment runs, kept
// resumable: appending window n+1 re-runs the minimization only over the
// un-pruned candidate set, which PELT keeps effectively constant-size,
// so with an explicit penalty the cost per appended window is amortized
// constant. With the automatic penalty (penalty <= 0) the BIC-style
// scale estimate is re-derived from the full trajectory at every query;
// when it moves, the pruned DP is re-run from scratch — one effectively
// linear pass per query, amortized over however many windows arrived
// since. The DP is evaluated lazily at Phases/Boundaries time either
// way, so a burst of Appends between two scrapes costs one pass, not
// one per window.
//
// A StreamSegmenter is not concurrency-safe; the monitor drives it under
// its fold mutex.
type StreamSegmenter struct {
	// penalty is the configured change-point penalty; <= 0 selects the
	// automatic default (re-estimated per query, exactly as Segment
	// estimates it for the fed prefix).
	penalty float64
	// beta is the penalty the current DP arrays were computed under.
	beta float64

	stats []WindowStat // fed windows, in order
	x     []float64    // ID values (null IDs as 0), parallel to stats
	s1    []float64    // prefix sums of x, len(x)+1
	s2    []float64    // prefix sums of x², len(x)+1
	diffs []float64    // sorted |first differences| of x, for the auto penalty

	// The resumable DP state: f and last cover steps 0..clean, cands is
	// the un-pruned candidate set entering step clean+1, and candsAt[t]
	// snapshots the candidate set after step t so Truncate can rewind
	// without re-running the prefix.
	f       []float64
	last    []int
	cands   []int
	candsAt [][]int
	clean   int
}

// NewStreamSegmenter creates a streaming segmenter. penalty > 0 fixes
// the change-point penalty (the amortized-constant hot path); penalty
// <= 0 selects the automatic default, matching Segment(stats, 0) on
// every prefix.
func NewStreamSegmenter(penalty float64) *StreamSegmenter {
	return &StreamSegmenter{
		penalty: penalty,
		beta:    -1, // no DP computed yet; first ensure() resets
		s1:      []float64{0},
		s2:      []float64{0},
		f:       []float64{0},
		last:    []int{0},
		cands:   []int{0},
		candsAt: [][]int{{0}},
	}
}

// Len returns the number of windows fed so far.
func (s *StreamSegmenter) Len() int { return len(s.stats) }

// Append feeds the next window of the trajectory. Windows must arrive in
// ascending order, exactly as Series.Stats returns them; the DP work is
// deferred to the next Phases or Boundaries call.
func (s *StreamSegmenter) Append(w WindowStat) {
	v := 0.0
	if w.ID != nil {
		v = *w.ID
	}
	if n := len(s.x); n > 0 {
		d := math.Abs(v - s.x[n-1])
		i := sort.SearchFloat64s(s.diffs, d)
		s.diffs = append(s.diffs, 0)
		copy(s.diffs[i+1:], s.diffs[i:])
		s.diffs[i] = d
	}
	s.stats = append(s.stats, w)
	s.x = append(s.x, v)
	s.s1 = append(s.s1, s.s1[len(s.s1)-1]+v)
	s.s2 = append(s.s2, s.s2[len(s.s2)-1]+v*v)
}

// Truncate discards every window from position n on, rewinding the DP to
// the kept prefix. The monitor uses it when a window it already fed
// changes retroactively — the still-growing tail window, or a late event
// landing in an older one.
func (s *StreamSegmenter) Truncate(n int) {
	if n < 0 {
		n = 0
	}
	if n >= len(s.stats) {
		return
	}
	s.stats = s.stats[:n]
	s.x = s.x[:n]
	s.s1 = s.s1[:n+1]
	s.s2 = s.s2[:n+1]
	s.diffs = s.diffs[:0]
	for i := 1; i < n; i++ {
		s.diffs = append(s.diffs, math.Abs(s.x[i]-s.x[i-1]))
	}
	sort.Float64s(s.diffs)
	if s.clean > n {
		s.clean = n
		s.f = s.f[:n+1]
		s.last = s.last[:n+1]
		s.candsAt = s.candsAt[:n+1]
		s.cands = append(s.cands[:0], s.candsAt[n]...)
	}
}

// Sync reconciles the segmenter with a freshly computed trajectory: the
// longest common prefix is kept (its DP state is reused), everything
// after it is rewound and re-fed. It returns the number of windows
// reused. This is the one call sites need per snapshot — append-only
// growth reduces to appending the new suffix, and a retroactive change
// (late event, growing tail window) rewinds exactly to the divergence.
func (s *StreamSegmenter) Sync(stats []WindowStat) int {
	p := 0
	for p < len(s.stats) && p < len(stats) && sameWindowStat(s.stats[p], stats[p]) {
		p++
	}
	s.Truncate(p)
	for _, w := range stats[p:] {
		s.Append(w)
	}
	return p
}

// sameWindowStat reports whether two window summaries are identical —
// the equality Sync uses to find the reusable prefix.
func sameWindowStat(a, b WindowStat) bool {
	if (a.ID == nil) != (b.ID == nil) || (a.ID != nil && *a.ID != *b.ID) {
		return false
	}
	return a.Index == b.Index && a.Start == b.Start && a.End == b.End &&
		a.Events == b.Events && a.Busy == b.Busy && a.Gini == b.Gini &&
		a.Dominant == b.Dominant
}

// ensure brings the DP up to date with the fed trajectory: it re-derives
// the effective penalty, restarts the recursion if the penalty moved,
// and then runs the pruned steps for every window not yet incorporated.
func (s *StreamSegmenter) ensure() {
	n := len(s.x)
	beta := s.penalty
	if beta <= 0 {
		beta = defaultPenalty(s.diffs, s.s1[n], s.s2[n], n)
	}
	if beta != s.beta {
		s.beta = beta
		s.f = append(s.f[:0], -beta)
		s.last = append(s.last[:0], 0)
		s.cands = append(s.cands[:0], 0)
		s.candsAt = append(s.candsAt[:0], []int{0})
		s.clean = 0
	}
	for t := s.clean + 1; t <= n; t++ {
		s.step(t)
	}
	s.clean = n
}

// cost is the within-segment squared deviation of x[a:b] from its mean,
// via the prefix sums — the same O(1) evaluation pelt uses.
func (s *StreamSegmenter) cost(a, b int) float64 {
	m := float64(b - a)
	d := s.s1[b] - s.s1[a]
	c := s.s2[b] - s.s2[a] - d*d/m
	if c < 0 {
		return 0 // cancellation noise on constant stretches
	}
	return c
}

// step runs one iteration of the pruned DP — the body of pelt's loop,
// kept float-for-float identical so the streaming optimum matches the
// offline one exactly.
func (s *StreamSegmenter) step(t int) {
	best, arg := math.Inf(1), 0
	for _, c := range s.cands {
		if v := s.f[c] + s.cost(c, t) + s.beta; v < best {
			best, arg = v, c
		}
	}
	s.f = append(s.f, best)
	s.last = append(s.last, arg)
	keep := s.cands[:0]
	for _, c := range s.cands {
		// Standard PELT pruning: a candidate whose cost already exceeds
		// the optimum can never participate in a future optimum.
		if s.f[c]+s.cost(c, t) <= best {
			keep = append(keep, c)
		}
	}
	s.cands = append(keep, t)
	s.candsAt = append(s.candsAt, append([]int(nil), s.cands...))
}

// Boundaries returns the exclusive end positions of the current optimal
// segments — the same positions pelt would return for the fed prefix.
func (s *StreamSegmenter) Boundaries() []int {
	n := len(s.x)
	if n == 0 {
		return nil
	}
	s.ensure()
	var bounds []int
	for t := n; t > 0; t = s.last[t] {
		bounds = append(bounds, t)
	}
	sort.Ints(bounds)
	return bounds
}

// Phases returns the current phase segmentation of the fed trajectory —
// exactly Segment(fed windows, penalty), maintained incrementally.
func (s *StreamSegmenter) Phases() []Phase {
	if len(s.stats) == 0 {
		return nil
	}
	return phasesFromBounds(s.stats, s.x, s.Boundaries())
}
