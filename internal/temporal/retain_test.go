package temporal

import (
	"math"
	"reflect"
	"testing"

	"loadimb/internal/trace"
)

// synthLog builds a deterministic pseudo-random event log over procs
// ranks spanning roughly span virtual seconds, with a handful of
// activities and regions so the per-dimension vectors are exercised too.
// An xorshift generator keeps it reproducible without math/rand.
func synthLog(procs int, span float64, seed uint64) *trace.Log {
	activities := []string{"compute", "comm", "io"}
	regions := []string{"solve", "exchange", "dump"}
	rng := seed
	next := func() float64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return float64(rng%1_000_000) / 1_000_000
	}
	var lg trace.Log
	for t := 0.0; t < span; {
		for r := 0; r < procs; r++ {
			d := next() * 0.9 * (1 + float64(r)/float64(procs))
			e := trace.Event{
				Rank:     r,
				Activity: activities[int(rng>>5)%len(activities)],
				Region:   regions[int(rng>>9)%len(regions)],
				Start:    t + next()*0.3,
			}
			e.End = e.Start + d
			if err := lg.Append(e); err != nil {
				panic(err)
			}
		}
		t += 0.5 + next()
	}
	return &lg
}

// foldLog folds a log, failing the test on error.
func foldLog(t *testing.T, lg *trace.Log, opts Options) *Series {
	t.Helper()
	s, err := FoldLog(lg, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// resample folds a series' exact windows to a coarser width (an integer
// multiple of the base width), clipped to indices strictly below limit —
// the oracle the decimated tail is tested against.
func resample(s *Series, factor int, limit int) map[int]*WindowVector {
	out := make(map[int]*WindowVector)
	for i := range s.Windows {
		v := &s.Windows[i]
		if v.Index >= limit {
			continue
		}
		c := floorDiv(v.Index, factor)
		if dst, ok := out[c]; ok {
			addVector(dst, v)
		} else {
			nv := cloneVector(v)
			nv.Index = c
			nv.Dominant = ""
			out[c] = nv
		}
	}
	return out
}

// TestBoundedRingBitIdentical is the tentpole's core property: within
// the retained ring, the bounded fold must be bit-identical to the
// unbounded fold of the same events — same indices, same vectors, same
// dominants, byte for byte once serialized. The live monitor's wire
// documents over the ring zone are identical to the pre-cap path because
// of this.
func TestBoundedRingBitIdentical(t *testing.T) {
	lg := synthLog(6, 400, 99)
	opts := Options{Window: 0.25, PerActivity: true, PerRegion: true}
	free := foldLog(t, lg, opts)
	for _, cap := range []int{8, 32, 100} {
		opts.WindowCap = cap
		bounded := foldLog(t, lg, opts)
		if len(bounded.Windows) > cap {
			t.Fatalf("cap %d: ring holds %d windows", cap, len(bounded.Windows))
		}
		if len(bounded.Coarse) > cap {
			t.Fatalf("cap %d: coarse tail holds %d windows", cap, len(bounded.Coarse))
		}
		if bounded.CoarseWindow <= 0 {
			t.Fatalf("cap %d: run long enough to decimate, but no coarse tail", cap)
		}
		exact := make(map[int]*WindowVector, len(free.Windows))
		for i := range free.Windows {
			exact[free.Windows[i].Index] = &free.Windows[i]
		}
		for i := range bounded.Windows {
			v := &bounded.Windows[i]
			if v.Index < bounded.RingStart {
				t.Fatalf("cap %d: ring window %d below ring start %d", cap, v.Index, bounded.RingStart)
			}
			want, ok := exact[v.Index]
			if !ok {
				t.Fatalf("cap %d: ring window %d absent from unbounded fold", cap, v.Index)
			}
			if !reflect.DeepEqual(v, want) {
				t.Fatalf("cap %d: ring window %d differs from unbounded fold:\n got %+v\nwant %+v",
					cap, v.Index, v, want)
			}
		}
		// Every unbounded window at or after the ring start must be in the
		// bounded ring too — the ring is the unbounded suffix, not a sample.
		for idx := range exact {
			if idx < bounded.RingStart {
				continue
			}
			found := false
			for i := range bounded.Windows {
				if bounded.Windows[i].Index == idx {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("cap %d: unbounded window %d missing from bounded ring", cap, idx)
			}
		}
	}
}

// TestCoarseMatchesResampledExact: each decimated window must equal the
// exact windows of its span resampled to the coarse width. Equality is
// modulo float-addition association (the decimation may have summed in a
// different order than a one-shot resample), hence the 1e-9 tolerance
// rather than bit identity.
func TestCoarseMatchesResampledExact(t *testing.T) {
	lg := synthLog(5, 300, 7)
	opts := Options{Window: 0.25, PerActivity: true, PerRegion: true}
	free := foldLog(t, lg, opts)
	opts.WindowCap = 16
	bounded := foldLog(t, lg, opts)
	if bounded.CoarseWindow <= 0 || len(bounded.Coarse) == 0 {
		t.Fatal("run long enough to decimate, but no coarse tail")
	}
	factor := int(math.Round(bounded.CoarseWindow / bounded.Window))
	if factor < 2 || factor&(factor-1) != 0 {
		t.Fatalf("decimation factor %d is not a power of two >= 2", factor)
	}
	want := resample(free, factor, bounded.RingStart)
	if len(want) != len(bounded.Coarse) {
		t.Fatalf("%d coarse windows, oracle has %d", len(bounded.Coarse), len(want))
	}
	for i := range bounded.Coarse {
		g := &bounded.Coarse[i]
		w, ok := want[g.Index]
		if !ok {
			t.Fatalf("coarse window %d absent from resampled oracle", g.Index)
		}
		if g.Events != w.Events {
			t.Errorf("coarse window %d events = %d, oracle %d", g.Index, g.Events, w.Events)
		}
		assertVecClose(t, "busy", g.Index, g.ProcSeconds, w.ProcSeconds)
		assertMapClose(t, "activity", g.Index, g.PerActivity, w.PerActivity)
		assertMapClose(t, "region", g.Index, g.PerRegion, w.PerRegion)
	}
	// And the trajectory indices over the decimated tail equal the same
	// indices over the resampled exact windows.
	coarseStats := bounded.CoarseStats()
	oracle := &Series{Window: bounded.CoarseWindow, Procs: free.Procs}
	for _, c := range sortedVecIdxs(want) {
		oracle.Windows = append(oracle.Windows, *want[c])
	}
	oracleStats := oracle.Stats()
	for i := range coarseStats {
		g, w := coarseStats[i], oracleStats[i]
		if g.Index != w.Index || math.Abs(g.Busy-w.Busy) > 1e-9 || math.Abs(g.Gini-w.Gini) > 1e-9 {
			t.Errorf("coarse stat %d: got %+v, want %+v", i, g, w)
		}
		switch {
		case (g.ID == nil) != (w.ID == nil):
			t.Errorf("coarse stat %d: ID nullness differs", i)
		case g.ID != nil && math.Abs(*g.ID-*w.ID) > 1e-9:
			t.Errorf("coarse stat %d: ID %g, want %g", i, *g.ID, *w.ID)
		}
	}
}

func assertVecClose(t *testing.T, what string, idx int, got, want []float64) {
	t.Helper()
	if len(got) < len(want) {
		padded := make([]float64, len(want))
		copy(padded, got)
		got = padded
	}
	for p := range want {
		if math.Abs(got[p]-want[p]) > 1e-9 {
			t.Errorf("coarse window %d %s rank %d = %g, oracle %g", idx, what, p, got[p], want[p])
		}
	}
	for p := len(want); p < len(got); p++ {
		if got[p] != 0 {
			t.Errorf("coarse window %d %s rank %d = %g beyond oracle", idx, what, p, got[p])
		}
	}
}

func assertMapClose(t *testing.T, what string, idx int, got, want map[string][]float64) {
	t.Helper()
	for k, wv := range want {
		assertVecClose(t, what+" "+k, idx, got[k], wv)
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("coarse window %d has unexpected %s %q", idx, what, k)
		}
	}
}

// TestBoundedConservesBusyTime: decimation moves busy time, it must
// never lose any — the ring plus the coarse tail hold exactly the
// unbounded fold's total processor-seconds and event count.
func TestBoundedConservesBusyTime(t *testing.T) {
	lg := synthLog(4, 500, 3)
	opts := Options{Window: 0.1, PerActivity: true, PerRegion: true}
	free := foldLog(t, lg, opts)
	opts.WindowCap = 12
	bounded := foldLog(t, lg, opts)
	sum := func(ws []WindowVector) (busy float64, events int) {
		for i := range ws {
			for _, v := range ws[i].ProcSeconds {
				busy += v
			}
			events += ws[i].Events
		}
		return
	}
	fb, fe := sum(free.Windows)
	rb, re := sum(bounded.Windows)
	cb, ce := sum(bounded.Coarse)
	if re+ce != fe {
		t.Errorf("events: ring %d + coarse %d != unbounded %d", re, ce, fe)
	}
	if math.Abs(rb+cb-fb) > 1e-6*fb {
		t.Errorf("busy: ring %g + coarse %g != unbounded %g", rb, cb, fb)
	}
}

// TestBoundSeriesMatchesFoldRetention: the one-shot BoundSeries used by
// the federator must agree with the fold's own incremental retention on
// the ring zone — same suffix, bit-identical — and keep its own state
// within the cap.
func TestBoundSeriesMatchesFoldRetention(t *testing.T) {
	lg := synthLog(4, 300, 11)
	opts := Options{Window: 0.25, PerActivity: true, PerRegion: true}
	free := foldLog(t, lg, opts)
	const cap = 24
	bounded := BoundSeries(free, cap)
	if bounded == free {
		t.Fatal("series above cap returned unbounded")
	}
	if len(bounded.Windows) != cap {
		t.Fatalf("ring holds %d windows, want %d", len(bounded.Windows), cap)
	}
	if len(bounded.Coarse) == 0 || len(bounded.Coarse) > cap {
		t.Fatalf("coarse tail holds %d windows", len(bounded.Coarse))
	}
	want := free.Windows[len(free.Windows)-cap:]
	if !reflect.DeepEqual(bounded.Windows, want) {
		t.Fatal("BoundSeries ring differs from the unbounded suffix")
	}
	if bounded.RingStart != want[0].Index {
		t.Fatalf("ring start %d, want %d", bounded.RingStart, want[0].Index)
	}
	// The input must not be mutated.
	free2 := foldLog(t, lg, opts)
	if !reflect.DeepEqual(free, free2) {
		t.Fatal("BoundSeries mutated its input series")
	}
	// A series already within the cap passes through untouched.
	if got := BoundSeries(bounded, cap); got != bounded {
		t.Fatal("series within cap was rebuilt")
	}
}

// TestMergeDecimatedSeries: two bounded endpoints merge into one bounded
// series — ring zone where both still have full resolution, coarse tail
// below, nothing dropped.
func TestMergeDecimatedSeries(t *testing.T) {
	lg := synthLog(6, 200, 21)
	var la, lb trace.Log
	lg.Each(func(e trace.Event) {
		if e.Rank < 3 {
			if err := la.Append(e); err != nil {
				t.Fatal(err)
			}
		} else {
			e.Rank -= 3
			if err := lb.Append(e); err != nil {
				t.Fatal(err)
			}
		}
	})
	opts := Options{Window: 0.25, PerActivity: true, PerRegion: true, WindowCap: 32}
	sa := foldLog(t, &la, opts)
	opts.WindowCap = 16
	sb := foldLog(t, &lb, opts)
	if sa.CoarseWindow <= 0 || sb.CoarseWindow <= 0 {
		t.Fatal("both endpoints should have decimated")
	}
	got, err := Merge([]JobWindows{{Series: sa, Label: "a"}, {Series: sb, Label: "b"}})
	if err != nil {
		t.Fatal(err)
	}
	if got.Procs != 6 || got.Window != 0.25 {
		t.Fatalf("merged procs=%d window=%g", got.Procs, got.Window)
	}
	if got.CoarseWindow <= 0 || len(got.Coarse) == 0 {
		t.Fatal("merged series lost the coarse tails")
	}
	wantStart := sa.RingStart
	if sb.RingStart > wantStart {
		wantStart = sb.RingStart
	}
	if got.RingStart != wantStart {
		t.Fatalf("merged ring start %d, want %d", got.RingStart, wantStart)
	}
	for i := range got.Windows {
		if got.Windows[i].Index < got.RingStart {
			t.Fatalf("merged ring window %d below ring start %d", got.Windows[i].Index, got.RingStart)
		}
	}
	// Conservation across the merge: nothing decimated is dropped.
	sum := func(ws []WindowVector) (busy float64) {
		for i := range ws {
			for _, v := range ws[i].ProcSeconds {
				busy += v
			}
		}
		return
	}
	want := sum(sa.Windows) + sum(sa.Coarse) + sum(sb.Windows) + sum(sb.Coarse)
	if total := sum(got.Windows) + sum(got.Coarse); math.Abs(total-want) > 1e-6*want {
		t.Errorf("merged busy %g, endpoints hold %g", total, want)
	}
	// In the merged ring zone both endpoints contribute at full
	// resolution: each merged ring window equals the endpoints' exact
	// windows concatenated.
	ringOf := func(s *Series, idx int) *WindowVector {
		for i := range s.Windows {
			if s.Windows[i].Index == idx {
				return &s.Windows[i]
			}
		}
		return nil
	}
	for i := range got.Windows {
		v := &got.Windows[i]
		wa, wb := ringOf(sa, v.Index), ringOf(sb, v.Index)
		for p := 0; p < 3; p++ {
			want := 0.0
			if wa != nil && p < len(wa.ProcSeconds) {
				want = wa.ProcSeconds[p]
			}
			if v.ProcSeconds[p] != want {
				t.Fatalf("merged window %d rank %d = %g, endpoint a has %g", v.Index, p, v.ProcSeconds[p], want)
			}
			want = 0.0
			if wb != nil && p < len(wb.ProcSeconds) {
				want = wb.ProcSeconds[p]
			}
			if v.ProcSeconds[3+p] != want {
				t.Fatalf("merged window %d rank %d = %g, endpoint b has %g", v.Index, 3+p, v.ProcSeconds[3+p], want)
			}
		}
	}
}
