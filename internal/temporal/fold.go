// Package temporal is the repository's single windowed-analysis engine:
// it folds event traces into per-window per-processor busy-time vectors,
// summarizes them into imbalance trajectories (the /timeline.json the
// live monitor serves), merges the window series of federated endpoints,
// and segments trajectories into phases with PELT-style change-point
// detection.
//
// Before this package existed the windowing semantics lived in two
// divergent copies — the monitor's incremental fold and the offline
// trace.Log.Window clipping — and the offline toolchain had none at all.
// Fold is now the one implementation; Log.Window survives as the
// per-phase slicing oracle its property tests compare against.
//
// The clipping semantics, shared by every consumer:
//
//   - An event overlapping several windows contributes to each the exact
//     overlap of its interval with the half-open window [w·dt, (w+1)·dt).
//   - An event ending exactly on a window boundary belongs to the window
//     it fills, not the empty one it touches.
//   - A zero-duration event contributes no busy time but counts as an
//     event of the window strictly containing its instant; an instant
//     exactly on a boundary belongs to neither side.
package temporal

import (
	"fmt"
	"math"
	"sort"

	"loadimb/internal/trace"
)

// Options configures a Fold.
type Options struct {
	// Window is the window width in virtual seconds; it must be
	// positive.
	Window float64
	// Procs is the minimum processor count of the produced series:
	// trajectories divide load over every processor of the run, so ranks
	// that never produce a matching event still count as zeros. 0 means
	// the maximum rank seen plus one.
	Procs int
	// Activities, when non-empty, restricts the busy-time accumulation
	// to the named activities. The live monitor folds everything; the
	// offline toolchain uses the filter to compute, say, the trajectory
	// of computation time alone — in synchronized message-passing runs
	// the all-activity busy time is uniform by construction (waiting is
	// instrumented too), and the imbalance signal lives in how the
	// activity mix is divided.
	Activities []string
	// TrackActivities records per-window per-activity busy time so the
	// series can report each window's dominant activity. The live
	// monitor leaves it off (its wire format predates the field); the
	// offline trajectory turns it on.
	TrackActivities bool
	// PerActivity records per-window per-activity busy *vectors* (one
	// busy time per processor per activity), so a trajectory — and its
	// phase segmentation — can be computed for each activity separately.
	// It is independent of TrackActivities: the live monitor turns on
	// PerActivity alone, keeping /timeline.json's wire format (which has
	// no Dominant field) byte-identical.
	PerActivity bool
	// PerRegion records per-window per-region busy vectors, the code-region
	// counterpart of PerActivity: a diagnosis can then attribute a rank's
	// divergence to the region it spent the extra time in, not just the
	// activity class.
	PerRegion bool
	// WindowCap bounds the fold's retained state: at most WindowCap
	// non-empty windows are kept at full resolution (the ring of the most
	// recent ones); older windows are decimated 2:1 into coarser vectors,
	// and the coarse tail itself re-decimates (doubling its width) when it
	// outgrows the cap, so total state is O(WindowCap) regardless of run
	// length while the full-run trajectory stays queryable at reduced
	// resolution (Series.Coarse). 0 means unbounded — the offline
	// toolchain folds finite traces and keeps exact windows; the live
	// monitor, which must survive forever-looping workloads, sets a cap.
	WindowCap int
}

// DefaultWindowCap is the live monitor's default window cap: small enough
// that per-scrape state and fold cost stay modest (a few MB at typical
// processor counts), large enough that the full-resolution ring spans
// thousands of windows of recent history.
const DefaultWindowCap = 4096

// Fold incrementally accumulates events into per-window busy vectors. It
// is not concurrency-safe; the monitor serializes Add calls under its
// fold mutex, offline callers fold a log single-threaded.
type Fold struct {
	window  float64
	procs   int
	track   bool
	perAct  bool
	perReg  bool
	filter  map[string]bool
	windows map[int]*windowAcc

	// Retention state (cap > 0). sealed flips on the first decimation;
	// from then on every base window below ringStart lives folded into
	// coarse (keyed by base index divided by factor), and ring windows
	// keep full resolution. factor is the current decimation ratio —
	// 2 at first, doubling whenever the coarse tail outgrows the cap.
	cap       int
	sealed    bool
	ringStart int
	factor    int
	coarse    map[int]*windowAcc
}

// windowAcc is one window's running accumulation. built caches the
// immutable WindowVector of the last Series build (padded to builtProcs),
// so an unchanged window costs a header copy per snapshot instead of a
// vector copy — the copy-on-write that makes scrape cost proportional to
// the windows that changed since the last snapshot, not to the retained
// count.
type windowAcc struct {
	procSeconds []float64
	events      int
	actSeconds  map[string]float64
	actProc     map[string][]float64
	regProc     map[string][]float64

	built      *WindowVector
	builtProcs int
}

// NewFold creates a fold. It panics on a non-positive window width —
// a programming error, not data-dependent.
func NewFold(opts Options) *Fold {
	if opts.Window <= 0 {
		panic(fmt.Sprintf("temporal: window width %g must be positive", opts.Window))
	}
	f := &Fold{
		window:  opts.Window,
		procs:   opts.Procs,
		track:   opts.TrackActivities,
		perAct:  opts.PerActivity,
		perReg:  opts.PerRegion,
		cap:     opts.WindowCap,
		factor:  2,
		windows: make(map[int]*windowAcc),
	}
	if len(opts.Activities) > 0 {
		f.filter = make(map[string]bool, len(opts.Activities))
		for _, a := range opts.Activities {
			f.filter[a] = true
		}
	}
	return f
}

// Window returns the configured window width.
func (f *Fold) Window() float64 { return f.window }

// Procs returns the processor count seen so far: the maximum event rank
// plus one, at least Options.Procs.
func (f *Fold) Procs() int { return f.procs }

// Add folds one event. The event must be well formed (trace.Event
// Validate semantics: nonnegative rank, nonnegative duration); events
// filtered out by Options.Activities still grow the processor count,
// since an idle processor is the imbalance, not missing data. Negative
// start times are handled by flooring, so an event reaching into
// negative virtual time lands in the negative-index windows covering it
// rather than corrupting window zero.
func (f *Fold) Add(e trace.Event) {
	if e.Rank >= f.procs {
		f.procs = e.Rank + 1
	}
	if f.filter != nil && !f.filter[e.Activity] {
		return
	}
	d := e.End - e.Start
	if d == 0 {
		// A zero-duration event contributes no busy time but still
		// counts as an event of the window strictly containing its
		// instant; an instant exactly on a boundary belongs to neither
		// side, matching Log.Window's half-open [from, to) clipping.
		w := int(math.Floor(e.Start / f.window))
		if e.Start == float64(w)*f.window {
			return
		}
		acc := f.accFor(w)
		acc.grow(e.Rank)
		acc.events++
		if f.cap > 0 && len(f.windows) > f.cap {
			f.compact()
		}
		return
	}
	first := int(math.Floor(e.Start / f.window))
	last := int(math.Floor(e.End / f.window))
	if e.End == float64(last)*f.window && last > first {
		last-- // end exactly on a boundary belongs to the previous window
	}
	for w := first; w <= last; w++ {
		lo, hi := float64(w)*f.window, float64(w+1)*f.window
		if e.Start > lo {
			lo = e.Start
		}
		if e.End < hi {
			hi = e.End
		}
		if hi <= lo {
			continue
		}
		acc := f.accFor(w)
		acc.grow(e.Rank)
		acc.procSeconds[e.Rank] += hi - lo
		acc.events++
		if acc.actSeconds != nil {
			acc.actSeconds[e.Activity] += hi - lo
		}
		if acc.actProc != nil {
			vec := acc.actProc[e.Activity]
			for len(vec) <= e.Rank {
				vec = append(vec, 0)
			}
			vec[e.Rank] += hi - lo
			acc.actProc[e.Activity] = vec
		}
		if acc.regProc != nil {
			vec := acc.regProc[e.Region]
			for len(vec) <= e.Rank {
				vec = append(vec, 0)
			}
			vec[e.Rank] += hi - lo
			acc.regProc[e.Region] = vec
		}
	}
	// The compaction runs after the clip loop, never inside it: sealing
	// mid-event could decimate the very window the loop still holds an
	// accumulator for.
	if f.cap > 0 && len(f.windows) > f.cap {
		f.compact()
	}
}

// accFor returns the mutable accumulator the base window w folds into: a
// ring window at full resolution, or — for a late event landing below the
// retention boundary — the coarse window covering it.
func (f *Fold) accFor(w int) *windowAcc {
	if f.sealed && w < f.ringStart {
		acc := f.coarseAcc(floorDiv(w, f.factor))
		acc.built = nil
		return acc
	}
	acc := f.acc(w)
	acc.built = nil
	return acc
}

// acc returns the ring accumulator of window w, creating it on first use.
func (f *Fold) acc(w int) *windowAcc {
	acc, ok := f.windows[w]
	if !ok {
		acc = f.newAcc()
		f.windows[w] = acc
	}
	return acc
}

// coarseAcc returns the coarse accumulator of decimated window c,
// creating it on first use.
func (f *Fold) coarseAcc(c int) *windowAcc {
	acc, ok := f.coarse[c]
	if !ok {
		acc = f.newAcc()
		f.coarse[c] = acc
	}
	return acc
}

func (f *Fold) newAcc() *windowAcc {
	acc := &windowAcc{}
	if f.track {
		acc.actSeconds = make(map[string]float64)
	}
	if f.perAct {
		acc.actProc = make(map[string][]float64)
	}
	if f.perReg {
		acc.regProc = make(map[string][]float64)
	}
	return acc
}

// grow extends the busy vector to cover rank.
func (a *windowAcc) grow(rank int) {
	for len(a.procSeconds) <= rank {
		a.procSeconds = append(a.procSeconds, 0)
	}
}

// compact enforces the window cap: the oldest quarter of the ring is
// decimated into the coarse tail (in ascending index order, so repeated
// runs over the same events produce identical sums), and the coarse tail
// re-decimates 2:1 — doubling its width — until it fits the cap too.
// Quarter-at-a-time hysteresis amortizes the sort: one compaction per
// cap/4 appended windows, O(log cap) per window.
func (f *Fold) compact() {
	idxs := make([]int, 0, len(f.windows))
	for w := range f.windows {
		idxs = append(idxs, w)
	}
	sort.Ints(idxs)
	keep := f.cap - f.cap/4
	if keep < 1 {
		keep = 1
	}
	seal := idxs[:len(idxs)-keep]
	if len(seal) == 0 {
		return
	}
	if f.coarse == nil {
		f.coarse = make(map[int]*windowAcc)
	}
	for _, w := range seal {
		dst := f.coarseAcc(floorDiv(w, f.factor))
		dst.mergeFrom(f.windows[w])
		delete(f.windows, w)
	}
	f.ringStart = idxs[len(idxs)-keep]
	f.sealed = true
	for len(f.coarse) > f.cap {
		f.factor *= 2
		old := f.coarse
		cIdxs := make([]int, 0, len(old))
		for c := range old {
			cIdxs = append(cIdxs, c)
		}
		sort.Ints(cIdxs)
		f.coarse = make(map[int]*windowAcc, len(old)/2+1)
		for _, c := range cIdxs {
			nc := floorDiv(c, 2)
			if dst, ok := f.coarse[nc]; ok {
				dst.mergeFrom(old[c])
			} else {
				old[c].built = nil
				f.coarse[nc] = old[c]
			}
		}
	}
}

// mergeFrom folds src's accumulation into a: the 2:1 decimation step.
// Busy time is additive over window unions, so the merged vectors equal
// the exact windows resampled to the coarser width.
func (a *windowAcc) mergeFrom(src *windowAcc) {
	a.built = nil
	a.grow(len(src.procSeconds) - 1)
	for p, t := range src.procSeconds {
		a.procSeconds[p] += t
	}
	a.events += src.events
	for act, t := range src.actSeconds {
		if a.actSeconds == nil {
			a.actSeconds = make(map[string]float64)
		}
		a.actSeconds[act] += t
	}
	a.actProc = mergeVecMap(a.actProc, src.actProc)
	a.regProc = mergeVecMap(a.regProc, src.regProc)
}

// mergeVecMap sums src's per-dimension vectors into dst elementwise.
func mergeVecMap(dst, src map[string][]float64) map[string][]float64 {
	if len(src) == 0 {
		return dst
	}
	if dst == nil {
		dst = make(map[string][]float64, len(src))
	}
	for k, vec := range src {
		d := dst[k]
		for len(d) < len(vec) {
			d = append(d, 0)
		}
		for p, t := range vec {
			d[p] += t
		}
		dst[k] = d
	}
	return dst
}

// floorDiv is floored integer division: the quotient rounds toward
// negative infinity, so negative window indices decimate into the coarse
// window covering them rather than the one above.
func floorDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// Series snapshots the fold into an immutable window series: one entry
// per non-empty window in time order, busy vectors padded to Procs so
// ranks idle for a whole window count as zeros. The fold can keep
// accumulating afterwards; the series does not alias its mutable buffers
// — windows unchanged since the previous Series call share their built
// immutable vectors, so the snapshot costs O(retained) header copies plus
// vector copies only for the windows that actually changed.
//
// With a WindowCap set, Windows is the full-resolution ring and the
// decimated prefix is published through the series' Coarse fields.
func (f *Fold) Series() *Series {
	s := &Series{Window: f.window, Procs: f.procs}
	s.Windows = f.buildList(f.windows)
	if f.sealed {
		s.CoarseWindow = f.window * float64(f.factor)
		s.RingStart = f.ringStart
		s.Coarse = f.buildList(f.coarse)
	}
	return s
}

// buildList renders one accumulator map as sorted immutable vectors,
// reusing each accumulator's cached build when neither it nor the
// processor count changed.
func (f *Fold) buildList(accs map[int]*windowAcc) []WindowVector {
	if len(accs) == 0 {
		return nil
	}
	idxs := make([]int, 0, len(accs))
	for w := range accs {
		idxs = append(idxs, w)
	}
	sort.Ints(idxs)
	out := make([]WindowVector, 0, len(idxs))
	for _, w := range idxs {
		out = append(out, *accs[w].build(w, f.procs))
	}
	return out
}

// build returns the accumulator's immutable vector at the given index,
// padded to procs, rebuilding only when the accumulation changed or the
// processor count grew since the cached build.
func (a *windowAcc) build(index, procs int) *WindowVector {
	if a.built != nil && a.builtProcs == procs && a.built.Index == index {
		return a.built
	}
	v := &WindowVector{
		Index:       index,
		Events:      a.events,
		ProcSeconds: append([]float64(nil), a.procSeconds...),
	}
	for len(v.ProcSeconds) < procs {
		v.ProcSeconds = append(v.ProcSeconds, 0)
	}
	v.Dominant = dominant(a.actSeconds)
	if len(a.actProc) > 0 {
		v.PerActivity = make(map[string][]float64, len(a.actProc))
		for act, vec := range a.actProc {
			padded := append([]float64(nil), vec...)
			for len(padded) < procs {
				padded = append(padded, 0)
			}
			v.PerActivity[act] = padded
		}
	}
	if len(a.regProc) > 0 {
		v.PerRegion = make(map[string][]float64, len(a.regProc))
		for r, vec := range a.regProc {
			padded := append([]float64(nil), vec...)
			for len(padded) < procs {
				padded = append(padded, 0)
			}
			v.PerRegion[r] = padded
		}
	}
	a.built, a.builtProcs = v, procs
	return v
}

// dominant returns the activity with the largest busy time, breaking
// ties by name so the result is deterministic; "" when nothing was
// tracked.
func dominant(actSeconds map[string]float64) string {
	best, bestT := "", 0.0
	for a, t := range actSeconds {
		if t > bestT || (t == bestT && t > 0 && a < best) {
			best, bestT = a, t
		}
	}
	return best
}

// FoldLog folds a whole event log and returns its window series — the
// offline equivalent of the monitor's incremental windowing. The
// processor count is the log's rank count (or Options.Procs if larger),
// so filtered trajectories still standardize over every processor of
// the run.
func FoldLog(lg *trace.Log, opts Options) (*Series, error) {
	if lg == nil {
		return nil, fmt.Errorf("temporal: nil log")
	}
	if opts.Window <= 0 {
		return nil, fmt.Errorf("temporal: window width %g must be positive", opts.Window)
	}
	f := NewFold(opts)
	lg.Each(f.Add)
	return f.Series(), nil
}
