// Package temporal is the repository's single windowed-analysis engine:
// it folds event traces into per-window per-processor busy-time vectors,
// summarizes them into imbalance trajectories (the /timeline.json the
// live monitor serves), merges the window series of federated endpoints,
// and segments trajectories into phases with PELT-style change-point
// detection.
//
// Before this package existed the windowing semantics lived in two
// divergent copies — the monitor's incremental fold and the offline
// trace.Log.Window clipping — and the offline toolchain had none at all.
// Fold is now the one implementation; Log.Window survives as the
// per-phase slicing oracle its property tests compare against.
//
// The clipping semantics, shared by every consumer:
//
//   - An event overlapping several windows contributes to each the exact
//     overlap of its interval with the half-open window [w·dt, (w+1)·dt).
//   - An event ending exactly on a window boundary belongs to the window
//     it fills, not the empty one it touches.
//   - A zero-duration event contributes no busy time but counts as an
//     event of the window strictly containing its instant; an instant
//     exactly on a boundary belongs to neither side.
package temporal

import (
	"fmt"
	"math"
	"sort"

	"loadimb/internal/trace"
)

// Options configures a Fold.
type Options struct {
	// Window is the window width in virtual seconds; it must be
	// positive.
	Window float64
	// Procs is the minimum processor count of the produced series:
	// trajectories divide load over every processor of the run, so ranks
	// that never produce a matching event still count as zeros. 0 means
	// the maximum rank seen plus one.
	Procs int
	// Activities, when non-empty, restricts the busy-time accumulation
	// to the named activities. The live monitor folds everything; the
	// offline toolchain uses the filter to compute, say, the trajectory
	// of computation time alone — in synchronized message-passing runs
	// the all-activity busy time is uniform by construction (waiting is
	// instrumented too), and the imbalance signal lives in how the
	// activity mix is divided.
	Activities []string
	// TrackActivities records per-window per-activity busy time so the
	// series can report each window's dominant activity. The live
	// monitor leaves it off (its wire format predates the field); the
	// offline trajectory turns it on.
	TrackActivities bool
	// PerActivity records per-window per-activity busy *vectors* (one
	// busy time per processor per activity), so a trajectory — and its
	// phase segmentation — can be computed for each activity separately.
	// It is independent of TrackActivities: the live monitor turns on
	// PerActivity alone, keeping /timeline.json's wire format (which has
	// no Dominant field) byte-identical.
	PerActivity bool
	// PerRegion records per-window per-region busy vectors, the code-region
	// counterpart of PerActivity: a diagnosis can then attribute a rank's
	// divergence to the region it spent the extra time in, not just the
	// activity class.
	PerRegion bool
}

// Fold incrementally accumulates events into per-window busy vectors. It
// is not concurrency-safe; the monitor serializes Add calls under its
// fold mutex, offline callers fold a log single-threaded.
type Fold struct {
	window  float64
	procs   int
	track   bool
	perAct  bool
	perReg  bool
	filter  map[string]bool
	windows map[int]*windowAcc
}

// windowAcc is one window's running accumulation.
type windowAcc struct {
	procSeconds []float64
	events      int
	actSeconds  map[string]float64
	actProc     map[string][]float64
	regProc     map[string][]float64
}

// NewFold creates a fold. It panics on a non-positive window width —
// a programming error, not data-dependent.
func NewFold(opts Options) *Fold {
	if opts.Window <= 0 {
		panic(fmt.Sprintf("temporal: window width %g must be positive", opts.Window))
	}
	f := &Fold{
		window:  opts.Window,
		procs:   opts.Procs,
		track:   opts.TrackActivities,
		perAct:  opts.PerActivity,
		perReg:  opts.PerRegion,
		windows: make(map[int]*windowAcc),
	}
	if len(opts.Activities) > 0 {
		f.filter = make(map[string]bool, len(opts.Activities))
		for _, a := range opts.Activities {
			f.filter[a] = true
		}
	}
	return f
}

// Window returns the configured window width.
func (f *Fold) Window() float64 { return f.window }

// Procs returns the processor count seen so far: the maximum event rank
// plus one, at least Options.Procs.
func (f *Fold) Procs() int { return f.procs }

// Add folds one event. The event must be well formed (trace.Event
// Validate semantics: nonnegative rank, nonnegative duration); events
// filtered out by Options.Activities still grow the processor count,
// since an idle processor is the imbalance, not missing data. Negative
// start times are handled by flooring, so an event reaching into
// negative virtual time lands in the negative-index windows covering it
// rather than corrupting window zero.
func (f *Fold) Add(e trace.Event) {
	if e.Rank >= f.procs {
		f.procs = e.Rank + 1
	}
	if f.filter != nil && !f.filter[e.Activity] {
		return
	}
	d := e.End - e.Start
	if d == 0 {
		// A zero-duration event contributes no busy time but still
		// counts as an event of the window strictly containing its
		// instant; an instant exactly on a boundary belongs to neither
		// side, matching Log.Window's half-open [from, to) clipping.
		w := int(math.Floor(e.Start / f.window))
		if e.Start == float64(w)*f.window {
			return
		}
		acc := f.acc(w)
		acc.grow(e.Rank)
		acc.events++
		return
	}
	first := int(math.Floor(e.Start / f.window))
	last := int(math.Floor(e.End / f.window))
	if e.End == float64(last)*f.window && last > first {
		last-- // end exactly on a boundary belongs to the previous window
	}
	for w := first; w <= last; w++ {
		lo, hi := float64(w)*f.window, float64(w+1)*f.window
		if e.Start > lo {
			lo = e.Start
		}
		if e.End < hi {
			hi = e.End
		}
		if hi <= lo {
			continue
		}
		acc := f.acc(w)
		acc.grow(e.Rank)
		acc.procSeconds[e.Rank] += hi - lo
		acc.events++
		if acc.actSeconds != nil {
			acc.actSeconds[e.Activity] += hi - lo
		}
		if acc.actProc != nil {
			vec := acc.actProc[e.Activity]
			for len(vec) <= e.Rank {
				vec = append(vec, 0)
			}
			vec[e.Rank] += hi - lo
			acc.actProc[e.Activity] = vec
		}
		if acc.regProc != nil {
			vec := acc.regProc[e.Region]
			for len(vec) <= e.Rank {
				vec = append(vec, 0)
			}
			vec[e.Rank] += hi - lo
			acc.regProc[e.Region] = vec
		}
	}
}

// acc returns the accumulator of window w, creating it on first use.
func (f *Fold) acc(w int) *windowAcc {
	acc, ok := f.windows[w]
	if !ok {
		acc = &windowAcc{}
		if f.track {
			acc.actSeconds = make(map[string]float64)
		}
		if f.perAct {
			acc.actProc = make(map[string][]float64)
		}
		if f.perReg {
			acc.regProc = make(map[string][]float64)
		}
		f.windows[w] = acc
	}
	return acc
}

// grow extends the busy vector to cover rank.
func (a *windowAcc) grow(rank int) {
	for len(a.procSeconds) <= rank {
		a.procSeconds = append(a.procSeconds, 0)
	}
}

// Series snapshots the fold into an immutable window series: one entry
// per non-empty window in time order, busy vectors padded to Procs so
// ranks idle for a whole window count as zeros. The fold can keep
// accumulating afterwards; the series does not alias its buffers.
func (f *Fold) Series() *Series {
	s := &Series{Window: f.window, Procs: f.procs}
	if len(f.windows) == 0 {
		return s
	}
	idxs := make([]int, 0, len(f.windows))
	for w := range f.windows {
		idxs = append(idxs, w)
	}
	sort.Ints(idxs)
	s.Windows = make([]WindowVector, 0, len(idxs))
	for _, w := range idxs {
		acc := f.windows[w]
		v := WindowVector{
			Index:       w,
			Events:      acc.events,
			ProcSeconds: append([]float64(nil), acc.procSeconds...),
		}
		for len(v.ProcSeconds) < f.procs {
			v.ProcSeconds = append(v.ProcSeconds, 0)
		}
		v.Dominant = dominant(acc.actSeconds)
		if len(acc.actProc) > 0 {
			v.PerActivity = make(map[string][]float64, len(acc.actProc))
			for a, vec := range acc.actProc {
				padded := append([]float64(nil), vec...)
				for len(padded) < f.procs {
					padded = append(padded, 0)
				}
				v.PerActivity[a] = padded
			}
		}
		if len(acc.regProc) > 0 {
			v.PerRegion = make(map[string][]float64, len(acc.regProc))
			for r, vec := range acc.regProc {
				padded := append([]float64(nil), vec...)
				for len(padded) < f.procs {
					padded = append(padded, 0)
				}
				v.PerRegion[r] = padded
			}
		}
		s.Windows = append(s.Windows, v)
	}
	return s
}

// dominant returns the activity with the largest busy time, breaking
// ties by name so the result is deterministic; "" when nothing was
// tracked.
func dominant(actSeconds map[string]float64) string {
	best, bestT := "", 0.0
	for a, t := range actSeconds {
		if t > bestT || (t == bestT && t > 0 && a < best) {
			best, bestT = a, t
		}
	}
	return best
}

// FoldLog folds a whole event log and returns its window series — the
// offline equivalent of the monitor's incremental windowing. The
// processor count is the log's rank count (or Options.Procs if larger),
// so filtered trajectories still standardize over every processor of
// the run.
func FoldLog(lg *trace.Log, opts Options) (*Series, error) {
	if lg == nil {
		return nil, fmt.Errorf("temporal: nil log")
	}
	if opts.Window <= 0 {
		return nil, fmt.Errorf("temporal: window width %g must be positive", opts.Window)
	}
	f := NewFold(opts)
	lg.Each(f.Add)
	return f.Series(), nil
}
