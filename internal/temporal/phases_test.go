package temporal

import (
	"math"
	"testing"

	"loadimb/internal/core"
	"loadimb/internal/stats"
	"loadimb/internal/trace"
)

// twoRegimeLog builds a 4-rank run with a balanced first stretch (every
// rank computes 0..5 equally, then one more balanced second 5..6) and an
// imbalanced tail where only rank 0 keeps computing 6..10. Waiting is
// deliberately not instrumented: per-processor totals should carry the
// imbalance, as in a busy-time-only measurement.
func twoRegimeLog(t *testing.T) *trace.Log {
	t.Helper()
	var lg trace.Log
	add := func(rank int, region, activity string, start, end float64) {
		t.Helper()
		if err := lg.Append(trace.Event{Rank: rank, Region: region, Activity: activity, Start: start, End: end}); err != nil {
			t.Fatal(err)
		}
	}
	for r := 0; r < 4; r++ {
		add(r, "bulk", "computation", 0, 5)
	}
	add(0, "tail", "computation", 5, 10)
	for r := 1; r < 4; r++ {
		add(r, "tail", "computation", 5, 6)
	}
	return &lg
}

func TestAnalyzePhasesSeparatesRegimes(t *testing.T) {
	lg := twoRegimeLog(t)
	ser, err := FoldLog(lg, Options{Window: 1, Activities: []string{"computation"}})
	if err != nil {
		t.Fatal(err)
	}
	phases := Segment(ser.Stats(), 0)
	if len(phases) != 2 {
		t.Fatalf("%d phases, want 2: %+v", len(phases), phases)
	}
	if phases[0].Label != LabelQuiet || phases[1].Label != LabelHot {
		t.Errorf("labels = %q, %q, want quiet then hot", phases[0].Label, phases[1].Label)
	}
	// Window 5 ([5, 6)) still has every rank computing; the regime shift
	// is at window 6.
	if phases[0].End != 6 || phases[1].Start != 6 {
		t.Errorf("phase boundary at %g/%g, want 6", phases[0].End, phases[1].Start)
	}

	reports, err := AnalyzePhases(lg, phases, core.AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("%d reports, want 2", len(reports))
	}
	for i, rep := range reports {
		if rep.Cube == nil || rep.Analysis == nil {
			t.Fatalf("report %d missing cube or analysis", i)
		}
		// One stable rank space across phases.
		if rep.Cube.NumProcs() != 4 {
			t.Errorf("report %d procs = %d, want 4", i, rep.Cube.NumProcs())
		}
		if rep.IDP == nil {
			t.Fatalf("report %d ID_P undefined", i)
		}
	}
	// The balanced phase is (near-)perfectly even once waiting counts as
	// instrumented time is excluded... here every rank spends 5s, ID_P 0.
	if *reports[0].IDP > 1e-9 {
		t.Errorf("balanced phase ID_P = %g, want ~0", *reports[0].IDP)
	}
	if *reports[1].IDP <= *reports[0].IDP {
		t.Errorf("imbalanced phase ID_P = %g, not above balanced %g",
			*reports[1].IDP, *reports[0].IDP)
	}

	// Whole-run ID_P sits between the phase values: the average the
	// per-phase view un-dilutes.
	cube, err := lg.Aggregate(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	totals := make([]float64, cube.NumProcs())
	for p := range totals {
		tt, err := cube.ProcTotalTime(p)
		if err != nil {
			t.Fatal(err)
		}
		totals[p] = tt
	}
	whole, err := stats.EuclideanFromBalance(totals)
	if err != nil {
		t.Fatal(err)
	}
	if !(whole < *reports[1].IDP) {
		t.Errorf("whole-run ID_P %g not below hot-phase ID_P %g", whole, *reports[1].IDP)
	}
}

func TestAnalyzePhasesRebasesTime(t *testing.T) {
	lg := twoRegimeLog(t)
	phases := []Phase{{FirstWindow: 6, LastWindow: 9, Start: 5, End: 10, Windows: 4, Label: LabelHot}}
	reports, err := AnalyzePhases(lg, phases, core.AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The phase cube's program time is the phase duration, not the run's.
	if pt := reports[0].Cube.ProgramTime(); math.Abs(pt-5) > 1e-12 {
		t.Errorf("phase program time = %g, want 5", pt)
	}
}

func TestAnalyzePhasesEmptyPhase(t *testing.T) {
	var lg trace.Log
	if err := lg.Append(trace.Event{Rank: 0, Region: "r", Activity: "a", Start: 0.5, End: 0.5}); err != nil {
		t.Fatal(err)
	}
	// A phase holding only a zero-duration event still slices to a (zero)
	// cube, but its ID_P is undefined: no load to disperse.
	reports, err := AnalyzePhases(&lg, []Phase{{Start: 0, End: 1, Windows: 1, Label: LabelIdle}}, core.AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 {
		t.Fatalf("%d reports, want 1", len(reports))
	}
	if reports[0].Cube == nil {
		t.Fatal("zero-duration phase lost its cube")
	}
	if reports[0].IDP != nil || reports[0].Gini != 0 {
		t.Errorf("all-idle phase reported dispersion: %+v", reports[0])
	}

	// A phase covering no events at all reports without a cube.
	reports, err = AnalyzePhases(&lg, []Phase{{Start: 2, End: 3, Windows: 0, Label: LabelIdle}}, core.AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if reports[0].Cube != nil || reports[0].Analysis != nil {
		t.Errorf("eventless phase produced a cube: %+v", reports[0])
	}
}
