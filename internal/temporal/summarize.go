package temporal

import (
	"sort"

	"loadimb/internal/stats"
)

// PhaseSummary is one detected phase enriched with the per-phase
// dispersion indices — the wire document the monitor and the federator
// serve at /phases.json. Unlike PhaseReport it is computed from the
// window series alone (no event log or cube required), so the live and
// federated paths can produce it from what they already hold.
type PhaseSummary struct {
	// FirstWindow and LastWindow are the phase's first and last member
	// window indices (inclusive); Start and End its virtual-time bounds.
	FirstWindow int     `json:"first_window"`
	LastWindow  int     `json:"last_window"`
	Start       float64 `json:"start"`
	End         float64 `json:"end"`
	// Windows is the number of non-empty member windows.
	Windows int `json:"windows"`
	// MeanID is the mean of the member windows' IDs (null IDs as zero) —
	// the level the change-point fit segmented on.
	MeanID float64 `json:"mean_id"`
	// Label is the phase's classification: idle, quiet or hot.
	Label string `json:"label"`
	// ID is the Euclidean index of dispersion of the per-processor busy
	// time summed over the phase — the paper's ID_P restricted to the
	// phase. Null when the phase recorded no busy time.
	ID *float64 `json:"id"`
	// Gini is the Gini coefficient of the same per-phase busy vector.
	Gini float64 `json:"gini"`
	// HotActivities lists the activities whose within-phase mean window
	// ID is at or above that activity's whole-trajectory mean — the
	// activities this phase is a hot stretch *for*. Present only when
	// the series carries per-activity vectors.
	HotActivities []string `json:"hot_activities,omitempty"`
}

// Phase returns the bare segmentation phase the summary enriched — the
// form Diagnose-style consumers that only need boundaries and labels
// take, letting the live path reuse its already-summarized phases
// without re-running the segmenter.
func (s PhaseSummary) Phase() Phase {
	return Phase{
		FirstWindow: s.FirstWindow,
		LastWindow:  s.LastWindow,
		Start:       s.Start,
		End:         s.End,
		Windows:     s.Windows,
		MeanID:      s.MeanID,
		Label:       s.Label,
	}
}

// SummarizePhases enriches a segmentation of ser's trajectory with
// per-phase dispersion indices computed from the series' busy vectors,
// and — when the series carries per-activity vectors — each phase's hot
// activities. phases must be a segmentation of ser's own trajectory
// (Segment or StreamSegmenter output over ser.Stats()).
func SummarizePhases(ser *Series, phases []Phase) []PhaseSummary {
	if ser == nil || len(phases) == 0 {
		return nil
	}
	// Per-activity window trajectories and their defined-window means,
	// shared across phases.
	actNames := ser.ActivityNames()
	actStats := make(map[string][]WindowStat, len(actNames))
	actMean := make(map[string]float64, len(actNames))
	for _, a := range actNames {
		st := ser.ActivitySeries(a).Stats()
		actStats[a] = st
		sum, defined := 0.0, 0
		for _, w := range st {
			if w.ID != nil {
				sum += *w.ID
				defined++
			}
		}
		if defined > 0 {
			actMean[a] = sum / float64(defined)
		}
	}
	out := make([]PhaseSummary, 0, len(phases))
	pos := 0
	for _, ph := range phases {
		sum := PhaseSummary{
			FirstWindow: ph.FirstWindow,
			LastWindow:  ph.LastWindow,
			Start:       ph.Start,
			End:         ph.End,
			Windows:     ph.Windows,
			MeanID:      ph.MeanID,
			Label:       ph.Label,
		}
		// Member windows are contiguous in the series: phases partition
		// the window sequence in order.
		for pos < len(ser.Windows) && ser.Windows[pos].Index < ph.FirstWindow {
			pos++
		}
		first := pos
		busy := make([]float64, ser.Procs)
		for pos < len(ser.Windows) && ser.Windows[pos].Index <= ph.LastWindow {
			for p, t := range ser.Windows[pos].ProcSeconds {
				if p < len(busy) {
					busy[p] += t
				}
			}
			pos++
		}
		if id, err := stats.EuclideanFromBalance(busy); err == nil {
			sum.ID = &id
		}
		sum.Gini = GiniOf(busy)
		for _, a := range actNames {
			st := actStats[a]
			mean, defined := 0.0, 0
			for i := first; i < pos && i < len(st); i++ {
				if st[i].ID != nil {
					mean += *st[i].ID
					defined++
				}
			}
			if defined == 0 {
				continue
			}
			mean /= float64(defined)
			if mean >= actMean[a] && mean > 0 {
				sum.HotActivities = append(sum.HotActivities, a)
			}
		}
		sort.Strings(sum.HotActivities)
		out = append(out, sum)
	}
	return out
}
