package temporal

import (
	"fmt"
	"math"
	"sort"
)

// JobWindows is one job's contribution to a federated window series.
type JobWindows struct {
	// Procs is the job's processor count in the merged rank space; 0
	// means Series.Procs. The federation layer passes each job's cube
	// processor count so window ranks line up with the rank offsets
	// trace.Federate applies to the cubes.
	Procs int
	// Series is the job's window series. A nil series, or one with
	// windowing disabled (zero width), contributes no windows but still
	// advances the rank offset, keeping later jobs aligned with the
	// federated cube.
	Series *Series
	// Label, when non-empty, namespaces the job's per-region keys in the
	// merged series as "label/region" — the same convention trace.Federate
	// applies to the merged cube, so a diagnosis over the merged windows
	// names regions exactly as the cube does. Activities are deliberately
	// left un-namespaced: they are a shared vocabulary across jobs.
	Label string
}

// maxWidthMultiple bounds the search for a common window width: two
// widths whose least common multiple exceeds maxWidthMultiple times the
// larger one are treated as non-commensurable. Real deployments pick
// round window widths (1s vs 2s, 0.5s vs 2s), whose common multiple is a
// handful of the larger width away.
const maxWidthMultiple = 4096

// CommonWindow returns the coarsest-common-multiple window width of the
// given widths: the smallest W that every width divides to an integer
// (within 1e-9 relative tolerance, absorbing float division noise).
// Windows of commensurable widths can be aligned by resampling each
// series to W — busy time is additive over window unions — while
// non-commensurable widths cover incompatible intervals and return an
// error.
func CommonWindow(widths []float64) (float64, error) {
	if len(widths) == 0 {
		return 0, fmt.Errorf("temporal: no window widths")
	}
	maxw := 0.0
	for _, w := range widths {
		if w <= 0 {
			return 0, fmt.Errorf("temporal: non-positive window width %g", w)
		}
		if w > maxw {
			maxw = w
		}
	}
	for k := 1; k <= maxWidthMultiple; k++ {
		W := maxw * float64(k)
		ok := true
		for _, w := range widths {
			if !dividesEvenly(W, w) {
				ok = false
				break
			}
		}
		if ok {
			return W, nil
		}
	}
	return 0, fmt.Errorf("temporal: window widths %v are not commensurable (no common multiple up to %d x %g)",
		widths, maxWidthMultiple, maxw)
}

// dividesEvenly reports whether w divides W to an integer within
// tolerance.
func dividesEvenly(W, w float64) bool {
	r := W / w
	n := math.Round(r)
	return n >= 1 && math.Abs(r-n) <= 1e-9*n
}

// widthFactor returns the integer ratio W/w for commensurable widths.
func widthFactor(W, w float64) int {
	return int(math.Round(W / w))
}

// ceilDiv is ceiling integer division.
func ceilDiv(a, b int) int { return -floorDiv(-a, b) }

// Merge combines the window series of several concurrently running jobs
// into one cluster-wide series, the timeline counterpart of
// trace.Federate: processor ranks are offset job by job (never added),
// windows align by interval, and each merged window's busy vector is the
// concatenation of the jobs' vectors in job order.
//
// Contributing series need not share one window width: the merged series
// uses the coarsest common multiple of the jobs' widths, and each job's
// windows are resampled onto it (several narrow windows summing into one
// merged window). Only genuinely non-commensurable widths — no common
// multiple — are an error, so a federation tree survives mixed -window
// configurations. When every job uses the same width the resampling is
// the identity and the merge is unchanged.
//
// Bounded (decimated) contributions merge too: the merged ring begins at
// the latest ring start of any decimated job, and everything older — the
// jobs' coarse tails plus any exact windows below that boundary — is
// resampled onto a common coarse width and served as the merged series'
// own coarse tail.
func Merge(jobs []JobWindows) (*Series, error) {
	if len(jobs) == 0 {
		return nil, fmt.Errorf("temporal: no window series to merge")
	}
	var ringWidths, coarseWidths []float64
	total := 0
	for k, job := range jobs {
		procs := job.Procs
		if procs == 0 && job.Series != nil {
			procs = job.Series.Procs
		}
		if procs < 0 {
			return nil, fmt.Errorf("temporal: merged job %d has negative processor count %d", k, procs)
		}
		total += procs
		if job.Series == nil || job.Series.Window <= 0 {
			continue
		}
		ringWidths = append(ringWidths, job.Series.Window)
		if job.Series.CoarseWindow > 0 {
			coarseWidths = append(coarseWidths, job.Series.CoarseWindow)
		}
	}
	if len(ringWidths) == 0 {
		return &Series{Procs: total}, nil
	}
	W, err := CommonWindow(ringWidths)
	if err != nil {
		return nil, err
	}

	// The merged ring starts where every decimated job still has full
	// resolution; everything older goes to the merged coarse tail, at the
	// common multiple of the merged ring width and every contributing
	// coarse width.
	haveCoarse := len(coarseWidths) > 0
	ringStart := math.MinInt
	Wc := 0.0
	if haveCoarse {
		for _, job := range jobs {
			s := job.Series
			if s == nil || s.Window <= 0 || s.CoarseWindow <= 0 {
				continue
			}
			if rs := ceilDiv(s.RingStart, widthFactor(W, s.Window)); rs > ringStart {
				ringStart = rs
			}
		}
		if Wc, err = CommonWindow(append(coarseWidths, W)); err != nil {
			return nil, err
		}
	}

	type mergedWin struct {
		events int
		busy   []float64
		act    map[string][]float64
		reg    map[string][]float64
	}
	ring := make(map[int]*mergedWin)
	coarse := make(map[int]*mergedWin)
	accInto := func(m map[int]*mergedWin, idx int, v *WindowVector, k, procs, offset int, label string) error {
		// An explicit Procs below the vector length cannot be honored by
		// clipping: spilling into the next job's rank space would corrupt
		// its processors, and silently dropping the tail would discard
		// busy time without a trace. A tail of exact zeros is mere padding
		// and is trimmed; any nonzero dropped time is an error naming the
		// inconsistency.
		for p := procs; p < len(v.ProcSeconds); p++ {
			if t := v.ProcSeconds[p]; t != 0 {
				return fmt.Errorf(
					"temporal: merged job %d window %d has busy time on rank %d (%g s) beyond its declared %d processors",
					k, v.Index, p, t, procs)
			}
		}
		w, ok := m[idx]
		if !ok {
			w = &mergedWin{busy: make([]float64, total)}
			m[idx] = w
		}
		w.events += v.Events
		for p, t := range v.ProcSeconds {
			if p >= procs {
				break // verified zero padding above
			}
			w.busy[offset+p] += t
		}
		for a, vec := range v.PerActivity {
			for p := procs; p < len(vec); p++ {
				if t := vec[p]; t != 0 {
					return fmt.Errorf(
						"temporal: merged job %d window %d activity %q has busy time on rank %d (%g s) beyond its declared %d processors",
						k, v.Index, a, p, t, procs)
				}
			}
			if w.act == nil {
				w.act = make(map[string][]float64)
			}
			mv := w.act[a]
			if mv == nil {
				mv = make([]float64, total)
				w.act[a] = mv
			}
			for p, t := range vec {
				if p >= procs {
					break
				}
				mv[offset+p] += t
			}
		}
		for r, vec := range v.PerRegion {
			for p := procs; p < len(vec); p++ {
				if t := vec[p]; t != 0 {
					return fmt.Errorf(
						"temporal: merged job %d window %d region %q has busy time on rank %d (%g s) beyond its declared %d processors",
						k, v.Index, r, p, t, procs)
				}
			}
			if label != "" {
				r = label + "/" + r
			}
			if w.reg == nil {
				w.reg = make(map[string][]float64)
			}
			mv := w.reg[r]
			if mv == nil {
				mv = make([]float64, total)
				w.reg[r] = mv
			}
			for p, t := range vec {
				if p >= procs {
					break
				}
				mv[offset+p] += t
			}
		}
		return nil
	}

	offset := 0
	for k, job := range jobs {
		procs := job.Procs
		if procs == 0 && job.Series != nil {
			procs = job.Series.Procs
		}
		if s := job.Series; s != nil && s.Window > 0 {
			m := widthFactor(W, s.Window)
			if s.CoarseWindow > 0 {
				mc := widthFactor(Wc, s.CoarseWindow)
				for i := range s.Coarse {
					v := &s.Coarse[i]
					if err := accInto(coarse, floorDiv(v.Index, mc), v, k, procs, offset, job.Label); err != nil {
						return nil, err
					}
				}
			}
			for i := range s.Windows {
				v := &s.Windows[i]
				idx := floorDiv(v.Index, m)
				if haveCoarse && idx < ringStart {
					// An exact window older than the merged ring boundary
					// (another job already decimated that stretch) joins
					// the coarse tail instead.
					mC := widthFactor(Wc, s.Window)
					if err := accInto(coarse, floorDiv(v.Index, mC), v, k, procs, offset, job.Label); err != nil {
						return nil, err
					}
					continue
				}
				if err := accInto(ring, idx, v, k, procs, offset, job.Label); err != nil {
					return nil, err
				}
			}
		}
		offset += procs
	}

	anyDims := func(m map[int]*mergedWin) (act, reg bool) {
		for _, w := range m {
			if w.act != nil {
				act = true
			}
			if w.reg != nil {
				reg = true
			}
		}
		return act, reg
	}
	render := func(m map[int]*mergedWin) []WindowVector {
		if len(m) == 0 {
			return nil
		}
		idxs := make([]int, 0, len(m))
		for w := range m {
			idxs = append(idxs, w)
		}
		sort.Ints(idxs)
		anyAct, anyReg := anyDims(m)
		out := make([]WindowVector, 0, len(idxs))
		for _, wIdx := range idxs {
			w := m[wIdx]
			v := WindowVector{
				Index:       wIdx,
				Events:      w.events,
				ProcSeconds: w.busy,
			}
			if anyAct {
				v.PerActivity = w.act
			}
			if anyReg {
				v.PerRegion = w.reg
			}
			out = append(out, v)
		}
		return out
	}

	out := &Series{Window: W, Procs: total, Windows: render(ring)}
	if haveCoarse {
		out.CoarseWindow = Wc
		out.RingStart = ringStart
		out.Coarse = render(coarse)
	}
	return out, nil
}
