package temporal

import (
	"fmt"
	"sort"
)

// JobWindows is one job's contribution to a federated window series.
type JobWindows struct {
	// Procs is the job's processor count in the merged rank space; 0
	// means Series.Procs. The federation layer passes each job's cube
	// processor count so window ranks line up with the rank offsets
	// trace.Federate applies to the cubes.
	Procs int
	// Series is the job's window series. A nil series, or one with
	// windowing disabled (zero width), contributes no windows but still
	// advances the rank offset, keeping later jobs aligned with the
	// federated cube.
	Series *Series
}

// Merge combines the window series of several concurrently running jobs
// into one cluster-wide series, the timeline counterpart of
// trace.Federate: processor ranks are offset job by job (never added),
// windows align by index, and each merged window's busy vector is the
// concatenation of the jobs' vectors in job order. All contributing
// series must share one window width — windows of different widths
// cover different intervals and cannot be aligned.
func Merge(jobs []JobWindows) (*Series, error) {
	if len(jobs) == 0 {
		return nil, fmt.Errorf("temporal: no window series to merge")
	}
	window := 0.0
	total := 0
	for k, job := range jobs {
		procs := job.Procs
		if procs == 0 && job.Series != nil {
			procs = job.Series.Procs
		}
		if procs < 0 {
			return nil, fmt.Errorf("temporal: merged job %d has negative processor count %d", k, procs)
		}
		total += procs
		if job.Series == nil || job.Series.Window <= 0 {
			continue
		}
		if window == 0 {
			window = job.Series.Window
		} else if job.Series.Window != window {
			return nil, fmt.Errorf("temporal: window widths differ across jobs (%g vs %g)",
				window, job.Series.Window)
		}
	}
	out := &Series{Window: window, Procs: total}
	if window == 0 {
		return out, nil
	}
	type mergedWin struct {
		events int
		busy   []float64
	}
	merged := make(map[int]*mergedWin)
	offset := 0
	for _, job := range jobs {
		procs := job.Procs
		if procs == 0 && job.Series != nil {
			procs = job.Series.Procs
		}
		if job.Series != nil && job.Series.Window > 0 {
			for _, v := range job.Series.Windows {
				m, ok := merged[v.Index]
				if !ok {
					m = &mergedWin{busy: make([]float64, total)}
					merged[v.Index] = m
				}
				m.events += v.Events
				for p, t := range v.ProcSeconds {
					// An explicit Procs below the vector length clips the
					// vector: spilling into the next job's rank space
					// would corrupt its processors.
					if p >= procs {
						break
					}
					m.busy[offset+p] += t
				}
			}
		}
		offset += procs
	}
	idxs := make([]int, 0, len(merged))
	for w := range merged {
		idxs = append(idxs, w)
	}
	sort.Ints(idxs)
	out.Windows = make([]WindowVector, 0, len(idxs))
	for _, w := range idxs {
		m := merged[w]
		out.Windows = append(out.Windows, WindowVector{
			Index:       w,
			Events:      m.events,
			ProcSeconds: m.busy,
		})
	}
	return out, nil
}
