package temporal

import (
	"fmt"
	"sort"
)

// JobWindows is one job's contribution to a federated window series.
type JobWindows struct {
	// Procs is the job's processor count in the merged rank space; 0
	// means Series.Procs. The federation layer passes each job's cube
	// processor count so window ranks line up with the rank offsets
	// trace.Federate applies to the cubes.
	Procs int
	// Series is the job's window series. A nil series, or one with
	// windowing disabled (zero width), contributes no windows but still
	// advances the rank offset, keeping later jobs aligned with the
	// federated cube.
	Series *Series
	// Label, when non-empty, namespaces the job's per-region keys in the
	// merged series as "label/region" — the same convention trace.Federate
	// applies to the merged cube, so a diagnosis over the merged windows
	// names regions exactly as the cube does. Activities are deliberately
	// left un-namespaced: they are a shared vocabulary across jobs.
	Label string
}

// Merge combines the window series of several concurrently running jobs
// into one cluster-wide series, the timeline counterpart of
// trace.Federate: processor ranks are offset job by job (never added),
// windows align by index, and each merged window's busy vector is the
// concatenation of the jobs' vectors in job order. All contributing
// series must share one window width — windows of different widths
// cover different intervals and cannot be aligned.
func Merge(jobs []JobWindows) (*Series, error) {
	if len(jobs) == 0 {
		return nil, fmt.Errorf("temporal: no window series to merge")
	}
	window := 0.0
	total := 0
	for k, job := range jobs {
		procs := job.Procs
		if procs == 0 && job.Series != nil {
			procs = job.Series.Procs
		}
		if procs < 0 {
			return nil, fmt.Errorf("temporal: merged job %d has negative processor count %d", k, procs)
		}
		total += procs
		if job.Series == nil || job.Series.Window <= 0 {
			continue
		}
		if window == 0 {
			window = job.Series.Window
		} else if job.Series.Window != window {
			return nil, fmt.Errorf("temporal: window widths differ across jobs (%g vs %g)",
				window, job.Series.Window)
		}
	}
	out := &Series{Window: window, Procs: total}
	if window == 0 {
		return out, nil
	}
	type mergedWin struct {
		events int
		busy   []float64
		act    map[string][]float64
		reg    map[string][]float64
	}
	merged := make(map[int]*mergedWin)
	offset := 0
	anyAct, anyReg := false, false
	for k, job := range jobs {
		procs := job.Procs
		if procs == 0 && job.Series != nil {
			procs = job.Series.Procs
		}
		if job.Series != nil && job.Series.Window > 0 {
			for _, v := range job.Series.Windows {
				// An explicit Procs below the vector length cannot be
				// honored by clipping: spilling into the next job's rank
				// space would corrupt its processors, and silently
				// dropping the tail would discard busy time without a
				// trace. A tail of exact zeros is mere padding and is
				// trimmed; any nonzero dropped time is an error naming
				// the inconsistency.
				for p := procs; p < len(v.ProcSeconds); p++ {
					if t := v.ProcSeconds[p]; t != 0 {
						return nil, fmt.Errorf(
							"temporal: merged job %d window %d has busy time on rank %d (%g s) beyond its declared %d processors",
							k, v.Index, p, t, procs)
					}
				}
				m, ok := merged[v.Index]
				if !ok {
					m = &mergedWin{busy: make([]float64, total)}
					merged[v.Index] = m
				}
				m.events += v.Events
				for p, t := range v.ProcSeconds {
					if p >= procs {
						break // verified zero padding above
					}
					m.busy[offset+p] += t
				}
				for a, vec := range v.PerActivity {
					for p := procs; p < len(vec); p++ {
						if t := vec[p]; t != 0 {
							return nil, fmt.Errorf(
								"temporal: merged job %d window %d activity %q has busy time on rank %d (%g s) beyond its declared %d processors",
								k, v.Index, a, p, t, procs)
						}
					}
					if m.act == nil {
						m.act = make(map[string][]float64)
					}
					mv := m.act[a]
					if mv == nil {
						mv = make([]float64, total)
						m.act[a] = mv
					}
					for p, t := range vec {
						if p >= procs {
							break
						}
						mv[offset+p] += t
					}
					anyAct = true
				}
				for r, vec := range v.PerRegion {
					for p := procs; p < len(vec); p++ {
						if t := vec[p]; t != 0 {
							return nil, fmt.Errorf(
								"temporal: merged job %d window %d region %q has busy time on rank %d (%g s) beyond its declared %d processors",
								k, v.Index, r, p, t, procs)
						}
					}
					if job.Label != "" {
						r = job.Label + "/" + r
					}
					if m.reg == nil {
						m.reg = make(map[string][]float64)
					}
					mv := m.reg[r]
					if mv == nil {
						mv = make([]float64, total)
						m.reg[r] = mv
					}
					for p, t := range vec {
						if p >= procs {
							break
						}
						mv[offset+p] += t
					}
					anyReg = true
				}
			}
		}
		offset += procs
	}
	idxs := make([]int, 0, len(merged))
	for w := range merged {
		idxs = append(idxs, w)
	}
	sort.Ints(idxs)
	out.Windows = make([]WindowVector, 0, len(idxs))
	for _, w := range idxs {
		m := merged[w]
		v := WindowVector{
			Index:       w,
			Events:      m.events,
			ProcSeconds: m.busy,
		}
		if anyAct {
			v.PerActivity = m.act
		}
		if anyReg {
			v.PerRegion = m.reg
		}
		out.Windows = append(out.Windows, v)
	}
	return out, nil
}
