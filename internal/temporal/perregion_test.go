package temporal

import (
	"math"
	"reflect"
	"testing"

	"loadimb/internal/trace"
)

// regionEvent builds a well-formed event for the per-region fold tests.
func regionEvent(rank int, region, activity string, start, end float64) trace.Event {
	return trace.Event{Rank: rank, Region: region, Activity: activity, Start: start, End: end}
}

func TestFoldPerRegionVectors(t *testing.T) {
	f := NewFold(Options{Window: 1.0, PerRegion: true})
	// Rank 0 spends [0, 1.5) in "solve", rank 1 spends [0.5, 1) in "halo":
	// window 0 gets solve=[1,0], halo=[0,0.5]; window 1 gets solve=[0.5,0].
	f.Add(regionEvent(0, "solve", "computation", 0, 1.5))
	f.Add(regionEvent(1, "halo", "p2p", 0.5, 1))
	ser := f.Series()
	if got := ser.RegionNames(); !reflect.DeepEqual(got, []string{"halo", "solve"}) {
		t.Fatalf("RegionNames = %v", got)
	}
	if len(ser.Windows) != 2 {
		t.Fatalf("got %d windows, want 2", len(ser.Windows))
	}
	w0 := ser.Windows[0]
	if !reflect.DeepEqual(w0.PerRegion["solve"], []float64{1, 0}) {
		t.Errorf("window 0 solve = %v", w0.PerRegion["solve"])
	}
	if !reflect.DeepEqual(w0.PerRegion["halo"], []float64{0, 0.5}) {
		t.Errorf("window 0 halo = %v", w0.PerRegion["halo"])
	}
	w1 := ser.Windows[1]
	if !reflect.DeepEqual(w1.PerRegion["solve"], []float64{0.5, 0}) {
		t.Errorf("window 1 solve = %v", w1.PerRegion["solve"])
	}
	if _, ok := w1.PerRegion["halo"]; ok {
		t.Errorf("window 1 unexpectedly has a halo vector: %v", w1.PerRegion["halo"])
	}
}

func TestFoldPerRegionOffByDefault(t *testing.T) {
	f := NewFold(Options{Window: 1.0, PerActivity: true})
	f.Add(regionEvent(0, "solve", "computation", 0, 1))
	ser := f.Series()
	if ser.RegionNames() != nil {
		t.Fatalf("RegionNames = %v, want nil when PerRegion is off", ser.RegionNames())
	}
	if ser.Windows[0].PerRegion != nil {
		t.Fatalf("PerRegion = %v, want nil", ser.Windows[0].PerRegion)
	}
}

func TestRegionSeriesProjection(t *testing.T) {
	f := NewFold(Options{Window: 1.0, PerRegion: true, Procs: 3})
	f.Add(regionEvent(0, "solve", "computation", 0, 1))
	f.Add(regionEvent(1, "halo", "p2p", 0, 0.25))
	f.Add(regionEvent(2, "solve", "computation", 1, 1.75))
	ser := f.Series()
	proj := ser.RegionSeries("solve")
	if proj.Procs != 3 || len(proj.Windows) != 2 {
		t.Fatalf("projection shape: procs=%d windows=%d", proj.Procs, len(proj.Windows))
	}
	if !reflect.DeepEqual(proj.Windows[0].ProcSeconds, []float64{1, 0, 0}) {
		t.Errorf("solve window 0 = %v", proj.Windows[0].ProcSeconds)
	}
	if !reflect.DeepEqual(proj.Windows[1].ProcSeconds, []float64{0, 0, 0.75}) {
		t.Errorf("solve window 1 = %v", proj.Windows[1].ProcSeconds)
	}
	// A region absent from a window projects to all zeros there, keeping
	// the trajectory aligned with the aggregate (null-ID idle semantics).
	halo := ser.RegionSeries("halo")
	if !reflect.DeepEqual(halo.Windows[1].ProcSeconds, []float64{0, 0, 0}) {
		t.Errorf("halo window 1 = %v", halo.Windows[1].ProcSeconds)
	}
	st := halo.Stats()
	if st[1].ID != nil {
		t.Errorf("halo window 1 ID = %v, want null", *st[1].ID)
	}
}

func TestMergePerRegionNamespacing(t *testing.T) {
	mk := func(region string, busy float64) *Series {
		return &Series{
			Window: 1.0, Procs: 2,
			Windows: []WindowVector{{
				Index:       0,
				Events:      1,
				ProcSeconds: []float64{busy, 0},
				PerRegion:   map[string][]float64{region: {busy, 0}},
			}},
		}
	}
	merged, err := Merge([]JobWindows{
		{Procs: 2, Series: mk("solve", 1), Label: "jobA"},
		{Procs: 2, Series: mk("solve", 2), Label: "jobB"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := merged.RegionNames(); !reflect.DeepEqual(got, []string{"jobA/solve", "jobB/solve"}) {
		t.Fatalf("merged RegionNames = %v", got)
	}
	w := merged.Windows[0]
	if !reflect.DeepEqual(w.PerRegion["jobA/solve"], []float64{1, 0, 0, 0}) {
		t.Errorf("jobA/solve = %v", w.PerRegion["jobA/solve"])
	}
	if !reflect.DeepEqual(w.PerRegion["jobB/solve"], []float64{0, 0, 2, 0}) {
		t.Errorf("jobB/solve = %v", w.PerRegion["jobB/solve"])
	}
}

func TestMergePerRegionUnlabeledKeysCollide(t *testing.T) {
	// Without labels, same-named regions from different jobs accumulate
	// into one merged key — the documented opt-out.
	mk := func(busy float64) *Series {
		return &Series{
			Window: 1.0, Procs: 1,
			Windows: []WindowVector{{
				Index:       0,
				ProcSeconds: []float64{busy},
				PerRegion:   map[string][]float64{"solve": {busy}},
			}},
		}
	}
	merged, err := Merge([]JobWindows{
		{Procs: 1, Series: mk(1)},
		{Procs: 1, Series: mk(2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := merged.RegionNames(); !reflect.DeepEqual(got, []string{"solve"}) {
		t.Fatalf("merged RegionNames = %v", got)
	}
	if !reflect.DeepEqual(merged.Windows[0].PerRegion["solve"], []float64{1, 2}) {
		t.Fatalf("solve = %v", merged.Windows[0].PerRegion["solve"])
	}
}

func TestMergePerRegionOverlongVectorErrors(t *testing.T) {
	ser := &Series{
		Window: 1.0, Procs: 2,
		Windows: []WindowVector{{
			Index:       0,
			ProcSeconds: []float64{1, 0},
			PerRegion:   map[string][]float64{"solve": {1, 0, 0.5}},
		}},
	}
	_, err := Merge([]JobWindows{{Procs: 2, Series: ser, Label: "jobA"}, {Procs: 1}})
	if err == nil {
		t.Fatal("expected an error for nonzero region busy time beyond the declared processor count")
	}
}

func TestPhaseSummaryRoundTrip(t *testing.T) {
	ph := Phase{FirstWindow: 2, LastWindow: 5, Start: 1, End: 3, Windows: 4, MeanID: 0.25, Label: LabelHot}
	f := NewFold(Options{Window: 0.5, Procs: 2})
	f.Add(regionEvent(0, "r", "a", 1, 3))
	sums := SummarizePhases(f.Series(), []Phase{ph})
	if len(sums) != 1 {
		t.Fatalf("got %d summaries", len(sums))
	}
	if got := sums[0].Phase(); got != ph {
		t.Fatalf("PhaseSummary.Phase() = %+v, want %+v", got, ph)
	}
	if math.IsNaN(sums[0].Gini) {
		t.Fatal("summary Gini is NaN")
	}
}
