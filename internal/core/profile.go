package core

import (
	"errors"
	"fmt"

	"loadimb/internal/trace"
)

// ErrNilCube is returned when an analysis is invoked without a cube.
var ErrNilCube = errors.New("core: nil measurement cube")

// ActivityBreakdown is one row of the coarse-grain activity profile.
type ActivityBreakdown struct {
	// Activity is the activity name.
	Activity string
	// Time is T_j, the wall clock time of the activity.
	Time float64
	// Share is T_j / T, the fraction of the program wall clock time.
	Share float64
}

// RegionBreakdown is one row of the coarse-grain region profile (the rows
// of the paper's Table 1).
type RegionBreakdown struct {
	// Region is the code-region name.
	Region string
	// Time is t_i, the wall clock time of the region.
	Time float64
	// Share is t_i / T.
	Share float64
	// ByActivity maps activity index j to t_ij. Activities the region
	// does not perform hold 0; use Performed to distinguish.
	ByActivity []float64
	// Performed[j] reports whether activity j occurs in the region.
	Performed []bool
}

// Extreme identifies the code region with the extreme (maximum or minimum)
// time in one activity.
type Extreme struct {
	// Region is the region index.
	Region int
	// Time is t_ij for that region.
	Time float64
}

// Profile is the coarse-grain characterization of a program (Section 2):
// the breakdown of the wall clock time by activity and by region, the
// dominant activity, the heaviest region, and the worst/best regions per
// activity.
type Profile struct {
	// ProgramTime is T, the wall clock time of the whole program.
	ProgramTime float64
	// InstrumentedTime is the total wall clock time of the measured
	// regions; at most ProgramTime.
	InstrumentedTime float64
	// Activities holds one breakdown per activity, in cube order.
	Activities []ActivityBreakdown
	// Regions holds one breakdown per region, in cube order.
	Regions []RegionBreakdown
	// DominantActivity is the index of the activity with the maximum
	// wall clock time — the "heaviest" activity, a potential bottleneck.
	DominantActivity int
	// HeaviestRegion is the index of the region with the maximum wall
	// clock time — either an inefficient portion or the program's core.
	HeaviestRegion int
	// RegionWithMaxDominant is the region spending the most time in the
	// dominant activity.
	RegionWithMaxDominant int
	// WorstRegion[j] and BestRegion[j] are the regions with the maximum
	// and minimum time in activity j, among regions that perform it. A
	// Region of -1 means no region performs the activity.
	WorstRegion []Extreme
	BestRegion  []Extreme
}

// NewProfile computes the coarse-grain profile of a cube.
func NewProfile(cube *trace.Cube) (*Profile, error) {
	if cube == nil {
		return nil, ErrNilCube
	}
	n, k := cube.NumRegions(), cube.NumActivities()
	p := &Profile{
		ProgramTime:      cube.ProgramTime(),
		InstrumentedTime: cube.RegionsTotal(),
		Activities:       make([]ActivityBreakdown, k),
		Regions:          make([]RegionBreakdown, n),
		WorstRegion:      make([]Extreme, k),
		BestRegion:       make([]Extreme, k),
	}
	if p.ProgramTime <= 0 {
		return nil, fmt.Errorf("core: program wall clock time is zero")
	}
	activityNames := cube.Activities()
	for j := 0; j < k; j++ {
		tj, err := cube.ActivityTime(j)
		if err != nil {
			return nil, err
		}
		p.Activities[j] = ActivityBreakdown{
			Activity: activityNames[j],
			Time:     tj,
			Share:    tj / p.ProgramTime,
		}
		p.WorstRegion[j] = Extreme{Region: -1}
		p.BestRegion[j] = Extreme{Region: -1}
	}
	regionNames := cube.Regions()
	for i := 0; i < n; i++ {
		ti, err := cube.RegionTime(i)
		if err != nil {
			return nil, err
		}
		rb := RegionBreakdown{
			Region:     regionNames[i],
			Time:       ti,
			Share:      ti / p.ProgramTime,
			ByActivity: make([]float64, k),
			Performed:  make([]bool, k),
		}
		for j := 0; j < k; j++ {
			tij, err := cube.CellTime(i, j)
			if err != nil {
				return nil, err
			}
			rb.ByActivity[j] = tij
			rb.Performed[j] = tij > 0
			if tij <= 0 {
				continue
			}
			if w := &p.WorstRegion[j]; w.Region == -1 || tij > w.Time {
				*w = Extreme{Region: i, Time: tij}
			}
			if b := &p.BestRegion[j]; b.Region == -1 || tij < b.Time {
				*b = Extreme{Region: i, Time: tij}
			}
		}
		p.Regions[i] = rb
	}
	p.DominantActivity = argmax(len(p.Activities), func(j int) float64 { return p.Activities[j].Time })
	p.HeaviestRegion = argmax(len(p.Regions), func(i int) float64 { return p.Regions[i].Time })
	p.RegionWithMaxDominant = p.WorstRegion[p.DominantActivity].Region
	return p, nil
}

// argmax returns the index in [0, n) maximizing f, preferring the earliest
// on ties; -1 when n is 0.
func argmax(n int, f func(int) float64) int {
	best, bestVal := -1, 0.0
	for i := 0; i < n; i++ {
		if v := f(i); best == -1 || v > bestVal {
			best, bestVal = i, v
		}
	}
	return best
}

// ActivityVectors returns, for each region, the K-dimensional vector of
// wall clock times t_ij spent in the activities — the feature space in
// which the paper clusters regions with similar behavior.
func (p *Profile) ActivityVectors() [][]float64 {
	out := make([][]float64, len(p.Regions))
	for i, r := range p.Regions {
		out[i] = append([]float64(nil), r.ByActivity...)
	}
	return out
}

// UninstrumentedTime returns the portion of the program wall clock time not
// covered by the measured regions.
func (p *Profile) UninstrumentedTime() float64 {
	d := p.ProgramTime - p.InstrumentedTime
	if d < 0 {
		return 0
	}
	return d
}
