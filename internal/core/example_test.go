package core_test

import (
	"fmt"
	"log"

	"loadimb/internal/core"
	"loadimb/internal/trace"
)

// Example runs the methodology on a two-region program where the "solve"
// region hides a skewed computation.
func Example() {
	cube, err := trace.NewCube(
		[]string{"assemble", "solve"},
		[]string{"computation", "communication"}, 4)
	if err != nil {
		log.Fatal(err)
	}
	set := func(i, j int, times ...float64) {
		for p, t := range times {
			if err := cube.Set(i, j, p, t); err != nil {
				log.Fatal(err)
			}
		}
	}
	set(0, 0, 2, 2, 2, 2) // assemble: balanced computation
	set(0, 1, 0.5, 0.5, 0.5, 0.5)
	set(1, 0, 3, 3, 3, 6)   // solve: processor 3 does double work
	set(1, 1, 3, 3, 3, 0.1) // the others wait in communication

	analysis, err := core.Analyze(cube, core.AnalyzeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	best := analysis.TuningCandidates(core.MaxCriterion{})[0]
	fmt.Printf("tuning candidate: %s (SID_C %.3f)\n", analysis.Regions[best.Pos].Name, best.Value)
	// Output:
	// tuning candidate: solve (SID_C 0.150)
}

// ExampleDispersions shows the standardized Euclidean index of one cell.
func ExampleDispersions() {
	cube, err := trace.NewCube([]string{"loop"}, []string{"computation"}, 4)
	if err != nil {
		log.Fatal(err)
	}
	// One processor does all the work: the worst case sqrt((P-1)/P).
	if err := cube.Set(0, 0, 0, 8); err != nil {
		log.Fatal(err)
	}
	cells, err := core.Dispersions(cube, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ID = %.4f\n", cells[0][0].ID)
	// Output:
	// ID = 0.8660
}
