package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// serialCellThreshold is the cube size (N·K·P values) below which the
// region-parallel analyses run serially: for small cubes the goroutine
// fan-out and the cache traffic of work stealing cost more than the row
// arithmetic saves. The value is one L2-ish worth of float64s; see the
// README "Performance" section for the measurement behind it.
const serialCellThreshold = 1 << 14

// forEachRegion runs fn(i, w) for every region index i in [0, n). When the
// cube holds at least serialCellThreshold values and more than one CPU is
// available, regions are distributed over min(GOMAXPROCS, n) workers via
// an atomic work-stealing counter; otherwise the loop runs serially on the
// caller's goroutine. w identifies the executing worker (0 <= w <
// GOMAXPROCS), so fn can reuse per-worker scratch buffers. fn must write
// only to region-indexed slots of shared output; region order within a
// worker is unspecified. The first error cancels the remaining work.
func forEachRegion(n, cells int, fn func(i, w int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 || cells < serialCellThreshold {
		for i := 0; i < n; i++ {
			if err := fn(i, 0); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		mu     sync.Mutex
		first  error
		wg     sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i, w); err != nil {
					mu.Lock()
					if first == nil {
						first = err
					}
					mu.Unlock()
					failed.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return first
}
