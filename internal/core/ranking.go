package core

import (
	"fmt"
	"sort"

	"loadimb/internal/stats"
)

// A Criterion selects which indices of dispersion are severe enough to
// flag as tuning candidates (Section 3 lists the maximum, percentiles of
// the distribution, and predefined thresholds as possible criteria).
type Criterion interface {
	// Name identifies the criterion in reports.
	Name() string
	// Select returns the positions (into values) flagged as severe.
	// Values at flagged positions are returned in decreasing order of
	// severity.
	Select(values []float64) []int
}

// MaxCriterion flags only the largest value — the paper's default level of
// detail ("the maximum of the indices of dispersion").
type MaxCriterion struct{}

// Name returns "max".
func (MaxCriterion) Name() string { return "max" }

// Select returns the position of the maximum value, or nothing for empty
// input.
func (MaxCriterion) Select(values []float64) []int {
	if len(values) == 0 {
		return nil
	}
	best := 0
	for i, v := range values {
		if v > values[best] {
			best = i
		}
	}
	return []int{best}
}

// PercentileCriterion flags every value at or above the q-th percentile of
// the distribution of the values.
type PercentileCriterion struct {
	// Q is the percentile in [0, 100].
	Q float64
}

// Name returns e.g. "p90".
func (c PercentileCriterion) Name() string { return fmt.Sprintf("p%g", c.Q) }

// Select returns the positions of values at or above the percentile, most
// severe first. Invalid percentiles select nothing.
func (c PercentileCriterion) Select(values []float64) []int {
	cut, err := stats.Percentile(values, c.Q)
	if err != nil {
		return nil
	}
	return selectAbove(values, cut, true)
}

// ThresholdCriterion flags every value strictly above a predefined
// threshold.
type ThresholdCriterion struct {
	// T is the threshold.
	T float64
}

// Name returns e.g. "threshold(0.1)".
func (c ThresholdCriterion) Name() string { return fmt.Sprintf("threshold(%g)", c.T) }

// Select returns the positions of values above the threshold, most severe
// first.
func (c ThresholdCriterion) Select(values []float64) []int {
	return selectAbove(values, c.T, false)
}

// TopKCriterion flags the K largest values — the level of detail a user
// wanting a short candidate list asks for.
type TopKCriterion struct {
	// K is how many candidates to flag; nonpositive K selects nothing.
	K int
}

// Name returns e.g. "top3".
func (c TopKCriterion) Name() string { return fmt.Sprintf("top%d", c.K) }

// Select returns the positions of the K largest values, most severe
// first.
func (c TopKCriterion) Select(values []float64) []int {
	if c.K <= 0 || len(values) == 0 {
		return nil
	}
	order := make([]int, len(values))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return values[order[a]] > values[order[b]] })
	if c.K < len(order) {
		order = order[:c.K]
	}
	return order
}

// ZScoreCriterion flags values more than Z standard deviations above the
// mean of the distribution — an outlier detector that adapts to the data
// instead of requiring a predefined threshold (one of the "new criteria"
// the paper's conclusions call for).
type ZScoreCriterion struct {
	// Z is the cutoff in standard deviations (0 means 2).
	Z float64
}

// Name returns e.g. "zscore(2)".
func (c ZScoreCriterion) Name() string {
	z := c.Z
	if z == 0 {
		z = 2
	}
	return fmt.Sprintf("zscore(%g)", z)
}

// Select returns the positions of the outliers, most severe first. A
// zero-variance distribution has no outliers.
func (c ZScoreCriterion) Select(values []float64) []int {
	z := c.Z
	if z == 0 {
		z = 2
	}
	s := stats.Summarize(values)
	sd := s.StdDev()
	if sd == 0 {
		return nil
	}
	return selectAbove(values, s.Mean+z*sd, true)
}

// selectAbove returns positions with value > cut (or >= when inclusive),
// sorted by decreasing value with position as tiebreak.
func selectAbove(values []float64, cut float64, inclusive bool) []int {
	var out []int
	for i, v := range values {
		if v > cut || (inclusive && v == cut) {
			out = append(out, i)
		}
	}
	sort.SliceStable(out, func(a, b int) bool { return values[out[a]] > values[out[b]] })
	return out
}

// Ranked pairs a position with its value, for presentation.
type Ranked struct {
	// Pos indexes into the original value slice (a region or activity
	// index).
	Pos int
	// Value is the ranked index of dispersion.
	Value float64
}

// Rank applies a criterion and returns the flagged positions with their
// values, most severe first.
func Rank(values []float64, c Criterion) []Ranked {
	ps := c.Select(values)
	out := make([]Ranked, len(ps))
	for i, p := range ps {
		out[i] = Ranked{Pos: p, Value: values[p]}
	}
	return out
}
