package core

import (
	"fmt"
	"sort"

	"loadimb/internal/trace"
)

// RegionDetail is the fine-grain drill-down into one code region: the
// per-activity dispersion with time weights, and the per-processor
// behavior — everything a user asks for after the region view flags the
// region as a tuning candidate.
type RegionDetail struct {
	// Region is the cube region index; Name its label.
	Region int
	Name   string
	// Time is t_i; Share is t_i / T.
	Time, Share float64
	// Activities lists the region's activities sorted by descending
	// contribution ID * weight (the terms of ID_C), so the first entry
	// is the activity driving the region's imbalance.
	Activities []ActivityDetail
	// Processors lists the region's processors sorted by descending
	// ID_P (most dissimilar activity mix first).
	Processors []ProcessorDetail
}

// ActivityDetail is one activity's contribution to a region's imbalance.
type ActivityDetail struct {
	// Activity is the cube activity index; Name its label.
	Activity int
	Name     string
	// Defined reports whether the region performs the activity.
	Defined bool
	// Time is t_ij; Weight is t_ij / t_i.
	Time, Weight float64
	// ID is the cell's dispersion index ID_ij.
	ID float64
	// Contribution is Weight * ID, the cell's term in ID_C.
	Contribution float64
}

// ProcessorDetail is one processor's behavior within a region.
type ProcessorDetail struct {
	// Proc is the rank.
	Proc int
	// Defined reports whether the processor ran the region.
	Defined bool
	// Time is the processor's wall clock time in the region.
	Time float64
	// ID is the processor-view index ID_P.
	ID float64
	// Slowest marks the processor with the largest region time.
	Slowest bool
}

// DrillDown produces the full detail of one region from an analysis. The
// cube must be the one the analysis was computed from.
func (a *Analysis) DrillDown(cube *trace.Cube, region int) (*RegionDetail, error) {
	if cube == nil {
		return nil, ErrNilCube
	}
	if region < 0 || region >= len(a.Regions) {
		return nil, fmt.Errorf("core: region %d out of range [0, %d)", region, len(a.Regions))
	}
	summary := a.Regions[region]
	detail := &RegionDetail{
		Region: region,
		Name:   summary.Name,
		Share:  summary.Share,
	}
	ti, err := cube.RegionTime(region)
	if err != nil {
		return nil, err
	}
	detail.Time = ti
	names := cube.Activities()
	for j := range a.Activities {
		cell := a.Cells[region][j]
		ad := ActivityDetail{Activity: j, Name: names[j], Defined: cell.Defined}
		if cell.Defined {
			tij, err := cube.CellTime(region, j)
			if err != nil {
				return nil, err
			}
			ad.Time = tij
			if ti > 0 {
				ad.Weight = tij / ti
			}
			ad.ID = cell.ID
			ad.Contribution = ad.Weight * ad.ID
		}
		detail.Activities = append(detail.Activities, ad)
	}
	sort.SliceStable(detail.Activities, func(x, y int) bool {
		return detail.Activities[x].Contribution > detail.Activities[y].Contribution
	})
	slowest, slowestTime := -1, 0.0
	for p := 0; p < cube.NumProcs(); p++ {
		pd := ProcessorDetail{Proc: p}
		t, err := cube.ProcRegionTime(region, p)
		if err != nil {
			return nil, err
		}
		pd.Time = t
		if d := a.Processors.ByRegion[region][p]; d.Defined {
			pd.Defined = true
			pd.ID = d.ID
		}
		if t > slowestTime {
			slowest, slowestTime = p, t
		}
		detail.Processors = append(detail.Processors, pd)
	}
	if slowest >= 0 {
		for i := range detail.Processors {
			if detail.Processors[i].Proc == slowest {
				detail.Processors[i].Slowest = true
			}
		}
	}
	sort.SliceStable(detail.Processors, func(x, y int) bool {
		return detail.Processors[x].ID > detail.Processors[y].ID
	})
	return detail, nil
}
