package core

import (
	"errors"
	"fmt"
	"math"
	"runtime"

	"loadimb/internal/stats"
	"loadimb/internal/trace"
)

// Options configures the fine-grain dissimilarity analysis. The zero value
// uses the paper's choices: the Euclidean index of dispersion.
type Options struct {
	// Index is the index of dispersion applied to standardized times.
	// Nil means stats.Euclidean, the paper's choice.
	Index stats.Index
}

func (o Options) index() stats.Index {
	if o.Index == nil {
		return stats.Euclidean
	}
	return o.Index
}

// CellDispersion holds ID_ij for one (region, activity) cell (the entries
// of the paper's Table 2).
type CellDispersion struct {
	// Region and Activity are cube indices.
	Region, Activity int
	// Defined reports whether the activity is performed in the region;
	// when false the index is undefined (printed "-" in the paper).
	Defined bool
	// ID is the index of dispersion of the standardized per-processor
	// times.
	ID float64
}

// cellScratch is the per-worker buffer set of Dispersions: one borrow
// buffer for the cell's processor times and one for the standardized
// values of non-fused indices.
type cellScratch struct {
	times []float64
}

// Dispersions computes the matrix of indices of dispersion ID_ij: for every
// code region i and activity j, the times spent by the P processors are
// standardized (divided by their sum) and the index of dispersion measures
// their spread around the balanced condition 1/P. Cells whose activity is
// absent are marked undefined.
//
// Rows are independent, so large cubes are processed by a GOMAXPROCS-
// bounded worker pool (see forEachRegion); each worker reuses a scratch
// buffer, so the sweep allocates nothing per cell. The result is
// deterministic regardless of scheduling: every worker writes only its
// own region rows.
func Dispersions(cube *trace.Cube, opts Options) ([][]CellDispersion, error) {
	if cube == nil {
		return nil, ErrNilCube
	}
	idx := opts.index()
	n, k, p := cube.NumRegions(), cube.NumActivities(), cube.NumProcs()
	out := make([][]CellDispersion, n)
	rows := make([]CellDispersion, n*k)
	for i := range out {
		out[i], rows = rows[:k:k], rows[k:]
	}
	scratch := make([]cellScratch, runtime.GOMAXPROCS(0))
	err := forEachRegion(n, n*k*p, func(i, w int) error {
		sc := &scratch[w]
		row := out[i]
		for j := 0; j < k; j++ {
			row[j] = CellDispersion{Region: i, Activity: j}
			times, err := cube.ProcTimesInto(i, j, sc.times)
			if err != nil {
				return err
			}
			sc.times = times
			// times is a scratch copy refilled next cell, so it doubles
			// as the standardization buffer: in-place, no second copy.
			id, err := stats.DispersionFromBalanceInto(idx, times, times)
			if errors.Is(err, stats.ErrZeroSum) {
				continue // activity absent: leave undefined
			}
			if err != nil {
				return fmt.Errorf("core: region %d activity %d: %w", i, j, err)
			}
			row[j].Defined = true
			row[j].ID = id
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ActivitySummary is one row of the activity view (the paper's Table 3).
type ActivitySummary struct {
	// Activity is the cube activity index.
	Activity int
	// Name is the activity name.
	Name string
	// Defined reports whether the activity occurs anywhere in the
	// program.
	Defined bool
	// ID is ID_A_j: the weighted average of the ID_ij over the regions,
	// with weights t_ij / T_j.
	ID float64
	// Share is T_j / T.
	Share float64
	// SID is the scaled index SID_A_j = Share * ID: it discounts
	// activities that are very imbalanced but account for a negligible
	// fraction of the program.
	SID float64
}

// ActivityView computes the activity-view summary: for each activity, the
// relative measure of load imbalance ID_A_j and its scaled counterpart
// SID_A_j. Activities with large SID are imbalanced *and* significant —
// the candidates for tuning.
func ActivityView(cube *trace.Cube, opts Options) ([]ActivitySummary, error) {
	cells, err := Dispersions(cube, opts)
	if err != nil {
		return nil, err
	}
	return ActivityViewFromCells(cube, cells)
}

// ActivityViewFromCells computes the activity view from an existing ID_ij
// matrix, so callers that already hold the cells (Analyze, the monitor's
// scrape path) do not recompute the dispersion sweep.
func ActivityViewFromCells(cube *trace.Cube, cells [][]CellDispersion) ([]ActivitySummary, error) {
	t := cube.ProgramTime()
	names := cube.Activities()
	out := make([]ActivitySummary, cube.NumActivities())
	for j := range out {
		out[j] = ActivitySummary{Activity: j, Name: names[j]}
		tj, err := cube.ActivityTime(j)
		if err != nil {
			return nil, err
		}
		if tj <= 0 {
			continue
		}
		num := 0.0
		for i := 0; i < cube.NumRegions(); i++ {
			if !cells[i][j].Defined {
				continue
			}
			tij, err := cube.CellTime(i, j)
			if err != nil {
				return nil, err
			}
			num += tij / tj * cells[i][j].ID
		}
		out[j].Defined = true
		out[j].ID = num
		out[j].Share = tj / t
		out[j].SID = out[j].Share * num
	}
	return out, nil
}

// RegionSummary is one row of the code-region view (the paper's Table 4).
type RegionSummary struct {
	// Region is the cube region index.
	Region int
	// Name is the region name.
	Name string
	// Defined reports whether the region has any measured time.
	Defined bool
	// ID is ID_C_i: the weighted average of the ID_ij over the
	// activities, with weights t_ij / t_i.
	ID float64
	// Share is t_i / T.
	Share float64
	// SID is the scaled index SID_C_i = Share * ID.
	SID float64
}

// CodeRegionView computes the code-region-view summary: for each region,
// the relative measure of load imbalance ID_C_i and its scaled counterpart
// SID_C_i.
func CodeRegionView(cube *trace.Cube, opts Options) ([]RegionSummary, error) {
	cells, err := Dispersions(cube, opts)
	if err != nil {
		return nil, err
	}
	return CodeRegionViewFromCells(cube, cells)
}

// CodeRegionViewFromCells computes the code-region view from an existing
// ID_ij matrix, sharing the dispersion sweep with other consumers.
func CodeRegionViewFromCells(cube *trace.Cube, cells [][]CellDispersion) ([]RegionSummary, error) {
	t := cube.ProgramTime()
	names := cube.Regions()
	out := make([]RegionSummary, cube.NumRegions())
	for i := range out {
		out[i] = RegionSummary{Region: i, Name: names[i]}
		ti, err := cube.RegionTime(i)
		if err != nil {
			return nil, err
		}
		if ti <= 0 {
			continue
		}
		num := 0.0
		for j := 0; j < cube.NumActivities(); j++ {
			if !cells[i][j].Defined {
				continue
			}
			tij, err := cube.CellTime(i, j)
			if err != nil {
				return nil, err
			}
			num += tij / ti * cells[i][j].ID
		}
		out[i].Defined = true
		out[i].ID = num
		out[i].Share = ti / t
		out[i].SID = out[i].Share * num
	}
	return out, nil
}

// ProcessorDispersion holds ID_P_ip: the dissimilarity of processor p's
// activity mix within region i from the average mix.
type ProcessorDispersion struct {
	// Region and Proc are cube indices.
	Region, Proc int
	// Defined is false when the processor spent no time in the region.
	Defined bool
	// ID is the index of dispersion of the processor's standardized
	// activity-mix vector around the average mix of all processors.
	ID float64
}

// ProcessorSummary aggregates the processor view for one processor.
type ProcessorSummary struct {
	// Proc is the processor rank.
	Proc int
	// MostImbalancedOn lists the regions on which this processor has the
	// largest dispersion index among all processors.
	MostImbalancedOn []int
	// ImbalancedTime is the processor's wall clock time summed over the
	// regions in MostImbalancedOn; the paper calls the processor with
	// the largest such time "imbalanced for the longest time".
	ImbalancedTime float64
}

// ProcessorView holds the complete processor-view analysis.
type ProcessorView struct {
	// ByRegion[i][p] is ID_P_ip.
	ByRegion [][]ProcessorDispersion
	// Summaries holds one entry per processor.
	Summaries []ProcessorSummary
	// MostFrequentlyImbalanced is the processor that is the most
	// imbalanced one on the largest number of regions.
	MostFrequentlyImbalanced int
	// LongestImbalanced is the processor with the largest ImbalancedTime.
	LongestImbalanced int
}

// procScratch is the per-worker buffer set of NewProcessorView: the
// flattened procs×k matrix of standardized activity mixes, the average
// mix, one borrow buffer for cell rows, and the participation mask.
type procScratch struct {
	std []float64 // procs*k, mix of processor p at [p*k : (p+1)*k]
	avg []float64 // k
	row []float64 // borrow buffer for ProcTimesInto
	sum []float64 // procs; 0 marks a processor idle in the region
}

// NewProcessorView computes the processor view (Section 3.1): for each
// region, each processor's times across the activities are standardized
// over the processor's total time in the region; ID_P_ip is the Euclidean
// distance between the processor's standardized activity mix and the
// average mix over all processors (the paper defines this view directly in
// terms of the Euclidean distance, so Options.Index does not apply here).
// Processors repeatedly most-imbalanced are candidates for investigation.
//
// Regions are independent, so large cubes fan out across a GOMAXPROCS-
// bounded worker pool with per-worker scratch (see forEachRegion); the
// per-processor summary aggregation runs serially afterwards in region
// order, so the result is identical to the serial computation.
func NewProcessorView(cube *trace.Cube, opts Options) (*ProcessorView, error) {
	if cube == nil {
		return nil, ErrNilCube
	}
	_ = opts // reserved; the processor view is defined with the Euclidean distance
	n, k, procs := cube.NumRegions(), cube.NumActivities(), cube.NumProcs()
	view := &ProcessorView{
		ByRegion:  make([][]ProcessorDispersion, n),
		Summaries: make([]ProcessorSummary, procs),
	}
	for p := range view.Summaries {
		view.Summaries[p].Proc = p
	}
	rows := make([]ProcessorDispersion, n*procs)
	for i := range view.ByRegion {
		view.ByRegion[i], rows = rows[:procs:procs], rows[procs:]
	}
	// most[i] is the region's most imbalanced processor (-1 when the
	// region is entirely idle), filled by the regional sweep and folded
	// into the per-processor summaries serially below.
	most := make([]int, n)
	scratch := make([]procScratch, runtime.GOMAXPROCS(0))
	err := forEachRegion(n, n*k*procs, func(i, w int) error {
		sc := &scratch[w]
		if len(sc.std) < procs*k {
			sc.std = make([]float64, procs*k)
			sc.avg = make([]float64, k)
			sc.sum = make([]float64, procs)
		}
		most[i] = -1
		// Gather the region's cell rows once each, scattering them into
		// per-processor activity-mix vectors and accumulating each
		// processor's total on the way: for fixed p the contributions
		// arrive in ascending activity order, exactly the order the
		// separate summation pass used.
		for p := 0; p < procs; p++ {
			sc.sum[p] = 0
		}
		for j := 0; j < k; j++ {
			row, err := cube.ProcTimesInto(i, j, sc.row)
			if err != nil {
				return err
			}
			sc.row = row
			for p := 0; p < procs; p++ {
				sc.std[p*k+j] = row[p]
				sc.sum[p] += row[p]
			}
		}
		// Standardize each participating processor's mix in place,
		// mirroring stats.Standardize exactly (x/sum per element), and
		// fold the mix into the running average mix in the same pass: avg
		// still receives contributions in ascending processor order.
		avg := sc.avg
		for j := range avg {
			avg[j] = 0
		}
		count := 0
		for p := 0; p < procs; p++ {
			view.ByRegion[i][p] = ProcessorDispersion{Region: i, Proc: p}
			if sc.sum[p] == 0 {
				continue // processor idle in this region
			}
			count++
			sum := sc.sum[p]
			mix := sc.std[p*k : (p+1)*k]
			for j := range mix {
				mix[j] /= sum
				avg[j] += mix[j]
			}
		}
		if count == 0 {
			return nil
		}
		for j := range avg {
			avg[j] /= float64(count)
		}
		// ID_P_ip: Euclidean distance between the processor's mix and
		// the average mix.
		for p := 0; p < procs; p++ {
			if sc.sum[p] == 0 {
				continue
			}
			mix := sc.std[p*k : (p+1)*k]
			ss := 0.0
			for j := 0; j < k; j++ {
				d := mix[j] - avg[j]
				ss += d * d
			}
			view.ByRegion[i][p].Defined = true
			view.ByRegion[i][p].ID = math.Sqrt(ss)
		}
		// Record the most imbalanced processor of the region.
		best, bestVal := -1, 0.0
		for p := 0; p < procs; p++ {
			d := view.ByRegion[i][p]
			if d.Defined && (best == -1 || d.ID > bestVal) {
				best, bestVal = p, d.ID
			}
		}
		most[i] = best
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Fold the regional winners into the per-processor summaries in
	// region order, exactly as the serial loop used to.
	for i := 0; i < n; i++ {
		best := most[i]
		if best < 0 {
			continue
		}
		view.Summaries[best].MostImbalancedOn = append(view.Summaries[best].MostImbalancedOn, i)
		t, err := cube.ProcRegionTime(i, best)
		if err != nil {
			return nil, err
		}
		view.Summaries[best].ImbalancedTime += t
	}
	view.MostFrequentlyImbalanced = argmax(procs, func(p int) float64 {
		return float64(len(view.Summaries[p].MostImbalancedOn))
	})
	view.LongestImbalanced = argmax(procs, func(p int) float64 {
		return view.Summaries[p].ImbalancedTime
	})
	return view, nil
}
