package core

import (
	"errors"
	"fmt"
	"math"

	"loadimb/internal/stats"
	"loadimb/internal/trace"
)

// Options configures the fine-grain dissimilarity analysis. The zero value
// uses the paper's choices: the Euclidean index of dispersion.
type Options struct {
	// Index is the index of dispersion applied to standardized times.
	// Nil means stats.Euclidean, the paper's choice.
	Index stats.Index
}

func (o Options) index() stats.Index {
	if o.Index == nil {
		return stats.Euclidean
	}
	return o.Index
}

// CellDispersion holds ID_ij for one (region, activity) cell (the entries
// of the paper's Table 2).
type CellDispersion struct {
	// Region and Activity are cube indices.
	Region, Activity int
	// Defined reports whether the activity is performed in the region;
	// when false the index is undefined (printed "-" in the paper).
	Defined bool
	// ID is the index of dispersion of the standardized per-processor
	// times.
	ID float64
}

// Dispersions computes the matrix of indices of dispersion ID_ij: for every
// code region i and activity j, the times spent by the P processors are
// standardized (divided by their sum) and the index of dispersion measures
// their spread around the balanced condition 1/P. Cells whose activity is
// absent are marked undefined.
func Dispersions(cube *trace.Cube, opts Options) ([][]CellDispersion, error) {
	if cube == nil {
		return nil, ErrNilCube
	}
	idx := opts.index()
	out := make([][]CellDispersion, cube.NumRegions())
	for i := range out {
		out[i] = make([]CellDispersion, cube.NumActivities())
		for j := range out[i] {
			out[i][j] = CellDispersion{Region: i, Activity: j}
			times, err := cube.ProcTimes(i, j)
			if err != nil {
				return nil, err
			}
			id, err := stats.DispersionFromBalance(idx, times)
			if errors.Is(err, stats.ErrZeroSum) {
				continue // activity absent: leave undefined
			}
			if err != nil {
				return nil, fmt.Errorf("core: region %d activity %d: %w", i, j, err)
			}
			out[i][j].Defined = true
			out[i][j].ID = id
		}
	}
	return out, nil
}

// ActivitySummary is one row of the activity view (the paper's Table 3).
type ActivitySummary struct {
	// Activity is the cube activity index.
	Activity int
	// Name is the activity name.
	Name string
	// Defined reports whether the activity occurs anywhere in the
	// program.
	Defined bool
	// ID is ID_A_j: the weighted average of the ID_ij over the regions,
	// with weights t_ij / T_j.
	ID float64
	// Share is T_j / T.
	Share float64
	// SID is the scaled index SID_A_j = Share * ID: it discounts
	// activities that are very imbalanced but account for a negligible
	// fraction of the program.
	SID float64
}

// ActivityView computes the activity-view summary: for each activity, the
// relative measure of load imbalance ID_A_j and its scaled counterpart
// SID_A_j. Activities with large SID are imbalanced *and* significant —
// the candidates for tuning.
func ActivityView(cube *trace.Cube, opts Options) ([]ActivitySummary, error) {
	cells, err := Dispersions(cube, opts)
	if err != nil {
		return nil, err
	}
	return activityViewFromCells(cube, cells)
}

func activityViewFromCells(cube *trace.Cube, cells [][]CellDispersion) ([]ActivitySummary, error) {
	t := cube.ProgramTime()
	names := cube.Activities()
	out := make([]ActivitySummary, cube.NumActivities())
	for j := range out {
		out[j] = ActivitySummary{Activity: j, Name: names[j]}
		tj, err := cube.ActivityTime(j)
		if err != nil {
			return nil, err
		}
		if tj <= 0 {
			continue
		}
		num := 0.0
		for i := 0; i < cube.NumRegions(); i++ {
			if !cells[i][j].Defined {
				continue
			}
			tij, err := cube.CellTime(i, j)
			if err != nil {
				return nil, err
			}
			num += tij / tj * cells[i][j].ID
		}
		out[j].Defined = true
		out[j].ID = num
		out[j].Share = tj / t
		out[j].SID = out[j].Share * num
	}
	return out, nil
}

// RegionSummary is one row of the code-region view (the paper's Table 4).
type RegionSummary struct {
	// Region is the cube region index.
	Region int
	// Name is the region name.
	Name string
	// Defined reports whether the region has any measured time.
	Defined bool
	// ID is ID_C_i: the weighted average of the ID_ij over the
	// activities, with weights t_ij / t_i.
	ID float64
	// Share is t_i / T.
	Share float64
	// SID is the scaled index SID_C_i = Share * ID.
	SID float64
}

// CodeRegionView computes the code-region-view summary: for each region,
// the relative measure of load imbalance ID_C_i and its scaled counterpart
// SID_C_i.
func CodeRegionView(cube *trace.Cube, opts Options) ([]RegionSummary, error) {
	cells, err := Dispersions(cube, opts)
	if err != nil {
		return nil, err
	}
	return regionViewFromCells(cube, cells)
}

func regionViewFromCells(cube *trace.Cube, cells [][]CellDispersion) ([]RegionSummary, error) {
	t := cube.ProgramTime()
	names := cube.Regions()
	out := make([]RegionSummary, cube.NumRegions())
	for i := range out {
		out[i] = RegionSummary{Region: i, Name: names[i]}
		ti, err := cube.RegionTime(i)
		if err != nil {
			return nil, err
		}
		if ti <= 0 {
			continue
		}
		num := 0.0
		for j := 0; j < cube.NumActivities(); j++ {
			if !cells[i][j].Defined {
				continue
			}
			tij, err := cube.CellTime(i, j)
			if err != nil {
				return nil, err
			}
			num += tij / ti * cells[i][j].ID
		}
		out[i].Defined = true
		out[i].ID = num
		out[i].Share = ti / t
		out[i].SID = out[i].Share * num
	}
	return out, nil
}

// ProcessorDispersion holds ID_P_ip: the dissimilarity of processor p's
// activity mix within region i from the average mix.
type ProcessorDispersion struct {
	// Region and Proc are cube indices.
	Region, Proc int
	// Defined is false when the processor spent no time in the region.
	Defined bool
	// ID is the index of dispersion of the processor's standardized
	// activity-mix vector around the average mix of all processors.
	ID float64
}

// ProcessorSummary aggregates the processor view for one processor.
type ProcessorSummary struct {
	// Proc is the processor rank.
	Proc int
	// MostImbalancedOn lists the regions on which this processor has the
	// largest dispersion index among all processors.
	MostImbalancedOn []int
	// ImbalancedTime is the processor's wall clock time summed over the
	// regions in MostImbalancedOn; the paper calls the processor with
	// the largest such time "imbalanced for the longest time".
	ImbalancedTime float64
}

// ProcessorView holds the complete processor-view analysis.
type ProcessorView struct {
	// ByRegion[i][p] is ID_P_ip.
	ByRegion [][]ProcessorDispersion
	// Summaries holds one entry per processor.
	Summaries []ProcessorSummary
	// MostFrequentlyImbalanced is the processor that is the most
	// imbalanced one on the largest number of regions.
	MostFrequentlyImbalanced int
	// LongestImbalanced is the processor with the largest ImbalancedTime.
	LongestImbalanced int
}

// NewProcessorView computes the processor view (Section 3.1): for each
// region, each processor's times across the activities are standardized
// over the processor's total time in the region; ID_P_ip is the Euclidean
// distance between the processor's standardized activity mix and the
// average mix over all processors (the paper defines this view directly in
// terms of the Euclidean distance, so Options.Index does not apply here).
// Processors repeatedly most-imbalanced are candidates for investigation.
func NewProcessorView(cube *trace.Cube, opts Options) (*ProcessorView, error) {
	if cube == nil {
		return nil, ErrNilCube
	}
	_ = opts // reserved; the processor view is defined with the Euclidean distance
	n, k, procs := cube.NumRegions(), cube.NumActivities(), cube.NumProcs()
	view := &ProcessorView{
		ByRegion:  make([][]ProcessorDispersion, n),
		Summaries: make([]ProcessorSummary, procs),
	}
	for p := range view.Summaries {
		view.Summaries[p].Proc = p
	}
	for i := 0; i < n; i++ {
		view.ByRegion[i] = make([]ProcessorDispersion, procs)
		// Standardize each processor's activity mix within the region.
		std := make([][]float64, procs)
		for p := 0; p < procs; p++ {
			view.ByRegion[i][p] = ProcessorDispersion{Region: i, Proc: p}
			mix := make([]float64, k)
			for j := 0; j < k; j++ {
				v, err := cube.At(i, j, p)
				if err != nil {
					return nil, err
				}
				mix[j] = v
			}
			s, err := stats.Standardize(mix)
			if errors.Is(err, stats.ErrZeroSum) {
				continue // processor idle in this region
			}
			if err != nil {
				return nil, err
			}
			std[p] = s
		}
		// Average mix across the processors that participated.
		avg := make([]float64, k)
		count := 0
		for p := 0; p < procs; p++ {
			if std[p] == nil {
				continue
			}
			count++
			for j := 0; j < k; j++ {
				avg[j] += std[p][j]
			}
		}
		if count == 0 {
			continue
		}
		for j := range avg {
			avg[j] /= float64(count)
		}
		// ID_P_ip: Euclidean distance between the processor's mix and
		// the average mix.
		for p := 0; p < procs; p++ {
			if std[p] == nil {
				continue
			}
			ss := 0.0
			for j := 0; j < k; j++ {
				d := std[p][j] - avg[j]
				ss += d * d
			}
			view.ByRegion[i][p].Defined = true
			view.ByRegion[i][p].ID = math.Sqrt(ss)
		}
		// Record the most imbalanced processor of the region.
		best, bestVal := -1, 0.0
		for p := 0; p < procs; p++ {
			d := view.ByRegion[i][p]
			if d.Defined && (best == -1 || d.ID > bestVal) {
				best, bestVal = p, d.ID
			}
		}
		if best >= 0 {
			view.Summaries[best].MostImbalancedOn = append(view.Summaries[best].MostImbalancedOn, i)
			t, err := cube.ProcRegionTime(i, best)
			if err != nil {
				return nil, err
			}
			view.Summaries[best].ImbalancedTime += t
		}
	}
	view.MostFrequentlyImbalanced = argmax(procs, func(p int) float64 {
		return float64(len(view.Summaries[p].MostImbalancedOn))
	})
	view.LongestImbalanced = argmax(procs, func(p int) float64 {
		return view.Summaries[p].ImbalancedTime
	})
	return view, nil
}
