package core

import (
	"math"
	"testing"

	"loadimb/internal/cluster"
	"loadimb/internal/paper"
	"loadimb/internal/workload"
)

// Tolerances for comparing recomputed values with the published five-
// decimal tables. Table 2 is exact by construction; Tables 3 and 4 carry
// the paper's internal rounding (they were computed from unrounded inputs),
// so the weighted averages agree to ~5e-4 and the scaled indices to ~2e-5.
const (
	tolExact = 1e-9
	tolID    = 5e-4
	tolSID   = 2e-5
)

func reconstructed(t *testing.T) *Analysis {
	t.Helper()
	cube, err := workload.ReconstructCube()
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(cube, AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestReproduceTable1 checks the coarse-grain profile against the published
// Table 1: per-loop overall times and activity breakdowns.
func TestReproduceTable1(t *testing.T) {
	a := reconstructed(t)
	for i, rb := range a.Profile.Regions {
		if math.Abs(rb.Time-paper.Table1Overall[i]) > tolExact {
			t.Errorf("loop %d overall = %g, published %g", i+1, rb.Time, paper.Table1Overall[i])
		}
		for j := range rb.ByActivity {
			want, present := paper.CellTime(i, j)
			if rb.Performed[j] != present {
				t.Errorf("loop %d %s: performed = %v, published %v", i+1, paper.ActivityNames[j], rb.Performed[j], present)
			}
			if present && math.Abs(rb.ByActivity[j]-want) > tolExact {
				t.Errorf("loop %d %s: t_ij = %g, published %g", i+1, paper.ActivityNames[j], rb.ByActivity[j], want)
			}
		}
	}
}

// TestReproduceSection4Profile checks the paper's coarse-grain findings:
// loop 1 is the heaviest (~27% of the program) and the longest in the
// dominant activity (computation) as well as in collective communications
// and synchronizations; loop 3 is the longest in point-to-point.
func TestReproduceSection4Profile(t *testing.T) {
	a := reconstructed(t)
	p := a.Profile
	if p.HeaviestRegion != paper.HeaviestLoop-1 {
		t.Errorf("heaviest region = loop %d, published loop %d", p.HeaviestRegion+1, paper.HeaviestLoop)
	}
	share := p.Regions[p.HeaviestRegion].Share
	if math.Abs(share-paper.HeaviestLoopShare) > 0.01 {
		t.Errorf("heaviest loop share = %.3f, paper says about %.2f", share, paper.HeaviestLoopShare)
	}
	if p.DominantActivity != paper.DominantActivity {
		t.Errorf("dominant activity = %s, published %s",
			paper.ActivityNames[p.DominantActivity], paper.ActivityNames[paper.DominantActivity])
	}
	if p.RegionWithMaxDominant != paper.HeaviestLoop-1 {
		t.Errorf("max-computation region = loop %d, published loop %d", p.RegionWithMaxDominant+1, paper.HeaviestLoop)
	}
	for _, j := range []int{paper.Collective, paper.Synchronization} {
		if p.WorstRegion[j].Region != paper.HeaviestLoop-1 {
			t.Errorf("max-%s region = loop %d, published loop 1", paper.ActivityNames[j], p.WorstRegion[j].Region+1)
		}
	}
	if p.WorstRegion[paper.PointToPoint].Region != paper.LongestPointToPointLoop-1 {
		t.Errorf("max-p2p region = loop %d, published loop %d",
			p.WorstRegion[paper.PointToPoint].Region+1, paper.LongestPointToPointLoop)
	}
	// Loop 1 performs no point-to-point.
	if p.Regions[0].Performed[paper.PointToPoint] {
		t.Error("loop 1 should not perform point-to-point")
	}
	// Only three loops perform synchronizations.
	syncCount := 0
	for _, rb := range p.Regions {
		if rb.Performed[paper.Synchronization] {
			syncCount++
		}
	}
	if syncCount != 3 {
		t.Errorf("%d loops synchronize, published 3", syncCount)
	}
}

// TestReproduceTable2 checks every ID_ij against the published Table 2;
// the reconstruction makes these exact.
func TestReproduceTable2(t *testing.T) {
	a := reconstructed(t)
	for i := 0; i < paper.NumLoops; i++ {
		for j := 0; j < paper.NumActivities; j++ {
			want, present := paper.Dispersion(i, j)
			cell := a.Cells[i][j]
			if cell.Defined != present {
				t.Errorf("loop %d %s: defined = %v, published %v", i+1, paper.ActivityNames[j], cell.Defined, present)
				continue
			}
			if present && math.Abs(cell.ID-want) > tolExact {
				t.Errorf("loop %d %s: ID = %.6f, published %.5f", i+1, paper.ActivityNames[j], cell.ID, want)
			}
		}
	}
}

// TestReproduceTable3 checks the activity view against the published
// Table 3.
func TestReproduceTable3(t *testing.T) {
	a := reconstructed(t)
	for j, s := range a.Activities {
		if !s.Defined {
			t.Fatalf("activity %s undefined", paper.ActivityNames[j])
		}
		if math.Abs(s.ID-paper.Table3[j].ID) > tolID {
			t.Errorf("ID_A[%s] = %.5f, published %.5f", s.Name, s.ID, paper.Table3[j].ID)
		}
		if math.Abs(s.SID-paper.Table3[j].SID) > tolSID {
			t.Errorf("SID_A[%s] = %.5f, published %.5f", s.Name, s.SID, paper.Table3[j].SID)
		}
	}
}

// TestReproduceTable4 checks the code-region view against the published
// Table 4.
func TestReproduceTable4(t *testing.T) {
	a := reconstructed(t)
	for i, s := range a.Regions {
		if !s.Defined {
			t.Fatalf("loop %d undefined", i+1)
		}
		if math.Abs(s.ID-paper.Table4[i].ID) > tolID {
			t.Errorf("ID_C[loop %d] = %.5f, published %.5f", i+1, s.ID, paper.Table4[i].ID)
		}
		if math.Abs(s.SID-paper.Table4[i].SID) > tolSID {
			t.Errorf("SID_C[loop %d] = %.5f, published %.5f", i+1, s.SID, paper.Table4[i].SID)
		}
	}
}

// TestReproduceConclusions checks the paper's fine-grain conclusions: the
// most imbalanced activity is synchronization but with negligible scaled
// index; the most imbalanced loop is loop 6; the best tuning candidate
// (largest scaled index) is loop 1.
func TestReproduceConclusions(t *testing.T) {
	a := reconstructed(t)
	maxA := argmax(len(a.Activities), func(j int) float64 { return a.Activities[j].ID })
	if maxA != paper.MostImbalancedActivity {
		t.Errorf("most imbalanced activity = %s, published synchronization", a.Activities[maxA].Name)
	}
	if a.Activities[maxA].Share > 0.002 {
		t.Errorf("synchronization share = %.4f, should be negligible (~0.001)", a.Activities[maxA].Share)
	}
	maxC := argmax(len(a.Regions), func(i int) float64 { return a.Regions[i].ID })
	if maxC != paper.MostImbalancedLoop-1 {
		t.Errorf("most imbalanced loop = %d, published loop %d", maxC+1, paper.MostImbalancedLoop)
	}
	cands := a.TuningCandidates(MaxCriterion{})
	if len(cands) != 1 || cands[0].Pos != paper.BestTuningCandidateLoop-1 {
		t.Errorf("tuning candidate = %v, published loop %d", cands, paper.BestTuningCandidateLoop)
	}
}

// TestReproduceClustering checks the k-means partition of the loops: the
// two heaviest (1, 2) versus the rest.
func TestReproduceClustering(t *testing.T) {
	a := reconstructed(t)
	want := [][]int{{0, 1}, {2, 3, 4, 5, 6}}
	if !cluster.SameParts(a.Clusters, want) {
		t.Errorf("clusters = %v, published {1,2} vs {3..7}", a.Clusters)
	}
}

// TestReproduceProcessorViewQualitative checks the qualitative processor-
// view findings: a most-frequently-imbalanced processor and a longest-
// imbalanced processor exist and are well defined. The published exact
// values (processor 1 on loops 3 and 7; processor 2 on loop 1 with ID
// 0.25754) depend on the unpublished t_ijp cube and are not reproducible.
func TestReproduceProcessorViewQualitative(t *testing.T) {
	a := reconstructed(t)
	v := a.Processors
	if v.MostFrequentlyImbalanced < 0 || v.MostFrequentlyImbalanced >= paper.NumProcs {
		t.Fatalf("most frequently imbalanced = %d", v.MostFrequentlyImbalanced)
	}
	if v.LongestImbalanced < 0 || v.LongestImbalanced >= paper.NumProcs {
		t.Fatalf("longest imbalanced = %d", v.LongestImbalanced)
	}
	// Every loop has a most-imbalanced processor; the counts add to N.
	total := 0
	for _, s := range v.Summaries {
		total += len(s.MostImbalancedOn)
	}
	if total != paper.NumLoops {
		t.Errorf("most-imbalanced assignments = %d, want %d", total, paper.NumLoops)
	}
	// The winner's frequency is at least anyone else's.
	winner := len(v.Summaries[v.MostFrequentlyImbalanced].MostImbalancedOn)
	for _, s := range v.Summaries {
		if len(s.MostImbalancedOn) > winner {
			t.Errorf("processor %d beats the reported winner", s.Proc)
		}
	}
	// All processor-view indices are finite and nonnegative.
	for i := range v.ByRegion {
		for p := range v.ByRegion[i] {
			d := v.ByRegion[i][p]
			if d.Defined && (math.IsNaN(d.ID) || d.ID < 0) {
				t.Errorf("ID_P[%d][%d] = %g", i, p, d.ID)
			}
		}
	}
}

// TestScaleInvariance: the methodology is scale-free — multiplying every
// time by a constant leaves all dispersion indices unchanged and scales the
// profile linearly.
func TestScaleInvariance(t *testing.T) {
	cube, err := workload.ReconstructCube()
	if err != nil {
		t.Fatal(err)
	}
	before, err := Analyze(cube, AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := cube.Scale(3.7); err != nil {
		t.Fatal(err)
	}
	after, err := Analyze(cube, AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for j := range before.Activities {
		if math.Abs(before.Activities[j].ID-after.Activities[j].ID) > 1e-9 {
			t.Errorf("activity %d ID changed under scaling", j)
		}
		if math.Abs(before.Activities[j].SID-after.Activities[j].SID) > 1e-9 {
			t.Errorf("activity %d SID changed under scaling", j)
		}
	}
	for i := range before.Regions {
		if math.Abs(before.Regions[i].ID-after.Regions[i].ID) > 1e-9 {
			t.Errorf("region %d ID changed under scaling", i)
		}
	}
}

// TestClusterMethods compares the three clustering options on the paper's
// loops: the default reproduces the published partition; the refined
// variant finds the lower-SSE alternative; hierarchical average linkage
// separates the two tiny loops.
func TestClusterMethods(t *testing.T) {
	cube, err := workload.ReconstructCube()
	if err != nil {
		t.Fatal(err)
	}
	published, err := Analyze(cube, AnalyzeOptions{ClusterMethod: ClusterKMeans})
	if err != nil {
		t.Fatal(err)
	}
	if !cluster.SameParts(published.Clusters, [][]int{{0, 1}, {2, 3, 4, 5, 6}}) {
		t.Errorf("default clustering = %v", published.Clusters)
	}
	refined, err := Analyze(cube, AnalyzeOptions{ClusterMethod: ClusterKMeansRefined})
	if err != nil {
		t.Fatal(err)
	}
	if cluster.SameParts(refined.Clusters, published.Clusters) {
		t.Errorf("refined clustering should differ: %v", refined.Clusters)
	}
	hier, err := Analyze(cube, AnalyzeOptions{ClusterMethod: ClusterHierarchical})
	if err != nil {
		t.Fatal(err)
	}
	if len(hier.Clusters) != 2 {
		t.Fatalf("hierarchical clusters = %v", hier.Clusters)
	}
	// Loops 6 and 7 (tiny) always end up together under average linkage.
	together := false
	for _, g := range hier.Clusters {
		has6, has7 := false, false
		for _, i := range g {
			if i == 5 {
				has6 = true
			}
			if i == 6 {
				has7 = true
			}
		}
		if has6 && has7 {
			together = true
		}
	}
	if !together {
		t.Errorf("hierarchical should group the tiny loops: %v", hier.Clusters)
	}
}
