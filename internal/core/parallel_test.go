package core

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// bitEqual is float equality at the bit level: the parallel engine promises
// results identical to the serial one, not merely close, and NaN payloads
// must match too.
func bitEqual(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

func sameCells(t *testing.T, got, want [][]CellDispersion) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("cell matrix has %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("cell row %d has %d entries, want %d", i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			g, w := got[i][j], want[i][j]
			if g.Region != w.Region || g.Activity != w.Activity ||
				g.Defined != w.Defined || !bitEqual(g.ID, w.ID) {
				t.Errorf("cell (%d, %d): parallel %+v, serial %+v", i, j, g, w)
			}
		}
	}
}

func sameProcessorView(t *testing.T, got, want *ProcessorView) {
	t.Helper()
	if len(got.ByRegion) != len(want.ByRegion) {
		t.Fatalf("ByRegion has %d rows, want %d", len(got.ByRegion), len(want.ByRegion))
	}
	for i := range want.ByRegion {
		if len(got.ByRegion[i]) != len(want.ByRegion[i]) {
			t.Fatalf("ByRegion[%d] has %d entries, want %d", i, len(got.ByRegion[i]), len(want.ByRegion[i]))
		}
		for p := range want.ByRegion[i] {
			g, w := got.ByRegion[i][p], want.ByRegion[i][p]
			if g.Region != w.Region || g.Proc != w.Proc ||
				g.Defined != w.Defined || !bitEqual(g.ID, w.ID) {
				t.Errorf("ByRegion(%d, %d): parallel %+v, serial %+v", i, p, g, w)
			}
		}
	}
	if len(got.Summaries) != len(want.Summaries) {
		t.Fatalf("Summaries has %d entries, want %d", len(got.Summaries), len(want.Summaries))
	}
	for p := range want.Summaries {
		g, w := got.Summaries[p], want.Summaries[p]
		if g.Proc != w.Proc || !bitEqual(g.ImbalancedTime, w.ImbalancedTime) {
			t.Errorf("Summaries[%d]: parallel %+v, serial %+v", p, g, w)
		}
		if len(g.MostImbalancedOn) != len(w.MostImbalancedOn) {
			t.Errorf("Summaries[%d].MostImbalancedOn: parallel %v, serial %v", p, g.MostImbalancedOn, w.MostImbalancedOn)
			continue
		}
		for x := range w.MostImbalancedOn {
			if g.MostImbalancedOn[x] != w.MostImbalancedOn[x] {
				t.Errorf("Summaries[%d].MostImbalancedOn: parallel %v, serial %v", p, g.MostImbalancedOn, w.MostImbalancedOn)
				break
			}
		}
	}
	if got.MostFrequentlyImbalanced != want.MostFrequentlyImbalanced {
		t.Errorf("MostFrequentlyImbalanced: parallel %d, serial %d", got.MostFrequentlyImbalanced, want.MostFrequentlyImbalanced)
	}
	if got.LongestImbalanced != want.LongestImbalanced {
		t.Errorf("LongestImbalanced: parallel %d, serial %d", got.LongestImbalanced, want.LongestImbalanced)
	}
}

// TestParallelAnalysisMatchesSerial runs the analysis engine once with one
// worker and once with several on cubes straddling the serial threshold;
// the results must agree bit for bit. The single-CPU CI machine still
// exercises the concurrent path because forEachRegion sizes its pool from
// GOMAXPROCS, which the test raises explicitly.
func TestParallelAnalysisMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	shapes := []struct {
		n, k, p int
	}{
		{3, 2, 8},     // far below serialCellThreshold: serial either way
		{16, 8, 128},  // exactly at the threshold (16384 cells)
		{16, 8, 256},  // above: the worker pool engages
		{26, 6, 1024}, // above with more regions than a pool's workers
	}
	for _, sh := range shapes {
		t.Run(fmt.Sprintf("N%dxK%dxP%d", sh.n, sh.k, sh.p), func(t *testing.T) {
			cube := randomCube(t, rng, sh.n, sh.k, sh.p)

			prev := runtime.GOMAXPROCS(1)
			serialCells, err1 := Dispersions(cube, Options{})
			serialView, err2 := NewProcessorView(cube, Options{})
			runtime.GOMAXPROCS(4)
			parallelCells, err3 := Dispersions(cube, Options{})
			parallelView, err4 := NewProcessorView(cube, Options{})
			runtime.GOMAXPROCS(prev)

			for _, err := range []error{err1, err2, err3, err4} {
				if err != nil {
					t.Fatal(err)
				}
			}
			sameCells(t, parallelCells, serialCells)
			sameProcessorView(t, parallelView, serialView)
		})
	}
}

// TestParallelAnalyzeMatchesSerial checks the full pipeline end to end:
// profile, cells, views, clustering — everything Analyze returns must be
// independent of the worker count.
func TestParallelAnalyzeMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	cube := randomCube(t, rng, 16, 8, 192)

	prev := runtime.GOMAXPROCS(1)
	serial, errS := Analyze(cube, AnalyzeOptions{})
	runtime.GOMAXPROCS(4)
	parallel, errP := Analyze(cube, AnalyzeOptions{})
	runtime.GOMAXPROCS(prev)
	if errS != nil || errP != nil {
		t.Fatalf("Analyze: serial err %v, parallel err %v", errS, errP)
	}

	sameCells(t, parallel.Cells, serial.Cells)
	sameProcessorView(t, parallel.Processors, serial.Processors)
	for j := range serial.Activities {
		g, w := parallel.Activities[j], serial.Activities[j]
		if g != w && !(bitEqual(g.ID, w.ID) && bitEqual(g.SID, w.SID) && bitEqual(g.Share, w.Share) &&
			g.Activity == w.Activity && g.Name == w.Name && g.Defined == w.Defined) {
			t.Errorf("Activities[%d]: parallel %+v, serial %+v", j, g, w)
		}
	}
	for i := range serial.Regions {
		g, w := parallel.Regions[i], serial.Regions[i]
		if g != w && !(bitEqual(g.ID, w.ID) && bitEqual(g.SID, w.SID) && bitEqual(g.Share, w.Share) &&
			g.Region == w.Region && g.Name == w.Name && g.Defined == w.Defined) {
			t.Errorf("Regions[%d]: parallel %+v, serial %+v", i, g, w)
		}
	}
	if len(parallel.Clusters) != len(serial.Clusters) {
		t.Fatalf("Clusters: parallel %v, serial %v", parallel.Clusters, serial.Clusters)
	}
	for c := range serial.Clusters {
		if len(parallel.Clusters[c]) != len(serial.Clusters[c]) {
			t.Fatalf("Clusters[%d]: parallel %v, serial %v", c, parallel.Clusters[c], serial.Clusters[c])
		}
		for x := range serial.Clusters[c] {
			if parallel.Clusters[c][x] != serial.Clusters[c][x] {
				t.Fatalf("Clusters[%d]: parallel %v, serial %v", c, parallel.Clusters[c], serial.Clusters[c])
			}
		}
	}
}

// TestForEachRegionPropagatesErrors checks the pool's error paths: the
// first error wins, remaining regions are abandoned, and the serial path
// reports errors identically.
func TestForEachRegionPropagatesErrors(t *testing.T) {
	wantErr := fmt.Errorf("region 3 broke")
	// Serial path: cells below the threshold.
	err := forEachRegion(8, 1, func(i, w int) error {
		if i == 3 {
			return wantErr
		}
		return nil
	})
	if err != wantErr {
		t.Fatalf("serial forEachRegion error = %v, want %v", err, wantErr)
	}
	// Parallel path: force the pool with a huge cell count.
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	err = forEachRegion(64, serialCellThreshold+1, func(i, w int) error {
		if i == 3 {
			return wantErr
		}
		return nil
	})
	if err == nil {
		t.Fatal("parallel forEachRegion returned nil, want an error")
	}
}

// TestForEachRegionCoversAllRegions checks every region index is visited
// exactly once and worker ids stay within the pool bounds.
func TestForEachRegionCoversAllRegions(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	const n = 137
	visits := make([]int32, n)
	maxWorkers := runtime.GOMAXPROCS(0)
	err := forEachRegion(n, serialCellThreshold+1, func(i, w int) error {
		if w < 0 || w >= maxWorkers {
			return fmt.Errorf("worker id %d out of range [0, %d)", w, maxWorkers)
		}
		visits[i]++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range visits {
		if v != 1 {
			t.Errorf("region %d visited %d times", i, v)
		}
	}
}
