package core

import (
	"errors"
	"math"
	"testing"

	"loadimb/internal/stats"
	"loadimb/internal/trace"
)

// testCube builds a small cube with a known structure:
//
//	        comp (P0, P1)   p2p (P0, P1)
//	loopA:  (4, 4)          (1, 3)
//	loopB:  (6, 2)          absent
func testCube(t *testing.T) *trace.Cube {
	t.Helper()
	cube, err := trace.NewCube([]string{"loopA", "loopB"}, []string{"comp", "p2p"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	set := func(i, j, p int, v float64) {
		t.Helper()
		if err := cube.Set(i, j, p, v); err != nil {
			t.Fatal(err)
		}
	}
	set(0, 0, 0, 4)
	set(0, 0, 1, 4)
	set(0, 1, 0, 1)
	set(0, 1, 1, 3)
	set(1, 0, 0, 6)
	set(1, 0, 1, 2)
	return cube
}

func TestNewProfile(t *testing.T) {
	p, err := NewProfile(testCube(t))
	if err != nil {
		t.Fatal(err)
	}
	// Cell times are means over 2 procs: loopA comp 4, loopA p2p 2,
	// loopB comp 4. Program time defaults to 10.
	if p.ProgramTime != 10 || p.InstrumentedTime != 10 {
		t.Errorf("times = %g, %g", p.ProgramTime, p.InstrumentedTime)
	}
	if p.UninstrumentedTime() != 0 {
		t.Errorf("uninstrumented = %g", p.UninstrumentedTime())
	}
	// comp: 8, p2p: 2 -> dominant comp.
	if p.DominantActivity != 0 {
		t.Errorf("dominant activity = %d", p.DominantActivity)
	}
	if got := p.Activities[0].Time; got != 8 {
		t.Errorf("T_comp = %g", got)
	}
	if got := p.Activities[1].Share; math.Abs(got-0.2) > 1e-12 {
		t.Errorf("p2p share = %g", got)
	}
	// loopA: 6, loopB: 4 -> heaviest loopA.
	if p.HeaviestRegion != 0 {
		t.Errorf("heaviest region = %d", p.HeaviestRegion)
	}
	// Max time in dominant activity: tie at 4 between loopA and loopB;
	// earliest wins.
	if p.RegionWithMaxDominant != 0 {
		t.Errorf("region with max dominant = %d", p.RegionWithMaxDominant)
	}
	// Worst/best per activity. comp: both 4 -> worst loopA (tie, first),
	// best loopA. p2p: only loopA performs it.
	if p.WorstRegion[1].Region != 0 || p.BestRegion[1].Region != 0 {
		t.Errorf("p2p extremes = %+v, %+v", p.WorstRegion[1], p.BestRegion[1])
	}
	if p.WorstRegion[1].Time != 2 {
		t.Errorf("p2p worst time = %g", p.WorstRegion[1].Time)
	}
	// Region breakdowns.
	if !p.Regions[0].Performed[1] || p.Regions[1].Performed[1] {
		t.Error("Performed flags wrong")
	}
	vec := p.ActivityVectors()
	if vec[0][0] != 4 || vec[0][1] != 2 || vec[1][1] != 0 {
		t.Errorf("ActivityVectors = %v", vec)
	}
}

func TestNewProfileErrors(t *testing.T) {
	if _, err := NewProfile(nil); !errors.Is(err, ErrNilCube) {
		t.Errorf("nil cube err = %v", err)
	}
	empty, err := trace.NewCube([]string{"r"}, []string{"a"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewProfile(empty); err == nil {
		t.Error("zero program time should fail")
	}
}

func TestDispersions(t *testing.T) {
	cells, err := Dispersions(testCube(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// loopA comp: balanced -> 0.
	if !cells[0][0].Defined || cells[0][0].ID != 0 {
		t.Errorf("balanced cell = %+v", cells[0][0])
	}
	// loopA p2p: shares (0.25, 0.75), mean 0.5 -> sqrt(2*0.25^2).
	want := math.Sqrt(2 * 0.25 * 0.25)
	if math.Abs(cells[0][1].ID-want) > 1e-12 {
		t.Errorf("p2p ID = %g, want %g", cells[0][1].ID, want)
	}
	// loopB p2p absent.
	if cells[1][1].Defined {
		t.Errorf("absent cell = %+v", cells[1][1])
	}
	// loopB comp: shares (0.75, 0.25) -> same dispersion as loopA p2p.
	if math.Abs(cells[1][0].ID-want) > 1e-12 {
		t.Errorf("loopB comp ID = %g", cells[1][0].ID)
	}
	if _, err := Dispersions(nil, Options{}); !errors.Is(err, ErrNilCube) {
		t.Errorf("nil cube err = %v", err)
	}
}

func TestDispersionsAlternativeIndex(t *testing.T) {
	cells, err := Dispersions(testCube(t), Options{Index: stats.MAD})
	if err != nil {
		t.Fatal(err)
	}
	// loopA p2p shares (0.25, 0.75): MAD = 0.25.
	if math.Abs(cells[0][1].ID-0.25) > 1e-12 {
		t.Errorf("MAD ID = %g, want 0.25", cells[0][1].ID)
	}
}

func TestActivityView(t *testing.T) {
	acts, err := ActivityView(testCube(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := math.Sqrt(2 * 0.25 * 0.25)
	// comp: weights loopA 4/8, loopB 4/8; IDs 0 and d -> d/2.
	if math.Abs(acts[0].ID-d/2) > 1e-12 {
		t.Errorf("ID_A comp = %g, want %g", acts[0].ID, d/2)
	}
	// comp share 8/10.
	if math.Abs(acts[0].Share-0.8) > 1e-12 {
		t.Errorf("comp share = %g", acts[0].Share)
	}
	if math.Abs(acts[0].SID-0.8*d/2) > 1e-12 {
		t.Errorf("SID_A comp = %g", acts[0].SID)
	}
	// p2p: only loopA -> ID = d, share 0.2.
	if math.Abs(acts[1].ID-d) > 1e-12 || math.Abs(acts[1].SID-0.2*d) > 1e-12 {
		t.Errorf("p2p view = %+v", acts[1])
	}
}

func TestCodeRegionView(t *testing.T) {
	regs, err := CodeRegionView(testCube(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := math.Sqrt(2 * 0.25 * 0.25)
	// loopA: weights comp 4/6, p2p 2/6; IDs 0, d -> d/3.
	if math.Abs(regs[0].ID-d/3) > 1e-12 {
		t.Errorf("ID_C loopA = %g, want %g", regs[0].ID, d/3)
	}
	if math.Abs(regs[0].Share-0.6) > 1e-12 {
		t.Errorf("loopA share = %g", regs[0].Share)
	}
	// loopB: only comp -> ID = d.
	if math.Abs(regs[1].ID-d) > 1e-12 {
		t.Errorf("ID_C loopB = %g", regs[1].ID)
	}
	if math.Abs(regs[1].SID-0.4*d) > 1e-12 {
		t.Errorf("SID_C loopB = %g", regs[1].SID)
	}
}

func TestViewsWithEmptyActivity(t *testing.T) {
	cube, err := trace.NewCube([]string{"r"}, []string{"used", "unused"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := cube.Set(0, 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := cube.Set(0, 0, 1, 1); err != nil {
		t.Fatal(err)
	}
	acts, err := ActivityView(cube, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if acts[1].Defined {
		t.Errorf("unused activity should be undefined: %+v", acts[1])
	}
	regs, err := CodeRegionView(cube, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !regs[0].Defined || regs[0].ID != 0 {
		t.Errorf("region view = %+v", regs[0])
	}
}

func TestProcessorView(t *testing.T) {
	// Two regions. In region 0, proc 0's mix is skewed toward p2p,
	// proc 1 and 2 have identical mixes.
	cube, err := trace.NewCube([]string{"r0", "r1"}, []string{"comp", "p2p"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	set := func(i, j, p int, v float64) {
		t.Helper()
		if err := cube.Set(i, j, p, v); err != nil {
			t.Fatal(err)
		}
	}
	// region 0: proc0 (1, 3), proc1 (3, 1), proc2 (3, 1).
	set(0, 0, 0, 1)
	set(0, 1, 0, 3)
	set(0, 0, 1, 3)
	set(0, 1, 1, 1)
	set(0, 0, 2, 3)
	set(0, 1, 2, 1)
	// region 1: all balanced mixes.
	for p := 0; p < 3; p++ {
		set(1, 0, p, 2)
		set(1, 1, p, 2)
	}
	view, err := NewProcessorView(cube, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Region 0: standardized mixes (0.25, 0.75) vs (0.75, 0.25) twice;
	// average (7/12, 5/12). Proc 0 is farthest.
	if !view.ByRegion[0][0].Defined {
		t.Fatal("proc 0 should be defined")
	}
	if view.ByRegion[0][0].ID <= view.ByRegion[0][1].ID {
		t.Errorf("proc 0 ID %g should exceed proc 1 ID %g", view.ByRegion[0][0].ID, view.ByRegion[0][1].ID)
	}
	// Hand check: proc0 deviation (0.25-7/12, 0.75-5/12) -> sqrt(2)*|1/3|.
	want := math.Sqrt2 / 3
	if math.Abs(view.ByRegion[0][0].ID-want) > 1e-12 {
		t.Errorf("proc 0 ID = %g, want %g", view.ByRegion[0][0].ID, want)
	}
	// Region 1 is perfectly mixed: all IDs 0; argmax picks proc 0.
	if view.ByRegion[1][2].ID != 0 {
		t.Errorf("region 1 proc 2 ID = %g", view.ByRegion[1][2].ID)
	}
	if view.MostFrequentlyImbalanced != 0 {
		t.Errorf("most frequently imbalanced = %d", view.MostFrequentlyImbalanced)
	}
	// Proc 0 imbalanced on both regions: time = (1+3) + (2+2) = 8.
	if got := view.Summaries[0].ImbalancedTime; got != 8 {
		t.Errorf("imbalanced time = %g", got)
	}
	if view.LongestImbalanced != 0 {
		t.Errorf("longest imbalanced = %d", view.LongestImbalanced)
	}
	if _, err := NewProcessorView(nil, Options{}); !errors.Is(err, ErrNilCube) {
		t.Errorf("nil cube err = %v", err)
	}
}

func TestProcessorViewIdleProcessor(t *testing.T) {
	cube, err := trace.NewCube([]string{"r"}, []string{"a", "b"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := cube.Set(0, 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	// Proc 1 never runs region r.
	view, err := NewProcessorView(cube, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if view.ByRegion[0][1].Defined {
		t.Error("idle processor should be undefined")
	}
	if !view.ByRegion[0][0].Defined {
		t.Error("active processor should be defined")
	}
}

func TestAnalyze(t *testing.T) {
	a, err := Analyze(testCube(t), AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Profile == nil || a.Processors == nil {
		t.Fatal("missing analysis parts")
	}
	if len(a.Cells) != 2 || len(a.Activities) != 2 || len(a.Regions) != 2 {
		t.Fatalf("analysis shapes wrong: %d, %d, %d", len(a.Cells), len(a.Activities), len(a.Regions))
	}
	if len(a.Clusters) != 2 {
		t.Fatalf("clusters = %v", a.Clusters)
	}
	cands := a.TuningCandidates(MaxCriterion{})
	if len(cands) != 1 {
		t.Fatalf("candidates = %v", cands)
	}
	// loopA SID = 0.6*d/3 = 0.2d; loopB SID = 0.4d -> loopB wins.
	if cands[0].Pos != 1 {
		t.Errorf("tuning candidate = %d, want 1", cands[0].Pos)
	}
	imb := a.ImbalancedActivities(MaxCriterion{})
	if len(imb) != 1 || imb[0].Pos != 0 {
		// comp SID = 0.8*d/2 = 0.4d; p2p SID = 0.2d -> comp wins.
		t.Errorf("imbalanced activities = %v", imb)
	}
}

func TestAnalyzeSkipsClusteringWhenTooFewRegions(t *testing.T) {
	cube, err := trace.NewCube([]string{"only"}, []string{"a"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := cube.Set(0, 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(cube, AnalyzeOptions{ClusterK: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Clusters != nil {
		t.Errorf("clusters = %v, want none", a.Clusters)
	}
}

func TestAnalyzeNilCube(t *testing.T) {
	if _, err := Analyze(nil, AnalyzeOptions{}); !errors.Is(err, ErrNilCube) {
		t.Errorf("nil cube err = %v", err)
	}
}

func TestCriteria(t *testing.T) {
	vals := []float64{0.1, 0.5, 0.3, 0.5}
	if got := (MaxCriterion{}).Select(vals); len(got) != 1 || got[0] != 1 {
		t.Errorf("max select = %v", got)
	}
	if got := (MaxCriterion{}).Select(nil); got != nil {
		t.Errorf("max of empty = %v", got)
	}
	got := PercentileCriterion{Q: 50}.Select(vals)
	// Median of {0.1, 0.3, 0.5, 0.5} is 0.4; values >= 0.4 are the two
	// 0.5s, in position order on ties.
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("p50 select = %v", got)
	}
	if got := (PercentileCriterion{Q: 50}).Select(nil); got != nil {
		t.Errorf("p50 of empty = %v", got)
	}
	got = ThresholdCriterion{T: 0.2}.Select(vals)
	if len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 2 {
		t.Errorf("threshold select = %v", got)
	}
	ranked := Rank(vals, ThresholdCriterion{T: 0.4})
	if len(ranked) != 2 || ranked[0].Value != 0.5 || ranked[0].Pos != 1 {
		t.Errorf("Rank = %v", ranked)
	}
	for _, c := range []Criterion{MaxCriterion{}, PercentileCriterion{Q: 90}, ThresholdCriterion{T: 0.1}} {
		if c.Name() == "" {
			t.Error("criterion with empty name")
		}
	}
}
