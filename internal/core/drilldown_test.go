package core

import (
	"math"
	"testing"

	"loadimb/internal/paper"
	"loadimb/internal/workload"
)

func TestDrillDownPaperLoop1(t *testing.T) {
	cube, err := workload.ReconstructCube()
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(cube, AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	detail, err := a.DrillDown(cube, 0) // loop 1
	if err != nil {
		t.Fatal(err)
	}
	if detail.Name != "loop 1" {
		t.Errorf("name = %q", detail.Name)
	}
	if math.Abs(detail.Time-19.051) > 1e-9 {
		t.Errorf("time = %g", detail.Time)
	}
	if math.Abs(detail.Share-19.051/paper.ProgramTime) > 1e-9 {
		t.Errorf("share = %g", detail.Share)
	}
	// Loop 1 performs three activities; point-to-point is undefined.
	defined := 0
	for _, ad := range detail.Activities {
		if ad.Defined {
			defined++
		} else if ad.Name != "point-to-point" {
			t.Errorf("unexpected undefined activity %q", ad.Name)
		}
	}
	if defined != 3 {
		t.Errorf("defined activities = %d", defined)
	}
	// The activity contributions sum to ID_C (0.04809).
	sum := 0.0
	for _, ad := range detail.Activities {
		sum += ad.Contribution
	}
	if math.Abs(sum-a.Regions[0].ID) > 1e-12 {
		t.Errorf("contributions sum to %g, ID_C is %g", sum, a.Regions[0].ID)
	}
	// Sorted by contribution: collective (weight .354 x .068 = .024)
	// leads computation (.643 x .0367 = .0236).
	if detail.Activities[0].Name != "collective" {
		t.Errorf("top contributor = %q", detail.Activities[0].Name)
	}
	// Processors sorted by descending ID_P; exactly one slowest flag.
	slowest := 0
	for _, pd := range detail.Processors {
		if pd.Slowest {
			slowest++
		}
	}
	if slowest != 1 {
		t.Errorf("slowest flags = %d", slowest)
	}
	for i := 1; i < len(detail.Processors); i++ {
		if detail.Processors[i].ID > detail.Processors[i-1].ID {
			t.Fatal("processors not sorted by ID")
		}
	}
	if len(detail.Processors) != paper.NumProcs {
		t.Errorf("processors listed = %d", len(detail.Processors))
	}
}

func TestDrillDownErrors(t *testing.T) {
	cube, err := workload.ReconstructCube()
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(cube, AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.DrillDown(nil, 0); err == nil {
		t.Error("nil cube should fail")
	}
	if _, err := a.DrillDown(cube, -1); err == nil {
		t.Error("negative region should fail")
	}
	if _, err := a.DrillDown(cube, 99); err == nil {
		t.Error("out-of-range region should fail")
	}
}
