// Package core implements the load-imbalance analysis methodology of
// Calzarossa, Massari and Tessera (2003): a top-down identification and
// localization of performance inefficiencies in parallel programs.
//
// The methodology proceeds in two stages over a measurement cube
// (internal/trace):
//
//  1. Coarse grain (Section 2): the program wall clock time is broken down
//     by activity and by code region; the dominant activity and heaviest
//     region are identified, and regions with similar activity mixes are
//     grouped by clustering.
//
//  2. Fine grain (Section 3): the dissimilarities among processors are
//     quantified with indices of dispersion computed on standardized wall
//     clock times, from three complementary views — processor, activity and
//     code region — and ranked to select tuning candidates.
//
// The entry point is Analyze, which runs the whole pipeline; the individual
// stages (Profile, ProcessorView, ActivityView, CodeRegionView) are also
// exported for callers that need only one of them.
package core
