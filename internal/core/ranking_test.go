package core

import "testing"

func TestTopKCriterion(t *testing.T) {
	vals := []float64{0.1, 0.5, 0.3, 0.4}
	got := TopKCriterion{K: 2}.Select(vals)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("top2 = %v", got)
	}
	if got := (TopKCriterion{K: 10}).Select(vals); len(got) != 4 {
		t.Errorf("top10 of 4 = %v", got)
	}
	if got := (TopKCriterion{K: 0}).Select(vals); got != nil {
		t.Errorf("top0 = %v", got)
	}
	if got := (TopKCriterion{K: 3}).Select(nil); got != nil {
		t.Errorf("top3 of empty = %v", got)
	}
	if (TopKCriterion{K: 3}).Name() != "top3" {
		t.Error("TopK name wrong")
	}
}

func TestTopKStableOnTies(t *testing.T) {
	vals := []float64{0.5, 0.5, 0.5}
	got := TopKCriterion{K: 2}.Select(vals)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("tied top2 = %v, want earliest positions", got)
	}
}

func TestZScoreCriterion(t *testing.T) {
	// Nine values at 1, one at 100: the outlier is > 2 sigma.
	vals := make([]float64, 10)
	for i := range vals {
		vals[i] = 1
	}
	vals[7] = 100
	got := ZScoreCriterion{}.Select(vals)
	if len(got) != 1 || got[0] != 7 {
		t.Errorf("zscore select = %v", got)
	}
	// Uniform data has no outliers.
	if got := (ZScoreCriterion{}).Select([]float64{3, 3, 3}); got != nil {
		t.Errorf("uniform zscore = %v", got)
	}
	// A lax cutoff flags more than a strict one.
	spread := []float64{1, 2, 3, 4, 5, 6, 20}
	lax := ZScoreCriterion{Z: 0.5}.Select(spread)
	strict := ZScoreCriterion{Z: 3}.Select(spread)
	if len(lax) <= len(strict) {
		t.Errorf("lax %v should flag more than strict %v", lax, strict)
	}
	if (ZScoreCriterion{}).Name() != "zscore(2)" {
		t.Errorf("default zscore name = %q", ZScoreCriterion{}.Name())
	}
	if (ZScoreCriterion{Z: 1.5}).Name() != "zscore(1.5)" {
		t.Error("zscore name wrong")
	}
}

func TestCriteriaOnPaperRegions(t *testing.T) {
	// Table 4 SID values: loop 1 dominates; top-2 adds loop 4.
	sid := []float64{0.01311, 0.00152, 0.00280, 0.00571, 0.00214, 0.00135, 0.00003}
	top2 := Rank(sid, TopKCriterion{K: 2})
	if len(top2) != 2 || top2[0].Pos != 0 || top2[1].Pos != 3 {
		t.Errorf("top2 = %v", top2)
	}
	outliers := Rank(sid, ZScoreCriterion{})
	if len(outliers) != 1 || outliers[0].Pos != 0 {
		t.Errorf("zscore outliers = %v, want loop 1 only", outliers)
	}
}
