package core

import (
	"loadimb/internal/cluster"
	"loadimb/internal/trace"
)

// Analysis is the result of running the full methodology on a measurement
// cube: the coarse-grain profile, the cell-level dispersion matrix, the
// three views, and the region clustering.
type Analysis struct {
	// Profile is the coarse-grain characterization (Section 2).
	Profile *Profile
	// Cells is the ID_ij matrix (Table 2).
	Cells [][]CellDispersion
	// Activities is the activity view (Table 3).
	Activities []ActivitySummary
	// Regions is the code-region view (Table 4).
	Regions []RegionSummary
	// Processors is the processor view (Section 3.1).
	Processors *ProcessorView
	// Clusters partitions region indices into groups with homogeneous
	// activity mixes (k-means over the t_ij vectors).
	Clusters [][]int
}

// ClusterMethod selects how regions are grouped.
type ClusterMethod int

// Clustering methods.
const (
	// ClusterKMeans uses k-means with in-order seeding (the paper's
	// behavior). This is the default.
	ClusterKMeans ClusterMethod = iota
	// ClusterKMeansRefined uses farthest-point seeding with
	// Hartigan-Wong refinement: lower within-cluster SSE, possibly a
	// different partition than the paper's.
	ClusterKMeansRefined
	// ClusterHierarchical cuts an average-linkage dendrogram at k
	// clusters.
	ClusterHierarchical
)

// AnalyzeOptions configures Analyze.
type AnalyzeOptions struct {
	// Options configures the dissimilarity analysis.
	Options
	// ClusterK is the number of region clusters; 0 means 2 (the paper's
	// choice for the CFD study). Clustering is skipped when the cube has
	// fewer regions than clusters.
	ClusterK int
	// ClusterMethod selects the grouping algorithm.
	ClusterMethod ClusterMethod
}

// Analyze runs the complete top-down methodology on a cube.
func Analyze(cube *trace.Cube, opts AnalyzeOptions) (*Analysis, error) {
	profile, err := NewProfile(cube)
	if err != nil {
		return nil, err
	}
	cells, err := Dispersions(cube, opts.Options)
	if err != nil {
		return nil, err
	}
	acts, err := ActivityViewFromCells(cube, cells)
	if err != nil {
		return nil, err
	}
	regs, err := CodeRegionViewFromCells(cube, cells)
	if err != nil {
		return nil, err
	}
	procs, err := NewProcessorView(cube, opts.Options)
	if err != nil {
		return nil, err
	}
	a := &Analysis{
		Profile:    profile,
		Cells:      cells,
		Activities: acts,
		Regions:    regs,
		Processors: procs,
	}
	k := opts.ClusterK
	if k == 0 {
		k = 2
	}
	if cube.NumRegions() >= k {
		groups, err := clusterRegions(profile.ActivityVectors(), k, opts.ClusterMethod)
		if err != nil {
			return nil, err
		}
		a.Clusters = groups
	}
	return a, nil
}

// clusterRegions groups the region feature vectors with the selected
// method. First-k seeding (points in table order) matches the behavior of
// the clustering the paper reports; the refined and hierarchical variants
// are the ablation alternatives.
func clusterRegions(points [][]float64, k int, method ClusterMethod) ([][]int, error) {
	switch method {
	case ClusterKMeansRefined:
		res, err := cluster.KMeans(points, k, cluster.Options{Init: cluster.InitFarthest, Refine: true})
		if err != nil {
			return nil, err
		}
		return res.Groups(), nil
	case ClusterHierarchical:
		den, err := cluster.Agglomerate(points, cluster.AverageLinkage)
		if err != nil {
			return nil, err
		}
		return den.Cut(k)
	default: // ClusterKMeans
		res, err := cluster.KMeans(points, k, cluster.Options{Init: cluster.InitFirstK})
		if err != nil {
			return nil, err
		}
		return res.Groups(), nil
	}
}

// TuningCandidates returns the regions flagged by the criterion applied to
// the scaled indices SID_C — the paper's final step: regions that are both
// imbalanced and significant.
func (a *Analysis) TuningCandidates(c Criterion) []Ranked {
	vals := make([]float64, len(a.Regions))
	for i, r := range a.Regions {
		vals[i] = r.SID
	}
	return Rank(vals, c)
}

// ImbalancedActivities returns the activities flagged by the criterion
// applied to the scaled indices SID_A.
func (a *Analysis) ImbalancedActivities(c Criterion) []Ranked {
	vals := make([]float64, len(a.Activities))
	for j, s := range a.Activities {
		vals[j] = s.SID
	}
	return Rank(vals, c)
}
