package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"loadimb/internal/trace"
)

// randomCube builds a cube with pseudo-random positive times.
func randomCube(t *testing.T, rng *rand.Rand, n, k, p int) *trace.Cube {
	t.Helper()
	regions := make([]string, n)
	for i := range regions {
		regions[i] = string(rune('A' + i))
	}
	activities := make([]string, k)
	for j := range activities {
		activities[j] = string(rune('a' + j))
	}
	cube, err := trace.NewCube(regions, activities, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			for q := 0; q < p; q++ {
				if err := cube.Set(i, j, q, 0.1+rng.Float64()*10); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return cube
}

// TestInvariantProcessorPermutation: relabeling the processors permutes
// nothing in the activity and region views — the dispersion indices are
// symmetric in the processors.
func TestInvariantProcessorPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		cube := randomCube(t, rng, 3, 2, 6)
		perm := rng.Perm(6)
		permuted := randomCube(t, rng, 3, 2, 6) // same shape, will overwrite
		for i := 0; i < 3; i++ {
			for j := 0; j < 2; j++ {
				for q := 0; q < 6; q++ {
					v, err := cube.At(i, j, q)
					if err != nil {
						t.Fatal(err)
					}
					if err := permuted.Set(i, j, perm[q], v); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		a, err := Analyze(cube, AnalyzeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Analyze(permuted, AnalyzeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for j := range a.Activities {
			if math.Abs(a.Activities[j].ID-b.Activities[j].ID) > 1e-9 {
				t.Fatalf("trial %d: activity %d ID changed under permutation", trial, j)
			}
		}
		for i := range a.Regions {
			if math.Abs(a.Regions[i].SID-b.Regions[i].SID) > 1e-9 {
				t.Fatalf("trial %d: region %d SID changed under permutation", trial, i)
			}
		}
	}
}

// TestInvariantBalancedRegionContributesZero: adding a perfectly balanced
// region leaves every other region's ID unchanged and gets ID 0 itself.
func TestInvariantBalancedRegionContributesZero(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	base := randomCube(t, rng, 3, 2, 4)
	ext, err := trace.NewCube([]string{"A", "B", "C", "BAL"}, []string{"a", "b"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			for q := 0; q < 4; q++ {
				v, err := base.At(i, j, q)
				if err != nil {
					t.Fatal(err)
				}
				if err := ext.Set(i, j, q, v); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	for j := 0; j < 2; j++ {
		for q := 0; q < 4; q++ {
			if err := ext.Set(3, j, q, 2.5); err != nil {
				t.Fatal(err)
			}
		}
	}
	baseView, err := CodeRegionView(base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	extView, err := CodeRegionView(ext, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if math.Abs(baseView[i].ID-extView[i].ID) > 1e-12 {
			t.Errorf("region %d ID changed when a balanced region was added", i)
		}
	}
	if extView[3].ID != 0 {
		t.Errorf("balanced region ID = %g, want 0", extView[3].ID)
	}
	// The balanced region dilutes everyone's share, so SIDs shrink.
	for i := 0; i < 3; i++ {
		if extView[i].SID >= baseView[i].SID {
			t.Errorf("region %d SID should shrink: %g -> %g", i, baseView[i].SID, extView[i].SID)
		}
	}
}

// TestInvariantSIDBounds: scaled indices never exceed their raw indices,
// and shares sum to at most 1 across regions.
func TestInvariantSIDBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		cube := randomCube(t, rng, 4, 3, 5)
		regs, err := CodeRegionView(cube, Options{})
		if err != nil {
			t.Fatal(err)
		}
		shareSum := 0.0
		for _, r := range regs {
			if r.SID > r.ID+1e-12 {
				t.Fatalf("SID %g exceeds ID %g", r.SID, r.ID)
			}
			if r.Share < 0 || r.Share > 1+1e-12 {
				t.Fatalf("share %g out of range", r.Share)
			}
			shareSum += r.Share
		}
		if shareSum > 1+1e-9 {
			t.Fatalf("region shares sum to %g", shareSum)
		}
	}
}

// TestInvariantDispersionBounds: the Euclidean index on standardized
// values is bounded by sqrt((P-1)/P) (the one-hot worst case).
func TestInvariantDispersionBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 20; trial++ {
		p := 2 + rng.Intn(14)
		cube := randomCube(t, rng, 3, 2, p)
		cells, err := Dispersions(cube, Options{})
		if err != nil {
			t.Fatal(err)
		}
		bound := math.Sqrt(float64(p-1)/float64(p)) + 1e-12
		for i := range cells {
			for j := range cells[i] {
				if c := cells[i][j]; c.Defined && (c.ID < 0 || c.ID > bound) {
					t.Fatalf("ID %g outside [0, %g]", c.ID, bound)
				}
			}
		}
	}
}

// TestInvariantWeightedAverageBracket: each view's aggregate lies between
// the min and max of the cell indices it averages.
func TestInvariantWeightedAverageBracket(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 20; trial++ {
		cube := randomCube(t, rng, 4, 3, 6)
		cells, err := Dispersions(cube, Options{})
		if err != nil {
			t.Fatal(err)
		}
		regs, err := CodeRegionView(cube, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range regs {
			lo, hi := math.Inf(1), math.Inf(-1)
			for j := range cells[i] {
				if !cells[i][j].Defined {
					continue
				}
				lo = math.Min(lo, cells[i][j].ID)
				hi = math.Max(hi, cells[i][j].ID)
			}
			if r.ID < lo-1e-12 || r.ID > hi+1e-12 {
				t.Fatalf("region %d ID %g outside [%g, %g]", i, r.ID, lo, hi)
			}
		}
	}
}

// TestInvariantMoreImbalanceNeverLowersID uses testing/quick: making one
// processor's share strictly larger (a reverse Robin Hood transfer)
// never decreases the cell's dispersion index.
func TestInvariantMoreImbalanceNeverLowersID(t *testing.T) {
	f := func(seed int64, amountRaw float64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 3 + rng.Intn(8)
		times := make([]float64, p)
		for i := range times {
			times[i] = 1 + rng.Float64()*5
		}
		cube, err := trace.NewCube([]string{"r"}, []string{"a"}, p)
		if err != nil {
			return false
		}
		for q, v := range times {
			if err := cube.Set(0, 0, q, v); err != nil {
				return false
			}
		}
		before, err := Dispersions(cube, Options{})
		if err != nil {
			return false
		}
		// Transfer from the poorest to the richest (anti Robin Hood).
		rich, poor := 0, 0
		for q, v := range times {
			if v > times[rich] {
				rich = q
			}
			if v < times[poor] {
				poor = q
			}
		}
		if rich == poor {
			return true
		}
		amount := math.Abs(math.Mod(amountRaw, 1)) * times[poor]
		if err := cube.Set(0, 0, rich, times[rich]+amount); err != nil {
			return false
		}
		if err := cube.Set(0, 0, poor, times[poor]-amount); err != nil {
			return false
		}
		after, err := Dispersions(cube, Options{})
		if err != nil {
			return false
		}
		return after[0][0].ID >= before[0][0].ID-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
