package pattern

import (
	"errors"
	"strings"
	"testing"

	"loadimb/internal/paper"
	"loadimb/internal/trace"
	"loadimb/internal/workload"
)

func smallCube(t *testing.T) *trace.Cube {
	t.Helper()
	cube, err := trace.NewCube([]string{"r1", "r2"}, []string{"comp"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	// r1: spread 0..100 -> min, lower, mid, upper, max.
	for p, v := range []float64{0, 10, 50, 90, 100} {
		if err := cube.Set(0, 0, p, v); err != nil {
			t.Fatal(err)
		}
	}
	// r2: absent.
	return cube
}

func TestNewClassifiesBands(t *testing.T) {
	d, err := New(smallCube(t), "comp", Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []Band{BandMin, BandLower, BandMid, BandUpper, BandMax}
	for p, b := range d.Bands[0] {
		if b != want[p] {
			t.Errorf("proc %d band = %v, want %v", p, b, want[p])
		}
	}
	for p, b := range d.Bands[1] {
		if b != BandAbsent {
			t.Errorf("absent row proc %d band = %v", p, b)
		}
	}
	if d.Performed(1) {
		t.Error("r2 should not be performed")
	}
	if !d.Performed(0) {
		t.Error("r1 should be performed")
	}
}

func TestBandBoundaries(t *testing.T) {
	cube, err := trace.NewCube([]string{"r"}, []string{"a"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Range [0, 100], 15% boundaries at 15 and 85 inclusive.
	for p, v := range []float64{0, 15, 85, 100} {
		if err := cube.Set(0, 0, p, v); err != nil {
			t.Fatal(err)
		}
	}
	d, err := New(cube, "a", Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []Band{BandMin, BandLower, BandUpper, BandMax}
	for p, b := range d.Bands[0] {
		if b != want[p] {
			t.Errorf("proc %d band = %v, want %v", p, b, want[p])
		}
	}
}

func TestBalancedRowIsMid(t *testing.T) {
	cube, err := trace.NewCube([]string{"r"}, []string{"a"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 3; p++ {
		if err := cube.Set(0, 0, p, 7); err != nil {
			t.Fatal(err)
		}
	}
	d, err := New(cube, "a", Options{})
	if err != nil {
		t.Fatal(err)
	}
	for p, b := range d.Bands[0] {
		if b != BandMid {
			t.Errorf("proc %d band = %v, want mid", p, b)
		}
	}
}

func TestNewErrors(t *testing.T) {
	cube := smallCube(t)
	if _, err := New(nil, "comp", Options{}); err == nil {
		t.Error("nil cube should fail")
	}
	if _, err := New(cube, "nope", Options{}); !errors.Is(err, ErrNoActivity) {
		t.Errorf("unknown activity err = %v", err)
	}
	if _, err := New(cube, "comp", Options{BandFraction: 0.7}); err == nil {
		t.Error("band fraction > 0.5 should fail")
	}
	if _, err := New(cube, "comp", Options{BandFraction: -0.1}); err == nil {
		t.Error("negative band fraction should fail")
	}
}

func TestCount(t *testing.T) {
	d, err := New(smallCube(t), "comp", Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Upper count includes the max.
	upper, err := d.Count(0, BandUpper)
	if err != nil || upper != 2 {
		t.Errorf("upper count = %d, %v; want 2", upper, err)
	}
	lower, err := d.Count(0, BandLower)
	if err != nil || lower != 2 {
		t.Errorf("lower count = %d, %v; want 2", lower, err)
	}
	mid, err := d.Count(0, BandMid)
	if err != nil || mid != 1 {
		t.Errorf("mid count = %d, %v; want 1", mid, err)
	}
	if _, err := d.Count(9, BandMid); err == nil {
		t.Error("out-of-range region should fail")
	}
}

func TestASCII(t *testing.T) {
	d, err := New(smallCube(t), "comp", Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := d.ASCII()
	if !strings.Contains(out, "comp") || !strings.Contains(out, "legend") {
		t.Errorf("ASCII missing header/legend:\n%s", out)
	}
	if !strings.Contains(out, "r1 |m-.+M|") {
		t.Errorf("ASCII row wrong:\n%s", out)
	}
	if strings.Contains(out, "r2") {
		t.Errorf("absent row should be omitted:\n%s", out)
	}
}

func TestSVG(t *testing.T) {
	d, err := New(smallCube(t), "comp", Options{})
	if err != nil {
		t.Fatal(err)
	}
	svg := d.SVG()
	if !strings.HasPrefix(svg, "<svg") || !strings.Contains(svg, "</svg>") {
		t.Error("not an SVG document")
	}
	if strings.Count(svg, "<rect") != 5 {
		t.Errorf("expected 5 cells, got %d", strings.Count(svg, "<rect"))
	}
	if !strings.Contains(svg, "r1") || strings.Contains(svg, ">r2<") {
		t.Error("row labels wrong")
	}
}

func TestBandStringsAndRunes(t *testing.T) {
	for _, b := range []Band{BandAbsent, BandMin, BandLower, BandMid, BandUpper, BandMax, Band(42)} {
		if b.String() == "" {
			t.Errorf("empty String for band %d", int(b))
		}
	}
	if BandMax.Rune() != 'M' || BandAbsent.Rune() != ' ' {
		t.Error("legend runes wrong")
	}
}

// TestReproduceFigure1 checks the published Figure 1 observations on the
// reconstructed cube: on loop 4's computation 5 of 16 processors lie in the
// upper 15% interval; on loop 6's computation 11 of 16 lie in the lower
// interval; every loop computes so all 7 rows are drawn.
func TestReproduceFigure1(t *testing.T) {
	cube, err := workload.ReconstructCube()
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(cube, "computation", Options{BandFraction: paper.BandFraction})
	if err != nil {
		t.Fatal(err)
	}
	upper4, err := d.Count(3, BandUpper)
	if err != nil {
		t.Fatal(err)
	}
	if upper4 != paper.Figure1Loop4Upper {
		t.Errorf("loop 4 upper count = %d, published %d", upper4, paper.Figure1Loop4Upper)
	}
	lower6, err := d.Count(5, BandLower)
	if err != nil {
		t.Fatal(err)
	}
	if lower6 != paper.Figure1Loop6Lower {
		t.Errorf("loop 6 lower count = %d, published %d", lower6, paper.Figure1Loop6Lower)
	}
	rows := 0
	for i := range d.Regions {
		if d.Performed(i) {
			rows++
		}
	}
	if rows != paper.NumLoops {
		t.Errorf("figure 1 rows = %d, want %d", rows, paper.NumLoops)
	}
}

// TestReproduceFigure2 checks Figure 2's structure: only the four loops
// that perform point-to-point communications are drawn.
func TestReproduceFigure2(t *testing.T) {
	cube, err := workload.ReconstructCube()
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(cube, "point-to-point", Options{BandFraction: paper.BandFraction})
	if err != nil {
		t.Fatal(err)
	}
	var drawn []int
	for i := range d.Regions {
		if d.Performed(i) {
			drawn = append(drawn, i+1)
		}
	}
	want := []int{3, 4, 5, 6}
	if len(drawn) != len(want) {
		t.Fatalf("figure 2 rows = %v, want %v", drawn, want)
	}
	for i := range want {
		if drawn[i] != want[i] {
			t.Fatalf("figure 2 rows = %v, want %v", drawn, want)
		}
	}
}

func TestCountsTable(t *testing.T) {
	cube, err := workload.ReconstructCube()
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(cube, "computation", Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := d.CountsTable()
	if !strings.Contains(out, "of 16 processors") {
		t.Errorf("missing processor count:\n%s", out)
	}
	// Loop 4: 5 upper (published); loop 6: 11 lower (published).
	if !strings.Contains(out, "loop 4  lower 11  mid  0  upper  5") {
		t.Errorf("loop 4 counts wrong:\n%s", out)
	}
	if !strings.Contains(out, "loop 6  lower 11  mid  0  upper  5") {
		t.Errorf("loop 6 counts wrong:\n%s", out)
	}
}
