// Package pattern renders the qualitative processor-behavior diagrams of
// the paper's Figures 1 and 2: for one activity, a row per code region and
// a cell per processor, with each cell classified by where the processor's
// wall clock time falls within the region's range — the maximum, the
// minimum, the lower 15% interval, the upper 15% interval, or the middle.
//
// Two renderers are provided: a fixed-width ASCII diagram for terminals and
// an SVG document for reports.
package pattern

import (
	"errors"
	"fmt"
	"strings"

	"loadimb/internal/trace"
)

// Band classifies one processor's time within its region's range.
type Band int

// Band values, from lowest to highest time.
const (
	// BandAbsent marks regions that do not perform the activity (the
	// paper's diagrams omit those rows entirely).
	BandAbsent Band = iota
	// BandMin is the minimum time of the row.
	BandMin
	// BandLower is the lower 15% interval of the row's range (excluding
	// the minimum).
	BandLower
	// BandMid is the middle of the range.
	BandMid
	// BandUpper is the upper 15% interval (excluding the maximum).
	BandUpper
	// BandMax is the maximum time of the row.
	BandMax
)

// String returns the band name.
func (b Band) String() string {
	switch b {
	case BandAbsent:
		return "absent"
	case BandMin:
		return "min"
	case BandLower:
		return "lower"
	case BandMid:
		return "mid"
	case BandUpper:
		return "upper"
	case BandMax:
		return "max"
	}
	return fmt.Sprintf("Band(%d)", int(b))
}

// Rune returns the single-character legend used by the ASCII renderer.
func (b Band) Rune() rune {
	switch b {
	case BandMin:
		return 'm'
	case BandLower:
		return '-'
	case BandMid:
		return '.'
	case BandUpper:
		return '+'
	case BandMax:
		return 'M'
	default:
		return ' '
	}
}

// ErrNoActivity is returned when the requested activity is not in the cube.
var ErrNoActivity = errors.New("pattern: activity not found")

// Diagram is the banded classification of one activity across all regions
// and processors.
type Diagram struct {
	// Activity is the diagram's activity name.
	Activity string
	// Regions lists the region names of the rows, in cube order
	// (including rows whose activity is absent; renderers skip them, as
	// the paper's figures do).
	Regions []string
	// Bands[i][p] classifies processor p in region i.
	Bands [][]Band
	// BandFraction is the width of the lower/upper intervals relative to
	// the row range (the paper uses 0.15).
	BandFraction float64
}

// Options configures diagram construction.
type Options struct {
	// BandFraction is the relative width of the lower and upper
	// intervals; 0 means 0.15, the paper's choice. Must be in (0, 0.5].
	BandFraction float64
}

// New classifies the named activity of the cube into bands.
func New(cube *trace.Cube, activity string, opts Options) (*Diagram, error) {
	if cube == nil {
		return nil, errors.New("pattern: nil cube")
	}
	j := cube.ActivityIndex(activity)
	if j < 0 {
		return nil, fmt.Errorf("%w: %q (have %v)", ErrNoActivity, activity, cube.Activities())
	}
	frac := opts.BandFraction
	if frac == 0 {
		frac = 0.15
	}
	if frac < 0 || frac > 0.5 {
		return nil, fmt.Errorf("pattern: band fraction %g out of (0, 0.5]", frac)
	}
	d := &Diagram{
		Activity:     activity,
		Regions:      cube.Regions(),
		Bands:        make([][]Band, cube.NumRegions()),
		BandFraction: frac,
	}
	for i := range d.Bands {
		times, err := cube.ProcTimes(i, j)
		if err != nil {
			return nil, err
		}
		d.Bands[i] = classifyRow(times, frac)
	}
	return d, nil
}

// classifyRow assigns a band to every processor of one region row.
func classifyRow(times []float64, frac float64) []Band {
	bands := make([]Band, len(times))
	total := 0.0
	lo, hi := times[0], times[0]
	for _, t := range times {
		total += t
		if t < lo {
			lo = t
		}
		if t > hi {
			hi = t
		}
	}
	if total == 0 {
		return bands // all BandAbsent
	}
	span := hi - lo
	for p, t := range times {
		switch {
		case span == 0:
			// All processors identical: perfectly balanced row.
			bands[p] = BandMid
		case t == hi:
			bands[p] = BandMax
		case t == lo:
			bands[p] = BandMin
		case t >= hi-frac*span:
			bands[p] = BandUpper
		case t <= lo+frac*span:
			bands[p] = BandLower
		default:
			bands[p] = BandMid
		}
	}
	return bands
}

// Count returns how many processors of region i fall in the band,
// counting the maximum as part of the upper interval and the minimum as
// part of the lower interval when band is BandUpper or BandLower (the
// paper's "5 of 16 in the upper 15% interval" counts include the extreme).
func (d *Diagram) Count(i int, band Band) (int, error) {
	if i < 0 || i >= len(d.Bands) {
		return 0, fmt.Errorf("pattern: region %d out of range [0, %d)", i, len(d.Bands))
	}
	n := 0
	for _, b := range d.Bands[i] {
		if b == band ||
			(band == BandUpper && b == BandMax) ||
			(band == BandLower && b == BandMin) {
			n++
		}
	}
	return n, nil
}

// Performed reports whether region i performs the activity (its row is
// drawn in the figure).
func (d *Diagram) Performed(i int) bool {
	for _, b := range d.Bands[i] {
		if b != BandAbsent {
			return true
		}
	}
	return false
}

// ASCII renders the diagram as a fixed-width text figure, one row per
// region that performs the activity, one character per processor, with a
// legend. The layout mirrors the paper's Figures 1 and 2.
func (d *Diagram) ASCII() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", d.Activity)
	width := 0
	for i, name := range d.Regions {
		if d.Performed(i) && len(name) > width {
			width = len(name)
		}
	}
	for i, name := range d.Regions {
		if !d.Performed(i) {
			continue
		}
		fmt.Fprintf(&sb, "%-*s |", width, name)
		for _, b := range d.Bands[i] {
			sb.WriteRune(b.Rune())
		}
		sb.WriteString("|\n")
	}
	fmt.Fprintf(&sb, "legend: M max, + upper %.0f%%, . mid, - lower %.0f%%, m min\n",
		d.BandFraction*100, d.BandFraction*100)
	return sb.String()
}

// bandFill maps bands to the SVG fill colors (the paper uses four colors
// for max, min, lower and upper; mid is drawn unfilled).
func bandFill(b Band) string {
	switch b {
	case BandMax:
		return "#b2182b"
	case BandUpper:
		return "#ef8a62"
	case BandMid:
		return "#f7f7f7"
	case BandLower:
		return "#67a9cf"
	case BandMin:
		return "#2166ac"
	default:
		return "none"
	}
}

// SVG renders the diagram as a standalone SVG document.
func (d *Diagram) SVG() string {
	const (
		cell   = 18
		gap    = 4
		labelW = 80
		rowH   = cell + gap
	)
	rows := 0
	procs := 0
	for i := range d.Bands {
		if d.Performed(i) {
			rows++
			procs = len(d.Bands[i])
		}
	}
	w := labelW + procs*(cell+2) + 10
	h := rows*rowH + 40
	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d">`+"\n", w, h)
	fmt.Fprintf(&sb, `<text x="4" y="16" font-family="sans-serif" font-size="13">%s</text>`+"\n", d.Activity)
	y := 28
	for i, name := range d.Regions {
		if !d.Performed(i) {
			continue
		}
		fmt.Fprintf(&sb, `<text x="4" y="%d" font-family="sans-serif" font-size="11">%s</text>`+"\n", y+13, name)
		for p, b := range d.Bands[i] {
			x := labelW + p*(cell+2)
			fmt.Fprintf(&sb, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s" stroke="#333"/>`+"\n",
				x, y, cell, cell, bandFill(b))
		}
		y += rowH
	}
	sb.WriteString("</svg>\n")
	return sb.String()
}

// CountsTable renders the per-region band counts as a text table: how
// many processors of each region fall in the lower band (including the
// minimum), the middle, and the upper band (including the maximum) —
// the quantitative companion of the diagram ("5 of 16 processors in the
// upper 15% interval").
func (d *Diagram) CountsTable() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s band counts (lower/mid/upper of %d processors)\n", d.Activity, d.procs())
	width := 0
	for i, name := range d.Regions {
		if d.Performed(i) && len(name) > width {
			width = len(name)
		}
	}
	for i, name := range d.Regions {
		if !d.Performed(i) {
			continue
		}
		lower, _ := d.Count(i, BandLower)
		mid, _ := d.Count(i, BandMid)
		upper, _ := d.Count(i, BandUpper)
		fmt.Fprintf(&sb, "%-*s  lower %2d  mid %2d  upper %2d\n", width, name, lower, mid, upper)
	}
	return sb.String()
}

// procs returns the processor count of the diagram.
func (d *Diagram) procs() int {
	for _, row := range d.Bands {
		return len(row)
	}
	return 0
}
