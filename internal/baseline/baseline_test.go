package baseline

import (
	"math"
	"testing"

	"loadimb/internal/trace"
	"loadimb/internal/workload"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPercentImbalance(t *testing.T) {
	if got := PercentImbalance.Of([]float64{1, 1, 1, 1}); got != 0 {
		t.Errorf("balanced = %g", got)
	}
	// One of four does everything: max 4, mean 1 -> 300%.
	if got := PercentImbalance.Of([]float64{4, 0, 0, 0}); !almost(got, 300, 1e-9) {
		t.Errorf("one-hot = %g, want 300", got)
	}
	if got := PercentImbalance.Of([]float64{0, 0}); got != 0 {
		t.Errorf("zero total = %g", got)
	}
}

func TestImbalanceTime(t *testing.T) {
	if got := ImbalanceTime.Of([]float64{3, 1}); !almost(got, 1, 1e-9) {
		t.Errorf("= %g, want 1 (max 3, mean 2)", got)
	}
	if got := ImbalanceTime.Of([]float64{5, 5}); got != 0 {
		t.Errorf("balanced = %g", got)
	}
}

func TestImbalancePercentage(t *testing.T) {
	// One of four doing everything scores exactly 100.
	if got := ImbalancePercentage.Of([]float64{4, 0, 0, 0}); !almost(got, 100, 1e-9) {
		t.Errorf("one-hot = %g, want 100", got)
	}
	if got := ImbalancePercentage.Of([]float64{1, 1}); got != 0 {
		t.Errorf("balanced = %g", got)
	}
	if got := ImbalancePercentage.Of([]float64{0, 0}); got != 0 {
		t.Errorf("zero = %g", got)
	}
	if got := ImbalancePercentage.Of([]float64{5}); got != 0 {
		t.Errorf("singleton = %g", got)
	}
}

func TestCoVMetric(t *testing.T) {
	if got := CoVMetric.Of([]float64{2, 4, 4, 4, 5, 5, 7, 9}); !almost(got, 0.4, 1e-9) {
		t.Errorf("CoV = %g, want 0.4", got)
	}
}

func TestMetricByName(t *testing.T) {
	for _, m := range Metrics() {
		got, ok := MetricByName(m.Name())
		if !ok || got.Name() != m.Name() {
			t.Errorf("MetricByName(%q) failed", m.Name())
		}
	}
	if _, ok := MetricByName("nope"); ok {
		t.Error("unknown metric should fail")
	}
}

func TestRankRegions(t *testing.T) {
	cube, err := trace.NewCube([]string{"balanced", "skewed"}, []string{"a"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 2; p++ {
		if err := cube.Set(0, 0, p, 5); err != nil {
			t.Fatal(err)
		}
	}
	if err := cube.Set(1, 0, 0, 9); err != nil {
		t.Fatal(err)
	}
	if err := cube.Set(1, 0, 1, 1); err != nil {
		t.Fatal(err)
	}
	scores, err := RankRegions(cube, PercentImbalance)
	if err != nil {
		t.Fatal(err)
	}
	if scores[0].Name != "skewed" || scores[1].Name != "balanced" {
		t.Errorf("ranking = %v", scores)
	}
	if scores[1].Score != 0 {
		t.Errorf("balanced score = %g", scores[1].Score)
	}
	if _, err := RankRegions(nil, PercentImbalance); err == nil {
		t.Error("nil cube should fail")
	}
}

func TestScoreCells(t *testing.T) {
	cube, err := trace.NewCube([]string{"r"}, []string{"used", "unused"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := cube.Set(0, 0, 0, 3); err != nil {
		t.Fatal(err)
	}
	if err := cube.Set(0, 0, 1, 1); err != nil {
		t.Fatal(err)
	}
	cells, err := ScoreCells(cube, ImbalanceTime)
	if err != nil {
		t.Fatal(err)
	}
	if !cells[0][0].Defined || !almost(cells[0][0].Score, 1, 1e-9) {
		t.Errorf("cell (0,0) = %+v", cells[0][0])
	}
	if cells[0][1].Defined {
		t.Errorf("absent cell = %+v", cells[0][1])
	}
	if _, err := ScoreCells(nil, ImbalanceTime); err == nil {
		t.Error("nil cube should fail")
	}
}

func TestAgreement(t *testing.T) {
	identical, err := Agreement([]float64{3, 2, 1}, []float64{30, 20, 10})
	if err != nil || identical != 1 {
		t.Errorf("identical order = %g, %v", identical, err)
	}
	reversed, err := Agreement([]float64{3, 2, 1}, []float64{1, 2, 3})
	if err != nil || reversed != -1 {
		t.Errorf("reversed order = %g, %v", reversed, err)
	}
	if _, err := Agreement([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := Agreement([]float64{1}, []float64{1}); err == nil {
		t.Error("single item should fail")
	}
	ties, err := Agreement([]float64{1, 1}, []float64{1, 2})
	if err != nil || ties != 0 {
		t.Errorf("tied pair = %g, %v", ties, err)
	}
}

func TestCriticalPathLoss(t *testing.T) {
	cube, err := workload.ReconstructCube()
	if err != nil {
		t.Fatal(err)
	}
	loss, err := CriticalPathLoss(cube)
	if err != nil {
		t.Fatal(err)
	}
	if loss <= 0 || loss >= 1 {
		t.Errorf("loss = %g, want a small positive fraction", loss)
	}
	if _, err := CriticalPathLoss(nil); err == nil {
		t.Error("nil cube should fail")
	}
}

// TestBaselineAgreesOnObviousCase: on a cube where one region is clearly
// the most imbalanced, every baseline metric and the paper's SID agree on
// the winner.
func TestBaselineAgreesOnObviousCase(t *testing.T) {
	spec := workload.Uniform(3, 1, 8)
	spec.CellTime = func(i, j int) float64 { return 10 }
	cube, err := workload.Synthesize(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite region 2 with a heavily imbalanced distribution.
	shares, err := workload.OneHotProfile{}.Shares(8, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	for p, s := range shares {
		if err := cube.Set(2, 0, p, 80*s); err != nil {
			t.Fatal(err)
		}
	}
	for _, m := range Metrics() {
		scores, err := RankRegions(cube, m)
		if err != nil {
			t.Fatal(err)
		}
		if scores[0].Region != 2 {
			t.Errorf("%s picked region %d, want 2", m.Name(), scores[0].Region)
		}
	}
}

func TestSpearman(t *testing.T) {
	same, err := Spearman([]float64{1, 2, 3}, []float64{10, 20, 30})
	if err != nil || !almost(same, 1, 1e-12) {
		t.Errorf("identical order = %g, %v", same, err)
	}
	rev, err := Spearman([]float64{1, 2, 3}, []float64{3, 2, 1})
	if err != nil || !almost(rev, -1, 1e-12) {
		t.Errorf("reversed = %g, %v", rev, err)
	}
	if _, err := Spearman([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := Spearman([]float64{1}, []float64{2}); err == nil {
		t.Error("single item should fail")
	}
	constant, err := Spearman([]float64{5, 5, 5}, []float64{1, 2, 3})
	if err != nil || constant != 0 {
		t.Errorf("constant ranking = %g, %v", constant, err)
	}
}

func TestRanksWithTies(t *testing.T) {
	got := ranks([]float64{10, 20, 10, 30})
	want := []float64{1.5, 3, 1.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", got, want)
		}
	}
}

func TestSpearmanVsKendallOnPaperTables(t *testing.T) {
	// Both rank correlations agree on the direction when comparing the
	// SID ranking with the imbalance-time ranking on the paper cube.
	cube, err := workload.ReconstructCube()
	if err != nil {
		t.Fatal(err)
	}
	ranked, err := RankRegions(cube, ImbalanceTime)
	if err != nil {
		t.Fatal(err)
	}
	baselineScores := make([]float64, cube.NumRegions())
	for _, r := range ranked {
		baselineScores[r.Region] = r.Score
	}
	// SID_C from Table 4.
	sid := []float64{0.01310, 0.00152, 0.00280, 0.00571, 0.00214, 0.00136, 0.00003}
	tau, err := Agreement(sid, baselineScores)
	if err != nil {
		t.Fatal(err)
	}
	rho, err := Spearman(sid, baselineScores)
	if err != nil {
		t.Fatal(err)
	}
	if tau <= 0 || rho <= 0 {
		t.Errorf("correlations should be positive: tau %g, rho %g", tau, rho)
	}
	if (tau > 0) != (rho > 0) {
		t.Errorf("tau %g and rho %g disagree on direction", tau, rho)
	}
}
