// Package baseline implements the load-imbalance metrics used by
// contemporaneous performance tools (Cray MPP Apprentice, Paradyn-style
// threshold metrics, and the later Scalasca/TAU conventions), as
// comparators for the paper's dispersion-index methodology:
//
//   - percent imbalance: (max/mean - 1) * 100
//   - imbalance time: max - mean (absolute cost of the imbalance)
//   - imbalance percentage: (max-mean)/max * P/(P-1) * 100, normalized so
//     one processor doing everything scores 100%
//   - CoV ranking: coefficient of variation of the raw times
//
// These metrics operate on the raw per-processor times of one (region,
// activity) cell, unlike the paper's standardized Euclidean index, and are
// absolute (imbalance time) or relative (the percentages). RankRegions
// applies any of them cube-wide for side-by-side comparison with the
// paper's SID ranking.
package baseline

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"loadimb/internal/stats"
	"loadimb/internal/trace"
)

// ErrEmpty is returned when a metric is applied to an empty data set.
var ErrEmpty = errors.New("baseline: empty data set")

// A Metric measures the load imbalance of the raw per-processor times of
// one cell.
type Metric interface {
	// Name identifies the metric.
	Name() string
	// Of computes the metric over raw (not standardized) times. It
	// returns 0 for a cell with zero total time.
	Of(times []float64) float64
}

// metricFunc adapts a function to Metric.
type metricFunc struct {
	name string
	f    func([]float64) float64
}

func (m metricFunc) Name() string            { return m.name }
func (m metricFunc) Of(ts []float64) float64 { return m.f(ts) }

// PercentImbalance is (max/mean - 1) * 100, the classic "percent
// imbalance" metric: 0 for balanced, (P-1)*100 when one processor does
// all the work.
var PercentImbalance Metric = metricFunc{"percent-imbalance", func(ts []float64) float64 {
	s := stats.Summarize(ts)
	if s.Mean == 0 {
		return 0
	}
	return (s.Max/s.Mean - 1) * 100
}}

// ImbalanceTime is max - mean: the wall clock time attributable to the
// imbalance (the time the slowest processor spends beyond the ideal
// balanced share). Unlike the relative indices it is an absolute cost, so
// it needs no extra scaling step to reflect significance.
var ImbalanceTime Metric = metricFunc{"imbalance-time", func(ts []float64) float64 {
	s := stats.Summarize(ts)
	return s.Max - s.Mean
}}

// ImbalancePercentage is (max-mean)/max * P/(P-1) * 100: the fraction of
// the critical path wasted by imbalance, normalized to score 100 when a
// single processor does everything.
var ImbalancePercentage Metric = metricFunc{"imbalance-percentage", func(ts []float64) float64 {
	s := stats.Summarize(ts)
	if s.Max == 0 || s.N < 2 {
		return 0
	}
	return (s.Max - s.Mean) / s.Max * float64(s.N) / float64(s.N-1) * 100
}}

// CoVMetric ranks by the coefficient of variation of the raw times.
var CoVMetric Metric = metricFunc{"cov", func(ts []float64) float64 {
	return stats.Summarize(ts).CoV()
}}

// Metrics returns the built-in baseline metrics in a stable order.
func Metrics() []Metric {
	return []Metric{PercentImbalance, ImbalanceTime, ImbalancePercentage, CoVMetric}
}

// MetricByName returns the named metric, or false.
func MetricByName(name string) (Metric, bool) {
	for _, m := range Metrics() {
		if m.Name() == name {
			return m, true
		}
	}
	return nil, false
}

// RegionScore is a region's aggregate score under a baseline metric.
type RegionScore struct {
	// Region is the cube region index.
	Region int
	// Name is the region name.
	Name string
	// Score is the aggregate metric value.
	Score float64
}

// RankRegions scores every region of the cube with the metric applied to
// the region's total per-processor times (summed over activities) and
// returns the regions sorted by decreasing score. This is how
// threshold-based tools point at "the most imbalanced code region".
func RankRegions(cube *trace.Cube, m Metric) ([]RegionScore, error) {
	if cube == nil {
		return nil, errors.New("baseline: nil cube")
	}
	names := cube.Regions()
	out := make([]RegionScore, cube.NumRegions())
	for i := range out {
		times := make([]float64, cube.NumProcs())
		for p := range times {
			v, err := cube.ProcRegionTime(i, p)
			if err != nil {
				return nil, err
			}
			times[p] = v
		}
		out[i] = RegionScore{Region: i, Name: names[i], Score: m.Of(times)}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Score > out[b].Score })
	return out, nil
}

// CellScore is one cell's value under a baseline metric.
type CellScore struct {
	// Region and Activity are cube indices.
	Region, Activity int
	// Defined is false when the activity is absent from the region.
	Defined bool
	// Score is the metric value.
	Score float64
}

// ScoreCells applies the metric to every (region, activity) cell,
// mirroring the paper's Table 2 with a baseline metric.
func ScoreCells(cube *trace.Cube, m Metric) ([][]CellScore, error) {
	if cube == nil {
		return nil, errors.New("baseline: nil cube")
	}
	out := make([][]CellScore, cube.NumRegions())
	for i := range out {
		out[i] = make([]CellScore, cube.NumActivities())
		for j := range out[i] {
			out[i][j] = CellScore{Region: i, Activity: j}
			times, err := cube.ProcTimes(i, j)
			if err != nil {
				return nil, err
			}
			if stats.Sum(times) == 0 {
				continue
			}
			out[i][j].Defined = true
			out[i][j].Score = m.Of(times)
		}
	}
	return out, nil
}

// Agreement quantifies how similarly two rankings order the same items:
// the Kendall tau-a rank correlation in [-1, 1] of the two score slices
// (1 = identical order, -1 = reversed). Rankings of different lengths are
// an error.
func Agreement(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("baseline: rankings have %d and %d items", len(a), len(b))
	}
	n := len(a)
	if n < 2 {
		return 0, fmt.Errorf("%w: need at least 2 items", ErrEmpty)
	}
	concordant := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			da, db := a[i]-a[j], b[i]-b[j]
			switch {
			case da*db > 0:
				concordant++
			case da*db < 0:
				concordant--
			}
		}
	}
	pairs := n * (n - 1) / 2
	return float64(concordant) / float64(pairs), nil
}

// CriticalPathLoss estimates the fraction of the program's aggregate
// processor-seconds lost to imbalance: sum over regions of (max - mean)
// divided by the program wall clock time. It is the absolute-damage
// summary that the paper's relative indices deliberately do not provide.
func CriticalPathLoss(cube *trace.Cube) (float64, error) {
	if cube == nil {
		return 0, errors.New("baseline: nil cube")
	}
	loss := 0.0
	for i := 0; i < cube.NumRegions(); i++ {
		times := make([]float64, cube.NumProcs())
		for p := range times {
			v, err := cube.ProcRegionTime(i, p)
			if err != nil {
				return 0, err
			}
			times[p] = v
		}
		s := stats.Summarize(times)
		loss += s.Max - s.Mean
	}
	t := cube.ProgramTime()
	if t <= 0 {
		return 0, errors.New("baseline: zero program time")
	}
	if math.IsNaN(loss) {
		return 0, errors.New("baseline: NaN loss")
	}
	return loss / t, nil
}

// Spearman returns the Spearman rank correlation of two score slices in
// [-1, 1]: the Pearson correlation of the rank vectors (average ranks for
// ties). Where Kendall's tau counts pairwise inversions, Spearman weights
// by rank distance; reporting both is conventional in metric-agreement
// studies.
func Spearman(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("baseline: rankings have %d and %d items", len(a), len(b))
	}
	n := len(a)
	if n < 2 {
		return 0, fmt.Errorf("%w: need at least 2 items", ErrEmpty)
	}
	ra, rb := ranks(a), ranks(b)
	meanA, meanB := 0.0, 0.0
	for i := range ra {
		meanA += ra[i]
		meanB += rb[i]
	}
	meanA /= float64(n)
	meanB /= float64(n)
	num, da, db := 0.0, 0.0, 0.0
	for i := range ra {
		x, y := ra[i]-meanA, rb[i]-meanB
		num += x * y
		da += x * x
		db += y * y
	}
	if da == 0 || db == 0 {
		return 0, nil // a constant ranking correlates with nothing
	}
	return num / math.Sqrt(da*db), nil
}

// ranks returns the 1-based average ranks of xs.
func ranks(xs []float64) []float64 {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	out := make([]float64, len(xs))
	for i := 0; i < len(idx); {
		j := i
		for j+1 < len(idx) && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}
