package trace

import (
	"errors"
	"fmt"
)

// JobCube is one job's contribution to a federated whole-cluster cube: a
// measurement cube together with the label that namespaces it.
type JobCube struct {
	// Label namespaces the job's code regions as "label/region", keeping
	// same-named regions of distinct jobs distinguishable in the merged
	// cube. An empty label leaves region names as they are, so regions
	// shared by several jobs merge cell-wise (their processor sets stay
	// disjoint through rank offsetting either way).
	Label string
	// Cube is the job's measurement cube.
	Cube *Cube
}

// qualified returns the namespaced name of one of the job's regions.
func (j JobCube) qualified(region string) string {
	if j.Label == "" {
		return region
	}
	return j.Label + "/" + region
}

// Federate merges the cubes of several concurrently running jobs into one
// cube that treats the whole cluster as a single program, the way the
// paper treats its P=16 run. It differs from Merge, which folds repeated
// runs of the *same* program (same shape, times added cell-wise):
//
//   - Processors are offset, not added: job k's processor p becomes
//     federated processor sum(procs of jobs < k) + p, so distinct jobs'
//     ranks never collide.
//   - Regions are the union of the jobs' (label-namespaced) region names
//     and activities the union of the activity names, both in first
//     appearance order across jobs; cells a job never visited stay zero
//     on that job's processors.
//   - The program time is the maximum of the job program times — the
//     jobs run side by side, so the cluster-wide wall clock is the
//     longest job timeline, exactly as Log.Aggregate takes the span of a
//     merged event log.
func Federate(jobs []JobCube) (*Cube, error) {
	if len(jobs) == 0 {
		return nil, errors.New("trace: no cubes to federate")
	}
	var regions, activities []string
	rIdx := make(map[string]int)
	aIdx := make(map[string]int)
	procs := 0
	for k, job := range jobs {
		if job.Cube == nil {
			return nil, fmt.Errorf("trace: federated job %d (%q) has a nil cube", k, job.Label)
		}
		for _, r := range job.Cube.regions {
			name := job.qualified(r)
			if _, ok := rIdx[name]; !ok {
				rIdx[name] = len(regions)
				regions = append(regions, name)
			}
		}
		for _, a := range job.Cube.activities {
			if _, ok := aIdx[a]; !ok {
				aIdx[a] = len(activities)
				activities = append(activities, a)
			}
		}
		procs += job.Cube.procs
	}
	out, err := NewCube(regions, activities, procs)
	if err != nil {
		return nil, err
	}
	offset := 0
	programTime := 0.0
	for _, job := range jobs {
		c := job.Cube
		for i, r := range c.regions {
			fi := rIdx[job.qualified(r)]
			for j, a := range c.activities {
				fj := aIdx[a]
				for p, t := range c.times[i][j] {
					out.times[fi][fj][offset+p] += t
				}
			}
		}
		if t := c.ProgramTime(); t > programTime {
			programTime = t
		}
		offset += c.procs
	}
	out.invalidate() // times were written directly, not through Set/Add
	// Same convention as Log.Aggregate: record the wall clock only when
	// it exceeds the instrumented total (ProgramTime falls back to the
	// instrumented total otherwise). The longest job timeline is never
	// shorter than the federated instrumented total, which is the
	// procs-weighted mean of the per-job instrumented totals.
	if programTime > out.RegionsTotal() {
		if err := out.SetProgramTime(programTime); err != nil {
			return nil, err
		}
	}
	return out, nil
}
