package trace

import (
	"errors"
	"fmt"
)

// ErrShapeMismatch is returned when two cubes being combined have
// different dimensions or names.
var ErrShapeMismatch = errors.New("trace: cube shapes differ")

// sameShape verifies two cubes share dimensions and names.
func sameShape(a, b *Cube) error {
	if a == nil || b == nil {
		return errors.New("trace: nil cube")
	}
	if a.procs != b.procs || len(a.regions) != len(b.regions) || len(a.activities) != len(b.activities) {
		return fmt.Errorf("%w: %dx%dx%d vs %dx%dx%d", ErrShapeMismatch,
			len(a.regions), len(a.activities), a.procs,
			len(b.regions), len(b.activities), b.procs)
	}
	for i, r := range a.regions {
		if b.regions[i] != r {
			return fmt.Errorf("%w: region %d is %q vs %q", ErrShapeMismatch, i, r, b.regions[i])
		}
	}
	for j, act := range a.activities {
		if b.activities[j] != act {
			return fmt.Errorf("%w: activity %d is %q vs %q", ErrShapeMismatch, j, act, b.activities[j])
		}
	}
	return nil
}

// Merge returns a new cube with the cell-wise sum of the two cubes (e.g.
// folding repeated runs together). Program times add.
func Merge(a, b *Cube) (*Cube, error) {
	if err := sameShape(a, b); err != nil {
		return nil, err
	}
	out := a.Clone()
	for i := range out.times {
		for j := range out.times[i] {
			for p := range out.times[i][j] {
				out.times[i][j][p] += b.times[i][j][p]
			}
		}
	}
	out.invalidate() // times were written directly, not through Set/Add
	total := a.ProgramTime() + b.ProgramTime()
	if err := out.SetProgramTime(total); err != nil {
		return nil, err
	}
	return out, nil
}

// CellDelta is one entry of a cube comparison.
type CellDelta struct {
	// Region, Activity index the cell.
	Region, Activity int
	// Before and After are the cell wall clock times t_ij.
	Before, After float64
}

// Change returns After - Before.
func (d CellDelta) Change() float64 { return d.After - d.Before }

// RelChange returns the relative change, or 0 when Before is 0.
func (d CellDelta) RelChange() float64 {
	if d.Before == 0 {
		return 0
	}
	return (d.After - d.Before) / d.Before
}

// Diff compares two same-shaped cubes cell by cell (before vs after a
// tuning step, in the paper's repair/verification loop) and reports the
// per-cell wall clock changes plus the program-time change.
type Diff struct {
	// Cells holds one delta per (region, activity), region-major.
	Cells []CellDelta
	// ProgramBefore and ProgramAfter are the program wall clock times.
	ProgramBefore, ProgramAfter float64
}

// Speedup returns before/after program time; > 1 means the change helped.
func (d Diff) Speedup() float64 {
	if d.ProgramAfter == 0 {
		return 0
	}
	return d.ProgramBefore / d.ProgramAfter
}

// Compare builds the Diff of two cubes.
func Compare(before, after *Cube) (*Diff, error) {
	if err := sameShape(before, after); err != nil {
		return nil, err
	}
	d := &Diff{
		ProgramBefore: before.ProgramTime(),
		ProgramAfter:  after.ProgramTime(),
	}
	for i := range before.regions {
		for j := range before.activities {
			tb, err := before.CellTime(i, j)
			if err != nil {
				return nil, err
			}
			ta, err := after.CellTime(i, j)
			if err != nil {
				return nil, err
			}
			d.Cells = append(d.Cells, CellDelta{Region: i, Activity: j, Before: tb, After: ta})
		}
	}
	return d, nil
}

// MergeRegions returns a new cube in which the named groups of regions
// are combined into single regions (times added per activity and
// processor). Groups map the new region name to the member indices; the
// result contains the groups in the given order followed by ungrouped
// regions in cube order. Coarsening regions into phases lets the
// methodology run at a higher altitude (e.g. "solver" vs "I/O" instead
// of seven loops).
func (c *Cube) MergeRegions(order []string, groups map[string][]int) (*Cube, error) {
	if len(groups) == 0 {
		return nil, errors.New("trace: no groups to merge")
	}
	if len(order) != len(groups) {
		return nil, fmt.Errorf("trace: %d ordered names for %d groups", len(order), len(groups))
	}
	used := make([]bool, len(c.regions))
	var names []string
	var members [][]int
	for _, name := range order {
		group, ok := groups[name]
		if !ok {
			return nil, fmt.Errorf("trace: ordered name %q not in groups", name)
		}
		if len(group) == 0 {
			return nil, fmt.Errorf("trace: group %q is empty", name)
		}
		for _, i := range group {
			if i < 0 || i >= len(c.regions) {
				return nil, fmt.Errorf("%w: region %d of %d", ErrOutOfRange, i, len(c.regions))
			}
			if used[i] {
				return nil, fmt.Errorf("%w: region %d in two groups", ErrDuplicateName, i)
			}
			used[i] = true
		}
		names = append(names, name)
		members = append(members, group)
	}
	for i, u := range used {
		if !u {
			names = append(names, c.regions[i])
			members = append(members, []int{i})
		}
	}
	out, err := NewCube(names, c.activities, c.procs)
	if err != nil {
		return nil, err
	}
	for k, group := range members {
		for _, i := range group {
			for j := range c.activities {
				for p := 0; p < c.procs; p++ {
					out.times[k][j][p] += c.times[i][j][p]
				}
			}
		}
	}
	out.invalidate() // times were written directly, not through Set/Add
	if c.programTime > 0 {
		if err := out.SetProgramTime(c.programTime); err != nil {
			return nil, err
		}
	}
	return out, nil
}
