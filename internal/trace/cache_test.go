package trace

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// randomCube builds an n×k×p cube with pseudo-random times, leaving a few
// cells exactly zero so the marginals see both branches.
func randomCube(t *testing.T, rng *rand.Rand, n, k, p int) *Cube {
	t.Helper()
	regions := make([]string, n)
	for i := range regions {
		regions[i] = fmt.Sprintf("region-%d", i)
	}
	activities := make([]string, k)
	for j := range activities {
		activities[j] = fmt.Sprintf("activity-%d", j)
	}
	cube, err := NewCube(regions, activities, p)
	if err != nil {
		t.Fatalf("NewCube(%d, %d, %d): %v", n, k, p, err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			if rng.Float64() < 0.1 {
				continue // leave the cell all-zero
			}
			for q := 0; q < p; q++ {
				if err := cube.Set(i, j, q, rng.Float64()*10); err != nil {
					t.Fatalf("Set(%d, %d, %d): %v", i, j, q, err)
				}
			}
		}
	}
	return cube
}

// naiveMarginals recomputes every cached marginal directly from At, in the
// same summation orders the pre-cache accessors used.
type naiveMarginals struct {
	cellSum      [][]float64
	regionTime   []float64
	activityTime []float64
	procRegion   [][]float64
	procTotal    []float64
	regionsTotal float64
}

func naiveOf(t *testing.T, c *Cube) naiveMarginals {
	t.Helper()
	n, k, p := c.NumRegions(), c.NumActivities(), c.NumProcs()
	at := func(i, j, q int) float64 {
		v, err := c.At(i, j, q)
		if err != nil {
			t.Fatalf("At(%d, %d, %d): %v", i, j, q, err)
		}
		return v
	}
	m := naiveMarginals{
		cellSum:      make([][]float64, n),
		regionTime:   make([]float64, n),
		activityTime: make([]float64, k),
		procRegion:   make([][]float64, n),
		procTotal:    make([]float64, p),
	}
	for i := 0; i < n; i++ {
		m.cellSum[i] = make([]float64, k)
		m.procRegion[i] = make([]float64, p)
		for j := 0; j < k; j++ {
			for q := 0; q < p; q++ {
				m.cellSum[i][j] += at(i, j, q)
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			m.regionTime[i] += m.cellSum[i][j] / float64(p)
		}
	}
	for j := 0; j < k; j++ {
		for i := 0; i < n; i++ {
			m.activityTime[j] += m.cellSum[i][j] / float64(p)
		}
	}
	for i := 0; i < n; i++ {
		for q := 0; q < p; q++ {
			for j := 0; j < k; j++ {
				m.procRegion[i][q] += at(i, j, q)
			}
		}
	}
	for q := 0; q < p; q++ {
		for i := 0; i < n; i++ {
			for j := 0; j < k; j++ {
				m.procTotal[q] += at(i, j, q)
			}
		}
	}
	raw := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			for q := 0; q < p; q++ {
				raw += at(i, j, q)
			}
		}
	}
	m.regionsTotal = raw / float64(p)
	return m
}

func closeTo(got, want float64) bool {
	if got == want {
		return true
	}
	scale := math.Max(math.Abs(got), math.Abs(want))
	return math.Abs(got-want) <= 1e-12*math.Max(scale, 1)
}

// checkAgainstNaive compares every cached accessor of the cube with the
// naive recomputation.
func checkAgainstNaive(t *testing.T, c *Cube, m naiveMarginals) {
	t.Helper()
	n, k, p := c.NumRegions(), c.NumActivities(), c.NumProcs()
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			s, err := c.SumProcTimes(i, j)
			if err != nil {
				t.Fatalf("SumProcTimes(%d, %d): %v", i, j, err)
			}
			if !closeTo(s, m.cellSum[i][j]) {
				t.Errorf("SumProcTimes(%d, %d) = %g, naive %g", i, j, s, m.cellSum[i][j])
			}
			ct, err := c.CellTime(i, j)
			if err != nil {
				t.Fatalf("CellTime(%d, %d): %v", i, j, err)
			}
			if !closeTo(ct, m.cellSum[i][j]/float64(p)) {
				t.Errorf("CellTime(%d, %d) = %g, naive %g", i, j, ct, m.cellSum[i][j]/float64(p))
			}
		}
		rt, err := c.RegionTime(i)
		if err != nil {
			t.Fatalf("RegionTime(%d): %v", i, err)
		}
		if !closeTo(rt, m.regionTime[i]) {
			t.Errorf("RegionTime(%d) = %g, naive %g", i, rt, m.regionTime[i])
		}
		for q := 0; q < p; q++ {
			pr, err := c.ProcRegionTime(i, q)
			if err != nil {
				t.Fatalf("ProcRegionTime(%d, %d): %v", i, q, err)
			}
			if !closeTo(pr, m.procRegion[i][q]) {
				t.Errorf("ProcRegionTime(%d, %d) = %g, naive %g", i, q, pr, m.procRegion[i][q])
			}
		}
	}
	for j := 0; j < k; j++ {
		at, err := c.ActivityTime(j)
		if err != nil {
			t.Fatalf("ActivityTime(%d): %v", j, err)
		}
		if !closeTo(at, m.activityTime[j]) {
			t.Errorf("ActivityTime(%d) = %g, naive %g", j, at, m.activityTime[j])
		}
	}
	for q := 0; q < p; q++ {
		pt, err := c.ProcTotalTime(q)
		if err != nil {
			t.Fatalf("ProcTotalTime(%d): %v", q, err)
		}
		if !closeTo(pt, m.procTotal[q]) {
			t.Errorf("ProcTotalTime(%d) = %g, naive %g", q, pt, m.procTotal[q])
		}
	}
	if got := c.RegionsTotal(); !closeTo(got, m.regionsTotal) {
		t.Errorf("RegionsTotal() = %g, naive %g", got, m.regionsTotal)
	}
}

// TestMarginalCacheMatchesNaiveSums drives randomized cubes through every
// cached accessor and cross-checks against direct recomputation from the
// raw cells — cold cache, warm cache, and precomputed cache.
func TestMarginalCacheMatchesNaiveSums(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	shapes := []struct{ n, k, p int }{
		{1, 1, 1}, {2, 3, 4}, {7, 4, 16}, {13, 5, 33}, {32, 8, 64},
	}
	for _, sh := range shapes {
		t.Run(fmt.Sprintf("N%dxK%dxP%d", sh.n, sh.k, sh.p), func(t *testing.T) {
			cube := randomCube(t, rng, sh.n, sh.k, sh.p)
			naive := naiveOf(t, cube)
			checkAgainstNaive(t, cube, naive) // cold: first accessor fills the cache
			checkAgainstNaive(t, cube, naive) // warm: every read is cached
			cube.Precompute()
			checkAgainstNaive(t, cube, naive)
		})
	}
}

// TestMarginalCacheInvalidation warms the cache, mutates the cube through
// each write path, and verifies every accessor reflects the new contents.
func TestMarginalCacheInvalidation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cube := randomCube(t, rng, 5, 3, 8)
	checkAgainstNaive(t, cube, naiveOf(t, cube)) // warm the cache

	if err := cube.Set(2, 1, 3, 123.5); err != nil {
		t.Fatalf("Set: %v", err)
	}
	checkAgainstNaive(t, cube, naiveOf(t, cube))

	if err := cube.Add(4, 0, 7, 9.25); err != nil {
		t.Fatalf("Add: %v", err)
	}
	checkAgainstNaive(t, cube, naiveOf(t, cube))

	if err := cube.Scale(1.75); err != nil {
		t.Fatalf("Scale: %v", err)
	}
	checkAgainstNaive(t, cube, naiveOf(t, cube))

	// SetProgramTime must observe the post-mutation RegionsTotal and the
	// cached total must survive it unchanged.
	total := cube.RegionsTotal()
	if err := cube.SetProgramTime(total * 2); err != nil {
		t.Fatalf("SetProgramTime: %v", err)
	}
	if got := cube.ProgramTime(); got != total*2 {
		t.Fatalf("ProgramTime() = %g, want %g", got, total*2)
	}
	checkAgainstNaive(t, cube, naiveOf(t, cube))

	// Clearing the program time falls back to the cached instrumented
	// total again.
	if err := cube.SetProgramTime(0); err != nil {
		t.Fatalf("SetProgramTime(0): %v", err)
	}
	if got := cube.ProgramTime(); !closeTo(got, total) {
		t.Fatalf("ProgramTime() after reset = %g, want %g", got, total)
	}
}

// TestProcTimesIntoMatchesProcTimes checks the borrow-style accessor
// returns the same vector as the allocating one, reuses the destination's
// capacity, and hands out a copy that cannot alias the cube.
func TestProcTimesIntoMatchesProcTimes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cube := randomCube(t, rng, 4, 3, 16)
	scratch := make([]float64, 0, 16)
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			want, err := cube.ProcTimes(i, j)
			if err != nil {
				t.Fatalf("ProcTimes(%d, %d): %v", i, j, err)
			}
			got, err := cube.ProcTimesInto(i, j, scratch)
			if err != nil {
				t.Fatalf("ProcTimesInto(%d, %d): %v", i, j, err)
			}
			if len(got) != len(want) {
				t.Fatalf("ProcTimesInto(%d, %d) length %d, want %d", i, j, len(got), len(want))
			}
			for p := range want {
				if got[p] != want[p] {
					t.Errorf("ProcTimesInto(%d, %d)[%d] = %g, want %g", i, j, p, got[p], want[p])
				}
			}
			if cap(scratch) >= 16 && &got[0] != &scratch[:1][0] {
				t.Errorf("ProcTimesInto(%d, %d) did not reuse the scratch buffer", i, j)
			}
			scratch = got
		}
	}
	// Writing through the returned slice must not corrupt the cube.
	got, err := cube.ProcTimesInto(0, 0, scratch)
	if err != nil {
		t.Fatalf("ProcTimesInto(0, 0): %v", err)
	}
	before, _ := cube.At(0, 0, 0)
	got[0] = before + 1e9
	after, _ := cube.At(0, 0, 0)
	if before != after {
		t.Fatalf("writing through ProcTimesInto result changed the cube: %g -> %g", before, after)
	}
	if _, err := cube.ProcTimesInto(99, 0, nil); err == nil {
		t.Fatal("ProcTimesInto(99, 0) succeeded, want out-of-range error")
	}
}

// TestCountedNameAccessors pins the no-copy name accessors and the O(1)
// index lookups to the slice-copy accessors.
func TestCountedNameAccessors(t *testing.T) {
	cube, err := NewCube([]string{"a", "b", "c"}, []string{"x", "y"}, 2)
	if err != nil {
		t.Fatalf("NewCube: %v", err)
	}
	for i, name := range cube.Regions() {
		if got := cube.RegionName(i); got != name {
			t.Errorf("RegionName(%d) = %q, want %q", i, got, name)
		}
		if got := cube.RegionIndex(name); got != i {
			t.Errorf("RegionIndex(%q) = %d, want %d", name, got, i)
		}
	}
	for j, name := range cube.Activities() {
		if got := cube.ActivityName(j); got != name {
			t.Errorf("ActivityName(%d) = %q, want %q", j, got, name)
		}
		if got := cube.ActivityIndex(name); got != j {
			t.Errorf("ActivityIndex(%q) = %d, want %d", name, got, j)
		}
	}
	if got := cube.RegionIndex("missing"); got != -1 {
		t.Errorf("RegionIndex(missing) = %d, want -1", got)
	}
	if got := cube.ActivityIndex("missing"); got != -1 {
		t.Errorf("ActivityIndex(missing) = %d, want -1", got)
	}
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: out-of-range access did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("RegionName", func() { cube.RegionName(3) })
	mustPanic("ActivityName", func() { cube.ActivityName(2) })
}

// TestMarginalCacheConcurrentReads hammers cold-cache reads from many
// goroutines; run with -race this verifies the lock-free fill is sound.
func TestMarginalCacheConcurrentReads(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cube := randomCube(t, rng, 8, 4, 32)
	naive := naiveOf(t, cube)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for rep := 0; rep < 50; rep++ {
				for i := 0; i < 8; i++ {
					got, err := cube.RegionTime(i)
					if err != nil {
						done <- err
						return
					}
					if !closeTo(got, naive.regionTime[i]) {
						done <- fmt.Errorf("RegionTime(%d) = %g, naive %g", i, got, naive.regionTime[i])
						return
					}
				}
				if got := cube.RegionsTotal(); !closeTo(got, naive.regionsTotal) {
					done <- fmt.Errorf("RegionsTotal() = %g, naive %g", got, naive.regionsTotal)
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
