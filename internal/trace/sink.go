package trace

// A Sink consumes events as they are recorded, while the instrumented
// program is still running — the incremental counterpart of collecting a
// Log and aggregating it afterwards. Live monitoring (internal/monitor)
// implements Sink to fold events into a streaming cube.
//
// Producers may call Record from many goroutines concurrently (one per
// rank); implementations must be safe for concurrent use. Record must not
// block for long: it sits on the instrumented program's critical path.
type Sink interface {
	Record(Event)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Event)

// Record invokes the function.
func (f SinkFunc) Record(e Event) { f(e) }

// ShiftSink returns a sink that forwards every event to next with its
// interval translated by offset virtual seconds. Daemons that run a
// workload repeatedly use it to keep the global timeline advancing across
// runs (each run's clocks restart at zero).
func ShiftSink(next Sink, offset float64) Sink {
	if offset == 0 {
		return next
	}
	return SinkFunc(func(e Event) {
		e.Start += offset
		e.End += offset
		next.Record(e)
	})
}
