package trace

import "sync"

// A Sink consumes events as they are recorded, while the instrumented
// program is still running — the incremental counterpart of collecting a
// Log and aggregating it afterwards. Live monitoring (internal/monitor)
// implements Sink to fold events into a streaming cube.
//
// Producers may call Record from many goroutines concurrently (one per
// rank); implementations must be safe for concurrent use. Record must not
// block for long: it sits on the instrumented program's critical path.
type Sink interface {
	Record(Event)
}

// A BatchSink additionally accepts whole event batches in one call. High-
// rate producers (the network ingest path, replay tools) prefer it: a
// batched implementation pays its synchronization and counter costs once
// per batch instead of once per event. RecordBatch must be equivalent to
// calling Record on each event in order, must be safe for concurrent use,
// and must not retain the slice after returning (callers reuse batch
// buffers).
type BatchSink interface {
	Sink
	RecordBatch([]Event)
}

// RecordBatch delivers a batch to any sink: natively when the sink
// implements BatchSink, as a per-event loop otherwise. Call sites that
// hold batches should use this instead of looping themselves, so they
// transparently pick up the fast path.
func RecordBatch(s Sink, events []Event) {
	if bs, ok := s.(BatchSink); ok {
		bs.RecordBatch(events)
		return
	}
	for _, e := range events {
		s.Record(e)
	}
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Event)

// Record invokes the function.
func (f SinkFunc) Record(e Event) { f(e) }

// ShiftSink returns a sink that forwards every event to next with its
// interval translated by offset virtual seconds. Daemons that run a
// workload repeatedly use it to keep the global timeline advancing across
// runs (each run's clocks restart at zero). The returned sink forwards
// batches to a BatchSink next without per-event calls (the shifted copy
// lives in a pooled scratch buffer, so the steady state does not allocate).
func ShiftSink(next Sink, offset float64) Sink {
	if offset == 0 {
		return next
	}
	return &shiftSink{next: next, offset: offset}
}

type shiftSink struct {
	next   Sink
	offset float64
}

func (s *shiftSink) Record(e Event) {
	e.Start += s.offset
	e.End += s.offset
	s.next.Record(e)
}

// shiftScratch pools the translated-batch buffers of every shiftSink;
// RecordBatch must not mutate the caller's slice, so the shifted copy
// needs its own storage.
var shiftScratch = sync.Pool{New: func() any {
	s := make([]Event, 0, 1024)
	return &s
}}

func (s *shiftSink) RecordBatch(events []Event) {
	bs, ok := s.next.(BatchSink)
	if !ok {
		for _, e := range events {
			s.Record(e)
		}
		return
	}
	p := shiftScratch.Get().(*[]Event)
	buf := (*p)[:0]
	for len(events) > 0 {
		n := len(events)
		if max := cap(buf); n > max && max > 0 {
			n = max
		}
		buf = buf[:n]
		for i := 0; i < n; i++ {
			e := events[i]
			e.Start += s.offset
			e.End += s.offset
			buf[i] = e
		}
		bs.RecordBatch(buf)
		events = events[n:]
	}
	*p = buf[:0]
	shiftScratch.Put(p)
}
