// Package trace defines the measurement model of the load-imbalance
// methodology: the three-dimensional time cube t[i][j][p] holding the wall
// clock time spent by processor p in activity j of code region i, together
// with its marginals, plus an event-level trace representation that can be
// aggregated into a cube.
//
// The cube is the single data structure consumed by every analysis in
// internal/core: coarse-grain profiling, the processor / activity / code
// region views, clustering and pattern diagrams all read from it.
package trace

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
)

// Common cube errors.
var (
	// ErrNoRegions is returned when a cube is created without regions.
	ErrNoRegions = errors.New("trace: cube needs at least one region")
	// ErrNoActivities is returned when a cube is created without activities.
	ErrNoActivities = errors.New("trace: cube needs at least one activity")
	// ErrNoProcessors is returned when a cube is created without processors.
	ErrNoProcessors = errors.New("trace: cube needs at least one processor")
	// ErrDuplicateName is returned when region or activity names repeat.
	ErrDuplicateName = errors.New("trace: duplicate name")
	// ErrOutOfRange is returned when an index is outside the cube.
	ErrOutOfRange = errors.New("trace: index out of range")
	// ErrNegativeTime is returned when a wall-clock time is negative,
	// NaN or infinite.
	ErrNegativeTime = errors.New("trace: negative wall-clock time")
)

// badTime reports whether t is unusable as a wall-clock duration. The
// explicit NaN/Inf arm matters: `t < 0` alone is false for NaN, which
// would let a NaN poison every marginal and index derived from the cube.
func badTime(t float64) bool {
	return t < 0 || math.IsNaN(t) || math.IsInf(t, 0)
}

// Cube is the t_ijp measurement cube: wall clock times indexed by code
// region i, activity j and processor p. A Cube additionally records the
// wall clock time of the whole program, which may exceed the sum of the
// instrumented regions when parts of the program are not instrumented (as
// in the paper's CFD study, where the 7 measured loops account for ~93% of
// the program).
type Cube struct {
	regions    []string
	activities []string
	// rIdx and aIdx map names to cube indices; built at construction so
	// RegionIndex/ActivityIndex are O(1) in event folding and federation.
	rIdx, aIdx map[string]int
	procs      int
	// times[i][j][p]
	times [][][]float64
	// programTime is the wall clock time T of the whole program; zero
	// means "use the sum of the regions".
	programTime float64
	// marg caches every marginal sum of the cube. It is computed lazily on
	// the first marginal read, shared by concurrent readers through the
	// atomic pointer, and dropped by any mutation of the times (Set, Add,
	// Scale, in-package writers). Two goroutines racing on a cold cache may
	// both compute it; the results are identical, so either store wins.
	marg atomic.Pointer[marginals]
}

// marginals holds every marginal of the t_ijp cube in one structure, so
// each Analyze consumer reads precomputed sums instead of rescanning the
// cube. All sums are accumulated in exactly the iteration order the
// per-call accessors historically used, so cached reads are bit-identical
// to freshly computed ones (floating-point addition is order-sensitive).
type marginals struct {
	// cellSum[i][j] is sum_p t_ijp (aggregate processor-seconds of the cell).
	cellSum [][]float64
	// regionTime[i] is t_i = sum_j cellSum[i][j]/P.
	regionTime []float64
	// activityTime[j] is T_j = sum_i cellSum[i][j]/P.
	activityTime []float64
	// procRegion[i][p] is sum_j t_ijp.
	procRegion [][]float64
	// procTotal[p] is sum_i sum_j t_ijp.
	procTotal []float64
	// regionsTotal is (sum_ijp t_ijp)/P, the instrumented wall clock total.
	regionsTotal float64
}

// marginals returns the cached marginal sums, computing them on first use.
func (c *Cube) marginals() *marginals {
	if m := c.marg.Load(); m != nil {
		return m
	}
	m := c.computeMarginals()
	c.marg.Store(m)
	return m
}

// invalidate drops the cached marginals; every mutator of times calls it.
func (c *Cube) invalidate() { c.marg.Store(nil) }

// computeMarginals builds all marginal sums in a single pass over the
// cube, preserving the historical per-accessor summation orders: p inside
// j inside i. For fixed (i, j) the cell sum runs over ascending p; for
// fixed (i, p) the region-proc sum runs over ascending j; for fixed p the
// total runs over ascending (i, j); the raw grand total runs in (i, j, p)
// order and is divided by P only at the end, exactly as RegionsTotal did.
func (c *Cube) computeMarginals() *marginals {
	n, k, procs := len(c.regions), len(c.activities), c.procs
	m := &marginals{
		cellSum:      make([][]float64, n),
		regionTime:   make([]float64, n),
		activityTime: make([]float64, k),
		procRegion:   make([][]float64, n),
		procTotal:    make([]float64, procs),
	}
	cellFlat := make([]float64, n*k)
	procFlat := make([]float64, n*procs)
	raw := 0.0
	for i := 0; i < n; i++ {
		m.cellSum[i], cellFlat = cellFlat[:k:k], cellFlat[k:]
		m.procRegion[i], procFlat = procFlat[:procs:procs], procFlat[procs:]
		pr := m.procRegion[i]
		for j := 0; j < k; j++ {
			row := c.times[i][j]
			s := 0.0
			for p, t := range row {
				s += t
				pr[p] += t
				m.procTotal[p] += t
				raw += t
			}
			m.cellSum[i][j] = s
		}
	}
	fp := float64(procs)
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < k; j++ {
			s += m.cellSum[i][j] / fp
		}
		m.regionTime[i] = s
	}
	for j := 0; j < k; j++ {
		s := 0.0
		for i := 0; i < n; i++ {
			s += m.cellSum[i][j] / fp
		}
		m.activityTime[j] = s
	}
	m.regionsTotal = raw / fp
	return m
}

// Precompute forces the lazy marginal caches to be built now. Publishers
// of immutable cubes (monitor snapshots, federation merges) call it once
// at fold time so every subsequent reader gets O(1) marginal lookups
// without ever paying the build.
func (c *Cube) Precompute() { c.marginals() }

// NewCube creates a zero-filled cube with the given region names, activity
// names and processor count. Names must be unique within their dimension.
func NewCube(regions, activities []string, procs int) (*Cube, error) {
	if len(regions) == 0 {
		return nil, ErrNoRegions
	}
	if len(activities) == 0 {
		return nil, ErrNoActivities
	}
	if procs <= 0 {
		return nil, ErrNoProcessors
	}
	rIdx, err := indexNames("region", regions)
	if err != nil {
		return nil, err
	}
	aIdx, err := indexNames("activity", activities)
	if err != nil {
		return nil, err
	}
	c := &Cube{
		regions:    append([]string(nil), regions...),
		activities: append([]string(nil), activities...),
		rIdx:       rIdx,
		aIdx:       aIdx,
		procs:      procs,
	}
	c.times = make([][][]float64, len(regions))
	flat := make([]float64, len(regions)*len(activities)*procs)
	for i := range c.times {
		c.times[i] = make([][]float64, len(activities))
		for j := range c.times[i] {
			c.times[i][j], flat = flat[:procs:procs], flat[procs:]
		}
	}
	return c, nil
}

// indexNames builds the name -> index map of one dimension, rejecting
// duplicates in the same pass.
func indexNames(kind string, names []string) (map[string]int, error) {
	m := make(map[string]int, len(names))
	for i, n := range names {
		if _, dup := m[n]; dup {
			return nil, fmt.Errorf("%w: %s %q", ErrDuplicateName, kind, n)
		}
		m[n] = i
	}
	return m, nil
}

// Regions returns the region names in cube order.
func (c *Cube) Regions() []string { return append([]string(nil), c.regions...) }

// Activities returns the activity names in cube order.
func (c *Cube) Activities() []string { return append([]string(nil), c.activities...) }

// RegionName returns the name of region i without copying the name table;
// per-row loops should prefer it over indexing the Regions() copy. It
// panics when i is out of range, like a slice access.
func (c *Cube) RegionName(i int) string { return c.regions[i] }

// ActivityName returns the name of activity j without copying the name
// table. It panics when j is out of range, like a slice access.
func (c *Cube) ActivityName(j int) string { return c.activities[j] }

// NumRegions returns N, the number of code regions.
func (c *Cube) NumRegions() int { return len(c.regions) }

// NumActivities returns K, the number of activities.
func (c *Cube) NumActivities() int { return len(c.activities) }

// NumProcs returns P, the number of processors.
func (c *Cube) NumProcs() int { return c.procs }

// RegionIndex returns the index of the named region, or -1. The lookup is
// a map hit, not a scan: event folding and the federate merge resolve
// names per event/cell.
func (c *Cube) RegionIndex(name string) int {
	if i, ok := c.rIdx[name]; ok {
		return i
	}
	return -1
}

// ActivityIndex returns the index of the named activity, or -1.
func (c *Cube) ActivityIndex(name string) int {
	if j, ok := c.aIdx[name]; ok {
		return j
	}
	return -1
}

func (c *Cube) check(i, j, p int) error {
	if i < 0 || i >= len(c.regions) {
		return fmt.Errorf("%w: region %d of %d", ErrOutOfRange, i, len(c.regions))
	}
	if j < 0 || j >= len(c.activities) {
		return fmt.Errorf("%w: activity %d of %d", ErrOutOfRange, j, len(c.activities))
	}
	if p < 0 || p >= c.procs {
		return fmt.Errorf("%w: processor %d of %d", ErrOutOfRange, p, c.procs)
	}
	return nil
}

// Set stores t_ijp. The time must be nonnegative.
func (c *Cube) Set(i, j, p int, t float64) error {
	if err := c.check(i, j, p); err != nil {
		return err
	}
	if badTime(t) {
		return fmt.Errorf("%w: %g at (%d, %d, %d)", ErrNegativeTime, t, i, j, p)
	}
	c.times[i][j][p] = t
	c.invalidate()
	return nil
}

// Add accumulates t onto t_ijp; instrumentation uses this to fold repeated
// executions of a region into the cube.
func (c *Cube) Add(i, j, p int, t float64) error {
	if err := c.check(i, j, p); err != nil {
		return err
	}
	if badTime(t) {
		return fmt.Errorf("%w: %g at (%d, %d, %d)", ErrNegativeTime, t, i, j, p)
	}
	c.times[i][j][p] += t
	c.invalidate()
	return nil
}

// At returns t_ijp.
func (c *Cube) At(i, j, p int) (float64, error) {
	if err := c.check(i, j, p); err != nil {
		return 0, err
	}
	return c.times[i][j][p], nil
}

// ProcTimes returns a copy of the P-vector t_ij* for region i and activity
// j: the times spent by each processor in that activity of that region.
func (c *Cube) ProcTimes(i, j int) ([]float64, error) {
	if err := c.check(i, j, 0); err != nil {
		return nil, err
	}
	return append([]float64(nil), c.times[i][j]...), nil
}

// ProcTimesInto copies the P-vector t_ij* into dst, reusing its capacity,
// and returns the resulting slice of length P. It is the borrow-style,
// allocation-free counterpart of ProcTimes for hot loops that sweep the
// cube with a per-worker scratch buffer.
func (c *Cube) ProcTimesInto(i, j int, dst []float64) ([]float64, error) {
	if err := c.check(i, j, 0); err != nil {
		return nil, err
	}
	return append(dst[:0], c.times[i][j]...), nil
}

// SumProcTimes returns the sum over processors of t_ijp for region i and
// activity j (aggregate processor-seconds in the cell).
func (c *Cube) SumProcTimes(i, j int) (float64, error) {
	if err := c.check(i, j, 0); err != nil {
		return 0, err
	}
	return c.marginals().cellSum[i][j], nil
}

// CellTime returns t_ij, the wall clock time of activity j in region i. The
// processors execute a region concurrently, so the region's wall clock time
// is on the scale of one processor's timeline, not the sum of all of them:
// t_ij is the mean over processors of t_ijp. (The paper's published Table 1
// follows this convention — the per-loop times are commensurate with the
// per-processor wall clock times quoted in Section 4.)
func (c *Cube) CellTime(i, j int) (float64, error) {
	s, err := c.SumProcTimes(i, j)
	if err != nil {
		return 0, err
	}
	return s / float64(c.procs), nil
}

// RegionTime returns t_i, the wall clock time of region i: the sum over
// activities of the cell times.
func (c *Cube) RegionTime(i int) (float64, error) {
	if i < 0 || i >= len(c.regions) {
		return 0, fmt.Errorf("%w: region %d of %d", ErrOutOfRange, i, len(c.regions))
	}
	return c.marginals().regionTime[i], nil
}

// ActivityTime returns T_j, the wall clock time of activity j: the sum over
// regions of the cell times.
func (c *Cube) ActivityTime(j int) (float64, error) {
	if j < 0 || j >= len(c.activities) {
		return 0, fmt.Errorf("%w: activity %d of %d", ErrOutOfRange, j, len(c.activities))
	}
	return c.marginals().activityTime[j], nil
}

// ProcRegionTime returns the time spent by processor p across all
// activities of region i: sum_j t_ijp. The processor view standardizes over
// this sum.
func (c *Cube) ProcRegionTime(i, p int) (float64, error) {
	if err := c.check(i, 0, p); err != nil {
		return 0, err
	}
	return c.marginals().procRegion[i][p], nil
}

// ProcTotalTime returns the total instrumented time of processor p across
// all regions and activities.
func (c *Cube) ProcTotalTime(p int) (float64, error) {
	if err := c.check(0, 0, p); err != nil {
		return 0, err
	}
	return c.marginals().procTotal[p], nil
}

// RegionsTotal returns the sum of the region wall clock times (the
// instrumented part of the program, in wall-clock scale).
func (c *Cube) RegionsTotal() float64 {
	return c.marginals().regionsTotal
}

// SetProgramTime records the wall clock time T of the whole program. The
// scaled indices SID divide by T, so a program with uninstrumented parts
// should set it explicitly; passing 0 reverts to the sum of the regions. It
// rejects negative values and values smaller than the instrumented total.
func (c *Cube) SetProgramTime(t float64) error {
	if badTime(t) {
		return fmt.Errorf("%w: program time %g", ErrNegativeTime, t)
	}
	if t != 0 {
		if total := c.RegionsTotal(); t < total-1e-9 {
			return fmt.Errorf("trace: program time %g smaller than instrumented total %g", t, total)
		}
	}
	c.programTime = t
	return nil
}

// ProgramTime returns the wall clock time T of the whole program: the value
// recorded with SetProgramTime, or the sum of the regions when none was
// recorded.
func (c *Cube) ProgramTime() float64 {
	if c.programTime > 0 {
		return c.programTime
	}
	return c.RegionsTotal()
}

// HasActivity reports whether activity j is performed at all within region
// i, i.e. t_ij > 0. Absent activities show as "-" in the paper's tables and
// have undefined dispersion indices.
func (c *Cube) HasActivity(i, j int) (bool, error) {
	t, err := c.CellTime(i, j)
	if err != nil {
		return false, err
	}
	return t > 0, nil
}

// Clone returns a deep copy of the cube.
func (c *Cube) Clone() *Cube {
	out, err := NewCube(c.regions, c.activities, c.procs)
	if err != nil {
		// The receiver was validated at construction; reconstructing
		// from its own fields cannot fail.
		panic(fmt.Sprintf("trace: cloning valid cube failed: %v", err))
	}
	for i := range c.times {
		for j := range c.times[i] {
			copy(out.times[i][j], c.times[i][j])
		}
	}
	out.programTime = c.programTime
	return out
}

// EqualWithin reports whether two cubes have identical shape and names and
// all times (including the program time) within tol of each other.
func (c *Cube) EqualWithin(other *Cube, tol float64) bool {
	if other == nil || c.procs != other.procs ||
		len(c.regions) != len(other.regions) ||
		len(c.activities) != len(other.activities) {
		return false
	}
	for i, r := range c.regions {
		if other.regions[i] != r {
			return false
		}
	}
	for j, a := range c.activities {
		if other.activities[j] != a {
			return false
		}
	}
	if math.Abs(c.ProgramTime()-other.ProgramTime()) > tol {
		return false
	}
	for i := range c.times {
		for j := range c.times[i] {
			for p := range c.times[i][j] {
				if math.Abs(c.times[i][j][p]-other.times[i][j][p]) > tol {
					return false
				}
			}
		}
	}
	return true
}

// Scale multiplies every time in the cube (and the recorded program time)
// by factor, which must be positive. Standardized analyses are invariant
// under Scale; tests rely on this.
func (c *Cube) Scale(factor float64) error {
	if factor <= 0 {
		return fmt.Errorf("trace: scale factor %g must be positive", factor)
	}
	for i := range c.times {
		for j := range c.times[i] {
			for p := range c.times[i][j] {
				c.times[i][j][p] *= factor
			}
		}
	}
	c.programTime *= factor
	c.invalidate()
	return nil
}

// SubCube returns a new cube restricted to the given region indices (in
// the given order). The program time carries over unchanged, so shares
// computed on the sub-cube remain relative to the whole program.
func (c *Cube) SubCube(regions []int) (*Cube, error) {
	if len(regions) == 0 {
		return nil, ErrNoRegions
	}
	names := make([]string, len(regions))
	for k, i := range regions {
		if i < 0 || i >= len(c.regions) {
			return nil, fmt.Errorf("%w: region %d of %d", ErrOutOfRange, i, len(c.regions))
		}
		names[k] = c.regions[i]
	}
	out, err := NewCube(names, c.activities, c.procs)
	if err != nil {
		return nil, err
	}
	for k, i := range regions {
		for j := range c.activities {
			copy(out.times[k][j], c.times[i][j])
		}
	}
	if c.programTime > 0 {
		if err := out.SetProgramTime(c.programTime); err != nil {
			return nil, err
		}
	}
	return out, nil
}
