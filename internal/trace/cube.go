// Package trace defines the measurement model of the load-imbalance
// methodology: the three-dimensional time cube t[i][j][p] holding the wall
// clock time spent by processor p in activity j of code region i, together
// with its marginals, plus an event-level trace representation that can be
// aggregated into a cube.
//
// The cube is the single data structure consumed by every analysis in
// internal/core: coarse-grain profiling, the processor / activity / code
// region views, clustering and pattern diagrams all read from it.
package trace

import (
	"errors"
	"fmt"
	"math"
)

// Common cube errors.
var (
	// ErrNoRegions is returned when a cube is created without regions.
	ErrNoRegions = errors.New("trace: cube needs at least one region")
	// ErrNoActivities is returned when a cube is created without activities.
	ErrNoActivities = errors.New("trace: cube needs at least one activity")
	// ErrNoProcessors is returned when a cube is created without processors.
	ErrNoProcessors = errors.New("trace: cube needs at least one processor")
	// ErrDuplicateName is returned when region or activity names repeat.
	ErrDuplicateName = errors.New("trace: duplicate name")
	// ErrOutOfRange is returned when an index is outside the cube.
	ErrOutOfRange = errors.New("trace: index out of range")
	// ErrNegativeTime is returned when a wall-clock time is negative.
	ErrNegativeTime = errors.New("trace: negative wall-clock time")
)

// Cube is the t_ijp measurement cube: wall clock times indexed by code
// region i, activity j and processor p. A Cube additionally records the
// wall clock time of the whole program, which may exceed the sum of the
// instrumented regions when parts of the program are not instrumented (as
// in the paper's CFD study, where the 7 measured loops account for ~93% of
// the program).
type Cube struct {
	regions    []string
	activities []string
	procs      int
	// times[i][j][p]
	times [][][]float64
	// programTime is the wall clock time T of the whole program; zero
	// means "use the sum of the regions".
	programTime float64
}

// NewCube creates a zero-filled cube with the given region names, activity
// names and processor count. Names must be unique within their dimension.
func NewCube(regions, activities []string, procs int) (*Cube, error) {
	if len(regions) == 0 {
		return nil, ErrNoRegions
	}
	if len(activities) == 0 {
		return nil, ErrNoActivities
	}
	if procs <= 0 {
		return nil, ErrNoProcessors
	}
	if err := checkUnique("region", regions); err != nil {
		return nil, err
	}
	if err := checkUnique("activity", activities); err != nil {
		return nil, err
	}
	c := &Cube{
		regions:    append([]string(nil), regions...),
		activities: append([]string(nil), activities...),
		procs:      procs,
	}
	c.times = make([][][]float64, len(regions))
	flat := make([]float64, len(regions)*len(activities)*procs)
	for i := range c.times {
		c.times[i] = make([][]float64, len(activities))
		for j := range c.times[i] {
			c.times[i][j], flat = flat[:procs:procs], flat[procs:]
		}
	}
	return c, nil
}

func checkUnique(kind string, names []string) error {
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		if seen[n] {
			return fmt.Errorf("%w: %s %q", ErrDuplicateName, kind, n)
		}
		seen[n] = true
	}
	return nil
}

// Regions returns the region names in cube order.
func (c *Cube) Regions() []string { return append([]string(nil), c.regions...) }

// Activities returns the activity names in cube order.
func (c *Cube) Activities() []string { return append([]string(nil), c.activities...) }

// NumRegions returns N, the number of code regions.
func (c *Cube) NumRegions() int { return len(c.regions) }

// NumActivities returns K, the number of activities.
func (c *Cube) NumActivities() int { return len(c.activities) }

// NumProcs returns P, the number of processors.
func (c *Cube) NumProcs() int { return c.procs }

// RegionIndex returns the index of the named region, or -1.
func (c *Cube) RegionIndex(name string) int { return indexOf(c.regions, name) }

// ActivityIndex returns the index of the named activity, or -1.
func (c *Cube) ActivityIndex(name string) int { return indexOf(c.activities, name) }

func indexOf(names []string, name string) int {
	for i, n := range names {
		if n == name {
			return i
		}
	}
	return -1
}

func (c *Cube) check(i, j, p int) error {
	if i < 0 || i >= len(c.regions) {
		return fmt.Errorf("%w: region %d of %d", ErrOutOfRange, i, len(c.regions))
	}
	if j < 0 || j >= len(c.activities) {
		return fmt.Errorf("%w: activity %d of %d", ErrOutOfRange, j, len(c.activities))
	}
	if p < 0 || p >= c.procs {
		return fmt.Errorf("%w: processor %d of %d", ErrOutOfRange, p, c.procs)
	}
	return nil
}

// Set stores t_ijp. The time must be nonnegative.
func (c *Cube) Set(i, j, p int, t float64) error {
	if err := c.check(i, j, p); err != nil {
		return err
	}
	if t < 0 {
		return fmt.Errorf("%w: %g at (%d, %d, %d)", ErrNegativeTime, t, i, j, p)
	}
	c.times[i][j][p] = t
	return nil
}

// Add accumulates t onto t_ijp; instrumentation uses this to fold repeated
// executions of a region into the cube.
func (c *Cube) Add(i, j, p int, t float64) error {
	if err := c.check(i, j, p); err != nil {
		return err
	}
	if t < 0 {
		return fmt.Errorf("%w: %g at (%d, %d, %d)", ErrNegativeTime, t, i, j, p)
	}
	c.times[i][j][p] += t
	return nil
}

// At returns t_ijp.
func (c *Cube) At(i, j, p int) (float64, error) {
	if err := c.check(i, j, p); err != nil {
		return 0, err
	}
	return c.times[i][j][p], nil
}

// ProcTimes returns a copy of the P-vector t_ij* for region i and activity
// j: the times spent by each processor in that activity of that region.
func (c *Cube) ProcTimes(i, j int) ([]float64, error) {
	if err := c.check(i, j, 0); err != nil {
		return nil, err
	}
	return append([]float64(nil), c.times[i][j]...), nil
}

// SumProcTimes returns the sum over processors of t_ijp for region i and
// activity j (aggregate processor-seconds in the cell).
func (c *Cube) SumProcTimes(i, j int) (float64, error) {
	if err := c.check(i, j, 0); err != nil {
		return 0, err
	}
	s := 0.0
	for _, t := range c.times[i][j] {
		s += t
	}
	return s, nil
}

// CellTime returns t_ij, the wall clock time of activity j in region i. The
// processors execute a region concurrently, so the region's wall clock time
// is on the scale of one processor's timeline, not the sum of all of them:
// t_ij is the mean over processors of t_ijp. (The paper's published Table 1
// follows this convention — the per-loop times are commensurate with the
// per-processor wall clock times quoted in Section 4.)
func (c *Cube) CellTime(i, j int) (float64, error) {
	s, err := c.SumProcTimes(i, j)
	if err != nil {
		return 0, err
	}
	return s / float64(c.procs), nil
}

// RegionTime returns t_i, the wall clock time of region i: the sum over
// activities of the cell times.
func (c *Cube) RegionTime(i int) (float64, error) {
	if i < 0 || i >= len(c.regions) {
		return 0, fmt.Errorf("%w: region %d of %d", ErrOutOfRange, i, len(c.regions))
	}
	s := 0.0
	for j := range c.activities {
		t, err := c.CellTime(i, j)
		if err != nil {
			return 0, err
		}
		s += t
	}
	return s, nil
}

// ActivityTime returns T_j, the wall clock time of activity j: the sum over
// regions of the cell times.
func (c *Cube) ActivityTime(j int) (float64, error) {
	if j < 0 || j >= len(c.activities) {
		return 0, fmt.Errorf("%w: activity %d of %d", ErrOutOfRange, j, len(c.activities))
	}
	s := 0.0
	for i := range c.regions {
		t, err := c.CellTime(i, j)
		if err != nil {
			return 0, err
		}
		s += t
	}
	return s, nil
}

// ProcRegionTime returns the time spent by processor p across all
// activities of region i: sum_j t_ijp. The processor view standardizes over
// this sum.
func (c *Cube) ProcRegionTime(i, p int) (float64, error) {
	if err := c.check(i, 0, p); err != nil {
		return 0, err
	}
	s := 0.0
	for j := range c.activities {
		s += c.times[i][j][p]
	}
	return s, nil
}

// ProcTotalTime returns the total instrumented time of processor p across
// all regions and activities.
func (c *Cube) ProcTotalTime(p int) (float64, error) {
	if err := c.check(0, 0, p); err != nil {
		return 0, err
	}
	s := 0.0
	for i := range c.regions {
		for j := range c.activities {
			s += c.times[i][j][p]
		}
	}
	return s, nil
}

// RegionsTotal returns the sum of the region wall clock times (the
// instrumented part of the program, in wall-clock scale).
func (c *Cube) RegionsTotal() float64 {
	s := 0.0
	for i := range c.regions {
		for j := range c.activities {
			for _, t := range c.times[i][j] {
				s += t
			}
		}
	}
	return s / float64(c.procs)
}

// SetProgramTime records the wall clock time T of the whole program. The
// scaled indices SID divide by T, so a program with uninstrumented parts
// should set it explicitly; passing 0 reverts to the sum of the regions. It
// rejects negative values and values smaller than the instrumented total.
func (c *Cube) SetProgramTime(t float64) error {
	if t < 0 {
		return fmt.Errorf("%w: program time %g", ErrNegativeTime, t)
	}
	if t != 0 && t < c.RegionsTotal()-1e-9 {
		return fmt.Errorf("trace: program time %g smaller than instrumented total %g", t, c.RegionsTotal())
	}
	c.programTime = t
	return nil
}

// ProgramTime returns the wall clock time T of the whole program: the value
// recorded with SetProgramTime, or the sum of the regions when none was
// recorded.
func (c *Cube) ProgramTime() float64 {
	if c.programTime > 0 {
		return c.programTime
	}
	return c.RegionsTotal()
}

// HasActivity reports whether activity j is performed at all within region
// i, i.e. t_ij > 0. Absent activities show as "-" in the paper's tables and
// have undefined dispersion indices.
func (c *Cube) HasActivity(i, j int) (bool, error) {
	t, err := c.CellTime(i, j)
	if err != nil {
		return false, err
	}
	return t > 0, nil
}

// Clone returns a deep copy of the cube.
func (c *Cube) Clone() *Cube {
	out, err := NewCube(c.regions, c.activities, c.procs)
	if err != nil {
		// The receiver was validated at construction; reconstructing
		// from its own fields cannot fail.
		panic(fmt.Sprintf("trace: cloning valid cube failed: %v", err))
	}
	for i := range c.times {
		for j := range c.times[i] {
			copy(out.times[i][j], c.times[i][j])
		}
	}
	out.programTime = c.programTime
	return out
}

// EqualWithin reports whether two cubes have identical shape and names and
// all times (including the program time) within tol of each other.
func (c *Cube) EqualWithin(other *Cube, tol float64) bool {
	if other == nil || c.procs != other.procs ||
		len(c.regions) != len(other.regions) ||
		len(c.activities) != len(other.activities) {
		return false
	}
	for i, r := range c.regions {
		if other.regions[i] != r {
			return false
		}
	}
	for j, a := range c.activities {
		if other.activities[j] != a {
			return false
		}
	}
	if math.Abs(c.ProgramTime()-other.ProgramTime()) > tol {
		return false
	}
	for i := range c.times {
		for j := range c.times[i] {
			for p := range c.times[i][j] {
				if math.Abs(c.times[i][j][p]-other.times[i][j][p]) > tol {
					return false
				}
			}
		}
	}
	return true
}

// Scale multiplies every time in the cube (and the recorded program time)
// by factor, which must be positive. Standardized analyses are invariant
// under Scale; tests rely on this.
func (c *Cube) Scale(factor float64) error {
	if factor <= 0 {
		return fmt.Errorf("trace: scale factor %g must be positive", factor)
	}
	for i := range c.times {
		for j := range c.times[i] {
			for p := range c.times[i][j] {
				c.times[i][j][p] *= factor
			}
		}
	}
	c.programTime *= factor
	return nil
}

// SubCube returns a new cube restricted to the given region indices (in
// the given order). The program time carries over unchanged, so shares
// computed on the sub-cube remain relative to the whole program.
func (c *Cube) SubCube(regions []int) (*Cube, error) {
	if len(regions) == 0 {
		return nil, ErrNoRegions
	}
	names := make([]string, len(regions))
	for k, i := range regions {
		if i < 0 || i >= len(c.regions) {
			return nil, fmt.Errorf("%w: region %d of %d", ErrOutOfRange, i, len(c.regions))
		}
		names[k] = c.regions[i]
	}
	out, err := NewCube(names, c.activities, c.procs)
	if err != nil {
		return nil, err
	}
	for k, i := range regions {
		for j := range c.activities {
			copy(out.times[k][j], c.times[i][j])
		}
	}
	if c.programTime > 0 {
		if err := out.SetProgramTime(c.programTime); err != nil {
			return nil, err
		}
	}
	return out, nil
}
