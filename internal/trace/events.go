package trace

import (
	"fmt"
	"sort"
)

// An Event is one timed interval recorded during execution: processor Rank
// spent [Start, End) seconds of virtual time in the given activity of the
// given code region. Events are what instrumented runs (internal/mpi)
// produce; Aggregate folds them into a Cube for analysis.
type Event struct {
	Rank     int
	Region   string
	Activity string
	Start    float64
	End      float64
}

// Duration returns the length of the event interval.
func (e Event) Duration() float64 { return e.End - e.Start }

// Validate checks that the event is well formed.
func (e Event) Validate() error {
	if e.Rank < 0 {
		return fmt.Errorf("trace: event rank %d negative", e.Rank)
	}
	if e.Region == "" {
		return fmt.Errorf("trace: event with empty region")
	}
	if e.Activity == "" {
		return fmt.Errorf("trace: event with empty activity")
	}
	if e.End < e.Start {
		return fmt.Errorf("trace: event ends at %g before start %g", e.End, e.Start)
	}
	return nil
}

// Log is an append-only collection of events from one program run.
type Log struct {
	events []Event
}

// Append adds an event after validating it.
func (l *Log) Append(e Event) error {
	if err := e.Validate(); err != nil {
		return err
	}
	l.events = append(l.events, e)
	return nil
}

// Len returns the number of recorded events.
func (l *Log) Len() int { return len(l.events) }

// Events returns a copy of the recorded events. External callers get a
// slice they may mutate freely; hot internal consumers that only read
// should use Each or EventsInto instead, which skip the per-call copy.
func (l *Log) Events() []Event { return append([]Event(nil), l.events...) }

// Each calls fn for every recorded event in log order without copying
// the backing slice. fn must not append to the log.
func (l *Log) Each(fn func(Event)) {
	for _, e := range l.events {
		fn(e)
	}
}

// EventsInto appends the recorded events to dst and returns the result,
// reusing dst's capacity. Callers that repeatedly materialize the events
// (renderers, repeated folds) amortize one buffer instead of paying a
// fresh copy per Events call.
func (l *Log) EventsInto(dst []Event) []Event {
	return append(dst, l.events...)
}

// Ranks returns the number of distinct ranks that appear in the log,
// computed as 1 + the maximum rank (ranks are assumed dense from zero).
func (l *Log) Ranks() int {
	maxRank := -1
	for _, e := range l.events {
		if e.Rank > maxRank {
			maxRank = e.Rank
		}
	}
	return maxRank + 1
}

// Span returns the virtual-time extent of the log: the maximum End over
// all events (0 for an empty log). This approximates the program wall
// clock time of a run that starts at virtual time zero.
func (l *Log) Span() float64 {
	span := 0.0
	for _, e := range l.events {
		if e.End > span {
			span = e.End
		}
	}
	return span
}

// Aggregate folds the log into a Cube. Region and activity dimensions are
// the union of names appearing in the log, in order of first appearance
// unless explicit orders are supplied (names listed there come first, in
// the given order; unknown listed names are ignored if unused... they are
// kept so table layouts stay stable even when an activity never occurs).
// The cube's program time is set to the log's span.
func (l *Log) Aggregate(regionOrder, activityOrder []string) (*Cube, error) {
	return l.AggregateProcs(regionOrder, activityOrder, 0)
}

// AggregateProcs is Aggregate with an explicit minimum processor count:
// the cube gets max(procs, Ranks()) processors, so a slice of a larger
// run (a temporal phase, say) keeps the full rank space and processors
// idle for the whole slice count as zeros — an idle processor is the
// imbalance, not missing data. procs 0 behaves exactly like Aggregate.
func (l *Log) AggregateProcs(regionOrder, activityOrder []string, procs int) (*Cube, error) {
	if len(l.events) == 0 {
		return nil, fmt.Errorf("trace: cannot aggregate empty log")
	}
	if r := l.Ranks(); r > procs {
		procs = r
	}
	regions := orderedNames(regionOrder, l.events, func(e Event) string { return e.Region })
	activities := orderedNames(activityOrder, l.events, func(e Event) string { return e.Activity })
	cube, err := NewCube(regions, activities, procs)
	if err != nil {
		return nil, err
	}
	ri := indexMap(regions)
	ai := indexMap(activities)
	for _, e := range l.events {
		if err := cube.Add(ri[e.Region], ai[e.Activity], e.Rank, e.Duration()); err != nil {
			return nil, err
		}
	}
	// Program time is the longest rank timeline: ranks run concurrently,
	// so the program's wall clock is the maximum event end time.
	if span := l.Span(); span > cube.RegionsTotal() {
		if err := cube.SetProgramTime(span); err != nil {
			return nil, err
		}
	}
	return cube, nil
}

func orderedNames(order []string, events []Event, key func(Event) string) []string {
	var names []string
	seen := make(map[string]bool)
	for _, n := range order {
		if !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	for _, e := range events {
		n := key(e)
		if !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	return names
}

func indexMap(names []string) map[string]int {
	m := make(map[string]int, len(names))
	for i, n := range names {
		m[n] = i
	}
	return m
}

// SortByStart orders events by start time, breaking ties by rank then
// region; renderers and the tracefile writer use it for stable output.
func (l *Log) SortByStart() {
	sort.SliceStable(l.events, func(a, b int) bool {
		ea, eb := l.events[a], l.events[b]
		if ea.Start != eb.Start {
			return ea.Start < eb.Start
		}
		if ea.Rank != eb.Rank {
			return ea.Rank < eb.Rank
		}
		return ea.Region < eb.Region
	})
}

// Durations returns the durations of every event of the given activity,
// across all ranks and regions, in log order. Workload characterization
// (internal/fit) consumes these to model the activity's burst lengths.
func (l *Log) Durations(activity string) []float64 {
	var out []float64
	for _, e := range l.events {
		if e.Activity == activity {
			out = append(out, e.Duration())
		}
	}
	return out
}

// RegionDurations returns the durations of the events of one activity
// within one region.
func (l *Log) RegionDurations(region, activity string) []float64 {
	var out []float64
	for _, e := range l.events {
		if e.Region == region && e.Activity == activity {
			out = append(out, e.Duration())
		}
	}
	return out
}

// Window returns a new log containing the portions of events overlapping
// [from, to): events are clipped to the window. Per-phase analysis slices
// a run's log into iteration windows and aggregates each into its own
// cube.
func (l *Log) Window(from, to float64) (*Log, error) {
	if to <= from {
		return nil, fmt.Errorf("trace: window [%g, %g) is empty", from, to)
	}
	var out Log
	for _, e := range l.events {
		if e.End <= from || e.Start >= to {
			continue
		}
		clipped := e
		if clipped.Start < from {
			clipped.Start = from
		}
		if clipped.End > to {
			clipped.End = to
		}
		if err := out.Append(clipped); err != nil {
			return nil, err
		}
	}
	return &out, nil
}
