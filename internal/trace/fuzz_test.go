package trace

import (
	"math"
	"testing"
)

// FuzzMarginalCache drives a cube through a fuzzer-chosen interleaving of
// writes (Set, Add, Scale, SetProgramTime) and cached-marginal reads. The
// invariant is that after any prefix of operations every cached accessor
// equals a shadow recomputation from the raw cells — the cache may never
// serve a stale or torn marginal, whatever the write/read interleaving.
func FuzzMarginalCache(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{0x40, 1, 8, 0x80, 0, 0, 0xC0, 2, 15})
	f.Add([]byte("interleave writes with cached reads"))
	f.Fuzz(func(t *testing.T, data []byte) {
		const n, k, p = 3, 2, 4
		cube, err := NewCube([]string{"ra", "rb", "rc"}, []string{"x", "y"}, p)
		if err != nil {
			t.Fatal(err)
		}
		// shadow mirrors the raw cells; the oracle marginals are recomputed
		// from it after every operation.
		var shadow [n][k][p]float64

		check := func() {
			for i := 0; i < n; i++ {
				for j := 0; j < k; j++ {
					want := 0.0
					for q := 0; q < p; q++ {
						want += shadow[i][j][q]
					}
					got, err := cube.SumProcTimes(i, j)
					if err != nil {
						t.Fatal(err)
					}
					if math.Abs(got-want) > 1e-9*math.Max(want, 1) {
						t.Fatalf("SumProcTimes(%d, %d) = %g, shadow %g", i, j, got, want)
					}
				}
			}
			want := 0.0
			for i := 0; i < n; i++ {
				for j := 0; j < k; j++ {
					for q := 0; q < p; q++ {
						want += shadow[i][j][q]
					}
				}
			}
			want /= p
			if got := cube.RegionsTotal(); math.Abs(got-want) > 1e-9*math.Max(want, 1) {
				t.Fatalf("RegionsTotal() = %g, shadow %g", got, want)
			}
		}

		for x := 0; x+2 < len(data); x += 3 {
			op := int(data[x] >> 6)
			i := int(data[x]) % n
			j := int(data[x+1]) % k
			q := int(data[x+1]>>4) % p
			v := float64(data[x+2]) / 8
			switch op {
			case 0:
				if err := cube.Set(i, j, q, v); err != nil {
					t.Fatal(err)
				}
				shadow[i][j][q] = v
			case 1:
				if err := cube.Add(i, j, q, v); err != nil {
					t.Fatal(err)
				}
				shadow[i][j][q] += v
			case 2:
				factor := 1 + v/32
				if err := cube.Scale(factor); err != nil {
					t.Fatal(err)
				}
				for a := range shadow {
					for b := range shadow[a] {
						for c := range shadow[a][b] {
							shadow[a][b][c] *= factor
						}
					}
				}
			case 3:
				// Program time above the instrumented total is always
				// accepted; it must not disturb the cached marginals.
				if err := cube.SetProgramTime(cube.RegionsTotal() + v); err != nil {
					t.Fatal(err)
				}
			}
			check()
		}
	})
}
