package trace

import (
	"errors"
	"math"
	"testing"
)

func mustCube(t *testing.T, regions, activities []string, procs int) *Cube {
	t.Helper()
	c, err := NewCube(regions, activities, procs)
	if err != nil {
		t.Fatalf("NewCube: %v", err)
	}
	return c
}

func TestNewCubeValidation(t *testing.T) {
	cases := []struct {
		name       string
		regions    []string
		activities []string
		procs      int
		wantErr    error
	}{
		{"ok", []string{"l1"}, []string{"comp"}, 2, nil},
		{"no regions", nil, []string{"comp"}, 2, ErrNoRegions},
		{"no activities", []string{"l1"}, nil, 2, ErrNoActivities},
		{"no procs", []string{"l1"}, []string{"comp"}, 0, ErrNoProcessors},
		{"dup region", []string{"l1", "l1"}, []string{"comp"}, 2, ErrDuplicateName},
		{"dup activity", []string{"l1"}, []string{"c", "c"}, 2, ErrDuplicateName},
	}
	for _, c := range cases {
		_, err := NewCube(c.regions, c.activities, c.procs)
		if !errors.Is(err, c.wantErr) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.wantErr)
		}
	}
}

func TestCubeAccessors(t *testing.T) {
	c := mustCube(t, []string{"l1", "l2"}, []string{"comp", "p2p"}, 4)
	if c.NumRegions() != 2 || c.NumActivities() != 2 || c.NumProcs() != 4 {
		t.Fatalf("dims = %d, %d, %d", c.NumRegions(), c.NumActivities(), c.NumProcs())
	}
	if c.RegionIndex("l2") != 1 || c.RegionIndex("nope") != -1 {
		t.Error("RegionIndex wrong")
	}
	if c.ActivityIndex("p2p") != 1 || c.ActivityIndex("nope") != -1 {
		t.Error("ActivityIndex wrong")
	}
	rs, as := c.Regions(), c.Activities()
	rs[0] = "mutated"
	as[0] = "mutated"
	if c.RegionIndex("l1") != 0 || c.ActivityIndex("comp") != 0 {
		t.Error("Regions/Activities should return copies")
	}
}

func TestSetAddAt(t *testing.T) {
	c := mustCube(t, []string{"l1"}, []string{"comp"}, 2)
	if err := c.Set(0, 0, 0, 1.5); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(0, 0, 0, 0.5); err != nil {
		t.Fatal(err)
	}
	got, err := c.At(0, 0, 0)
	if err != nil || got != 2 {
		t.Errorf("At = %g, %v; want 2", got, err)
	}
	if err := c.Set(0, 0, 0, -1); !errors.Is(err, ErrNegativeTime) {
		t.Errorf("negative Set err = %v", err)
	}
	if err := c.Add(0, 0, 0, -1); !errors.Is(err, ErrNegativeTime) {
		t.Errorf("negative Add err = %v", err)
	}
	for _, bad := range [][3]int{{-1, 0, 0}, {1, 0, 0}, {0, -1, 0}, {0, 1, 0}, {0, 0, -1}, {0, 0, 2}} {
		if err := c.Set(bad[0], bad[1], bad[2], 1); !errors.Is(err, ErrOutOfRange) {
			t.Errorf("Set%v err = %v", bad, err)
		}
		if _, err := c.At(bad[0], bad[1], bad[2]); !errors.Is(err, ErrOutOfRange) {
			t.Errorf("At%v err = %v", bad, err)
		}
	}
}

// fillCube sets t_ijp = base + i*100 + j*10 + p for deterministic marginal
// checks.
func fillCube(t *testing.T, c *Cube) {
	t.Helper()
	for i := 0; i < c.NumRegions(); i++ {
		for j := 0; j < c.NumActivities(); j++ {
			for p := 0; p < c.NumProcs(); p++ {
				if err := c.Set(i, j, p, float64(1+i*100+j*10+p)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

func TestMarginals(t *testing.T) {
	c := mustCube(t, []string{"l1", "l2"}, []string{"a", "b"}, 2)
	fillCube(t, c)
	// Cell (0,0): procs 1, 2 -> sum 3, mean 1.5.
	sum, err := c.SumProcTimes(0, 0)
	if err != nil || sum != 3 {
		t.Errorf("SumProcTimes = %g, %v", sum, err)
	}
	cell, err := c.CellTime(0, 0)
	if err != nil || cell != 1.5 {
		t.Errorf("CellTime = %g, %v", cell, err)
	}
	// Region 0: cells (0,0) mean 1.5 and (0,1) procs 11,12 mean 11.5.
	reg, err := c.RegionTime(0)
	if err != nil || reg != 13 {
		t.Errorf("RegionTime = %g, %v", reg, err)
	}
	// Activity 0: cells (0,0) mean 1.5 and (1,0) procs 101,102 mean 101.5.
	act, err := c.ActivityTime(0)
	if err != nil || act != 103 {
		t.Errorf("ActivityTime = %g, %v", act, err)
	}
	// Processor-region: region 0, proc 1 -> 2 + 12.
	pr, err := c.ProcRegionTime(0, 1)
	if err != nil || pr != 14 {
		t.Errorf("ProcRegionTime = %g, %v", pr, err)
	}
	// Processor total: proc 0 -> 1 + 11 + 101 + 111 = 224.
	pt, err := c.ProcTotalTime(0)
	if err != nil || pt != 224 {
		t.Errorf("ProcTotalTime = %g, %v", pt, err)
	}
	// RegionsTotal: region 0 (13) + region 1 (101.5 + 111.5 = 213).
	if got := c.RegionsTotal(); got != 226 {
		t.Errorf("RegionsTotal = %g, want 226", got)
	}
	if _, err := c.RegionTime(5); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("RegionTime range err = %v", err)
	}
	if _, err := c.ActivityTime(5); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("ActivityTime range err = %v", err)
	}
	if _, err := c.ProcRegionTime(0, 9); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("ProcRegionTime range err = %v", err)
	}
	if _, err := c.ProcTotalTime(9); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("ProcTotalTime range err = %v", err)
	}
	if _, err := c.SumProcTimes(9, 0); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("SumProcTimes range err = %v", err)
	}
}

func TestMarginalConsistency(t *testing.T) {
	// Sum of region times == sum of activity times == RegionsTotal.
	c := mustCube(t, []string{"a", "b", "c"}, []string{"x", "y"}, 3)
	fillCube(t, c)
	var regSum, actSum float64
	for i := 0; i < c.NumRegions(); i++ {
		v, err := c.RegionTime(i)
		if err != nil {
			t.Fatal(err)
		}
		regSum += v
	}
	for j := 0; j < c.NumActivities(); j++ {
		v, err := c.ActivityTime(j)
		if err != nil {
			t.Fatal(err)
		}
		actSum += v
	}
	if math.Abs(regSum-actSum) > 1e-9 || math.Abs(regSum-c.RegionsTotal()) > 1e-9 {
		t.Errorf("marginals disagree: regions %g, activities %g, total %g", regSum, actSum, c.RegionsTotal())
	}
}

func TestProcTimes(t *testing.T) {
	c := mustCube(t, []string{"l1"}, []string{"a"}, 3)
	fillCube(t, c)
	ts, err := c.ProcTimes(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 3 || ts[0] != 1 || ts[2] != 3 {
		t.Errorf("ProcTimes = %v", ts)
	}
	ts[0] = 99
	if v, _ := c.At(0, 0, 0); v != 1 {
		t.Error("ProcTimes should return a copy")
	}
	if _, err := c.ProcTimes(7, 0); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("range err = %v", err)
	}
}

func TestProgramTime(t *testing.T) {
	c := mustCube(t, []string{"l1"}, []string{"a"}, 2)
	if err := c.Set(0, 0, 0, 4); err != nil {
		t.Fatal(err)
	}
	if err := c.Set(0, 0, 1, 6); err != nil {
		t.Fatal(err)
	}
	// Default: regions total (mean over procs = 5).
	if got := c.ProgramTime(); got != 5 {
		t.Errorf("default ProgramTime = %g, want 5", got)
	}
	if err := c.SetProgramTime(8); err != nil {
		t.Fatal(err)
	}
	if got := c.ProgramTime(); got != 8 {
		t.Errorf("ProgramTime = %g, want 8", got)
	}
	if err := c.SetProgramTime(0); err != nil {
		t.Fatal(err)
	}
	if got := c.ProgramTime(); got != 5 {
		t.Errorf("reset ProgramTime = %g, want 5", got)
	}
	if err := c.SetProgramTime(-1); !errors.Is(err, ErrNegativeTime) {
		t.Errorf("negative program time err = %v", err)
	}
	if err := c.SetProgramTime(2); err == nil {
		t.Error("program time below instrumented total should fail")
	}
}

func TestHasActivity(t *testing.T) {
	c := mustCube(t, []string{"l1"}, []string{"a", "b"}, 2)
	if err := c.Set(0, 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	has, err := c.HasActivity(0, 0)
	if err != nil || !has {
		t.Errorf("HasActivity(0,0) = %v, %v", has, err)
	}
	has, err = c.HasActivity(0, 1)
	if err != nil || has {
		t.Errorf("HasActivity(0,1) = %v, %v", has, err)
	}
	if _, err := c.HasActivity(3, 0); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("range err = %v", err)
	}
}

func TestCloneAndEqual(t *testing.T) {
	c := mustCube(t, []string{"l1", "l2"}, []string{"a"}, 2)
	fillCube(t, c)
	if err := c.SetProgramTime(500); err != nil {
		t.Fatal(err)
	}
	d := c.Clone()
	if !c.EqualWithin(d, 0) {
		t.Fatal("clone should equal original")
	}
	if err := d.Set(0, 0, 0, 42); err != nil {
		t.Fatal(err)
	}
	if c.EqualWithin(d, 0) {
		t.Error("mutated clone should differ")
	}
	if v, _ := c.At(0, 0, 0); v == 42 {
		t.Error("clone mutation leaked into original")
	}
	if c.EqualWithin(nil, 0) {
		t.Error("EqualWithin(nil) should be false")
	}
	other := mustCube(t, []string{"x", "l2"}, []string{"a"}, 2)
	if c.EqualWithin(other, 1e9) {
		t.Error("different region names should not be equal")
	}
}

func TestEqualWithinProgramTime(t *testing.T) {
	a := mustCube(t, []string{"l"}, []string{"c"}, 1)
	b := mustCube(t, []string{"l"}, []string{"c"}, 1)
	if err := a.Set(0, 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.Set(0, 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := a.SetProgramTime(10); err != nil {
		t.Fatal(err)
	}
	if a.EqualWithin(b, 1e-9) {
		t.Error("different program times should not be equal")
	}
}

func TestScale(t *testing.T) {
	c := mustCube(t, []string{"l1"}, []string{"a"}, 2)
	fillCube(t, c)
	if err := c.SetProgramTime(10); err != nil {
		t.Fatal(err)
	}
	if err := c.Scale(2); err != nil {
		t.Fatal(err)
	}
	if v, _ := c.At(0, 0, 1); v != 4 {
		t.Errorf("scaled value = %g, want 4", v)
	}
	if c.ProgramTime() != 20 {
		t.Errorf("scaled program time = %g, want 20", c.ProgramTime())
	}
	if err := c.Scale(0); err == nil {
		t.Error("zero scale should fail")
	}
	if err := c.Scale(-1); err == nil {
		t.Error("negative scale should fail")
	}
}

func TestSubCube(t *testing.T) {
	c := mustCube(t, []string{"a", "b", "c"}, []string{"x", "y"}, 2)
	fillCube(t, c)
	if err := c.SetProgramTime(5000); err != nil {
		t.Fatal(err)
	}
	sub, err := c.SubCube([]int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumRegions() != 2 || sub.RegionIndex("c") != 0 || sub.RegionIndex("a") != 1 {
		t.Fatalf("sub regions = %v", sub.Regions())
	}
	want, _ := c.At(2, 1, 1)
	got, err := sub.At(0, 1, 1)
	if err != nil || got != want {
		t.Errorf("sub cell = %g, want %g", got, want)
	}
	if sub.ProgramTime() != 5000 {
		t.Errorf("sub program time = %g", sub.ProgramTime())
	}
	// Mutating the sub-cube must not touch the original.
	if err := sub.Set(0, 0, 0, 999); err != nil {
		t.Fatal(err)
	}
	if v, _ := c.At(2, 0, 0); v == 999 {
		t.Error("SubCube shares storage with the original")
	}
	if _, err := c.SubCube(nil); !errors.Is(err, ErrNoRegions) {
		t.Errorf("empty selection err = %v", err)
	}
	if _, err := c.SubCube([]int{7}); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("range err = %v", err)
	}
	if _, err := c.SubCube([]int{0, 0}); !errors.Is(err, ErrDuplicateName) {
		t.Errorf("duplicate selection err = %v", err)
	}
}

// TestCubeRejectsNonFiniteTimes guards the NaN hole in the time checks:
// `t < 0` is false for NaN, so the old checks stored NaN (and +Inf)
// times, poisoning every marginal and index downstream.
func TestCubeRejectsNonFiniteTimes(t *testing.T) {
	c, err := NewCube([]string{"r"}, []string{"a"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if err := c.Set(0, 0, 0, bad); !errors.Is(err, ErrNegativeTime) {
			t.Errorf("Set(%g) err = %v, want ErrNegativeTime", bad, err)
		}
		if err := c.Add(0, 0, 0, bad); !errors.Is(err, ErrNegativeTime) {
			t.Errorf("Add(%g) err = %v, want ErrNegativeTime", bad, err)
		}
		if err := c.SetProgramTime(bad); !errors.Is(err, ErrNegativeTime) {
			t.Errorf("SetProgramTime(%g) err = %v, want ErrNegativeTime", bad, err)
		}
	}
}
