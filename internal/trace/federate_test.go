package trace

import (
	"math"
	"testing"
)

// jobLog builds a small per-job event log and aggregates it, so the
// federation tests can compare against merging the raw logs by hand.
func jobLog(t *testing.T, events []Event) (*Log, *Cube) {
	t.Helper()
	var lg Log
	for _, e := range events {
		if err := lg.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	cube, err := lg.Aggregate(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return &lg, cube
}

func TestFederateOffsetsRanksAndNamespacesRegions(t *testing.T) {
	_, a := jobLog(t, []Event{
		{Rank: 0, Region: "solve", Activity: "comp", Start: 0, End: 2},
		{Rank: 1, Region: "solve", Activity: "comm", Start: 0, End: 1},
		{Rank: 1, Region: "io", Activity: "comp", Start: 1, End: 4},
	})
	_, b := jobLog(t, []Event{
		{Rank: 0, Region: "solve", Activity: "comp", Start: 0, End: 5},
		{Rank: 2, Region: "mesh", Activity: "sync", Start: 0, End: 3},
	})
	fed, err := Federate([]JobCube{{Label: "jobA", Cube: a}, {Label: "jobB", Cube: b}})
	if err != nil {
		t.Fatal(err)
	}
	wantRegions := []string{"jobA/solve", "jobA/io", "jobB/solve", "jobB/mesh"}
	gotRegions := fed.Regions()
	if len(gotRegions) != len(wantRegions) {
		t.Fatalf("regions = %v, want %v", gotRegions, wantRegions)
	}
	for i := range wantRegions {
		if gotRegions[i] != wantRegions[i] {
			t.Fatalf("regions = %v, want %v", gotRegions, wantRegions)
		}
	}
	wantActs := []string{"comp", "comm", "sync"}
	gotActs := fed.Activities()
	if len(gotActs) != len(wantActs) {
		t.Fatalf("activities = %v, want %v", gotActs, wantActs)
	}
	for j := range wantActs {
		if gotActs[j] != wantActs[j] {
			t.Fatalf("activities = %v, want %v", gotActs, wantActs)
		}
	}
	if fed.NumProcs() != a.NumProcs()+b.NumProcs() {
		t.Fatalf("procs = %d, want %d", fed.NumProcs(), a.NumProcs()+b.NumProcs())
	}
	// Job B's rank 0 is federated rank 2 (offset by job A's 2 procs).
	v, err := fed.At(fed.RegionIndex("jobB/solve"), fed.ActivityIndex("comp"), 2)
	if err != nil {
		t.Fatal(err)
	}
	if v != 5 {
		t.Errorf("jobB/solve comp at offset rank = %g, want 5", v)
	}
	// Job A's cells stay on ranks 0..1; job B's ranks there are zero.
	v, err = fed.At(fed.RegionIndex("jobA/solve"), fed.ActivityIndex("comp"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Errorf("jobA/solve comp rank 0 = %g, want 2", v)
	}
	for p := 2; p < 5; p++ {
		v, err := fed.At(fed.RegionIndex("jobA/solve"), fed.ActivityIndex("comp"), p)
		if err != nil {
			t.Fatal(err)
		}
		if v != 0 {
			t.Errorf("jobA cell leaked onto federated rank %d: %g", p, v)
		}
	}
	// Program time: the jobs run concurrently, so the federated wall
	// clock is the longest job timeline.
	if got, want := fed.ProgramTime(), math.Max(a.ProgramTime(), b.ProgramTime()); got != want {
		t.Errorf("program time = %g, want %g", got, want)
	}
}

// TestFederateMatchesMergedLog checks the defining property: federating
// per-job cubes equals aggregating one log whose events carry offset ranks
// and namespaced regions.
func TestFederateMatchesMergedLog(t *testing.T) {
	jobA := []Event{
		{Rank: 0, Region: "r1", Activity: "x", Start: 0, End: 1.5},
		{Rank: 1, Region: "r1", Activity: "y", Start: 0.5, End: 2},
		{Rank: 2, Region: "r2", Activity: "x", Start: 0, End: 7},
	}
	jobB := []Event{
		{Rank: 0, Region: "r1", Activity: "x", Start: 0, End: 3},
		{Rank: 1, Region: "r3", Activity: "z", Start: 2, End: 4},
	}
	_, a := jobLog(t, jobA)
	_, b := jobLog(t, jobB)
	fed, err := Federate([]JobCube{{Label: "a", Cube: a}, {Label: "b", Cube: b}})
	if err != nil {
		t.Fatal(err)
	}
	var merged Log
	for _, e := range jobA {
		e.Region = "a/" + e.Region
		if err := merged.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range jobB {
		e.Rank += a.NumProcs()
		e.Region = "b/" + e.Region
		if err := merged.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	want, err := merged.Aggregate(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !fed.EqualWithin(want, 1e-12) {
		t.Fatalf("federated cube differs from the merged-log aggregate\nfed T=%g want T=%g",
			fed.ProgramTime(), want.ProgramTime())
	}
}

func TestFederateUnlabeledSharedRegions(t *testing.T) {
	_, a := jobLog(t, []Event{{Rank: 0, Region: "solve", Activity: "comp", Start: 0, End: 2}})
	_, b := jobLog(t, []Event{{Rank: 0, Region: "solve", Activity: "comp", Start: 0, End: 3}})
	fed, err := Federate([]JobCube{{Cube: a}, {Cube: b}})
	if err != nil {
		t.Fatal(err)
	}
	if fed.NumRegions() != 1 || fed.NumProcs() != 2 {
		t.Fatalf("shape = %dx%d procs, want 1 region x 2 procs", fed.NumRegions(), fed.NumProcs())
	}
	v0, _ := fed.At(0, 0, 0)
	v1, _ := fed.At(0, 0, 1)
	if v0 != 2 || v1 != 3 {
		t.Errorf("shared region times = %g, %g; want 2, 3", v0, v1)
	}
}

func TestFederateSingleJobKeepsTotals(t *testing.T) {
	_, a := jobLog(t, []Event{
		{Rank: 0, Region: "r", Activity: "x", Start: 0, End: 2},
		{Rank: 1, Region: "r", Activity: "x", Start: 0, End: 4},
	})
	fed, err := Federate([]JobCube{{Label: "solo", Cube: a}})
	if err != nil {
		t.Fatal(err)
	}
	if fed.RegionIndex("solo/r") != 0 {
		t.Fatalf("regions = %v, want [solo/r]", fed.Regions())
	}
	if fed.RegionsTotal() != a.RegionsTotal() || fed.ProgramTime() != a.ProgramTime() {
		t.Errorf("totals changed: %g/%g vs %g/%g",
			fed.RegionsTotal(), fed.ProgramTime(), a.RegionsTotal(), a.ProgramTime())
	}
}

func TestFederateErrors(t *testing.T) {
	if _, err := Federate(nil); err == nil {
		t.Error("federating zero jobs succeeded")
	}
	_, a := jobLog(t, []Event{{Rank: 0, Region: "r", Activity: "x", Start: 0, End: 1}})
	if _, err := Federate([]JobCube{{Label: "a", Cube: a}, {Label: "b"}}); err == nil {
		t.Error("nil job cube accepted")
	}
}
