package trace

import (
	"math"
	"testing"
)

func TestEventValidate(t *testing.T) {
	ok := Event{Rank: 0, Region: "l1", Activity: "comp", Start: 0, End: 1}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid event: %v", err)
	}
	bad := []Event{
		{Rank: -1, Region: "l", Activity: "a", End: 1},
		{Rank: 0, Region: "", Activity: "a", End: 1},
		{Rank: 0, Region: "l", Activity: "", End: 1},
		{Rank: 0, Region: "l", Activity: "a", Start: 2, End: 1},
	}
	for i, e := range bad {
		if err := e.Validate(); err == nil {
			t.Errorf("bad event %d accepted", i)
		}
	}
	if d := ok.Duration(); d != 1 {
		t.Errorf("Duration = %g", d)
	}
}

func TestLogAppend(t *testing.T) {
	var l Log
	if err := l.Append(Event{Rank: 0, Region: "l", Activity: "a", End: 1}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Event{Rank: -1, Region: "l", Activity: "a", End: 1}); err == nil {
		t.Error("invalid event accepted")
	}
	if l.Len() != 1 {
		t.Errorf("Len = %d", l.Len())
	}
	evs := l.Events()
	evs[0].Rank = 42
	if l.Events()[0].Rank != 0 {
		t.Error("Events should return a copy")
	}
}

func TestLogRanksSpan(t *testing.T) {
	var l Log
	if l.Ranks() != 0 || l.Span() != 0 {
		t.Error("empty log should have 0 ranks, 0 span")
	}
	for _, e := range []Event{
		{Rank: 2, Region: "l", Activity: "a", Start: 1, End: 5},
		{Rank: 0, Region: "l", Activity: "a", Start: 0, End: 3},
	} {
		if err := l.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if l.Ranks() != 3 {
		t.Errorf("Ranks = %d, want 3", l.Ranks())
	}
	if l.Span() != 5 {
		t.Errorf("Span = %g, want 5", l.Span())
	}
}

func TestAggregate(t *testing.T) {
	var l Log
	events := []Event{
		{Rank: 0, Region: "l1", Activity: "comp", Start: 0, End: 2},
		{Rank: 1, Region: "l1", Activity: "comp", Start: 0, End: 4},
		{Rank: 0, Region: "l1", Activity: "comp", Start: 2, End: 3}, // folded in
		{Rank: 0, Region: "l2", Activity: "p2p", Start: 3, End: 6},
		{Rank: 1, Region: "l2", Activity: "p2p", Start: 4, End: 6},
	}
	for _, e := range events {
		if err := l.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	cube, err := l.Aggregate(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cube.NumRegions() != 2 || cube.NumActivities() != 2 || cube.NumProcs() != 2 {
		t.Fatalf("cube dims = %d, %d, %d", cube.NumRegions(), cube.NumActivities(), cube.NumProcs())
	}
	// Rank 0 spent 2+1 = 3 in (l1, comp).
	v, err := cube.At(cube.RegionIndex("l1"), cube.ActivityIndex("comp"), 0)
	if err != nil || v != 3 {
		t.Errorf("t(l1, comp, 0) = %g, %v; want 3", v, err)
	}
	// Program time is the span, 6.
	if got := cube.ProgramTime(); got != 6 {
		t.Errorf("ProgramTime = %g, want 6", got)
	}
	// Instrumented total: (3+4)/2 + (3+2)/2 = 6.
	if got := cube.RegionsTotal(); math.Abs(got-6) > 1e-12 {
		t.Errorf("RegionsTotal = %g, want 6", got)
	}
}

func TestAggregateOrder(t *testing.T) {
	var l Log
	for _, e := range []Event{
		{Rank: 0, Region: "zeta", Activity: "sync", Start: 0, End: 1},
		{Rank: 0, Region: "alpha", Activity: "comp", Start: 1, End: 2},
	} {
		if err := l.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	// Explicit order puts alpha first and declares an activity that never
	// occurs; it must still be present for stable table layouts.
	cube, err := l.Aggregate([]string{"alpha"}, []string{"comp", "p2p", "sync"})
	if err != nil {
		t.Fatal(err)
	}
	if cube.RegionIndex("alpha") != 0 || cube.RegionIndex("zeta") != 1 {
		t.Errorf("region order: %v", cube.Regions())
	}
	if cube.ActivityIndex("p2p") != 1 {
		t.Errorf("activity order: %v", cube.Activities())
	}
	has, err := cube.HasActivity(0, 1)
	if err != nil || has {
		t.Errorf("unused activity should be empty: %v, %v", has, err)
	}
}

func TestAggregateEmpty(t *testing.T) {
	var l Log
	if _, err := l.Aggregate(nil, nil); err == nil {
		t.Error("aggregating empty log should fail")
	}
}

func TestSortByStart(t *testing.T) {
	var l Log
	for _, e := range []Event{
		{Rank: 1, Region: "b", Activity: "a", Start: 2, End: 3},
		{Rank: 1, Region: "a", Activity: "a", Start: 1, End: 2},
		{Rank: 0, Region: "c", Activity: "a", Start: 1, End: 2},
		{Rank: 0, Region: "a", Activity: "a", Start: 1, End: 2},
	} {
		if err := l.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	l.SortByStart()
	evs := l.Events()
	if evs[0].Region != "a" || evs[0].Rank != 0 {
		t.Errorf("first event = %+v", evs[0])
	}
	if evs[1].Region != "c" {
		t.Errorf("second event = %+v", evs[1])
	}
	if evs[2].Rank != 1 || evs[2].Region != "a" {
		t.Errorf("third event = %+v", evs[2])
	}
	if evs[3].Start != 2 {
		t.Errorf("last event = %+v", evs[3])
	}
}

func TestDurations(t *testing.T) {
	var l Log
	for _, e := range []Event{
		{Rank: 0, Region: "r1", Activity: "comp", Start: 0, End: 2},
		{Rank: 1, Region: "r1", Activity: "comp", Start: 0, End: 3},
		{Rank: 0, Region: "r2", Activity: "comp", Start: 2, End: 2.5},
		{Rank: 0, Region: "r1", Activity: "p2p", Start: 2, End: 4},
	} {
		if err := l.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	comp := l.Durations("comp")
	if len(comp) != 3 || comp[0] != 2 || comp[1] != 3 || comp[2] != 0.5 {
		t.Errorf("Durations(comp) = %v", comp)
	}
	if got := l.Durations("nope"); got != nil {
		t.Errorf("Durations(nope) = %v", got)
	}
	r1comp := l.RegionDurations("r1", "comp")
	if len(r1comp) != 2 || r1comp[1] != 3 {
		t.Errorf("RegionDurations = %v", r1comp)
	}
}

func TestWindow(t *testing.T) {
	var l Log
	for _, e := range []Event{
		{Rank: 0, Region: "r", Activity: "a", Start: 0, End: 4},
		{Rank: 0, Region: "r", Activity: "b", Start: 4, End: 8},
		{Rank: 1, Region: "r", Activity: "a", Start: 2, End: 6},
	} {
		if err := l.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	w, err := l.Window(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 3 {
		t.Fatalf("window has %d events", w.Len())
	}
	for _, e := range w.Events() {
		if e.Start < 3 || e.End > 5 {
			t.Errorf("event not clipped: %+v", e)
		}
	}
	// Fully-outside events are dropped.
	early, err := l.Window(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if early.Len() != 1 || early.Events()[0].Activity != "a" {
		t.Errorf("early window = %+v", early.Events())
	}
	if _, err := l.Window(5, 5); err == nil {
		t.Error("empty window should fail")
	}
}

func TestWindowAggregatesPerPhase(t *testing.T) {
	var l Log
	// Two "iterations" with different balance.
	for _, e := range []Event{
		{Rank: 0, Region: "r", Activity: "a", Start: 0, End: 1},
		{Rank: 1, Region: "r", Activity: "a", Start: 0, End: 1},
		{Rank: 0, Region: "r", Activity: "a", Start: 1, End: 2},
		{Rank: 1, Region: "r", Activity: "a", Start: 1, End: 1.1},
	} {
		if err := l.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	first, err := l.Window(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	second, err := l.Window(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := first.Aggregate(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := second.Aggregate(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t1, _ := c1.ProcTimes(0, 0)
	t2, _ := c2.ProcTimes(0, 0)
	if t1[0] != t1[1] {
		t.Errorf("first iteration should be balanced: %v", t1)
	}
	if t2[0] == t2[1] {
		t.Errorf("second iteration should be imbalanced: %v", t2)
	}
}
