package trace

import (
	"reflect"
	"testing"
)

// captureSink records everything it sees, tagging batch deliveries.
type captureSink struct {
	events  []Event
	batches int
	records int
}

func (c *captureSink) Record(e Event) {
	c.records++
	c.events = append(c.events, e)
}

func (c *captureSink) RecordBatch(events []Event) {
	c.batches++
	c.events = append(c.events, events...)
}

func TestRecordBatchPrefersBatchSink(t *testing.T) {
	events := []Event{
		{Rank: 0, Region: "r", Activity: "a", Start: 0, End: 1},
		{Rank: 1, Region: "r", Activity: "a", Start: 1, End: 2},
	}
	batched := &captureSink{}
	RecordBatch(batched, events)
	if batched.batches != 1 || batched.records != 0 {
		t.Fatalf("batch sink got %d batches, %d records; want 1, 0", batched.batches, batched.records)
	}
	if !reflect.DeepEqual(batched.events, events) {
		t.Fatalf("batch sink saw %+v, want %+v", batched.events, events)
	}

	var plainEvents []Event
	plain := SinkFunc(func(e Event) { plainEvents = append(plainEvents, e) })
	RecordBatch(plain, events)
	if !reflect.DeepEqual(plainEvents, events) {
		t.Fatalf("plain sink saw %+v, want %+v", plainEvents, events)
	}
}

func TestShiftSinkBatches(t *testing.T) {
	events := make([]Event, 2500) // crosses the pooled scratch capacity
	for i := range events {
		events[i] = Event{Rank: i % 4, Region: "r", Activity: "a", Start: float64(i), End: float64(i) + 0.5}
	}
	want := make([]Event, len(events))
	for i, e := range events {
		e.Start += 10
		e.End += 10
		want[i] = e
	}
	orig := append([]Event(nil), events...)

	next := &captureSink{}
	shift := ShiftSink(next, 10)
	RecordBatch(shift, events)
	if !reflect.DeepEqual(next.events, want) {
		t.Fatalf("shifted batch mismatch: got %d events, first %+v", len(next.events), next.events[0])
	}
	if next.batches == 0 {
		t.Fatal("shift sink fell back to per-event Record for a BatchSink target")
	}
	if !reflect.DeepEqual(events, orig) {
		t.Fatal("ShiftSink mutated the caller's batch")
	}

	// Non-batch target: falls back to per-event delivery, same result.
	var got []Event
	plain := SinkFunc(func(e Event) { got = append(got, e) })
	RecordBatch(ShiftSink(plain, 10), events)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("per-event fallback mismatch: got %d events", len(got))
	}

	// Zero offset is the identity: the sink itself is returned.
	if s := ShiftSink(next, 0); s != Sink(next) {
		t.Fatal("zero-offset ShiftSink should return the sink unchanged")
	}
}
