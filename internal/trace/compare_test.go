package trace

import (
	"errors"
	"math"
	"testing"
)

func twoCubes(t *testing.T) (*Cube, *Cube) {
	t.Helper()
	a := mustCube(t, []string{"r1", "r2"}, []string{"x", "y"}, 2)
	b := mustCube(t, []string{"r1", "r2"}, []string{"x", "y"}, 2)
	fillCube(t, a)
	fillCube(t, b)
	return a, b
}

func TestMerge(t *testing.T) {
	a, b := twoCubes(t)
	if err := b.Scale(2); err != nil {
		t.Fatal(err)
	}
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	va, _ := a.At(0, 0, 0)
	vm, _ := m.At(0, 0, 0)
	if vm != 3*va {
		t.Errorf("merged cell = %g, want %g", vm, 3*va)
	}
	if math.Abs(m.ProgramTime()-(a.ProgramTime()+b.ProgramTime())) > 1e-9 {
		t.Errorf("merged program time = %g", m.ProgramTime())
	}
	// Originals untouched.
	if v, _ := a.At(0, 0, 0); v != va {
		t.Error("Merge mutated an input")
	}
}

func TestMergeShapeMismatch(t *testing.T) {
	a, _ := twoCubes(t)
	cases := []*Cube{
		mustCube(t, []string{"r1"}, []string{"x", "y"}, 2),
		mustCube(t, []string{"r1", "other"}, []string{"x", "y"}, 2),
		mustCube(t, []string{"r1", "r2"}, []string{"x", "z"}, 2),
		mustCube(t, []string{"r1", "r2"}, []string{"x", "y"}, 3),
	}
	for i, c := range cases {
		if _, err := Merge(a, c); !errors.Is(err, ErrShapeMismatch) {
			t.Errorf("case %d: err = %v", i, err)
		}
	}
	if _, err := Merge(a, nil); err == nil {
		t.Error("nil cube should fail")
	}
}

func TestCompare(t *testing.T) {
	before, after := twoCubes(t)
	// Halve region 0's x activity in the "after" run.
	for p := 0; p < 2; p++ {
		v, err := after.At(0, 0, p)
		if err != nil {
			t.Fatal(err)
		}
		if err := after.Set(0, 0, p, v/2); err != nil {
			t.Fatal(err)
		}
	}
	d, err := Compare(before, after)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Cells) != 4 {
		t.Fatalf("%d cells", len(d.Cells))
	}
	first := d.Cells[0]
	if first.Region != 0 || first.Activity != 0 {
		t.Fatalf("first cell = %+v", first)
	}
	if first.Change() >= 0 {
		t.Errorf("halved cell change = %g, want negative", first.Change())
	}
	if math.Abs(first.RelChange()+0.5) > 1e-12 {
		t.Errorf("rel change = %g, want -0.5", first.RelChange())
	}
	// Unchanged cell.
	if d.Cells[1].Change() != 0 {
		t.Errorf("unchanged cell delta = %g", d.Cells[1].Change())
	}
	if d.Speedup() <= 1 {
		t.Errorf("speedup = %g, want > 1", d.Speedup())
	}
}

func TestCompareZeroBefore(t *testing.T) {
	a := mustCube(t, []string{"r"}, []string{"x"}, 1)
	b := mustCube(t, []string{"r"}, []string{"x"}, 1)
	if err := b.Set(0, 0, 0, 5); err != nil {
		t.Fatal(err)
	}
	d, err := Compare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d.Cells[0].RelChange() != 0 {
		t.Errorf("rel change from zero = %g, want 0 sentinel", d.Cells[0].RelChange())
	}
	// Speedup with zero after-time is 0 (guarded).
	empty := Diff{ProgramBefore: 1, ProgramAfter: 0}
	if empty.Speedup() != 0 {
		t.Errorf("guarded speedup = %g", empty.Speedup())
	}
}

func TestMergeRegions(t *testing.T) {
	c := mustCube(t, []string{"l1", "l2", "l3"}, []string{"x"}, 2)
	fillCube(t, c)
	if err := c.SetProgramTime(1000); err != nil {
		t.Fatal(err)
	}
	merged, err := c.MergeRegions([]string{"heavy"}, map[string][]int{"heavy": {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if merged.NumRegions() != 2 || merged.RegionIndex("heavy") != 0 || merged.RegionIndex("l3") != 1 {
		t.Fatalf("merged regions = %v", merged.Regions())
	}
	// heavy proc 0 = l1(1) + l2(101).
	v, err := merged.At(0, 0, 0)
	if err != nil || v != 102 {
		t.Errorf("merged cell = %g, %v", v, err)
	}
	if merged.ProgramTime() != 1000 {
		t.Errorf("program time = %g", merged.ProgramTime())
	}
	// Total time is conserved.
	if math.Abs(merged.RegionsTotal()-c.RegionsTotal()) > 1e-9 {
		t.Errorf("totals differ: %g vs %g", merged.RegionsTotal(), c.RegionsTotal())
	}
}

func TestMergeRegionsValidation(t *testing.T) {
	c := mustCube(t, []string{"l1", "l2"}, []string{"x"}, 2)
	fillCube(t, c)
	if _, err := c.MergeRegions(nil, nil); err == nil {
		t.Error("empty groups should fail")
	}
	if _, err := c.MergeRegions([]string{"a", "b"}, map[string][]int{"a": {0}}); err == nil {
		t.Error("order/groups mismatch should fail")
	}
	if _, err := c.MergeRegions([]string{"a"}, map[string][]int{"b": {0}}); err == nil {
		t.Error("unknown ordered name should fail")
	}
	if _, err := c.MergeRegions([]string{"a"}, map[string][]int{"a": {}}); err == nil {
		t.Error("empty group should fail")
	}
	if _, err := c.MergeRegions([]string{"a"}, map[string][]int{"a": {7}}); err == nil {
		t.Error("out-of-range member should fail")
	}
	if _, err := c.MergeRegions([]string{"a", "l1"}, map[string][]int{"a": {0}, "l1": {0}}); err == nil {
		t.Error("duplicate member should fail")
	}
}

func TestMergeRegionsAnalysisAltitude(t *testing.T) {
	// Merging the paper's two heavy loops into one phase keeps the
	// methodology working at the coarser altitude.
	cube := paperReconstruction(t)
	merged, err := cube.MergeRegions([]string{"core phase"}, map[string][]int{"core phase": {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	ti, err := merged.RegionTime(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ti-(19.051+14.22)) > 1e-9 {
		t.Errorf("core phase time = %g", ti)
	}
}

// paperReconstruction rebuilds the case-study cube without importing
// workload (which would cycle): a minimal stand-in with the two heavy
// loops' times.
func paperReconstruction(t *testing.T) *Cube {
	t.Helper()
	c := mustCube(t, []string{"loop 1", "loop 2"}, []string{"comp"}, 2)
	for p := 0; p < 2; p++ {
		if err := c.Set(0, 0, p, 19.051); err != nil {
			t.Fatal(err)
		}
		if err := c.Set(1, 0, p, 14.22); err != nil {
			t.Fatal(err)
		}
	}
	return c
}
