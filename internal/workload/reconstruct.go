// Package workload builds measurement cubes for analyses, benchmarks and
// tests: an exact reconstruction of the paper's case-study cube from its
// published marginals, and parametric synthetic workloads with injectable
// imbalance for sweeps and property tests.
package workload

import (
	"fmt"
	"math"

	"loadimb/internal/paper"
	"loadimb/internal/trace"
)

// ReconstructCube builds a t_ijp cube consistent with the paper's published
// measurements: for every (loop, activity) cell the per-processor times
// have exactly the published wall clock time t_ij (Table 1) and exactly the
// published index of dispersion ID_ij (Table 2), and the cube's program
// time is the fitted T. Where Section 4 quotes per-figure processor counts
// (5 of 16 in the upper band on loop 4's computation, 11 of 16 in the lower
// band on loop 6's computation) the deviation profile uses that many high
// processors, so the pattern diagrams reproduce the published observations.
//
// The t_ijp cube itself was never published; every quantity the paper
// derives from it (Tables 2-4, the figure band counts) is reproduced
// exactly by construction. Processor-view indices are plausible but not the
// paper's exact values.
func ReconstructCube() (*trace.Cube, error) {
	cube, err := trace.NewCube(paper.LoopNames[:], paper.ActivityNames[:], paper.NumProcs)
	if err != nil {
		return nil, err
	}
	for i := 0; i < paper.NumLoops; i++ {
		for j := 0; j < paper.NumActivities; j++ {
			tij, ok := paper.CellTime(i, j)
			if !ok {
				continue
			}
			id, _ := paper.Dispersion(i, j)
			high := highCount(i, j)
			times, err := CellTimes(tij, id, paper.NumProcs, high, cellOffset(i, j))
			if err != nil {
				return nil, fmt.Errorf("workload: loop %d %s: %w", i+1, paper.ActivityNames[j], err)
			}
			for p, t := range times {
				if err := cube.Set(i, j, p, t); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := cube.SetProgramTime(paper.ProgramTime); err != nil {
		return nil, err
	}
	return cube, nil
}

// highCount returns the number of processors on the high side of the
// deviation profile for cell (i, j), honoring the figure observations
// quoted in the paper.
func highCount(i, j int) int {
	switch {
	case i == 3 && j == paper.Computation: // loop 4: 5 of 16 in the upper band
		return paper.Figure1Loop4Upper
	case i == 5 && j == paper.Computation: // loop 6: 11 of 16 in the lower band
		return paper.NumProcs - paper.Figure1Loop6Lower
	default:
		return 1
	}
}

// cellOffset rotates which processors form the high group, so different
// cells blame different processors (as real traces do).
func cellOffset(i, j int) int {
	return (i*5 + j*11) % paper.NumProcs
}

// CellTimes generates P nonnegative times that sum to P*mean (so their
// mean, the wall clock time of the cell, is exactly mean) and whose
// standardized vector has Euclidean dispersion exactly id. The deviation
// profile puts high processors (count high, starting at offset, wrapping)
// above the balanced share and the rest below, with a small within-group
// tilt so band classification has a unique maximum and minimum.
func CellTimes(mean, id float64, procs, high, offset int) ([]float64, error) {
	if procs < 2 {
		return nil, fmt.Errorf("need at least 2 processors, got %d", procs)
	}
	if mean < 0 {
		return nil, fmt.Errorf("negative mean time %g", mean)
	}
	if id < 0 {
		return nil, fmt.Errorf("negative dispersion %g", id)
	}
	if high < 1 || high >= procs {
		return nil, fmt.Errorf("high count %d out of range [1, %d)", high, procs)
	}
	p := float64(procs)
	low := procs - high
	a := math.Sqrt(float64(low) / (float64(high) * p))
	b := math.Sqrt(float64(high) / (float64(low) * p))
	// Two-level profile plus a zero-sum within-group tilt; the tilt keeps
	// each group inside a narrow band (a fraction of the group gap) so
	// high processors stay in the upper band and low ones in the lower.
	v := make([]float64, procs)
	eps := 0.05 * (a + b) / p
	hi, lo := 0, 0
	for q := 0; q < procs; q++ {
		pos := (offset + q) % procs
		if q < high {
			v[pos] = a + eps*(float64(hi)-float64(high-1)/2)
			hi++
		} else {
			v[pos] = -b + eps*(float64(lo)-float64(low-1)/2)
			lo++
		}
	}
	// Renormalize to a unit vector; the tilt is zero-sum per group so the
	// total stays zero and the standardized mean stays exactly 1/P.
	norm := 0.0
	for _, x := range v {
		norm += x * x
	}
	norm = math.Sqrt(norm)
	out := make([]float64, procs)
	total := mean * p
	for q, x := range v {
		share := 1/p + id*x/norm
		if share < 0 {
			return nil, fmt.Errorf("dispersion %g too large for %d/%d high/low profile (share %g < 0)", id, high, low, share)
		}
		out[q] = total * share
	}
	return out, nil
}
