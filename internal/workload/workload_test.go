package workload

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"loadimb/internal/paper"
	"loadimb/internal/stats"
)

func TestCellTimesExactMoments(t *testing.T) {
	cases := []struct {
		mean, id    float64
		procs, high int
		offset      int
	}{
		{12.24, 0.03674, 16, 1, 0},
		{0.061, 0.12870, 16, 1, 3},
		{0.011, 0.30571, 16, 1, 7},
		{8.03, 0.01615, 16, 5, 2},
		{0.36, 0.05017, 16, 5, 9},
		{1, 0.3, 8, 3, 0},
	}
	for _, c := range cases {
		times, err := CellTimes(c.mean, c.id, c.procs, c.high, c.offset)
		if err != nil {
			t.Fatalf("CellTimes(%+v): %v", c, err)
		}
		if len(times) != c.procs {
			t.Fatalf("got %d times, want %d", len(times), c.procs)
		}
		sum := stats.Sum(times)
		if math.Abs(sum-c.mean*float64(c.procs)) > 1e-9*(1+sum) {
			t.Errorf("sum = %g, want %g", sum, c.mean*float64(c.procs))
		}
		id, err := stats.EuclideanFromBalance(times)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(id-c.id) > 1e-12 {
			t.Errorf("dispersion = %.12f, want %.12f", id, c.id)
		}
		for p, v := range times {
			if v < 0 {
				t.Errorf("negative time %g at proc %d", v, p)
			}
		}
	}
}

func TestCellTimesUniqueExtremes(t *testing.T) {
	times, err := CellTimes(5, 0.1, 16, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	maxCount, minCount := 0, 0
	s := stats.Summarize(times)
	for _, v := range times {
		if v == s.Max {
			maxCount++
		}
		if v == s.Min {
			minCount++
		}
	}
	if maxCount != 1 || minCount != 1 {
		t.Errorf("extremes not unique: %d max, %d min in %v", maxCount, minCount, times)
	}
}

func TestCellTimesErrors(t *testing.T) {
	cases := []struct {
		name        string
		mean, id    float64
		procs, high int
	}{
		{"procs", 1, 0.1, 1, 1},
		{"mean", -1, 0.1, 4, 1},
		{"id", 1, -0.1, 4, 1},
		{"high zero", 1, 0.1, 4, 0},
		{"high full", 1, 0.1, 4, 4},
		{"id too large", 1, 5, 4, 1},
	}
	for _, c := range cases {
		if _, err := CellTimes(c.mean, c.id, c.procs, c.high, 0); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestReconstructCubeMatchesTables(t *testing.T) {
	cube, err := ReconstructCube()
	if err != nil {
		t.Fatal(err)
	}
	if cube.NumRegions() != paper.NumLoops || cube.NumActivities() != paper.NumActivities || cube.NumProcs() != paper.NumProcs {
		t.Fatalf("dims = %d, %d, %d", cube.NumRegions(), cube.NumActivities(), cube.NumProcs())
	}
	// Table 1: cell times and overall loop times.
	for i := 0; i < paper.NumLoops; i++ {
		for j := 0; j < paper.NumActivities; j++ {
			want, present := paper.CellTime(i, j)
			got, err := cube.CellTime(i, j)
			if err != nil {
				t.Fatal(err)
			}
			if !present {
				if got != 0 {
					t.Errorf("loop %d %s: absent cell has time %g", i+1, paper.ActivityNames[j], got)
				}
				continue
			}
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("loop %d %s: t_ij = %g, published %g", i+1, paper.ActivityNames[j], got, want)
			}
		}
		overall, err := cube.RegionTime(i)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(overall-paper.Table1Overall[i]) > 1e-9 {
			t.Errorf("loop %d overall = %g, published %g", i+1, overall, paper.Table1Overall[i])
		}
	}
	// Table 2: dispersion of each defined cell.
	for i := 0; i < paper.NumLoops; i++ {
		for j := 0; j < paper.NumActivities; j++ {
			want, present := paper.Dispersion(i, j)
			if !present {
				continue
			}
			times, err := cube.ProcTimes(i, j)
			if err != nil {
				t.Fatal(err)
			}
			got, err := stats.EuclideanFromBalance(times)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 1e-12 {
				t.Errorf("loop %d %s: ID = %.6f, published %.5f", i+1, paper.ActivityNames[j], got, want)
			}
		}
	}
	// Program time.
	if got := cube.ProgramTime(); math.Abs(got-paper.ProgramTime) > 1e-9 {
		t.Errorf("ProgramTime = %g, want %g", got, paper.ProgramTime)
	}
}

func TestProfilesSumToOne(t *testing.T) {
	for _, p := range Profiles() {
		for _, procs := range []int{1, 2, 16} {
			if procs == 1 && p.Name() == "one-hot" {
				continue // severity moves work to the only proc; still uniform, but skip
			}
			if procs <= 4 && p.Name() == "block" {
				continue // Profiles() uses a block of 4, invalid for small P
			}
			for _, sev := range []float64{0, 0.3, 1} {
				shares, err := p.Shares(procs, sev)
				if err != nil {
					t.Fatalf("%s procs=%d sev=%g: %v", p.Name(), procs, sev, err)
				}
				if math.Abs(stats.Sum(shares)-1) > 1e-9 {
					t.Errorf("%s procs=%d sev=%g: shares sum to %g", p.Name(), procs, sev, stats.Sum(shares))
				}
				for i, s := range shares {
					if s < -1e-12 {
						t.Errorf("%s: negative share %g at %d", p.Name(), s, i)
					}
				}
			}
		}
	}
}

func TestProfilesZeroSeverityIsBalanced(t *testing.T) {
	for _, p := range Profiles() {
		if p.Name() == "random" {
			continue // random at severity 0 is uniform too, but check anyway below
		}
		shares, err := p.Shares(8, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i, s := range shares {
			if math.Abs(s-0.125) > 1e-12 {
				t.Errorf("%s: share[%d] = %g at severity 0", p.Name(), i, s)
			}
		}
	}
	shares, err := RandomProfile{Seed: 42}.Shares(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range shares {
		if math.Abs(s-0.125) > 1e-12 {
			t.Errorf("random: share[%d] = %g at severity 0", i, s)
		}
	}
}

func TestProfileSeverityMonotone(t *testing.T) {
	// Dispersion grows with severity for the deterministic profiles.
	for _, p := range []Profile{OneHotProfile{}, LinearProfile{}, BlockProfile{High: 4}} {
		prev := -1.0
		for sev := 0.0; sev <= 1.0; sev += 0.1 {
			d, err := ExpectedEuclidean(p, 16, sev)
			if err != nil {
				t.Fatalf("%s: %v", p.Name(), err)
			}
			if d < prev-1e-12 {
				t.Errorf("%s: dispersion decreased at severity %g", p.Name(), sev)
			}
			prev = d
		}
	}
}

func TestProfileValidation(t *testing.T) {
	if _, err := (BalancedProfile{}).Shares(0, 0); err == nil {
		t.Error("procs=0 should fail")
	}
	if _, err := (BalancedProfile{}).Shares(4, -0.1); err == nil {
		t.Error("negative severity should fail")
	}
	if _, err := (BalancedProfile{}).Shares(4, 1.1); err == nil {
		t.Error("severity > 1 should fail")
	}
	if _, err := (OneHotProfile{Proc: 9}).Shares(4, 0.5); err == nil {
		t.Error("out-of-range one-hot proc should fail")
	}
	if _, err := (BlockProfile{High: 4}).Shares(4, 0.5); err == nil {
		t.Error("block covering all procs should fail")
	}
}

func TestLinearProfileSingleProc(t *testing.T) {
	shares, err := LinearProfile{}.Shares(1, 1)
	if err != nil || len(shares) != 1 || shares[0] != 1 {
		t.Errorf("single-proc linear = %v, %v", shares, err)
	}
}

func TestRandomProfileDeterministic(t *testing.T) {
	a, err := RandomProfile{Seed: 5}.Shares(8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomProfile{Seed: 5}.Shares(8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed should give same shares")
		}
	}
	c, err := RandomProfile{Seed: 6}.Shares(8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds should give different shares")
	}
}

func TestSynthesize(t *testing.T) {
	spec := Uniform(3, 2, 4)
	spec.Profile = OneHotProfile{}
	spec.Severity = 0.5
	cube, err := Synthesize(spec)
	if err != nil {
		t.Fatal(err)
	}
	if cube.NumRegions() != 3 || cube.NumActivities() != 2 || cube.NumProcs() != 4 {
		t.Fatalf("dims = %d, %d, %d", cube.NumRegions(), cube.NumActivities(), cube.NumProcs())
	}
	// Every cell has mean time 1.
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			got, err := cube.CellTime(i, j)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-1) > 1e-12 {
				t.Errorf("cell (%d,%d) time = %g", i, j, got)
			}
		}
	}
}

func TestSynthesizeAbsentCells(t *testing.T) {
	spec := Uniform(2, 2, 4)
	spec.CellTime = func(i, j int) float64 {
		if i == 0 && j == 1 {
			return 0 // absent
		}
		return 2
	}
	cube, err := Synthesize(spec)
	if err != nil {
		t.Fatal(err)
	}
	has, err := cube.HasActivity(0, 1)
	if err != nil || has {
		t.Errorf("absent cell: has=%v, %v", has, err)
	}
}

func TestSynthesizeErrors(t *testing.T) {
	spec := Uniform(1, 1, 4)
	spec.CellTime = nil
	if _, err := Synthesize(spec); err == nil || !strings.Contains(err.Error(), "CellTime") {
		t.Errorf("nil CellTime err = %v", err)
	}
	bad := Uniform(1, 1, 0)
	if _, err := Synthesize(bad); err == nil {
		t.Error("zero procs should fail")
	}
	withPT := Uniform(1, 1, 2)
	withPT.ProgramTime = 100
	cube, err := Synthesize(withPT)
	if err != nil || cube.ProgramTime() != 100 {
		t.Errorf("program time = %g, %v", cube.ProgramTime(), err)
	}
}

func TestExpectedEuclideanProperty(t *testing.T) {
	// A synthesized cell's measured dispersion equals the profile's
	// expected dispersion.
	f := func(seed uint64, sevRaw float64) bool {
		sev := math.Abs(math.Mod(sevRaw, 1))
		p := RandomProfile{Seed: seed}
		want, err := ExpectedEuclidean(p, 8, sev)
		if err != nil {
			return false
		}
		spec := Uniform(1, 1, 8)
		spec.Profile = p
		spec.Severity = sev
		cube, err := Synthesize(spec)
		if err != nil {
			return false
		}
		times, err := cube.ProcTimes(0, 0)
		if err != nil {
			return false
		}
		got, err := stats.EuclideanFromBalance(times)
		if err != nil {
			return false
		}
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestSeverityNaNRejected is the regression test for the severity range
// check: `severity < 0 || severity > 1` is false for NaN, so the old
// check let a NaN severity through and every share came out NaN. Every
// profile must reject it.
func TestSeverityNaNRejected(t *testing.T) {
	nan := math.NaN()
	for _, p := range Profiles() {
		if _, err := p.Shares(8, nan); err == nil {
			t.Errorf("%s: NaN severity accepted", p.Name())
		}
		if _, err := p.Shares(8, math.Inf(1)); err == nil {
			t.Errorf("%s: +Inf severity accepted", p.Name())
		}
	}
}

func TestSynthesizeRejectsNonFinite(t *testing.T) {
	spec := Uniform(2, 2, 4)
	spec.CellTime = func(i, j int) float64 { return math.NaN() }
	if _, err := Synthesize(spec); err == nil {
		t.Error("NaN cell time accepted")
	}
	spec = Uniform(2, 2, 4)
	spec.ProgramTime = math.NaN()
	if _, err := Synthesize(spec); err == nil {
		t.Error("NaN program time accepted")
	}
	spec.ProgramTime = math.Inf(1)
	if _, err := Synthesize(spec); err == nil {
		t.Error("Inf program time accepted")
	}
	spec.ProgramTime = 0
	spec.Severity = math.NaN()
	if _, err := Synthesize(spec); err == nil {
		t.Error("NaN severity accepted")
	}
}
