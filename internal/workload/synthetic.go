package workload

import (
	"fmt"
	"math"

	"loadimb/internal/trace"
)

// A Profile shapes how a cell's total time is distributed across the
// processors — the imbalance injection model for synthetic workloads.
type Profile interface {
	// Name identifies the profile in sweeps and benchmarks.
	Name() string
	// Shares returns P nonnegative shares summing to 1. severity in
	// [0, 1] interpolates from perfectly balanced (0) to the profile's
	// most imbalanced shape (1).
	Shares(procs int, severity float64) ([]float64, error)
}

func checkShapeArgs(procs int, severity float64) error {
	if procs < 1 {
		return fmt.Errorf("workload: need at least 1 processor, got %d", procs)
	}
	// Written as a negated interval so NaN is rejected too: the naive
	// `severity < 0 || severity > 1` is false for NaN, and a NaN severity
	// would silently turn every share NaN.
	if !(severity >= 0 && severity <= 1) {
		return fmt.Errorf("workload: severity %g out of range [0, 1]", severity)
	}
	return nil
}

func balancedShares(procs int) []float64 {
	out := make([]float64, procs)
	for i := range out {
		out[i] = 1 / float64(procs)
	}
	return out
}

// BalancedProfile distributes work evenly regardless of severity.
type BalancedProfile struct{}

// Name returns "balanced".
func (BalancedProfile) Name() string { return "balanced" }

// Shares returns the uniform distribution.
func (BalancedProfile) Shares(procs int, severity float64) ([]float64, error) {
	if err := checkShapeArgs(procs, severity); err != nil {
		return nil, err
	}
	return balancedShares(procs), nil
}

// OneHotProfile concentrates extra work on a single processor: at severity
// 1 that processor does everything.
type OneHotProfile struct {
	// Proc is the overloaded processor (default 0).
	Proc int
}

// Name returns "one-hot".
func (OneHotProfile) Name() string { return "one-hot" }

// Shares interpolates between uniform and all-on-one.
func (o OneHotProfile) Shares(procs int, severity float64) ([]float64, error) {
	if err := checkShapeArgs(procs, severity); err != nil {
		return nil, err
	}
	if o.Proc < 0 || o.Proc >= procs {
		return nil, fmt.Errorf("workload: one-hot processor %d out of range [0, %d)", o.Proc, procs)
	}
	out := balancedShares(procs)
	for i := range out {
		if i == o.Proc {
			out[i] = (1-severity)*out[i] + severity
		} else {
			out[i] *= 1 - severity
		}
	}
	return out, nil
}

// LinearProfile skews work linearly across the ranks: at severity 1 rank 0
// gets nothing and the last rank twice the average.
type LinearProfile struct{}

// Name returns "linear".
func (LinearProfile) Name() string { return "linear" }

// Shares tilts the uniform distribution linearly with rank.
func (LinearProfile) Shares(procs int, severity float64) ([]float64, error) {
	if err := checkShapeArgs(procs, severity); err != nil {
		return nil, err
	}
	out := make([]float64, procs)
	if procs == 1 {
		out[0] = 1
		return out, nil
	}
	for i := range out {
		// tilt in [-1, 1] across ranks, zero mean.
		tilt := 2*float64(i)/float64(procs-1) - 1
		out[i] = (1 + severity*tilt) / float64(procs)
	}
	return out, nil
}

// BlockProfile overloads a block of processors: the first High ranks share
// extra work taken from the others.
type BlockProfile struct {
	// High is the number of overloaded processors (default 1).
	High int
}

// Name returns "block".
func (BlockProfile) Name() string { return "block" }

// Shares moves, at severity s, a fraction s/2 of the low group's work onto
// the high group.
func (b BlockProfile) Shares(procs int, severity float64) ([]float64, error) {
	if err := checkShapeArgs(procs, severity); err != nil {
		return nil, err
	}
	high := b.High
	if high == 0 {
		high = 1
	}
	if high < 1 || high >= procs {
		return nil, fmt.Errorf("workload: block size %d out of range [1, %d)", high, procs)
	}
	out := balancedShares(procs)
	moved := severity / 2 * float64(procs-high) / float64(procs)
	for i := range out {
		if i < high {
			out[i] += moved / float64(high)
		} else {
			out[i] -= moved / float64(procs-high)
		}
	}
	return out, nil
}

// RandomProfile draws shares from a deterministic pseudo-random stream, so
// repeated generation is reproducible.
type RandomProfile struct {
	// Seed selects the stream.
	Seed uint64
}

// Name returns "random".
func (RandomProfile) Name() string { return "random" }

// Shares perturbs the uniform distribution with multiplicative noise of
// amplitude severity and renormalizes.
func (r RandomProfile) Shares(procs int, severity float64) ([]float64, error) {
	if err := checkShapeArgs(procs, severity); err != nil {
		return nil, err
	}
	rng := splitMix64{state: r.Seed}
	out := make([]float64, procs)
	total := 0.0
	for i := range out {
		out[i] = 1 + severity*(2*rng.float64()-1)
		total += out[i]
	}
	for i := range out {
		out[i] /= total
	}
	return out, nil
}

// splitMix64 is a tiny deterministic PRNG (SplitMix64); the stdlib's
// math/rand would also do, but an explicit implementation keeps streams
// stable across Go releases.
type splitMix64 struct{ state uint64 }

func (s *splitMix64) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitMix64) float64() float64 {
	return float64(s.next()>>11) / (1 << 53)
}

// Profiles returns the built-in imbalance profiles in a stable order.
func Profiles() []Profile {
	return []Profile{BalancedProfile{}, OneHotProfile{}, LinearProfile{}, BlockProfile{High: 4}, RandomProfile{Seed: 1}}
}

// Spec describes a synthetic workload cube.
type Spec struct {
	// Regions, Activities name the cube dimensions; Procs is P.
	Regions    []string
	Activities []string
	Procs      int
	// CellTime returns the wall clock time t_ij of a cell; nonpositive
	// values mark the activity as absent from the region.
	CellTime func(i, j int) float64
	// Profile shapes the per-processor distribution of each cell; nil
	// means BalancedProfile.
	Profile Profile
	// Severity is the imbalance severity passed to the profile.
	Severity float64
	// ProgramTime overrides the program wall clock time T; 0 derives it
	// from the regions.
	ProgramTime float64
}

// Synthesize builds a cube from the spec.
func Synthesize(spec Spec) (*trace.Cube, error) {
	cube, err := trace.NewCube(spec.Regions, spec.Activities, spec.Procs)
	if err != nil {
		return nil, err
	}
	prof := spec.Profile
	if prof == nil {
		prof = BalancedProfile{}
	}
	if spec.CellTime == nil {
		return nil, fmt.Errorf("workload: Spec.CellTime is required")
	}
	for i := range spec.Regions {
		for j := range spec.Activities {
			tij := spec.CellTime(i, j)
			if math.IsNaN(tij) || math.IsInf(tij, 0) {
				return nil, fmt.Errorf("workload: cell time %g at (%d, %d)", tij, i, j)
			}
			if tij <= 0 {
				continue
			}
			shares, err := prof.Shares(spec.Procs, spec.Severity)
			if err != nil {
				return nil, err
			}
			total := tij * float64(spec.Procs)
			for p, s := range shares {
				if err := cube.Set(i, j, p, total*s); err != nil {
					return nil, err
				}
			}
		}
	}
	if math.IsNaN(spec.ProgramTime) || math.IsInf(spec.ProgramTime, 0) || spec.ProgramTime < 0 {
		return nil, fmt.Errorf("workload: bad program time %g", spec.ProgramTime)
	}
	if spec.ProgramTime > 0 {
		if err := cube.SetProgramTime(spec.ProgramTime); err != nil {
			return nil, err
		}
	}
	return cube, nil
}

// Uniform is a convenience Spec generator: n regions ("R1".."Rn"), k
// activities ("A1".."Ak"), all cells present with unit time.
func Uniform(n, k, procs int) Spec {
	regions := make([]string, n)
	for i := range regions {
		regions[i] = fmt.Sprintf("R%d", i+1)
	}
	activities := make([]string, k)
	for j := range activities {
		activities[j] = fmt.Sprintf("A%d", j+1)
	}
	return Spec{
		Regions:    regions,
		Activities: activities,
		Procs:      procs,
		CellTime:   func(i, j int) float64 { return 1 },
	}
}

// ExpectedEuclidean returns the Euclidean dispersion of a profile's shares,
// useful for calibrating sweeps: the dispersion a cell generated with this
// profile and severity will exhibit.
func ExpectedEuclidean(p Profile, procs int, severity float64) (float64, error) {
	shares, err := p.Shares(procs, severity)
	if err != nil {
		return 0, err
	}
	mean := 1 / float64(procs)
	ss := 0.0
	for _, s := range shares {
		d := s - mean
		ss += d * d
	}
	return math.Sqrt(ss), nil
}
