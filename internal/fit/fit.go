// Package fit provides the statistical workload-characterization layer of
// Medea (Calzarossa, Massari, Merlo, Pantano, Tessera, "Medea: A Tool for
// Workload Characterization of Parallel Systems", reference [1] of the
// paper): fitting standard distribution families to measured durations
// (activity times, message interarrivals) and assessing goodness of fit
// with the Kolmogorov-Smirnov statistic.
//
// The methodology uses these fits to describe the workload a trace
// represents — e.g. whether computation bursts are exponential (memoryless
// service) or lognormal (multiplicative skew), which is what the paper's
// group feeds into the workload models of their simulation studies.
package fit

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Fitting errors.
var (
	// ErrTooFewSamples is returned when fewer than two samples are
	// provided.
	ErrTooFewSamples = errors.New("fit: need at least two samples")
	// ErrBadSupport is returned when samples violate a family's support
	// (e.g. nonpositive values for lognormal).
	ErrBadSupport = errors.New("fit: samples outside the distribution's support")
	// ErrDegenerate is returned when the data has zero variance and the
	// family cannot represent a point mass.
	ErrDegenerate = errors.New("fit: degenerate (constant) sample")
)

// A Model is a fitted distribution.
type Model interface {
	// Name identifies the family.
	Name() string
	// CDF evaluates the cumulative distribution function.
	CDF(x float64) float64
	// Mean returns the fitted distribution's mean.
	Mean() float64
	// String describes the fitted parameters.
	String() string
}

// Exponential is an exponential distribution with rate Lambda.
type Exponential struct {
	// Lambda is the rate parameter (1/mean).
	Lambda float64
}

// Name returns "exponential".
func (Exponential) Name() string { return "exponential" }

// CDF is 1 - exp(-lambda x) for x >= 0.
func (e Exponential) CDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	return 1 - math.Exp(-e.Lambda*x)
}

// Mean returns 1/lambda.
func (e Exponential) Mean() float64 { return 1 / e.Lambda }

// String describes the fit.
func (e Exponential) String() string { return fmt.Sprintf("exponential(lambda=%.4g)", e.Lambda) }

// FitExponential fits by maximum likelihood: lambda = 1/mean. Samples
// must be nonnegative with a positive mean.
func FitExponential(xs []float64) (Exponential, error) {
	mean, _, err := moments(xs)
	if err != nil {
		return Exponential{}, err
	}
	for _, x := range xs {
		if x < 0 {
			return Exponential{}, fmt.Errorf("%w: negative sample %g", ErrBadSupport, x)
		}
	}
	if mean <= 0 {
		return Exponential{}, fmt.Errorf("%w: zero mean", ErrDegenerate)
	}
	return Exponential{Lambda: 1 / mean}, nil
}

// Normal is a normal distribution.
type Normal struct {
	// Mu and Sigma are the location and scale.
	Mu, Sigma float64
}

// Name returns "normal".
func (Normal) Name() string { return "normal" }

// CDF uses the error function.
func (n Normal) CDF(x float64) float64 {
	return 0.5 * (1 + math.Erf((x-n.Mu)/(n.Sigma*math.Sqrt2)))
}

// Mean returns mu.
func (n Normal) Mean() float64 { return n.Mu }

// String describes the fit.
func (n Normal) String() string { return fmt.Sprintf("normal(mu=%.4g, sigma=%.4g)", n.Mu, n.Sigma) }

// FitNormal fits by maximum likelihood: the sample mean and (population)
// standard deviation.
func FitNormal(xs []float64) (Normal, error) {
	mean, variance, err := moments(xs)
	if err != nil {
		return Normal{}, err
	}
	if variance == 0 {
		return Normal{}, ErrDegenerate
	}
	return Normal{Mu: mean, Sigma: math.Sqrt(variance)}, nil
}

// LogNormal is a lognormal distribution: log X is Normal(Mu, Sigma).
type LogNormal struct {
	// Mu and Sigma parameterize the underlying normal.
	Mu, Sigma float64
}

// Name returns "lognormal".
func (LogNormal) Name() string { return "lognormal" }

// CDF is the normal CDF of log x.
func (l LogNormal) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 0.5 * (1 + math.Erf((math.Log(x)-l.Mu)/(l.Sigma*math.Sqrt2)))
}

// Mean returns exp(mu + sigma^2/2).
func (l LogNormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// String describes the fit.
func (l LogNormal) String() string {
	return fmt.Sprintf("lognormal(mu=%.4g, sigma=%.4g)", l.Mu, l.Sigma)
}

// FitLogNormal fits by maximum likelihood on the logs. Samples must be
// strictly positive.
func FitLogNormal(xs []float64) (LogNormal, error) {
	if len(xs) < 2 {
		return LogNormal{}, ErrTooFewSamples
	}
	logs := make([]float64, len(xs))
	for i, x := range xs {
		if x <= 0 {
			return LogNormal{}, fmt.Errorf("%w: nonpositive sample %g", ErrBadSupport, x)
		}
		logs[i] = math.Log(x)
	}
	mean, variance, err := moments(logs)
	if err != nil {
		return LogNormal{}, err
	}
	if variance == 0 {
		return LogNormal{}, ErrDegenerate
	}
	return LogNormal{Mu: mean, Sigma: math.Sqrt(variance)}, nil
}

// Uniform is a continuous uniform distribution on [A, B].
type Uniform struct {
	// A and B are the endpoints.
	A, B float64
}

// Name returns "uniform".
func (Uniform) Name() string { return "uniform" }

// CDF ramps linearly between the endpoints.
func (u Uniform) CDF(x float64) float64 {
	switch {
	case x <= u.A:
		return 0
	case x >= u.B:
		return 1
	default:
		return (x - u.A) / (u.B - u.A)
	}
}

// Mean returns the midpoint.
func (u Uniform) Mean() float64 { return (u.A + u.B) / 2 }

// String describes the fit.
func (u Uniform) String() string { return fmt.Sprintf("uniform(a=%.4g, b=%.4g)", u.A, u.B) }

// FitUniform fits by an unbiased variant of the extremes: the MLE [min,
// max] widened by the expected gap (max-min)/(n-1) on each side.
func FitUniform(xs []float64) (Uniform, error) {
	if len(xs) < 2 {
		return Uniform{}, ErrTooFewSamples
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if lo == hi {
		return Uniform{}, ErrDegenerate
	}
	pad := (hi - lo) / float64(len(xs)-1)
	return Uniform{A: lo - pad, B: hi + pad}, nil
}

// Weibull is a Weibull distribution with shape K and scale Lambda.
type Weibull struct {
	// K is the shape; Lambda the scale.
	K, Lambda float64
}

// Name returns "weibull".
func (Weibull) Name() string { return "weibull" }

// CDF is 1 - exp(-(x/lambda)^k) for x >= 0.
func (w Weibull) CDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	return 1 - math.Exp(-math.Pow(x/w.Lambda, w.K))
}

// Mean returns lambda * Gamma(1 + 1/k).
func (w Weibull) Mean() float64 { return w.Lambda * math.Gamma(1+1/w.K) }

// String describes the fit.
func (w Weibull) String() string { return fmt.Sprintf("weibull(k=%.4g, lambda=%.4g)", w.K, w.Lambda) }

// FitWeibull fits by maximum likelihood, solving the shape equation with
// bisection on k in [0.05, 50] and then the scale in closed form. Samples
// must be strictly positive.
func FitWeibull(xs []float64) (Weibull, error) {
	if len(xs) < 2 {
		return Weibull{}, ErrTooFewSamples
	}
	logSum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return Weibull{}, fmt.Errorf("%w: nonpositive sample %g", ErrBadSupport, x)
		}
		logSum += math.Log(x)
	}
	n := float64(len(xs))
	meanLog := logSum / n
	// MLE shape equation: f(k) = sum(x^k log x)/sum(x^k) - 1/k - meanLog = 0.
	f := func(k float64) float64 {
		num, den := 0.0, 0.0
		for _, x := range xs {
			xk := math.Pow(x, k)
			num += xk * math.Log(x)
			den += xk
		}
		return num/den - 1/k - meanLog
	}
	lo, hi := 0.05, 50.0
	flo, fhi := f(lo), f(hi)
	if flo > 0 || fhi < 0 {
		return Weibull{}, fmt.Errorf("%w: shape outside [%g, %g]", ErrDegenerate, lo, hi)
	}
	for i := 0; i < 200 && hi-lo > 1e-10; i++ {
		mid := (lo + hi) / 2
		if f(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	k := (lo + hi) / 2
	sumXk := 0.0
	for _, x := range xs {
		sumXk += math.Pow(x, k)
	}
	lambda := math.Pow(sumXk/n, 1/k)
	return Weibull{K: k, Lambda: lambda}, nil
}

// moments returns the sample mean and population variance.
func moments(xs []float64) (mean, variance float64, err error) {
	if len(xs) < 2 {
		return 0, 0, ErrTooFewSamples
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		variance += d * d
	}
	variance /= float64(len(xs))
	return mean, variance, nil
}

// KolmogorovSmirnov returns the KS statistic: the maximum absolute
// difference between the empirical CDF of the samples and the model's
// CDF. Smaller is a better fit.
func KolmogorovSmirnov(m Model, xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrTooFewSamples
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	d := 0.0
	for i, x := range sorted {
		c := m.CDF(x)
		// Compare against the empirical CDF just before and at x.
		if diff := math.Abs(c - float64(i)/n); diff > d {
			d = diff
		}
		if diff := math.Abs(c - float64(i+1)/n); diff > d {
			d = diff
		}
	}
	return d, nil
}

// Fitted pairs a model with its KS statistic.
type Fitted struct {
	// Model is the fitted distribution.
	Model Model
	// KS is the Kolmogorov-Smirnov distance to the data.
	KS float64
}

// FitAll fits every family that accepts the data and returns the results
// sorted best-first by KS distance. Families whose support or fitting
// preconditions the data violates are skipped; at least one family must
// succeed.
func FitAll(xs []float64) ([]Fitted, error) {
	if len(xs) < 2 {
		return nil, ErrTooFewSamples
	}
	var out []Fitted
	try := func(m Model, err error) {
		if err != nil {
			return
		}
		ks, err := KolmogorovSmirnov(m, xs)
		if err != nil {
			return
		}
		out = append(out, Fitted{Model: m, KS: ks})
	}
	{
		m, err := FitExponential(xs)
		try(m, err)
	}
	{
		m, err := FitNormal(xs)
		try(m, err)
	}
	{
		m, err := FitLogNormal(xs)
		try(m, err)
	}
	{
		m, err := FitUniform(xs)
		try(m, err)
	}
	{
		m, err := FitWeibull(xs)
		try(m, err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("fit: no family fits the data")
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].KS < out[b].KS })
	return out, nil
}

// BestFit returns the family with the smallest KS distance.
func BestFit(xs []float64) (Fitted, error) {
	all, err := FitAll(xs)
	if err != nil {
		return Fitted{}, err
	}
	return all[0], nil
}
