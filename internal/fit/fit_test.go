package fit

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

const nSamples = 4000

func sampleExp(rng *rand.Rand, lambda float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.ExpFloat64() / lambda
	}
	return out
}

func sampleNormal(rng *rand.Rand, mu, sigma float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = mu + sigma*rng.NormFloat64()
	}
	return out
}

func sampleLogNormal(rng *rand.Rand, mu, sigma float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Exp(mu + sigma*rng.NormFloat64())
	}
	return out
}

func sampleUniform(rng *rand.Rand, a, b float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = a + (b-a)*rng.Float64()
	}
	return out
}

func sampleWeibull(rng *rand.Rand, k, lambda float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		// Inverse CDF sampling.
		u := rng.Float64()
		out[i] = lambda * math.Pow(-math.Log(1-u), 1/k)
	}
	return out
}

func TestFitExponential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m, err := FitExponential(sampleExp(rng, 2.5, nSamples))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Lambda-2.5) > 0.15 {
		t.Errorf("lambda = %g, want ~2.5", m.Lambda)
	}
	if math.Abs(m.Mean()-0.4) > 0.03 {
		t.Errorf("mean = %g, want ~0.4", m.Mean())
	}
	if _, err := FitExponential([]float64{1, -1}); !errors.Is(err, ErrBadSupport) {
		t.Errorf("negative support err = %v", err)
	}
	if _, err := FitExponential([]float64{0, 0}); !errors.Is(err, ErrDegenerate) {
		t.Errorf("zero mean err = %v", err)
	}
	if _, err := FitExponential([]float64{1}); !errors.Is(err, ErrTooFewSamples) {
		t.Errorf("single sample err = %v", err)
	}
	if m.CDF(-1) != 0 {
		t.Error("CDF below support should be 0")
	}
}

func TestFitNormal(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, err := FitNormal(sampleNormal(rng, 10, 3, nSamples))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Mu-10) > 0.2 || math.Abs(m.Sigma-3) > 0.2 {
		t.Errorf("fit = %v, want mu 10 sigma 3", m)
	}
	if math.Abs(m.CDF(m.Mu)-0.5) > 1e-9 {
		t.Errorf("CDF(mu) = %g", m.CDF(m.Mu))
	}
	if _, err := FitNormal([]float64{5, 5, 5}); !errors.Is(err, ErrDegenerate) {
		t.Errorf("constant err = %v", err)
	}
}

func TestFitLogNormal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, err := FitLogNormal(sampleLogNormal(rng, 1, 0.5, nSamples))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Mu-1) > 0.05 || math.Abs(m.Sigma-0.5) > 0.05 {
		t.Errorf("fit = %v, want mu 1 sigma 0.5", m)
	}
	if _, err := FitLogNormal([]float64{1, 0}); !errors.Is(err, ErrBadSupport) {
		t.Errorf("zero sample err = %v", err)
	}
	if m.CDF(0) != 0 {
		t.Error("CDF at 0 should be 0")
	}
}

func TestFitUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m, err := FitUniform(sampleUniform(rng, 2, 8, nSamples))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.A-2) > 0.1 || math.Abs(m.B-8) > 0.1 {
		t.Errorf("fit = %v, want [2, 8]", m)
	}
	if m.CDF(1) != 0 || m.CDF(9) != 1 {
		t.Error("CDF outside support wrong")
	}
	if math.Abs(m.Mean()-5) > 0.1 {
		t.Errorf("mean = %g", m.Mean())
	}
	if _, err := FitUniform([]float64{3, 3}); !errors.Is(err, ErrDegenerate) {
		t.Errorf("constant err = %v", err)
	}
}

func TestFitWeibull(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m, err := FitWeibull(sampleWeibull(rng, 1.7, 4, nSamples))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.K-1.7) > 0.15 || math.Abs(m.Lambda-4) > 0.2 {
		t.Errorf("fit = %v, want k 1.7 lambda 4", m)
	}
	if _, err := FitWeibull([]float64{1, -2}); !errors.Is(err, ErrBadSupport) {
		t.Errorf("negative err = %v", err)
	}
	if m.CDF(-1) != 0 {
		t.Error("CDF below support should be 0")
	}
	// Weibull with k=1 is exponential: means should agree.
	exp := sampleExp(rng, 1.5, nSamples)
	w, err := FitWeibull(exp)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w.K-1) > 0.1 {
		t.Errorf("exponential data fitted k = %g, want ~1", w.K)
	}
}

func TestKolmogorovSmirnov(t *testing.T) {
	// The exact generating model has a small KS distance; a wrong model
	// has a larger one.
	rng := rand.New(rand.NewSource(6))
	xs := sampleExp(rng, 1, nSamples)
	right, err := KolmogorovSmirnov(Exponential{Lambda: 1}, xs)
	if err != nil {
		t.Fatal(err)
	}
	wrong, err := KolmogorovSmirnov(Exponential{Lambda: 10}, xs)
	if err != nil {
		t.Fatal(err)
	}
	if right > 0.05 {
		t.Errorf("true-model KS = %g, want small", right)
	}
	if wrong < 5*right {
		t.Errorf("wrong model KS %g should dwarf %g", wrong, right)
	}
	if _, err := KolmogorovSmirnov(Exponential{Lambda: 1}, nil); !errors.Is(err, ErrTooFewSamples) {
		t.Errorf("empty err = %v", err)
	}
}

func TestBestFitRecoversFamily(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := []struct {
		name string
		data []float64
	}{
		// The normal case straddles zero so the positive-support
		// families are excluded (a far-from-zero normal is nearly
		// indistinguishable from a small-sigma lognormal).
		{"exponential", sampleExp(rng, 3, nSamples)},
		{"normal", sampleNormal(rng, 0, 2, nSamples)},
		{"lognormal", sampleLogNormal(rng, 0, 1.2, nSamples)},
		{"uniform", sampleUniform(rng, 1, 2, nSamples)},
	}
	for _, c := range cases {
		best, err := BestFit(c.data)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		got := best.Model.Name()
		// Weibull subsumes the exponential (k=1), so accept it there.
		if got != c.name && !(c.name == "exponential" && got == "weibull") {
			t.Errorf("%s data: best fit %s (KS %.4f)", c.name, got, best.KS)
		}
	}
}

func TestFitAllSortedAndSkipsBadFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	// Data with negative values: exponential/lognormal/weibull are
	// skipped, normal and uniform remain.
	xs := sampleNormal(rng, 0, 1, 500)
	all, err := FitAll(xs)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Fatalf("families = %d, want 2 (normal, uniform)", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].KS < all[i-1].KS {
			t.Error("FitAll not sorted by KS")
		}
	}
	if all[0].Model.Name() != "normal" {
		t.Errorf("best = %s, want normal", all[0].Model.Name())
	}
	if _, err := FitAll([]float64{1}); !errors.Is(err, ErrTooFewSamples) {
		t.Errorf("too-few err = %v", err)
	}
}

func TestModelStrings(t *testing.T) {
	models := []Model{
		Exponential{Lambda: 1}, Normal{Mu: 0, Sigma: 1},
		LogNormal{Mu: 0, Sigma: 1}, Uniform{A: 0, B: 1}, Weibull{K: 2, Lambda: 1},
	}
	for _, m := range models {
		if m.Name() == "" || m.String() == "" {
			t.Errorf("model %T has empty name or string", m)
		}
		// CDF is monotone on a small grid.
		prev := -1.0
		for x := -1.0; x <= 5; x += 0.25 {
			c := m.CDF(x)
			if c < prev-1e-12 || c < 0 || c > 1 {
				t.Errorf("%s: CDF not a CDF at %g", m.Name(), x)
			}
			prev = c
		}
	}
}
