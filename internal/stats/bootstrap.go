package stats

import (
	"fmt"
	"sort"
)

// CI is a bootstrap confidence interval for an index of dispersion.
type CI struct {
	// Point is the index on the original data.
	Point float64
	// Low and High bound the central confidence mass.
	Low, High float64
	// Confidence is the nominal level, e.g. 0.95.
	Confidence float64
}

// Contains reports whether v lies inside the interval.
func (c CI) Contains(v float64) bool { return v >= c.Low && v <= c.High }

// Width returns High - Low.
func (c CI) Width() float64 { return c.High - c.Low }

// BootstrapCI estimates a confidence interval for an index of dispersion
// applied to standardized values, by resampling the processors with
// replacement (percentile bootstrap). A point index says the processors
// were imbalanced in this run; the interval says how stable that verdict
// is under resampling — one of the "new criteria" the paper's conclusions
// call for. The resampling stream is seeded, so results are reproducible.
func BootstrapCI(idx Index, xs []float64, resamples int, confidence float64, seed uint64) (CI, error) {
	if len(xs) < 2 {
		return CI{}, fmt.Errorf("%w: need at least 2 values", ErrEmpty)
	}
	if resamples < 10 {
		return CI{}, fmt.Errorf("stats: need at least 10 resamples, got %d", resamples)
	}
	if confidence <= 0 || confidence >= 1 {
		return CI{}, fmt.Errorf("stats: confidence %g out of (0, 1)", confidence)
	}
	std, err := Standardize(xs)
	if err != nil {
		return CI{}, err
	}
	point := idx.Of(std)
	rng := bootstrapRNG{state: seed ^ 0x9e3779b97f4a7c15}
	values := make([]float64, 0, resamples)
	sample := make([]float64, len(xs))
	for r := 0; r < resamples; r++ {
		total := 0.0
		for i := range sample {
			sample[i] = xs[rng.intn(len(xs))]
			total += sample[i]
		}
		if total == 0 {
			continue // degenerate resample of all-zero entries
		}
		for i := range sample {
			sample[i] /= total
		}
		values = append(values, idx.Of(sample))
	}
	if len(values) == 0 {
		return CI{}, ErrZeroSum
	}
	sort.Float64s(values)
	alpha := (1 - confidence) / 2
	low := values[int(alpha*float64(len(values)))]
	hiIdx := int((1 - alpha) * float64(len(values)))
	if hiIdx >= len(values) {
		hiIdx = len(values) - 1
	}
	high := values[hiIdx]
	return CI{Point: point, Low: low, High: high, Confidence: confidence}, nil
}

// bootstrapRNG is a SplitMix64 stream, self-contained so bootstrap
// results stay stable across Go releases.
type bootstrapRNG struct{ state uint64 }

func (s *bootstrapRNG) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *bootstrapRNG) intn(n int) int {
	return int(s.next() % uint64(n))
}
