package stats

import (
	"fmt"
	"math"
)

// Histogram bins a data set into equal-width buckets; workload
// characterization uses it to visualize burst-length distributions.
type Histogram struct {
	// Min and Max are the data extent.
	Min, Max float64
	// Counts holds the per-bin tallies, low to high.
	Counts []int
	// Total is the number of samples.
	Total int
}

// NewHistogram bins xs into the given number of buckets. All values land
// in a bin (the maximum goes into the last one).
func NewHistogram(xs []float64, bins int) (*Histogram, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	if bins < 1 {
		return nil, fmt.Errorf("stats: need at least 1 bin, got %d", bins)
	}
	s := Summarize(xs)
	h := &Histogram{Min: s.Min, Max: s.Max, Counts: make([]int, bins), Total: len(xs)}
	span := s.Max - s.Min
	for _, x := range xs {
		idx := 0
		if span > 0 {
			idx = int((x - s.Min) / span * float64(bins))
			if idx >= bins {
				idx = bins - 1
			}
		}
		h.Counts[idx]++
	}
	return h, nil
}

// Mode returns the index of the fullest bin (earliest on ties).
func (h *Histogram) Mode() int {
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	return best
}

// BinCenter returns the midpoint value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	width := (h.Max - h.Min) / float64(len(h.Counts))
	return h.Min + width*(float64(i)+0.5)
}

// ASCII renders the histogram as horizontal bars scaled to maxWidth
// characters.
func (h *Histogram) ASCII(maxWidth int) string {
	if maxWidth < 1 {
		maxWidth = 40
	}
	peak := 0
	for _, c := range h.Counts {
		if c > peak {
			peak = c
		}
	}
	out := ""
	for i, c := range h.Counts {
		bar := 0
		if peak > 0 {
			bar = c * maxWidth / peak
		}
		out += fmt.Sprintf("%12.5g |%s %d\n", h.BinCenter(i), repeat('#', bar), c)
	}
	return out
}

func repeat(r rune, n int) string {
	out := make([]rune, n)
	for i := range out {
		out[i] = r
	}
	return string(out)
}

// Autocorrelation returns the lag-k autocorrelation coefficients of the
// series for k = 0..maxLag, normalized so lag 0 is 1. Trace analysis uses
// it to detect periodic behavior in activity bursts (iterative programs
// show strong periodicity at the iteration length). A constant series
// returns 1 at lag 0 and 0 elsewhere.
func Autocorrelation(xs []float64, maxLag int) ([]float64, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	if maxLag < 0 || maxLag >= len(xs) {
		return nil, fmt.Errorf("stats: max lag %d out of [0, %d)", maxLag, len(xs))
	}
	mean := Mean(xs)
	denom := 0.0
	for _, x := range xs {
		d := x - mean
		denom += d * d
	}
	out := make([]float64, maxLag+1)
	out[0] = 1
	if denom == 0 {
		return out, nil
	}
	for lag := 1; lag <= maxLag; lag++ {
		num := 0.0
		for i := 0; i+lag < len(xs); i++ {
			num += (xs[i] - mean) * (xs[i+lag] - mean)
		}
		out[lag] = num / denom
	}
	return out, nil
}

// DominantPeriod returns the lag in [minLag, len(acf)) with the largest
// autocorrelation, or 0 when no lag has a positive coefficient — a crude
// but robust period detector for iterative traces.
func DominantPeriod(acf []float64, minLag int) int {
	if minLag < 1 {
		minLag = 1
	}
	best, bestVal := 0, 0.0
	for lag := minLag; lag < len(acf); lag++ {
		if acf[lag] > bestVal {
			best, bestVal = lag, acf[lag]
		}
	}
	if bestVal <= 0 || math.IsNaN(bestVal) {
		return 0
	}
	return best
}
