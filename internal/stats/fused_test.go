package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// TestFusedEuclideanBitIdentical checks the fused OfBalance path returns
// exactly — bit for bit — what the two-step standardize-then-measure
// computation returns, across sizes and magnitudes.
func TestFusedEuclideanBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(64)
		scale := math.Pow(10, float64(rng.Intn(13)-6))
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * scale
		}
		if rng.Intn(4) == 0 && n > 1 {
			xs[rng.Intn(n)] = 0 // idle processors are common
		}

		std, err := Standardize(xs)
		if err != nil {
			t.Fatalf("Standardize: %v", err)
		}
		want := Euclidean.Of(std)

		b, ok := Euclidean.(BalanceIndex)
		if !ok {
			t.Fatal("Euclidean does not implement BalanceIndex")
		}
		got, err := b.OfBalance(xs)
		if err != nil {
			t.Fatalf("OfBalance: %v", err)
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("trial %d (n=%d): fused %v, two-step %v (bits %x vs %x)",
				trial, n, got, want, math.Float64bits(got), math.Float64bits(want))
		}

		viaDispersion, err := DispersionFromBalance(Euclidean, xs)
		if err != nil {
			t.Fatalf("DispersionFromBalance: %v", err)
		}
		if math.Float64bits(viaDispersion) != math.Float64bits(want) {
			t.Fatalf("trial %d: DispersionFromBalance %v, two-step %v", trial, viaDispersion, want)
		}
		scratch := make([]float64, 0, n)
		viaInto, err := DispersionFromBalanceInto(Euclidean, xs, scratch)
		if err != nil {
			t.Fatalf("DispersionFromBalanceInto: %v", err)
		}
		if math.Float64bits(viaInto) != math.Float64bits(want) {
			t.Fatalf("trial %d: DispersionFromBalanceInto %v, two-step %v", trial, viaInto, want)
		}
	}
}

// TestFusedEuclideanErrors checks the fused path reports the same error
// classes as the two-step one.
func TestFusedEuclideanErrors(t *testing.T) {
	b := Euclidean.(BalanceIndex)
	if _, err := b.OfBalance([]float64{0, 0, 0}); !errors.Is(err, ErrZeroSum) {
		t.Errorf("OfBalance(zeros) error = %v, want ErrZeroSum", err)
	}
	if _, err := b.OfBalance([]float64{1, -2, 3}); !errors.Is(err, ErrNegative) {
		t.Errorf("OfBalance(negative) error = %v, want ErrNegative", err)
	}
	if _, err := b.OfBalance(nil); err == nil {
		t.Error("OfBalance(nil) succeeded, want error")
	}
}

// TestStandardizeInto checks buffer reuse and aliasing: dst capacity is
// reused, and standardizing a slice into itself is allowed.
func TestStandardizeInto(t *testing.T) {
	xs := []float64{2, 6, 12}
	want, err := Standardize(xs)
	if err != nil {
		t.Fatalf("Standardize: %v", err)
	}

	dst := make([]float64, 0, 8)
	got, err := StandardizeInto(dst, xs)
	if err != nil {
		t.Fatalf("StandardizeInto: %v", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("StandardizeInto[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	if &got[0] != &dst[:1][0] {
		t.Error("StandardizeInto did not reuse dst's capacity")
	}
	if xs[0] != 2 || xs[1] != 6 || xs[2] != 12 {
		t.Errorf("StandardizeInto mutated its input: %v", xs)
	}

	// In-place: dst aliases xs.
	alias := []float64{2, 6, 12}
	got, err = StandardizeInto(alias, alias)
	if err != nil {
		t.Fatalf("StandardizeInto (aliased): %v", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("aliased StandardizeInto[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}
