// Package stats provides the statistical primitives of the load-imbalance
// methodology: standardization of wall-clock times, indices of dispersion,
// descriptive summaries and percentiles.
//
// The methodology (Calzarossa, Massari, Tessera 2003) measures the spread of
// the times spent by P processors with respect to the perfectly balanced
// condition in which every processor spends exactly the same time. Times are
// first standardized so that they sum to one; an index of dispersion is then
// computed on the standardized values. The paper selects the Euclidean
// distance between each standardized time and the common average 1/P; this
// package also provides the alternative indices discussed in the paper
// (variance, coefficient of variation, mean absolute deviation, maximum,
// range) plus the Gini coefficient used by later tools.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrZeroSum is returned by Standardize when the input sums to zero, which
// happens when an activity is not performed at all within a code region.
// Callers typically treat the corresponding dispersion index as undefined.
var ErrZeroSum = errors.New("stats: cannot standardize values summing to zero")

// ErrEmpty is returned when an operation requires at least one value.
var ErrEmpty = errors.New("stats: empty data set")

// ErrNegative is returned when a wall-clock value is negative.
var ErrNegative = errors.New("stats: negative wall-clock value")

// Sum returns the sum of xs. An empty slice sums to zero.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Standardize divides every element of xs by the sum of xs so that the
// result sums to one. It validates that no element is negative. The input
// slice is not modified.
func Standardize(xs []float64) ([]float64, error) {
	return StandardizeInto(nil, xs)
}

// StandardizeInto is Standardize writing into dst, reusing its capacity:
// hot loops pass a per-worker scratch buffer and standardize without
// allocating. It returns the resulting slice of length len(xs); dst and xs
// may be the same slice (in-place standardization).
func StandardizeInto(dst, xs []float64) ([]float64, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	sum, err := validSum(xs)
	if err != nil {
		return nil, err
	}
	dst = append(dst[:0], xs...)
	for i := range dst {
		dst[i] /= sum
	}
	return dst, nil
}

// validSum validates that no element of xs is negative and returns the
// sum, or ErrZeroSum when everything is zero — the shared prologue of
// every standardization.
func validSum(xs []float64) (float64, error) {
	sum := 0.0
	for i, x := range xs {
		if x < 0 {
			return 0, fmt.Errorf("%w: element %d is %g", ErrNegative, i, x)
		}
		sum += x
	}
	if sum == 0 {
		return 0, ErrZeroSum
	}
	return sum, nil
}

// An Index is an index of dispersion: a nonnegative measure of the spread of
// a data set that is zero exactly when all elements are equal. Indices are
// usually applied to standardized values (see Standardize) so that they
// provide a relative measure comparable across data sets of different
// magnitude.
type Index interface {
	// Name identifies the index in reports and benchmarks.
	Name() string
	// Of computes the index over xs. It returns 0 for data sets with
	// fewer than one element.
	Of(xs []float64) float64
}

// IndexFunc adapts an ordinary function to the Index interface.
type IndexFunc struct {
	// IndexName is returned by Name.
	IndexName string
	// F computes the index.
	F func(xs []float64) float64
}

// Name returns the index name.
func (f IndexFunc) Name() string { return f.IndexName }

// Of applies the underlying function.
func (f IndexFunc) Of(xs []float64) float64 { return f.F(xs) }

// A BalanceIndex is an index that can evaluate itself on the standardized
// data directly from the raw values, fusing Standardize and Of into one
// call with no intermediate slice. DispersionFromBalance takes this fast
// path automatically. OfBalance must return exactly what
// idx.Of(Standardize(xs)) would — same values bit for bit, same errors.
type BalanceIndex interface {
	Index
	// OfBalance computes the index of the standardized xs without
	// materializing the standardized slice.
	OfBalance(xs []float64) (float64, error)
}

// Euclidean is the paper's index of dispersion: the Euclidean distance
// between the data set and the vector whose every component equals the data
// set's mean,
//
//	sqrt( sum_p (x_p - mean(x))^2 ).
//
// On standardized values the mean is 1/P, so the index measures the distance
// from the perfectly balanced condition. It implements BalanceIndex, so
// the standardize-then-measure pipeline runs fused and allocation-free.
var Euclidean Index = euclideanIndex{}

// euclideanIndex implements the paper's index with a fused balance path.
type euclideanIndex struct{}

func (euclideanIndex) Name() string            { return "euclidean" }
func (euclideanIndex) Of(xs []float64) float64 { return euclidean(xs) }

// OfBalance computes euclidean(Standardize(xs)) in three passes over the
// raw values and zero allocations. Every arithmetic step mirrors the
// unfused pipeline term for term — each standardized value is the same
// x/sum division, the mean is the same left-to-right sum over those
// quotients divided by n — so the result is bit-identical.
func (euclideanIndex) OfBalance(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum, err := validSum(xs)
	if err != nil {
		return 0, err
	}
	norm := 0.0
	for _, x := range xs {
		norm += x / sum
	}
	m := norm / float64(len(xs))
	ss := 0.0
	for _, x := range xs {
		d := x/sum - m
		ss += d * d
	}
	return math.Sqrt(ss), nil
}

func euclidean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss)
}

// Variance is the population variance index of dispersion.
var Variance Index = IndexFunc{"variance", variance}

func variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs))
}

// StdDev is the population standard deviation index of dispersion.
var StdDev Index = IndexFunc{"stddev", func(xs []float64) float64 {
	return math.Sqrt(variance(xs))
}}

// CoV is the coefficient of variation: standard deviation divided by mean.
// It is zero when the mean is zero.
var CoV Index = IndexFunc{"cov", func(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return math.Sqrt(variance(xs)) / m
}}

// MAD is the mean absolute deviation from the mean.
var MAD Index = IndexFunc{"mad", func(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		s += math.Abs(x - m)
	}
	return s / float64(len(xs))
}}

// Max is the maximum element, one of the simplest majorization-compatible
// indices: if a majorizes b then max(a) >= max(b).
var Max Index = IndexFunc{"max", func(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}}

// Range is the difference between the maximum and minimum elements.
var Range Index = IndexFunc{"range", func(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return hi - lo
}}

// Gini is the Gini coefficient, a normalized measure of inequality in
// [0, 1-1/n] for nonnegative data. It is zero when all elements are equal
// and is compatible with the majorization partial order.
var Gini Index = IndexFunc{"gini", gini}

func gini(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	sum := Sum(xs)
	if sum == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	// Gini = (2*sum_i i*x_(i) )/(n*sum) - (n+1)/n with 1-based ranks on
	// ascending order.
	weighted := 0.0
	for i, x := range sorted {
		weighted += float64(i+1) * x
	}
	return 2*weighted/(float64(n)*sum) - float64(n+1)/float64(n)
}

// Indices lists every built-in index of dispersion, in a stable order used
// by ablation reports.
func Indices() []Index {
	return []Index{Euclidean, Variance, StdDev, CoV, MAD, Max, Range, Gini}
}

// IndexByName returns the built-in index with the given name, or false if
// no such index exists.
func IndexByName(name string) (Index, bool) {
	for _, idx := range Indices() {
		if idx.Name() == name {
			return idx, true
		}
	}
	return nil, false
}

// Percentile returns the q-th percentile (0 <= q <= 100) of xs using linear
// interpolation between closest ranks. It returns an error for empty input
// or out-of-range q.
func Percentile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 100 {
		return 0, fmt.Errorf("stats: percentile %g out of range [0, 100]", q)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Summary holds descriptive statistics of a data set, computed in a single
// pass with Welford's algorithm for numerical stability.
type Summary struct {
	N        int
	Min, Max float64
	Mean     float64
	Variance float64 // population variance
	Sum      float64
}

// StdDev returns the population standard deviation.
func (s Summary) StdDev() float64 { return math.Sqrt(s.Variance) }

// CoV returns the coefficient of variation, or 0 when the mean is zero.
func (s Summary) CoV() float64 {
	if s.Mean == 0 {
		return 0
	}
	return s.StdDev() / s.Mean
}

// Summarize computes a Summary of xs. An empty input yields a zero Summary.
func Summarize(xs []float64) Summary {
	var a Accumulator
	for _, x := range xs {
		a.Add(x)
	}
	return a.Summary()
}

// DispersionFromBalance computes an index of dispersion of xs after
// standardization. It is the paper's two-step "standardize, then measure
// spread" operation in one call. It returns 0 with ErrZeroSum when the data
// sums to zero (activity absent) and propagates other validation errors.
// Indices implementing BalanceIndex (the paper's Euclidean) run fused,
// with no intermediate allocation.
func DispersionFromBalance(idx Index, xs []float64) (float64, error) {
	if b, ok := idx.(BalanceIndex); ok {
		return b.OfBalance(xs)
	}
	std, err := Standardize(xs)
	if err != nil {
		return 0, err
	}
	return idx.Of(std), nil
}

// DispersionFromBalanceInto is DispersionFromBalance with a caller-owned
// scratch buffer for the standardized values, so every index runs without
// allocating when scratch has capacity len(xs). With a buffer available
// the materialized path beats the fused one even for BalanceIndex
// implementations — one division per element instead of two — and
// OfBalance's contract guarantees both return the same bits.
func DispersionFromBalanceInto(idx Index, xs, scratch []float64) (float64, error) {
	if cap(scratch) < len(xs) {
		if b, ok := idx.(BalanceIndex); ok {
			return b.OfBalance(xs)
		}
	}
	std, err := StandardizeInto(scratch, xs)
	if err != nil {
		return 0, err
	}
	return idx.Of(std), nil
}

// EuclideanFromBalance is DispersionFromBalance with the paper's Euclidean
// index.
func EuclideanFromBalance(xs []float64) (float64, error) {
	return DispersionFromBalance(Euclidean, xs)
}

// WeightedMean returns the weighted average of values with the given
// weights. Pairs with weight zero are ignored, so callers may pass undefined
// values (e.g. dispersion of an absent activity) as long as their weight is
// zero. It returns an error when lengths differ, when any weight is
// negative, or when all weights are zero.
func WeightedMean(values, weights []float64) (float64, error) {
	if len(values) != len(weights) {
		return 0, fmt.Errorf("stats: %d values but %d weights", len(values), len(weights))
	}
	if len(values) == 0 {
		return 0, ErrEmpty
	}
	num, den := 0.0, 0.0
	for i, w := range weights {
		if w < 0 {
			return 0, fmt.Errorf("stats: negative weight %g at %d", w, i)
		}
		num += w * values[i]
		den += w
	}
	if den == 0 {
		return 0, ErrZeroSum
	}
	return num / den, nil
}
