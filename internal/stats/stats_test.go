package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

const eps = 1e-12

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSumMean(t *testing.T) {
	if got := Sum(nil); got != 0 {
		t.Errorf("Sum(nil) = %g, want 0", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %g, want 0", got)
	}
	xs := []float64{1, 2, 3, 4}
	if got := Sum(xs); got != 10 {
		t.Errorf("Sum = %g, want 10", got)
	}
	if got := Mean(xs); got != 2.5 {
		t.Errorf("Mean = %g, want 2.5", got)
	}
}

func TestStandardize(t *testing.T) {
	got, err := Standardize([]float64{2, 2, 4})
	if err != nil {
		t.Fatalf("Standardize: %v", err)
	}
	want := []float64{0.25, 0.25, 0.5}
	for i := range want {
		if !almost(got[i], want[i], eps) {
			t.Errorf("Standardize[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestStandardizeSumsToOne(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			xs = append(xs, math.Abs(math.Mod(x, 1e9)))
		}
		std, err := Standardize(xs)
		if err != nil {
			// Acceptable only for empty or all-zero input.
			return len(xs) == 0 || Sum(xs) == 0
		}
		return almost(Sum(std), 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStandardizeErrors(t *testing.T) {
	if _, err := Standardize(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty: err = %v, want ErrEmpty", err)
	}
	if _, err := Standardize([]float64{0, 0}); !errors.Is(err, ErrZeroSum) {
		t.Errorf("zeros: err = %v, want ErrZeroSum", err)
	}
	if _, err := Standardize([]float64{1, -1}); !errors.Is(err, ErrNegative) {
		t.Errorf("negative: err = %v, want ErrNegative", err)
	}
}

func TestStandardizeDoesNotModifyInput(t *testing.T) {
	xs := []float64{1, 3}
	if _, err := Standardize(xs); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 1 || xs[1] != 3 {
		t.Errorf("input modified: %v", xs)
	}
}

func TestEuclidean(t *testing.T) {
	// Balanced data has zero dispersion.
	if got := Euclidean.Of([]float64{0.25, 0.25, 0.25, 0.25}); !almost(got, 0, eps) {
		t.Errorf("balanced: %g, want 0", got)
	}
	// Hand-computed: mean 0.5, deviations ±0.5 -> sqrt(0.5).
	if got := Euclidean.Of([]float64{0, 1}); !almost(got, math.Sqrt(0.5), eps) {
		t.Errorf("Euclidean = %g, want %g", got, math.Sqrt(0.5))
	}
	if got := Euclidean.Of(nil); got != 0 {
		t.Errorf("empty: %g, want 0", got)
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9} // classic example: variance 4
	if got := Variance.Of(xs); !almost(got, 4, eps) {
		t.Errorf("Variance = %g, want 4", got)
	}
	if got := StdDev.Of(xs); !almost(got, 2, eps) {
		t.Errorf("StdDev = %g, want 2", got)
	}
}

func TestCoV(t *testing.T) {
	if got := CoV.Of([]float64{5, 5, 5}); !almost(got, 0, eps) {
		t.Errorf("constant CoV = %g, want 0", got)
	}
	if got := CoV.Of([]float64{-1, 1}); got != 0 {
		t.Errorf("zero-mean CoV = %g, want 0", got)
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := CoV.Of(xs); !almost(got, 2.0/5.0, eps) {
		t.Errorf("CoV = %g, want 0.4", got)
	}
}

func TestMAD(t *testing.T) {
	if got := MAD.Of([]float64{1, 3}); !almost(got, 1, eps) {
		t.Errorf("MAD = %g, want 1", got)
	}
	if got := MAD.Of(nil); got != 0 {
		t.Errorf("empty MAD = %g, want 0", got)
	}
}

func TestMaxRange(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if got := Max.Of(xs); got != 5 {
		t.Errorf("Max = %g, want 5", got)
	}
	if got := Range.Of(xs); got != 4 {
		t.Errorf("Range = %g, want 4", got)
	}
	if Max.Of(nil) != 0 || Range.Of(nil) != 0 {
		t.Error("empty Max/Range should be 0")
	}
}

func TestGini(t *testing.T) {
	if got := Gini.Of([]float64{1, 1, 1, 1}); !almost(got, 0, eps) {
		t.Errorf("equal Gini = %g, want 0", got)
	}
	// All mass on one element of n: Gini = 1 - 1/n.
	if got := Gini.Of([]float64{0, 0, 0, 1}); !almost(got, 0.75, eps) {
		t.Errorf("one-hot Gini = %g, want 0.75", got)
	}
	if got := Gini.Of([]float64{0, 0}); got != 0 {
		t.Errorf("zero-sum Gini = %g, want 0", got)
	}
	if got := Gini.Of(nil); got != 0 {
		t.Errorf("empty Gini = %g, want 0", got)
	}
}

func TestIndicesZeroOnBalanced(t *testing.T) {
	balanced := []float64{0.2, 0.2, 0.2, 0.2, 0.2}
	for _, idx := range Indices() {
		got := idx.Of(balanced)
		switch idx.Name() {
		case "max":
			if !almost(got, 0.2, eps) {
				t.Errorf("%s on balanced = %g, want 0.2", idx.Name(), got)
			}
		default:
			if !almost(got, 0, eps) {
				t.Errorf("%s on balanced = %g, want 0", idx.Name(), got)
			}
		}
	}
}

func TestIndexByName(t *testing.T) {
	for _, idx := range Indices() {
		got, ok := IndexByName(idx.Name())
		if !ok || got.Name() != idx.Name() {
			t.Errorf("IndexByName(%q) = %v, %v", idx.Name(), got, ok)
		}
	}
	if _, ok := IndexByName("nope"); ok {
		t.Error("IndexByName(nope) should fail")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {10, 1.4},
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.q)
		if err != nil {
			t.Fatalf("Percentile(%g): %v", c.q, err)
		}
		if !almost(got, c.want, eps) {
			t.Errorf("Percentile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	if _, err := Percentile(nil, 50); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty percentile err = %v", err)
	}
	if _, err := Percentile(xs, -1); err == nil {
		t.Error("negative q should fail")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("q > 100 should fail")
	}
	one, err := Percentile([]float64{7}, 33)
	if err != nil || one != 7 {
		t.Errorf("singleton percentile = %g, %v", one, err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Min != 2 || s.Max != 9 || !almost(s.Mean, 5, eps) {
		t.Errorf("Summary = %+v", s)
	}
	if !almost(s.Variance, 4, eps) || !almost(s.StdDev(), 2, eps) {
		t.Errorf("Variance = %g, StdDev = %g", s.Variance, s.StdDev())
	}
	if !almost(s.CoV(), 0.4, eps) {
		t.Errorf("CoV = %g", s.CoV())
	}
	zero := Summarize(nil)
	if zero.N != 0 || zero.CoV() != 0 {
		t.Errorf("empty Summary = %+v", zero)
	}
}

func TestSummarizeMatchesNaive(t *testing.T) {
	f := func(xs []float64) bool {
		// Clamp to a sane magnitude so the naive two-pass formula is
		// numerically comparable.
		vals := make([]float64, 0, len(xs))
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			vals = append(vals, math.Mod(x, 1e6))
		}
		if len(vals) == 0 {
			return true
		}
		s := Summarize(vals)
		return almost(s.Mean, Mean(vals), 1e-6*(1+math.Abs(s.Mean))) &&
			almost(s.Variance, Variance.Of(vals), 1e-4*(1+s.Variance))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDispersionFromBalance(t *testing.T) {
	// P=4, one processor does all the work: standardized = (1,0,0,0),
	// mean 1/4, distance = sqrt((3/4)^2 + 3*(1/4)^2) = sqrt(12)/4.
	got, err := EuclideanFromBalance([]float64{8, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(12) / 4
	if !almost(got, want, eps) {
		t.Errorf("EuclideanFromBalance = %g, want %g", got, want)
	}
	if _, err := EuclideanFromBalance([]float64{0, 0}); !errors.Is(err, ErrZeroSum) {
		t.Errorf("zero-sum err = %v", err)
	}
}

func TestDispersionScaleInvariance(t *testing.T) {
	// Standardization makes every index scale-invariant.
	f := func(raw []float64, scale float64) bool {
		if len(raw) == 0 {
			return true
		}
		scale = math.Abs(math.Mod(scale, 100)) + 0.5
		xs := make([]float64, len(raw))
		scaled := make([]float64, len(raw))
		for i, x := range raw {
			v := math.Abs(math.Mod(x, 1000))
			xs[i] = v
			scaled[i] = v * scale
		}
		a, errA := EuclideanFromBalance(xs)
		b, errB := EuclideanFromBalance(scaled)
		if errA != nil || errB != nil {
			return (errA == nil) == (errB == nil)
		}
		return almost(a, b, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWeightedMean(t *testing.T) {
	got, err := WeightedMean([]float64{1, 3}, []float64{1, 1})
	if err != nil || !almost(got, 2, eps) {
		t.Errorf("WeightedMean = %g, %v", got, err)
	}
	got, err = WeightedMean([]float64{10, 2}, []float64{0, 4})
	if err != nil || !almost(got, 2, eps) {
		t.Errorf("zero-weight WeightedMean = %g, %v", got, err)
	}
	if _, err := WeightedMean([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := WeightedMean(nil, nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty err = %v", err)
	}
	if _, err := WeightedMean([]float64{1}, []float64{-1}); err == nil {
		t.Error("negative weight should fail")
	}
	if _, err := WeightedMean([]float64{1, 2}, []float64{0, 0}); !errors.Is(err, ErrZeroSum) {
		t.Errorf("all-zero weights err = %v", err)
	}
}

func TestEuclideanUpperBound(t *testing.T) {
	// For standardized values the worst case is one-hot:
	// sqrt((1-1/P)^2 + (P-1)/P^2) = sqrt((P-1)/P).
	for p := 2; p <= 32; p *= 2 {
		xs := make([]float64, p)
		xs[0] = 1
		got := Euclidean.Of(xs)
		want := math.Sqrt(float64(p-1) / float64(p))
		if !almost(got, want, eps) {
			t.Errorf("P=%d one-hot Euclidean = %g, want %g", p, got, want)
		}
	}
}
