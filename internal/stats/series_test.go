package stats

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestNewHistogram(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	h, err := NewHistogram(xs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total != 10 || h.Min != 0 || h.Max != 9 {
		t.Fatalf("histogram = %+v", h)
	}
	sum := 0
	for _, c := range h.Counts {
		sum += c
	}
	if sum != 10 {
		t.Errorf("bin counts sum to %d", sum)
	}
	// Each bin of width 1.8 holds two values.
	for i, c := range h.Counts {
		if c != 2 {
			t.Errorf("bin %d count = %d, want 2", i, c)
		}
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(nil, 3); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty err = %v", err)
	}
	if _, err := NewHistogram([]float64{1}, 0); err == nil {
		t.Error("zero bins should fail")
	}
}

func TestHistogramConstantData(t *testing.T) {
	h, err := NewHistogram([]float64{5, 5, 5}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.Counts[0] != 3 {
		t.Errorf("constant data counts = %v", h.Counts)
	}
	if h.Mode() != 0 {
		t.Errorf("mode = %d", h.Mode())
	}
}

func TestHistogramModeAndCenter(t *testing.T) {
	xs := []float64{0, 10, 10, 10, 20}
	h, err := NewHistogram(xs, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Bin 0 covers [0, 10): one value; bin 1 covers [10, 20]: four.
	if h.Mode() != 1 {
		t.Errorf("mode = %d, counts %v", h.Mode(), h.Counts)
	}
	if got := h.BinCenter(0); math.Abs(got-5) > 1e-12 {
		t.Errorf("bin 0 center = %g", got)
	}
}

func TestHistogramASCII(t *testing.T) {
	h, err := NewHistogram([]float64{1, 2, 2, 3}, 3)
	if err != nil {
		t.Fatal(err)
	}
	out := h.ASCII(10)
	if !strings.Contains(out, "#") || strings.Count(out, "\n") != 3 {
		t.Errorf("ASCII histogram:\n%s", out)
	}
	if h.ASCII(0) == "" {
		t.Error("default width render empty")
	}
}

func TestAutocorrelation(t *testing.T) {
	// A period-4 sawtooth has a strong lag-4 peak.
	xs := make([]float64, 64)
	for i := range xs {
		xs[i] = float64(i % 4)
	}
	acf, err := Autocorrelation(xs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if acf[0] != 1 {
		t.Errorf("lag 0 = %g", acf[0])
	}
	if acf[4] < 0.8 {
		t.Errorf("lag 4 = %g, want strong", acf[4])
	}
	if acf[2] > acf[4] {
		t.Errorf("lag 2 (%g) should be below lag 4 (%g)", acf[2], acf[4])
	}
	if got := DominantPeriod(acf, 2); got != 4 {
		t.Errorf("dominant period = %d, want 4", got)
	}
}

func TestAutocorrelationErrors(t *testing.T) {
	if _, err := Autocorrelation(nil, 1); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty err = %v", err)
	}
	if _, err := Autocorrelation([]float64{1, 2}, 2); err == nil {
		t.Error("lag >= len should fail")
	}
	if _, err := Autocorrelation([]float64{1, 2}, -1); err == nil {
		t.Error("negative lag should fail")
	}
}

func TestAutocorrelationConstant(t *testing.T) {
	acf, err := Autocorrelation([]float64{7, 7, 7, 7}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if acf[0] != 1 || acf[1] != 0 || acf[2] != 0 {
		t.Errorf("constant acf = %v", acf)
	}
	if got := DominantPeriod(acf, 1); got != 0 {
		t.Errorf("constant dominant period = %d", got)
	}
}
