package stats

import (
	"math"
	"testing"
)

// sampleStream generates a deterministic pseudo-random data set.
func sampleStream(n int, seed uint64) []float64 {
	out := make([]float64, n)
	state := seed
	for i := range out {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		out[i] = float64(state%100000)/1000 - 20
	}
	return out
}

func TestAccumulatorMatchesBatch(t *testing.T) {
	for _, n := range []int{1, 2, 3, 10, 1000} {
		xs := sampleStream(n, 12345)
		var a Accumulator
		for _, x := range xs {
			a.Add(x)
		}
		want := batchSummary(xs)
		got := a.Summary()
		compareSummaries(t, got, want, 1e-10)
		if a.N() != n || a.Sum() != got.Sum || a.Mean() != got.Mean ||
			a.Min() != got.Min || a.Max() != got.Max {
			t.Errorf("n=%d: accessor/summary mismatch", n)
		}
		if sd := a.StdDev(); math.Abs(sd-math.Sqrt(got.Variance)) > 1e-12 {
			t.Errorf("n=%d: StdDev = %g, want %g", n, sd, math.Sqrt(got.Variance))
		}
	}
}

// batchSummary is a textbook two-pass implementation, the oracle the
// streaming accumulator is validated against.
func batchSummary(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	for _, x := range xs {
		s.Sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = s.Sum / float64(s.N)
	for _, x := range xs {
		d := x - s.Mean
		s.Variance += d * d
	}
	s.Variance /= float64(s.N)
	return s
}

func compareSummaries(t *testing.T, got, want Summary, tol float64) {
	t.Helper()
	if got.N != want.N {
		t.Fatalf("N = %d, want %d", got.N, want.N)
	}
	checks := []struct {
		name      string
		got, want float64
	}{
		{"Min", got.Min, want.Min},
		{"Max", got.Max, want.Max},
		{"Mean", got.Mean, want.Mean},
		{"Variance", got.Variance, want.Variance},
		{"Sum", got.Sum, want.Sum},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > tol*(1+math.Abs(c.want)) {
			t.Errorf("%s = %g, want %g", c.name, c.got, c.want)
		}
	}
}

func TestAccumulatorMerge(t *testing.T) {
	xs := sampleStream(777, 99)
	for _, split := range []int{0, 1, 300, 776, 777} {
		var a, b Accumulator
		for _, x := range xs[:split] {
			a.Add(x)
		}
		for _, x := range xs[split:] {
			b.Add(x)
		}
		a.Merge(b)
		compareSummaries(t, a.Summary(), Summarize(xs), 1e-10)
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var a Accumulator
	s := a.Summary()
	if s.N != 0 || s.Sum != 0 || s.Variance != 0 || s.Mean != 0 {
		t.Fatalf("zero accumulator summary = %+v", s)
	}
	if a.Variance() != 0 || a.StdDev() != 0 {
		t.Fatalf("zero accumulator variance = %g", a.Variance())
	}
}

func TestAccumulatorConstantSeries(t *testing.T) {
	var a Accumulator
	for i := 0; i < 1000; i++ {
		a.Add(3.25)
	}
	if v := a.Variance(); v != 0 {
		t.Errorf("variance of constant series = %g, want 0", v)
	}
	if a.Min() != 3.25 || a.Max() != 3.25 || a.Mean() != 3.25 {
		t.Errorf("constant series moments: min %g max %g mean %g", a.Min(), a.Max(), a.Mean())
	}
}
