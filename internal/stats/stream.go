package stats

import "math"

// Accumulator is a streaming (single-pass, Welford-style) accumulator of
// descriptive statistics: it maintains count, sum, extrema, mean and the
// centered second moment incrementally, so callers can fold values in one
// at a time — the primitive live monitoring (internal/monitor) uses to
// track event-duration statistics without retaining the samples.
//
// The zero value is an empty accumulator ready for use. Accumulator is a
// small value type; copying it snapshots the statistics so far. It is not
// safe for concurrent mutation.
type Accumulator struct {
	n         int
	min, max  float64
	mean, sum float64
	m2        float64
}

// Add folds one value into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	a.sum += x
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// Merge folds another accumulator into a, as if every value added to b had
// been added to a (Chan et al.'s parallel combination of the moments).
// Merging preserves the exact count, sum and extrema and the mean/variance
// up to floating-point rounding.
func (a *Accumulator) Merge(b Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = b
		return
	}
	n := float64(a.n + b.n)
	delta := b.mean - a.mean
	a.m2 += b.m2 + delta*delta*float64(a.n)*float64(b.n)/n
	a.mean += delta * float64(b.n) / n
	a.sum += b.sum
	a.n += b.n
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
}

// N returns the number of values folded in.
func (a Accumulator) N() int { return a.n }

// Sum returns the running sum.
func (a Accumulator) Sum() float64 { return a.sum }

// Min returns the smallest value seen, or 0 when empty.
func (a Accumulator) Min() float64 { return a.min }

// Max returns the largest value seen, or 0 when empty.
func (a Accumulator) Max() float64 { return a.max }

// Mean returns the running mean, or 0 when empty.
func (a Accumulator) Mean() float64 { return a.mean }

// Variance returns the population variance, or 0 when empty.
func (a Accumulator) Variance() float64 {
	if a.n == 0 {
		return 0
	}
	v := a.m2 / float64(a.n)
	if v < 0 { // guard rounding at near-constant data
		return 0
	}
	return v
}

// StdDev returns the population standard deviation.
func (a Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Summary converts the accumulated moments into a Summary, identical (up
// to rounding) to Summarize over the same values.
func (a Accumulator) Summary() Summary {
	return Summary{
		N:        a.n,
		Min:      a.min,
		Max:      a.max,
		Mean:     a.mean,
		Variance: a.Variance(),
		Sum:      a.sum,
	}
}
