package stats

import (
	"testing"
)

func TestBootstrapCIBasics(t *testing.T) {
	// A smoothly imbalanced sample (a ramp): the CI contains the point
	// estimate and excludes zero — the imbalance verdict is stable.
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	ci, err := BootstrapCI(Euclidean, xs, 500, 0.95, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !ci.Contains(ci.Point) {
		t.Errorf("CI [%g, %g] should contain the point %g", ci.Low, ci.High, ci.Point)
	}
	if ci.Low <= 0 {
		t.Errorf("ramp sample CI low = %g, want > 0", ci.Low)
	}
	if ci.Width() <= 0 {
		t.Errorf("CI width = %g", ci.Width())
	}
	if ci.Confidence != 0.95 {
		t.Errorf("confidence = %g", ci.Confidence)
	}
}

func TestBootstrapCIOneHotIncludesZero(t *testing.T) {
	// A single-spike sample is unstable under resampling: about a third
	// of resamples miss the spike entirely, so the 95% interval
	// legitimately reaches down to 0 — the bootstrap is telling the user
	// the "one imbalanced processor" verdict rests on one observation.
	xs := []float64{10, 1, 1, 1, 1, 1, 1, 1}
	ci, err := BootstrapCI(Euclidean, xs, 500, 0.95, 7)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Low != 0 {
		t.Errorf("spike CI low = %g, want 0 (verdict unstable)", ci.Low)
	}
	if ci.High <= ci.Point*0.5 {
		t.Errorf("spike CI high = %g looks too small vs point %g", ci.High, ci.Point)
	}
}

func TestBootstrapCIBalancedSample(t *testing.T) {
	// A perfectly balanced sample has zero dispersion in every resample.
	xs := []float64{2, 2, 2, 2, 2, 2}
	ci, err := BootstrapCI(Euclidean, xs, 200, 0.9, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Point != 0 || ci.Low != 0 || ci.High != 0 {
		t.Errorf("balanced CI = %+v", ci)
	}
}

func TestBootstrapCIDeterministic(t *testing.T) {
	xs := []float64{5, 3, 2, 8, 1, 4}
	a, err := BootstrapCI(Euclidean, xs, 300, 0.95, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BootstrapCI(Euclidean, xs, 300, 0.95, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed should reproduce: %+v vs %+v", a, b)
	}
	c, err := BootstrapCI(Euclidean, xs, 300, 0.95, 43)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different seeds should differ")
	}
}

func TestBootstrapCIUnstableShapeIsWider(t *testing.T) {
	// At the same P and point-estimate scale, a spike-driven imbalance
	// is less stable under resampling than a smooth ramp, so its
	// interval is wider relative to its point estimate.
	spike := []float64{10, 1, 1, 1, 1, 1, 1, 1}
	ramp := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	ciSpike, err := BootstrapCI(Euclidean, spike, 400, 0.95, 1)
	if err != nil {
		t.Fatal(err)
	}
	ciRamp, err := BootstrapCI(Euclidean, ramp, 400, 0.95, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ciSpike.Width()/ciSpike.Point <= ciRamp.Width()/ciRamp.Point {
		t.Errorf("spike relative width %g should exceed ramp's %g",
			ciSpike.Width()/ciSpike.Point, ciRamp.Width()/ciRamp.Point)
	}
}

func TestBootstrapCIValidation(t *testing.T) {
	xs := []float64{1, 2, 3}
	if _, err := BootstrapCI(Euclidean, []float64{1}, 100, 0.95, 1); err == nil {
		t.Error("single value should fail")
	}
	if _, err := BootstrapCI(Euclidean, xs, 5, 0.95, 1); err == nil {
		t.Error("too few resamples should fail")
	}
	if _, err := BootstrapCI(Euclidean, xs, 100, 1.5, 1); err == nil {
		t.Error("bad confidence should fail")
	}
	if _, err := BootstrapCI(Euclidean, []float64{0, 0}, 100, 0.95, 1); err == nil {
		t.Error("all-zero sample should fail")
	}
}
