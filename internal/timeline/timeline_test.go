package timeline

import (
	"math"
	"strings"
	"testing"

	"loadimb/internal/cfd"
	"loadimb/internal/trace"
)

func sampleLog(t *testing.T) *trace.Log {
	t.Helper()
	var l trace.Log
	for _, e := range []trace.Event{
		{Rank: 0, Region: "r", Activity: "comp", Start: 0, End: 4},
		{Rank: 0, Region: "r", Activity: "p2p", Start: 4, End: 8},
		{Rank: 1, Region: "r", Activity: "comp", Start: 0, End: 8},
	} {
		if err := l.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	return &l
}

func TestNewBasicLayout(t *testing.T) {
	tl, err := New(sampleLog(t), Options{Width: 8})
	if err != nil {
		t.Fatal(err)
	}
	if tl.Ranks != 2 || tl.From != 0 || tl.To != 8 {
		t.Fatalf("timeline = %+v", tl)
	}
	// Rank 0: first half comp (activity 0), second half p2p (1).
	for c := 0; c < 4; c++ {
		if tl.Lanes[0][c] != 0 {
			t.Errorf("rank 0 col %d = %d, want comp", c, tl.Lanes[0][c])
		}
	}
	for c := 4; c < 8; c++ {
		if tl.Lanes[0][c] != 1 {
			t.Errorf("rank 0 col %d = %d, want p2p", c, tl.Lanes[0][c])
		}
	}
	// Rank 1 all comp.
	for c := 0; c < 8; c++ {
		if tl.Lanes[1][c] != 0 {
			t.Errorf("rank 1 col %d = %d", c, tl.Lanes[1][c])
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Error("nil log should fail")
	}
	var empty trace.Log
	if _, err := New(&empty, Options{}); err == nil {
		t.Error("empty log should fail")
	}
	log := sampleLog(t)
	if _, err := New(log, Options{Width: -1}); err == nil {
		t.Error("negative width should fail")
	}
	if _, err := New(log, Options{From: 5, To: 3}); err == nil {
		t.Error("empty window should fail")
	}
	if _, err := New(log, Options{Activities: []string{"nope"}}); err == nil {
		t.Error("no matching activity should fail")
	}
}

func TestWindowZoom(t *testing.T) {
	tl, err := New(sampleLog(t), Options{Width: 4, From: 4, To: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Within the window rank 0 only does p2p.
	for c, j := range tl.Lanes[0] {
		if tl.ActivityNames[j] != "p2p" {
			t.Errorf("col %d = %d", c, j)
		}
	}
}

func TestActivityFilter(t *testing.T) {
	tl, err := New(sampleLog(t), Options{Width: 8, Activities: []string{"p2p"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.ActivityNames) != 1 || tl.ActivityNames[0] != "p2p" {
		t.Fatalf("names = %v", tl.ActivityNames)
	}
	// Rank 1 never does p2p: idle everywhere.
	for c, j := range tl.Lanes[1] {
		if j != -1 {
			t.Errorf("rank 1 col %d = %d, want idle", c, j)
		}
	}
}

func TestASCII(t *testing.T) {
	tl, err := New(sampleLog(t), Options{Width: 8})
	if err != nil {
		t.Fatal(err)
	}
	out := tl.ASCII()
	if !strings.Contains(out, "rank   0 |CCCCPPPP|") {
		t.Errorf("rank 0 lane wrong:\n%s", out)
	}
	if !strings.Contains(out, "legend: C=comp P=p2p") {
		t.Errorf("legend wrong:\n%s", out)
	}
}

func TestUtilization(t *testing.T) {
	var l trace.Log
	// Rank 0 busy half the span; rank 1 the whole span.
	for _, e := range []trace.Event{
		{Rank: 0, Region: "r", Activity: "a", Start: 0, End: 4},
		{Rank: 1, Region: "r", Activity: "a", Start: 0, End: 8},
	} {
		if err := l.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	tl, err := New(&l, Options{Width: 8})
	if err != nil {
		t.Fatal(err)
	}
	u := tl.Utilization()
	if math.Abs(u[0]-0.5) > 1e-12 || math.Abs(u[1]-1) > 1e-12 {
		t.Errorf("utilization = %v", u)
	}
}

func TestBusiestActivity(t *testing.T) {
	tl, err := New(sampleLog(t), Options{Width: 8})
	if err != nil {
		t.Fatal(err)
	}
	name, cols := tl.BusiestActivity()
	if name != "comp" || cols != 12 {
		t.Errorf("busiest = %s, %d", name, cols)
	}
}

// TestTimelineFromCFDRun renders a real simulated trace end to end.
func TestTimelineFromCFDRun(t *testing.T) {
	cfg := cfd.Defaults()
	cfg.GridX, cfg.GridY, cfg.Iterations = 64, 64, 3
	res, err := cfd.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := New(res.Log, Options{Width: 100})
	if err != nil {
		t.Fatal(err)
	}
	if tl.Ranks != 16 {
		t.Fatalf("ranks = %d", tl.Ranks)
	}
	out := tl.ASCII()
	if strings.Count(out, "\n") != 18 { // 16 lanes + header + legend
		t.Errorf("timeline rows = %d", strings.Count(out, "\n"))
	}
	// The warmup leaves the first columns idle on every rank.
	if !strings.Contains(out, "|    ") {
		t.Error("expected leading idle time from the uninstrumented warmup")
	}
	name, _ := tl.BusiestActivity()
	if name != "computation" {
		t.Errorf("busiest activity = %s", name)
	}
}
