// Package timeline renders event logs as per-rank timelines in the style
// of Jumpshot (Zaki, Lusk, Gropp, Swider — reference [14] of the paper):
// one lane per processor, colored/lettered by activity, over a scaled
// time axis. The paper argues users should not have to browse such
// displays to find problems — the methodology points first, and the
// timeline then shows the flagged window.
package timeline

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"loadimb/internal/trace"
)

// Options configures rendering. The zero value renders the whole log at
// 80 columns.
type Options struct {
	// Width is the number of time columns (0 means 80).
	Width int
	// From and To bound the rendered time window; To = 0 means the log
	// span. Use the window to zoom into a flagged region's interval.
	From, To float64
	// Activities restricts rendering to the named activities (nil means
	// all).
	Activities []string
	// Marks are virtual times to flag with a marker column — phase
	// boundaries from the temporal segmentation, say. Marks outside the
	// rendered window are ignored.
	Marks []float64
}

// Timeline is a rendered view of a log.
type Timeline struct {
	// Ranks is the number of lanes.
	Ranks int
	// From and To are the rendered window.
	From, To float64
	// Lanes[rank] is the per-column dominant activity index, -1 for
	// idle.
	Lanes [][]int
	// ActivityNames indexes the activity letters.
	ActivityNames []string
	// Marks are the flagged times within [From, To], in ascending order.
	Marks []float64
}

// letters are the lane glyphs per activity index.
const letters = "CPXSabcdefgh"

// New renders the log. Each column shows the activity occupying the
// largest share of that rank's column interval; idle time renders blank.
func New(log *trace.Log, opts Options) (*Timeline, error) {
	if log == nil || log.Len() == 0 {
		return nil, errors.New("timeline: empty log")
	}
	width := opts.Width
	if width == 0 {
		width = 80
	}
	if width < 1 {
		return nil, fmt.Errorf("timeline: width %d must be positive", width)
	}
	from, to := opts.From, opts.To
	if to == 0 {
		to = log.Span()
	}
	if to <= from {
		return nil, fmt.Errorf("timeline: window [%g, %g] is empty", from, to)
	}
	allowed := map[string]bool{}
	for _, a := range opts.Activities {
		allowed[a] = true
	}
	// Stable activity order: first appearance. Two Each passes instead of
	// one Events() call: renderers are called repeatedly over large logs,
	// and Events copies the whole backing slice per call.
	var names []string
	var tooMany error
	nameIdx := map[string]int{}
	log.Each(func(e trace.Event) {
		if len(allowed) > 0 && !allowed[e.Activity] {
			return
		}
		if _, ok := nameIdx[e.Activity]; !ok {
			if len(names) >= len(letters) {
				tooMany = fmt.Errorf("timeline: more than %d activities", len(letters))
				return
			}
			nameIdx[e.Activity] = len(names)
			names = append(names, e.Activity)
		}
	})
	if tooMany != nil {
		return nil, tooMany
	}
	if len(names) == 0 {
		return nil, errors.New("timeline: no events match the activity filter")
	}
	ranks := log.Ranks()
	// occupancy[rank][col][act] accumulates seconds.
	occupancy := make([][][]float64, ranks)
	for r := range occupancy {
		occupancy[r] = make([][]float64, width)
		for c := range occupancy[r] {
			occupancy[r][c] = make([]float64, len(names))
		}
	}
	colWidth := (to - from) / float64(width)
	log.Each(func(e trace.Event) {
		if len(allowed) > 0 && !allowed[e.Activity] {
			return
		}
		j := nameIdx[e.Activity]
		start, end := e.Start, e.End
		if end <= from || start >= to {
			return
		}
		if start < from {
			start = from
		}
		if end > to {
			end = to
		}
		first := int((start - from) / colWidth)
		last := int((end - from) / colWidth)
		if last >= width {
			last = width - 1
		}
		for c := first; c <= last; c++ {
			cellStart := from + float64(c)*colWidth
			cellEnd := cellStart + colWidth
			overlap := minF(end, cellEnd) - maxF(start, cellStart)
			if overlap > 0 {
				occupancy[e.Rank][c][j] += overlap
			}
		}
	})
	t := &Timeline{
		Ranks:         ranks,
		From:          from,
		To:            to,
		ActivityNames: names,
		Lanes:         make([][]int, ranks),
	}
	for _, m := range opts.Marks {
		if m > from && m < to {
			t.Marks = append(t.Marks, m)
		}
	}
	sort.Float64s(t.Marks)
	for r := range t.Lanes {
		t.Lanes[r] = make([]int, width)
		for c := 0; c < width; c++ {
			best, bestVal := -1, 0.0
			for j, v := range occupancy[r][c] {
				if v > bestVal {
					best, bestVal = j, v
				}
			}
			t.Lanes[r][c] = best
		}
	}
	return t, nil
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// ASCII renders the timeline with one text row per rank plus a legend and
// a time axis.
func (t *Timeline) ASCII() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "timeline [%.3f s, %.3f s]\n", t.From, t.To)
	if len(t.Marks) > 0 && len(t.Lanes) > 0 {
		// A ruler row with one caret per mark — phase boundaries sit
		// above the lanes instead of clobbering them.
		width := len(t.Lanes[0])
		colWidth := (t.To - t.From) / float64(width)
		ruler := make([]byte, width)
		for i := range ruler {
			ruler[i] = ' '
		}
		for _, m := range t.Marks {
			c := int((m - t.From) / colWidth)
			if c >= width {
				c = width - 1
			}
			ruler[c] = '^'
		}
		fmt.Fprintf(&sb, "phases   |%s|\n", ruler)
	}
	for r, lane := range t.Lanes {
		fmt.Fprintf(&sb, "rank %3d |", r)
		for _, j := range lane {
			if j < 0 {
				sb.WriteByte(' ')
			} else {
				sb.WriteByte(letters[j])
			}
		}
		sb.WriteString("|\n")
	}
	sb.WriteString("legend:")
	for j, n := range t.ActivityNames {
		fmt.Fprintf(&sb, " %c=%s", letters[j], n)
	}
	sb.WriteString(" (blank = idle/uninstrumented)\n")
	return sb.String()
}

// Utilization returns, per rank, the fraction of the rendered window the
// rank spent in any instrumented activity — a quick imbalance read of the
// timeline itself.
func (t *Timeline) Utilization() []float64 {
	out := make([]float64, t.Ranks)
	for r, lane := range t.Lanes {
		busy := 0
		for _, j := range lane {
			if j >= 0 {
				busy++
			}
		}
		out[r] = float64(busy) / float64(len(lane))
	}
	return out
}

// BusiestActivity returns the activity occupying the most columns across
// all lanes, with its column count.
func (t *Timeline) BusiestActivity() (string, int) {
	counts := make([]int, len(t.ActivityNames))
	for _, lane := range t.Lanes {
		for _, j := range lane {
			if j >= 0 {
				counts[j]++
			}
		}
	}
	order := make([]int, len(counts))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return counts[order[a]] > counts[order[b]] })
	if len(order) == 0 {
		return "", 0
	}
	return t.ActivityNames[order[0]], counts[order[0]]
}
