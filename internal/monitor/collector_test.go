package monitor

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"

	"loadimb/internal/apps"
	"loadimb/internal/stats"
	"loadimb/internal/trace"
)

// syntheticEvents is a small trace with repeated cells, an idle rank in
// one region, and a straggler event defining the span.
func syntheticEvents() []trace.Event {
	return []trace.Event{
		{Rank: 0, Region: "r1", Activity: "comp", Start: 0, End: 1},
		{Rank: 1, Region: "r1", Activity: "comp", Start: 0, End: 2.5},
		{Rank: 0, Region: "r1", Activity: "comm", Start: 1, End: 1.25},
		{Rank: 0, Region: "r2", Activity: "comp", Start: 1.25, End: 2},
		{Rank: 1, Region: "r2", Activity: "comm", Start: 2.5, End: 4},
		{Rank: 0, Region: "r1", Activity: "comp", Start: 2, End: 2.75}, // second visit folds in
		{Rank: 2, Region: "r2", Activity: "comp", Start: 0, End: 9},    // straggler sets the span
	}
}

func aggregated(t *testing.T, events []trace.Event, regions, activities []string) *trace.Cube {
	t.Helper()
	var log trace.Log
	for _, e := range events {
		if err := log.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	cube, err := log.Aggregate(regions, activities)
	if err != nil {
		t.Fatal(err)
	}
	return cube
}

func TestCollectorFoldsEventsLikeAggregate(t *testing.T) {
	regions := []string{"r1", "r2"}
	activities := []string{"comp", "comm"}
	c := NewCollector(Options{Regions: regions, Activities: activities})
	for _, e := range syntheticEvents() {
		c.Record(e)
	}
	snap := c.Snapshot()
	if snap.Cube == nil {
		t.Fatal("snapshot cube is nil after recording events")
	}
	want := aggregated(t, syntheticEvents(), regions, activities)
	if !snap.Cube.EqualWithin(want, 1e-12) {
		t.Fatalf("live cube differs from offline aggregate\nlive T=%g offline T=%g",
			snap.Cube.ProgramTime(), want.ProgramTime())
	}
	if snap.Events != uint64(len(syntheticEvents())) {
		t.Errorf("Events = %d, want %d", snap.Events, len(syntheticEvents()))
	}
	if snap.Span != 9 {
		t.Errorf("Span = %g, want 9", snap.Span)
	}
	// Cell duration stats: r1/comp saw three events of 1, 2.5, 0.75.
	acc := snap.CellStats[0][0]
	if acc.N() != 3 || math.Abs(acc.Sum()-4.25) > 1e-12 {
		t.Errorf("r1/comp stats N=%d sum=%g, want 3 events summing 4.25", acc.N(), acc.Sum())
	}
}

func TestCollectorIncrementalSnapshots(t *testing.T) {
	c := NewCollector(Options{})
	events := syntheticEvents()
	for _, e := range events[:3] {
		c.Record(e)
	}
	first := c.Snapshot()
	if first.Cube == nil || first.Events != 3 {
		t.Fatalf("first snapshot: cube=%v events=%d", first.Cube, first.Events)
	}
	for _, e := range events[3:] {
		c.Record(e)
	}
	// Latest still serves the old snapshot until the next fold.
	if got := c.Latest(); got != first {
		t.Fatal("Latest changed without a Snapshot call")
	}
	second := c.Snapshot()
	if second.Events != uint64(len(events)) {
		t.Fatalf("second snapshot events = %d, want %d", second.Events, len(events))
	}
	// The first snapshot must be unaffected by later folding.
	if first.Cube.NumRegions() != 1 || first.Events != 3 {
		t.Error("earlier snapshot mutated by later events")
	}
	want := aggregated(t, events, nil, nil)
	if second.Cube.RegionsTotal() != want.RegionsTotal() {
		t.Errorf("incremental total %g, want %g", second.Cube.RegionsTotal(), want.RegionsTotal())
	}
}

func TestCollectorDropsMalformed(t *testing.T) {
	c := NewCollector(Options{})
	bad := []trace.Event{
		{Rank: -1, Region: "r", Activity: "a", Start: 0, End: 1},
		{Rank: DefaultMaxRank + 1, Region: "r", Activity: "a", Start: 0, End: 1},
		{Rank: 0, Region: "", Activity: "a", Start: 0, End: 1},
		{Rank: 0, Region: "r", Activity: "", Start: 0, End: 1},
		{Rank: 0, Region: "r", Activity: "a", Start: 2, End: 1},
		{Rank: 0, Region: "r", Activity: "a", Start: -1, End: 1},
		{Rank: 0, Region: "r", Activity: "a", Start: math.NaN(), End: 1},
		{Rank: 0, Region: "r", Activity: "a", Start: 0, End: math.NaN()},
		{Rank: 0, Region: "r", Activity: "a", Start: 0, End: math.Inf(1)},
		{Rank: 0, Region: "r", Activity: "a", Start: math.Inf(1), End: math.Inf(1)},
	}
	for _, e := range bad {
		c.Record(e)
	}
	snap := c.Snapshot()
	if snap.Cube != nil {
		t.Error("malformed events produced a cube")
	}
	if snap.Dropped != uint64(len(bad)) || snap.Events != 0 {
		t.Errorf("dropped=%d events=%d, want %d and 0", snap.Dropped, snap.Events, len(bad))
	}
}

func TestCollectorWindowing(t *testing.T) {
	c := NewCollector(Options{Window: 1})
	// Rank 0 busy the whole [0, 3); rank 1 only in [0, 1) and the tail
	// of window 2 — imbalance grows over time.
	c.Record(trace.Event{Rank: 0, Region: "r", Activity: "a", Start: 0, End: 3})
	c.Record(trace.Event{Rank: 1, Region: "r", Activity: "a", Start: 0, End: 1})
	c.Record(trace.Event{Rank: 1, Region: "r", Activity: "a", Start: 2.75, End: 3})
	snap := c.Snapshot()
	if len(snap.Windows) != 3 {
		t.Fatalf("got %d windows, want 3", len(snap.Windows))
	}
	w0, w1, w2 := snap.Windows[0], snap.Windows[1], snap.Windows[2]
	if w0.Busy != 2 || w1.Busy != 1 || math.Abs(w2.Busy-1.25) > 1e-12 {
		t.Errorf("busy = %g, %g, %g; want 2, 1, 1.25", w0.Busy, w1.Busy, w2.Busy)
	}
	// Window 0 is perfectly balanced; window 1 maximally imbalanced.
	if w0.ID == nil || *w0.ID != 0 || w0.Gini != 0 {
		t.Errorf("window 0 should be balanced: ID=%v gini=%g", w0.ID, w0.Gini)
	}
	if w1.ID == nil || w2.ID == nil {
		t.Fatalf("busy windows have undefined ID: %+v", snap.Windows)
	}
	if *w1.ID <= *w2.ID || w1.Gini <= w2.Gini {
		t.Errorf("window 1 (one idle rank) should be more imbalanced than window 2: ID %g vs %g", *w1.ID, *w2.ID)
	}
	if w0.Start != 0 || w0.End != 1 || w2.Index != 2 {
		t.Errorf("window bounds wrong: %+v", snap.Windows)
	}
}

// TestCollectorLiveWorkload attaches a collector to a real simulated
// application and checks the live cube equals the post-mortem one.
func TestCollectorLiveWorkload(t *testing.T) {
	cfg := apps.DefaultWavefront()
	cfg.Procs = 6
	cfg.Sweeps = 4
	offline, err := apps.Wavefront(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCollector(Options{
		Window:     offline.Makespan / 8,
		Regions:    offline.Cube.Regions(),
		Activities: offline.Cube.Activities(),
	})
	cfg.Sink = c
	live, err := apps.Wavefront(cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := c.Snapshot()
	if snap.Cube == nil {
		t.Fatal("no live cube")
	}
	if !snap.Cube.EqualWithin(live.Cube, 1e-9) {
		t.Error("live cube differs from the run's own aggregate")
	}
	if !snap.Cube.EqualWithin(offline.Cube, 1e-9) {
		t.Error("live cube differs across identical deterministic runs")
	}
	if int(snap.Events) != live.Log.Len() {
		t.Errorf("collector saw %d events, log holds %d", snap.Events, live.Log.Len())
	}
	if len(snap.Windows) == 0 {
		t.Error("windowing enabled but no windows recorded")
	}
}

// TestCollectorRejectsNegativeStart is the regression test for the
// window-corruption bug: int(Start/window) truncates toward zero, so a
// negative-start event used to land its entire busy time in window 0.
// Such events must be rejected at Record like the other malformed shapes.
func TestCollectorRejectsNegativeStart(t *testing.T) {
	c := NewCollector(Options{Window: 1})
	c.Record(trace.Event{Rank: 0, Region: "r", Activity: "a", Start: 0.25, End: 0.75})
	c.Record(trace.Event{Rank: 1, Region: "r", Activity: "a", Start: -3, End: 0.5})
	snap := c.Snapshot()
	if snap.Dropped != 1 || snap.Events != 1 {
		t.Fatalf("dropped=%d events=%d, want 1 and 1", snap.Dropped, snap.Events)
	}
	if len(snap.Windows) != 1 {
		t.Fatalf("got %d windows, want 1", len(snap.Windows))
	}
	if w := snap.Windows[0]; w.Index != 0 || w.Busy != 0.5 || w.Events != 1 {
		t.Errorf("window 0 corrupted by negative-start event: %+v", w)
	}
	if snap.Cube.NumProcs() != 1 {
		t.Errorf("rejected event grew the cube to %d procs", snap.Cube.NumProcs())
	}
}

// TestSnapshotEventsMatchCube drives recorders concurrently with
// snapshotters and checks, for every published snapshot, that Events is
// exactly the number of events the cube accounts for (the cell duration
// accumulators count one Add per folded event). Before the drain-time
// counter fix, Snapshot read the racing Record counter after draining and
// could claim events the cube did not contain. Run with -race.
func TestSnapshotEventsMatchCube(t *testing.T) {
	const (
		writers       = 4
		eventsPerRank = 3000
		snapshots     = 60
	)
	c := NewCollector(Options{Shards: 2, Window: 50})
	var wg sync.WaitGroup
	for rank := 0; rank < writers; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for i := 0; i < eventsPerRank; i++ {
				start := float64(i)
				c.Record(trace.Event{
					Rank:     rank,
					Region:   "r",
					Activity: "a",
					Start:    start,
					End:      start + 0.25,
				})
			}
		}(rank)
	}
	countFolded := func(snap *Snapshot) uint64 {
		var n uint64
		for i := range snap.CellStats {
			for j := range snap.CellStats[i] {
				n += uint64(snap.CellStats[i][j].N())
			}
		}
		return n
	}
	for i := 0; i < snapshots; i++ {
		snap := c.Snapshot()
		if folded := countFolded(snap); snap.Events != folded {
			t.Fatalf("snapshot %d: Events=%d but the cube accounts for %d events",
				i, snap.Events, folded)
		}
	}
	wg.Wait()
	snap := c.Snapshot()
	want := uint64(writers * eventsPerRank)
	if snap.Events != want || countFolded(snap) != want {
		t.Fatalf("final Events=%d folded=%d, want %d", snap.Events, countFolded(snap), want)
	}
}

// TestCollectorWindowClippingOracle asserts the live window fold against
// the offline Log.Window oracle on the boundary shapes that matter:
// zero-duration events (mid-window and exactly on a boundary), events
// ending exactly on a boundary, and events spanning three or more
// windows.
func TestCollectorWindowClippingOracle(t *testing.T) {
	const window = 1.0
	events := []trace.Event{
		{Rank: 0, Region: "r", Activity: "a", Start: 0.5, End: 0.5},   // zero-duration, mid-window
		{Rank: 0, Region: "r", Activity: "a", Start: 1, End: 1},       // zero-duration, on a boundary: no window
		{Rank: 0, Region: "r", Activity: "a", Start: 0.25, End: 1},    // ends exactly on a boundary
		{Rank: 1, Region: "r", Activity: "a", Start: 1, End: 2},       // covers window 1 exactly
		{Rank: 0, Region: "r", Activity: "a", Start: 1.5, End: 4.75},  // spans windows 1..4
		{Rank: 2, Region: "r", Activity: "a", Start: 0, End: 3},       // spans 0..2, both ends on boundaries
		{Rank: 1, Region: "r", Activity: "a", Start: 4.25, End: 4.25}, // zero-duration in the last window
	}
	c := NewCollector(Options{Window: window})
	var lg trace.Log
	for _, e := range events {
		c.Record(e)
		if err := lg.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	snap := c.Snapshot()
	procs := snap.Cube.NumProcs()
	byIndex := make(map[int]WindowStat, len(snap.Windows))
	for _, w := range snap.Windows {
		byIndex[w.Index] = w
	}
	for w := 0; w < 5; w++ {
		from, to := float64(w)*window, float64(w+1)*window
		oracle, err := lg.Window(from, to)
		if err != nil {
			t.Fatal(err)
		}
		got, ok := byIndex[w]
		if !ok {
			if oracle.Len() != 0 {
				t.Errorf("window %d missing: oracle holds %d events", w, oracle.Len())
			}
			continue
		}
		if got.Events != oracle.Len() {
			t.Errorf("window %d events = %d, oracle %d", w, got.Events, oracle.Len())
		}
		perRank := make([]float64, procs)
		for _, e := range oracle.Events() {
			perRank[e.Rank] += e.Duration()
		}
		busy := 0.0
		for _, v := range perRank {
			busy += v
		}
		if math.Abs(got.Busy-busy) > 1e-12 {
			t.Errorf("window %d busy = %g, oracle %g", w, got.Busy, busy)
		}
		if id, err := stats.EuclideanFromBalance(perRank); err != nil {
			if got.ID != nil {
				t.Errorf("window %d: oracle dispersion undefined (%v) but live ID = %g", w, err, *got.ID)
			}
		} else if got.ID == nil || math.Abs(*got.ID-id) > 1e-12 {
			t.Errorf("window %d ID = %v, oracle %g", w, got.ID, id)
		}
	}
	// Window 3 is covered only by the middle of the long event; window 0
	// contains the mid-window zero-duration event on top of two clipped
	// spans. Spot-check the totals the oracle math above derived.
	if w := byIndex[0]; w.Events != 3 || math.Abs(w.Busy-1.75) > 1e-12 {
		t.Errorf("window 0 = %+v, want 3 events and busy 1.75", w)
	}
	if w := byIndex[3]; w.Events != 1 || math.Abs(w.Busy-1) > 1e-12 {
		t.Errorf("window 3 = %+v, want 1 event and busy 1", w)
	}
}

// TestWindowAllIdleServesNullID: a window holding only zero-duration
// events has no busy time, so its dispersion is undefined — the snapshot
// must carry a nil ID (JSON null) rather than a misleading "perfectly
// balanced" zero.
func TestWindowAllIdleServesNullID(t *testing.T) {
	c := NewCollector(Options{Window: 1})
	c.Record(trace.Event{Rank: 0, Region: "r", Activity: "a", Start: 0, End: 1}) // busy window 0
	c.Record(trace.Event{Rank: 0, Region: "r", Activity: "a", Start: 2.5, End: 2.5})
	snap := c.Snapshot()
	if len(snap.Windows) != 2 {
		t.Fatalf("got %d windows, want 2: %+v", len(snap.Windows), snap.Windows)
	}
	busy, idle := snap.Windows[0], snap.Windows[1]
	if busy.ID == nil || *busy.ID != 0 {
		t.Errorf("busy window ID = %v, want 0", busy.ID)
	}
	if idle.Index != 2 || idle.Busy != 0 || idle.Events != 1 {
		t.Fatalf("idle window = %+v, want index 2, busy 0, 1 event", idle)
	}
	if idle.ID != nil {
		t.Errorf("all-idle window ID = %g, want nil", *idle.ID)
	}
	if idle.Gini != 0 {
		t.Errorf("all-idle window Gini = %g, want 0", idle.Gini)
	}
	// The wire form must be an explicit null.
	data, err := json.Marshal(idle)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"id":null`) {
		t.Errorf("serialized idle window %s does not carry an explicit null id", data)
	}
}

func TestConcurrentRecordSnapshot(t *testing.T) {
	const (
		writers        = 8
		eventsPerRank  = 2000
		snapshotRounds = 50
	)
	c := NewCollector(Options{Shards: 4, Window: 10})
	var wg sync.WaitGroup
	for rank := 0; rank < writers; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for i := 0; i < eventsPerRank; i++ {
				start := float64(i)
				c.Record(trace.Event{
					Rank:     rank,
					Region:   "r",
					Activity: "a",
					Start:    start,
					End:      start + 0.5,
				})
			}
		}(rank)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < snapshotRounds; i++ {
			snap := c.Snapshot()
			if snap != nil && snap.Cube != nil && snap.Cube.RegionsTotal() < 0 {
				t.Error("negative total in concurrent snapshot")
			}
		}
	}()
	wg.Wait()
	<-done
	snap := c.Snapshot()
	wantEvents := uint64(writers * eventsPerRank)
	if snap.Events != wantEvents {
		t.Fatalf("events = %d, want %d", snap.Events, wantEvents)
	}
	wantTotal := float64(writers*eventsPerRank) * 0.5
	got := snap.Cube.RegionsTotal() * float64(snap.Cube.NumProcs())
	if math.Abs(got-wantTotal) > 1e-6 {
		t.Fatalf("total processor-seconds = %g, want %g", got, wantTotal)
	}
}

// TestCollectorMaxRank: the rank bound is configurable and enforced
// before the fold, so a single wild-rank event can never force the fold
// to allocate per-rank state for ranks no real machine has (the
// remote-DoS shape: one ~20-byte wire frame claiming rank 2^50).
func TestCollectorMaxRank(t *testing.T) {
	c := NewCollector(Options{MaxRank: 7})
	c.Record(trace.Event{Rank: 7, Region: "r", Activity: "a", Start: 0, End: 1})
	c.Record(trace.Event{Rank: 8, Region: "r", Activity: "a", Start: 0, End: 1})
	snap := c.Snapshot()
	if snap.Events != 1 || snap.Dropped != 1 {
		t.Fatalf("events=%d dropped=%d, want 1 and 1", snap.Events, snap.Dropped)
	}
	if snap.Cube.NumProcs() != 8 {
		t.Errorf("cube has %d procs, want 8 (rank 7 kept, rank 8 dropped)", snap.Cube.NumProcs())
	}

	// Negative disables the bound for trusted in-process producers.
	u := NewCollector(Options{MaxRank: -1})
	u.Record(trace.Event{Rank: DefaultMaxRank + 1, Region: "r", Activity: "a", Start: 0, End: 1})
	if snap := u.Snapshot(); snap.Events != 1 || snap.Dropped != 0 {
		t.Errorf("unbounded collector: events=%d dropped=%d, want 1 and 0", snap.Events, snap.Dropped)
	}
}
